module fedrlnas

go 1.22
