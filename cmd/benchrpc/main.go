// Command benchrpc measures the federated RPC wire protocol end to end:
// it runs a real search server against K in-process participants over
// loopback TCP once per payload encoding and reports bytes/round, time/round
// and codec overhead for each (the BENCH_rpc.json artifact produced by
// `make benchrpc`).
//
// Usage:
//
//	benchrpc [-out BENCH_rpc.json] [-k 8] [-rounds 5] [-modes gob,fp64,fp32,sparse,topk]
//
// Every mode runs the identical workload (same dataset, shards, seeds), so
// the final supernet parameters double as a correctness fingerprint: gob,
// fp64 and sparse must land on bit-identical theta, fp32 must not (it
// rounds mantissas in transit). A hash mismatch where identity is required
// is a protocol bug and the run fails. The topk mode (error-feedback top-k
// sparsification) is gated on convergence parity instead: its theta must
// differ from gob (it is lossy by construction) while its tail-mean
// training accuracy stays within -acc-tolerance of the gob baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/rpcfed"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

type modeResult struct {
	Mode   string `json:"mode"`
	Rounds int    `json:"rounds"`
	// BytesPerRound is total wire traffic (both directions, measured at the
	// server's sockets) divided by rounds.
	BytesPerRound   int64   `json:"bytes_per_round"`
	BytesSentTotal  int64   `json:"bytes_sent_total"`
	BytesRecvTotal  int64   `json:"bytes_received_total"`
	MessagesTotal   int64   `json:"messages_total"`
	MsPerRound      float64 `json:"ms_per_round"`
	EncodeMsTotal   float64 `json:"encode_ms_total"`
	DecodeMsTotal   float64 `json:"decode_ms_total"`
	ThetaHash       string  `json:"theta_hash"`
	BytesRatioVsGob float64 `json:"bytes_ratio_vs_gob,omitempty"`
	// FinalAccuracy is the tail mean (last 2 rounds) of the fresh-reply
	// training accuracy curve — the convergence-parity metric for lossy
	// modes.
	FinalAccuracy     float64 `json:"final_accuracy"`
	FreshReplies      int     `json:"fresh_replies"`
	DroppedReplies    int     `json:"dropped_replies"`
	GenotypeAvailable bool    `json:"genotype_available"`
}

type report struct {
	Workload string       `json:"workload"`
	K        int          `json:"k"`
	Rounds   int          `json:"rounds"`
	Batch    int          `json:"batch"`
	CPUs     int          `json:"cpus"`
	Results  []modeResult `json:"results"`
	// BestBytesRatioVsGob is gob bytes/round over the cheapest lossy or
	// lossless-compact mode's bytes/round (higher is better; the wire
	// protocol targets >= 2x via fp32).
	BestBytesRatioVsGob float64 `json:"best_bytes_ratio_vs_gob"`
	// FP64BitIdentical records the protocol's core safety property: the
	// binary fp64 codec reaches the same final theta as gob, bit for bit.
	FP64BitIdentical bool `json:"fp64_bit_identical"`
	// TopKBytesRatioVsGob is gob bytes/round over topk bytes/round (the
	// compression win of error-feedback sparsification), and
	// TopKConvergenceParity records that topk's final accuracy stayed
	// within tolerance of gob's. Both zero-valued when topk did not run.
	TopKBytesRatioVsGob   float64 `json:"topk_bytes_ratio_vs_gob,omitempty"`
	TopKConvergenceParity bool    `json:"topk_convergence_parity,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrpc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchrpc", flag.ContinueOnError)
	var (
		out       = fs.String("out", "BENCH_rpc.json", "write the JSON report here (empty = stdout only)")
		k         = fs.Int("k", 8, "participants on loopback")
		rounds    = fs.Int("rounds", 5, "search rounds per mode")
		batch     = fs.Int("batch", 8, "participant batch size")
		modesArg  = fs.String("modes", "gob,fp64,fp32,sparse,topk", "comma-separated payload encodings to benchmark")
		seed      = fs.Int64("seed", 1, "shared deployment seed")
		topkRatio = fs.Float64("topk-ratio", 0.1, "downlink fraction of weight-delta coordinates shipped per tensor in topk mode")
		topkGrad  = fs.Float64("topk-grad-ratio", 0.025, "uplink fraction of gradient coordinates shipped per tensor in topk mode")
		accTol    = fs.Float64("acc-tolerance", 0.25, "max |final accuracy - gob| accepted from lossy topk mode")
		traceDir  = fs.String("trace-dir", "", "write JSONL span traces here: server-<mode>.jsonl plus worker<i>-<mode>.jsonl per participant (empty = tracing off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var modes []wire.Mode
	for _, f := range strings.Split(*modesArg, ",") {
		m, err := wire.ParseMode(strings.TrimSpace(f))
		if err != nil {
			return err
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		return fmt.Errorf("no modes")
	}

	rep := report{
		Workload: fmt.Sprintf("rpc-search-k%d", *k),
		K:        *k,
		Rounds:   *rounds,
		Batch:    *batch,
		CPUs:     runtime.NumCPU(),
	}
	hashes := map[wire.Mode]string{}
	accs := map[wire.Mode]float64{}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
	}
	for _, m := range modes {
		r, err := benchMode(m, *k, *rounds, *batch, *seed, *topkRatio, *topkGrad, *traceDir)
		if err != nil {
			return fmt.Errorf("mode %s: %w", m, err)
		}
		hashes[m] = r.ThetaHash
		accs[m] = r.FinalAccuracy
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-6s %8d bytes/round  %7.1f ms/round  enc %6.2fms dec %6.2fms  acc %.3f  theta %s\n",
			r.Mode, r.BytesPerRound, r.MsPerRound, r.EncodeMsTotal, r.DecodeMsTotal, r.FinalAccuracy, r.ThetaHash)
	}

	var gobBytes int64
	for _, r := range rep.Results {
		if r.Mode == wire.Gob.String() {
			gobBytes = r.BytesPerRound
		}
	}
	if gobBytes > 0 {
		for i := range rep.Results {
			r := &rep.Results[i]
			if r.Mode == wire.Gob.String() || r.BytesPerRound == 0 {
				continue
			}
			r.BytesRatioVsGob = float64(gobBytes) / float64(r.BytesPerRound)
			if r.BytesRatioVsGob > rep.BestBytesRatioVsGob {
				rep.BestBytesRatioVsGob = r.BytesRatioVsGob
			}
		}
		fmt.Printf("best bytes reduction vs gob: %.2fx\n", rep.BestBytesRatioVsGob)
	}

	// Correctness gates: every lossless mode must reproduce gob's theta
	// exactly; fp32 must visibly diverge (otherwise it silently ran fp64).
	if gh, ok := hashes[wire.Gob]; ok {
		for _, m := range []wire.Mode{wire.FP64, wire.Sparse} {
			if h, ok := hashes[m]; ok && h != gh {
				return fmt.Errorf("%s theta %s != gob theta %s: lossless mode diverged", m, h, gh)
			}
		}
		if h, ok := hashes[wire.FP32]; ok && h == gh {
			return fmt.Errorf("fp32 theta matches gob exactly — quantization is not being applied")
		}
		// The topk transport is gated on convergence parity, not identity:
		// it must visibly sparsify (different theta) yet train to the same
		// neighborhood as the dense baseline.
		if h, ok := hashes[wire.TopK]; ok {
			if h == gh {
				return fmt.Errorf("topk theta matches gob exactly — sparsification is not being applied")
			}
			// Accuracy parity is only meaningful once training has actually
			// moved: 1-round smoke runs compare chance-level noise.
			if *rounds >= 5 {
				if diff := math.Abs(accs[wire.TopK] - accs[wire.Gob]); diff > *accTol {
					return fmt.Errorf("topk final accuracy %.3f vs gob %.3f differs by %.3f > tolerance %.3f — error feedback is not preserving convergence",
						accs[wire.TopK], accs[wire.Gob], diff, *accTol)
				}
				rep.TopKConvergenceParity = true
			}
		}
	}
	if h64, ok := hashes[wire.FP64]; ok {
		rep.FP64BitIdentical = hashes[wire.Gob] == "" || h64 == hashes[wire.Gob]
	}
	for _, r := range rep.Results {
		if r.Mode == wire.TopK.String() {
			rep.TopKBytesRatioVsGob = r.BytesRatioVsGob
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}
	return nil
}

// benchNet is the benchmark supernet: big enough that conv weights dominate
// the payload (as in the paper's workload) but small enough that K
// participants train on one host in seconds.
func benchNet() nas.Config {
	return nas.Config{
		InChannels: 3, NumClasses: 10, C: 6, Layers: 2, Nodes: 2,
		Candidates: nas.AllOps,
	}
}

func benchDataset(seed int64) (*data.Dataset, error) {
	return data.Generate(data.Spec{
		Name: "rpcbench", NumClasses: 10, Channels: 3, Height: 8, Width: 8,
		TrainPerClass: 32, TestPerClass: 8, Noise: 1.0, Confusion: 0.3, Seed: seed,
	})
}

// benchMode runs one full federated search over loopback TCP with the given
// payload encoding. Every mode gets an identical fresh cluster (same
// dataset, shards and seeds) so final-theta hashes are comparable. With a
// non-empty traceDir each side writes its own JSONL span file, exactly as a
// multi-process deployment would — the inputs `fedtrace` stitches.
func benchMode(mode wire.Mode, k, rounds, batch int, seed int64, topkRatio, topkGradRatio float64, traceDir string) (modeResult, error) {
	ds, err := benchDataset(seed + 12)
	if err != nil {
		return modeResult{}, err
	}
	part, err := data.IIDPartition(ds.NumTrain(), k, rand.New(rand.NewSource(seed+5)))
	if err != nil {
		return modeResult{}, err
	}
	var (
		addrs     []string
		listeners []net.Listener
		tracers   []*telemetry.Tracer
	)
	closeCluster := func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
		listeners = nil
		for _, tr := range tracers {
			_ = tr.Close()
		}
		tracers = nil
	}
	defer closeCluster()
	openTracer := func(name string) (*telemetry.Tracer, error) {
		if traceDir == "" {
			return nil, nil
		}
		tr, err := telemetry.OpenJSONL(filepath.Join(traceDir, fmt.Sprintf("%s-%s.jsonl", name, mode)))
		if err != nil {
			return nil, err
		}
		tracers = append(tracers, tr)
		return tr, nil
	}
	for i := 0; i < k; i++ {
		svc, err := rpcfed.NewParticipantService(i, ds, part.Indices[i], benchNet(), seed+int64(100+i))
		if err != nil {
			return modeResult{}, err
		}
		tr, err := openTracer(fmt.Sprintf("worker%d", i))
		if err != nil {
			return modeResult{}, err
		}
		svc.SetTracer(tr)
		ln, _, err := svc.Serve("127.0.0.1:0")
		if err != nil {
			return modeResult{}, err
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}

	scfg := rpcfed.DefaultServerConfig(benchNet())
	scfg.Rounds = rounds
	scfg.BatchSize = batch
	scfg.Quorum = 1.0 // hard sync: every reply lands every round, all modes comparable
	scfg.Transport.Workers = 1
	scfg.Seed = seed
	scfg.Transport.Wire = mode
	scfg.Transport.TopKRatio = topkRatio
	scfg.Transport.TopKGradRatio = topkGradRatio
	srv, err := rpcfed.NewServer(scfg, addrs)
	if err != nil {
		return modeResult{}, err
	}
	defer srv.Close()
	reg := telemetry.NewRegistry()
	serverTracer, err := openTracer("server")
	if err != nil {
		return modeResult{}, err
	}
	srv.SetTelemetry(serverTracer, reg)

	start := time.Now()
	res, err := srv.Run()
	if err != nil {
		return modeResult{}, err
	}
	elapsed := time.Since(start)
	// Tear the cluster down before the tracers close so every in-flight
	// worker span is flushed into its file.
	srv.Close()
	closeCluster()

	wm := telemetry.NewWireMetrics(reg) // same handles SetTelemetry registered
	sent, recv := wm.BytesSent.Value(), wm.BytesReceived.Value()
	out := modeResult{
		Mode:              mode.String(),
		Rounds:            rounds,
		BytesSentTotal:    sent,
		BytesRecvTotal:    recv,
		BytesPerRound:     (sent + recv) / int64(rounds),
		MessagesTotal:     wm.MessagesSent.Value() + wm.MessagesReceived.Value(),
		MsPerRound:        elapsed.Seconds() * 1e3 / float64(rounds),
		EncodeMsTotal:     float64(wm.EncodeNs.Value()) / 1e6,
		DecodeMsTotal:     float64(wm.DecodeNs.Value()) / 1e6,
		ThetaHash:         thetaHash(srv),
		FinalAccuracy:     res.Curve.TailMean(2),
		FreshReplies:      res.FreshReplies,
		DroppedReplies:    res.DroppedReplies,
		GenotypeAvailable: res.Genotype.String() != "",
	}
	return out, nil
}

// thetaHash fingerprints the server's final supernet parameters down to the
// bit (FNV-1a over each float64's LE bytes).
func thetaHash(s *rpcfed.Server) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range s.Supernet().Params() {
		for _, v := range p.Value.Data() {
			bits := math.Float64bits(v)
			for i := 0; i < 64; i += 8 {
				h ^= uint64(byte(bits >> i))
				h *= prime64
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}
