// Command benchrounds measures the parallel round engine's throughput on
// the Fig. 4 search workload (K participants jointly optimizing θ and α)
// across worker counts, and writes the numbers to a JSON report (the
// BENCH_rounds.json artifact produced by `make bench`).
//
// Usage:
//
//	benchrounds [-out BENCH_rounds.json] [-rounds 12] [-k 10] [-workers 1,4]
//
// Results are bit-identical at every worker count, so the report also
// carries a determinism checksum per run; a mismatch across worker counts
// is a bug, not noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/search"
	"fedrlnas/internal/tensor"
)

type runResult struct {
	Workers      int     `json:"workers"`
	Rounds       int     `json:"rounds"`
	Seconds      float64 `json:"seconds"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Gomaxprocs is the scheduler width in effect for this specific run —
	// worker goroutines beyond it time-slice rather than run concurrently.
	Gomaxprocs     int    `json:"gomaxprocs"`
	NsPerRound     int64  `json:"ns_per_round"`
	AllocsPerRound uint64 `json:"allocs_per_round"`
	BytesPerRound  uint64 `json:"bytes_per_round"`
	// GemmGflops is the kernel-achieved GEMM throughput: FLOPs done inside
	// Gemm calls (2·m·n·k per matmul, via tensor.GemmFLOPs) over the
	// wall-clock spent inside those calls (tensor.GemmKernelNanos, packing
	// included). GemmGflopsWall divides the same FLOPs by the whole timed
	// region instead, diluting the kernel with everything around it — the
	// historical meaning of gemm_gflops.
	GemmGflops     float64 `json:"gemm_gflops"`
	GemmGflopsWall float64 `json:"gemm_gflops_wall"`
	// Checksum fingerprints the final reward curve; it must be identical
	// across every worker count.
	Checksum float64 `json:"checksum"`
}

type report struct {
	Workload   string `json:"workload"`
	K          int    `json:"k"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Precision is the compute precision the runs used ("fp64" bit-exact
	// default, "fp32" SIMD-width-doubled shadow path). Kernel records the
	// CPU features detected at init and the GEMM micro-kernel variants
	// selected, so throughput numbers are comparable across hosts.
	Precision string                `json:"precision"`
	Kernel    tensor.KernelFeatures `json:"kernel"`
	// ParallelMeaningful is false when the host exposes fewer than 2 CPUs:
	// multi-worker numbers then measure scheduling overhead, not speedup,
	// and SpeedupMaxVsSerial should be read as a determinism check only.
	ParallelMeaningful bool        `json:"parallel_meaningful"`
	Results            []runResult `json:"results"`
	// SpeedupMaxVsSerial is rounds/sec at the largest worker count over
	// rounds/sec at workers=1. It is null/omitted when ParallelMeaningful is
	// false: on a single-core host the ratio measures scheduling overhead,
	// and publishing a number invites dashboards to plot noise as regression.
	SpeedupMaxVsSerial *float64 `json:"speedup_max_vs_serial,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchrounds", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_rounds.json", "write the JSON report here (empty = stdout only)")
		rounds     = fs.Int("rounds", 12, "timed search rounds per worker count")
		k          = fs.Int("k", 10, "participants (Fig. 4 uses K=10)")
		workersArg = fs.String("workers", "1,4", "comma-separated worker counts to benchmark")
		seed       = fs.Int64("seed", 1, "search seed")
		precArg    = fs.String("precision", "fp64", "compute precision: fp64 (bit-identical runs) or fp32 (convergence parity)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prec, err := nn.ParsePrecision(*precArg)
	if err != nil {
		return err
	}
	var workerCounts []int
	for _, f := range strings.Split(*workersArg, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -workers entry %q", f)
		}
		workerCounts = append(workerCounts, w)
	}
	if len(workerCounts) == 0 {
		return fmt.Errorf("no worker counts")
	}

	rep := report{
		Workload:           fmt.Sprintf("fig4-search-k%d", *k),
		K:                  *k,
		CPUs:               runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		ParallelMeaningful: runtime.NumCPU() >= 2,
		Precision:          prec.String(),
		Kernel:             tensor.KernelInfo(),
	}
	if !rep.ParallelMeaningful {
		fmt.Fprintf(os.Stderr, "benchrounds: warning: %d CPU visible — multi-worker results measure scheduling overhead, not parallel speedup\n",
			rep.CPUs)
	}
	for _, w := range workerCounts {
		r, err := benchOne(*k, w, *rounds, *seed, prec)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("workers=%d: %.3f rounds/sec (%d rounds in %.2fs, %d allocs/round, %.2f GEMM GFLOP/s)\n",
			w, r.RoundsPerSec, r.Rounds, r.Seconds, r.AllocsPerRound, r.GemmGflops)
	}
	for _, r := range rep.Results[1:] {
		if r.Checksum != rep.Results[0].Checksum {
			return fmt.Errorf("determinism violated: checksum %v at workers=%d vs %v at workers=%d",
				r.Checksum, r.Workers, rep.Results[0].Checksum, rep.Results[0].Workers)
		}
	}
	base, best := rep.Results[0], rep.Results[0]
	for _, r := range rep.Results {
		if r.Workers == 1 {
			base = r
		}
		if r.Workers > best.Workers {
			best = r
		}
	}
	if base.RoundsPerSec > 0 && rep.ParallelMeaningful {
		speedup := best.RoundsPerSec / base.RoundsPerSec
		rep.SpeedupMaxVsSerial = &speedup
		fmt.Printf("speedup workers=%d vs workers=1: %.2fx (on %d CPUs)\n",
			best.Workers, speedup, rep.CPUs)
	} else {
		fmt.Printf("speedup not reported: %d CPU visible, multi-worker runs only check determinism\n",
			rep.CPUs)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}
	return nil
}

// benchOne times `rounds` search rounds of the Fig. 4 workload at the given
// worker count. A short untimed warm-up (P1) precedes the measurement so
// buffer pools and batch norms are in steady state.
func benchOne(k, workers, rounds int, seed int64, prec nn.Precision) (runResult, error) {
	cfg := search.DefaultConfig()
	cfg.K = k
	cfg.Workers = workers
	cfg.Seed = seed
	cfg.Precision = prec
	cfg.WarmupSteps = 2
	cfg.SearchSteps = rounds
	s, err := search.New(cfg)
	if err != nil {
		return runResult{}, err
	}
	if err := s.Warmup(); err != nil {
		return runResult{}, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	flops0, knanos0 := tensor.GemmFLOPs(), tensor.GemmKernelNanos()
	start := time.Now()
	if err := s.Run(); err != nil {
		return runResult{}, err
	}
	elapsed := time.Since(start)
	flops1, knanos1 := tensor.GemmFLOPs(), tensor.GemmKernelNanos()
	runtime.ReadMemStats(&after)

	checksum := 0.0
	for i, v := range s.SearchCurve.Values() {
		checksum += v * float64(i+1)
	}
	secs := elapsed.Seconds()
	res := runResult{
		Workers:        workers,
		Rounds:         rounds,
		Seconds:        secs,
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		NsPerRound:     elapsed.Nanoseconds() / int64(rounds),
		AllocsPerRound: (after.Mallocs - before.Mallocs) / uint64(rounds),
		BytesPerRound:  (after.TotalAlloc - before.TotalAlloc) / uint64(rounds),
		Checksum:       checksum,
	}
	if secs > 0 {
		res.RoundsPerSec = float64(rounds) / secs
		res.GemmGflopsWall = float64(flops1-flops0) / secs / 1e9
	}
	if kn := knanos1 - knanos0; kn > 0 {
		// flops per nanosecond IS GFLOP/s — no unit factor needed.
		res.GemmGflops = float64(flops1-flops0) / float64(kn)
	}
	return res, nil
}
