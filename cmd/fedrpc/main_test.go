package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"fedrlnas/internal/telemetry"
)

func TestRunModeValidation(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("empty args not rejected: %v", err)
	}
	if err := run([]string{"conductor"}); err == nil ||
		!strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("bad mode not rejected: %v", err)
	}
}

func TestShardForValidation(t *testing.T) {
	if _, _, err := shardFor("imagenet", 4, 0, 1, nil); err == nil {
		t.Error("unknown dataset not rejected")
	}
	if _, _, err := shardFor("cifar10s", 4, 9, 1, nil); err == nil {
		t.Error("out-of-range index not rejected")
	}
	ds, shard, err := shardFor("cifar10s", 4, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds == nil || len(shard) == 0 {
		t.Error("valid shard empty")
	}
	// Determinism across "processes": same seed, same shard.
	_, shard2, err := shardFor("cifar10s", 4, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shard) != len(shard2) {
		t.Fatal("shard sizes differ across regenerations")
	}
	for i := range shard {
		if shard[i] != shard2[i] {
			t.Fatal("shards differ across regenerations — workers would train on wrong data")
		}
	}
}

// TestDebugAddrServesEndpoints exercises the -debug-addr wiring: the same
// startDebug call both subcommands use must serve /metrics, /healthz and
// /debug/pprof/ over HTTP.
func TestDebugAddrServesEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("rounds_total", "rounds").Add(2)
	dbg, err := startDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	base := "http://" + dbg.Addr()
	for path, want := range map[string]string{
		"/metrics":      "rounds_total 2",
		"/healthz":      "ok",
		"/debug/pprof/": "goroutine",
		"/debug/vars":   "memstats",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Errorf("%s = %d, body missing %q", path, resp.StatusCode, want)
		}
	}
	// Empty address disables the endpoint without error.
	off, err := startDebug("", reg)
	if err != nil || off != nil {
		t.Errorf("startDebug(\"\") = %v, %v; want nil, nil", off, err)
	}
	if err := off.Close(); err != nil {
		t.Errorf("closing disabled debug server: %v", err)
	}
	if _, err := startDebug("999.999.999.999:-1", reg); err == nil {
		t.Error("invalid debug address accepted")
	}
}

func TestServerModeNeedsAddrs(t *testing.T) {
	if err := runServer([]string{}); err == nil || !strings.Contains(err.Error(), "need -addrs") {
		t.Errorf("missing addrs not rejected: %v", err)
	}
}
