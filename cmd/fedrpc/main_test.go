package main

import (
	"strings"
	"testing"
)

func TestRunModeValidation(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("empty args not rejected: %v", err)
	}
	if err := run([]string{"conductor"}); err == nil ||
		!strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("bad mode not rejected: %v", err)
	}
}

func TestShardForValidation(t *testing.T) {
	if _, _, err := shardFor("imagenet", 4, 0, 1); err == nil {
		t.Error("unknown dataset not rejected")
	}
	if _, _, err := shardFor("cifar10s", 4, 9, 1); err == nil {
		t.Error("out-of-range index not rejected")
	}
	ds, shard, err := shardFor("cifar10s", 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds == nil || len(shard) == 0 {
		t.Error("valid shard empty")
	}
	// Determinism across "processes": same seed, same shard.
	_, shard2, err := shardFor("cifar10s", 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shard) != len(shard2) {
		t.Fatal("shard sizes differ across regenerations")
	}
	for i := range shard {
		if shard[i] != shard2[i] {
			t.Fatal("shards differ across regenerations — workers would train on wrong data")
		}
	}
}

func TestServerModeNeedsAddrs(t *testing.T) {
	if err := runServer([]string{}); err == nil || !strings.Contains(err.Error(), "need -addrs") {
		t.Errorf("missing addrs not rejected: %v", err)
	}
}
