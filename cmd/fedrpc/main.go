// Command fedrpc deploys the federated model search across OS processes
// over TCP, the shape of the paper's Distributed-RPC deployment.
//
// Start K workers (each owns one shard of the deterministic dataset):
//
//	fedrpc worker -index 0 -k 4 -listen 127.0.0.1:7001
//	fedrpc worker -index 1 -k 4 -listen 127.0.0.1:7002
//	…
//
// Then run the search server against them:
//
//	fedrpc server -addrs 127.0.0.1:7001,127.0.0.1:7002,… -rounds 60
//
// Both sides regenerate the same dataset and Dirichlet partition from the
// shared -seed, so no data ever crosses the wire — only sub-models,
// gradients, and rewards (the paper's privacy model).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fedrlnas/internal/chaos"
	"fedrlnas/internal/data"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/rpcfed"
	"fedrlnas/internal/scenario"
	"fedrlnas/internal/search"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

// startDebug spins up the opt-in debug HTTP endpoint when addr is set.
func startDebug(addr string, reg *telemetry.Registry, extras ...telemetry.Endpoint) (*telemetry.DebugServer, error) {
	if addr == "" {
		return nil, nil
	}
	dbg, err := telemetry.StartDebugServer(addr, reg, extras...)
	if err != nil {
		return nil, err
	}
	fmt.Printf("debug endpoint on http://%s (/metrics, /healthz, /debug/pprof/)\n", dbg.Addr())
	return dbg, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedrpc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fedrpc worker|server [flags]")
	}
	switch args[0] {
	case "worker":
		return runWorker(args[1:])
	case "server":
		return runServer(args[1:])
	default:
		return fmt.Errorf("unknown mode %q (worker|server)", args[0])
	}
}

// shardFor deterministically regenerates the dataset and this worker's
// shard from the shared seed. Every process — server and all workers —
// must pass the same scenario (or none): with a scenario population the
// split honors each profile group's skew; with only a skew it overrides
// the legacy Dirichlet(0.5); both stay pure functions of (dataset, k,
// seed, scenario), so no data ever crosses the wire.
func shardFor(datasetName string, k, index int, seed int64, scen *scenario.Spec) (*data.Dataset, []int, error) {
	var spec data.Spec
	switch datasetName {
	case "cifar10s":
		spec = data.CIFAR10S()
	case "svhns":
		spec = data.SVHNS()
	case "cifar100s":
		spec = data.CIFAR100S()
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", datasetName)
	}
	ds, err := data.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	profiles, fracs, err := scen.Resolve()
	if err != nil {
		return nil, nil, err
	}
	var part data.Partition
	switch {
	case len(profiles) > 0:
		assignment := scenario.Assign(fracs, k, seed)
		part, err = scenario.PartitionFor(ds.TrainLabels, k, assignment, profiles, scen.Skew, rng)
	case scen != nil && scen.Skew != nil && scen.Skew.Kind == scenario.SkewIID:
		part, err = data.IIDPartition(ds.NumTrain(), k, rng)
	case scen != nil && scen.Skew != nil:
		part, err = data.DirichletPartition(ds.TrainLabels, k, scen.Skew.Alpha, rng)
	default:
		part, err = data.DirichletPartition(ds.TrainLabels, k, 0.5, rng)
	}
	if err != nil {
		return nil, nil, err
	}
	if index < 0 || index >= k {
		return nil, nil, fmt.Errorf("index %d outside [0,%d)", index, k)
	}
	return ds, part.Indices[index], nil
}

func netConfig(classes, channels int) search.Config {
	cfg := search.DefaultConfig()
	cfg.Net.NumClasses = classes
	cfg.Net.InChannels = channels
	return cfg
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("fedrpc worker", flag.ContinueOnError)
	var (
		index     = fs.Int("index", 0, "worker index in [0,k)")
		k         = fs.Int("k", 4, "total number of workers")
		listen    = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		dataset   = fs.String("dataset", "cifar10s", "dataset name")
		seed      = fs.Int64("seed", 1, "shared deployment seed")
		scenArg   = fs.String("scenario", "", "device-population scenario ("+scenario.Grammar+"); set the same value on every process")
		chaosSpec = fs.String("chaos", "", "deprecated (use -scenario): fault-injection spec, e.g. latency=5ms,jitter=2ms,bw=20,kill=0.001,seed=7 (empty = faults off)")
		traceOut  = fs.String("trace", "", "write a JSONL span trace of handled calls to this file (spans parent under the server's rounds)")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /healthz, expvar and pprof on this address")
		precArg   = fs.String("precision", "fp64", "compute precision: fp64 (bit-identical) or fp32 (faster SIMD path); set the same value on every process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prec, err := nn.ParsePrecision(*precArg)
	if err != nil {
		return err
	}
	nn.SetPrecision(prec)
	registry := telemetry.NewRegistry()
	dbg, err := startDebug(*debugAddr, registry)
	if err != nil {
		return err
	}
	defer dbg.Close()
	scen, err := scenario.Parse(*scenArg)
	if err != nil {
		return err
	}
	// The deprecated -chaos flag lowers into a single-profile scenario that
	// drives the transport only — the flag never influenced the data
	// partition, and the alias must not either.
	transport := scen
	if *chaosSpec != "" {
		transport = &scenario.Spec{Population: []scenario.Share{
			{Custom: &scenario.Profile{Name: "chaos-flag", Chaos: *chaosSpec}},
		}}
		if err := transport.Validate(); err != nil {
			return err
		}
	}
	ds, shard, err := shardFor(*dataset, *k, *index, *seed, scen)
	if err != nil {
		return err
	}
	cfg := netConfig(ds.Spec.NumClasses, ds.Spec.Channels)
	svc, err := rpcfed.NewParticipantService(*index, ds, shard, cfg.Net, *seed+int64(*index)*31)
	if err != nil {
		return err
	}
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		if tracer, err = telemetry.OpenJSONL(*traceOut); err != nil {
			return err
		}
		tracer.SetDropCounter(registry.Counter("trace_dropped_total",
			"trace events dropped after a trace-file write failure"))
		svc.SetTracer(tracer)
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedrpc: trace:", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if profiles, fracs, rerr := transport.Resolve(); rerr != nil {
		return rerr
	} else if len(profiles) > 0 {
		prof := profiles[scenario.Assign(fracs, *k, *seed)[*index]]
		var ccfg chaos.Config
		if *chaosSpec != "" {
			// The deprecated flag keeps its historical seeding: the spec's
			// own seed (0 when unset, identical on every worker), never the
			// per-worker derivation profiles use — existing -chaos runs keep
			// their fault schedules bit-for-bit.
			ccfg, err = chaos.ParseSpec(*chaosSpec)
		} else {
			ccfg, err = prof.ChaosConfig(*seed + int64(*index)*13)
		}
		if err != nil {
			return err
		}
		if prof.Chaos != "" || len(ccfg.Trace.Mbps) > 0 {
			inj, err := chaos.New(ccfg)
			if err != nil {
				return err
			}
			inj.Observe(registry)
			// Injected faults land in the worker's trace under the round they
			// disrupted, so fedtrace can correlate kills with slow rounds.
			inj.TraceWith(tracer, svc.CurrentSpan)
			ln = inj.Listener(ln)
			fmt.Printf("worker %d: profile %q faults enabled\n", *index, prof.Name)
		}
	}
	done, err := svc.ServeListener(ln)
	if err != nil {
		_ = ln.Close()
		return err
	}
	fmt.Printf("worker %d/%d serving %s shard (%d samples) on %s\n",
		*index, *k, *dataset, len(shard), ln.Addr())
	<-done // run until the listener is closed (Ctrl-C kills the process)
	return nil
}

func runServer(args []string) error {
	fs := flag.NewFlagSet("fedrpc server", flag.ContinueOnError)
	var (
		addrList  = fs.String("addrs", "", "comma-separated worker addresses")
		dataset   = fs.String("dataset", "cifar10s", "dataset name")
		scenArg   = fs.String("scenario", "", "device-population scenario ("+scenario.Grammar+"); set the same value on every process")
		rounds    = fs.Int("rounds", 40, "search rounds")
		batch     = fs.Int("batch", 16, "participant batch size")
		quorum    = fs.Float64("quorum", 0.8, "fraction of live participants whose replies close a round")
		cohortSz  = fs.Int("cohort", 0, "participants sampled per round (0 = everyone; schedule is seeded and fault-independent)")
		shards    = fs.Int("shards", 0, "aggregation-tree shards for the θ merge (0/1 = single root; any count is bit-identical)")
		lazyDial  = fs.Bool("lazy-dial", false, "defer participant connections to first dispatch (only sampled participants ever connect)")
		workers   = fs.Int("workers", 0, "concurrent payload serializations at dispatch (0 = NumCPU)")
		wireMode  = fs.String("wire", "fp64", "payload encoding: gob|fp64|fp32|sparse|topk (fp64/sparse = bit-identical to gob; topk = error-feedback sparsification, convergence parity)")
		topkRatio = fs.Float64("topk-ratio", 0, "topk wire mode: fraction of weight-delta coordinates shipped downlink (0 = default 0.1)")
		topkGrad  = fs.Float64("topk-grad-ratio", 0, "topk wire mode: fraction of gradient coordinates shipped uplink (0 = default 0.025)")
		callTO    = fs.Duration("call-timeout", 10*time.Second, "per-RPC deadline, distinct from the round timeout (0 disables)")
		seed      = fs.Int64("seed", 1, "shared deployment seed")
		traceOut  = fs.String("trace", "", "write a JSONL span trace of every round to this file")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /healthz, expvar and pprof on this address")
		precArg   = fs.String("precision", "fp64", "compute precision: fp64 (bit-identical) or fp32 (faster SIMD path); set the same value on every process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prec, err := nn.ParsePrecision(*precArg)
	if err != nil {
		return err
	}
	nn.SetPrecision(prec)
	addrs := strings.Split(*addrList, ",")
	if *addrList == "" || len(addrs) == 0 {
		return fmt.Errorf("need -addrs")
	}
	scen, err := scenario.Parse(*scenArg)
	if err != nil {
		return err
	}
	ds, _, err := shardFor(*dataset, len(addrs), 0, *seed, scen)
	if err != nil {
		return err
	}
	cfg := netConfig(ds.Spec.NumClasses, ds.Spec.Channels)
	scfg := rpcfed.DefaultServerConfig(cfg.Net)
	scfg.Rounds = *rounds
	scfg.BatchSize = *batch
	scfg.Quorum = *quorum
	scfg.CohortSize = *cohortSz
	scfg.Shards = *shards
	scfg.Transport.Workers = *workers
	scfg.Transport.CallTimeout = *callTO
	scfg.Transport.LazyDial = *lazyDial
	scfg.Transport.TopKRatio = *topkRatio
	scfg.Transport.TopKGradRatio = *topkGrad
	scfg.Seed = *seed
	if scfg.Transport.Wire, err = wire.ParseMode(*wireMode); err != nil {
		return err
	}
	srv, err := rpcfed.NewServer(scfg, addrs)
	if err != nil {
		return err
	}
	defer srv.Close()

	registry := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		if tracer, err = telemetry.OpenJSONL(*traceOut); err != nil {
			return err
		}
		tracer.SetDropCounter(registry.Counter("trace_dropped_total",
			"trace events dropped after a trace-file write failure"))
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedrpc: trace:", err)
			}
		}()
	}
	srv.SetTelemetry(tracer, registry)
	dbg, err := startDebug(*debugAddr, registry,
		telemetry.Endpoint{Path: "/participants", Handler: srv.ParticipantsHandler()})
	if err != nil {
		return err
	}
	defer dbg.Close()

	// SIGINT/SIGTERM cancel the run cooperatively: the round loop stops at
	// its next select point and hands back the partial result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("searching over %d workers for %d rounds (quorum %.0f%%)…\n",
		len(addrs), *rounds, *quorum*100)
	res, err := srv.RunContext(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Printf("interrupted after %d/%d rounds — partial result:\n",
			res.RoundsCompleted, *rounds)
		err = nil
	}
	if err != nil {
		return err
	}
	fmt.Println("genotype:", res.Genotype)
	fmt.Printf("accuracy tail: %.3f | replies: %d fresh, %d late, %d dropped\n",
		res.Curve.TailMean(10), res.FreshReplies, res.LateReplies, res.DroppedReplies)
	return nil
}
