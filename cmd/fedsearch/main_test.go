package main

import (
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad dataset", []string{"-dataset", "mnist"}, "unknown dataset"},
		{"bad partition", []string{"-partition", "zipf"}, "unknown partition"},
		{"bad staleness", []string{"-staleness", "extreme"}, "unknown staleness"},
		{"bad strategy", []string{"-strategy", "vote"}, "unknown strategy"},
		{"bad transmission", []string{"-transmission", "greedy"}, "unknown transmission"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestRunTinyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	args := []string{
		"-k", "3", "-warmup", "2", "-search", "3", "-retrain", "5", "-batch", "8",
		"-genotype-out", dir + "/g.json",
	}
	if err := run(args); err != nil {
		t.Fatalf("tiny pipeline failed: %v", err)
	}
}

func TestFirstVal(t *testing.T) {
	if firstVal(nil) != 0 {
		t.Error("empty firstVal should be 0")
	}
	if firstVal([]float64{3, 4}) != 3 {
		t.Error("firstVal should return the first element")
	}
}
