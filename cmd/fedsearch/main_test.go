package main

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad dataset", []string{"-dataset", "mnist"}, "unknown dataset"},
		{"bad partition", []string{"-partition", "zipf"}, "unknown partition"},
		{"bad staleness", []string{"-staleness", "extreme"}, "unknown staleness"},
		{"bad strategy", []string{"-strategy", "vote"}, "unknown strategy"},
		{"bad transmission", []string{"-transmission", "greedy"}, "unknown transmission"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestRunTinyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	args := []string{
		"-k", "3", "-warmup", "2", "-search", "3", "-retrain", "5", "-batch", "8",
		"-genotype-out", dir + "/g.json",
	}
	if err := run(args); err != nil {
		t.Fatalf("tiny pipeline failed: %v", err)
	}
}

// TestTraceFlagEmitsValidJSONL runs a tiny pipeline with -trace (plus
// -debug-addr to exercise its lifecycle) and checks that every line parses
// as JSON with the stable schema and that each of the 5 rounds (2 warm-up
// + 3 search) produced exactly one round.end event.
func TestTraceFlagEmitsValidJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	tracePath := dir + "/trace.jsonl"
	args := []string{
		"-k", "3", "-warmup", "2", "-search", "3", "-retrain", "1", "-batch", "8",
		"-trace", tracePath,
		"-debug-addr", "127.0.0.1:0",
	}
	if err := run(args); err != nil {
		t.Fatalf("pipeline with -trace failed: %v", err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	roundEnds := map[float64]int{}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v (%s)", lines, err, sc.Text())
		}
		for _, key := range []string{"ts", "event", "round", "bytes", "staleness", "seconds", "value"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %d missing field %q: %s", lines, key, sc.Text())
			}
		}
		if m["event"].(string) == "round.end" {
			roundEnds[m["round"].(float64)]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
	const rounds = 5 // 2 warm-up + 3 search
	if len(roundEnds) != rounds {
		t.Fatalf("round.end events for %d distinct rounds, want %d", len(roundEnds), rounds)
	}
	for r := 0; r < rounds; r++ {
		if roundEnds[float64(r)] != 1 {
			t.Errorf("round %d has %d round.end events, want 1", r, roundEnds[float64(r)])
		}
	}
}

// TestDebugAddrRejectsBadAddress pins the error path of -debug-addr.
func TestDebugAddrRejectsBadAddress(t *testing.T) {
	err := run([]string{"-debug-addr", "999.999.999.999:-1"})
	if err == nil {
		t.Error("invalid -debug-addr accepted")
	}
}

func TestFirstVal(t *testing.T) {
	if firstVal(nil) != 0 {
		t.Error("empty firstVal should be 0")
	}
	if firstVal([]float64{3, 4}) != 3 {
		t.Error("firstVal should return the first element")
	}
}

// TestCheckpointResumeRoundTrip runs a tiny search with -checkpoint-out,
// then resumes a longer schedule from the checkpoint with -resume: the
// resumed run must skip the already-completed rounds and finish.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	ckpt := dir + "/search.ckpt"
	base := []string{"-k", "3", "-warmup", "2", "-search", "3", "-retrain", "2", "-batch", "8"}
	if err := run(append(base, "-checkpoint-out", ckpt, "-checkpoint-every", "2")); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	// Same config, longer schedule: resume continues from round 5.
	longer := []string{"-k", "3", "-warmup", "2", "-search", "6", "-retrain", "2", "-batch", "8",
		"-resume", ckpt}
	if err := run(longer); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	// A mismatched config must be rejected, not silently mis-resumed.
	mismatched := []string{"-k", "4", "-warmup", "2", "-search", "6", "-retrain", "2", "-batch", "8",
		"-resume", ckpt}
	if err := run(mismatched); err == nil {
		t.Fatal("resume with mismatched config should fail")
	}
}
