// Command fedsearch runs the full four-phase federated model search
// pipeline (warm-up, RL search, retraining, evaluation) with configurable
// knobs, printing the searched genotype and final accuracies.
//
// Example:
//
//	fedsearch -dataset cifar10s -k 10 -partition dirichlet -warmup 60 -search 200
//	fedsearch -staleness severe -strategy dc -lambda 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/scenario"
	"fedrlnas/internal/search"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/transmission"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fedsearch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fedsearch", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "cifar10s", "dataset: cifar10s, svhns, cifar100s")
		k         = fs.Int("k", 10, "number of participants")
		enrolled  = fs.Int("enrolled", 0, "enrolled population size (0 = -k); only sampled participants materialize model state")
		cohortSz  = fs.Int("cohort", 0, "participants sampled per round (0 = everyone); also sets the federated-retrain client fraction")
		shards    = fs.Int("shards", 0, "aggregation-tree shards for the theta merge (0 or 1 = single root; results are bit-identical at any value)")
		scenArg   = fs.String("scenario", "", "device-population scenario: "+scenario.Grammar+" (profiles: "+scenario.CatalogNames()+")")
		personal  = fs.Bool("personalize", false, "personalized search: shared supernet body, per-client classifier heads")
		headLR    = fs.Float64("head-lr", 0, "personal head SGD learning rate (0 = theta lr)")
		partition = fs.String("partition", "iid", "deprecated (use -scenario): data split, iid or dirichlet")
		dirAlpha  = fs.Float64("dirichlet-alpha", 0.5, "deprecated (use -scenario): Dirichlet concentration for non-iid splits")
		warmup    = fs.Int("warmup", 30, "warm-up rounds (P1)")
		searchN   = fs.Int("search", 60, "search rounds (P2)")
		retrain   = fs.Int("retrain", 120, "centralized retrain steps (P3)")
		fedRounds = fs.Int("fed-rounds", 0, "federated retrain rounds (0 skips federated P3)")
		batch     = fs.Int("batch", 16, "participant batch size")
		stale     = fs.String("staleness", "none", "staleness schedule: none, severe, slight")
		strategy  = fs.String("strategy", "hard", "stale-update strategy: hard, use, throw, dc")
		lambda    = fs.Float64("lambda", 1.0, "delay-compensation strength")
		transPol  = fs.String("transmission", "adaptive", "sub-model assignment: adaptive, random, uniform")
		seed      = fs.Int64("seed", 1, "random seed")
		workers   = fs.Int("workers", 0, "concurrent participants per round (0 = NumCPU); results are identical at any value")
		alphaOnly = fs.Bool("alpha-only", false, "freeze theta during search (Fig. 5 ablation)")
		genoOut   = fs.String("genotype-out", "", "write the searched genotype to this JSON file")
		ckptOut   = fs.String("checkpoint-out", "", "stream crash-safe search checkpoints (theta, alpha, optimizer and RNG state) to this file")
		ckptEvery = fs.Int("checkpoint-every", 0, "with -checkpoint-out, also checkpoint every N rounds (0 = end of search only)")
		resume    = fs.String("resume", "", "resume P1/P2 from this checkpoint (config must match the saved run)")
		traceOut  = fs.String("trace", "", "write a JSONL span trace of every search round to this file")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /healthz, expvar and pprof on this address (e.g. 127.0.0.1:6060)")
		precArg   = fs.String("precision", "fp64", "compute precision: fp64 (bit-identical runs) or fp32 (faster SIMD path, convergence parity only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	prec, err := nn.ParsePrecision(*precArg)
	if err != nil {
		return err
	}

	cfg := search.DefaultConfig()
	cfg.Precision = prec
	switch *dataset {
	case "cifar10s":
		cfg.Dataset = data.CIFAR10S()
	case "svhns":
		cfg.Dataset = data.SVHNS()
	case "cifar100s":
		cfg.Dataset = data.CIFAR100S()
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	cfg.Net.NumClasses = cfg.Dataset.NumClasses
	cfg.Net.InChannels = cfg.Dataset.Channels
	cfg.K = *k
	if *enrolled > 0 {
		cfg.K = *enrolled
	}
	cfg.CohortSize = *cohortSz
	cfg.Shards = *shards
	// Large enrollments need enough training data for every participant to
	// hold at least one sample after partitioning.
	if need := (cfg.K + cfg.Dataset.NumClasses - 1) / cfg.Dataset.NumClasses; need > cfg.Dataset.TrainPerClass {
		cfg.Dataset.TrainPerClass = need
	}
	// The deprecated -partition/-dirichlet-alpha flags lower into a
	// scenario Skew; a population-less Skew routes through the exact same
	// partitioner calls, so the alias is bit-identical to the old path.
	switch *partition {
	case "iid":
		cfg.Partition = search.IID
		cfg.Scenario = &scenario.Spec{Skew: &scenario.Skew{Kind: scenario.SkewIID}}
	case "dirichlet":
		cfg.Partition = search.Dirichlet
		cfg.Scenario = &scenario.Spec{Skew: &scenario.Skew{Kind: scenario.SkewDirichlet, Alpha: *dirAlpha}}
	default:
		return fmt.Errorf("unknown partition %q", *partition)
	}
	cfg.DirichletAlpha = *dirAlpha
	if *scenArg != "" {
		spec, err := scenario.Parse(*scenArg)
		if err != nil {
			return err
		}
		cfg.Scenario = spec
	}
	if *personal || *headLR > 0 {
		if cfg.Scenario == nil {
			cfg.Scenario = &scenario.Spec{}
		}
		cfg.Scenario.Personalize = true
		// A scenario file's head_lr survives a bare -personalize; the flag
		// only overrides when explicitly set.
		if *headLR > 0 {
			cfg.Scenario.HeadLR = *headLR
		}
	}
	cfg.WarmupSteps = *warmup
	cfg.SearchSteps = *searchN
	cfg.BatchSize = *batch
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.AlphaOnly = *alphaOnly
	cfg.Lambda = *lambda

	switch *stale {
	case "none":
		cfg.Staleness = staleness.NoStaleness()
	case "severe":
		cfg.Staleness = staleness.Severe()
	case "slight":
		cfg.Staleness = staleness.Slight()
	default:
		return fmt.Errorf("unknown staleness %q", *stale)
	}
	switch *strategy {
	case "hard":
		cfg.Strategy = staleness.Hard
	case "use":
		cfg.Strategy = staleness.Use
	case "throw":
		cfg.Strategy = staleness.Throw
	case "dc":
		cfg.Strategy = staleness.DC
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch *transPol {
	case "adaptive":
		cfg.Transmission = transmission.Adaptive
	case "random":
		cfg.Transmission = transmission.Random
	case "uniform":
		cfg.Transmission = transmission.Uniform
	default:
		return fmt.Errorf("unknown transmission policy %q", *transPol)
	}

	rcfg := search.DefaultRetrainConfig()
	rcfg.Steps = *retrain
	opts := search.PipelineOptions{Centralized: &rcfg}
	if *fedRounds > 0 {
		fcfg := fed.DefaultFedAvgConfig()
		fcfg.Rounds = *fedRounds
		fcfg.Workers = *workers
		if *cohortSz > 0 && *cohortSz < cfg.K {
			// One cohort knob across phases: the P3 federated retrain
			// samples the same share of the population per round.
			fcfg.ClientFraction = float64(*cohortSz) / float64(cfg.K)
		}
		opts.Federated = &fcfg
	}

	registry := telemetry.NewRegistry()
	opts.Registry = registry
	if *debugAddr != "" {
		dbg, err := telemetry.StartDebugServer(*debugAddr, registry)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint on http://%s (/metrics, /healthz, /debug/pprof/)\n", dbg.Addr())
	}
	if *traceOut != "" {
		tracer, err := telemetry.OpenJSONL(*traceOut)
		if err != nil {
			return err
		}
		tracer.SetDropCounter(registry.Counter("trace_dropped_total",
			"trace events dropped after a trace-file write failure"))
		opts.Tracer = tracer
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fedsearch: trace:", err)
			} else {
				fmt.Printf("trace written to %s (%d events)\n", *traceOut, tracer.Events())
			}
		}()
	}

	cohortNote := ""
	if *cohortSz > 0 && *cohortSz < cfg.K {
		cohortNote = fmt.Sprintf(" (cohort %d/round)", *cohortSz)
	}
	fmt.Printf("P1 warm-up (%d rounds) + P2 search (%d rounds), K=%d%s, %s/%s…\n",
		cfg.WarmupSteps, cfg.SearchSteps, cfg.K, cohortNote, cfg.Dataset.Name, *partition)
	opts.Resume = *resume
	opts.CheckpointPath = *ckptOut
	opts.CheckpointEvery = *ckptEvery
	if *resume != "" {
		fmt.Printf("resuming from %s\n", *resume)
	}
	res, err := search.RunPipeline(cfg, opts)
	if err != nil {
		return err
	}
	if *ckptOut != "" {
		fmt.Printf("checkpoint written to %s\n", *ckptOut)
	}
	if *genoOut != "" {
		if err := nas.SaveGenotype(*genoOut, res.Genotype); err != nil {
			return err
		}
		fmt.Printf("genotype written to %s\n", *genoOut)
	}
	fmt.Printf("searched genotype: %v\n", res.Genotype)
	fmt.Printf("search curve: start %.3f -> tail %.3f (entropy %.4f)\n",
		firstVal(res.SearchCurve.Values()), res.SearchCurve.TailMean(10), res.EntropyCurve.Last())
	fmt.Printf("virtual search time: %.2f h | sub-model %.3f MB vs supernet %.3f MB\n",
		res.SearchSeconds/3600, res.MeanSubModelMB, res.SupernetMB)
	fmt.Printf("P4 centralized: error %.2f%% (%d params)\n",
		res.Centralized.TestErr*100, res.Centralized.ParamCount)
	if opts.Federated != nil {
		fmt.Printf("P4 federated:   error %.2f%% (%d params)\n",
			res.Federated.TestErr*100, res.Federated.ParamCount)
	}
	return nil
}

func firstVal(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[0]
}
