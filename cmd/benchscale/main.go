// Command benchscale measures population-scale round cost: it sweeps the
// enrolled participant count K (10 → 10,000 by default) at a fixed sampled
// cohort size and checks that the per-round cost stays flat — the registry
// holds enrolled participants as lazy stubs, the sampler touches O(cohort)
// state per draw, and the sharded aggregation tree merges only sampled
// replies. The numbers land in BENCH_scale.json (produced by
// `make benchscale`).
//
// Usage:
//
//	benchscale [-out BENCH_scale.json] [-enrolled 10,100,1000,10000] [-cohort 8]
//
// Gates (exit non-zero on violation):
//   - ms/round at every K within -max-round-ratio of the smallest-K baseline
//   - allocated bytes per sampled participant within -max-bytes-ratio of
//     the smallest-K baseline
//   - heap below -max-heap-mb at every K
//   - materialized participants bounded by cohort × rounds
//   - final θ bit-identical across -shards counts (the aggregation tree
//     shards by destination parameter index, so any count must match)
//
// The default cohort (8) is deliberately below the smallest default K so
// cohort sampling is active in every row, including the baseline — a
// full-population row has structurally different per-seat overhead and
// would skew the flatness ratios.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/search"
	"fedrlnas/internal/tensor"
)

type runResult struct {
	Enrolled int `json:"enrolled"`
	Cohort   int `json:"cohort"`
	Rounds   int `json:"rounds"`
	// MsPerRound is the timed-phase wall-clock per search round.
	MsPerRound float64 `json:"ms_per_round"`
	// BytesPerSampled is allocated bytes per sampled participant per round
	// (TotalAlloc delta over the timed rounds) — the per-cohort-seat cost
	// that must not grow with enrollment.
	BytesPerSampled uint64 `json:"bytes_per_sampled_participant"`
	// Materialized counts participants that ever built model/batch state;
	// MaterializedCap is the cohort×rounds ceiling the lazy registry must
	// respect.
	Materialized    int `json:"materialized_participants"`
	MaterializedCap int `json:"materialized_cap"`
	// HeapAllocMB is the live heap after the run (post-GC).
	HeapAllocMB float64 `json:"heap_alloc_mb"`
	// Ratios are vs. the smallest-K baseline row (1.0 for the baseline).
	RoundRatio float64 `json:"round_ratio_vs_baseline"`
	BytesRatio float64 `json:"bytes_ratio_vs_baseline"`
	Pass       bool    `json:"pass"`
}

type shardCheck struct {
	Enrolled    int      `json:"enrolled"`
	Shards      []int    `json:"shards"`
	ThetaHashes []string `json:"theta_hashes"`
	Identical   bool     `json:"identical"`
}

type gates struct {
	MaxRoundRatio float64 `json:"max_round_ratio"`
	MaxBytesRatio float64 `json:"max_bytes_ratio"`
	MaxHeapMB     float64 `json:"max_heap_mb"`
}

type report struct {
	Workload   string `json:"workload"`
	CohortSize int    `json:"cohort_size"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Kernel records the CPU features detected at init and the GEMM
	// micro-kernel variants selected, so numbers are comparable across hosts.
	Kernel     tensor.KernelFeatures `json:"kernel"`
	Gates      gates                 `json:"gates"`
	Results    []runResult           `json:"results"`
	ShardCheck shardCheck            `json:"shard_check"`
	Pass       bool                  `json:"pass"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchscale:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchscale", flag.ContinueOnError)
	var (
		out         = fs.String("out", "BENCH_scale.json", "write the JSON report here (empty = stdout only)")
		enrolledArg = fs.String("enrolled", "10,100,1000,10000", "comma-separated enrolled population sizes to sweep")
		cohortSz    = fs.Int("cohort", 8, "participants sampled per round at every population size")
		warmup      = fs.Int("warmup", 2, "untimed warm-up rounds per run")
		rounds      = fs.Int("rounds", 96, "timed search rounds per run (gate-draw op-mix variance averages out ~1/sqrt(rounds))")
		workers     = fs.Int("workers", 0, "engine worker goroutines (0 = NumCPU)")
		shardsArg   = fs.String("shards", "1,2,4,8", "shard counts for the θ bit-identity check")
		seed        = fs.Int64("seed", 1, "search seed")
		maxRound    = fs.Float64("max-round-ratio", 1.25, "gate: ms/round at any K over the smallest-K baseline")
		maxBytes    = fs.Float64("max-bytes-ratio", 1.05, "gate: bytes per sampled participant over the baseline")
		maxHeapMB   = fs.Float64("max-heap-mb", 512, "gate: post-run live heap at any K, in MB")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseIntList(*enrolledArg)
	if err != nil {
		return fmt.Errorf("-enrolled: %w", err)
	}
	shardCounts, err := parseIntList(*shardsArg)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}

	rep := report{
		Workload:   fmt.Sprintf("population-scale cohort=%d", *cohortSz),
		CohortSize: *cohortSz,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Kernel:     tensor.KernelInfo(),
		Gates:      gates{MaxRoundRatio: *maxRound, MaxBytesRatio: *maxBytes, MaxHeapMB: *maxHeapMB},
		Pass:       true,
	}

	for _, enrolled := range sizes {
		r, err := benchOne(enrolled, *cohortSz, *warmup, *rounds, *workers, *seed)
		if err != nil {
			return err
		}
		base := r
		if len(rep.Results) > 0 {
			base = rep.Results[0]
		}
		r.RoundRatio = ratio(r.MsPerRound, base.MsPerRound)
		r.BytesRatio = ratio(float64(r.BytesPerSampled), float64(base.BytesPerSampled))
		r.Pass = r.RoundRatio <= *maxRound &&
			r.BytesRatio <= *maxBytes &&
			r.HeapAllocMB <= *maxHeapMB &&
			r.Materialized <= r.MaterializedCap
		if !r.Pass {
			rep.Pass = false
		}
		rep.Results = append(rep.Results, r)
		fmt.Printf("enrolled=%-6d %8.2f ms/round (%.2fx)  %8d B/sampled (%.3fx)  heap %6.1f MB  materialized %d/%d  %s\n",
			r.Enrolled, r.MsPerRound, r.RoundRatio, r.BytesPerSampled, r.BytesRatio,
			r.HeapAllocMB, r.Materialized, r.MaterializedCap, passStr(r.Pass))
	}

	// Bit-identity across the aggregation tree's shard counts, at a
	// population size where cohort sampling is actually active.
	shardK := sizes[0]
	for _, k := range sizes {
		if k > *cohortSz {
			shardK = k
			break
		}
	}
	rep.ShardCheck = shardCheck{Enrolled: shardK, Shards: shardCounts, Identical: true}
	for _, shards := range shardCounts {
		h, err := thetaHash(shardK, *cohortSz, *warmup, 3, *workers, *seed, shards)
		if err != nil {
			return err
		}
		rep.ShardCheck.ThetaHashes = append(rep.ShardCheck.ThetaHashes, fmt.Sprintf("%#x", h))
		if rep.ShardCheck.ThetaHashes[0] != rep.ShardCheck.ThetaHashes[len(rep.ShardCheck.ThetaHashes)-1] {
			rep.ShardCheck.Identical = false
		}
	}
	if !rep.ShardCheck.Identical {
		rep.Pass = false
	}
	fmt.Printf("shard bit-identity at K=%d over shards %v: %s\n",
		shardK, shardCounts, passStr(rep.ShardCheck.Identical))

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}
	if !rep.Pass {
		return fmt.Errorf("scale gates violated (see %s)", *out)
	}
	return nil
}

// scaleConfig builds the sweep workload: a tiny supernet so the sweep is
// dominated by round mechanics rather than GEMM time, and a synthetic
// dataset sized so every enrolled participant holds one full batch —
// per-participant work is then constant across population sizes.
func scaleConfig(enrolled, cohortSz, warmup, rounds, workers int, seed int64, shards int) search.Config {
	cfg := search.DefaultConfig()
	// Exactly one batch of data per enrolled participant, at every K: the
	// per-seat workload (batch build, shuffle cadence, training shapes) is
	// then identical across population sizes and the sweep isolates round
	// mechanics.
	const batch = 8
	perClass := (enrolled*batch + 4) / 5
	cfg.Dataset = data.Spec{
		Name: "scale", NumClasses: 5, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: perClass, TestPerClass: 5, Noise: 1.0, Confusion: 0.3, Seed: 7,
	}
	cfg.Net = nas.Config{
		InChannels: 2, NumClasses: 5, C: 4, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
	cfg.K = enrolled
	cfg.CohortSize = cohortSz
	cfg.Shards = shards
	cfg.WarmupSteps = warmup
	cfg.SearchSteps = rounds
	cfg.BatchSize = batch
	cfg.Workers = workers
	cfg.Seed = seed
	return cfg
}

// benchOne times `rounds` cohort-sampled search rounds at the given
// enrollment. Warm-up rounds run untimed so buffer pools and batch norms
// are in steady state before measurement.
func benchOne(enrolled, cohortSz, warmup, rounds, workers int, seed int64) (runResult, error) {
	cfg := scaleConfig(enrolled, cohortSz, warmup, rounds, workers, seed, 0)
	s, err := search.New(cfg)
	if err != nil {
		return runResult{}, err
	}
	if err := s.Warmup(); err != nil {
		return runResult{}, err
	}
	// Pre-materialize the timed rounds' cohorts outside the measured
	// region: the schedule is a pure function of the seed, so upcoming
	// participant state can be prefetched — the timed region then measures
	// steady-state round mechanics rather than one-time construction.
	pop := s.Population()
	for t := cfg.WarmupSteps; t < cfg.WarmupSteps+rounds; t++ {
		for _, pid := range s.CohortFor(t) {
			if _, err := pop.Get(pid); err != nil {
				return runResult{}, err
			}
		}
	}

	// GC pauses evict sync.Pool scratch buffers at timing-dependent points,
	// which makes the allocation count noisy across runs. The timed region
	// allocates little (KBs per cohort seat per round), so holding GC off
	// for its duration makes bytes-per-seat reproducible without distorting
	// the workload.
	var before, after runtime.MemStats
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	runtime.ReadMemStats(&before)
	start := time.Now()
	runErr := s.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	debug.SetGCPercent(gcPct)
	if runErr != nil {
		return runResult{}, runErr
	}
	runtime.GC()
	var live runtime.MemStats
	runtime.ReadMemStats(&live)

	sampled := cohortSz
	if sampled <= 0 || sampled > enrolled {
		sampled = enrolled
	}
	matCap := sampled * (warmup + rounds)
	if matCap > enrolled {
		matCap = enrolled
	}
	return runResult{
		Enrolled:        enrolled,
		Cohort:          sampled,
		Rounds:          rounds,
		MsPerRound:      elapsed.Seconds() * 1e3 / float64(rounds),
		BytesPerSampled: (after.TotalAlloc - before.TotalAlloc) / uint64(rounds*sampled),
		Materialized:    s.Population().Materialized(),
		MaterializedCap: matCap,
		HeapAllocMB:     float64(live.HeapAlloc) / (1 << 20),
	}, nil
}

// thetaHash runs a short search at the given shard count and fingerprints
// the final supernet parameters down to the bit (FNV-1a over each
// float64's LE bytes).
func thetaHash(enrolled, cohortSz, warmup, rounds, workers int, seed int64, shards int) (uint64, error) {
	cfg := scaleConfig(enrolled, cohortSz, warmup, rounds, workers, seed, shards)
	s, err := search.New(cfg)
	if err != nil {
		return 0, err
	}
	if err := s.Warmup(); err != nil {
		return 0, err
	}
	if err := s.Run(); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range s.Supernet().Params() {
		for _, v := range p.Value.Data() {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64(), nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func ratio(v, base float64) float64 {
	if base <= 0 {
		return 1
	}
	return v / base
}

func passStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
