// Command benchprofiles benchmarks the scenario engine end to end and
// emits the BENCH_profiles.json artifact (`make benchprofiles`). Three
// sections:
//
//  1. Determinism pin: an in-process 3-participant loopback RPC search
//     with an EMPTY scenario must land on the exact pre-scenario final θ
//     hash (the same constant TestNoFaultBitIdentityPinned pins) — the
//     scenario layer lowers to nothing when nothing is asked of it.
//  2. Profile matrix: a short search per catalog profile plus one mixed
//     population, reporting wall ms/round, virtual search time, tail
//     training accuracy, argmax-genotype test accuracy, and churn skips.
//  3. Personalization A/B: under heavy Dirichlet skew, per-client
//     classifier heads must beat the shared global head on test sets
//     matched to each client's label distribution (the pass gate).
//
// Usage:
//
//	benchprofiles [-out BENCH_profiles.json] [-k 8] [-warmup 6] [-search 12] [-gate]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/rpcfed"
	"fedrlnas/internal/scenario"
	"fedrlnas/internal/search"
)

// pinnedTheta is the fault-free 3-worker loopback hash captured before the
// lifecycle refactor; rpcfed's TestNoFaultBitIdentityPinned pins the same
// constant. An empty scenario must reproduce it bit for bit.
const pinnedTheta = "87728da48c6b8b24"

type pinReport struct {
	Scenario string `json:"scenario"`
	Theta    string `json:"theta_hash"`
	Pinned   string `json:"pinned_hash"`
	Match    bool   `json:"match"`
}

type profileRow struct {
	Name       string  `json:"name"`
	Population string  `json:"population"`
	Speed      float64 `json:"speed"`
	Churn      float64 `json:"churn"`
	SkewAlpha  float64 `json:"skew_alpha"`

	Rounds         int     `json:"rounds"`
	WallMsPerRound float64 `json:"wall_ms_per_round"`
	VirtualHours   float64 `json:"virtual_hours"`
	TailTrainAcc   float64 `json:"tail_train_acc"`
	TestAcc        float64 `json:"test_acc"`
	OfflineSkips   int     `json:"offline_skips"`
	Genotype       string  `json:"genotype"`
}

type abReport struct {
	DirichletAlpha float64 `json:"dirichlet_alpha"`
	K              int     `json:"k"`
	Rounds         int     `json:"rounds"`
	GlobalAcc      float64 `json:"global_acc"`
	PersonalAcc    float64 `json:"personal_acc"`
	Improved       bool    `json:"improved"`
}

type report struct {
	K      int    `json:"k"`
	Warmup int    `json:"warmup_rounds"`
	Search int    `json:"search_rounds"`
	CPUs   int    `json:"cpus"`
	Seed   int64  `json:"seed"`
	Quick  string `json:"config"`

	Pin             pinReport    `json:"empty_scenario_pin"`
	Profiles        []profileRow `json:"profiles"`
	Personalization abReport     `json:"personalization"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchprofiles:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchprofiles", flag.ContinueOnError)
	var (
		out    = fs.String("out", "BENCH_profiles.json", "write the JSON report here (empty = stdout only)")
		k      = fs.Int("k", 8, "participants per scenario run")
		warmup = fs.Int("warmup", 6, "warm-up rounds per run")
		steps  = fs.Int("search", 12, "search rounds per run")
		seed   = fs.Int64("seed", 1, "run seed")
		gate   = fs.Bool("gate", true, "enforce the personalized >= global pass gate; disable for 1-round smoke runs (the θ pin gate is always on)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep := report{
		K: *k, Warmup: *warmup, Search: *steps,
		CPUs: runtime.NumCPU(), Seed: *seed,
		Quick: "synthetic quick config (tiny dataset, 2-layer supernet)",
	}

	// 1. Empty-scenario determinism pin.
	pin, err := runPin()
	if err != nil {
		return fmt.Errorf("pin run: %w", err)
	}
	rep.Pin = pin
	fmt.Printf("empty-scenario pin: theta %s (pinned %s) match=%v\n", pin.Theta, pin.Pinned, pin.Match)
	if !pin.Match {
		return fmt.Errorf("empty scenario changed the pinned θ hash: %s != %s", pin.Theta, pin.Pinned)
	}

	// 2. Profile matrix: every catalog profile, then a mixed population.
	populations := make([]string, 0, 8)
	for _, p := range scenario.Catalog() {
		populations = append(populations, p.Name)
	}
	populations = append(populations, "70%phone-urban+30%iot-rural")
	for _, pop := range populations {
		row, err := runProfile(pop, *k, *warmup, *steps, *seed)
		if err != nil {
			return fmt.Errorf("profile %s: %w", pop, err)
		}
		rep.Profiles = append(rep.Profiles, row)
		fmt.Printf("%-32s %6.1f ms/round  test acc %.3f  offline %d\n",
			row.Population, row.WallMsPerRound, row.TestAcc, row.OfflineSkips)
	}

	// 3. Personalization A/B under heavy skew.
	ab, err := runPersonalizationAB(*k, *warmup, *steps, *seed)
	if err != nil {
		return fmt.Errorf("personalization A/B: %w", err)
	}
	rep.Personalization = ab
	fmt.Printf("personalization (alpha=%.2f): global %.3f vs personal %.3f -> improved=%v\n",
		ab.DirichletAlpha, ab.GlobalAcc, ab.PersonalAcc, ab.Improved)
	if *gate && !ab.Improved {
		return fmt.Errorf("personalized heads (%.3f) did not reach global accuracy (%.3f) under skew",
			ab.PersonalAcc, ab.GlobalAcc)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}
	return nil
}

// runPin reproduces the rpcfed no-fault pin configuration — 3 loopback
// participants, the rpct dataset, IID shards — after proving the empty
// scenario resolves to nothing, and returns the final θ hash.
func runPin() (pinReport, error) {
	rep := pinReport{Scenario: "", Pinned: pinnedTheta}

	// The empty scenario must lower to a no-op: no profiles, no skew.
	spec, err := scenario.Parse("")
	if err != nil {
		return rep, err
	}
	if !spec.IsZero() {
		return rep, fmt.Errorf("Parse(%q) produced a non-zero spec", "")
	}
	if profiles, _, err := (&scenario.Spec{}).Resolve(); err != nil || len(profiles) != 0 {
		return rep, fmt.Errorf("empty spec resolved to %d profiles (err=%v)", len(profiles), err)
	}

	net4 := nas.Config{InChannels: 2, NumClasses: 4, C: 3, Layers: 2, Nodes: 1, Candidates: nas.AllOps}
	ds, err := data.Generate(data.Spec{
		Name: "rpct", NumClasses: 4, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 24, TestPerClass: 6, Noise: 1.0, Confusion: 0.3, Seed: 13,
	})
	if err != nil {
		return rep, err
	}
	// With no profiles the partition falls back to the plain IID split the
	// pre-scenario deployment used.
	part, err := data.IIDPartition(ds.NumTrain(), 3, rand.New(rand.NewSource(5)))
	if err != nil {
		return rep, err
	}

	var (
		addrs     []string
		listeners []net.Listener
	)
	defer func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		svc, err := rpcfed.NewParticipantService(i, ds, part.Indices[i], net4, int64(100+i))
		if err != nil {
			return rep, err
		}
		ln, _, err := svc.Serve("127.0.0.1:0")
		if err != nil {
			return rep, err
		}
		listeners = append(listeners, ln)
		addrs = append(addrs, ln.Addr().String())
	}

	cfg := rpcfed.DefaultServerConfig(net4)
	cfg.Rounds = 6
	cfg.BatchSize = 8
	cfg.Quorum = 1
	cfg.Transport.Workers = 2
	cfg.Seed = 7
	srv, err := rpcfed.NewServer(cfg, addrs)
	if err != nil {
		return rep, err
	}
	defer srv.Close()
	if _, err := srv.Run(); err != nil {
		return rep, err
	}
	rep.Theta = thetaHash(srv)
	rep.Match = rep.Theta == rep.Pinned
	return rep, nil
}

// quickConfig is the shared in-process search workload: a tiny synthetic
// dataset and a 2-layer supernet, sized so the whole matrix runs in seconds.
func quickConfig(k, warmup, steps int, seed int64) search.Config {
	cfg := search.DefaultConfig()
	cfg.Dataset = data.Spec{
		Name: "profbench", NumClasses: 5, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 40, TestPerClass: 10, Noise: 1.0, Confusion: 0.3, Seed: 91,
	}
	cfg.Net = nas.Config{
		InChannels: 2, NumClasses: 5, C: 4, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
	cfg.K = k
	cfg.BatchSize = 8
	cfg.WarmupSteps = warmup
	cfg.SearchSteps = steps
	cfg.Seed = seed
	return cfg
}

// runSearch builds and runs one scenario search, returning it with the
// elapsed wall time.
func runSearch(cfg search.Config) (*search.Search, time.Duration, error) {
	s, err := search.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := s.Warmup(); err != nil {
		return nil, 0, err
	}
	if err := s.Run(); err != nil {
		return nil, 0, err
	}
	return s, time.Since(start), nil
}

func runProfile(pop string, k, warmup, steps int, seed int64) (profileRow, error) {
	spec, err := scenario.Parse(pop)
	if err != nil {
		return profileRow{}, err
	}
	cfg := quickConfig(k, warmup, steps, seed)
	cfg.Scenario = spec
	s, elapsed, err := runSearch(cfg)
	if err != nil {
		return profileRow{}, err
	}

	row := profileRow{Name: spec.Name, Population: pop, Rounds: warmup + steps}
	profiles, assignment := s.Profiles()
	if len(profiles) == 1 {
		row.Speed = profiles[0].SpeedFactor()
		row.Churn = profiles[0].Churn
		row.SkewAlpha = profiles[0].SkewAlpha
	} else {
		// Mixed population: report the assignment-weighted means.
		for _, g := range assignment {
			row.Speed += profiles[g].SpeedFactor()
			row.Churn += profiles[g].Churn
			row.SkewAlpha += profiles[g].SkewAlpha
		}
		row.Speed /= float64(len(assignment))
		row.Churn /= float64(len(assignment))
		row.SkewAlpha /= float64(len(assignment))
	}
	row.WallMsPerRound = elapsed.Seconds() * 1e3 / float64(row.Rounds)
	row.VirtualHours = s.TotalSeconds() / 3600
	row.TailTrainAcc = s.SearchCurve.TailMean(5)
	row.OfflineSkips = s.Stats.Offline
	row.Genotype = s.Derive().String()

	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return profileRow{}, err
	}
	allTest := make([]int, ds.NumTest())
	for i := range allTest {
		allTest[i] = i
	}
	row.TestAcc = s.EvalGates(s.ArgmaxGates(), allTest, 16, -1)
	return row, nil
}

// runPersonalizationAB runs the same heavily skewed search twice — global
// head vs per-client heads — and scores each client on a test set matched
// to its own label distribution.
func runPersonalizationAB(k, warmup, steps int, seed int64) (abReport, error) {
	const alpha = 0.1
	rep := abReport{DirichletAlpha: alpha, K: k, Rounds: warmup + steps}

	base := quickConfig(k, warmup, steps, seed)
	skew := &scenario.Skew{Kind: scenario.SkewDirichlet, Alpha: alpha}

	global := base
	global.Scenario = &scenario.Spec{Skew: skew}
	sg, _, err := runSearch(global)
	if err != nil {
		return rep, fmt.Errorf("global run: %w", err)
	}

	personal := base
	personal.Scenario = &scenario.Spec{Skew: skew, Personalize: true}
	sp, _, err := runSearch(personal)
	if err != nil {
		return rep, fmt.Errorf("personalized run: %w", err)
	}
	if !sp.Personalized() {
		return rep, fmt.Errorf("personalized run did not enable heads")
	}

	ds, err := data.Generate(base.Dataset)
	if err != nil {
		return rep, err
	}
	// Both runs share the partition RNG stream, so client pid holds the
	// same shard in each; score every client on its matched test slice.
	part := sp.Partition()
	var globalSum, personalSum float64
	clients := 0
	for pid, idxs := range part.Indices {
		dist := make([]float64, base.Dataset.NumClasses)
		for _, idx := range idxs {
			dist[ds.TrainLabels[idx]] += 1 / float64(len(idxs))
		}
		testIdx := scenario.PersonalTestIndices(dist, ds.TestLabels, ds.NumTest())
		if len(testIdx) == 0 {
			continue
		}
		globalSum += sg.EvalGates(sg.ArgmaxGates(), testIdx, 16, -1)
		personalSum += sp.EvalGates(sp.ArgmaxGates(), testIdx, 16, pid)
		clients++
	}
	if clients == 0 {
		return rep, fmt.Errorf("no clients with a matched test set")
	}
	rep.GlobalAcc = globalSum / float64(clients)
	rep.PersonalAcc = personalSum / float64(clients)
	// Guard against NaN sneaking through the gate comparison.
	if math.IsNaN(rep.GlobalAcc) || math.IsNaN(rep.PersonalAcc) {
		return rep, fmt.Errorf("accuracy is NaN (global %v, personal %v)", rep.GlobalAcc, rep.PersonalAcc)
	}
	rep.Improved = rep.PersonalAcc >= rep.GlobalAcc
	return rep, nil
}

// thetaHash fingerprints the final supernet parameters (FNV-1a over each
// float64's LE bytes), the same fingerprint the rpcfed determinism tests
// use.
func thetaHash(s *rpcfed.Server) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range s.Supernet().Params() {
		for _, v := range p.Value.Data() {
			bits := math.Float64bits(v)
			for i := 0; i < 64; i += 8 {
				h ^= uint64(byte(bits >> i))
				h *= prime64
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}
