// Command benchchaos soaks the federated RPC stack against participant
// churn: it runs a real search server over K in-process participants on
// loopback TCP, each behind a fault injector, kills a subset mid-run and
// resurrects one of them, and verifies that the server completes every
// round without hanging and re-absorbs the recovered participant
// (redials_total > 0). It also runs the identical workload fault-free and
// reports that run's final θ hash, which must be independent of the chaos
// layer being compiled in at all (the BENCH_chaos.json artifact produced
// by `make benchchaos`).
//
// Usage:
//
//	benchchaos [-out BENCH_chaos.json] [-k 8] [-rounds 30] \
//	    [-kill 1,5] [-kill-after 5] [-recover-after 12] \
//	    [-chaos latency=1ms,jitter=1ms,seed=7] [-timeout 120s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fedrlnas/internal/chaos"
	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/rpcfed"
	"fedrlnas/internal/telemetry"
)

type report struct {
	Workload string `json:"workload"`
	K        int    `json:"k"`
	Rounds   int    `json:"rounds"`
	Batch    int    `json:"batch"`
	CPUs     int    `json:"cpus"`
	Killed   []int  `json:"killed_participants"`
	Revived  int    `json:"revived_participant"`

	RoundsCompleted      int     `json:"rounds_completed"`
	ElapsedSeconds       float64 `json:"elapsed_seconds"`
	FreshReplies         int     `json:"fresh_replies"`
	LateReplies          int     `json:"late_replies"`
	DroppedReplies       int     `json:"dropped_replies"`
	RoundTimeouts        int64   `json:"round_timeouts_total"`
	Redials              int64   `json:"redials_total"`
	RedialAttempts       int64   `json:"redial_attempts_total"`
	CallDeadlineExceeded int64   `json:"call_deadline_exceeded_total"`
	FaultsInjected       int64   `json:"faults_injected_total"`
	ChaosKills           int64   `json:"chaos_kills_total"`
	FinalStates          []any   `json:"final_participant_states"`

	// Latency percentiles from the registry's lock-free histograms (upper
	// bucket bounds, so within 2x of the true rank value). Zero when the
	// histogram saw no samples.
	RoundP50Ms float64 `json:"round_p50_ms"`
	RoundP99Ms float64 `json:"round_p99_ms"`
	CallP50Ms  float64 `json:"rpc_call_p50_ms"`
	CallP99Ms  float64 `json:"rpc_call_p99_ms"`

	ChaosTheta   string `json:"chaos_theta_hash"`
	NoFaultTheta string `json:"no_fault_theta_hash"`

	// AllRoundsCompleted and RecoveredPeerAlive are the soak's pass gates.
	AllRoundsCompleted bool `json:"all_rounds_completed"`
	RecoveredPeerAlive bool `json:"recovered_peer_alive"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchchaos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchchaos", flag.ContinueOnError)
	var (
		out          = fs.String("out", "BENCH_chaos.json", "write the JSON report here (empty = stdout only)")
		k            = fs.Int("k", 8, "participants on loopback")
		rounds       = fs.Int("rounds", 30, "search rounds")
		batch        = fs.Int("batch", 8, "participant batch size")
		seed         = fs.Int64("seed", 7, "shared deployment seed")
		quorum       = fs.Float64("quorum", 0.8, "fraction of live participants whose replies close a round")
		killList     = fs.String("kill", "1,5", "comma-separated participant ids to kill mid-run")
		killAfter    = fs.Int("kill-after", 5, "kill the victims once this many rounds completed")
		recoverAfter = fs.Int("recover-after", 12, "resurrect the first victim once this many rounds completed")
		chaosSpec    = fs.String("chaos", "", "background fault spec applied to every participant (see -chaos on fedrpc worker)")
		roundTO      = fs.Duration("round-timeout", 500*time.Millisecond, "server round timeout")
		callTO       = fs.Duration("call-timeout", 300*time.Millisecond, "per-RPC deadline")
		watchdog     = fs.Duration("timeout", 120*time.Second, "abort if the soak has not finished after this long")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	victims, err := parseKillList(*killList, *k)
	if err != nil {
		return err
	}
	if *killAfter >= *rounds || *recoverAfter >= *rounds {
		return fmt.Errorf("kill-after/recover-after must leave rounds to run (rounds=%d)", *rounds)
	}
	bg, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		return err
	}

	rep := report{
		Workload: fmt.Sprintf("chaos-soak-k%d", *k),
		K:        *k, Rounds: *rounds, Batch: *batch,
		CPUs:   runtime.NumCPU(),
		Killed: victims, Revived: victims[0],
	}

	// Fault-free reference first: same cluster topology minus the kill
	// schedule. Its θ hash is the determinism anchor — it must match a
	// build of this workload without any chaos plumbing at all.
	noFault, err := runOnce(*k, *rounds, *batch, *seed, *quorum, *roundTO, *callTO,
		bg, nil, -1, -1, *watchdog)
	if err != nil {
		return fmt.Errorf("no-fault reference run: %w", err)
	}
	rep.NoFaultTheta = noFault.theta
	fmt.Printf("no-fault reference: %d rounds in %.1fs, theta %s\n",
		noFault.res.RoundsCompleted, noFault.elapsed.Seconds(), noFault.theta)

	soak, err := runOnce(*k, *rounds, *batch, *seed, *quorum, *roundTO, *callTO,
		bg, victims, *killAfter, *recoverAfter, *watchdog)
	if err != nil {
		return fmt.Errorf("chaos soak: %w", err)
	}
	rep.ChaosTheta = soak.theta
	rep.RoundsCompleted = soak.res.RoundsCompleted
	rep.ElapsedSeconds = soak.elapsed.Seconds()
	rep.FreshReplies = soak.res.FreshReplies
	rep.LateReplies = soak.res.LateReplies
	rep.DroppedReplies = soak.res.DroppedReplies
	rep.RoundTimeouts = soak.timeouts
	rep.Redials = soak.redials
	rep.RedialAttempts = soak.redialAttempts
	rep.CallDeadlineExceeded = soak.deadlineExceeded
	rep.FaultsInjected = soak.faults
	rep.ChaosKills = soak.kills
	rep.RoundP50Ms = soak.roundP50
	rep.RoundP99Ms = soak.roundP99
	rep.CallP50Ms = soak.callP50
	rep.CallP99Ms = soak.callP99
	for _, st := range soak.states {
		rep.FinalStates = append(rep.FinalStates, st)
	}
	rep.AllRoundsCompleted = soak.res.RoundsCompleted == *rounds
	rep.RecoveredPeerAlive = soak.states[victims[0]].State == "alive"

	fmt.Printf("chaos soak: %d/%d rounds in %.1fs | %d timeouts, %d redials (%d attempts), %d deadline-exceeded, %d kills\n",
		soak.res.RoundsCompleted, *rounds, soak.elapsed.Seconds(),
		soak.timeouts, soak.redials, soak.redialAttempts, soak.deadlineExceeded, soak.kills)
	fmt.Printf("  latency: round p50 %.1fms p99 %.1fms | rpc p50 %.1fms p99 %.1fms\n",
		soak.roundP50, soak.roundP99, soak.callP50, soak.callP99)
	for _, st := range soak.states {
		fmt.Printf("  participant %d (%s): %s\n", st.ID, st.Addr, st.State)
	}

	// Pass gates.
	if !rep.AllRoundsCompleted {
		return fmt.Errorf("server completed %d/%d rounds under chaos", soak.res.RoundsCompleted, *rounds)
	}
	if soak.redials < 1 {
		return fmt.Errorf("redials_total = %d: the revived participant was never re-absorbed", soak.redials)
	}
	if !rep.RecoveredPeerAlive {
		return fmt.Errorf("revived participant %d ended the run %s, want alive",
			victims[0], soak.states[victims[0]].State)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	} else {
		os.Stdout.Write(blob)
	}
	return nil
}

func parseKillList(list string, k int) ([]int, error) {
	var victims []int
	for _, f := range strings.Split(list, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -kill entry %q: %w", f, err)
		}
		if id < 0 || id >= k {
			return nil, fmt.Errorf("-kill id %d outside [0,%d)", id, k)
		}
		victims = append(victims, id)
	}
	if len(victims) == 0 {
		return nil, fmt.Errorf("-kill list is empty")
	}
	return victims, nil
}

// soakNet matches benchrpc's workload shape: conv-dominated payloads, but
// small enough that K participants train on one host in seconds.
func soakNet() nas.Config {
	return nas.Config{
		InChannels: 3, NumClasses: 10, C: 6, Layers: 2, Nodes: 2,
		Candidates: nas.AllOps,
	}
}

type runOutcome struct {
	res     rpcfed.ServerResult
	elapsed time.Duration
	theta   string
	states  []rpcfed.ParticipantStatus

	timeouts, redials, redialAttempts, deadlineExceeded int64
	faults, kills                                       int64

	roundP50, roundP99, callP50, callP99 float64
}

// pctMs reads one percentile off a histogram in milliseconds, mapping the
// empty (NaN) and overflow (+Inf) sentinels to 0 so the value is always
// JSON-encodable.
func pctMs(h *telemetry.Histogram, p float64) float64 {
	v := h.Percentile(p)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v * 1e3
}

// runOnce builds a fresh K-participant loopback cluster (every listener
// wrapped by a fault injector) and runs one search over it. With a nil
// victims list the injectors never fire beyond the background spec — with
// an empty background spec that run is byte-for-byte the plain server
// workload. Otherwise the victims are taken down once killAfter rounds
// completed and victims[0] is brought back after recoverAfter rounds.
func runOnce(k, rounds, batch int, seed int64, quorum float64,
	roundTO, callTO time.Duration, bg chaos.Config,
	victims []int, killAfter, recoverAfter int, watchdog time.Duration) (runOutcome, error) {

	ds, err := data.Generate(data.Spec{
		Name: "chaosbench", NumClasses: 10, Channels: 3, Height: 8, Width: 8,
		TrainPerClass: 32, TestPerClass: 8, Noise: 1.0, Confusion: 0.3, Seed: seed + 12,
	})
	if err != nil {
		return runOutcome{}, err
	}
	part, err := data.IIDPartition(ds.NumTrain(), k, rand.New(rand.NewSource(seed+5)))
	if err != nil {
		return runOutcome{}, err
	}

	reg := telemetry.NewRegistry()
	var (
		addrs     []string
		listeners []net.Listener
		injectors []*chaos.Injector
	)
	defer func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
	}()
	for i := 0; i < k; i++ {
		svc, err := rpcfed.NewParticipantService(i, ds, part.Indices[i], soakNet(), seed+int64(100+i))
		if err != nil {
			return runOutcome{}, err
		}
		cfg := bg
		cfg.Seed = bg.Seed + int64(i) // distinct per-participant fault streams
		inj, err := chaos.New(cfg)
		if err != nil {
			return runOutcome{}, err
		}
		inj.Observe(reg)
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return runOutcome{}, err
		}
		ln := inj.Listener(raw)
		if _, err := svc.ServeListener(ln); err != nil {
			_ = ln.Close()
			return runOutcome{}, err
		}
		listeners = append(listeners, ln)
		injectors = append(injectors, inj)
		addrs = append(addrs, ln.Addr().String())
	}

	scfg := rpcfed.DefaultServerConfig(soakNet())
	scfg.Rounds = rounds
	scfg.BatchSize = batch
	scfg.Quorum = quorum
	scfg.RoundTimeout = roundTO
	scfg.Transport.Workers = 1
	scfg.Transport.CallTimeout = callTO
	scfg.Transport.DialBackoff = 10 * time.Millisecond
	scfg.Seed = seed
	srv, err := rpcfed.NewServer(scfg, addrs)
	if err != nil {
		return runOutcome{}, err
	}
	defer srv.Close()
	srv.SetTelemetry(nil, reg)
	rm := telemetry.NewRoundMetrics(reg) // same handles SetTelemetry registered
	lm := telemetry.NewLifecycleMetrics(reg, k)
	cm := telemetry.NewChaosMetrics(reg)

	// The kill/recover schedule keys off the live rounds counter, so the
	// outage lands mid-search regardless of per-round wall time.
	if len(victims) > 0 {
		go func() {
			waitRounds(rm.Rounds, int64(killAfter))
			for _, v := range victims {
				injectors[v].SetDown(true)
			}
			waitRounds(rm.Rounds, int64(recoverAfter))
			injectors[victims[0]].SetDown(false)
		}()
	}

	type outcome struct {
		res rpcfed.ServerResult
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := srv.Run()
		done <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(watchdog):
		return runOutcome{}, fmt.Errorf("watchdog: run not finished after %v (states: %+v)",
			watchdog, srv.ParticipantStates())
	}
	if out.err != nil {
		return runOutcome{}, out.err
	}
	// The redial loop keeps running until srv.Close, so a recovery that
	// lands in the run's final rounds may complete just after it: give the
	// re-absorption a grace window before snapshotting states.
	if len(victims) > 0 {
		grace := time.Now().Add(15 * time.Second)
		for time.Now().Before(grace) {
			if lm.Redials.Value() >= 1 &&
				srv.ParticipantStates()[victims[0]].State == "alive" {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return runOutcome{
		res:              out.res,
		elapsed:          time.Since(start),
		theta:            thetaHash(srv),
		states:           srv.ParticipantStates(),
		timeouts:         rm.Timeouts.Value(),
		redials:          lm.Redials.Value(),
		redialAttempts:   lm.RedialAttempts.Value(),
		deadlineExceeded: lm.DeadlineExceeded.Value(),
		faults:           cm.Faults.Value(),
		kills:            cm.Kills.Value(),
		roundP50:         pctMs(rm.RoundSeconds, 50),
		roundP99:         pctMs(rm.RoundSeconds, 99),
		callP50:          pctMs(lm.CallSeconds, 50),
		callP99:          pctMs(lm.CallSeconds, 99),
	}, nil
}

func waitRounds(c *telemetry.Counter, want int64) {
	for c.Value() < want {
		time.Sleep(2 * time.Millisecond)
	}
}

// thetaHash fingerprints the final supernet parameters (FNV-1a over each
// float64's LE bytes), comparable across runs and builds.
func thetaHash(s *rpcfed.Server) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range s.Supernet().Params() {
		for _, v := range p.Value.Data() {
			bits := math.Float64bits(v)
			for i := 0; i < 64; i += 8 {
				h ^= uint64(byte(bits >> i))
				h *= prime64
			}
		}
	}
	return fmt.Sprintf("%016x", h)
}
