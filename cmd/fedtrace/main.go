// Command fedtrace is the offline critical-path profiler for traced
// federated runs. It reads the JSONL span timelines written by the server
// and by each worker (separate files, separate processes), stitches them
// into rounds by the wire-propagated trace context, and reports where each
// round's wall-clock actually went:
//
//	dispatch -> slowest participant (decode + train + encode + wire) ->
//	merge -> controller update
//
// Usage:
//
//	fedtrace [-round R] [-slowest N] [-json] [-min-rounds N] trace.jsonl...
//
// Any number of files may be given; server and worker events are told apart
// by their event names, not by which file they came from, so one combined
// stream works too. A span is an orphan when it carries a trace ID but its
// parent does not resolve to any known round span — a traced run must
// stitch with zero orphans, and -min-rounds turns that invariant plus a
// minimum count of complete rounds into a non-zero exit for CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fedrlnas/internal/telemetry"
)

// event mirrors one telemetry JSONL line. Participant is a pointer because
// 0 is a real participant ID while the field is omitted for server-scoped
// events.
type event struct {
	TS          int64   `json:"ts"`
	Event       string  `json:"event"`
	Round       int     `json:"round"`
	Participant *int    `json:"participant"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
	Value       float64 `json:"value"`
	Trace       string  `json:"trace"`
	Span        string  `json:"span"`
	Parent      string  `json:"parent"`

	file string
	line int
}

func (e *event) participant() int {
	if e.Participant == nil {
		return -1
	}
	return *e.Participant
}

// partStats collects the per-participant spans of one round. The server's
// rpc.call measures issue-to-reply; the worker's decode/train/encode spans
// break that same interval down from the other side of the wire.
type partStats struct {
	Participant int     `json:"participant"`
	CallSec     float64 `json:"call_seconds"`
	CallOK      bool    `json:"call_ok"`
	CallBytes   int64   `json:"call_bytes"`
	DecodeSec   float64 `json:"decode_seconds"`
	TrainSec    float64 `json:"train_seconds"`
	EncodeSec   float64 `json:"encode_seconds"`
	hasCall     bool
}

// wireSec is the part of the RPC the worker never saw: framing, kernel
// buffers, the network, and server-side reply decode.
func (p *partStats) wireSec() float64 {
	w := p.CallSec - p.DecodeSec - p.TrainSec - p.EncodeSec
	if w < 0 {
		return 0
	}
	return w
}

// roundPath is one stitched round with its critical-path breakdown.
type roundPath struct {
	Trace string `json:"trace"`
	Round int    `json:"round"`
	// Complete means the round has a start, an end, and at least one
	// stitched worker.train span — enough to attribute its wall-clock.
	Complete bool    `json:"complete"`
	TotalSec float64 `json:"total_seconds"`
	MeanAcc  float64 `json:"mean_accuracy"`

	DispatchSec   float64 `json:"dispatch_seconds"`
	DispatchBytes int64   `json:"dispatch_bytes"`
	MergeSec      float64 `json:"merge_seconds"`
	Contributors  int     `json:"contributors"`
	UpdateSec     float64 `json:"update_seconds"`

	// Critical is the slowest rpc.call of the round — the participant the
	// synchronous barrier actually waited on.
	Critical *partStats `json:"critical_path,omitempty"`
	// OtherSec is wall-clock the spans do not explain (scheduling,
	// evaluation, sampling). Negative values are clamped to 0 and happen
	// only when calls overlap the next round (async staleness).
	OtherSec float64 `json:"other_seconds"`

	Faults int `json:"chaos_faults"`

	parts map[int]*partStats
}

func (r *roundPath) finish() {
	for _, p := range r.parts {
		if r.Critical == nil || p.CallSec > r.Critical.CallSec {
			r.Critical = p
		}
	}
	r.Complete = r.TotalSec > 0
	if r.Critical == nil || r.Critical.TrainSec == 0 {
		r.Complete = false
	}
	if r.Critical != nil {
		r.OtherSec = r.TotalSec - r.DispatchSec - r.Critical.CallSec -
			r.MergeSec - r.UpdateSec
		if r.OtherSec < 0 {
			r.OtherSec = 0
		}
	}
}

func (r *roundPath) part(id int) *partStats {
	p, ok := r.parts[id]
	if !ok {
		p = &partStats{Participant: id}
		r.parts[id] = p
	}
	return p
}

// orphan is a span that claims a trace but no known round span parents it.
type orphan struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Event string `json:"event"`
	Trace string `json:"trace"`
	Span  string `json:"parent"`
}

type profile struct {
	Files   []string     `json:"files"`
	Events  int          `json:"events"`
	Traces  []string     `json:"traces"`
	Rounds  []*roundPath `json:"rounds"`
	Orphans []orphan     `json:"orphans"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fedtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fedtrace", flag.ContinueOnError)
	var (
		roundArg  = fs.Int("round", -1, "show only this round (-1 = all)")
		slowest   = fs.Int("slowest", 0, "show only the N slowest rounds (0 = all)")
		asJSON    = fs.Bool("json", false, "emit the full profile as JSON instead of a table")
		minRounds = fs.Int("min-rounds", 0, "fail unless >= N complete rounds stitched with zero orphans (CI gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no trace files given (want server/worker JSONL paths)")
	}

	events, err := readAll(fs.Args())
	if err != nil {
		return err
	}
	prof := stitch(events)
	prof.Files = fs.Args()

	rounds := prof.Rounds
	if *roundArg >= 0 {
		var keep []*roundPath
		for _, r := range rounds {
			if r.Round == *roundArg {
				keep = append(keep, r)
			}
		}
		rounds = keep
	}
	if *slowest > 0 {
		sorted := append([]*roundPath(nil), rounds...)
		sort.SliceStable(sorted, func(i, j int) bool {
			return sorted[i].TotalSec > sorted[j].TotalSec
		})
		if len(sorted) > *slowest {
			sorted = sorted[:*slowest]
		}
		rounds = sorted
	}

	if *asJSON {
		view := *prof
		view.Rounds = rounds
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&view); err != nil {
			return err
		}
	} else {
		printTable(w, prof, rounds)
	}

	if *minRounds > 0 {
		if n := len(prof.Orphans); n > 0 {
			o := prof.Orphans[0]
			return fmt.Errorf("%d orphan spans (first: %s %s:%d, parent %q)",
				n, o.Event, o.File, o.Line, o.Span)
		}
		complete := 0
		for _, r := range prof.Rounds {
			if r.Complete {
				complete++
			}
		}
		if complete < *minRounds {
			return fmt.Errorf("%d complete rounds stitched, want >= %d", complete, *minRounds)
		}
	}
	return nil
}

func readAll(paths []string) ([]*event, error) {
	var events []*event
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			if len(strings.TrimSpace(sc.Text())) == 0 {
				continue
			}
			e := &event{file: path, line: line}
			if err := json.Unmarshal(sc.Bytes(), e); err != nil {
				f.Close()
				return nil, fmt.Errorf("%s:%d: %w", path, line, err)
			}
			events = append(events, e)
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return events, nil
}

type roundKey struct {
	trace string
	round int
}

// stitch joins every stream into per-round critical paths. round.start
// spans define the set of valid parents; everything else either attaches
// to one of them or is an orphan.
func stitch(events []*event) *profile {
	prof := &profile{Events: len(events)}

	// Pass 1: index the round spans the servers opened.
	spanRound := map[string]roundKey{}
	traces := map[string]bool{}
	rounds := map[roundKey]*roundPath{}
	get := func(k roundKey) *roundPath {
		r, ok := rounds[k]
		if !ok {
			r = &roundPath{Trace: k.trace, Round: k.round, parts: map[int]*partStats{}}
			rounds[k] = r
		}
		return r
	}
	for _, e := range events {
		if e.Event == telemetry.EventRoundStart && e.Trace != "" && e.Span != "" {
			k := roundKey{e.Trace, e.Round}
			spanRound[e.Span] = k
			traces[e.Trace] = true
			get(k)
		}
	}

	// Pass 2: attach every traced span to its round.
	for _, e := range events {
		if e.Trace == "" || e.Event == telemetry.EventRoundStart {
			continue
		}
		k, ok := spanRound[e.Parent]
		if !ok || k.trace != e.Trace {
			prof.Orphans = append(prof.Orphans, orphan{
				File: e.file, Line: e.line, Event: e.Event, Trace: e.Trace, Span: e.Parent,
			})
			continue
		}
		r := get(k)
		switch e.Event {
		case telemetry.EventRoundEnd:
			r.TotalSec = e.Seconds
			r.MeanAcc = e.Value
		case telemetry.EventRoundDispatch:
			r.DispatchSec = e.Seconds
			r.DispatchBytes = e.Bytes
		case telemetry.EventRoundMerge:
			r.MergeSec = e.Seconds
			r.Contributors = int(e.Value)
		case telemetry.EventCtrlUpdate:
			r.UpdateSec = e.Seconds
		case telemetry.EventRPCCall:
			p := r.part(e.participant())
			p.CallSec = e.Seconds
			p.CallOK = e.Value != 0
			p.CallBytes = e.Bytes
			p.hasCall = true
		case telemetry.EventWorkerTrain:
			r.part(e.participant()).TrainSec = e.Seconds
		case telemetry.EventWorkerDecode:
			r.part(e.participant()).DecodeSec = e.Seconds
		case telemetry.EventWorkerEncode:
			r.part(e.participant()).EncodeSec = e.Seconds
		case telemetry.EventChaosFault:
			r.Faults++
		}
	}

	for t := range traces {
		prof.Traces = append(prof.Traces, t)
	}
	sort.Strings(prof.Traces)
	for _, r := range rounds {
		r.finish()
		prof.Rounds = append(prof.Rounds, r)
	}
	sort.Slice(prof.Rounds, func(i, j int) bool {
		a, b := prof.Rounds[i], prof.Rounds[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.Round < b.Round
	})
	return prof
}

func ms(s float64) string { return fmt.Sprintf("%.2f", s*1e3) }

func printTable(w io.Writer, prof *profile, rounds []*roundPath) {
	fmt.Fprintf(w, "fedtrace: %d events, %d trace(s), %d round(s), %d orphan span(s)\n",
		prof.Events, len(prof.Traces), len(prof.Rounds), len(prof.Orphans))
	fmt.Fprintf(w, "%-6s %-9s %-10s %-6s %-9s %-9s %-9s %-9s %-8s %-8s %-8s %-7s\n",
		"round", "total_ms", "dispatch", "crit", "call_ms", "train_ms",
		"codec_ms", "wire_ms", "merge", "update", "other", "faults")
	for _, r := range rounds {
		crit, call, train, codec, wire := "-", "-", "-", "-", "-"
		if p := r.Critical; p != nil {
			crit = fmt.Sprintf("p%d", p.Participant)
			if !p.CallOK && p.hasCall {
				crit += "!"
			}
			call, train = ms(p.CallSec), ms(p.TrainSec)
			codec = ms(p.DecodeSec + p.EncodeSec)
			wire = ms(p.wireSec())
		}
		mark := ""
		if !r.Complete {
			mark = " (incomplete)"
		}
		fmt.Fprintf(w, "%-6d %-9s %-10s %-6s %-9s %-9s %-9s %-9s %-8s %-8s %-8s %-7d%s\n",
			r.Round, ms(r.TotalSec), ms(r.DispatchSec), crit, call, train,
			codec, wire, ms(r.MergeSec), ms(r.UpdateSec), ms(r.OtherSec),
			r.Faults, mark)
	}
	for i, o := range prof.Orphans {
		if i == 5 {
			fmt.Fprintf(w, "orphan: ... and %d more\n", len(prof.Orphans)-5)
			break
		}
		fmt.Fprintf(w, "orphan: %s at %s:%d (trace %s, parent %q)\n",
			o.Event, o.File, o.Line, o.Trace, o.Span)
	}
}
