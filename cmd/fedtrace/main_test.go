package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Two rounds of a K=2 run split across a server file and two worker files,
// the way a real deployment writes them. Round 0's span is "aa", round 1's
// is "bb"; participant 1 is the straggler both rounds.
const serverTrace = `{"ts":1,"event":"round.start","round":0,"bytes":0,"staleness":0,"seconds":0,"value":0,"trace":"f00","span":"aa"}
{"ts":2,"event":"round.dispatch","round":0,"bytes":1000,"staleness":0,"seconds":0.001,"value":0,"trace":"f00","parent":"aa"}
{"ts":3,"event":"rpc.call","round":0,"participant":0,"bytes":500,"staleness":0,"seconds":0.02,"value":1,"trace":"f00","parent":"aa"}
{"ts":4,"event":"rpc.call","round":0,"participant":1,"bytes":500,"staleness":0,"seconds":0.05,"value":1,"trace":"f00","parent":"aa"}
{"ts":5,"event":"round.merge","round":0,"bytes":0,"staleness":0,"seconds":0.002,"value":2,"trace":"f00","parent":"aa"}
{"ts":6,"event":"controller.update","round":0,"bytes":0,"staleness":0,"seconds":0.003,"value":0,"trace":"f00","parent":"aa"}
{"ts":7,"event":"round.end","round":0,"bytes":0,"staleness":0,"seconds":0.08,"value":0.5,"trace":"f00","parent":"aa"}
{"ts":8,"event":"round.start","round":1,"bytes":0,"staleness":0,"seconds":0,"value":0,"trace":"f00","span":"bb"}
{"ts":9,"event":"round.dispatch","round":1,"bytes":1000,"staleness":0,"seconds":0.001,"value":0,"trace":"f00","parent":"bb"}
{"ts":10,"event":"rpc.call","round":1,"participant":0,"bytes":500,"staleness":0,"seconds":0.02,"value":1,"trace":"f00","parent":"bb"}
{"ts":11,"event":"rpc.call","round":1,"participant":1,"bytes":500,"staleness":0,"seconds":0.09,"value":1,"trace":"f00","parent":"bb"}
{"ts":12,"event":"round.merge","round":1,"bytes":0,"staleness":0,"seconds":0.002,"value":2,"trace":"f00","parent":"bb"}
{"ts":13,"event":"controller.update","round":1,"bytes":0,"staleness":0,"seconds":0.003,"value":0,"trace":"f00","parent":"bb"}
{"ts":14,"event":"round.end","round":1,"bytes":0,"staleness":0,"seconds":0.12,"value":0.6,"trace":"f00","parent":"bb"}
`

const worker0Trace = `{"ts":3,"event":"worker.decode","round":0,"participant":0,"bytes":400,"staleness":0,"seconds":0.001,"value":0,"trace":"f00","parent":"aa"}
{"ts":3,"event":"worker.train","round":0,"participant":0,"bytes":0,"staleness":0,"seconds":0.015,"value":0,"trace":"f00","parent":"aa"}
{"ts":3,"event":"worker.encode","round":0,"participant":0,"bytes":450,"staleness":0,"seconds":0.001,"value":0,"trace":"f00","parent":"aa"}
{"ts":10,"event":"worker.train","round":1,"participant":0,"bytes":0,"staleness":0,"seconds":0.015,"value":0,"trace":"f00","parent":"bb"}
`

const worker1Trace = `{"ts":4,"event":"worker.train","round":0,"participant":1,"bytes":0,"staleness":0,"seconds":0.04,"value":0,"trace":"f00","parent":"aa"}
{"ts":11,"event":"worker.decode","round":1,"participant":1,"bytes":400,"staleness":0,"seconds":0.002,"value":0,"trace":"f00","parent":"bb"}
{"ts":11,"event":"worker.train","round":1,"participant":1,"bytes":0,"staleness":0,"seconds":0.07,"value":0,"trace":"f00","parent":"bb"}
{"ts":11,"event":"worker.encode","round":1,"participant":1,"bytes":450,"staleness":0,"seconds":0.003,"value":0,"trace":"f00","parent":"bb"}
{"ts":12,"event":"chaos.fault","round":1,"participant":1,"bytes":0,"staleness":0,"seconds":0,"value":1,"trace":"f00","parent":"bb"}
`

func writeTraces(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	paths := []string{}
	for name, body := range map[string]string{
		"server.jsonl":  serverTrace,
		"worker0.jsonl": worker0Trace,
		"worker1.jsonl": worker1Trace,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

func TestStitchCriticalPath(t *testing.T) {
	paths := writeTraces(t)
	events, err := readAll(paths)
	if err != nil {
		t.Fatal(err)
	}
	prof := stitch(events)
	if len(prof.Orphans) != 0 {
		t.Fatalf("orphans in a clean trace: %+v", prof.Orphans)
	}
	if len(prof.Rounds) != 2 || len(prof.Traces) != 1 {
		t.Fatalf("stitched %d rounds / %d traces, want 2 / 1", len(prof.Rounds), len(prof.Traces))
	}
	for i, r := range prof.Rounds {
		if r.Round != i || !r.Complete {
			t.Fatalf("round %d: got round=%d complete=%v", i, r.Round, r.Complete)
		}
		if r.Critical == nil || r.Critical.Participant != 1 {
			t.Fatalf("round %d critical path should be participant 1: %+v", i, r.Critical)
		}
	}
	r1 := prof.Rounds[1]
	if r1.Critical.CallSec != 0.09 || r1.Critical.TrainSec != 0.07 {
		t.Fatalf("round 1 critical call/train = %v/%v", r1.Critical.CallSec, r1.Critical.TrainSec)
	}
	// wire = call - decode - train - encode = 0.09 - 0.002 - 0.07 - 0.003
	if got := r1.Critical.wireSec(); got < 0.0149 || got > 0.0151 {
		t.Fatalf("round 1 wire seconds = %v, want ~0.015", got)
	}
	// other = total - dispatch - call - merge - update = 0.12-0.001-0.09-0.002-0.003
	if r1.OtherSec < 0.0239 || r1.OtherSec > 0.0241 {
		t.Fatalf("round 1 other seconds = %v, want ~0.024", r1.OtherSec)
	}
	if r1.Faults != 1 {
		t.Fatalf("round 1 chaos faults = %d, want 1", r1.Faults)
	}
	if r0 := prof.Rounds[0]; r0.Faults != 0 || r0.Contributors != 2 {
		t.Fatalf("round 0 faults/contributors = %d/%d", r0.Faults, r0.Contributors)
	}
}

func TestOrphanDetectionAndGate(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.jsonl")
	body := serverTrace +
		`{"ts":99,"event":"worker.train","round":7,"participant":0,"bytes":0,"staleness":0,"seconds":0.1,"value":0,"trace":"f00","parent":"dead"}` + "\n"
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := readAll([]string{p})
	if err != nil {
		t.Fatal(err)
	}
	prof := stitch(events)
	if len(prof.Orphans) != 1 || prof.Orphans[0].Event != "worker.train" {
		t.Fatalf("orphans = %+v, want exactly the dead-parent train span", prof.Orphans)
	}
	// The CI gate must fail on orphans even with enough rounds.
	var buf bytes.Buffer
	err = run([]string{"-min-rounds", "1", p}, &buf)
	if err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("gate accepted an orphaned trace: %v", err)
	}
}

func TestRunFiltersAndJSON(t *testing.T) {
	paths := writeTraces(t)

	var table bytes.Buffer
	if err := run(append([]string{"-min-rounds", "2"}, paths...), &table); err != nil {
		t.Fatalf("table run: %v", err)
	}
	out := table.String()
	for _, want := range []string{"2 round(s)", "0 orphan span(s)", "p1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}

	// -slowest 1 keeps only round 1 (0.12s > 0.08s).
	var slow bytes.Buffer
	if err := run(append([]string{"-slowest", "1", "-json"}, paths...), &slow); err != nil {
		t.Fatal(err)
	}
	if s := slow.String(); !strings.Contains(s, `"round": 1`) || strings.Contains(s, `"round": 0,`) {
		t.Fatalf("-slowest 1 did not isolate round 1:\n%s", s)
	}

	// -round 0 keeps only round 0.
	var one bytes.Buffer
	if err := run(append([]string{"-round", "0", "-json"}, paths...), &one); err != nil {
		t.Fatal(err)
	}
	if s := one.String(); !strings.Contains(s, `"round": 0`) || strings.Contains(s, `"round": 1,`) {
		t.Fatalf("-round 0 did not isolate round 0:\n%s", s)
	}

	// A gate above what the trace holds fails.
	var buf bytes.Buffer
	if err := run(append([]string{"-min-rounds", "3"}, paths...), &buf); err == nil {
		t.Fatal("-min-rounds 3 passed on a 2-round trace")
	}
}
