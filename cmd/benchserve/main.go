// Command benchserve measures the resident serving path: it boots an
// in-process serve.Server per batching policy, keeps a background search
// job training the whole time, serves one fixed genotype with seeded
// weights, and drives it with closed-loop concurrent clients that each
// submit single-example requests. The admission queue coalesces those
// requests into padded batches for one ForwardBatch through the GEMM
// kernels, so sweeping -batches isolates the micro-batching win. The
// numbers land in BENCH_serve.json (produced by `make benchserve`).
//
// Usage:
//
//	benchserve [-out BENCH_serve.json] [-batches 1,8,32] [-clients 32] [-requests 24]
//
// Gates (exit non-zero on violation):
//   - the logits checksum is identical across every batching policy
//     (ForwardBatch is bit-identical to per-request forwards, so batching
//     must never change an answer)
//   - QPS at the largest batch is at least -min-speedup x the batch-1 QPS
//   - the background job completes at least -min-job-rounds search rounds
//     during every measured window (serving must not starve training)
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/search"
	"fedrlnas/internal/serve"
	"fedrlnas/internal/tensor"
)

type runResult struct {
	MaxBatch int `json:"max_batch"`
	Requests int `json:"requests"`
	Clients  int `json:"clients"`
	// QPS is completed inference requests per wall-clock second while the
	// background job trains on the same cores.
	QPS    float64 `json:"qps"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Batches is the number of ForwardBatch dispatches that served the
	// requests; MeanFill is requests/batches (1.0 at max-batch 1).
	Batches  int64   `json:"batches"`
	MeanFill float64 `json:"mean_batch_fill"`
	// Checksum is an order-independent XOR of per-request FNV hashes over
	// the logits bit patterns — equal across rows iff every request got
	// bit-identical answers regardless of batching.
	Checksum string `json:"logits_checksum"`
	// JobRounds counts background search rounds completed during the
	// measured window.
	JobRounds       int     `json:"job_rounds_during"`
	SpeedupVsBatch1 float64 `json:"speedup_vs_batch1"`
	Pass            bool    `json:"pass"`
}

type gates struct {
	MinSpeedup   float64 `json:"min_speedup"`
	MinJobRounds int     `json:"min_job_rounds"`
}

type report struct {
	Workload   string                `json:"workload"`
	Clients    int                   `json:"clients"`
	PerClient  int                   `json:"requests_per_client"`
	CPUs       int                   `json:"cpus"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Kernel     tensor.KernelFeatures `json:"kernel"`
	Gates      gates                 `json:"gates"`
	Results    []runResult           `json:"results"`
	ChecksumOK bool                  `json:"checksums_identical"`
	Pass       bool                  `json:"pass"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchserve", flag.ContinueOnError)
	var (
		out          = fs.String("out", "BENCH_serve.json", "write the JSON report here (empty: stdout only)")
		batchesArg   = fs.String("batches", "1,8,32", "max-batch policies to sweep")
		clients      = fs.Int("clients", 32, "closed-loop clients issuing single-example requests")
		perClient    = fs.Int("requests", 24, "requests per client per policy")
		maxWait      = fs.Duration("max-wait", 2*time.Millisecond, "batch fill deadline")
		minSpeedup   = fs.Float64("min-speedup", 3.0, "largest batch must reach this QPS multiple of batch-1 (0 disables)")
		minJobRounds = fs.Int("min-job-rounds", 1, "background job must step this many rounds per window")
		width        = fs.Int("c", 8, "served model channel width")
		size         = fs.Int("size", 8, "served model input height/width")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	batches, err := parseBatches(*batchesArg)
	if err != nil {
		return err
	}

	netCfg := nas.Config{
		InChannels: 3, NumClasses: 10, C: *width, Layers: 3, Nodes: 2,
		Candidates: nas.AllOps,
	}
	// A fixed genotype with seeded weights: every policy serves the exact
	// same network, so logits checksums are comparable across rows.
	geno := nas.Genotype{
		Normal: []nas.OpKind{nas.OpSepConv3, nas.OpIdentity, nas.OpSepConv5, nas.OpDilConv3, nas.OpMaxPool3},
		Reduce: []nas.OpKind{nas.OpMaxPool3, nas.OpSepConv3, nas.OpIdentity, nas.OpAvgPool3, nas.OpSepConv5},
		Nodes:  2,
	}

	rep := report{
		Workload:   fmt.Sprintf("serve C=%d %dx%d, %d clients x %d reqs", *width, *size, *size, *clients, *perClient),
		Clients:    *clients,
		PerClient:  *perClient,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Kernel:     tensor.KernelInfo(),
		Gates:      gates{MinSpeedup: *minSpeedup, MinJobRounds: *minJobRounds},
	}

	for _, mb := range batches {
		res, err := benchPolicy(netCfg, geno, mb, *maxWait, *clients, *perClient, *size)
		if err != nil {
			return fmt.Errorf("max-batch %d: %w", mb, err)
		}
		rep.Results = append(rep.Results, res)
	}

	rep.ChecksumOK = true
	for i := range rep.Results {
		r := &rep.Results[i]
		r.SpeedupVsBatch1 = r.QPS / rep.Results[0].QPS
		r.Pass = r.JobRounds >= *minJobRounds
		if r.Checksum != rep.Results[0].Checksum {
			rep.ChecksumOK = false
			r.Pass = false
		}
	}
	last := &rep.Results[len(rep.Results)-1]
	if *minSpeedup > 0 && last.SpeedupVsBatch1 < *minSpeedup {
		last.Pass = false
	}
	rep.Pass = rep.ChecksumOK
	for _, r := range rep.Results {
		rep.Pass = rep.Pass && r.Pass
	}

	printReport(rep)
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if !rep.Pass {
		return fmt.Errorf("gates failed (checksums identical: %v, speedup %.2fx, want >= %.2fx)",
			rep.ChecksumOK, last.SpeedupVsBatch1, *minSpeedup)
	}
	return nil
}

// benchPolicy boots a fresh server, starts the background trainer, serves
// the fixed model under one batching policy, and hammers it.
func benchPolicy(netCfg nas.Config, geno nas.Genotype, maxBatch int, maxWait time.Duration, clients, perClient, size int) (runResult, error) {
	srv := serve.NewServer(serve.Options{
		DefaultBatch: serve.BatchConfig{MaxBatch: maxBatch, MaxWait: maxWait},
	})
	job, err := srv.CreateJob(trainerConfig(), "")
	if err != nil {
		return runResult{}, err
	}
	// Let the trainer finish its one-time setup (dataset build, first
	// round) before the measured window opens.
	deadline := time.Now().Add(30 * time.Second)
	for job.Status().Round < 1 {
		if job.State().Terminal() || time.Now().After(deadline) {
			return runResult{}, fmt.Errorf("background job stuck: %+v", job.Status())
		}
		time.Sleep(time.Millisecond)
	}

	_, inf, err := srv.ServeModel(netCfg, geno, 7, serve.BatchConfig{MaxBatch: maxBatch, MaxWait: maxWait})
	if err != nil {
		return runResult{}, err
	}

	total := clients * perClient
	latencies := make([]float64, total)
	hashes := make([]uint64, total)
	errs := make([]error, clients)
	roundsBefore := job.Status().Round
	batchesBefore := srv.Metrics().Batches.Value()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for r := 0; r < perClient; r++ {
				idx := c*perClient + r
				x := requestInput(idx, netCfg.InChannels, size)
				t0 := time.Now()
				logits, err := inf.Infer(x)
				if err != nil {
					errs[c] = err
					return
				}
				latencies[idx] = float64(time.Since(t0).Microseconds()) / 1000
				hashes[idx] = hashLogits(idx, logits)
			}
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)

	roundsAfter := job.Status().Round
	batchesAfter := srv.Metrics().Batches.Value()
	if err := srv.Drain(); err != nil {
		return runResult{}, fmt.Errorf("drain: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return runResult{}, err
		}
	}

	var checksum uint64
	for _, h := range hashes {
		checksum ^= h
	}
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	mean := 0.0
	for _, l := range sorted {
		mean += l
	}
	nBatches := batchesAfter - batchesBefore
	res := runResult{
		MaxBatch:  maxBatch,
		Requests:  total,
		Clients:   clients,
		QPS:       float64(total) / wall.Seconds(),
		P50Ms:     percentile(sorted, 0.50),
		P99Ms:     percentile(sorted, 0.99),
		MeanMs:    mean / float64(total),
		Batches:   nBatches,
		Checksum:  fmt.Sprintf("%016x", checksum),
		JobRounds: roundsAfter - roundsBefore,
	}
	if nBatches > 0 {
		res.MeanFill = float64(total) / float64(nBatches)
	}
	return res, nil
}

// trainerConfig is the background search job: tiny enough to step rounds
// continuously without drowning the box, real enough to fight the
// dispatcher for cores.
func trainerConfig() search.Config {
	cfg := search.DefaultConfig()
	cfg.Dataset = data.Spec{
		Name: "bench", NumClasses: 5, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 40, TestPerClass: 10, Noise: 1.0, Confusion: 0.3, Seed: 91,
	}
	cfg.Net = nas.Config{
		InChannels: 2, NumClasses: 5, C: 4, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
	cfg.K = 4
	cfg.BatchSize = 8
	cfg.WarmupSteps = 1
	cfg.SearchSteps = 1 << 30 // effectively unbounded; Drain suspends it
	return cfg
}

// requestInput builds a deterministic, per-index-distinct example so the
// checksum is comparable across policies and XOR terms never cancel.
func requestInput(idx, channels, size int) *tensor.Tensor {
	x := tensor.New(1, channels, size, size)
	d := x.Data()
	for i := range d {
		d[i] = float64((idx*131+i*17)%1024)/1024 - 0.5
	}
	return x
}

func hashLogits(idx int, logits []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(idx))
	h.Write(buf[:])
	for _, v := range logits {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func parseBatches(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -batches entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-batches is empty")
	}
	return out, nil
}

func printReport(rep report) {
	fmt.Printf("%s (GOMAXPROCS %d)\n", rep.Workload, rep.GOMAXPROCS)
	fmt.Printf("%-10s %10s %9s %9s %9s %7s %10s %8s\n",
		"max-batch", "qps", "p50 ms", "p99 ms", "fill", "rounds", "speedup", "pass")
	for _, r := range rep.Results {
		fmt.Printf("%-10d %10.1f %9.2f %9.2f %9.1f %7d %9.2fx %8v\n",
			r.MaxBatch, r.QPS, r.P50Ms, r.P99Ms, r.MeanFill, r.JobRounds, r.SpeedupVsBatch1, r.Pass)
	}
	fmt.Printf("logits checksums identical across policies: %v\n", rep.ChecksumOK)
}
