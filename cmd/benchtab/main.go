// Command benchtab regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	benchtab -list
//	benchtab -id fig7 [-scale quick|full]
//	benchtab -all [-scale quick|full] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fedrlnas/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiment ids and exit")
		id       = fs.String("id", "", "experiment id to run (fig3..fig12, table2..table8)")
		all      = fs.Bool("all", false, "run every experiment")
		scaleArg = fs.String("scale", "quick", "experiment scale: quick or full")
		csv      = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		outDir   = fs.String("out", "", "also write each experiment's artifacts (txt + csv) into this directory")
		workers  = fs.Int("workers", 0, "concurrent participants per round (0 = NumCPU); results are identical at any value")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d must be >= 0", *workers)
	}
	experiments.Workers = *workers
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	var scale experiments.Scale
	switch *scaleArg {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scaleArg)
	}

	ids := fs.Args()
	if *id != "" {
		ids = append(ids, *id)
	}
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		return fmt.Errorf("nothing to run: pass -id, -all, or positional ids (see -list)")
	}
	for _, exp := range ids {
		start := time.Now()
		out, err := experiments.Run(exp, scale)
		if err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
		switch {
		case *csv && out.Table != nil:
			fmt.Printf("# %s: %s\n%s", out.ID, out.Title, out.Table.CSV())
		case *csv && len(out.Curves) > 0:
			fmt.Printf("# %s: %s\n%s", out.ID, out.Title, out.CurvesCSV())
		default:
			fmt.Print(out.Render())
		}
		if *outDir != "" {
			if err := writeArtifacts(*outDir, out); err != nil {
				return err
			}
		}
		fmt.Printf("(%s finished in %v at scale %s)\n\n", exp, time.Since(start).Round(time.Millisecond), scale)
	}
	return nil
}

// writeArtifacts persists an experiment's rendered text plus CSVs for its
// table and curves under dir.
func writeArtifacts(dir string, out experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("out dir: %w", err)
	}
	base := filepath.Join(dir, out.ID)
	if err := os.WriteFile(base+".txt", []byte(out.Render()), 0o644); err != nil {
		return err
	}
	if out.Table != nil {
		if err := os.WriteFile(base+".csv", []byte(out.Table.CSV()), 0o644); err != nil {
			return err
		}
	}
	if curves := out.CurvesCSV(); curves != "" {
		if err := os.WriteFile(base+"_curves.csv", []byte(curves), 0o644); err != nil {
			return err
		}
	}
	return nil
}
