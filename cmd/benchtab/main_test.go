package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scale", "galactic", "-id", "fig7"}); err == nil ||
		!strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("bad scale not rejected: %v", err)
	}
	if err := run([]string{}); err == nil || !strings.Contains(err.Error(), "nothing to run") {
		t.Errorf("empty invocation not rejected: %v", err)
	}
	if err := run([]string{"-id", "fig99"}); err == nil {
		t.Error("unknown experiment id not rejected")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunFastExperiment(t *testing.T) {
	if err := run([]string{"-id", "fig7"}); err != nil {
		t.Fatalf("fig7 failed: %v", err)
	}
	if err := run([]string{"-id", "fig7", "-csv"}); err != nil {
		t.Fatalf("fig7 csv failed: %v", err)
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-id", "fig7", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig7.txt", "fig7.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}
