// Command fedserve is the resident federated-search service: it hosts
// concurrent search jobs (created, paused, resumed, cancelled and
// checkpointed over an HTTP JSON API) next to batched inference on derived
// genotypes, all on one listener that also exposes /metrics, /healthz and
// pprof. SIGINT/SIGTERM triggers a graceful drain: inference admission
// stops, in-flight batches flush, and every running job writes a final
// checkpoint before the process exits — a successor resumes each job by
// POSTing its checkpoint path as "resume".
//
// Example:
//
//	fedserve -addr 127.0.0.1:7070 -checkpoint-dir ./ckpt -max-batch 32
//	curl -X POST localhost:7070/jobs -d '{"config":{"K":8,"SearchSteps":200}}'
//	curl localhost:7070/jobs/j1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedrlnas/internal/serve"
	"fedrlnas/internal/telemetry"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sigs
		close(stop)
	}()
	if err := run(os.Args[1:], stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fedserve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until stop closes, then drains. ready,
// when non-nil, receives the bound address once the listener is up (tests
// use it with port 0).
func run(args []string, stop <-chan struct{}, ready func(addr string)) error {
	fs := flag.NewFlagSet("fedserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7070", "HTTP address for the job API, /metrics, /healthz and pprof (port 0 picks a free port)")
		ckptDir   = fs.String("checkpoint-dir", "checkpoints", "directory for job checkpoints (job-<id>.ckpt); empty disables checkpointing")
		ckptEvery = fs.Int("checkpoint-every", 25, "stream a checkpoint every N rounds while a job runs (0 = lifecycle events only)")
		maxBatch  = fs.Int("max-batch", 8, "default inference dispatch size: a batch launches when full")
		maxWait   = fs.Duration("max-wait", 2*time.Millisecond, "default time the first queued request waits for the batch to fill before dispatching part-full")
		queueCap  = fs.Int("queue-cap", 0, "default admission queue capacity (0 = 4x max-batch); full queues apply backpressure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxBatch < 1 {
		return fmt.Errorf("-max-batch %d, want >= 1", *maxBatch)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}

	srv := serve.NewServer(serve.Options{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		DefaultBatch: serve.BatchConfig{
			MaxBatch: *maxBatch,
			MaxWait:  *maxWait,
			QueueCap: *queueCap,
		},
	})
	dbg, err := telemetry.StartDebugServer(*addr, srv.Registry(), srv.Endpoints()...)
	if err != nil {
		return err
	}
	defer dbg.Close()
	fmt.Printf("fedserve on http://%s (/jobs, /models, /metrics, /healthz, /debug/pprof/)\n", dbg.Addr())
	if ready != nil {
		ready(dbg.Addr())
	}

	<-stop
	fmt.Println("fedserve: draining (flushing inference, checkpointing jobs)…")
	if err := srv.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("fedserve: drained")
	return nil
}
