package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-nope"},
		{"-max-batch", "0"},
		{"-addr", "999.999.999.999:0"},
	}
	for _, args := range cases {
		stop := make(chan struct{})
		close(stop)
		if err := run(args, stop, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServeJobAndDrain boots the full service on a free port, creates a
// search job over HTTP, serves a model and infers against it, then stops
// the service and verifies the drain checkpointed the still-running job.
func TestServeJobAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	stop := make(chan struct{})
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-checkpoint-dir", filepath.Join(dir, "ckpt"),
			"-max-batch", "4",
			"-max-wait", "1ms",
		}, stop, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	// A long job on a tiny config: still running when the drain hits.
	cfgJSON := `{"config":{"Dataset":{"Name":"tiny","NumClasses":5,"Channels":2,"Height":6,"Width":6,` +
		`"TrainPerClass":40,"TestPerClass":10,"Noise":1.0,"Confusion":0.3,"Seed":91},` +
		`"Net":{"InChannels":2,"NumClasses":5,"C":4,"Layers":2,"Nodes":1,"Candidates":[5,2,3,4]},` +
		`"K":4,"BatchSize":8,"WarmupSteps":1,"SearchSteps":100000}}`
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(cfgJSON)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || job.ID == "" {
		t.Fatalf("create job: %d %+v", resp.StatusCode, job)
	}

	// Wait for the job to step at least one round.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Round int    `json:"round"`
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Round >= 1 {
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// Serve the job's current genotype and infer against it.
	resp, err = http.Post(base+"/jobs/"+job.ID+"/serve", "application/json",
		bytes.NewReader([]byte(`{"seed":7,"max_batch":4,"max_wait_ms":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	var model struct {
		ID      string `json:"id"`
		Classes int    `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&model); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || model.Classes != 5 {
		t.Fatalf("serve model: %d %+v", resp.StatusCode, model)
	}
	in := make([]float64, 2*8*8)
	for i := range in {
		in[i] = float64(i%7) * 0.1
	}
	inferBody, _ := json.Marshal(map[string]any{"shape": []int{2, 8, 8}, "input": in})
	resp, err = http.Post(base+"/models/"+model.ID+"/infer", "application/json", bytes.NewReader(inferBody))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Logits []float64 `json:"logits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Logits) != 5 {
		t.Fatalf("infer: %d logits, want 5", len(out.Logits))
	}

	// Stop → drain: run returns cleanly and the job's checkpoint exists.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never completed")
	}
	ckpt := filepath.Join(dir, "ckpt", fmt.Sprintf("job-%s.ckpt", job.ID))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain left no checkpoint: %v", err)
	}
}
