// Package fedrlnas's top-level benchmark harness regenerates every table
// and figure from the paper's evaluation section (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured notes), plus
// ablation and substrate micro-benchmarks.
//
// Usage:
//
//	go test -bench=. -benchmem                  # quick scale (default)
//	FEDRLNAS_SCALE=full go test -bench=Table2   # paper-scale run
//
// Each paper-artifact benchmark runs the experiment once per iteration and
// logs the regenerated table/curves on the first iteration.
package fedrlnas

import (
	"math/rand"
	"os"
	"testing"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/data"
	"fedrlnas/internal/experiments"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/search"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/tensor"
)

func benchScale() experiments.Scale {
	if os.Getenv("FEDRLNAS_SCALE") == "full" {
		return experiments.Full
	}
	return experiments.Quick
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id, scale)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", out.Render())
		}
	}
}

// --- Paper figures ---

func BenchmarkFig3WarmupPhase(b *testing.B)       { runExperiment(b, "fig3") }
func BenchmarkFig4SearchPhase(b *testing.B)       { runExperiment(b, "fig4") }
func BenchmarkFig5AlphaOnly(b *testing.B)         { runExperiment(b, "fig5") }
func BenchmarkFig6NonIIDSearch(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7AdaptiveLatency(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8Staleness(b *testing.B)         { runExperiment(b, "fig8") }
func BenchmarkFig9Convergence(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10ConvergenceSVHN(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11TransferCurves(b *testing.B)   { runExperiment(b, "fig11") }
func BenchmarkFig12ParticipantCount(b *testing.B) { runExperiment(b, "fig12") }

// --- Paper tables ---

func BenchmarkTable2Centralized(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3Federated(b *testing.B)      { runExperiment(b, "table3") }
func BenchmarkTable4NonIID(b *testing.B)         { runExperiment(b, "table4") }
func BenchmarkTable5SearchTime(b *testing.B)     { runExperiment(b, "table5") }
func BenchmarkTable6Participants(b *testing.B)   { runExperiment(b, "table6") }
func BenchmarkTable7Transfer(b *testing.B)       { runExperiment(b, "table7") }
func BenchmarkTable8TransferNonIID(b *testing.B) { runExperiment(b, "table8") }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationBaseline compares search with and without the Eq. 8
// moving-average reward baseline.
func BenchmarkAblationBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(disable bool) float64 {
			cfg := search.DefaultConfig()
			cfg.WarmupSteps, cfg.SearchSteps = 10, 30
			cfg.Alpha.DisableBaseline = disable
			s, err := search.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Warmup(); err != nil {
				b.Fatal(err)
			}
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
			return s.SearchCurve.TailMean(10)
		}
		with, without := run(false), run(true)
		if i == 0 {
			b.Logf("baseline on: tail %.3f | baseline off: tail %.3f", with, without)
		}
	}
}

// BenchmarkAblationLambda sweeps the delay-compensation strength λ under
// severe staleness.
func BenchmarkAblationLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lambda := range []float64{0, 0.5, 1, 2} {
			cfg := search.DefaultConfig()
			cfg.WarmupSteps, cfg.SearchSteps = 10, 30
			cfg.Staleness = staleness.Severe()
			cfg.Strategy = staleness.DC
			cfg.Lambda = lambda
			s, err := search.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Warmup(); err != nil {
				b.Fatal(err)
			}
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("lambda %.1f: tail %.3f", lambda, s.SearchCurve.TailMean(10))
			}
		}
	}
}

// BenchmarkAblationAlphaGradAnalytic measures the analytic Eq. 12 gradient
// against a finite-difference of LogProb — the efficiency claim behind the
// paper's "easy-to-compute" transformation.
func BenchmarkAblationAlphaGradAnalytic(b *testing.B) {
	ctrl, err := controller.New(14, 14, nas.NumOps, controller.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	g := ctrl.SampleGates(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctrl.LogProbGrad(g)
	}
}

// BenchmarkAblationGradAveraging compares gradient-averaging (our search's
// update) with model-averaging FedAvg on the same fixed model.
func BenchmarkAblationGradAveraging(b *testing.B) {
	spec := data.CIFAR10S()
	ds, err := data.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, localSteps := range []int{1, 4} {
			rng := rand.New(rand.NewSource(3))
			part, err := data.IIDPartition(ds.NumTrain(), 10, rng)
			if err != nil {
				b.Fatal(err)
			}
			parts, err := fed.BuildParticipants(ds, part, 4)
			if err != nil {
				b.Fatal(err)
			}
			geno := nas.Genotype{
				Normal: []nas.OpKind{nas.OpSepConv3, nas.OpIdentity, nas.OpSepConv3, nas.OpMaxPool3, nas.OpSepConv5},
				Reduce: []nas.OpKind{nas.OpMaxPool3, nas.OpSepConv3, nas.OpIdentity, nas.OpAvgPool3, nas.OpSepConv3},
				Nodes:  2,
			}
			net := search.DefaultConfig().Net
			model, err := nas.NewFixedModel(rng, net, geno)
			if err != nil {
				b.Fatal(err)
			}
			if localSteps == 1 {
				// Pure gradient averaging (the paper's second FedAvg
				// variant, used by the search phase).
				cfg := fed.DefaultFedSGDConfig()
				cfg.Rounds = 8
				cfg.BatchSize = 16
				if _, err := fed.FedSGD(model, ds, parts, cfg); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("gradient-averaging (FedSGD): final acc %.3f", fed.Evaluate(model, ds, 32))
				}
				continue
			}
			cfg := fed.DefaultFedAvgConfig()
			cfg.Rounds, cfg.LocalSteps = 8, localSteps
			res, err := fed.FedAvg(model, ds, parts, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("model-averaging (FedAvg, localSteps=%d): final acc %.3f", localSteps, res.FinalAcc)
			}
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := nn.NewConv2D("c", rng, 8, 8, 3, nn.ConvOpts{Pad: 1})
	x := tensor.Randn(rng, 1, 16, 8, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(x)
	}
}

func BenchmarkConvBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := nn.NewConv2D("c", rng, 8, 8, 3, nn.ConvOpts{Pad: 1})
	x := tensor.Randn(rng, 1, 16, 8, 8, 8)
	out := c.Forward(x)
	grad := tensor.Randn(rng, 1, out.Shape()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Backward(grad)
	}
}

func BenchmarkSupernetSampledForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cfg := search.DefaultConfig()
	net, err := nas.NewSupernet(rng, cfg.Net)
	if err != nil {
		b.Fatal(err)
	}
	nE, rE := net.ArchSpace()
	g := nas.Gates{Normal: make([]int, nE), Reduce: make([]int, rE)}
	for i := range g.Normal {
		g.Normal[i] = 4 // sep_conv_3x3
	}
	for i := range g.Reduce {
		g.Reduce[i] = 4
	}
	x := tensor.Randn(rng, 1, 16, 3, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.ForwardSampled(x, g)
	}
}

func BenchmarkControllerSampleGates(b *testing.B) {
	ctrl, err := controller.New(14, 14, nas.NumOps, controller.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctrl.SampleGates(rng)
	}
}

func BenchmarkSearchRound(b *testing.B) {
	cfg := search.DefaultConfig()
	cfg.WarmupSteps, cfg.SearchSteps = 0, 1
	s, err := search.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelayCompensation(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const parts = 32
	grads := make([]*tensor.Tensor, parts)
	fresh := make([]*tensor.Tensor, parts)
	stale := make([]*tensor.Tensor, parts)
	for i := range grads {
		grads[i] = tensor.Randn(rng, 1, 64)
		fresh[i] = tensor.Randn(rng, 1, 64)
		stale[i] = tensor.Randn(rng, 1, 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := staleness.CompensateTheta(grads, fresh, stale, 1); err != nil {
			b.Fatal(err)
		}
	}
}
