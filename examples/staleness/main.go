// Staleness: soft synchronization under a 70%-stale update distribution.
// Four servers share the same warmed-up supernet and search with different
// stale-update policies — delay-compensated (the paper's), use-as-is,
// throw-away, and a staleness-free control (Fig. 8's comparison).
package main

import (
	"fmt"
	"log"

	"fedrlnas/internal/search"
	"fedrlnas/internal/staleness"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := search.DefaultConfig()
	base.WarmupSteps = 20
	base.SearchSteps = 40

	fmt.Println("warming up a shared supernet…")
	warm, err := search.New(base)
	if err != nil {
		return err
	}
	if err := warm.Warmup(); err != nil {
		return err
	}
	theta := warm.SnapshotTheta()

	variants := []struct {
		name     string
		schedule staleness.Schedule
		strategy staleness.Strategy
	}{
		{"no staleness (hard sync)", staleness.NoStaleness(), staleness.Hard},
		{"delay-compensated (ours)", staleness.Severe(), staleness.DC},
		{"use stale directly", staleness.Severe(), staleness.Use},
		{"throw stale away", staleness.Severe(), staleness.Throw},
	}
	for _, v := range variants {
		cfg := base
		cfg.WarmupSteps = 0
		cfg.Staleness = v.schedule
		cfg.Strategy = v.strategy
		s, err := search.New(cfg)
		if err != nil {
			return err
		}
		if err := s.RestoreTheta(theta); err != nil {
			return err
		}
		if err := s.Run(); err != nil {
			return err
		}
		fmt.Printf("%-26s search accuracy tail: %.3f\n", v.name, s.SearchCurve.TailMean(10))
	}
	fmt.Println("(paper's shape: no-staleness >= delay-compensated > use > throw)")
	return nil
}
