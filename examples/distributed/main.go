// Distributed: run the federated model search over a real transport.
// Each participant is a net/rpc server on loopback TCP; the search server
// ships pruned sub-models, collects rewards and gradients asynchronously,
// and delay-compensates replies from the deliberately slow straggler —
// the paper's deployment shape (Sec. V) in one process tree.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/rpcfed"
	"fedrlnas/internal/search"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const k = 5
	cfg := search.DefaultConfig()
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return err
	}
	part, err := data.DirichletPartition(ds.TrainLabels, k, 0.5, rand.New(rand.NewSource(3)))
	if err != nil {
		return err
	}

	// Launch K participant RPC servers; the last one is a straggler.
	var addrs []string
	for i := 0; i < k; i++ {
		svc, err := rpcfed.NewParticipantService(i, ds, part.Indices[i], cfg.Net, int64(100+i))
		if err != nil {
			return err
		}
		if i == k-1 {
			svc.SetDelay(40 * time.Millisecond)
		}
		ln, _, err := svc.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		fmt.Printf("participant %d serving on %s (shard: %d samples)\n",
			i, ln.Addr(), len(part.Indices[i]))
	}

	scfg := rpcfed.DefaultServerConfig(cfg.Net)
	scfg.Rounds = 40
	scfg.Quorum = 0.8 // soft sync: close each round at 4/5 replies
	srv, err := rpcfed.NewServer(scfg, addrs)
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Printf("\nsearching over RPC (%d rounds, quorum %.0f%%)…\n", scfg.Rounds, scfg.Quorum*100)
	res, err := srv.Run()
	if err != nil {
		return err
	}
	fmt.Println("genotype:", res.Genotype)
	fmt.Printf("accuracy: start %.3f -> tail %.3f\n",
		res.Curve.Points[0].Value, res.Curve.TailMean(8))
	fmt.Printf("replies: %d fresh, %d late (delay-compensated), %d dropped\n",
		res.FreshReplies, res.LateReplies, res.DroppedReplies)
	return nil
}
