// Non-i.i.d. search: the paper's motivating workload. Data is split across
// participants with a Dirichlet(0.5) distribution (as in FedNAS), the model
// is searched federatedly, then retrained with FedAvg on the same skewed
// shards — and compared against a fixed hand-designed model trained the
// same way.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedrlnas/internal/baselines"
	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/search"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := search.DefaultConfig()
	cfg.Partition = search.Dirichlet
	cfg.DirichletAlpha = 0.5
	cfg.WarmupSteps = 20
	cfg.SearchSteps = 40

	fcfg := fed.DefaultFedAvgConfig()
	fcfg.Rounds = 15

	fmt.Println("searching on non-i.i.d. shards (Dirichlet 0.5)…")
	res, err := search.RunPipeline(cfg, search.PipelineOptions{Federated: &fcfg})
	if err != nil {
		return err
	}
	fmt.Println("genotype:", res.Genotype)
	fmt.Printf("ours (searched, FedAvg-retrained): error %.2f%%, %d params\n",
		res.Federated.TestErr*100, res.Federated.ParamCount)

	// How heterogeneous was the split?
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return err
	}
	part, err := data.DirichletPartition(ds.TrainLabels, cfg.K, cfg.DirichletAlpha,
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return err
	}
	fmt.Printf("partition heterogeneity (mean TV distance): %.3f (0 = i.i.d.)\n",
		data.Heterogeneity(part, ds.TrainLabels, ds.Spec.NumClasses))

	// Compare with a fixed pre-defined model trained by FedAvg.
	parts, err := fed.BuildParticipants(ds, part, cfg.Seed+9)
	if err != nil {
		return err
	}
	fixed := baselines.NewResNetLike(rand.New(rand.NewSource(7)), ds.Spec.Channels, ds.Spec.NumClasses)
	fixedRes, err := fed.FedAvg(fixed, ds, parts, fcfg)
	if err != nil {
		return err
	}
	fmt.Printf("pre-defined ResNet152-like:        error %.2f%% (much larger model)\n",
		(1-fixedRes.FinalAcc)*100)
	return nil
}
