// Adaptive transmission: sample sub-models from a live search policy, ship
// them to participants moving through simulated 4G/LTE environments, and
// compare the paper's adaptive size-to-bandwidth assignment against random
// and uniform baselines (Fig. 7's experiment).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/search"
	"fedrlnas/internal/transmission"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		k      = 10
		rounds = 50
	)
	cfg := search.DefaultConfig()
	s, err := search.New(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("%-12s %10s %10s %10s\n", "environment", "adaptive", "uniform", "random")
	for _, env := range nettrace.StandardEnvironments() {
		traces, err := env.ParticipantTraces(k, rounds, rng)
		if err != nil {
			return err
		}
		sums := map[transmission.Policy]float64{}
		for round := 0; round < rounds; round++ {
			sizes := make([]int64, k)
			for i := range sizes {
				sizes[i] = s.Supernet().SubModelWireBytes(s.Controller().SampleGates(rng), cfg.Wire)
			}
			bw := make([]float64, k)
			for i := range bw {
				bw[i] = traces[i].At(round)
			}
			for _, pol := range []transmission.Policy{
				transmission.Adaptive, transmission.Uniform, transmission.Random,
			} {
				a, err := transmission.Assign(pol, sizes, bw, rng)
				if err != nil {
					return err
				}
				sums[pol] += a.Max()
			}
		}
		n := float64(rounds)
		fmt.Printf("%-12s %9.4fs %9.4fs %9.4fs\n", env.Name,
			sums[transmission.Adaptive]/n, sums[transmission.Uniform]/n, sums[transmission.Random]/n)
	}
	fmt.Println("\nadaptive assignment minimizes the max download latency in every environment")
	return nil
}
