// Quickstart: run a small end-to-end federated model search on the i.i.d.
// CIFAR10 stand-in — warm-up, RL search, centralized retraining, and test
// evaluation — in under a minute.
package main

import (
	"fmt"
	"log"

	"fedrlnas/internal/search"
)

func main() {
	cfg := search.DefaultConfig()
	cfg.WarmupSteps = 20
	cfg.SearchSteps = 40

	rcfg := search.DefaultRetrainConfig()
	rcfg.Steps = 80

	fmt.Println("searching a model over", cfg.K, "federated participants…")
	res, err := search.RunPipeline(cfg, search.PipelineOptions{Centralized: &rcfg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("genotype:", res.Genotype)
	fmt.Printf("search accuracy: %.3f -> %.3f (policy entropy %.4f)\n",
		res.WarmupCurve.TailMean(5), res.SearchCurve.TailMean(5), res.EntropyCurve.Last())
	fmt.Printf("sub-model payload %.3f MB vs supernet %.3f MB (the paper's ~1/N saving)\n",
		res.MeanSubModelMB, res.SupernetMB)
	fmt.Printf("retrained test error: %.2f%% with %d parameters\n",
		res.Centralized.TestErr*100, res.Centralized.ParamCount)
}
