// Package fedrlnas is a from-scratch Go reproduction of "Federated Model
// Search via Reinforcement Learning" (ICDCS 2021): RL-based neural
// architecture search inside a federated learning loop, with adaptive
// sub-model transmission and delay-compensated soft synchronization.
//
// The public surface lives under internal/ packages orchestrated by
// internal/search (the paper's algorithm) and internal/experiments (one
// runner per paper table/figure); cmd/fedsearch, cmd/benchtab and
// cmd/fedrpc are the entry points. See README.md for a tour, DESIGN.md for
// the system inventory and substitutions, and EXPERIMENTS.md for
// paper-vs-measured results. The top-level bench_test.go regenerates every
// evaluation artifact via `go test -bench=.`.
package fedrlnas
