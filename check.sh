#!/bin/sh
# check.sh — tier-1 verification wrapper (run by `make check` and CI).
# Fails on vet findings, unformatted files, build/test failures, and data
# races in the concurrent telemetry/search/RPC paths.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt required for:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== noasm fallback (pure-Go kernels must build and pass the same suite)"
go build -tags noasm ./...
go test -tags noasm ./internal/tensor/... ./internal/nn/...

echo "== cross-compile arm64 (no amd64 assembly may leak outside its build tags)"
GOARCH=arm64 go build ./...

echo "== go test -race (tensor, parallel, nn, fed, search, baselines, rpcfed, telemetry, cohort, serve, scenario)"
go test -race ./internal/tensor/... ./internal/parallel/... ./internal/nn/... \
	./internal/fed/... ./internal/search/... ./internal/baselines/... \
	./internal/rpcfed/... ./internal/telemetry/... ./internal/cohort/... \
	./internal/serve/... ./internal/scenario/...

echo "== bench smoke (tensor, nn kernels; 1 iteration, catches crashes/regressed shapes)"
go test -run '^$' -bench . -benchtime 1x ./internal/tensor/... ./internal/nn/...

echo "== benchrpc smoke (1 round over loopback per encoding; fails on theta-hash mismatch)"
go run ./cmd/benchrpc -k 2 -rounds 1 -out ""

echo "== chaos smoke (kill 1 participant at round 2, resurrect at round 5; fixed seed)"
go run ./cmd/benchchaos -out "" -k 3 -rounds 10 -kill 1 -kill-after 2 -recover-after 5 \
	-round-timeout 300ms -call-timeout 200ms >/dev/null

echo "== benchscale smoke (K=1000 enrolled, cohort 8, 2 rounds; gates on memory bound + shard bit-identity)"
go vet ./cmd/benchscale
go run ./cmd/benchscale -out "" -enrolled 1000 -cohort 8 -warmup 1 -rounds 2 \
	-shards 1,4 -max-round-ratio 10 -max-bytes-ratio 10 >/dev/null

echo "== benchserve smoke (1 background job, batched inference, drain; speedup gate off)"
go vet ./cmd/benchserve ./cmd/fedserve
go run ./cmd/benchserve -out "" -clients 4 -requests 2 -batches 1,4 -min-speedup 0 >/dev/null

echo "== benchprofiles smoke (1 round per catalog profile + mixed population; pin gate on, A/B gate off)"
go vet ./cmd/benchprofiles
go run ./cmd/benchprofiles -out "" -k 4 -warmup 1 -search 1 -gate=false >/dev/null

echo "== fedtrace smoke (traced K=4 run; every span must stitch, zero orphans)"
go vet ./cmd/fedtrace
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/benchrpc -k 4 -rounds 2 -modes fp64 -out "" -trace-dir "$tracedir" >/dev/null
go run ./cmd/fedtrace -min-rounds 1 "$tracedir"/*.jsonl

echo "OK"
