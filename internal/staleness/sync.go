package staleness

import (
	"errors"
	"fmt"
)

// SyncConfig is the soft-synchronization knob set shared by every Alg. 1
// round loop — the in-process engine (search.Config) and the RPC server
// (rpcfed.ServerConfig) embed it, so the quorum/staleness/compensation
// semantics are declared and validated exactly once.
type SyncConfig struct {
	// Quorum is the fraction of participants whose replies close a round
	// (the paper's "wait for most participants"); 1.0 is hard sync. The
	// RPC server recomputes the absolute quorum each round over the
	// participants currently believed live, so the fraction keeps meaning
	// "most of whoever is left" as nodes die and come back. The in-process
	// engine drives staleness from a schedule instead of real arrival
	// times, so there it only participates in validation.
	Quorum float64
	// StalenessThreshold is Δ: replies older than this many rounds are
	// dropped (Alg. 1 line 23). The in-process engine additionally bounds
	// Δ by its staleness schedule's maximum delay; the RPC server uses it
	// directly to size the θ/α/gates retention pools.
	StalenessThreshold int
	// Lambda is the delay-compensation strength (Eq. 13/15).
	Lambda float64
	// Strategy selects how late replies are treated (Hard, Use, Throw,
	// or DC).
	Strategy Strategy
	// CohortSize is the number of participants sampled into each round's
	// cohort from the enrolled population (production FL's
	// clients-per-round). 0 (or >= the population) runs everyone every
	// round — the pre-population behavior. The cohort schedule is a pure
	// function of the run seed and round index, independent of the fault
	// schedule.
	CohortSize int
	// Shards is the number of parameter-range shards the θ merge is split
	// into. Sharding is by destination parameter index, not by
	// participant, so every accumulator still sums replies in canonical
	// ascending order and the result is bit-identical at every shard
	// count. 0 or 1 keeps a single root merge.
	Shards int
}

// Validate checks the shared soft-sync knobs, reporting every problem
// found — a hand-edited config fixes all its mistakes in one pass.
func (c SyncConfig) Validate() error {
	var errs []error
	if c.Quorum <= 0 || c.Quorum > 1 {
		errs = append(errs, fmt.Errorf("staleness: Quorum %v outside (0,1]", c.Quorum))
	}
	if c.StalenessThreshold < 0 {
		errs = append(errs, fmt.Errorf("staleness: StalenessThreshold %d must be >= 0", c.StalenessThreshold))
	}
	if c.Lambda < 0 {
		errs = append(errs, fmt.Errorf("staleness: Lambda %v must be >= 0", c.Lambda))
	}
	if c.CohortSize < 0 {
		errs = append(errs, fmt.Errorf("staleness: CohortSize %d must be >= 0", c.CohortSize))
	}
	if c.Shards < 0 {
		errs = append(errs, fmt.Errorf("staleness: Shards %d must be >= 0", c.Shards))
	}
	switch c.Strategy {
	case Hard, Use, Throw, DC:
	default:
		errs = append(errs, fmt.Errorf("staleness: unknown strategy %d", int(c.Strategy)))
	}
	return errors.Join(errs...)
}
