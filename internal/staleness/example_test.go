package staleness_test

import (
	"fmt"

	"fedrlnas/internal/staleness"
	"fedrlnas/internal/tensor"
)

// Example demonstrates the delay-compensated gradient correction of Eq. 13:
// a straggler's stale gradient is adjusted by λ·g⊙g⊙(θ_fresh − θ_stale) to
// approximate the gradient it would have computed at the fresh weights.
func Example() {
	staleGrad := []*tensor.Tensor{tensor.FromSlice([]float64{1.0, -0.5}, 2)}
	thetaFresh := []*tensor.Tensor{tensor.FromSlice([]float64{0.9, 0.4}, 2)}
	thetaStale := []*tensor.Tensor{tensor.FromSlice([]float64{1.0, 0.2}, 2)}

	compensated, err := staleness.CompensateTheta(staleGrad, thetaFresh, thetaStale, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.3f %.3f\n", compensated[0].At(0), compensated[0].At(1))
	// Output: 0.900 -0.450
}

// ExampleSchedule shows the paper's severe staleness distribution.
func ExampleSchedule() {
	s := staleness.Severe()
	fmt.Printf("stale fraction: %.0f%%, threshold: %d rounds\n",
		s.StaleFraction()*100, s.MaxDelay())
	// Output: stale fraction: 70%, threshold: 2 rounds
}
