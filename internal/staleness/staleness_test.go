package staleness

import (
	"math"
	"math/rand"
	"testing"

	"fedrlnas/internal/tensor"
)

func TestStandardSchedulesValid(t *testing.T) {
	for _, s := range []Schedule{NoStaleness(), Severe(), Slight()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", s.Probs, err)
		}
	}
	if got := Severe().StaleFraction(); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("severe stale fraction %v, want 0.7", got)
	}
	if got := Slight().StaleFraction(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("slight stale fraction %v, want 0.1", got)
	}
	if NoStaleness().StaleFraction() != 0 {
		t.Error("no-staleness must be 0% stale")
	}
}

func TestScheduleValidation(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule must be invalid")
	}
	if err := (Schedule{Probs: []float64{-0.1, 0.5}}).Validate(); err == nil {
		t.Error("negative probability must be invalid")
	}
	if err := (Schedule{Probs: []float64{0.9, 0.9}}).Validate(); err == nil {
		t.Error("over-unit mass must be invalid")
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	s := Severe()
	rng := rand.New(rand.NewSource(1))
	counts := make([]float64, 3)
	drops := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		d, dropped := s.Sample(rng)
		if dropped {
			drops++
			continue
		}
		counts[d]++
	}
	for d, want := range s.Probs {
		got := counts[d] / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("delay %d frequency %.3f, want %.3f", d, got, want)
		}
	}
	if got := drops / n; math.Abs(got-0.1) > 0.01 {
		t.Errorf("drop frequency %.3f, want 0.1", got)
	}
}

func TestPoolPutGetEvict(t *testing.T) {
	p := NewPool[string](2)
	p.Put(0, "a")
	p.Put(1, "b")
	p.Put(2, "c")
	if v, ok := p.Get(0); !ok || v != "a" {
		t.Error("Get(0) failed")
	}
	p.Evict(3) // threshold 2: rounds < 1 evicted
	if _, ok := p.Get(0); ok {
		t.Error("round 0 should be evicted")
	}
	if _, ok := p.Get(1); !ok {
		t.Error("round 1 should survive")
	}
	if p.Len() != 2 {
		t.Errorf("pool len %d, want 2", p.Len())
	}
	rounds := p.Rounds()
	if len(rounds) != 2 || rounds[0] != 1 || rounds[1] != 2 {
		t.Errorf("rounds %v", rounds)
	}
}

func TestPoolZeroThreshold(t *testing.T) {
	p := NewPool[int](0)
	p.Put(5, 50)
	p.Evict(5)
	if _, ok := p.Get(5); !ok {
		t.Error("current round must survive with zero threshold")
	}
	p.Evict(6)
	if _, ok := p.Get(5); ok {
		t.Error("previous round must be evicted with zero threshold")
	}
}

func TestCompensateThetaFormula(t *testing.T) {
	g := []*tensor.Tensor{tensor.FromSlice([]float64{2, -1}, 2)}
	fresh := []*tensor.Tensor{tensor.FromSlice([]float64{1, 1}, 2)}
	stale := []*tensor.Tensor{tensor.FromSlice([]float64{0, 3}, 2)}
	out, err := CompensateTheta(g, fresh, stale, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// g + λ g² (fresh − stale) = [2 + 0.5·4·1, −1 + 0.5·1·(−2)] = [4, −2]
	if out[0].At(0) != 4 || out[0].At(1) != -2 {
		t.Errorf("compensated = %v", out[0].Data())
	}
	// Inputs untouched.
	if g[0].At(0) != 2 {
		t.Error("compensation mutated the input gradient")
	}
}

func TestCompensateThetaNoDriftIsIdentity(t *testing.T) {
	g := []*tensor.Tensor{tensor.FromSlice([]float64{1, 2, 3}, 3)}
	same := []*tensor.Tensor{tensor.FromSlice([]float64{5, 5, 5}, 3)}
	out, err := CompensateTheta(g, same, same, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].AllClose(g[0], 0) {
		t.Error("zero drift must leave gradient unchanged")
	}
}

func TestCompensateThetaLambdaZeroIsIdentity(t *testing.T) {
	g := []*tensor.Tensor{tensor.FromSlice([]float64{1, -2}, 2)}
	fresh := []*tensor.Tensor{tensor.FromSlice([]float64{9, 9}, 2)}
	stale := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0}, 2)}
	out, err := CompensateTheta(g, fresh, stale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].AllClose(g[0], 0) {
		t.Error("lambda=0 must be identity")
	}
}

func TestCompensateThetaErrors(t *testing.T) {
	g := []*tensor.Tensor{tensor.New(2)}
	if _, err := CompensateTheta(g, nil, nil, 1); err == nil {
		t.Error("expected length mismatch error")
	}
	bad := []*tensor.Tensor{tensor.New(3)}
	if _, err := CompensateTheta(g, bad, g, 1); err == nil {
		t.Error("expected shape mismatch error")
	}
}

// The compensation approximates the fresh gradient: for a quadratic loss
// L(w) = ½w'Hw with diagonal H, the true gradient drift is H·Δw, and the
// DC-ASGD approximation g⊙g⊙Δw should reduce the error versus using the
// stale gradient unchanged (with a reasonable λ).
func TestCompensationReducesApproximationError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 20
	h := make([]float64, dim)
	for i := range h {
		h[i] = 0.5 + rng.Float64() // diagonal Hessian entries
	}
	wStale := tensor.Randn(rng, 1, dim)
	drift := tensor.Randn(rng, 0.1, dim)
	wFresh := wStale.Add(drift)
	gradAt := func(w *tensor.Tensor) *tensor.Tensor {
		g := tensor.New(dim)
		for i := 0; i < dim; i++ {
			g.Data()[i] = h[i] * w.Data()[i]
		}
		return g
	}
	gStale := gradAt(wStale)
	gFresh := gradAt(wFresh)
	comp, err := CompensateTheta(
		[]*tensor.Tensor{gStale}, []*tensor.Tensor{wFresh}, []*tensor.Tensor{wStale}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	errStale := gFresh.Sub(gStale).L2Norm()
	errComp := gFresh.Sub(comp[0]).L2Norm()
	if errComp >= errStale {
		t.Errorf("compensation error %.4f >= stale error %.4f", errComp, errStale)
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{Hard, Use, Throw, DC} {
		if str := s.String(); len(str) < 2 || str[:2] == "st" {
			t.Errorf("strategy %d has placeholder string %q", int(s), str)
		}
	}
}
