// Package staleness implements the paper's soft-synchronization machinery
// (Sec. V, Alg. 1): staleness schedules that model late-arriving participant
// updates, bounded memory pools for stale θ/α/g snapshots, and the
// second-order Taylor delay compensation of Eq. 13–15.
package staleness

import (
	"fmt"
	"math/rand"
	"sort"

	"fedrlnas/internal/tensor"
)

// Strategy selects how the server handles stale updates (Fig. 8's
// comparisons).
type Strategy int

// Strategies.
const (
	// Hard is full synchronization: the server waits for everyone, so no
	// update is ever stale (0% staleness).
	Hard Strategy = iota + 1
	// Use applies stale gradients as if they were fresh.
	Use
	// Throw discards stale updates entirely.
	Throw
	// DC applies the delay-compensated correction (the paper's method).
	DC
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Hard:
		return "hard-sync"
	case Use:
		return "use-stale"
	case Throw:
		return "throw-stale"
	case DC:
		return "delay-compensated"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Schedule is the distribution of update delays: Probs[d] is the chance an
// update arrives d rounds late. Leftover probability mass models updates
// beyond the staleness threshold, which the server drops (Alg. 1 line 23).
type Schedule struct {
	Probs []float64
}

// NoStaleness returns the hard-synchronization schedule (all fresh).
func NoStaleness() Schedule { return Schedule{Probs: []float64{1}} }

// Severe returns the paper's severe distribution: 30% fresh, 40% one round
// late, 20% two rounds late, 10% beyond the threshold.
func Severe() Schedule { return Schedule{Probs: []float64{0.3, 0.4, 0.2}} }

// Slight returns the paper's slight distribution: 90% fresh, 9% one round
// late, 0.9% two rounds late, the rest beyond the threshold.
func Slight() Schedule { return Schedule{Probs: []float64{0.9, 0.09, 0.009}} }

// Validate checks that the schedule is a (sub-)distribution.
func (s Schedule) Validate() error {
	if len(s.Probs) == 0 {
		return fmt.Errorf("staleness: empty schedule")
	}
	total := 0.0
	for d, p := range s.Probs {
		if p < 0 {
			return fmt.Errorf("staleness: negative probability at delay %d", d)
		}
		total += p
	}
	if total > 1+1e-9 {
		return fmt.Errorf("staleness: probabilities sum to %v > 1", total)
	}
	return nil
}

// MaxDelay returns the largest representable delay (the staleness threshold
// Δ implied by the schedule).
func (s Schedule) MaxDelay() int { return len(s.Probs) - 1 }

// StaleFraction returns the probability an update is not fresh (delayed or
// dropped).
func (s Schedule) StaleFraction() float64 {
	if len(s.Probs) == 0 {
		return 0
	}
	return 1 - s.Probs[0]
}

// Sample draws a delay; dropped reports the update exceeded the threshold.
func (s Schedule) Sample(rng *rand.Rand) (delay int, dropped bool) {
	r := rng.Float64()
	acc := 0.0
	for d, p := range s.Probs {
		acc += p
		if r < acc {
			return d, false
		}
	}
	return 0, true
}

// Pool is a bounded per-round snapshot store (the Θ/𝔸/𝔾 memories of
// Alg. 1). Entries older than the staleness threshold are evicted.
type Pool[T any] struct {
	threshold int
	entries   map[int]T
}

// NewPool builds a pool that retains snapshots for `threshold` rounds.
func NewPool[T any](threshold int) *Pool[T] {
	if threshold < 0 {
		threshold = 0
	}
	return &Pool[T]{threshold: threshold, entries: make(map[int]T)}
}

// Put stores the snapshot for a round (Alg. 1 line 4/7).
func (p *Pool[T]) Put(round int, snap T) { p.entries[round] = snap }

// Get retrieves the snapshot stored for a round.
func (p *Pool[T]) Get(round int) (T, bool) {
	v, ok := p.entries[round]
	return v, ok
}

// Evict removes snapshots older than current−threshold (Alg. 1 lines 34–35).
func (p *Pool[T]) Evict(current int) {
	for r := range p.entries {
		if r < current-p.threshold {
			delete(p.entries, r)
		}
	}
}

// Len returns the number of retained snapshots.
func (p *Pool[T]) Len() int { return len(p.entries) }

// Rounds returns the retained round numbers in ascending order.
func (p *Pool[T]) Rounds() []int {
	out := make([]int, 0, len(p.entries))
	for r := range p.entries {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// CompensateTheta applies Eq. 13 to a stale weight gradient:
//
//	g_dc = g + λ · g ⊙ g ⊙ (θ_fresh − θ_stale)
//
// where g is the gradient the straggler computed at θ_stale and θ_fresh is
// the server's current copy of the same (sub-model) parameters. The inputs
// are parallel tensor lists; the result is freshly allocated.
func CompensateTheta(grads, fresh, stale []*tensor.Tensor, lambda float64) ([]*tensor.Tensor, error) {
	if len(grads) != len(fresh) || len(grads) != len(stale) {
		return nil, fmt.Errorf("staleness: mismatched lengths g=%d fresh=%d stale=%d",
			len(grads), len(fresh), len(stale))
	}
	out := make([]*tensor.Tensor, len(grads))
	for i, g := range grads {
		if !g.SameShape(fresh[i]) || !g.SameShape(stale[i]) {
			return nil, fmt.Errorf("staleness: shape mismatch at tensor %d", i)
		}
		c := g.Clone()
		gd, fd, sd, cd := g.Data(), fresh[i].Data(), stale[i].Data(), c.Data()
		for j := range cd {
			cd[j] += lambda * gd[j] * gd[j] * (fd[j] - sd[j])
		}
		out[i] = c
	}
	return out, nil
}
