// Package rpcfed runs the federated model search over a real transport:
// participants are net/rpc servers on TCP (the paper deploys with
// PyTorch's Distributed RPC), and the search server dials them, ships
// pruned sub-models, and collects rewards and gradients asynchronously.
//
// Unlike internal/search — where staleness is *simulated* from a schedule —
// here soft synchronization is genuine: the server waits for a quorum of
// replies per round, and replies that arrive after their round closed are
// delay-compensated (Eq. 13–15) against the server's memory pools, exactly
// as Alg. 1 prescribes.
package rpcfed

import (
	"fmt"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/wire"
)

// TrainRequest asks a participant to run one local update (Alg. 1 lines
// 37–42) on a sub-model.
type TrainRequest struct {
	Round int
	// Gates select one candidate per edge; the participant reconstructs
	// the sub-model wiring from its own copy of the network config.
	Normal []int
	Reduce []int
	// Weights carries the sampled sub-model parameters in canonical
	// (SampledParams) order, flattened per tensor. Empty when the top-k
	// transport ships Packed deltas instead.
	Weights [][]float64
	// BatchSize is the mini-batch size for the local step.
	BatchSize int

	// Top-k transport fields (wire.TopK mode only; see topk.go). ParamIDs
	// names each shipped tensor by its supernet parameter index, the key
	// under which both ends maintain weight mirrors and gradient residuals
	// across rounds. Packed is a wire tensor group applied as a delta on
	// the participant's mirrors: dense tensors resync, tag-4 entries add.
	// TopKRatio tells the participant what fraction of gradient
	// coordinates to return.
	ParamIDs  []int
	TopKRatio float64
	Packed    []byte
	// Span carries the distributed-trace context of the round that issued
	// this request, so worker-side spans parent under the server's round
	// span. The binary framing lifts it into the frame header; gob mode
	// carries it in the body. Zero means the run is untraced.
	Span wire.SpanContext
}

// TrainReply returns the participant's reward and gradients.
type TrainReply struct {
	Round         int
	ParticipantID int
	// Reward is the training accuracy on the local batch (Eq. 8's ACC).
	Reward float64
	Loss   float64
	// Grads carries ∇θ for the sampled parameters, aligned with
	// TrainRequest.Weights. Empty when the top-k transport ships Packed.
	Grads [][]float64
	// Packed is the top-k transport's gradient payload: a wire tensor
	// group of tag-4 deltas carrying the k largest-magnitude coordinates
	// of gradient-plus-residual per tensor (decoded against zeros on the
	// server), aligned with TrainRequest.ParamIDs.
	Packed []byte
}

// HelloRequest is the registration handshake.
type HelloRequest struct{}

// HelloReply describes the participant.
type HelloReply struct {
	ParticipantID int
	NumSamples    int
}

// gatesOf converts the wire representation back to nas.Gates.
func gatesOf(req *TrainRequest) nas.Gates {
	return nas.Gates{
		Normal: append([]int(nil), req.Normal...),
		Reduce: append([]int(nil), req.Reduce...),
	}
}

// checkWeightShapes verifies a wire payload against expected tensor sizes.
func checkWeightShapes(weights [][]float64, sizes []int) error {
	if len(weights) != len(sizes) {
		return fmt.Errorf("rpcfed: %d weight tensors, want %d", len(weights), len(sizes))
	}
	for i, w := range weights {
		if len(w) != sizes[i] {
			return fmt.Errorf("rpcfed: weight %d has %d values, want %d", i, len(w), sizes[i])
		}
	}
	return nil
}
