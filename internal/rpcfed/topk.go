package rpcfed

import (
	"fmt"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/wire"
)

// Top-k transport (wire.TopK): both directions of the Train RPC ship
// index/value pairs instead of dense tensors, with error feedback so the
// dropped mass is deferred, not lost.
//
// Downlink (weights): the server keeps, per participant, a mirror of every
// supernet parameter it has ever sent that participant. Each dispatch
// encodes the top-k coordinates of (current weights − mirror) as a tag-4
// delta and advances the mirror by exactly the entries it sent; the
// participant applies the same delta to its own mirror copy, so the two
// stay bit-identical without ever exchanging dense tensors again. The
// un-sent weight drift remains in (w − mirror) and rides along in later
// rounds — error feedback with the mirror itself as the accumulator. A
// parameter's first contact (or any contact after a transport failure
// invalidated the mirror) is resynced with a dense-f32 tensor, which both
// ends round identically into their float64 mirrors.
//
// Uplink (gradients): the participant keeps a residual accumulator per
// supernet parameter, sends the top-k coordinates of gradient + residual,
// and keeps the rest as the next round's residual (classic EF-style
// memory). The server decodes the deltas against zeros — the k sent
// coordinates — and aggregates them exactly like a dense (mostly zero)
// gradient.
//
// The transport is lossy by construction, so it is gated on convergence
// parity with the gob baseline (cmd/benchrpc), not bit-identity; fp64 and
// sparse modes keep their bit-identity gates untouched.

// defaultTopKRatio is the downlink (weight-delta) fraction of coordinates
// shipped per tensor when the config leaves TopKRatio zero; the
// participants' weights track the server's θ through these deltas, so the
// fraction is kept an order of magnitude looser than the gradient uplink,
// where error feedback absorbs far sharper sparsification
// (defaultTopKGradRatio).
const (
	defaultTopKRatio     = 0.1
	defaultTopKGradRatio = 0.025
)

// peerMirror is the server's downlink state for one participant: float64
// weight mirrors keyed by supernet parameter index, plus reusable selection
// scratch. Accessed only from the dispatch path and (valid flag only) the
// call-failure path; both are serialized per participant by the in-flight
// bit and the replies channel.
type peerMirror struct {
	valid  bool
	params map[int][]float64
	delta  []float64
	idx    []int
}

// encodeDownlink builds the Packed weight payload for one participant and
// advances its mirrors. sub and subIdx are the sampled parameters and their
// supernet indices.
func (m *peerMirror) encodeDownlink(sub []*nn.Param, subIdx []int, ratio float64) []byte {
	if !m.valid {
		// A transport failure left the participant's state unknown: forget
		// everything and resync dense.
		clear(m.params)
		m.valid = true
	}
	packed := wire.AppendGroupHeader(nil, len(sub))
	for i, p := range sub {
		w := p.Value.Data()
		id := subIdx[i]
		mir := m.params[id]
		if len(mir) != len(w) {
			// First contact for this parameter: dense-f32 resync. Both ends
			// round the same float64s through float32, so the mirrors agree
			// bit for bit.
			mir = make([]float64, len(w))
			for j, v := range w {
				mir[j] = float64(float32(v))
			}
			m.params[id] = mir
			packed = wire.AppendTensor(packed, wire.FP32, w)
			continue
		}
		if cap(m.delta) < len(w) {
			m.delta = make([]float64, len(w))
		}
		d := m.delta[:len(w)]
		for j := range w {
			d[j] = w[j] - mir[j]
		}
		k := wire.TopKCount(len(d), ratio)
		m.idx = wire.TopKIndices(d, k, m.idx)
		packed = wire.AppendTensorTopK(packed, d, m.idx)
		// Advance by the sent entries exactly as the participant will:
		// mirror += delta, NOT mirror = w (the two differ in floating
		// point, and only the former keeps both ends bit-identical).
		for _, j := range m.idx {
			mir[j] += d[j]
		}
	}
	return packed
}

// decodePackedGrads expands a top-k gradient payload against zeros into
// per-parameter tensors shaped like sub.
func decodePackedGrads(packed []byte, sub []*nn.Param) ([]*tensor.Tensor, error) {
	base := make([][]float64, len(sub))
	for i, p := range sub {
		base[i] = make([]float64, p.Value.Size())
	}
	if _, err := wire.DecodeGroupDelta(packed, base); err != nil {
		return nil, fmt.Errorf("rpcfed: decode packed grads: %w", err)
	}
	grads := make([]*tensor.Tensor, len(sub))
	for i, p := range sub {
		grads[i] = tensor.FromSlice(base[i], p.Value.Shape()...)
	}
	return grads, nil
}
