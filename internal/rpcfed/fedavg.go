package rpcfed

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/wire"
)

// FedAvgRequest asks a participant to run LocalSteps of SGD on a fixed
// architecture starting from the shipped weights (the P3 "FL" phase over
// the real transport).
type FedAvgRequest struct {
	Round      int
	Normal     []int
	Reduce     []int
	Weights    [][]float64
	BatchSize  int
	LocalSteps int
	// Optimizer hyperparameters (paper Table I "P3, FL").
	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64
	// Span is the trace context of the issuing round (see
	// TrainRequest.Span).
	Span wire.SpanContext
}

// FedAvgReply returns the locally updated weights and shard size for
// server-side weighted averaging.
type FedAvgReply struct {
	Round         int
	ParticipantID int
	NumSamples    int
	TrainAccuracy float64
	Weights       [][]float64
}

// TrainAvg implements the FedAvg participant update over RPC.
func (p *ParticipantService) TrainAvg(req *FedAvgRequest, reply *FedAvgReply) error {
	p.mu.Lock()
	delay := p.delay
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	if req.BatchSize <= 0 || req.LocalSteps <= 0 {
		return fmt.Errorf("rpcfed: bad FedAvg request batch=%d steps=%d", req.BatchSize, req.LocalSteps)
	}
	geno := nas.GenotypeFromGates(nas.Gates{Normal: req.Normal, Reduce: req.Reduce},
		p.netCfg.Candidates, p.netCfg.Nodes)
	model, err := nas.NewFixedModel(p.rng, p.netCfg, geno)
	if err != nil {
		return fmt.Errorf("rpcfed: materialize model: %w", err)
	}
	params := model.Params()
	sizes := make([]int, len(params))
	for i, pr := range params {
		sizes[i] = pr.Value.Size()
	}
	if err := checkWeightShapes(req.Weights, sizes); err != nil {
		return err
	}
	for i, pr := range params {
		copy(pr.Value.Data(), req.Weights[i])
	}

	opt := nn.NewSGD(req.LR, req.Momentum, req.WeightDecay, req.GradClip)
	lastAcc := 0.0
	for step := 0; step < req.LocalSteps; step++ {
		batch := p.batcher.Next(req.BatchSize)
		x, y := p.ds.Gather(batch)
		x = p.augment.Apply(x, p.rng)
		nn.ZeroGrads(params)
		lossRes, err := nn.CrossEntropy(model.Forward(x), y)
		if err != nil {
			return err
		}
		model.Backward(lossRes.GradLogits)
		opt.Step(params)
		lastAcc = lossRes.Accuracy
	}

	reply.Round = req.Round
	reply.ParticipantID = p.id
	reply.NumSamples = p.numSamples
	reply.TrainAccuracy = lastAcc
	reply.Weights = flattenValues(params)
	return nil
}

// FedAvgOverRPC trains the genotype's discrete model with federated
// averaging across the RPC participants (hard sync: all replies per round,
// issued concurrently). The server's copy of the model is updated in place.
func FedAvgOverRPC(clients []*rpc.Client, model *nas.FixedModel, geno nas.Genotype,
	cfg fed.FedAvgConfig, rounds int) (metrics.Curve, error) {

	if len(clients) == 0 {
		return metrics.Curve{}, fmt.Errorf("rpcfed: no participants")
	}
	if err := cfg.Validate(); err != nil {
		return metrics.Curve{}, err
	}
	params := model.Params()
	var curve metrics.Curve

	for round := 0; round < rounds; round++ {
		weights := flattenValues(params)
		req := &FedAvgRequest{
			Round:      round,
			Normal:     genotypeGateInts(geno.Normal),
			Reduce:     genotypeGateInts(geno.Reduce),
			Weights:    weights,
			BatchSize:  cfg.BatchSize,
			LocalSteps: cfg.LocalSteps,
			LR:         cfg.LR, Momentum: cfg.Momentum,
			WeightDecay: cfg.WeightDecay, GradClip: cfg.GradClip,
		}
		replies := make([]*FedAvgReply, len(clients))
		errs := make([]error, len(clients))
		var wg sync.WaitGroup
		for i, client := range clients {
			wg.Add(1)
			go func(i int, client *rpc.Client) {
				defer wg.Done()
				r := &FedAvgReply{}
				errs[i] = client.Call("Participant.TrainAvg", req, r)
				replies[i] = r
			}(i, client)
		}
		wg.Wait()

		totalSamples := 0
		for i, err := range errs {
			if err != nil {
				return curve, fmt.Errorf("rpcfed: participant %d round %d: %w", i, round, err)
			}
			totalSamples += replies[i].NumSamples
		}
		// Weighted average of returned weights.
		avg := make([]*tensor.Tensor, len(params))
		for i, p := range params {
			avg[i] = tensor.New(p.Value.Shape()...)
		}
		meanAcc := 0.0
		for _, r := range replies {
			w := float64(r.NumSamples) / float64(totalSamples)
			for i := range avg {
				t := tensor.FromSlice(r.Weights[i], avg[i].Shape()...)
				avg[i].AXPY(w, t)
			}
			meanAcc += r.TrainAccuracy
		}
		for i, p := range params {
			p.Value.CopyFrom(avg[i])
		}
		curve.Add(round, meanAcc/float64(len(replies)))
	}
	return curve, nil
}

// genotypeGateInts converts op kinds to candidate indices over nas.AllOps
// (the participant reconstructs the genotype from its full candidate list).
func genotypeGateInts(ops []nas.OpKind) []int {
	out := make([]int, len(ops))
	for i, op := range ops {
		for j, k := range nas.AllOps {
			if k == op {
				out[i] = j
				break
			}
		}
	}
	return out
}
