package rpcfed

import (
	"math"
	"math/rand"
	"testing"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/wire"
)

// TestPeerMirrorSyncStaysBitIdentical drives several rounds of weight drift
// through the downlink encoder and a simulated participant decoder: the two
// mirror copies must agree bit for bit every round, the first round must
// resync dense, and later rounds must ship a fraction of the dense bytes.
func TestPeerMirrorSyncStaysBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 400
	w := tensor.New(n)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	p := &nn.Param{Value: w, Grad: tensor.New(n)}
	sub := []*nn.Param{p}
	subIdx := []int{3}

	m := &peerMirror{params: make(map[int][]float64)}
	var partMirror []float64 // the participant's copy, keyed base
	denseBytes := wire.GroupBytes(wire.FP64, [][]float64{w.Data()})

	for round := 0; round < 6; round++ {
		packed := m.encodeDownlink(sub, subIdx, 0.1)
		base := [][]float64{partMirror}
		if _, err := wire.DecodeGroupDelta(packed, base); err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		partMirror = base[0]
		serverMirror := m.params[3]
		for i := range serverMirror {
			if math.Float64bits(serverMirror[i]) != math.Float64bits(partMirror[i]) {
				t.Fatalf("round %d: mirrors diverged at %d: %v vs %v",
					round, i, serverMirror[i], partMirror[i])
			}
		}
		if round == 0 && len(packed) < 4*n {
			t.Fatalf("round 0 should resync dense f32 (>= %d bytes): %d bytes", 4*n, len(packed))
		}
		if round > 0 && int64(len(packed))*4 > denseBytes {
			t.Fatalf("round %d: delta frame %d bytes not < 1/4 of dense %d",
				round, len(packed), denseBytes)
		}
		// Drift the weights like an optimizer step would.
		for i := range w.Data() {
			w.Data()[i] += 0.01 * rng.NormFloat64()
		}
	}

	// Invalidation (a failed call) must force a dense resync that re-aligns
	// both ends even after the participant lost its state entirely.
	m.valid = false
	partMirror = nil
	packed := m.encodeDownlink(sub, subIdx, 0.1)
	base := [][]float64{nil}
	if _, err := wire.DecodeGroupDelta(packed, base); err != nil {
		t.Fatalf("resync decode: %v", err)
	}
	for i, v := range m.params[3] {
		if math.Float64bits(v) != math.Float64bits(base[0][i]) {
			t.Fatalf("post-resync mirrors diverged at %d", i)
		}
	}
}

// TestDeltaAgainstMissingBaseRejected pins the restart-safety property: a
// tag-4 delta aimed at state the receiver does not have must error out (the
// failed call is what triggers the server's dense resync) instead of
// silently applying increments to zeros.
func TestDeltaAgainstMissingBaseRejected(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	packed := wire.AppendTensorTopK(wire.AppendGroupHeader(nil, 1), d, wire.TopKIndices(d, 2, nil))
	if _, err := wire.DecodeGroupDelta(packed, [][]float64{nil}); err == nil {
		t.Fatal("top-k delta against nil base accepted")
	}
}

// TestTopKTrainCodecRoundTrip exercises the mode-conditional body layout:
// under wire.TopK the Train messages carry ParamIDs/TopKRatio/Packed and
// must survive the binary codec byte-exactly.
func TestTopKTrainCodecRoundTrip(t *testing.T) {
	req := &TrainRequest{
		Round: 5, Normal: []int{1, 0}, Reduce: []int{2, 3}, BatchSize: 8,
		ParamIDs:  []int{4, 9},
		TopKRatio: 0.25,
		Packed:    []byte{2, 0, 0, 0, 7, 7, 7},
	}
	buf, err := appendTrainRequest(nil, wire.TopK, req)
	if err != nil {
		t.Fatal(err)
	}
	var got TrainRequest
	if err := decodeTrainRequest(wire.NewReader(buf), wire.TopK, &got); err != nil {
		t.Fatal(err)
	}
	if got.Round != 5 || got.TopKRatio != 0.25 ||
		len(got.ParamIDs) != 2 || got.ParamIDs[0] != 4 || got.ParamIDs[1] != 9 ||
		string(got.Packed) != string(req.Packed) ||
		len(got.Weights) != 0 {
		t.Fatalf("TrainRequest mangled: %+v", got)
	}

	rep := &TrainReply{
		Round: 5, ParticipantID: 1, Reward: 0.5, Loss: 1.25,
		Packed: []byte{1, 0, 0, 0, 9},
	}
	rbuf, err := appendTrainReply(nil, wire.TopK, rep)
	if err != nil {
		t.Fatal(err)
	}
	var rgot TrainReply
	if err := decodeTrainReply(wire.NewReader(rbuf), wire.TopK, &rgot); err != nil {
		t.Fatal(err)
	}
	if rgot.Round != 5 || rgot.Reward != 0.5 || string(rgot.Packed) != string(rep.Packed) {
		t.Fatalf("TrainReply mangled: %+v", rgot)
	}
}

// TestTopKSearchEndToEnd runs a short search over the TopK transport:
// the run must complete on fresh replies, learn something (non-degenerate
// curve), and — being lossy by construction — land on different final
// parameters than the gob baseline. If the hashes ever matched, the mode
// plumbing would be dead and the run silently dense.
func TestTopKSearchEndToEnd(t *testing.T) {
	gob := runSearchWithMode(t, wire.Gob)
	topk := runSearchWithMode(t, wire.TopK)
	if topk == gob {
		t.Errorf("topk hash equals gob hash %#x — sparsification not happening", gob)
	}
}

// TestTopKSearchProgress checks reply accounting under the sparse
// transport: every round's quorum must be met by fresh replies (the lossy
// payloads must decode cleanly call after call, or replies would drop).
func TestTopKSearchProgress(t *testing.T) {
	addrs, _, stop := startCluster(t, 3, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 5
	cfg.Quorum = 1.0
	cfg.Transport.Wire = wire.TopK
	cfg.Transport.TopKRatio = 0.2
	cfg.Seed = 33
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsCompleted != cfg.Rounds {
		t.Fatalf("completed %d rounds, want %d", res.RoundsCompleted, cfg.Rounds)
	}
	if res.FreshReplies < cfg.Rounds*3 {
		t.Fatalf("fresh replies %d < %d — sparse payloads being dropped",
			res.FreshReplies, cfg.Rounds*3)
	}
	if res.DroppedReplies != 0 {
		t.Fatalf("%d dropped replies under a healthy cluster", res.DroppedReplies)
	}
}
