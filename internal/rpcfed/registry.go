package rpcfed

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Registry is the server-side participant roster. Enrolling a participant
// costs one stub (id, address, lifecycle state) — no connection, no model
// state — so a server can register thousands of endpoints as cheaply as
// ten. Connections are established eagerly at startup by default, or on
// first dispatch under Transport.LazyDial, so with per-round cohort
// sampling only participants that have actually been sampled ever hold a
// dialed connection.
type Registry struct {
	peers []*peer
}

// newRegistry enrolls one undialed peer stub per address.
func newRegistry(addrs []string) *Registry {
	r := &Registry{peers: make([]*peer, len(addrs))}
	for i, addr := range addrs {
		r.peers[i] = &peer{id: i, addr: addr}
	}
	return r
}

// Len returns the enrolled participant count.
func (r *Registry) Len() int { return len(r.peers) }

// StateCounts tallies peers by lifecycle state.
func (r *Registry) StateCounts() (alive, suspect, dead int) {
	for _, p := range r.peers {
		switch p.State() {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	return alive, suspect, dead
}

// Connected counts peers currently holding a dialed connection — the
// registry's memory-model observable: under lazy dialing it tracks cohort
// coverage, not enrollment.
func (r *Registry) Connected() int {
	n := 0
	for _, p := range r.peers {
		p.mu.Lock()
		if p.client != nil {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Statuses snapshots the half-open status range [lo, hi) in id order
// (bounds are clamped).
func (r *Registry) Statuses(lo, hi int) []ParticipantStatus {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.peers) {
		hi = len(r.peers)
	}
	if lo >= hi {
		return nil
	}
	out := make([]ParticipantStatus, 0, hi-lo)
	for _, p := range r.peers[lo:hi] {
		p.mu.Lock()
		out = append(out, ParticipantStatus{
			ID:       p.id,
			Addr:     p.addr,
			State:    p.state.String(),
			Failures: p.failures,
		})
		p.mu.Unlock()
	}
	return out
}

// participantsPageLimit is the default (and maximum) page size the
// /participants endpoint serves when asked for per-participant detail.
const participantsPageLimit = 256

// smallPopulation is the enrollment size up to which /participants keeps
// inlining the full per-participant list by default, preserving the
// pre-population dashboard behavior at dashboard-sized K.
const smallPopulation = 32

// ParticipantsSummary is the scale-safe /participants payload: aggregate
// state counts plus the current round's sampled cohort, with the
// per-participant list included only at small K or on explicit request.
type ParticipantsSummary struct {
	Enrolled   int   `json:"enrolled"`
	CohortSize int   `json:"cohort_size"`
	Round      int   `json:"round"`
	Cohort     []int `json:"cohort"`
	Alive      int   `json:"alive"`
	Suspect    int   `json:"suspect"`
	Dead       int   `json:"dead"`
	Connected  int   `json:"connected"`

	// Participants is the detail page (everyone at K <= 32 or with ?all=1,
	// a slice with ?offset=&limit= otherwise). Offset/Total locate the
	// page within the roster.
	Participants []ParticipantStatus `json:"participants,omitempty"`
	Offset       int                 `json:"offset"`
	Total        int                 `json:"total"`
}

// ParticipantsSummary builds the aggregate roster snapshot: counts, the
// current round's cohort, and — at small K — the full status list.
func (s *Server) ParticipantsSummary() ParticipantsSummary {
	round := int(s.curRound.Load())
	alive, suspect, dead := s.reg.StateCounts()
	sum := ParticipantsSummary{
		Enrolled:   s.reg.Len(),
		CohortSize: s.sampler.Size(),
		Round:      round,
		Cohort:     s.sampler.Cohort(round),
		Alive:      alive,
		Suspect:    suspect,
		Dead:       dead,
		Connected:  s.reg.Connected(),
		Total:      s.reg.Len(),
	}
	if s.reg.Len() <= smallPopulation {
		sum.Participants = s.reg.Statuses(0, s.reg.Len())
	}
	return sum
}

// ParticipantStates snapshots every participant's lifecycle state. It is
// the legacy full-roster accessor; at large K prefer ParticipantsSummary
// (counts) or Registry.Statuses (a page).
func (s *Server) ParticipantStates() []ParticipantStatus {
	return s.reg.Statuses(0, s.reg.Len())
}

// Registry exposes the participant roster.
func (s *Server) Registry() *Registry { return s.reg }

// ParticipantsHandler serves the /participants debug endpoint. By default
// it returns the aggregate summary (plus the full list when K <= 32);
// ?all=1 forces the full list regardless of K, and ?offset=N&limit=M pages
// through the roster (limit capped at 256).
func (s *Server) ParticipantsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sum := s.ParticipantsSummary()
		q := req.URL.Query()
		switch {
		case q.Get("all") == "1":
			sum.Participants = s.reg.Statuses(0, s.reg.Len())
		case q.Has("offset") || q.Has("limit"):
			offset, _ := strconv.Atoi(q.Get("offset"))
			limit, err := strconv.Atoi(q.Get("limit"))
			if err != nil || limit <= 0 || limit > participantsPageLimit {
				limit = participantsPageLimit
			}
			if offset < 0 {
				offset = 0
			}
			sum.Offset = offset
			sum.Participants = s.reg.Statuses(offset, offset+limit)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
