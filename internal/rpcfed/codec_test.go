package rpcfed

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

// dialTest connects a client to addr in the given wire mode with its own
// metrics bundle, so tests can compare byte counts per mode.
func dialTest(t *testing.T, addr string, mode wire.Mode) (*rpc.Client, *telemetry.WireMetrics) {
	t.Helper()
	met := telemetry.NewWireMetrics(telemetry.NewRegistry())
	client, err := dialParticipant(addr, mode, &met, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return client, &met
}

func TestCodecTrainRoundTripAllModes(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()

	var fp64Grads [][]float64
	for _, mode := range []wire.Mode{wire.Gob, wire.FP64, wire.FP32, wire.Sparse} {
		client, met := dialTest(t, addrs[0], mode)

		// Hello exercises the gob-blob fallback inside the binary envelope.
		var hello HelloReply
		if err := client.Call("Participant.Hello", &HelloRequest{}, &hello); err != nil {
			t.Fatalf("%v: Hello: %v", mode, err)
		}
		if hello.ParticipantID != 0 || hello.NumSamples <= 0 {
			t.Fatalf("%v: bad Hello reply %+v", mode, hello)
		}

		// Train exercises the typed tensor path with a real payload.
		req := trainRequestForTest(t)
		var reply TrainReply
		if err := client.Call("Participant.Train", req, &reply); err != nil {
			t.Fatalf("%v: Train: %v", mode, err)
		}
		if reply.Round != req.Round || reply.ParticipantID != 0 {
			t.Fatalf("%v: bad reply header %+v", mode, reply)
		}
		if len(reply.Grads) != len(req.Weights) {
			t.Fatalf("%v: %d grad tensors, want %d", mode, len(reply.Grads), len(req.Weights))
		}
		for i := range reply.Grads {
			if len(reply.Grads[i]) != len(req.Weights[i]) {
				t.Fatalf("%v: grad %d length %d, want %d", mode, i, len(reply.Grads[i]), len(req.Weights[i]))
			}
		}
		// All four modes hit one shared participant whose batcher advances
		// between calls, so only shapes are comparable here; bit-identity
		// across modes runs on fresh clusters in TestWireModeBitIdentity.
		if mode == wire.FP64 {
			fp64Grads = reply.Grads
		}
		if met.MessagesSent.Value() < 2 || met.MessagesReceived.Value() < 2 {
			t.Fatalf("%v: message counters not ticking: %d/%d", mode,
				met.MessagesSent.Value(), met.MessagesReceived.Value())
		}
		if met.BytesSent.Value() <= 0 || met.BytesReceived.Value() <= 0 {
			t.Fatalf("%v: byte counters not ticking", mode)
		}
		if mode != wire.Gob && (met.EncodeNs.Value() <= 0 || met.DecodeNs.Value() <= 0) {
			t.Fatalf("%v: codec timers not ticking", mode)
		}
		client.Close()
	}
	if fp64Grads == nil {
		t.Fatal("fp64 pass did not run")
	}
}

// trainRequestForTest builds a valid TrainRequest the way the server does:
// all-first-candidate gates over a fresh supernet of the test config.
func trainRequestForTest(t *testing.T) *TrainRequest {
	t.Helper()
	net, err := nas.NewSupernet(rand.New(rand.NewSource(3)), testNet())
	if err != nil {
		t.Fatal(err)
	}
	nE, rE := net.ArchSpace()
	g := nas.Gates{Normal: make([]int, nE), Reduce: make([]int, rE)}
	return &TrainRequest{
		Round: 0, Normal: g.Normal, Reduce: g.Reduce,
		Weights: flattenValues(net.SampledParams(g)), BatchSize: 8,
	}
}

func TestCodecPropagatesServerError(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()
	for _, mode := range []wire.Mode{wire.Gob, wire.FP64} {
		client, _ := dialTest(t, addrs[0], mode)
		req := trainRequestForTest(t)
		req.BatchSize = 0
		var reply TrainReply
		err := client.Call("Participant.Train", req, &reply)
		if err == nil || !strings.Contains(err.Error(), "batch size") {
			t.Fatalf("%v: want batch-size error, got %v", mode, err)
		}
		// The connection must survive an application error.
		var hello HelloReply
		if err := client.Call("Participant.Hello", &HelloRequest{}, &hello); err != nil {
			t.Fatalf("%v: connection dead after app error: %v", mode, err)
		}
		client.Close()
	}
}

func TestMixedCodecClientsOnOneListener(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()

	gobClient, err := rpc.Dial("tcp", addrs[0]) // stock net/rpc client
	if err != nil {
		t.Fatal(err)
	}
	defer gobClient.Close()
	binClient, _ := dialTest(t, addrs[0], wire.Sparse)
	defer binClient.Close()

	for name, c := range map[string]*rpc.Client{"gob": gobClient, "binary": binClient} {
		var hello HelloReply
		if err := c.Call("Participant.Hello", &HelloRequest{}, &hello); err != nil {
			t.Fatalf("%s client on shared listener: %v", name, err)
		}
	}
}

func TestFP32PayloadSmallerThanGob(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()
	bytesFor := func(mode wire.Mode) int64 {
		client, met := dialTest(t, addrs[0], mode)
		defer client.Close()
		var reply TrainReply
		if err := client.Call("Participant.Train", trainRequestForTest(t), &reply); err != nil {
			t.Fatal(err)
		}
		return met.BytesSent.Value() + met.BytesReceived.Value()
	}
	gob, fp32 := bytesFor(wire.Gob), bytesFor(wire.FP32)
	// On this deliberately tiny test net, zero/one-valued BatchNorm params
	// let gob's trailing-zero trimming look unusually good, so only strict
	// reduction is asserted here; the ≥2x claim is measured on the real
	// K=8 workload by cmd/benchrpc (BENCH_rpc.json).
	if fp32 >= gob {
		t.Errorf("fp32 moved %d bytes, gob %d — binary fp32 should be smaller", fp32, gob)
	}
}

// TestEnvelopeGoldenBytes freezes the message envelope layout.
func TestEnvelopeGoldenBytes(t *testing.T) {
	buf, err := appendFrameHeader(nil, wire.FP32, "Participant.Train", 7, "boom", wire.SpanContext{}, bodyTrainReply)
	if err != nil {
		t.Fatal(err)
	}
	buf = finishFrame(buf, 0)

	want := new(bytes.Buffer)
	lenExpect := 1 + 1 + 1 + len("Participant.Train") + 8 + 2 + len("boom") + 1
	binary.Write(want, binary.LittleEndian, uint32(lenExpect))
	want.WriteByte(wireVersion)
	want.WriteByte(byte(wire.FP32))
	want.WriteByte(byte(len("Participant.Train")))
	want.WriteString("Participant.Train")
	binary.Write(want, binary.LittleEndian, uint64(7))
	binary.Write(want, binary.LittleEndian, uint16(len("boom")))
	want.WriteString("boom")
	want.WriteByte(bodyTrainReply)

	if !bytes.Equal(buf, want.Bytes()) {
		t.Fatalf("envelope drifted from golden bytes:\n got %x\nwant %x", buf, want.Bytes())
	}

	r := wire.NewReader(buf[4:])
	h, err := parseFrameHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if h.mode != wire.FP32 || h.method != "Participant.Train" || h.seq != 7 ||
		h.errStr != "boom" || h.kind != bodyTrainReply {
		t.Fatalf("parsed header %+v does not match what was written", h)
	}
}

func TestTypedBodyRoundTrip(t *testing.T) {
	req := &FedAvgRequest{
		Round: 3, Normal: []int{0, 2}, Reduce: []int{1, 1},
		Weights:   [][]float64{{1, 0, -2.5}, {}},
		BatchSize: 8, LocalSteps: 4,
		LR: 0.1, Momentum: 0.9, WeightDecay: 3e-4, GradClip: 5,
	}
	for _, mode := range []wire.Mode{wire.FP64, wire.Sparse} {
		buf, err := appendFedAvgRequest(nil, mode, req)
		if err != nil {
			t.Fatal(err)
		}
		var got FedAvgRequest
		if err := decodeFedAvgRequest(wire.NewReader(buf), &got); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got.Round != req.Round || got.BatchSize != req.BatchSize ||
			got.LocalSteps != req.LocalSteps || got.LR != req.LR ||
			got.Momentum != req.Momentum || got.WeightDecay != req.WeightDecay ||
			got.GradClip != req.GradClip {
			t.Fatalf("%v: scalars mangled: %+v", mode, got)
		}
		for i := range req.Weights {
			for j := range req.Weights[i] {
				if math.Float64bits(got.Weights[i][j]) != math.Float64bits(req.Weights[i][j]) {
					t.Fatalf("%v: weights mangled", mode)
				}
			}
		}
	}
	rep := &FedAvgReply{Round: 3, ParticipantID: 2, NumSamples: 40,
		TrainAccuracy: 0.75, Weights: [][]float64{{4, 5}}}
	buf, err := appendFedAvgReply(nil, wire.FP64, rep)
	if err != nil {
		t.Fatal(err)
	}
	var got FedAvgReply
	if err := decodeFedAvgReply(wire.NewReader(buf), &got); err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 || got.ParticipantID != 2 || got.NumSamples != 40 ||
		got.TrainAccuracy != 0.75 || got.Weights[0][1] != 5 {
		t.Fatalf("FedAvgReply mangled: %+v", got)
	}
}

func TestGateIntsRejectOutOfRange(t *testing.T) {
	if _, err := appendGateInts(nil, []int{70000}); err == nil {
		t.Fatal("gate index 70000 accepted")
	}
	if _, err := appendGateInts(nil, []int{-1}); err == nil {
		t.Fatal("negative gate index accepted")
	}
}

// FuzzParseFrame throws arbitrary bytes at the envelope parser and the
// typed body decoders: they must reject garbage with an error, never
// panic.
func FuzzParseFrame(f *testing.F) {
	seed, _ := appendFrameHeader(nil, wire.FP64, "Participant.Train", 1, "", wire.SpanContext{}, bodyTrainRequest)
	seed, _ = appendTrainRequest(seed, wire.FP64, &TrainRequest{
		Round: 0, Normal: []int{0}, Reduce: []int{1},
		Weights: [][]float64{{1, 2}}, BatchSize: 4,
	})
	f.Add(seed[4:])
	f.Add([]byte{wireVersion, 9, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		r := wire.NewReader(frame)
		h, err := parseFrameHeader(r)
		if err != nil {
			return
		}
		switch h.kind {
		case bodyTrainRequest:
			_ = decodeBody(r, h.kind, h.mode, &TrainRequest{})
		case bodyTrainReply:
			_ = decodeBody(r, h.kind, h.mode, &TrainReply{})
		case bodyFedAvgReq:
			_ = decodeBody(r, h.kind, h.mode, &FedAvgRequest{})
		case bodyFedAvgReply:
			_ = decodeBody(r, h.kind, h.mode, &FedAvgReply{})
		}
	})
}

// thetaHashOf fingerprints the server's final supernet parameters down to
// the bit (FNV-1a over each float64's LE bytes).
func thetaHashOf(s *Server) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range s.net.Params() {
		for _, v := range p.Value.Data() {
			bits := math.Float64bits(v)
			for i := 0; i < 64; i += 8 {
				h ^= uint64(byte(bits >> i))
				h *= prime64
			}
		}
	}
	return h
}

// runSearchWithMode runs a short hard-sync search over a fresh cluster in
// the given wire mode and returns the bit-exact final θ hash.
func runSearchWithMode(t *testing.T, mode wire.Mode) uint64 {
	t.Helper()
	addrs, _, stop := startCluster(t, 3, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 4
	cfg.Quorum = 1.0
	cfg.Transport.Wire = mode
	cfg.Seed = 21
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return thetaHashOf(s)
}

// TestWireModeBitIdentity is the regression pin for the -wire fp64
// guarantee: the binary lossless modes must land on the exact same final
// parameters as the gob baseline, while fp32 (lossy by construction) must
// not — if fp32 ever matched, the mode plumbing would be broken.
func TestWireModeBitIdentity(t *testing.T) {
	gob := runSearchWithMode(t, wire.Gob)
	fp64 := runSearchWithMode(t, wire.FP64)
	sparse := runSearchWithMode(t, wire.Sparse)
	fp32 := runSearchWithMode(t, wire.FP32)
	if fp64 != gob {
		t.Errorf("fp64 hash %#x != gob hash %#x — lossless mode drifted", fp64, gob)
	}
	if sparse != gob {
		t.Errorf("sparse hash %#x != gob hash %#x — lossless mode drifted", sparse, gob)
	}
	if fp32 == gob {
		t.Errorf("fp32 hash equals gob hash %#x — quantization not happening", gob)
	}
}

func TestDialRetryLateBindingListener(t *testing.T) {
	// Reserve a port, release it, then bring the participant up on it only
	// after the server has started dialing.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	ds := testDataset(t)
	errCh := make(chan error, 1)
	var lateLn net.Listener
	go func() {
		time.Sleep(150 * time.Millisecond)
		svc, err := NewParticipantService(0, ds, []int{0, 1, 2, 3}, testNet(), 1)
		if err != nil {
			errCh <- err
			return
		}
		ln, _, err := svc.Serve(addr)
		if err != nil {
			errCh <- err
			return
		}
		lateLn = ln
		errCh <- nil
	}()

	cfg := DefaultServerConfig(testNet())
	cfg.Transport.DialAttempts = 10
	cfg.Transport.DialBackoff = 50 * time.Millisecond
	s, err := NewServer(cfg, []string{addr})
	if err != nil {
		t.Fatalf("dial retry did not survive a late-binding listener: %v", err)
	}
	s.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if lateLn != nil {
		lateLn.Close()
	}
}

func TestDialNoRetryFailsFast(t *testing.T) {
	met := telemetry.NewDisabledWireMetrics()
	start := time.Now()
	_, err := dialParticipant("127.0.0.1:1", wire.FP64, &met, 1, time.Second)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("single-attempt dial took %v (backoff applied before first try?)", elapsed)
	}
}
