package rpcfed

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

// ParticipantService is the RPC service a federated client exposes. It
// owns a local data shard and, per request, materializes the sub-model the
// server selected (only the gated candidate per edge — never the whole
// supernet), loads the shipped weights, runs one batch-gradient step's
// backward pass, and returns reward plus gradients.
type ParticipantService struct {
	id     int
	netCfg nas.Config

	mu      sync.Mutex
	ds      *data.Dataset
	batcher *data.Batcher
	rng     *rand.Rand
	augment data.AugmentConfig

	// Delay artificially slows every call (straggler injection for soft
	// synchronization tests and demos).
	delay time.Duration

	// wireMet receives per-connection codec counters (see SetWireMetrics).
	wireMet telemetry.WireMetrics

	// tracer receives worker-side spans (worker.train plus the codec's
	// worker.decode/worker.encode); nil disables them. curSpan snapshots
	// the trace context of the request currently (or most recently)
	// training, so a chaos injector can tag faults with the active round.
	tracer  *telemetry.Tracer
	curSpan wire.SpanContext

	// Top-k transport state (see topk.go), keyed by supernet parameter
	// index: mirror is this end's copy of the server's per-participant
	// weight mirror, residual the error-feedback accumulator for gradient
	// coordinates not yet shipped. Both stay nil until a Packed request
	// arrives. idx/scratch are reusable selection buffers.
	mirror   map[int][]float64
	residual map[int][]float64
	idx      []int
	scratch  []float64

	numSamples int
}

// NewParticipantService constructs a participant over a shard of ds.
func NewParticipantService(id int, ds *data.Dataset, indices []int, netCfg nas.Config, seed int64) (*ParticipantService, error) {
	rng := rand.New(rand.NewSource(seed))
	b, err := data.NewBatcher(indices, rng)
	if err != nil {
		return nil, fmt.Errorf("rpcfed: participant %d: %w", id, err)
	}
	return &ParticipantService{
		id:         id,
		netCfg:     netCfg,
		ds:         ds,
		batcher:    b,
		rng:        rng,
		augment:    data.DefaultAugment(),
		numSamples: len(indices),
	}, nil
}

// SetDelay injects an artificial per-call delay (straggler simulation).
func (p *ParticipantService) SetDelay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delay = d
}

// Hello implements the registration handshake.
func (p *ParticipantService) Hello(_ *HelloRequest, reply *HelloReply) error {
	reply.ParticipantID = p.id
	reply.NumSamples = p.numSamples
	return nil
}

// Train implements Alg. 1's participant update (lines 37–42) over RPC.
func (p *ParticipantService) Train(req *TrainRequest, reply *TrainReply) error {
	t0 := time.Now()
	p.mu.Lock()
	delay := p.delay
	p.curSpan = req.Span
	tracer := p.tracer
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// The span covers the whole call including any injected straggler
	// delay — that is exactly the latency the server's critical path sees.
	defer func() {
		tracer.WorkerSpan(telemetry.EventWorkerTrain, req.Span, 0, time.Since(t0).Seconds())
	}()

	if req.BatchSize <= 0 {
		return fmt.Errorf("rpcfed: batch size %d", req.BatchSize)
	}
	gates := gatesOf(req)
	geno := nas.GenotypeFromGates(gates, p.netCfg.Candidates, p.netCfg.Nodes)
	model, err := nas.NewFixedModel(p.rng, p.netCfg, geno)
	if err != nil {
		return fmt.Errorf("rpcfed: materialize sub-model: %w", err)
	}
	params := model.Params()
	sizes := make([]int, len(params))
	for i, pr := range params {
		sizes[i] = pr.Value.Size()
	}
	topk := len(req.Packed) > 0
	if topk {
		if len(req.ParamIDs) != len(params) {
			return fmt.Errorf("rpcfed: %d param ids, want %d", len(req.ParamIDs), len(params))
		}
		// Apply the server's weight payload onto the local mirrors: dense
		// tensors resync, tag-4 entries advance the mirror by exactly what
		// the server's copy advanced. A delta for a parameter we have no
		// (right-sized) mirror for — e.g. after a restart wiped our state
		// while the server kept believing it — decodes against a nil base
		// and errors out; the failed call invalidates the server's mirror
		// and the next round resyncs dense.
		base := make([][]float64, len(params))
		for i, id := range req.ParamIDs {
			if m := p.mirror[id]; len(m) == sizes[i] {
				base[i] = m
			}
		}
		if _, err := wire.DecodeGroupDelta(req.Packed, base); err != nil {
			return fmt.Errorf("rpcfed: apply weight delta: %w", err)
		}
		if p.mirror == nil {
			p.mirror = make(map[int][]float64)
			p.residual = make(map[int][]float64)
		}
		for i, id := range req.ParamIDs {
			if len(base[i]) != sizes[i] {
				return fmt.Errorf("rpcfed: weight %d has %d values, want %d", i, len(base[i]), sizes[i])
			}
			p.mirror[id] = base[i]
			copy(params[i].Value.Data(), base[i])
		}
	} else {
		if err := checkWeightShapes(req.Weights, sizes); err != nil {
			return err
		}
		for i, pr := range params {
			copy(pr.Value.Data(), req.Weights[i])
		}
	}

	batch := p.batcher.Next(req.BatchSize)
	x, y := p.ds.Gather(batch)
	x = p.augment.Apply(x, p.rng)
	nn.ZeroGrads(params)
	lossRes, err := nn.CrossEntropy(model.Forward(x), y)
	if err != nil {
		return err
	}
	model.Backward(lossRes.GradLogits)

	reply.Round = req.Round
	reply.ParticipantID = p.id
	reply.Reward = lossRes.Accuracy
	reply.Loss = lossRes.Loss
	if topk {
		// Error-feedback sparsification: ship the top-k coordinates of
		// gradient + residual, carry everything dropped into the next
		// round's residual for this parameter.
		ratio := req.TopKRatio
		if ratio <= 0 || ratio > 1 {
			ratio = defaultTopKGradRatio
		}
		packed := wire.AppendGroupHeader(nil, len(params))
		for i, pr := range params {
			g := pr.Grad.Data()
			id := req.ParamIDs[i]
			res := p.residual[id]
			if len(res) != len(g) {
				res = make([]float64, len(g))
				p.residual[id] = res
			}
			if cap(p.scratch) < len(g) {
				p.scratch = make([]float64, len(g))
			}
			u := p.scratch[:len(g)]
			for j := range g {
				u[j] = g[j] + res[j]
			}
			k := wire.TopKCount(len(u), ratio)
			p.idx = wire.TopKIndices(u, k, p.idx)
			packed = wire.AppendTensorTopK(packed, u, p.idx)
			copy(res, u)
			for _, j := range p.idx {
				res[j] = 0
			}
		}
		reply.Packed = packed
		return nil
	}
	reply.Grads = make([][]float64, len(params))
	for i, pr := range params {
		reply.Grads[i] = append([]float64(nil), pr.Grad.Data()...)
	}
	return nil
}

// SetWireMetrics attaches wire-codec counters (bytes, encode/decode ns)
// to every connection accepted after the call. Pass a bundle from
// telemetry.NewWireMetrics; the default is unobserved.
func (p *ParticipantService) SetWireMetrics(met telemetry.WireMetrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wireMet = met
}

// SetTracer attaches a worker-side span tracer. Connections accepted after
// the call emit worker.decode/worker.encode codec spans, and Train emits a
// worker.train span, all parented under the server round span carried in
// each request. A nil tracer (the default) disables worker spans.
func (p *ParticipantService) SetTracer(t *telemetry.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = t
}

// CurrentSpan snapshots the trace context of the request this participant
// is (or was most recently) training — the hook a fault injector uses to
// tag chaos.fault events with the round they disrupted.
func (p *ParticipantService) CurrentSpan() wire.SpanContext {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.curSpan
}

// Serve registers the service under a unique name and accepts connections
// on a fresh TCP listener until the listener is closed. Each connection's
// first bytes are sniffed: clients that sent the binary-protocol preamble
// get the binary server codec, everything else falls back to stock gob —
// so mixed-mode clients (and older servers) coexist on one listener. It
// returns the listener (for its address and for shutdown) and a done
// channel closed when the accept loop exits.
func (p *ParticipantService) Serve(addr string) (net.Listener, <-chan struct{}, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("rpcfed: listen: %w", err)
	}
	done, err := p.ServeListener(ln)
	if err != nil {
		_ = ln.Close()
		return nil, nil, err
	}
	return ln, done, nil
}

// ServeListener is Serve over a caller-supplied listener — e.g. one wrapped
// by a fault injector (internal/chaos) or a custom transport. Closing the
// listener stops the accept loop and closes the returned channel.
func (p *ParticipantService) ServeListener(ln net.Listener) (<-chan struct{}, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Participant", p); err != nil {
		return nil, fmt.Errorf("rpcfed: register: %w", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go p.serveConn(srv, conn)
		}
	}()
	return done, nil
}

// serveConn sniffs one connection's protocol and serves it to completion.
func (p *ParticipantService) serveConn(srv *rpc.Server, conn net.Conn) {
	p.mu.Lock()
	met := p.wireMet
	tracer := p.tracer
	p.mu.Unlock()
	counted := &countingConn{Conn: conn, met: &met}
	br := bufio.NewReader(counted)
	magic, err := br.Peek(len(wirePreamble))
	if err == nil && string(magic) == wirePreamble {
		if _, err := br.Discard(len(wirePreamble)); err != nil {
			conn.Close()
			return
		}
		srv.ServeCodec(newBinaryServerCodec(sniffedConn{r: br, Conn: counted}, &met, tracer))
		return
	}
	// Not our preamble (or the peer closed before sending 4 bytes): hand
	// the connection — with the peeked bytes replayed — to the gob codec.
	srv.ServeConn(sniffedConn{r: br, Conn: counted})
}
