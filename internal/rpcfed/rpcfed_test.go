package rpcfed

import (
	"math/rand"
	"net"
	"net/rpc"
	"testing"
	"time"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/staleness"
)

func testNet() nas.Config {
	return nas.Config{
		InChannels: 2, NumClasses: 4, C: 3, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
}

func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	spec := data.Spec{
		Name: "rpct", NumClasses: 4, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 24, TestPerClass: 6, Noise: 1.0, Confusion: 0.3, Seed: 13,
	}
	ds, err := data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// startCluster launches k participant RPC servers on loopback and returns
// their addresses plus a shutdown func.
func startCluster(t *testing.T, k int, slow map[int]time.Duration) ([]string, []*ParticipantService, func()) {
	t.Helper()
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(5))
	part, err := data.IIDPartition(ds.NumTrain(), k, rng)
	if err != nil {
		t.Fatal(err)
	}
	var (
		addrs     []string
		listeners []net.Listener
		services  []*ParticipantService
	)
	for i := 0; i < k; i++ {
		svc, err := NewParticipantService(i, ds, part.Indices[i], testNet(), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if d, ok := slow[i]; ok {
			svc.SetDelay(d)
		}
		ln, _, err := svc.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		listeners = append(listeners, ln)
		services = append(services, svc)
	}
	return addrs, services, func() {
		for _, ln := range listeners {
			_ = ln.Close()
		}
	}
}

// clientOf grabs one participant's live rpc client (helper for tests that
// speak to participants directly through the server's connections).
func clientOf(s *Server, i int) *rpc.Client {
	c := s.Clients()[i]
	if c == nil {
		panic("clientOf: participant is dead")
	}
	return c
}

func TestWireHelpers(t *testing.T) {
	req := &TrainRequest{Normal: []int{1, 2}, Reduce: []int{3, 4}}
	g := gatesOf(req)
	req.Normal[0] = 9
	if g.Normal[0] != 1 {
		t.Error("gatesOf must copy")
	}
	if err := checkWeightShapes([][]float64{{1, 2}}, []int{2}); err != nil {
		t.Errorf("valid shapes rejected: %v", err)
	}
	if err := checkWeightShapes([][]float64{{1}}, []int{2}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := checkWeightShapes([][]float64{{1}}, []int{1, 1}); err == nil {
		t.Error("wrong count accepted")
	}
}

func TestServerConfigValidation(t *testing.T) {
	good := DefaultServerConfig(testNet())
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*ServerConfig){
		func(c *ServerConfig) { c.Rounds = 0 },
		func(c *ServerConfig) { c.BatchSize = 0 },
		func(c *ServerConfig) { c.Quorum = 0 },
		func(c *ServerConfig) { c.Quorum = 1.5 },
		func(c *ServerConfig) { c.StalenessThreshold = -1 },
		func(c *ServerConfig) { c.Lambda = -1 },
		func(c *ServerConfig) { c.Strategy = staleness.Strategy(99) },
		func(c *ServerConfig) { c.RoundTimeout = 0 },
		func(c *ServerConfig) { c.Transport.Workers = -1 },
		func(c *ServerConfig) { c.Transport.DialAttempts = -1 },
		func(c *ServerConfig) { c.Transport.DialBackoff = -time.Second },
		func(c *ServerConfig) { c.Transport.CallTimeout = -time.Second },
	} {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Error("expected validation error")
		}
	}
}

func TestNewServerRequiresAddrs(t *testing.T) {
	if _, err := NewServer(DefaultServerConfig(testNet()), nil); err == nil {
		t.Error("expected error for empty address list")
	}
}

func TestNewServerDialFailure(t *testing.T) {
	if _, err := NewServer(DefaultServerConfig(testNet()), []string{"127.0.0.1:1"}); err == nil {
		t.Error("expected dial error")
	}
}

func TestParticipantHelloAndTrain(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 1
	cfg.BatchSize = 8
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var hello HelloReply
	if err := clientOf(s, 0).Call("Participant.Hello", &HelloRequest{}, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.NumSamples == 0 {
		t.Error("participant reports empty shard")
	}

	g := s.ctrl.SampleGates(s.rng)
	sub := s.net.SampledParams(g)
	req := &TrainRequest{
		Round: 0, Normal: g.Normal, Reduce: g.Reduce,
		Weights: flattenValues(sub), BatchSize: 8,
	}
	var reply TrainReply
	if err := clientOf(s, 0).Call("Participant.Train", req, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Grads) != len(sub) {
		t.Fatalf("reply has %d grad tensors, want %d", len(reply.Grads), len(sub))
	}
	for i, p := range sub {
		if len(reply.Grads[i]) != p.Value.Size() {
			t.Fatalf("grad %d has %d values, want %d", i, len(reply.Grads[i]), p.Value.Size())
		}
	}
	if reply.Reward < 0 || reply.Reward > 1 {
		t.Errorf("reward %v out of range", reply.Reward)
	}
}

func TestTrainRejectsBadRequest(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.ctrl.SampleGates(s.rng)
	var reply TrainReply
	// zero batch
	err = clientOf(s, 0).Call("Participant.Train", &TrainRequest{
		Round: 0, Normal: g.Normal, Reduce: g.Reduce, BatchSize: 0,
	}, &reply)
	if err == nil {
		t.Error("expected error for zero batch")
	}
	// wrong weight shapes
	err = clientOf(s, 0).Call("Participant.Train", &TrainRequest{
		Round: 0, Normal: g.Normal, Reduce: g.Reduce, BatchSize: 4,
		Weights: [][]float64{{1, 2, 3}},
	}, &reply)
	if err == nil {
		t.Error("expected error for bad weights")
	}
}

func TestRPCSearchEndToEnd(t *testing.T) {
	addrs, _, stop := startCluster(t, 4, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 20
	cfg.BatchSize = 8
	cfg.Quorum = 1 // hard sync: everyone fresh
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() != cfg.Rounds {
		t.Fatalf("curve has %d points", res.Curve.Len())
	}
	if res.FreshReplies != cfg.Rounds*4 {
		t.Errorf("fresh replies %d, want %d", res.FreshReplies, cfg.Rounds*4)
	}
	if res.LateReplies != 0 {
		t.Errorf("late replies %d under hard sync", res.LateReplies)
	}
	// The search must actually train.
	if res.Curve.TailMean(5) <= 0.25 {
		t.Errorf("tail accuracy %.3f no better than chance", res.Curve.TailMean(5))
	}
}

func TestRPCSoftSyncHandlesStraggler(t *testing.T) {
	// Every participant sleeps 5 ms per call (pinning the round duration);
	// participant 3 sleeps 25 ms, a handful of rounds. With a quorum of
	// 3/4 the server closes rounds without it, and its replies arrive a
	// few rounds late — exercised through the genuine async path.
	addrs, _, stop := startCluster(t, 4, map[int]time.Duration{
		0: 5 * time.Millisecond,
		1: 5 * time.Millisecond,
		2: 5 * time.Millisecond,
		3: 25 * time.Millisecond,
	})
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 30
	cfg.BatchSize = 8
	cfg.Quorum = 0.75
	cfg.Strategy = staleness.DC
	cfg.StalenessThreshold = 8
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FreshReplies == 0 {
		t.Fatal("no fresh replies")
	}
	if res.LateReplies == 0 {
		t.Error("straggler never produced a late (delay-compensated) reply")
	}
	if res.Curve.Len() != cfg.Rounds {
		t.Errorf("curve has %d points", res.Curve.Len())
	}
}

func TestRPCThrowDiscardsLateReplies(t *testing.T) {
	addrs, _, stop := startCluster(t, 3, map[int]time.Duration{
		0: 5 * time.Millisecond,
		1: 5 * time.Millisecond,
		2: 25 * time.Millisecond,
	})
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 25
	cfg.BatchSize = 8
	cfg.Quorum = 0.67
	cfg.Strategy = staleness.Throw
	cfg.StalenessThreshold = 8
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LateReplies != 0 {
		t.Errorf("throw strategy accepted %d late replies", res.LateReplies)
	}
	if res.DroppedReplies == 0 {
		t.Error("throw strategy never dropped anything despite a straggler")
	}
}

// TestRoundTimeoutClosesRoundWithDeadParticipant is the RoundTimeout +
// lifecycle regression test: one "participant" accepts TCP connections but
// closes them immediately (a dead client whose calls fail). With quorum
// 1.0 the first rounds wait out the deadline while the lifecycle machine
// walks the peer Alive → Suspect → Dead; once it is Dead the dynamic
// quorum recomputes over the single live participant and every remaining
// round closes on its fresh reply alone — the run must NOT pay the old
// Rounds × RoundTimeout price.
func TestRoundTimeoutClosesRoundWithDeadParticipant(t *testing.T) {
	addrs, _, stop := startCluster(t, 1, nil)
	defer stop()
	// Dead participant: accepts and instantly closes every connection.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	go func() {
		for {
			conn, err := dead.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 6
	cfg.BatchSize = 8
	cfg.Quorum = 1.0 // both replies required until the dead peer is demoted
	cfg.RoundTimeout = 300 * time.Millisecond
	s, err := NewServer(cfg, append(addrs, dead.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type outcome struct {
		res ServerResult
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := s.Run()
		done <- outcome{res, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server hung: rounds did not close at RoundTimeout")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	elapsed := time.Since(start)
	// Exactly the first two rounds wait out the deadline (the failure
	// demoting the peer to Suspect, then to Dead); afterwards the quorum
	// shrinks to the live participant and rounds close on its reply.
	const demotionRounds = deadAfterFailures
	if min := demotionRounds * cfg.RoundTimeout; elapsed < min {
		t.Errorf("run finished in %v, before the %v of demotion timeouts", elapsed, min)
	}
	if got := s.met.Timeouts.Value(); got != demotionRounds {
		t.Errorf("round_timeouts_total = %d, want %d", got, demotionRounds)
	}
	if out.res.Curve.Len() != cfg.Rounds {
		t.Errorf("curve has %d points, want %d", out.res.Curve.Len(), cfg.Rounds)
	}
	// The live participant still contributes fresh replies every round.
	if out.res.FreshReplies != cfg.Rounds {
		t.Errorf("fresh replies %d, want %d", out.res.FreshReplies, cfg.Rounds)
	}
	// The dead peer ends the run Dead, with its failed calls accounted as
	// drops in both the result façade and the registry counter.
	if got := s.peers[1].State(); got != StateDead {
		t.Errorf("dead participant ended in state %v, want %v", got, StateDead)
	}
	if out.res.DroppedReplies != demotionRounds {
		t.Errorf("dropped replies %d, want %d", out.res.DroppedReplies, demotionRounds)
	}
	if got := s.met.RepliesDropped.Value(); got != int64(out.res.DroppedReplies) {
		t.Errorf("replies_dropped_total = %d, want %d", got, out.res.DroppedReplies)
	}
	if got := s.met.RepliesFresh.Value(); got != int64(out.res.FreshReplies) {
		t.Errorf("replies_fresh_total = %d, want %d", got, out.res.FreshReplies)
	}
	if got := s.met.Rounds.Value(); got != int64(cfg.Rounds) {
		t.Errorf("rounds_total = %d, want %d", got, cfg.Rounds)
	}
}

func TestFedAvgOverRPC(t *testing.T) {
	addrs, _, stop := startCluster(t, 3, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	geno := nas.Genotype{
		Normal: []nas.OpKind{nas.OpSepConv3, nas.OpMaxPool3},
		Reduce: []nas.OpKind{nas.OpAvgPool3, nas.OpSepConv3},
		Nodes:  1,
	}
	model, err := nas.NewFixedModel(rand.New(rand.NewSource(9)), testNet(), geno)
	if err != nil {
		t.Fatal(err)
	}
	before := nn.CloneParamValues(model.Params())
	fcfg := fed.DefaultFedAvgConfig()
	fcfg.Rounds = 1 // rounds arg governs the loop below
	fcfg.BatchSize = 8
	curve, err := FedAvgOverRPC(s.Clients(), model, geno, fcfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if curve.Len() != 6 {
		t.Fatalf("curve has %d points", curve.Len())
	}
	moved := false
	for i, p := range model.Params() {
		if !p.Value.AllClose(before[i], 1e-12) {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("FedAvg over RPC never moved the weights")
	}
	if _, err := FedAvgOverRPC(nil, model, geno, fcfg, 2); err == nil {
		t.Error("expected error for no clients")
	}
	bad := fcfg
	bad.BatchSize = 0
	if _, err := FedAvgOverRPC(s.Clients(), model, geno, bad, 2); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestServeShutsDownOnListenerClose(t *testing.T) {
	ds := testDataset(t)
	svc, err := NewParticipantService(0, ds, []int{0, 1, 2, 3}, testNet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ln, done, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		// accept loop exited cleanly
	case <-time.After(2 * time.Second):
		t.Fatal("accept loop did not exit after listener close")
	}
}
