package rpcfed

import (
	"reflect"
	"testing"
	"time"
)

// shardedSearchHash runs a short search over a fresh cluster and returns
// the bit-exact final θ hash for the given shard count / cohort size /
// dial policy.
func shardedSearchHash(t *testing.T, k, shards, cohortSize int, lazy bool) uint64 {
	t.Helper()
	addrs, _, stop := startCluster(t, k, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 4
	cfg.Quorum = 1.0
	cfg.Seed = 29
	cfg.Shards = shards
	cfg.CohortSize = cohortSize
	cfg.Transport.LazyDial = lazy
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return thetaHashOf(s)
}

// TestServerShardBitIdentity pins the aggregation tree's contract on the
// RPC server: because sharding splits the θ merge by destination parameter
// index, every shard count must land on the exact same final parameters as
// the default single root merge.
func TestServerShardBitIdentity(t *testing.T) {
	ref := shardedSearchHash(t, 5, 0, 0, false)
	for _, shards := range []int{1, 2, 4, 8} {
		if got := shardedSearchHash(t, 5, shards, 0, false); got != ref {
			t.Errorf("shards=%d: θ hash %#x != single-root %#x", shards, got, ref)
		}
	}
}

// TestServerCohortShardDeterminism runs cohort-sampled rounds (with lazy
// dialing on) across shard counts and repeated runs: all must agree bit
// for bit.
func TestServerCohortShardDeterminism(t *testing.T) {
	ref := shardedSearchHash(t, 5, 1, 2, true)
	if again := shardedSearchHash(t, 5, 1, 2, true); again != ref {
		t.Errorf("same-seed cohort runs diverge: %#x vs %#x", again, ref)
	}
	if sharded := shardedSearchHash(t, 5, 4, 2, true); sharded != ref {
		t.Errorf("shards=4 cohort run diverges: %#x vs %#x", sharded, ref)
	}
	if eager := shardedSearchHash(t, 5, 1, 2, false); eager != ref {
		t.Errorf("eager-dial cohort run diverges: %#x vs %#x", eager, ref)
	}
}

// TestServerCohortLazyConnectionsBounded is the registry memory model:
// with lazy dialing, only participants actually sampled into a cohort ever
// hold a connection, so a short run touches a bounded subset of a larger
// enrollment.
func TestServerCohortLazyConnectionsBounded(t *testing.T) {
	addrs, _, stop := startCluster(t, 8, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 3
	cfg.Quorum = 1.0
	cfg.Seed = 37
	cfg.CohortSize = 2
	cfg.Transport.LazyDial = true
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Registry().Connected(); got != 0 {
		t.Fatalf("connected %d before any round, want 0 under lazy dial", got)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := s.Registry().Connected()
	if got == 0 || got > cfg.Rounds*cfg.CohortSize {
		t.Fatalf("connected %d participants, want in (0, %d]", got, cfg.Rounds*cfg.CohortSize)
	}
	if got >= len(addrs) {
		t.Fatalf("connected to the whole enrollment (%d of %d): lazy dial broken", got, len(addrs))
	}
	sum := s.ParticipantsSummary()
	if sum.Enrolled != 8 || sum.CohortSize != 2 || len(sum.Cohort) != 2 {
		t.Fatalf("summary = %+v, want 8 enrolled, cohort of 2", sum)
	}
}

// TestServerCohortScheduleFaultIndependent compares the cohort schedule of
// a server that ran rounds against a slow participant with that of a twin
// that never ran at all: the schedule is a pure function of the seed, so
// faults and round progress must not perturb it.
func TestServerCohortScheduleFaultIndependent(t *testing.T) {
	slow := map[int]time.Duration{1: 80 * time.Millisecond}
	addrs, _, stop := startCluster(t, 5, slow)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 5
	cfg.Quorum = 0.5
	cfg.Seed = 41
	cfg.CohortSize = 3
	cfg.RoundTimeout = 2 * time.Second
	ran, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ran.Close()
	if _, err := ran.Run(); err != nil {
		t.Fatal(err)
	}

	idleAddrs, _, idleStop := startCluster(t, 5, nil)
	defer idleStop()
	idle, err := NewServer(cfg, idleAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	for r := 0; r < cfg.Rounds; r++ {
		if !reflect.DeepEqual(ran.CohortFor(r), idle.CohortFor(r)) {
			t.Fatalf("round %d: cohort schedule perturbed by run/faults: %v vs %v",
				r, ran.CohortFor(r), idle.CohortFor(r))
		}
	}
}

// TestServerLazyDialSurvivesBadAddress: with lazy dialing, an unreachable
// enrollment entry must not block server construction; the first dispatches
// to it fail like any transport failure, the lifecycle machinery declares
// it dead, and the quorum carries the run over the healthy majority.
func TestServerLazyDialSurvivesBadAddress(t *testing.T) {
	addrs, _, stop := startCluster(t, 3, nil)
	defer stop()
	// Reserve a port and close it so dials are refused deterministically.
	bogus := append(append([]string(nil), addrs...), "127.0.0.1:1")

	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 4
	cfg.Quorum = 0.5
	cfg.Seed = 43
	cfg.RoundTimeout = 5 * time.Second
	cfg.Transport.DialAttempts = 1
	cfg.Transport.DialBackoff = 5 * time.Millisecond

	// Eager construction must fail on the unreachable address…
	if eager, err := NewServer(cfg, bogus); err == nil {
		eager.Close()
		t.Fatal("eager NewServer accepted an unreachable participant")
	}

	// …while lazy construction enrolls it as a stub and runs anyway.
	cfg.Transport.LazyDial = true
	s, err := NewServer(cfg, bogus)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsCompleted != cfg.Rounds {
		t.Fatalf("completed %d rounds, want %d", res.RoundsCompleted, cfg.Rounds)
	}
	if res.FreshReplies == 0 {
		t.Fatal("no fresh replies despite a healthy majority")
	}
	if state := s.peers[3].State(); state != StateDead {
		t.Fatalf("unreachable peer state %v, want dead", state)
	}
	if _, _, dead := s.Registry().StateCounts(); dead != 1 {
		t.Fatalf("dead count %d, want 1", dead)
	}
}
