package rpcfed

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"fedrlnas/internal/chaos"
	"fedrlnas/internal/data"
	"fedrlnas/internal/telemetry"
)

// TestNoFaultBitIdentityPinned is the fault-tolerance layer's determinism
// pin: a fault-free run must land on the exact final θ the pre-lifecycle
// server produced. The constant below was captured on main immediately
// before the lifecycle/dynamic-quorum refactor with this precise
// configuration; if this test fails, the refactor changed the numerics of
// healthy runs, which it must never do.
func TestNoFaultBitIdentityPinned(t *testing.T) {
	const pinned = uint64(0x87728da48c6b8b24)
	addrs, _, stop := startCluster(t, 3, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 6
	cfg.BatchSize = 8
	cfg.Quorum = 1
	cfg.Transport.Workers = 2
	cfg.Seed = 7
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := thetaHashOf(s); got != pinned {
		t.Errorf("no-fault θ hash %#x != pinned pre-lifecycle hash %#x", got, pinned)
	}
}

// TestRunContextCancelReturnsPartialResult covers the cancellable server
// API: cancelling mid-run stops the loop promptly and still hands back the
// rounds completed so far plus a derived genotype.
func TestRunContextCancelReturnsPartialResult(t *testing.T) {
	addrs, _, stop := startCluster(t, 2, map[int]time.Duration{
		0: 5 * time.Millisecond,
		1: 5 * time.Millisecond,
	})
	defer stop()
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 1000 // far more than can complete before the cancel below
	cfg.BatchSize = 4
	cfg.Quorum = 1
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	s.SetTelemetry(nil, reg)

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res ServerResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.RunContext(ctx)
		done <- outcome{res, err}
	}()
	waitCounter(t, "rounds", s.met.Rounds, 3)
	cancel()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	if out.err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	if out.res.RoundsCompleted < 3 || out.res.RoundsCompleted >= cfg.Rounds {
		t.Errorf("RoundsCompleted = %d, want a partial count >= 3", out.res.RoundsCompleted)
	}
	if out.res.Curve.Len() != out.res.RoundsCompleted {
		t.Errorf("curve has %d points, want %d", out.res.Curve.Len(), out.res.RoundsCompleted)
	}
	if err := out.res.Genotype.Validate(); err != nil {
		t.Errorf("partial result genotype invalid: %v", err)
	}
}

// waitCounter polls a telemetry counter until it reaches at least want.
func waitCounter(t *testing.T, name string, c *telemetry.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s counter stuck at %d, want >= %d", name, c.Value(), want)
}

// waitState polls a peer until it reaches the wanted lifecycle state.
func waitState(t *testing.T, p *peer, want ParticipantState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if p.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("participant %d stuck in state %v, want %v", p.id, p.State(), want)
}

// TestLifecycleKillAndRecover is the tentpole's end-to-end soak in
// miniature: one participant sits behind a chaos injector and is killed
// mid-run, the server must demote it (Suspect → Dead), keep closing rounds
// over the shrunken live set, re-absorb it after the injector brings it
// back (redials_total > 0), and still finish every configured round.
func TestLifecycleKillAndRecover(t *testing.T) {
	ds := testDataset(t)
	k := 3
	part, err := data.IIDPartition(ds.NumTrain(), k, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	inj, err := chaos.New(chaos.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		svc, err := NewParticipantService(i, ds, part.Indices[i], testNet(), int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		svc.SetDelay(3 * time.Millisecond)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			ln = inj.Listener(ln) // the victim
		}
		if _, err := svc.ServeListener(ln); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		closers = append(closers, func() { _ = ln.Close() })
	}

	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 200
	cfg.BatchSize = 4
	cfg.Quorum = 1
	cfg.RoundTimeout = 250 * time.Millisecond
	cfg.Transport.CallTimeout = 150 * time.Millisecond
	cfg.Transport.DialBackoff = 5 * time.Millisecond
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	s.SetTelemetry(nil, reg)
	inj.Observe(reg)

	type outcome struct {
		res ServerResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.Run()
		done <- outcome{res, err}
	}()

	// Let the healthy cluster make progress, then kill the victim.
	waitCounter(t, "rounds", s.met.Rounds, 5)
	inj.SetDown(true)
	// The server must notice (two failed calls) and demote it to Dead.
	waitState(t, s.peers[2], StateDead)
	if got := s.ParticipantStates()[2].State; got != "dead" {
		t.Errorf("ParticipantStates reports %q, want dead", got)
	}
	// Below-quorum rounds must keep closing while the peer is gone.
	atDeath := s.met.Rounds.Value()
	waitCounter(t, "rounds", s.met.Rounds, atDeath+3)
	// Resurrect: the background redial loop must re-absorb the peer.
	inj.SetDown(false)
	waitCounter(t, "redials", s.lcMet.Redials, 1)
	waitState(t, s.peers[2], StateAlive)

	var out outcome
	select {
	case out = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("server hung under chaos")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Curve.Len() != cfg.Rounds {
		t.Errorf("curve has %d points, want %d (server must finish all rounds)",
			out.res.Curve.Len(), cfg.Rounds)
	}
	if got := s.lcMet.Redials.Value(); got < 1 {
		t.Errorf("redials_total = %d, want >= 1", got)
	}
	if got := s.lcMet.RedialAttempts.Value(); got < s.lcMet.Redials.Value() {
		t.Errorf("redial_attempts_total = %d < redials_total = %d",
			got, s.lcMet.Redials.Value())
	}
	if got := s.met.Timeouts.Value(); got < 1 {
		t.Errorf("round_timeouts_total = %d, want >= 1 (demotion rounds)", got)
	}
	if got := inj.Metrics().Kills.Value(); got < 1 {
		t.Errorf("chaos_kills_total = %d, want >= 1", got)
	}
	// The victim's outage is visible in the lifecycle gauge history: it
	// must have ended the run back at alive (0).
	if got := s.lcMet.States[2].Value(); got != float64(StateAlive) {
		t.Errorf("participant_state_2 gauge = %v, want %v", got, float64(StateAlive))
	}
}
