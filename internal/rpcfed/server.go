package rpcfed

import (
	"context"
	"fmt"
	"math/rand"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedrlnas/internal/cohort"
	"fedrlnas/internal/controller"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/wire"
)

// TransportConfig groups the RPC plumbing knobs: payload encoding, dispatch
// parallelism, and connection management (startup dialing, mid-run
// redialing, per-call deadlines).
type TransportConfig struct {
	// Wire selects the tensor payload encoding (wire.FP64 default:
	// binary framing, bit-identical results; wire.Gob is the reflection
	// baseline; FP32/Sparse trade bytes for precision/scan time).
	Wire wire.Mode

	// Workers caps how many participants' sub-model payloads are
	// serialized concurrently at dispatch time (the server-side hot path);
	// 0 selects runtime.NumCPU(). Dispatch order and results are
	// unaffected by the worker count.
	Workers int

	// DialAttempts bounds connection retries per participant at startup
	// (a participant racing the server to its listener is normal); 0
	// means the default. DialBackoff is the initial retry delay, doubled
	// per attempt and capped at 2s. Mid-run re-dials of dead participants
	// reuse DialBackoff with the same doubling and cap, but retry forever.
	DialAttempts int
	DialBackoff  time.Duration

	// CallTimeout bounds each individual RPC, distinct from RoundTimeout
	// which bounds a whole collect phase: a hung connection surfaces as a
	// per-call deadline (feeding the lifecycle state machine) instead of
	// silently eating the round budget. 0 disables per-call deadlines.
	CallTimeout time.Duration

	// LazyDial defers participant connections to first dispatch: NewServer
	// enrolls every address as an undialed registry stub and the call path
	// dials on demand. Combined with cohort sampling this keeps a
	// 10,000-strong enrollment from opening 10,000 sockets up front — only
	// participants that are actually sampled ever hold a connection. A
	// failed lazy dial feeds the lifecycle state machine exactly like a
	// failed call.
	LazyDial bool

	// TopKRatio is the fraction of weight-delta coordinates shipped per
	// tensor on the downlink under wire.TopK (see topk.go for the
	// error-feedback scheme); 0 selects the default (0.1). TopKGradRatio is
	// the uplink fraction for gradients, which tolerate much sharper
	// sparsification under error feedback; 0 selects the default (0.025).
	// Both ignored by every other wire mode.
	TopKRatio     float64
	TopKGradRatio float64
}

// DefaultTransportConfig returns the transport defaults.
func DefaultTransportConfig() TransportConfig {
	return TransportConfig{
		Wire:         wire.FP64,
		DialAttempts: 5,
		DialBackoff:  50 * time.Millisecond,
		CallTimeout:  10 * time.Second,
	}
}

// Validate checks the transport knobs.
func (c TransportConfig) Validate() error {
	switch {
	case c.Workers < 0:
		return fmt.Errorf("rpcfed: Workers %d must be >= 0", c.Workers)
	case !c.Wire.Valid():
		return fmt.Errorf("rpcfed: invalid wire mode %d", c.Wire)
	case c.DialAttempts < 0:
		return fmt.Errorf("rpcfed: DialAttempts %d must be >= 0", c.DialAttempts)
	case c.DialBackoff < 0:
		return fmt.Errorf("rpcfed: DialBackoff must be >= 0")
	case c.CallTimeout < 0:
		return fmt.Errorf("rpcfed: CallTimeout must be >= 0")
	case c.TopKRatio < 0 || c.TopKRatio > 1:
		return fmt.Errorf("rpcfed: TopKRatio %v must be in [0, 1]", c.TopKRatio)
	case c.TopKGradRatio < 0 || c.TopKGradRatio > 1:
		return fmt.Errorf("rpcfed: TopKGradRatio %v must be in [0, 1]", c.TopKGradRatio)
	}
	return nil
}

// ServerConfig configures the RPC search server.
type ServerConfig struct {
	Net   nas.Config
	Alpha controller.Config

	Rounds    int
	BatchSize int

	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	// SyncConfig carries the soft-synchronization knobs (Quorum,
	// StalenessThreshold, Lambda, Strategy) shared with the in-process
	// engine; the fields are promoted, so cfg.Quorum etc. read as before.
	staleness.SyncConfig

	// RoundTimeout bounds the wall-clock wait per round even below
	// quorum (protection against dead participants).
	RoundTimeout time.Duration

	// Transport holds the RPC plumbing knobs (wire mode, dispatch workers,
	// dial/redial policy, per-call deadline).
	Transport TransportConfig

	Seed int64
}

// DefaultServerConfig returns sensible RPC-deployment defaults.
func DefaultServerConfig(net nas.Config) ServerConfig {
	alpha := controller.DefaultConfig()
	alpha.LR = 0.3
	return ServerConfig{
		Net: net, Alpha: alpha,
		Rounds: 30, BatchSize: 16,
		ThetaLR: 0.2, ThetaMomentum: 0.9, ThetaWD: 3e-4, ThetaClip: 5,
		SyncConfig: staleness.SyncConfig{
			Quorum: 0.8, StalenessThreshold: 2, Lambda: 1, Strategy: staleness.DC,
		},
		RoundTimeout: 30 * time.Second,
		Transport:    DefaultTransportConfig(),
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("rpcfed: Rounds %d must be positive", c.Rounds)
	case c.BatchSize <= 0:
		return fmt.Errorf("rpcfed: BatchSize %d must be positive", c.BatchSize)
	case c.RoundTimeout <= 0:
		return fmt.Errorf("rpcfed: RoundTimeout must be positive")
	}
	if err := c.SyncConfig.Validate(); err != nil {
		return fmt.Errorf("rpcfed: %w", err)
	}
	return c.Transport.Validate()
}

// ServerResult summarizes an RPC search run.
type ServerResult struct {
	Genotype nas.Genotype
	// Curve is the mean fresh-reply training accuracy per round.
	Curve metrics.Curve
	// FreshReplies / LateReplies / DroppedReplies count reply handling.
	FreshReplies, LateReplies, DroppedReplies int
	// RoundsCompleted counts rounds that ran to completion; it is short of
	// the configured Rounds when RunContext was cancelled mid-run.
	RoundsCompleted int
	// RoundSeconds is the measured wall-clock per round.
	RoundSeconds []float64
}

// Server drives Alg. 1 over RPC participants.
type Server struct {
	cfg  ServerConfig
	net  *nas.Supernet
	ctrl *controller.Controller
	opt  *nn.SGD
	rng  *rand.Rand

	// reg owns the participant roster; peers aliases its slice so the
	// lifecycle machinery keeps indexing by participant id directly.
	reg   *Registry
	peers []*peer

	// sampler draws the per-round cohort (everyone when CohortSize is 0);
	// allIDs caches the identity cohort in that full mode. cohortPool
	// retains recent cohorts alongside the gates so a late reply's gates
	// can be recovered by the straggler's position in its dispatch round.
	sampler    *cohort.Sampler
	allIDs     []int
	cohortPool *staleness.Pool[[]int]

	paramIndex map[*nn.Param]int
	thetaPool  *staleness.Pool[[]*tensor.Tensor]
	alphaPool  *staleness.Pool[controller.AlphaSnapshot]
	gatesPool  *staleness.Pool[[]nas.Gates]

	replies  chan *TrainReply
	inFlight map[int]bool // participants with an outstanding call

	// downlink holds per-participant top-k weight mirrors (wire.TopK only;
	// nil otherwise), indexed by participant id. topkRatio is the effective
	// downlink (weight-delta) selection fraction, topkGradRatio the uplink
	// (gradient) fraction requested from participants.
	downlink      []*peerMirror
	topkRatio     float64
	topkGradRatio float64

	// pool parallelizes per-participant payload serialization at dispatch.
	pool *parallel.Pool

	// done closes on the first Close and stops the redial loops.
	done      chan struct{}
	closeOnce sync.Once

	// curRound is the round the loop is currently driving, read by
	// lifecycle goroutines when they stamp trace events.
	curRound atomic.Int64

	// tracer receives per-round span events (nil = disabled); met holds
	// the registry-backed runtime counters and lcMet the participant
	// lifecycle counters/gauges. wireMet is shared by pointer with the
	// connection codecs, so SetTelemetry can swap the counters they feed
	// after dialing.
	tracer  *telemetry.Tracer
	met     telemetry.RoundMetrics
	lcMet   telemetry.LifecycleMetrics
	wireMet *telemetry.WireMetrics
}

// NewServer dials the participant addresses and prepares the search state.
func NewServer(cfg ServerConfig, addrs []string) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpcfed: no participant addresses")
	}
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+2)), cfg.Net)
	if err != nil {
		return nil, err
	}
	nE, rE := net.ArchSpace()
	ctrl, err := controller.New(nE, rE, net.NumCandidates(), cfg.Alpha)
	if err != nil {
		return nil, err
	}
	sampler, err := cohort.New(cfg.Seed+303, len(addrs), cfg.CohortSize)
	if err != nil {
		return nil, fmt.Errorf("rpcfed: %w", err)
	}
	s := &Server{
		cfg:  cfg,
		net:  net,
		ctrl: ctrl,
		opt:  nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip),
		rng:  rand.New(rand.NewSource(cfg.Seed)),

		reg:     newRegistry(addrs),
		sampler: sampler,

		cohortPool: staleness.NewPool[[]int](cfg.StalenessThreshold),
		thetaPool:  staleness.NewPool[[]*tensor.Tensor](cfg.StalenessThreshold),
		alphaPool:  staleness.NewPool[controller.AlphaSnapshot](cfg.StalenessThreshold),
		gatesPool:  staleness.NewPool[[]nas.Gates](cfg.StalenessThreshold),

		replies:  make(chan *TrainReply, 4*len(addrs)),
		inFlight: make(map[int]bool, len(addrs)),
		pool:     parallel.New(cfg.Transport.Workers),
		done:     make(chan struct{}),
	}
	s.peers = s.reg.peers
	if sampler.Full() {
		s.allIDs = sampler.Cohort(0)
	}
	s.paramIndex = make(map[*nn.Param]int)
	for i, p := range net.Params() {
		s.paramIndex[p] = i
	}
	if cfg.Transport.Wire == wire.TopK {
		s.topkRatio = cfg.Transport.TopKRatio
		if s.topkRatio == 0 {
			s.topkRatio = defaultTopKRatio
		}
		s.topkGradRatio = cfg.Transport.TopKGradRatio
		if s.topkGradRatio == 0 {
			s.topkGradRatio = defaultTopKGradRatio
		}
		s.downlink = make([]*peerMirror, len(addrs))
		for i := range s.downlink {
			s.downlink[i] = &peerMirror{params: make(map[int][]float64)}
		}
	}
	s.met = telemetry.NewDisabledRoundMetrics()
	s.lcMet = telemetry.NewDisabledLifecycleMetrics(len(addrs))
	wm := telemetry.NewDisabledWireMetrics()
	s.wireMet = &wm
	if !cfg.Transport.LazyDial {
		for _, p := range s.peers {
			client, err := dialParticipant(p.addr, cfg.Transport.Wire, s.wireMet,
				cfg.Transport.DialAttempts, cfg.Transport.DialBackoff)
			if err != nil {
				s.Close()
				return nil, err
			}
			p.mu.Lock()
			p.client = client
			p.mu.Unlock()
		}
	}
	s.net.SetTraining(true)
	return s, nil
}

// Close tears down the participant connections and stops the background
// redial loops. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	for _, p := range s.peers {
		p.mu.Lock()
		c := p.client
		p.client = nil
		p.mu.Unlock()
		if c != nil {
			_ = c.Close()
		}
	}
}

// Supernet exposes the server-side supernet (e.g. to warm-start θ).
func (s *Server) Supernet() *nas.Supernet { return s.net }

// CohortFor reports the cohort the sampler draws for a round — a pure
// function of the configured seed, usable before, during, or after a run.
func (s *Server) CohortFor(round int) []int { return s.sampler.Cohort(round) }

// Clients snapshots the live RPC client handles in participant order (nil
// entries for dead peers). FedAvgOverRPC consumes it for the post-search
// FL phase.
func (s *Server) Clients() []*rpc.Client {
	out := make([]*rpc.Client, len(s.peers))
	for i, p := range s.peers {
		p.mu.Lock()
		out[i] = p.client
		p.mu.Unlock()
	}
	return out
}

// SetTelemetry attaches a span tracer and a metric registry to the server.
// Both may be nil: a nil tracer disables tracing, a nil registry keeps the
// private one created by NewServer. Call it before Run.
func (s *Server) SetTelemetry(tracer *telemetry.Tracer, reg *telemetry.Registry) {
	s.tracer = tracer
	// A traced server always has a trace ID, so every round opens a span
	// and dispatched requests carry wire context to the workers.
	s.tracer.EnsureTraceID()
	if reg != nil {
		s.met = telemetry.NewRoundMetrics(reg)
		s.lcMet = telemetry.NewLifecycleMetrics(reg, len(s.peers))
		*s.wireMet = telemetry.NewWireMetrics(reg)
		s.pool.Observe(reg)
	}
}

// Run executes cfg.Rounds rounds of Alg. 1 over the RPC participants and
// derives the final genotype.
func (s *Server) Run() (ServerResult, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the round loop stops at the next select point and returns the partial
// result so far — curve, reply counts, and the genotype derived from the
// current policy — together with ctx.Err(). A background context makes it
// behave exactly like Run.
func (s *Server) RunContext(ctx context.Context) (ServerResult, error) {
	res := ServerResult{}
	params := s.net.Params()

	for t := 0; t < s.cfg.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return s.finishPartial(res), err
		}
		s.curRound.Store(int64(t))
		roundStart := time.Now()
		s.tracer.RoundStart(t)
		spanCtx := s.tracer.RoundContext(t)
		thetaNow := nn.CloneParamValues(params)
		s.thetaPool.Put(t, thetaNow)
		alphaNow := s.ctrl.Snapshot()
		s.alphaPool.Put(t, alphaNow)

		// The round's cohort is a pure function of (seed, round) —
		// independent of liveness, reply timing, and every other fault — so
		// the sampling schedule replays bit-identically under chaos. The
		// pool retains recent cohorts so a straggler's gates can be looked
		// up by its position in the round it was dispatched.
		members := s.allIDs
		if !s.sampler.Full() {
			members = s.sampler.Cohort(t)
		}
		s.cohortPool.Put(t, members)

		// Gates are sampled per cohort position in ascending participant
		// order — dead members included — so the controller RNG stream
		// never depends on liveness and a no-fault run replays
		// bit-identically. With sampling off the cohort is the identity,
		// reproducing the legacy all-participants stream.
		gates := make([]nas.Gates, len(members))
		for j := range members {
			gates[j] = s.ctrl.SampleGates(s.rng)
		}
		s.gatesPool.Put(t, gates)

		// The quorum is dynamic: the configured fraction applies to the
		// cohort members currently believed live, so the round loop keeps
		// making progress as peers die (and tightens again as redials bring
		// them back). With every peer alive this reduces to the static
		// ceil-ish quorum the engine always used.
		live := s.liveCountIn(members)
		quorum := int(float64(live)*s.cfg.Quorum + 0.5)
		if quorum < 1 {
			quorum = 1
		}

		// Dispatch to every live cohort member that is not still busy with
		// an earlier round (genuine soft sync: stragglers skip rounds; dead
		// peers are skipped until their redial loop revives them).
		// Payload serialization — sampling and flattening each
		// participant's sub-model weights, the server-side hot path — fans
		// out across the worker pool; the supernet is read-only here (late
		// replies are only absorbed in the collect phase below), so tasks
		// share it safely. Dispatch itself stays in participant order.
		var todo []int // cohort positions
		for j, pid := range members {
			if s.inFlight[pid] {
				continue
			}
			if s.peers[pid].State() == StateDead {
				s.tracer.ReplyOffline(t, pid)
				continue
			}
			todo = append(todo, j)
		}
		reqs := make([]*TrainRequest, len(todo))
		reqBytes := make([]int64, len(todo))
		dispatchStart := time.Now()
		if err := s.pool.Run(len(todo), func(_, i int) error {
			j := todo[i]
			pid := members[j]
			sub := s.net.SampledParams(gates[j])
			span := spanCtx
			span.Participant = int32(pid)
			reqs[i] = &TrainRequest{
				Round:     t,
				Normal:    append([]int(nil), gates[j].Normal...),
				Reduce:    append([]int(nil), gates[j].Reduce...),
				BatchSize: s.cfg.BatchSize,
				Span:      span,
			}
			if s.cfg.Transport.Wire == wire.TopK {
				// Top-k transport: ship mirror deltas instead of dense
				// weights. Each worker touches only its own participant's
				// mirror, so the fan-out stays race-free.
				subIdx := make([]int, len(sub))
				for si, p := range sub {
					subIdx[si] = s.paramIndex[p]
				}
				reqs[i].ParamIDs = subIdx
				reqs[i].TopKRatio = s.topkGradRatio
				reqs[i].Packed = s.downlink[pid].encodeDownlink(sub, subIdx, s.topkRatio)
				reqBytes[i] = int64(len(reqs[i].Packed))
				return nil
			}
			reqs[i].Weights = flattenValues(sub)
			// Measured encoded payload size under the active wire mode
			// (for Gob, the FP64-equivalent analytic size), not the 4 B/
			// param fiction — this is what transmission ranking and the
			// submodel_bytes telemetry now report.
			reqBytes[i] = wire.GroupBytes(s.cfg.Transport.Wire, reqs[i].Weights)
			return nil
		}); err != nil {
			return res, err
		}
		dispatched := 0
		var dispatchBytes int64
		for i, j := range todo {
			pid := members[j]
			s.met.SubModelBytes.Observe(float64(reqBytes[i]))
			s.tracer.SubModelSample(t, pid, reqBytes[i])
			dispatchBytes += reqBytes[i]
			s.inFlight[pid] = true
			go s.call(s.peers[pid], reqs[i])
			dispatched++
		}
		s.tracer.RoundDispatch(t, dispatchBytes, time.Since(dispatchStart).Seconds())

		// Collect until quorum of THIS round's replies (late replies from
		// earlier rounds count toward the aggregate but not the quorum).
		aggTheta := make([]*tensor.Tensor, len(params))
		nE, rE := s.net.ArchSpace()
		aggAlpha := controller.NewAlphaGrad(nE, rE, s.net.NumCandidates())
		contributors, freshCount := 0, 0
		sumAcc, sumFreshAcc := 0.0, 0.0
		deadline := time.After(s.cfg.RoundTimeout)
		target := quorum
		if dispatched < target {
			target = dispatched
		}

		// Replies are only classified and buffered on arrival; the FP
		// accumulation happens after the round closes, sorted by (Round,
		// ParticipantID). Floating-point addition is not associative, so
		// merging in nondeterministic arrival order would make results
		// depend on network timing — sorted merging keeps a -wire fp64 run
		// bit-identical to the gob baseline (and to itself).
		var accepted []*TrainReply
		handle := func(reply *TrainReply) error {
			s.inFlight[reply.ParticipantID] = false
			delay := 0
			if reply.Round >= 0 && t > reply.Round {
				delay = t - reply.Round
			}
			fresh, ok, err := s.classify(reply, t)
			if err != nil {
				return err
			}
			if !ok {
				res.DroppedReplies++
				s.met.RepliesDropped.Inc()
				s.tracer.ReplyDropped(t, reply.ParticipantID, delay)
				return nil
			}
			accepted = append(accepted, reply)
			contributors++
			sumAcc += reply.Reward
			if fresh {
				freshCount++
				sumFreshAcc += reply.Reward
				res.FreshReplies++
				s.met.RepliesFresh.Inc()
				s.tracer.ReplyFresh(t, reply.ParticipantID)
			} else {
				res.LateReplies++
				s.met.RepliesLate.Inc()
				s.tracer.ReplyLate(t, reply.ParticipantID, delay)
			}
			return nil
		}

		// If every participant is still busy with earlier rounds (or dead),
		// block for one reply (or the timeout) so the server does not spin.
		if dispatched == 0 {
			select {
			case reply := <-s.replies:
				if err := handle(reply); err != nil {
					return res, err
				}
			case <-deadline:
			case <-ctx.Done():
				return s.finishPartial(res), ctx.Err()
			}
		}

	collect:
		for freshCount < target {
			select {
			case reply := <-s.replies:
				if err := handle(reply); err != nil {
					return res, err
				}
			case <-deadline:
				// Round closes below quorum: dead or straggling
				// participants kept it from filling up.
				s.met.Timeouts.Inc()
				s.tracer.RoundTimeout(t, time.Since(roundStart).Seconds())
				break collect
			case <-ctx.Done():
				return s.finishPartial(res), ctx.Err()
			}
		}
		// Drain any further replies already queued (late arrivals from
		// earlier rounds) without blocking the round.
	drain:
		for {
			select {
			case reply := <-s.replies:
				if err := handle(reply); err != nil {
					return res, err
				}
			default:
				break drain
			}
		}

		// Deterministic merge of this round's accepted replies: decode and
		// delay-compensate each in canonical (Round, ParticipantID) order,
		// then fold θ through the sharded tree and α sequentially.
		mergeStart := time.Now()
		sort.Slice(accepted, func(i, j int) bool {
			if accepted[i].Round != accepted[j].Round {
				return accepted[i].Round < accepted[j].Round
			}
			return accepted[i].ParticipantID < accepted[j].ParticipantID
		})
		preps := make([]replyPrep, 0, len(accepted))
		for _, reply := range accepted {
			pr, err := s.prepareReply(reply, t, thetaNow)
			if err != nil {
				return res, err
			}
			if pr.ok {
				preps = append(preps, pr)
			}
		}
		// The tree shards by destination parameter index, never by reply:
		// each aggTheta[idx] receives its additions in the same sorted-reply
		// order at every shard and worker count, so the merged θ is
		// bit-identical to the single-shard (and pre-sharding) sum.
		shards := s.cfg.Shards
		if shards < 1 {
			shards = 1
		}
		if err := s.pool.RunShards(len(params), shards, func(_ int, r parallel.Range) error {
			for _, pr := range preps {
				for i, idx := range pr.subIdx {
					if idx < r.Lo || idx >= r.Hi {
						continue
					}
					if aggTheta[idx] == nil {
						aggTheta[idx] = pr.grads[i]
					} else {
						aggTheta[idx].AddInPlace(pr.grads[i])
					}
				}
			}
			return nil
		}); err != nil {
			return res, err
		}
		for _, pr := range preps {
			s.absorbAlpha(pr, aggAlpha)
		}
		s.tracer.RoundMerge(t, contributors, time.Since(mergeStart).Seconds())

		updateStart := time.Now()
		if contributors > 0 {
			inv := 1.0 / float64(contributors)
			for i, p := range params {
				p.Grad.Zero()
				if aggTheta[i] != nil {
					p.Grad.AXPY(inv, aggTheta[i])
				}
			}
			s.opt.Step(params)
			aggAlpha.Scale(inv)
			s.ctrl.Apply(aggAlpha)
			s.ctrl.UpdateBaseline(sumAcc * inv)
			s.tracer.AlphaUpdate(t, s.ctrl.Entropy())
		}
		s.tracer.ControllerUpdate(t, time.Since(updateStart).Seconds())
		meanFreshAcc := 0.0
		if freshCount > 0 {
			meanFreshAcc = sumFreshAcc / float64(freshCount)
		}
		res.Curve.Add(t, meanFreshAcc)
		elapsed := time.Since(roundStart).Seconds()
		res.RoundSeconds = append(res.RoundSeconds, elapsed)
		res.RoundsCompleted++
		s.met.Rounds.Inc()
		s.met.RoundSeconds.Observe(elapsed)
		s.met.Accuracy.Set(meanFreshAcc)
		s.met.Entropy.Set(s.ctrl.Entropy())
		s.met.Baseline.Set(s.ctrl.Baseline())
		s.tracer.RoundEnd(t, elapsed, meanFreshAcc)
		s.thetaPool.Evict(t + 1)
		s.alphaPool.Evict(t + 1)
		s.gatesPool.Evict(t + 1)
		s.cohortPool.Evict(t + 1)
	}
	res.Genotype = s.ctrl.Derive(s.cfg.Net.Candidates, s.cfg.Net.Nodes)
	return res, nil
}

// finishPartial derives a genotype from the current policy so a cancelled
// run still yields a usable (if early) architecture.
func (s *Server) finishPartial(res ServerResult) ServerResult {
	res.Genotype = s.ctrl.Derive(s.cfg.Net.Candidates, s.cfg.Net.Nodes)
	return res
}

// call issues the RPC under the per-call deadline, feeds the lifecycle
// state machine, and forwards the reply (or a drop marker on error) to the
// collection channel.
func (s *Server) call(p *peer, req *TrainRequest) {
	t0 := time.Now()
	reply := &TrainReply{}
	err := s.ensureClient(p)
	if err == nil {
		err = p.do("Participant.Train", req, reply, s.cfg.Transport.CallTimeout)
	}
	elapsed := time.Since(t0).Seconds()
	var replyBytes int64
	if err != nil {
		if isTransportFailure(err) {
			s.noteCallFailure(p, err)
		}
		if s.downlink != nil {
			// The participant may or may not have applied the delta we sent
			// (a timeout can fire after delivery), so its mirror state is
			// unknown: mark it for a dense resync. The dispatcher only reads
			// the flag after this goroutine's drop marker clears the
			// in-flight bit, so the write is ordered by the replies channel.
			s.downlink[p.id].valid = false
		}
		// Feed a drop marker so the dispatcher can clear the in-flight bit.
		// It must be a FRESH reply object: after a deadline expiry net/rpc
		// may still write into the abandoned one.
		reply = &TrainReply{Round: -1, ParticipantID: p.id}
	} else {
		s.noteCallSuccess(p)
		if len(reply.Packed) > 0 {
			replyBytes = int64(len(reply.Packed))
		} else {
			replyBytes = wire.GroupBytes(s.cfg.Transport.Wire, reply.Grads)
		}
	}
	s.lcMet.CallSeconds.Observe(elapsed)
	s.lcMet.ObserveRoundSeconds(p.id, elapsed)
	s.tracer.RPCCall(req.Span, req.Round, p.id, replyBytes, elapsed, err == nil)
	s.replies <- reply
}

// ensureClient dials the peer's connection on first use — the lazy-dial
// path; a no-op when a connection is already up. The caller owns the
// peer's dispatch slot (its in-flight bit), so at most one ensureClient
// runs per peer, and redial loops only touch dead peers, which are never
// dispatched.
func (s *Server) ensureClient(p *peer) error {
	p.mu.Lock()
	have := p.client != nil
	p.mu.Unlock()
	if have {
		return nil
	}
	select {
	case <-s.done:
		return errPeerDown
	default:
	}
	client, err := dialParticipant(p.addr, s.cfg.Transport.Wire, s.wireMet,
		s.cfg.Transport.DialAttempts, s.cfg.Transport.DialBackoff)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.client == nil {
		p.client = client
		client = nil
	}
	p.mu.Unlock()
	if client != nil {
		_ = client.Close() // lost a race with a redial; keep the winner
	}
	return nil
}

// classify applies Alg. 1's acceptance tests — transport failure,
// staleness threshold, Throw strategy, retention-pool coverage — without
// touching aggregation state, so replies can be counted on arrival yet
// merged later in deterministic order. It reports (fresh, accepted, err).
func (s *Server) classify(reply *TrainReply, t int) (bool, bool, error) {
	if reply.Round < 0 {
		return false, false, nil // transport failure: treat as dropped
	}
	delay := t - reply.Round
	if delay < 0 {
		return false, false, fmt.Errorf("rpcfed: reply from future round %d at %d", reply.Round, t)
	}
	if delay > s.cfg.StalenessThreshold {
		return false, false, nil
	}
	if delay > 0 && s.cfg.Strategy == staleness.Throw {
		return false, false, nil
	}
	if _, ok := s.gatesPool.Get(reply.Round); !ok {
		return false, false, nil
	}
	return delay == 0, true, nil
}

// replyPrep is one accepted reply decoded, located in its dispatch-round
// cohort, and delay-compensated: ready for the sharded θ pass and the α
// pass. ok=false marks a reply whose retained context (gates, cohort,
// stale θ) was already evicted — it contributes nothing.
type replyPrep struct {
	ok     bool
	round  int
	delay  int
	reward float64
	gk     nas.Gates
	subIdx []int
	grads  []*tensor.Tensor
}

// prepareReply recovers the reply's gates by the participant's position in
// its dispatch round's cohort, decodes the gradients, and applies θ delay
// compensation for late replies. Retention-pool misses skip the reply
// without error, matching the acceptance tests in classify.
func (s *Server) prepareReply(reply *TrainReply, t int, thetaNow []*tensor.Tensor) (replyPrep, error) {
	pr := replyPrep{round: reply.Round, delay: t - reply.Round, reward: reply.Reward}
	gatesAt, ok := s.gatesPool.Get(reply.Round)
	if !ok {
		return pr, nil
	}
	membersAt, ok := s.cohortPool.Get(reply.Round)
	if !ok {
		return pr, nil
	}
	// Only cohort members were dispatched at reply.Round, so a miss here
	// is a protocol violation by the participant; drop it.
	pos, ok := cohort.Position(membersAt, reply.ParticipantID)
	if !ok {
		return pr, nil
	}
	gk := gatesAt[pos]
	sub := s.net.SampledParams(gk)
	var grads []*tensor.Tensor
	if len(reply.Packed) > 0 {
		// Top-k transport: the payload carries tag-4 deltas of the k
		// largest gradient+residual coordinates per tensor; decoding against
		// zeros recovers them as a dense (mostly zero) gradient.
		var err error
		grads, err = decodePackedGrads(reply.Packed, sub)
		if err != nil {
			return pr, err
		}
	} else {
		sizes := make([]int, len(sub))
		for i, p := range sub {
			sizes[i] = p.Value.Size()
		}
		if err := checkWeightShapes(reply.Grads, sizes); err != nil {
			return pr, err
		}
		grads = make([]*tensor.Tensor, len(sub))
		for i, p := range sub {
			grads[i] = tensor.FromSlice(reply.Grads[i], p.Value.Shape()...)
		}
	}
	subIdx := make([]int, len(sub))
	for i, p := range sub {
		subIdx[i] = s.paramIndex[p]
	}

	if pr.delay > 0 && s.cfg.Strategy == staleness.DC {
		thetaAt, ok := s.thetaPool.Get(reply.Round)
		if !ok {
			return pr, nil
		}
		freshVals := make([]*tensor.Tensor, len(sub))
		staleVals := make([]*tensor.Tensor, len(sub))
		for i, idx := range subIdx {
			freshVals[i] = thetaNow[idx]
			staleVals[i] = thetaAt[idx]
		}
		var err error
		grads, err = staleness.CompensateTheta(grads, freshVals, staleVals, s.cfg.Lambda)
		if err != nil {
			return pr, err
		}
	}
	pr.ok, pr.gk, pr.subIdx, pr.grads = true, gk, subIdx, grads
	return pr, nil
}

// absorbAlpha folds one prepared reply's policy-gradient contribution into
// the α aggregate, with drift correction for late replies. An alpha-pool
// miss skips α while keeping the reply's already-merged θ contribution —
// the same asymmetry the pre-sharding absorb path had.
func (s *Server) absorbAlpha(pr replyPrep, aggAlpha controller.AlphaGrad) {
	alphaAt, ok := s.alphaPool.Get(pr.round)
	if !ok {
		return
	}
	logGrad := controller.LogProbGradAt(alphaAt, pr.gk)
	if pr.delay > 0 && s.cfg.Strategy == staleness.DC {
		drift := alphaAt.Diff(s.ctrl.Snapshot())
		corrected := logGrad.Clone()
		corrected.MulAdd3(s.cfg.Lambda, logGrad, drift)
		logGrad = corrected
	}
	aggAlpha.AXPY(s.ctrl.Reward(pr.reward), logGrad)
}

func flattenValues(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data()...)
	}
	return out
}
