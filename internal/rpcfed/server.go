package rpcfed

import (
	"fmt"
	"math/rand"
	"net/rpc"
	"sort"
	"time"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/wire"
)

// ServerConfig configures the RPC search server.
type ServerConfig struct {
	Net   nas.Config
	Alpha controller.Config

	Rounds    int
	BatchSize int

	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	// Quorum is the fraction of participants whose replies close a round
	// (the paper's "wait for most participants"); 1.0 is hard sync.
	Quorum float64
	// StalenessThreshold is Δ: replies older than this many rounds are
	// dropped (Alg. 1 line 23).
	StalenessThreshold int
	// Lambda is the delay-compensation strength; Strategy selects how
	// late replies are treated (DC, Use, or Throw).
	Lambda   float64
	Strategy staleness.Strategy

	// RoundTimeout bounds the wall-clock wait per round even below
	// quorum (protection against dead participants).
	RoundTimeout time.Duration

	// Workers caps how many participants' sub-model payloads are
	// serialized concurrently at dispatch time (the server-side hot path);
	// 0 selects runtime.NumCPU(). Dispatch order and results are
	// unaffected by the worker count.
	Workers int

	// Wire selects the tensor payload encoding (wire.FP64 default:
	// binary framing, bit-identical results; wire.Gob is the reflection
	// baseline; FP32/Sparse trade bytes for precision/scan time).
	Wire wire.Mode

	// DialAttempts bounds connection retries per participant at startup
	// (a participant racing the server to its listener is normal); 0
	// means the default. DialBackoff is the initial retry delay, doubled
	// per attempt and capped at 2s.
	DialAttempts int
	DialBackoff  time.Duration

	Seed int64
}

// DefaultServerConfig returns sensible RPC-deployment defaults.
func DefaultServerConfig(net nas.Config) ServerConfig {
	alpha := controller.DefaultConfig()
	alpha.LR = 0.3
	return ServerConfig{
		Net: net, Alpha: alpha,
		Rounds: 30, BatchSize: 16,
		ThetaLR: 0.2, ThetaMomentum: 0.9, ThetaWD: 3e-4, ThetaClip: 5,
		Quorum: 0.8, StalenessThreshold: 2, Lambda: 1, Strategy: staleness.DC,
		RoundTimeout: 30 * time.Second,
		Wire:         wire.FP64,
		DialAttempts: 5, DialBackoff: 50 * time.Millisecond,
		Seed: 1,
	}
}

// Validate checks the configuration.
func (c ServerConfig) Validate() error {
	switch {
	case c.Rounds <= 0:
		return fmt.Errorf("rpcfed: Rounds %d must be positive", c.Rounds)
	case c.BatchSize <= 0:
		return fmt.Errorf("rpcfed: BatchSize %d must be positive", c.BatchSize)
	case c.Quorum <= 0 || c.Quorum > 1:
		return fmt.Errorf("rpcfed: Quorum %v outside (0,1]", c.Quorum)
	case c.StalenessThreshold < 0:
		return fmt.Errorf("rpcfed: negative staleness threshold")
	case c.RoundTimeout <= 0:
		return fmt.Errorf("rpcfed: RoundTimeout must be positive")
	case c.Workers < 0:
		return fmt.Errorf("rpcfed: Workers %d must be >= 0", c.Workers)
	case !c.Wire.Valid():
		return fmt.Errorf("rpcfed: invalid wire mode %d", c.Wire)
	case c.DialAttempts < 0:
		return fmt.Errorf("rpcfed: DialAttempts %d must be >= 0", c.DialAttempts)
	case c.DialBackoff < 0:
		return fmt.Errorf("rpcfed: DialBackoff must be >= 0")
	}
	return nil
}

// ServerResult summarizes an RPC search run.
type ServerResult struct {
	Genotype nas.Genotype
	// Curve is the mean fresh-reply training accuracy per round.
	Curve metrics.Curve
	// FreshReplies / LateReplies / DroppedReplies count reply handling.
	FreshReplies, LateReplies, DroppedReplies int
	// RoundSeconds is the measured wall-clock per round.
	RoundSeconds []float64
}

// Server drives Alg. 1 over RPC participants.
type Server struct {
	cfg  ServerConfig
	net  *nas.Supernet
	ctrl *controller.Controller
	opt  *nn.SGD
	rng  *rand.Rand

	clients []*rpc.Client

	paramIndex map[*nn.Param]int
	thetaPool  *staleness.Pool[[]*tensor.Tensor]
	alphaPool  *staleness.Pool[controller.AlphaSnapshot]
	gatesPool  *staleness.Pool[[]nas.Gates]

	replies  chan *TrainReply
	inFlight map[int]bool // participants with an outstanding call

	// pool parallelizes per-participant payload serialization at dispatch.
	pool *parallel.Pool

	// tracer receives per-round span events (nil = disabled); met holds
	// the registry-backed runtime counters. wireMet is shared by pointer
	// with the connection codecs, so SetTelemetry can swap the counters
	// they feed after dialing.
	tracer  *telemetry.Tracer
	met     telemetry.RoundMetrics
	wireMet *telemetry.WireMetrics
}

// NewServer dials the participant addresses and prepares the search state.
func NewServer(cfg ServerConfig, addrs []string) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpcfed: no participant addresses")
	}
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+2)), cfg.Net)
	if err != nil {
		return nil, err
	}
	nE, rE := net.ArchSpace()
	ctrl, err := controller.New(nE, rE, net.NumCandidates(), cfg.Alpha)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:  cfg,
		net:  net,
		ctrl: ctrl,
		opt:  nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip),
		rng:  rand.New(rand.NewSource(cfg.Seed)),

		thetaPool: staleness.NewPool[[]*tensor.Tensor](cfg.StalenessThreshold),
		alphaPool: staleness.NewPool[controller.AlphaSnapshot](cfg.StalenessThreshold),
		gatesPool: staleness.NewPool[[]nas.Gates](cfg.StalenessThreshold),

		replies:  make(chan *TrainReply, 4*len(addrs)),
		inFlight: make(map[int]bool, len(addrs)),
		pool:     parallel.New(cfg.Workers),
	}
	s.paramIndex = make(map[*nn.Param]int)
	for i, p := range net.Params() {
		s.paramIndex[p] = i
	}
	s.met = telemetry.NewDisabledRoundMetrics()
	wm := telemetry.NewDisabledWireMetrics()
	s.wireMet = &wm
	for _, addr := range addrs {
		client, err := dialParticipant(addr, cfg.Wire, s.wireMet, cfg.DialAttempts, cfg.DialBackoff)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.clients = append(s.clients, client)
	}
	s.net.SetTraining(true)
	return s, nil
}

// Close tears down the participant connections.
func (s *Server) Close() {
	for _, c := range s.clients {
		if c != nil {
			_ = c.Close()
		}
	}
}

// Supernet exposes the server-side supernet (e.g. to warm-start θ).
func (s *Server) Supernet() *nas.Supernet { return s.net }

// SetTelemetry attaches a span tracer and a metric registry to the server.
// Both may be nil: a nil tracer disables tracing, a nil registry keeps the
// private one created by NewServer. Call it before Run.
func (s *Server) SetTelemetry(tracer *telemetry.Tracer, reg *telemetry.Registry) {
	s.tracer = tracer
	if reg != nil {
		s.met = telemetry.NewRoundMetrics(reg)
		*s.wireMet = telemetry.NewWireMetrics(reg)
		s.pool.Observe(reg)
	}
}

// Run executes cfg.Rounds rounds of Alg. 1 over the RPC participants and
// derives the final genotype.
func (s *Server) Run() (ServerResult, error) {
	res := ServerResult{}
	params := s.net.Params()
	k := len(s.clients)
	quorum := int(float64(k)*s.cfg.Quorum + 0.5)
	if quorum < 1 {
		quorum = 1
	}

	for t := 0; t < s.cfg.Rounds; t++ {
		roundStart := time.Now()
		s.tracer.RoundStart(t)
		thetaNow := nn.CloneParamValues(params)
		s.thetaPool.Put(t, thetaNow)
		alphaNow := s.ctrl.Snapshot()
		s.alphaPool.Put(t, alphaNow)

		gates := make([]nas.Gates, k)
		for p := 0; p < k; p++ {
			gates[p] = s.ctrl.SampleGates(s.rng)
		}
		s.gatesPool.Put(t, gates)

		// Dispatch to every participant that is not still busy with an
		// earlier round (genuine soft sync: stragglers skip rounds).
		// Payload serialization — sampling and flattening each
		// participant's sub-model weights, the server-side hot path — fans
		// out across the worker pool; the supernet is read-only here (late
		// replies are only absorbed in the collect phase below), so tasks
		// share it safely. Dispatch itself stays in participant order.
		var todo []int
		for p := 0; p < k; p++ {
			if !s.inFlight[p] {
				todo = append(todo, p)
			}
		}
		reqs := make([]*TrainRequest, len(todo))
		reqBytes := make([]int64, len(todo))
		if err := s.pool.Run(len(todo), func(_, i int) error {
			p := todo[i]
			sub := s.net.SampledParams(gates[p])
			reqs[i] = &TrainRequest{
				Round:     t,
				Normal:    append([]int(nil), gates[p].Normal...),
				Reduce:    append([]int(nil), gates[p].Reduce...),
				Weights:   flattenValues(sub),
				BatchSize: s.cfg.BatchSize,
			}
			// Measured encoded payload size under the active wire mode
			// (for Gob, the FP64-equivalent analytic size), not the 4 B/
			// param fiction — this is what transmission ranking and the
			// submodel_bytes telemetry now report.
			reqBytes[i] = wire.GroupBytes(s.cfg.Wire, reqs[i].Weights)
			return nil
		}); err != nil {
			return res, err
		}
		dispatched := 0
		for i, p := range todo {
			s.met.SubModelBytes.Observe(float64(reqBytes[i]))
			s.tracer.SubModelSample(t, p, reqBytes[i])
			s.inFlight[p] = true
			go s.call(p, reqs[i])
			dispatched++
		}

		// Collect until quorum of THIS round's replies (late replies from
		// earlier rounds count toward the aggregate but not the quorum).
		aggTheta := make([]*tensor.Tensor, len(params))
		nE, rE := s.net.ArchSpace()
		aggAlpha := controller.NewAlphaGrad(nE, rE, s.net.NumCandidates())
		contributors, freshCount := 0, 0
		sumAcc, sumFreshAcc := 0.0, 0.0
		deadline := time.After(s.cfg.RoundTimeout)
		target := quorum
		if dispatched < target {
			target = dispatched
		}

		// Replies are only classified and buffered on arrival; the FP
		// accumulation happens after the round closes, sorted by (Round,
		// ParticipantID). Floating-point addition is not associative, so
		// merging in nondeterministic arrival order would make results
		// depend on network timing — sorted merging keeps a -wire fp64 run
		// bit-identical to the gob baseline (and to itself).
		var accepted []*TrainReply
		handle := func(reply *TrainReply) error {
			s.inFlight[reply.ParticipantID] = false
			delay := 0
			if reply.Round >= 0 && t > reply.Round {
				delay = t - reply.Round
			}
			fresh, ok, err := s.classify(reply, t)
			if err != nil {
				return err
			}
			if !ok {
				res.DroppedReplies++
				s.met.RepliesDropped.Inc()
				s.tracer.ReplyDropped(t, reply.ParticipantID, delay)
				return nil
			}
			accepted = append(accepted, reply)
			contributors++
			sumAcc += reply.Reward
			if fresh {
				freshCount++
				sumFreshAcc += reply.Reward
				res.FreshReplies++
				s.met.RepliesFresh.Inc()
				s.tracer.ReplyFresh(t, reply.ParticipantID)
			} else {
				res.LateReplies++
				s.met.RepliesLate.Inc()
				s.tracer.ReplyLate(t, reply.ParticipantID, delay)
			}
			return nil
		}

		// If every participant is still busy with earlier rounds, block for
		// one reply (or the timeout) so the server does not spin.
		if dispatched == 0 {
			select {
			case reply := <-s.replies:
				if err := handle(reply); err != nil {
					return res, err
				}
			case <-deadline:
			}
		}

	collect:
		for freshCount < target {
			select {
			case reply := <-s.replies:
				if err := handle(reply); err != nil {
					return res, err
				}
			case <-deadline:
				// Round closes below quorum: dead or straggling
				// participants kept it from filling up.
				s.met.Timeouts.Inc()
				s.tracer.RoundTimeout(t, time.Since(roundStart).Seconds())
				break collect
			}
		}
		// Drain any further replies already queued (late arrivals from
		// earlier rounds) without blocking the round.
	drain:
		for {
			select {
			case reply := <-s.replies:
				if err := handle(reply); err != nil {
					return res, err
				}
			default:
				break drain
			}
		}

		// Deterministic merge of this round's accepted replies.
		sort.Slice(accepted, func(i, j int) bool {
			if accepted[i].Round != accepted[j].Round {
				return accepted[i].Round < accepted[j].Round
			}
			return accepted[i].ParticipantID < accepted[j].ParticipantID
		})
		for _, reply := range accepted {
			if _, _, err := s.absorb(reply, t, thetaNow, aggTheta, aggAlpha); err != nil {
				return res, err
			}
		}

		if contributors > 0 {
			inv := 1.0 / float64(contributors)
			for i, p := range params {
				p.Grad.Zero()
				if aggTheta[i] != nil {
					p.Grad.AXPY(inv, aggTheta[i])
				}
			}
			s.opt.Step(params)
			aggAlpha.Scale(inv)
			s.ctrl.Apply(aggAlpha)
			s.ctrl.UpdateBaseline(sumAcc * inv)
			s.tracer.AlphaUpdate(t, s.ctrl.Entropy())
		}
		meanFreshAcc := 0.0
		if freshCount > 0 {
			meanFreshAcc = sumFreshAcc / float64(freshCount)
		}
		res.Curve.Add(t, meanFreshAcc)
		elapsed := time.Since(roundStart).Seconds()
		res.RoundSeconds = append(res.RoundSeconds, elapsed)
		s.met.Rounds.Inc()
		s.met.RoundSeconds.Observe(elapsed)
		s.met.Accuracy.Set(meanFreshAcc)
		s.met.Entropy.Set(s.ctrl.Entropy())
		s.met.Baseline.Set(s.ctrl.Baseline())
		s.tracer.RoundEnd(t, elapsed, meanFreshAcc)
		s.thetaPool.Evict(t + 1)
		s.alphaPool.Evict(t + 1)
		s.gatesPool.Evict(t + 1)
	}
	res.Genotype = s.ctrl.Derive(s.cfg.Net.Candidates, s.cfg.Net.Nodes)
	return res, nil
}

// call issues the RPC and forwards the reply (or a zeroed reply on error)
// to the collection channel.
func (s *Server) call(p int, req *TrainRequest) {
	reply := &TrainReply{}
	if err := s.clients[p].Call("Participant.Train", req, reply); err != nil {
		// Feed a drop marker so the dispatcher can clear the in-flight bit.
		reply.Round = -1
		reply.ParticipantID = p
	}
	s.replies <- reply
}

// classify applies Alg. 1's acceptance tests — transport failure,
// staleness threshold, Throw strategy, retention-pool coverage — without
// touching aggregation state, so replies can be counted on arrival yet
// merged later in deterministic order. It reports (fresh, accepted, err).
func (s *Server) classify(reply *TrainReply, t int) (bool, bool, error) {
	if reply.Round < 0 {
		return false, false, nil // transport failure: treat as dropped
	}
	delay := t - reply.Round
	if delay < 0 {
		return false, false, fmt.Errorf("rpcfed: reply from future round %d at %d", reply.Round, t)
	}
	if delay > s.cfg.StalenessThreshold {
		return false, false, nil
	}
	if delay > 0 && s.cfg.Strategy == staleness.Throw {
		return false, false, nil
	}
	if _, ok := s.gatesPool.Get(reply.Round); !ok {
		return false, false, nil
	}
	return delay == 0, true, nil
}

// absorb folds one reply into the aggregation buffers, applying delay
// compensation for late replies. It reports (fresh, accepted, err).
func (s *Server) absorb(reply *TrainReply, t int, thetaNow []*tensor.Tensor,
	aggTheta []*tensor.Tensor, aggAlpha controller.AlphaGrad) (bool, bool, error) {

	if fresh, ok, err := s.classify(reply, t); !ok || err != nil {
		return fresh, ok, err
	}
	delay := t - reply.Round
	gatesAt, ok := s.gatesPool.Get(reply.Round)
	if !ok {
		return false, false, nil
	}
	gk := gatesAt[reply.ParticipantID]
	sub := s.net.SampledParams(gk)
	sizes := make([]int, len(sub))
	for i, p := range sub {
		sizes[i] = p.Value.Size()
	}
	if err := checkWeightShapes(reply.Grads, sizes); err != nil {
		return false, false, err
	}
	grads := make([]*tensor.Tensor, len(sub))
	for i, p := range sub {
		grads[i] = tensor.FromSlice(reply.Grads[i], p.Value.Shape()...)
	}

	if delay > 0 && s.cfg.Strategy == staleness.DC {
		thetaAt, ok := s.thetaPool.Get(reply.Round)
		if !ok {
			return false, false, nil
		}
		freshVals := make([]*tensor.Tensor, len(sub))
		staleVals := make([]*tensor.Tensor, len(sub))
		for i, p := range sub {
			idx := s.paramIndex[p]
			freshVals[i] = thetaNow[idx]
			staleVals[i] = thetaAt[idx]
		}
		var err error
		grads, err = staleness.CompensateTheta(grads, freshVals, staleVals, s.cfg.Lambda)
		if err != nil {
			return false, false, err
		}
	}
	for i, p := range sub {
		idx := s.paramIndex[p]
		if aggTheta[idx] == nil {
			aggTheta[idx] = grads[i].Clone()
		} else {
			aggTheta[idx].AddInPlace(grads[i])
		}
	}

	alphaAt, ok := s.alphaPool.Get(reply.Round)
	if !ok {
		return false, false, nil
	}
	logGrad := controller.LogProbGradAt(alphaAt, gk)
	if delay > 0 && s.cfg.Strategy == staleness.DC {
		drift := alphaAt.Diff(s.ctrl.Snapshot())
		corrected := logGrad.Clone()
		corrected.MulAdd3(s.cfg.Lambda, logGrad, drift)
		logGrad = corrected
	}
	aggAlpha.AXPY(s.ctrl.Reward(reply.Reward), logGrad)
	return delay == 0, true, nil
}

func flattenValues(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Value.Data()...)
	}
	return out
}
