package rpcfed

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

func TestFrameHeaderSpanRoundTrip(t *testing.T) {
	span := wire.SpanContext{TraceID: 0xabc, SpanID: 0xdef, Round: 5, Participant: 2}
	buf, err := appendFrameHeader(nil, wire.FP64, "Participant.Train", 9, "", span, bodyTrainRequest)
	if err != nil {
		t.Fatal(err)
	}
	buf = finishFrame(buf, 0)

	// The span block costs exactly tag + SpanContextBytes over an
	// untraced header.
	plain, err := appendFrameHeader(nil, wire.FP64, "Participant.Train", 9, "", wire.SpanContext{}, bodyTrainRequest)
	if err != nil {
		t.Fatal(err)
	}
	plain = finishFrame(plain, 0)
	if len(buf) != len(plain)+1+wire.SpanContextBytes {
		t.Fatalf("traced header is %d bytes, untraced %d (want +%d)",
			len(buf), len(plain), 1+wire.SpanContextBytes)
	}

	h, err := parseFrameHeader(wire.NewReader(buf[4:]))
	if err != nil {
		t.Fatal(err)
	}
	if h.span != span {
		t.Fatalf("span round trip: got %+v want %+v", h.span, span)
	}
	if h.mode != wire.FP64 || h.method != "Participant.Train" || h.seq != 9 || h.kind != bodyTrainRequest {
		t.Fatalf("header fields mangled around the span block: %+v", h)
	}

	// An untraced frame parses with a zero (invalid) span.
	hp, err := parseFrameHeader(wire.NewReader(plain[4:]))
	if err != nil {
		t.Fatal(err)
	}
	if hp.span.Valid() {
		t.Fatalf("untraced frame decoded a span: %+v", hp.span)
	}
}

func TestFrameHeaderRejectsUnknownTag(t *testing.T) {
	buf, err := appendFrameHeader(nil, wire.FP64, "M", 1, "", wire.SpanContext{}, bodyNone)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the kind byte with an unknown extension tag.
	buf[len(buf)-1] = 0x81
	if _, err := parseFrameHeader(wire.NewReader(buf[4:])); err == nil {
		t.Fatal("unknown header tag accepted")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for collecting worker traces.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(b.buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

// runTracedSearch runs a short search with server- and worker-side tracers
// attached and returns the parsed event streams.
func runTracedSearch(t *testing.T, mode wire.Mode) (server []map[string]any, workers [][]map[string]any) {
	t.Helper()
	const k = 4
	addrs, services, stop := startCluster(t, k, nil)
	defer stop()

	workerBufs := make([]*syncBuffer, k)
	for i, svc := range services {
		workerBufs[i] = &syncBuffer{}
		svc.SetTracer(telemetry.NewJSONLTracer(workerBufs[i]))
	}

	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 3
	cfg.BatchSize = 4
	cfg.Quorum = 1
	cfg.Transport.Wire = mode
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	serverBuf := &syncBuffer{}
	s.SetTelemetry(telemetry.NewJSONLTracer(serverBuf), telemetry.NewRegistry())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Close the cluster before reading worker buffers so in-flight
	// responses are flushed.
	stop()

	workers = make([][]map[string]any, k)
	for i := range workerBufs {
		workers[i] = workerBufs[i].lines(t)
	}
	return serverBuf.lines(t), workers
}

// TestTracedRoundStitchesAcrossProcessBoundary is the tentpole invariant:
// every worker-side span carries the server's trace ID and parents under a
// round span the server opened — zero orphans.
func TestTracedRoundStitchesAcrossProcessBoundary(t *testing.T) {
	for _, mode := range []wire.Mode{wire.FP64, wire.Gob} {
		t.Run(mode.String(), func(t *testing.T) {
			server, workers := runTracedSearch(t, mode)

			var traceID string
			roundSpans := map[string]bool{}
			for _, m := range server {
				if m["event"] == telemetry.EventRoundStart {
					tid, _ := m["trace"].(string)
					sid, _ := m["span"].(string)
					if tid == "" || sid == "" {
						t.Fatalf("round.start without trace/span: %v", m)
					}
					if traceID == "" {
						traceID = tid
					} else if tid != traceID {
						t.Fatalf("trace ID changed mid-run: %s then %s", traceID, tid)
					}
					roundSpans[sid] = true
				}
			}
			if len(roundSpans) != 3 {
				t.Fatalf("%d round spans, want 3", len(roundSpans))
			}

			// Server-side phase events and rpc.call all parent under a
			// known round span.
			for _, m := range server {
				ev := m["event"].(string)
				if ev == telemetry.EventRoundStart {
					continue
				}
				if m["trace"] != traceID {
					t.Fatalf("server event %s has trace %v, want %s", ev, m["trace"], traceID)
				}
				parent, _ := m["parent"].(string)
				if !roundSpans[parent] {
					t.Fatalf("server event %s is an orphan (parent %q): %v", ev, parent, m)
				}
			}

			// Worker spans stitch into the same trace with zero orphans.
			trains := 0
			for w, lines := range workers {
				for _, m := range lines {
					ev := m["event"].(string)
					if m["trace"] != traceID {
						t.Fatalf("worker %d event %s has trace %v, want %s", w, ev, m["trace"], traceID)
					}
					parent, _ := m["parent"].(string)
					if !roundSpans[parent] {
						t.Fatalf("worker %d event %s is an orphan (parent %q)", w, ev, parent)
					}
					if ev == telemetry.EventWorkerTrain {
						trains++
						if int(m["participant"].(float64)) != w {
							t.Fatalf("worker %d train span claims participant %v", w, m["participant"])
						}
					}
				}
			}
			if trains != 3*4 {
				t.Errorf("%d worker.train spans, want %d", trains, 3*4)
			}
			// Binary framing also traces the codec itself.
			if mode == wire.FP64 {
				decodes, encodes := 0, 0
				for _, lines := range workers {
					for _, m := range lines {
						switch m["event"] {
						case telemetry.EventWorkerDecode:
							decodes++
						case telemetry.EventWorkerEncode:
							encodes++
						}
					}
				}
				if decodes < 3*4 || encodes < 3*4 {
					t.Errorf("codec spans missing: %d decodes, %d encodes", decodes, encodes)
				}
			}
		})
	}
}

// TestUntracedRunCarriesNoSpanBytes pins backward compatibility: without
// SetTelemetry the dispatched requests have a zero span, so binary frames
// stay tag-free and gob peers see a zero-valued struct field.
func TestUntracedRunCarriesNoSpanBytes(t *testing.T) {
	addrs, services, stop := startCluster(t, 2, nil)
	defer stop()
	buf := &syncBuffer{}
	services[0].SetTracer(telemetry.NewJSONLTracer(buf))
	cfg := DefaultServerConfig(testNet())
	cfg.Rounds = 1
	cfg.BatchSize = 4
	cfg.Quorum = 1
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	stop()
	for _, m := range buf.lines(t) {
		if _, ok := m["trace"]; ok {
			t.Fatalf("untraced run produced a traced worker event: %v", m)
		}
	}
}

// TestParticipantsEndpointJSON pins the /participants debug endpoint: JSON
// content type, the documented summary shape (with the full status list
// inlined at small K), and lifecycle transitions showing up in the payload.
func TestParticipantsEndpointJSON(t *testing.T) {
	addrs, _, stop := startCluster(t, 2, nil)
	defer stop()
	cfg := DefaultServerConfig(testNet())
	s, err := NewServer(cfg, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mux := telemetry.NewDebugMux(telemetry.NewRegistry(),
		telemetry.Endpoint{Path: "/participants", Handler: s.ParticipantsHandler()})
	get := func(url string) ParticipantsSummary {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		var got ParticipantsSummary
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("invalid JSON body %q: %v", rec.Body.String(), err)
		}
		return got
	}

	sum := get("/participants")
	if sum.Enrolled != 2 || sum.Alive != 2 || sum.Suspect != 0 || sum.Dead != 0 {
		t.Fatalf("summary = %+v, want 2 enrolled alive", sum)
	}
	if len(sum.Cohort) != 2 || sum.CohortSize != 2 {
		t.Fatalf("full-mode cohort = %v (size %d), want identity of 2", sum.Cohort, sum.CohortSize)
	}
	// K = 2 <= 32: the per-participant list is still inlined by default,
	// with the documented field names on the wire.
	if len(sum.Participants) != 2 {
		t.Fatalf("%d participants inlined, want 2", len(sum.Participants))
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/participants", nil))
	for _, key := range []string{`"id"`, `"addr"`, `"state"`, `"consecutive_failures"`,
		`"enrolled"`, `"cohort"`, `"alive"`, `"connected"`} {
		if !strings.Contains(rec.Body.String(), key) {
			t.Fatalf("body missing %s field: %s", key, rec.Body.String())
		}
	}
	for i, p := range sum.Participants {
		if p.ID != i || p.Addr != addrs[i] || p.State != "alive" || p.Failures != 0 {
			t.Fatalf("participant %d = %+v, want alive at %s", i, p, addrs[i])
		}
	}

	// Pagination slices the roster; ?all=1 returns everyone.
	page := get("/participants?offset=1&limit=1")
	if len(page.Participants) != 1 || page.Participants[0].ID != 1 || page.Offset != 1 {
		t.Fatalf("page = %+v, want participant 1 at offset 1", page)
	}
	if all := get("/participants?all=1"); len(all.Participants) != 2 {
		t.Fatalf("?all=1 returned %d participants, want 2", len(all.Participants))
	}

	// Drive the lifecycle state machine: one failure -> suspect, a second
	// -> dead; both must be visible through the endpoint, in the counts
	// and in the inlined list.
	s.noteCallFailure(s.peers[1], errCallTimeout)
	if got := get("/participants"); got.Suspect != 1 ||
		got.Participants[1].State != "suspect" || got.Participants[1].Failures != 1 {
		t.Fatalf("after one failure: %+v", got)
	}
	s.noteCallFailure(s.peers[1], errCallTimeout)
	if got := get("/participants"); got.Dead != 1 || got.Alive != 1 ||
		got.Participants[1].State != "dead" || got.Participants[0].State != "alive" {
		t.Fatalf("after two failures: %+v", got)
	}
}
