package rpcfed

import (
	"errors"
	"fmt"
	"net/rpc"
	"sync"
	"time"
)

// The participant lifecycle state machine. Every participant connection
// moves through
//
//	Alive ──transport failure──▶ Suspect ──second failure──▶ Dead
//	  ▲                             │                          │
//	  │◀────────── success ─────────┘                          │
//	  └────── background re-dial (capped exp. backoff) ◀───────┘
//
// Transport failures (connection reset, rpc.ErrShutdown, a per-call
// deadline expiry) drive the transitions; a server-side method error from
// a live participant is a reply problem, not a connectivity problem, and
// leaves the state alone. A Dead participant is excluded from dispatch and
// from the dynamic quorum until its redial loop — one goroutine per dead
// peer, reusing the startup dial machinery with the backoff doubled and
// capped — re-establishes a verified (Hello round-trip) connection.

// ParticipantState is a lifecycle state. The numeric values are exported
// as the participant_state_<id> gauges.
type ParticipantState int

// Lifecycle states.
const (
	StateAlive ParticipantState = iota
	StateSuspect
	StateDead
)

// String implements fmt.Stringer.
func (s ParticipantState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// deadAfterFailures is how many consecutive transport failures demote a
// participant from Alive through Suspect to Dead.
const deadAfterFailures = 2

// redialBackoffCap bounds the exponential redial backoff.
const redialBackoffCap = 2 * time.Second

// errPeerDown marks a call that was never issued because the participant
// is dead and its connection is gone.
var errPeerDown = errors.New("rpcfed: participant is dead (no connection)")

// errCallTimeout marks a call abandoned at the per-call deadline. The
// underlying net/rpc call may still complete; its reply object is
// abandoned with it, never recycled.
var errCallTimeout = errors.New("rpcfed: call deadline exceeded")

// peer is one participant endpoint with lifecycle state. The mutex guards
// client/state/failures against the three goroutines that touch them: the
// round loop (dispatch + quorum), in-flight call goroutines (failure and
// success notes), and the peer's redial loop.
type peer struct {
	id   int
	addr string

	mu       sync.Mutex
	client   *rpc.Client
	state    ParticipantState
	failures int
	// redialing keeps at most one redial loop alive per peer.
	redialing bool
}

// State snapshots the lifecycle state.
func (p *peer) State() ParticipantState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// do issues one RPC against the peer's current connection, bounded by
// timeout when it is positive. On timeout the reply object passed in must
// be considered poisoned (net/rpc may still write into it later).
func (p *peer) do(method string, args, reply any, timeout time.Duration) error {
	p.mu.Lock()
	client := p.client
	p.mu.Unlock()
	if client == nil {
		return errPeerDown
	}
	if timeout <= 0 {
		return client.Call(method, args, reply)
	}
	call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-timer.C:
		return errCallTimeout
	}
}

// isTransportFailure classifies a call error: anything except a remote
// method error (rpc.ServerError) means the connection, not the
// computation, failed.
func isTransportFailure(err error) bool {
	if err == nil {
		return false
	}
	var remote rpc.ServerError
	return !errors.As(err, &remote)
}

// ParticipantStatus is the externally visible per-participant lifecycle
// snapshot (the /participants debug endpoint serves a list of these).
type ParticipantStatus struct {
	ID       int    `json:"id"`
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
}

// liveCountIn returns how many of the given participants are not Dead —
// the population the round's dynamic quorum is computed over (the current
// cohort, or everyone when sampling is off).
func (s *Server) liveCountIn(ids []int) int {
	n := 0
	for _, id := range ids {
		if s.peers[id].State() != StateDead {
			n++
		}
	}
	return n
}

// noteCallSuccess resets the failure streak and recovers a Suspect back to
// Alive.
func (s *Server) noteCallSuccess(p *peer) {
	p.mu.Lock()
	p.failures = 0
	changed := p.state == StateSuspect
	if changed {
		p.state = StateAlive
	}
	p.mu.Unlock()
	if changed {
		s.publishState(p, StateAlive)
	}
}

// noteCallFailure advances the state machine after a transport failure.
// The second consecutive failure tears the connection down and hands the
// peer to a background redial loop.
func (s *Server) noteCallFailure(p *peer, err error) {
	if errors.Is(err, errCallTimeout) {
		s.lcMet.DeadlineExceeded.Inc()
	}
	p.mu.Lock()
	p.failures++
	var next ParticipantState
	var stale *rpc.Client
	startRedial := false
	switch {
	case p.state == StateDead:
		p.mu.Unlock()
		return
	case p.failures >= deadAfterFailures:
		next = StateDead
		stale = p.client
		p.client = nil
		if !p.redialing {
			p.redialing = true
			startRedial = true
		}
	default:
		next = StateSuspect
	}
	changed := p.state != next
	p.state = next
	p.mu.Unlock()

	if stale != nil {
		_ = stale.Close()
	}
	if changed {
		s.publishState(p, next)
	}
	if startRedial {
		go s.redialLoop(p)
	}
}

// publishState mirrors a transition into the gauge and the tracer.
func (s *Server) publishState(p *peer, state ParticipantState) {
	s.lcMet.SetState(p.id, int(state))
	s.tracer.PeerState(int(s.curRound.Load()), p.id, int(state))
}

// redialLoop re-dials a dead participant until it comes back or the server
// shuts down. Each attempt reuses the startup dial path (same wire mode,
// same counting connection) and must survive a Hello round-trip before the
// peer is declared Alive again — a listener that accepts and immediately
// drops connections (a crashed process, a chaos outage) keeps the peer
// Dead. Backoff starts at the configured DialBackoff and doubles up to
// redialBackoffCap.
func (s *Server) redialLoop(p *peer) {
	backoff := s.cfg.Transport.DialBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	helloTimeout := s.cfg.Transport.CallTimeout
	if helloTimeout <= 0 {
		helloTimeout = redialBackoffCap
	}
	for attempt := 1; ; attempt++ {
		select {
		case <-s.done:
			return
		case <-time.After(backoff):
		}
		if backoff < redialBackoffCap {
			backoff *= 2
		}
		s.lcMet.RedialAttempts.Inc()
		client, err := dialParticipant(p.addr, s.cfg.Transport.Wire, s.wireMet, 1, 0)
		if err != nil {
			continue
		}
		// Verify the connection end to end before trusting it.
		var hello HelloReply
		call := client.Go("Participant.Hello", &HelloRequest{}, &hello, make(chan *rpc.Call, 1))
		timer := time.NewTimer(helloTimeout)
		select {
		case <-call.Done:
			timer.Stop()
			err = call.Error
		case <-timer.C:
			err = errCallTimeout
		case <-s.done:
			timer.Stop()
			_ = client.Close()
			return
		}
		if err != nil {
			_ = client.Close()
			continue
		}
		p.mu.Lock()
		p.client = client
		p.state = StateAlive
		p.failures = 0
		p.redialing = false
		p.mu.Unlock()
		s.lcMet.Redials.Inc()
		s.publishState(p, StateAlive)
		s.tracer.PeerRedial(int(s.curRound.Load()), p.id, attempt)
		return
	}
}
