package rpcfed

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"net"
	"net/rpc"
	"sync"
	"time"

	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

// The binary wire protocol for rpcfed. A client that wants binary framing
// writes the 4-byte preamble below right after connecting; the participant
// sniffs it and picks the matching server codec, so gob and binary clients
// coexist on one listener. Every message (either direction) is one frame:
//
//	u32 frameLen                  (bytes after this field, little-endian)
//	u8  version                   (1)
//	u8  mode                      (wire.Mode of the tensor payload)
//	u8  methodLen | method bytes  (rpc.Request/Response.ServiceMethod)
//	u64 seq                       (rpc sequence number)
//	u16 errLen | err bytes        (empty on requests and successes)
//	u8  bodyKind                  (constants below)
//	body bytes                    (layout per kind; tensors via wire pkg)
//
// Responses reuse the request's mode (the server echoes what each client
// asked for), so mixed-mode clients against one participant stay correct.
// Encode/decode time excludes network I/O: frames are built in and parsed
// from reusable in-memory buffers on both sides.

// wirePreamble is the connection-level magic selecting the binary codec.
const wirePreamble = "FWP1"

// wireVersion is the frame format version byte.
const wireVersion = 1

// maxFrameBytes bounds a frame a peer can make us buffer (a corrupt or
// hostile length prefix must not demand gigabytes).
const maxFrameBytes = 256 << 20

// Body kinds.
const (
	bodyNone         = 0 // error responses and discarded bodies
	bodyGob          = 1 // gob blob fallback (Hello handshake)
	bodyTrainRequest = 2
	bodyTrainReply   = 3
	bodyFedAvgReq    = 4
	bodyFedAvgReply  = 5
)

// headerTagSpan is the optional header-extension tag carrying a 24-byte
// trace span context (wire.SpanContext) between the error string and
// bodyKind. Extension tags have the high bit set, so a tag byte can never
// be mistaken for a body kind. Unknown tags are a parse error (their length
// is unknown), but untraced frames carry no tags at all and stay
// byte-identical to the original protocol — so v1 peers interoperate as
// long as tracing is off, and gob-mode clients are unaffected either way
// because gob framing never takes this path.
const headerTagSpan = 0x80

// countingConn wraps a net.Conn, feeding raw byte counts both ways into
// wire metrics counters (nil-safe, so an unobserved run costs two atomic
// adds per syscall).
type countingConn struct {
	net.Conn
	met *telemetry.WireMetrics
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.met.BytesReceived.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.met.BytesSent.Add(int64(n))
	return n, err
}

// sniffedConn replays bytes buffered while peeking at the preamble, then
// continues on the underlying connection.
type sniffedConn struct {
	r io.Reader
	net.Conn
}

func (c sniffedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// --- frame primitives -------------------------------------------------

// appendFrameHeader emits everything up to and including bodyKind; the
// caller appends the body and then patches the length prefix. A valid span
// context is carried as a header-extension tag; an invalid one adds no
// bytes, keeping untraced frames identical to the tag-free format.
func appendFrameHeader(dst []byte, mode wire.Mode, method string, seq uint64, errStr string, span wire.SpanContext, kind byte) ([]byte, error) {
	if len(method) > 255 {
		return nil, fmt.Errorf("rpcfed: method name %q too long", method)
	}
	if len(errStr) > 65535 {
		errStr = errStr[:65535]
	}
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched by finishFrame
	dst = append(dst, wireVersion, byte(mode), byte(len(method)))
	dst = append(dst, method...)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(errStr)))
	dst = append(dst, errStr...)
	if span.Valid() {
		dst = append(dst, headerTagSpan)
		dst = wire.AppendSpanContext(dst, span)
	}
	dst = append(dst, kind)
	return dst, nil
}

// finishFrame patches the length prefix of the frame starting at `start`.
func finishFrame(buf []byte, start int) []byte {
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// frameHeader is the parsed envelope of one incoming frame.
type frameHeader struct {
	mode   wire.Mode
	method string
	seq    uint64
	errStr string
	// span is the trace context from the headerTagSpan extension (zero
	// when the frame carried none).
	span wire.SpanContext
	kind byte
}

// readFrame reads one length-prefixed frame into buf (grown as needed) and
// returns the frame payload. Raw network reads happen here, so codec
// decode timers can exclude them.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("rpcfed: frame of %d bytes exceeds limit %d", n, maxFrameBytes)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("rpcfed: short frame: %w", err)
	}
	return buf, nil
}

// parseFrameHeader consumes the envelope from r.
func parseFrameHeader(r *wire.Reader) (frameHeader, error) {
	var h frameHeader
	ver, err := r.U8()
	if err != nil {
		return h, err
	}
	if ver != wireVersion {
		return h, fmt.Errorf("rpcfed: frame version %d, want %d", ver, wireVersion)
	}
	modeB, err := r.U8()
	if err != nil {
		return h, err
	}
	h.mode = wire.Mode(modeB)
	if !h.mode.Valid() {
		return h, fmt.Errorf("rpcfed: invalid wire mode %d", modeB)
	}
	mlen, err := r.U8()
	if err != nil {
		return h, err
	}
	mb, err := r.Bytes(int(mlen))
	if err != nil {
		return h, err
	}
	h.method = string(mb)
	if h.seq, err = r.U64(); err != nil {
		return h, err
	}
	elen, err := r.U16()
	if err != nil {
		return h, err
	}
	eb, err := r.Bytes(int(elen))
	if err != nil {
		return h, err
	}
	h.errStr = string(eb)
	b, err := r.U8()
	if err != nil {
		return h, err
	}
	for b&0x80 != 0 {
		switch b {
		case headerTagSpan:
			if h.span, err = wire.DecodeSpanContext(r); err != nil {
				return h, err
			}
		default:
			return h, fmt.Errorf("rpcfed: unknown frame header tag %#x", b)
		}
		if b, err = r.U8(); err != nil {
			return h, err
		}
	}
	h.kind = b
	return h, nil
}

// --- typed body layouts -----------------------------------------------

// appendGateInts emits a gate vector as u32 count + u16 per entry
// (candidate indices are tiny).
func appendGateInts(dst []byte, g []int) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g)))
	for _, v := range g {
		if v < 0 || v > 65535 {
			return nil, fmt.Errorf("rpcfed: gate index %d out of u16 range", v)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
	}
	return dst, nil
}

func decodeGateInts(r *wire.Reader, into []int) ([]int, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int64(n)*2 > int64(r.Len()) {
		return nil, fmt.Errorf("rpcfed: gate count %d exceeds frame", n)
	}
	if cap(into) >= int(n) {
		into = into[:n]
	} else {
		into = make([]int, n)
	}
	for i := range into {
		v, err := r.U16()
		if err != nil {
			return nil, err
		}
		into[i] = int(v)
	}
	return into, nil
}

func appendI32(dst []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(int32(v)))
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendParamIDs / decodeParamIDs carry the top-k transport's supernet
// parameter indices (u32 count + u32 per entry).
func appendParamIDs(dst []byte, ids []int) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("rpcfed: negative param id %d", id)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
	}
	return dst, nil
}

func decodeParamIDs(r *wire.Reader, into []int) ([]int, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int64(n)*4 > int64(r.Len()) {
		return nil, fmt.Errorf("rpcfed: param id count %d exceeds frame", n)
	}
	if cap(into) >= int(n) {
		into = into[:n]
	} else {
		into = make([]int, n)
	}
	for i := range into {
		v, err := r.U32()
		if err != nil {
			return nil, err
		}
		into[i] = int(v)
	}
	return into, nil
}

// appendPacked / decodePacked carry an opaque pre-encoded wire tensor group
// (u32 length + bytes). Decoding COPIES the bytes: the frame buffer is
// reused for the next frame while the service (or the reply consumer) still
// holds the payload.
func appendPacked(dst, packed []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(packed)))
	return append(dst, packed...)
}

func decodePacked(r *wire.Reader, into []byte) ([]byte, error) {
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	b, err := r.Bytes(int(n))
	if err != nil {
		return nil, err
	}
	return append(into[:0], b...), nil
}

func appendTrainRequest(dst []byte, m wire.Mode, req *TrainRequest) ([]byte, error) {
	dst = appendI32(dst, req.Round)
	dst = appendI32(dst, req.BatchSize)
	var err error
	if dst, err = appendGateInts(dst, req.Normal); err != nil {
		return nil, err
	}
	if dst, err = appendGateInts(dst, req.Reduce); err != nil {
		return nil, err
	}
	if m == wire.TopK {
		if dst, err = appendParamIDs(dst, req.ParamIDs); err != nil {
			return nil, err
		}
		dst = appendF64(dst, req.TopKRatio)
		dst = appendPacked(dst, req.Packed)
	}
	return wire.AppendGroup(dst, m, req.Weights), nil
}

func decodeTrainRequest(r *wire.Reader, m wire.Mode, req *TrainRequest) error {
	var err error
	if req.Round, err = r.I32(); err != nil {
		return err
	}
	if req.BatchSize, err = r.I32(); err != nil {
		return err
	}
	if req.Normal, err = decodeGateInts(r, req.Normal); err != nil {
		return err
	}
	if req.Reduce, err = decodeGateInts(r, req.Reduce); err != nil {
		return err
	}
	if m == wire.TopK {
		if req.ParamIDs, err = decodeParamIDs(r, req.ParamIDs); err != nil {
			return err
		}
		if req.TopKRatio, err = r.F64(); err != nil {
			return err
		}
		if req.Packed, err = decodePacked(r, req.Packed); err != nil {
			return err
		}
	}
	req.Weights, err = wire.DecodeGroupInto(r, req.Weights)
	return err
}

func appendTrainReply(dst []byte, m wire.Mode, rep *TrainReply) ([]byte, error) {
	dst = appendI32(dst, rep.Round)
	dst = appendI32(dst, rep.ParticipantID)
	dst = appendF64(dst, rep.Reward)
	dst = appendF64(dst, rep.Loss)
	if m == wire.TopK {
		dst = appendPacked(dst, rep.Packed)
	}
	return wire.AppendGroup(dst, m, rep.Grads), nil
}

func decodeTrainReply(r *wire.Reader, m wire.Mode, rep *TrainReply) error {
	var err error
	if rep.Round, err = r.I32(); err != nil {
		return err
	}
	if rep.ParticipantID, err = r.I32(); err != nil {
		return err
	}
	if rep.Reward, err = r.F64(); err != nil {
		return err
	}
	if rep.Loss, err = r.F64(); err != nil {
		return err
	}
	if m == wire.TopK {
		if rep.Packed, err = decodePacked(r, rep.Packed); err != nil {
			return err
		}
	}
	rep.Grads, err = wire.DecodeGroupInto(r, rep.Grads)
	return err
}

func appendFedAvgRequest(dst []byte, m wire.Mode, req *FedAvgRequest) ([]byte, error) {
	dst = appendI32(dst, req.Round)
	dst = appendI32(dst, req.BatchSize)
	dst = appendI32(dst, req.LocalSteps)
	dst = appendF64(dst, req.LR)
	dst = appendF64(dst, req.Momentum)
	dst = appendF64(dst, req.WeightDecay)
	dst = appendF64(dst, req.GradClip)
	var err error
	if dst, err = appendGateInts(dst, req.Normal); err != nil {
		return nil, err
	}
	if dst, err = appendGateInts(dst, req.Reduce); err != nil {
		return nil, err
	}
	return wire.AppendGroup(dst, m, req.Weights), nil
}

func decodeFedAvgRequest(r *wire.Reader, req *FedAvgRequest) error {
	var err error
	if req.Round, err = r.I32(); err != nil {
		return err
	}
	if req.BatchSize, err = r.I32(); err != nil {
		return err
	}
	if req.LocalSteps, err = r.I32(); err != nil {
		return err
	}
	if req.LR, err = r.F64(); err != nil {
		return err
	}
	if req.Momentum, err = r.F64(); err != nil {
		return err
	}
	if req.WeightDecay, err = r.F64(); err != nil {
		return err
	}
	if req.GradClip, err = r.F64(); err != nil {
		return err
	}
	if req.Normal, err = decodeGateInts(r, req.Normal); err != nil {
		return err
	}
	if req.Reduce, err = decodeGateInts(r, req.Reduce); err != nil {
		return err
	}
	req.Weights, err = wire.DecodeGroupInto(r, req.Weights)
	return err
}

func appendFedAvgReply(dst []byte, m wire.Mode, rep *FedAvgReply) ([]byte, error) {
	dst = appendI32(dst, rep.Round)
	dst = appendI32(dst, rep.ParticipantID)
	dst = appendI32(dst, rep.NumSamples)
	dst = appendF64(dst, rep.TrainAccuracy)
	return wire.AppendGroup(dst, m, rep.Weights), nil
}

func decodeFedAvgReply(r *wire.Reader, rep *FedAvgReply) error {
	var err error
	if rep.Round, err = r.I32(); err != nil {
		return err
	}
	if rep.ParticipantID, err = r.I32(); err != nil {
		return err
	}
	if rep.NumSamples, err = r.I32(); err != nil {
		return err
	}
	if rep.TrainAccuracy, err = r.F64(); err != nil {
		return err
	}
	rep.Weights, err = wire.DecodeGroupInto(r, rep.Weights)
	return err
}

// appendBody dispatches on the concrete message type; unknown types fall
// back to a gob blob so auxiliary messages (the Hello handshake) need no
// bespoke layout. Weight-bearing messages always get the binary path.
func appendBody(dst []byte, m wire.Mode, body any) ([]byte, byte, error) {
	switch b := body.(type) {
	case nil:
		return dst, bodyNone, nil
	case *TrainRequest:
		out, err := appendTrainRequest(dst, m, b)
		return out, bodyTrainRequest, err
	case *TrainReply:
		out, err := appendTrainReply(dst, m, b)
		return out, bodyTrainReply, err
	case *FedAvgRequest:
		out, err := appendFedAvgRequest(dst, m, b)
		return out, bodyFedAvgReq, err
	case *FedAvgReply:
		out, err := appendFedAvgReply(dst, m, b)
		return out, bodyFedAvgReply, err
	default:
		var blob bytes.Buffer
		if err := gob.NewEncoder(&blob).Encode(body); err != nil {
			return nil, 0, fmt.Errorf("rpcfed: gob fallback encode %T: %w", body, err)
		}
		return append(dst, blob.Bytes()...), bodyGob, nil
	}
}

// decodeBody decodes the remainder of a frame into the typed destination.
// A nil dst discards the body (net/rpc does this on errors). The frame's
// wire mode selects layout variants (the top-k transport extends the train
// bodies).
func decodeBody(r *wire.Reader, kind byte, m wire.Mode, dst any) error {
	if dst == nil {
		return nil
	}
	switch kind {
	case bodyNone:
		return nil
	case bodyGob:
		blob, err := r.Bytes(r.Len())
		if err != nil {
			return err
		}
		return gob.NewDecoder(bytes.NewReader(blob)).Decode(dst)
	case bodyTrainRequest:
		b, ok := dst.(*TrainRequest)
		if !ok {
			return fmt.Errorf("rpcfed: TrainRequest frame decoded into %T", dst)
		}
		return decodeTrainRequest(r, m, b)
	case bodyTrainReply:
		b, ok := dst.(*TrainReply)
		if !ok {
			return fmt.Errorf("rpcfed: TrainReply frame decoded into %T", dst)
		}
		return decodeTrainReply(r, m, b)
	case bodyFedAvgReq:
		b, ok := dst.(*FedAvgRequest)
		if !ok {
			return fmt.Errorf("rpcfed: FedAvgRequest frame decoded into %T", dst)
		}
		return decodeFedAvgRequest(r, b)
	case bodyFedAvgReply:
		b, ok := dst.(*FedAvgReply)
		if !ok {
			return fmt.Errorf("rpcfed: FedAvgReply frame decoded into %T", dst)
		}
		return decodeFedAvgReply(r, b)
	default:
		return fmt.Errorf("rpcfed: unknown body kind %d", kind)
	}
}

// --- client codec -----------------------------------------------------

// binaryClientCodec implements rpc.ClientCodec over the binary frame
// protocol. net/rpc serializes WriteRequest calls and runs the two read
// methods from one receive goroutine, so the encode and decode state are
// lock-free as long as they stay separate.
type binaryClientCodec struct {
	conn io.ReadWriteCloser
	mode wire.Mode
	met  *telemetry.WireMetrics

	encBuf []byte

	decBuf  []byte
	pending frameHeader
	body    *wire.Reader
}

// newBinaryClientCodec writes the preamble and returns the codec.
func newBinaryClientCodec(conn io.ReadWriteCloser, mode wire.Mode, met *telemetry.WireMetrics) (*binaryClientCodec, error) {
	if _, err := io.WriteString(conn, wirePreamble); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpcfed: write preamble: %w", err)
	}
	return &binaryClientCodec{conn: conn, mode: mode, met: met}, nil
}

// requestSpan lifts the trace context out of the typed request bodies the
// server dispatches, so the binary framing can carry it in the header
// (the typed body encoders deliberately skip it).
func requestSpan(body any) wire.SpanContext {
	switch b := body.(type) {
	case *TrainRequest:
		return b.Span
	case *FedAvgRequest:
		return b.Span
	}
	return wire.SpanContext{}
}

func (c *binaryClientCodec) WriteRequest(req *rpc.Request, body any) error {
	t0 := time.Now()
	buf, err := appendFrameHeader(c.encBuf[:0], c.mode, req.ServiceMethod, req.Seq, "", requestSpan(body), bodyNone)
	if err != nil {
		return err
	}
	kindAt := len(buf) - 1
	buf, kind, err := appendBody(buf, c.mode, body)
	if err != nil {
		return err
	}
	buf[kindAt] = kind
	buf = finishFrame(buf, 0)
	c.encBuf = buf
	enc := time.Since(t0)
	c.met.EncodeNs.Add(enc.Nanoseconds())
	c.met.EncodeSeconds.Observe(enc.Seconds())
	c.met.FrameBytes.Observe(float64(len(buf)))
	if _, err := c.conn.Write(buf); err != nil {
		return err
	}
	c.met.MessagesSent.Inc()
	return nil
}

func (c *binaryClientCodec) ReadResponseHeader(resp *rpc.Response) error {
	frame, err := readFrame(c.conn, c.decBuf)
	if err != nil {
		return err
	}
	c.decBuf = frame
	t0 := time.Now()
	r := wire.NewReader(frame)
	h, err := parseFrameHeader(r)
	if err != nil {
		return err
	}
	c.pending, c.body = h, r
	resp.ServiceMethod = h.method
	resp.Seq = h.seq
	resp.Error = h.errStr
	c.met.DecodeNs.Add(time.Since(t0).Nanoseconds())
	c.met.FrameBytes.Observe(float64(len(frame) + 4))
	c.met.MessagesReceived.Inc()
	return nil
}

func (c *binaryClientCodec) ReadResponseBody(body any) error {
	t0 := time.Now()
	err := decodeBody(c.body, c.pending.kind, c.pending.mode, body)
	dec := time.Since(t0)
	c.met.DecodeNs.Add(dec.Nanoseconds())
	c.met.DecodeSeconds.Observe(dec.Seconds())
	return err
}

func (c *binaryClientCodec) Close() error { return c.conn.Close() }

// --- server codec -----------------------------------------------------

// requestEcho is what a response must echo from its request: the wire mode
// the client asked for and the trace context its worker-side spans (and the
// response frame header) parent under.
type requestEcho struct {
	mode wire.Mode
	span wire.SpanContext
}

// binaryServerCodec implements rpc.ServerCodec. The read methods run from
// the server's single read loop; WriteResponse runs from service
// goroutines (serialized by net/rpc's per-connection sending lock, but
// concurrent with reads), so the seq→echo map needs its own lock.
type binaryServerCodec struct {
	conn   io.ReadWriteCloser
	met    *telemetry.WireMetrics
	tracer *telemetry.Tracer

	decBuf  []byte
	pending frameHeader
	body    *wire.Reader

	mu        sync.Mutex
	encBuf    []byte
	echoBySeq map[uint64]requestEcho
}

func newBinaryServerCodec(conn io.ReadWriteCloser, met *telemetry.WireMetrics, tracer *telemetry.Tracer) *binaryServerCodec {
	return &binaryServerCodec{conn: conn, met: met, tracer: tracer,
		echoBySeq: make(map[uint64]requestEcho)}
}

func (c *binaryServerCodec) ReadRequestHeader(req *rpc.Request) error {
	frame, err := readFrame(c.conn, c.decBuf)
	if err != nil {
		return err
	}
	c.decBuf = frame
	t0 := time.Now()
	r := wire.NewReader(frame)
	h, err := parseFrameHeader(r)
	if err != nil {
		return err
	}
	c.pending, c.body = h, r
	req.ServiceMethod = h.method
	req.Seq = h.seq
	c.mu.Lock()
	c.echoBySeq[h.seq] = requestEcho{mode: h.mode, span: h.span}
	c.mu.Unlock()
	c.met.DecodeNs.Add(time.Since(t0).Nanoseconds())
	c.met.FrameBytes.Observe(float64(len(frame) + 4))
	c.met.MessagesReceived.Inc()
	return nil
}

func (c *binaryServerCodec) ReadRequestBody(body any) error {
	t0 := time.Now()
	err := decodeBody(c.body, c.pending.kind, c.pending.mode, body)
	dec := time.Since(t0)
	c.met.DecodeNs.Add(dec.Nanoseconds())
	c.met.DecodeSeconds.Observe(dec.Seconds())
	if err != nil {
		return err
	}
	// The binary body layouts skip the span; restore it from the frame
	// header so the service sees the same request a gob client would send,
	// and record the decode as a worker-side span under the round.
	if c.pending.span.Valid() {
		switch b := body.(type) {
		case *TrainRequest:
			b.Span = c.pending.span
		case *FedAvgRequest:
			b.Span = c.pending.span
		}
		c.tracer.WorkerSpan(telemetry.EventWorkerDecode, c.pending.span,
			int64(len(c.decBuf)+4), dec.Seconds())
	}
	return nil
}

func (c *binaryServerCodec) WriteResponse(resp *rpc.Response, body any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	echo, ok := c.echoBySeq[resp.Seq]
	if !ok {
		echo = requestEcho{mode: wire.FP64}
	}
	delete(c.echoBySeq, resp.Seq)

	t0 := time.Now()
	buf, err := appendFrameHeader(c.encBuf[:0], echo.mode, resp.ServiceMethod, resp.Seq, resp.Error, echo.span, bodyNone)
	if err != nil {
		return err
	}
	kindAt := len(buf) - 1
	if resp.Error == "" {
		var kind byte
		buf, kind, err = appendBody(buf, echo.mode, body)
		if err != nil {
			return err
		}
		buf[kindAt] = kind
	}
	buf = finishFrame(buf, 0)
	c.encBuf = buf
	enc := time.Since(t0)
	c.met.EncodeNs.Add(enc.Nanoseconds())
	c.met.EncodeSeconds.Observe(enc.Seconds())
	c.met.FrameBytes.Observe(float64(len(buf)))
	if echo.span.Valid() {
		c.tracer.WorkerSpan(telemetry.EventWorkerEncode, echo.span,
			int64(len(buf)), enc.Seconds())
	}
	if _, err := c.conn.Write(buf); err != nil {
		return err
	}
	c.met.MessagesSent.Inc()
	return nil
}

func (c *binaryServerCodec) Close() error { return c.conn.Close() }

// --- instrumented gob client codec (baseline) -------------------------

// gobClientCodec mirrors net/rpc's stock gob codec byte-for-byte on the
// wire but routes through the wire metrics, so the gob baseline reports
// comparable byte counts and serialization time in cmd/benchrpc. Decode
// time approximates: gob streams straight off the buffered connection, so
// the timer includes buffered reads (unlike the binary codec, which fully
// separates I/O from parsing).
type gobClientCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	met    *telemetry.WireMetrics
}

func newGobClientCodec(conn io.ReadWriteCloser, met *telemetry.WireMetrics) *gobClientCodec {
	encBuf := bufio.NewWriter(conn)
	return &gobClientCodec{
		rwc:    conn,
		dec:    gob.NewDecoder(bufio.NewReader(conn)),
		enc:    gob.NewEncoder(encBuf),
		encBuf: encBuf,
		met:    met,
	}
}

func (c *gobClientCodec) WriteRequest(req *rpc.Request, body any) error {
	t0 := time.Now()
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		return err
	}
	err := c.encBuf.Flush()
	enc := time.Since(t0)
	c.met.EncodeNs.Add(enc.Nanoseconds())
	c.met.EncodeSeconds.Observe(enc.Seconds())
	if err == nil {
		c.met.MessagesSent.Inc()
	}
	return err
}

func (c *gobClientCodec) ReadResponseHeader(resp *rpc.Response) error {
	if err := c.dec.Decode(resp); err != nil {
		return err
	}
	c.met.MessagesReceived.Inc()
	return nil
}

func (c *gobClientCodec) ReadResponseBody(body any) error {
	t0 := time.Now()
	err := c.dec.Decode(body)
	dec := time.Since(t0)
	c.met.DecodeNs.Add(dec.Nanoseconds())
	c.met.DecodeSeconds.Observe(dec.Seconds())
	return err
}

func (c *gobClientCodec) Close() error { return c.rwc.Close() }

// --- dialing ----------------------------------------------------------

// dialParticipant connects to addr with bounded-backoff retries (a
// participant racing the server to its listener is a normal startup
// interleaving, not an error) and returns an rpc.Client speaking the
// requested wire mode. attempts <= 1 means a single try.
func dialParticipant(addr string, mode wire.Mode, met *telemetry.WireMetrics,
	attempts int, backoff time.Duration) (*rpc.Client, error) {

	if attempts < 1 {
		attempts = 1
	}
	var conn net.Conn
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("rpcfed: dial %s (%d attempts): %w", addr, attempts, err)
	}
	cc := &countingConn{Conn: conn, met: met}
	if mode == wire.Gob {
		return rpc.NewClientWithCodec(newGobClientCodec(cc, met)), nil
	}
	codec, err := newBinaryClientCodec(cc, mode, met)
	if err != nil {
		return nil, err
	}
	return rpc.NewClientWithCodec(codec), nil
}
