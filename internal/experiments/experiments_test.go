package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12",
		"table2", "table3", "table4", "table5", "table6", "table7", "table8",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Errorf("IDs() returned %d entries", len(ids))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", Quick); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestFig7QuickShape(t *testing.T) {
	out, err := Run("fig7", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table == nil {
		t.Fatal("fig7 must produce a table")
	}
	// One row per standard environment (6 regimes + 2 mixes).
	if len(out.Table.Rows) != 8 {
		t.Fatalf("fig7 has %d rows, want 8", len(out.Table.Rows))
	}
	// Adaptive column must never exceed uniform by more than noise.
	for _, row := range out.Table.Rows {
		if len(row) != 4 {
			t.Fatalf("malformed row %v", row)
		}
	}
	if len(out.Notes) == 0 || !strings.Contains(out.Notes[0], "adaptive") {
		t.Errorf("missing adaptive note: %v", out.Notes)
	}
}

func TestFig3QuickShape(t *testing.T) {
	out, err := Run("fig3", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Curves) != 2 {
		t.Fatalf("fig3 has %d curves, want raw+ma", len(out.Curves))
	}
	if out.Curves[0].Len() == 0 {
		t.Error("empty warmup curve")
	}
	rendered := out.Render()
	if !strings.Contains(rendered, "fig3") || !strings.Contains(rendered, "warmup-acc") {
		t.Errorf("render missing content:\n%s", rendered)
	}
}

func TestRenderCurveHandlesEmpty(t *testing.T) {
	var c metrics.Curve
	c.Name = "x"
	if !strings.Contains(renderCurve(c), "empty") {
		t.Error("empty curve render missing marker")
	}
	c.Add(0, 1)
	if !strings.Contains(renderCurve(c), "last 1.000") {
		t.Errorf("curve render: %s", renderCurve(c))
	}
}

func TestScaleSizes(t *testing.T) {
	qw, qs, qr, qf := Quick.sizes()
	fw, fs, fr, ff := Full.sizes()
	if !(fw > qw && fs > qs && fr > qr && ff > qf) {
		t.Error("Full must be strictly larger than Quick in every phase")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale strings wrong")
	}
}

func TestFallbackGenotypeValid(t *testing.T) {
	g := fallbackGenotype(2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.GatesFor(nas.AllOps); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGenotypeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nas.Config{
		InChannels: 3, NumClasses: 10, C: 4, Layers: 3, Nodes: 2,
		Candidates: nas.AllOps,
	}
	for i := 0; i < 10; i++ {
		g := randomGenotype(rng, net)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHelpersFormatters(t *testing.T) {
	if hours(3600) != "1.000" {
		t.Errorf("hours = %s", hours(3600))
	}
	if kb(2048) != "2.0" {
		t.Errorf("kb = %s", kb(2048))
	}
	if maWindow(1000) != 50 {
		t.Errorf("maWindow(1000) = %d", maWindow(1000))
	}
	if maWindow(5) != 2 {
		t.Errorf("maWindow(5) = %d", maWindow(5))
	}
}

func TestCurvesCSV(t *testing.T) {
	var a, b metrics.Curve
	a.Name = "x"
	b.Name = "y"
	a.Add(0, 0.5)
	a.Add(1, 0.6)
	b.Add(0, 0.1)
	out := Output{Curves: []metrics.Curve{a, b}}
	csv := out.CurvesCSV()
	if !strings.Contains(csv, "step,x,y") {
		t.Errorf("missing header: %s", csv)
	}
	if !strings.Contains(csv, "0,0.5000,0.1000") {
		t.Errorf("missing row: %s", csv)
	}
	if !strings.Contains(csv, "1,0.6000,") {
		t.Errorf("ragged row not padded: %s", csv)
	}
	if (Output{}).CurvesCSV() != "" {
		t.Error("empty output should render empty CSV")
	}
}
