// Package experiments regenerates every table and figure of the paper's
// evaluation section on this substrate (the per-experiment index lives in
// DESIGN.md §4; paper-vs-measured notes in EXPERIMENTS.md). Both the
// benchmark harness (bench_test.go) and the benchtab CLI call into it.
package experiments

import (
	"fmt"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/search"
)

// Workers caps per-round participant concurrency in every experiment —
// the search engine, federated retraining, and the federated baselines.
// 0 (the default) selects runtime.NumCPU(). Every experiment is
// bit-identical at every worker count (DESIGN.md §Concurrency), so this
// only changes wall-clock. benchtab's -workers flag sets it.
var Workers int

// Scale selects experiment duration: Quick for CI-sized smoke runs, Full
// for the EXPERIMENTS.md numbers.
type Scale int

// Scales.
const (
	Quick Scale = iota + 1
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// sizes returns the phase lengths per scale.
func (s Scale) sizes() (warmup, searchSteps, retrainSteps, fedRounds int) {
	if s == Full {
		return 60, 200, 400, 40
	}
	return 25, 50, 120, 12
}

// Output is one regenerated experiment artifact.
type Output struct {
	ID    string
	Title string
	// Table is set for table experiments.
	Table *metrics.Table
	// Curves is set for figure experiments (one per plotted series).
	Curves []metrics.Curve
	// Notes carries qualitative checks (who wins, orderings).
	Notes []string
}

// Render pretty-prints the output for terminals and logs.
func (o Output) Render() string {
	s := fmt.Sprintf("== %s: %s ==\n", o.ID, o.Title)
	if o.Table != nil {
		s += o.Table.String()
	}
	for _, c := range o.Curves {
		s += renderCurve(c)
	}
	for _, n := range o.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// CurvesCSV renders the output's curves as one CSV table (step column plus
// one column per curve), for plotting the figures externally.
func (o Output) CurvesCSV() string {
	if len(o.Curves) == 0 {
		return ""
	}
	t := metrics.Table{Headers: []string{"step"}}
	maxLen := 0
	for _, c := range o.Curves {
		t.Headers = append(t.Headers, c.Name)
		if c.Len() > maxLen {
			maxLen = c.Len()
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(o.Curves)+1)
		step := ""
		for _, c := range o.Curves {
			if i < c.Len() {
				step = fmt.Sprintf("%d", c.Points[i].Step)
				break
			}
		}
		row = append(row, step)
		for _, c := range o.Curves {
			if i < c.Len() {
				row = append(row, metrics.F4(c.Points[i].Value))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.CSV()
}

// renderCurve prints a compact sparkline-style summary of a curve.
func renderCurve(c metrics.Curve) string {
	if c.Len() == 0 {
		return fmt.Sprintf("%s: (empty)\n", c.Name)
	}
	vals := c.Values()
	step := len(vals) / 8
	if step < 1 {
		step = 1
	}
	s := fmt.Sprintf("%s [%d pts]:", c.Name, c.Len())
	for i := 0; i < len(vals); i += step {
		s += fmt.Sprintf(" %.3f", vals[i])
	}
	return s + fmt.Sprintf(" | last %.3f\n", c.Last())
}

// baseSearchConfig is the shared experiment configuration (CIFAR10S,
// K = 10, Table I hyperparameters at substrate scale).
func baseSearchConfig(scale Scale) search.Config {
	cfg := search.DefaultConfig()
	w, s, _, _ := scale.sizes()
	cfg.WarmupSteps = w
	cfg.SearchSteps = s
	cfg.Workers = Workers
	return cfg
}

func retrainConfig(scale Scale) search.RetrainConfig {
	cfg := search.DefaultRetrainConfig()
	_, _, r, _ := scale.sizes()
	cfg.Steps = r
	// A hotter cosine-annealed schedule than Table I's 0.025: at this
	// substrate's short horizons it is what separates good genotypes from
	// bad ones (validated in EXPERIMENTS.md).
	cfg.LR = 0.1
	cfg.CosineAnneal = true
	cfg.MinLR = 0.002
	return cfg
}

func fedConfig(scale Scale) fed.FedAvgConfig {
	cfg := fed.DefaultFedAvgConfig()
	_, _, _, r := scale.sizes()
	cfg.Rounds = r
	cfg.Workers = Workers
	return cfg
}

// svhnConfig adapts the base config to the SVHN stand-in (the paper uses
// fewer search steps there: 4000 vs 10000).
func svhnConfig(scale Scale) search.Config {
	cfg := baseSearchConfig(scale)
	cfg.Dataset = data.SVHNS()
	cfg.SearchSteps = cfg.SearchSteps * 2 / 5
	return cfg
}

// runSearchOnly runs P1+P2 and returns the live Search.
func runSearchOnly(cfg search.Config) (*search.Search, error) {
	s, err := search.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Warmup(); err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return s, nil
}

// fallbackGenotype is used when a quick-scale search has not separated ops
// yet; it keeps table rows comparable.
func fallbackGenotype(nodes int) nas.Genotype {
	edges := nas.NumEdges(nodes)
	normal := make([]nas.OpKind, edges)
	reduce := make([]nas.OpKind, edges)
	for i := range normal {
		normal[i] = nas.OpSepConv3
		reduce[i] = nas.OpMaxPool3
	}
	return nas.Genotype{Normal: normal, Reduce: reduce, Nodes: nodes}
}
