package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one experiment at a scale.
type Runner func(Scale) (Output, error)

// Registry maps experiment IDs ("fig3" … "table8") to their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3":   Fig3Warmup,
		"fig4":   Fig4Search,
		"fig5":   Fig5AlphaOnly,
		"fig6":   Fig6NonIID,
		"fig7":   Fig7AdaptiveLatency,
		"fig8":   Fig8Staleness,
		"fig9":   Fig9Convergence,
		"fig10":  Fig10ConvergenceSVHN,
		"fig11":  Fig11TransferCurves,
		"fig12":  Fig12ParticipantCount,
		"table2": Table2Centralized,
		"table3": Table3Federated,
		"table4": Table4NonIID,
		"table5": Table5SearchTime,
		"table6": Table6Participants,
		"table7": Table7Transfer,
		"table8": Table8TransferNonIID,
	}
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, scale Scale) (Output, error) {
	r, ok := Registry()[id]
	if !ok {
		return Output{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return r(scale)
}
