package experiments

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/baselines"
	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/search"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/transmission"
)

// Fig3Warmup reproduces Fig. 3: the warm-up phase training-accuracy curve
// on i.i.d. CIFAR10S (raw + 50-step moving average in the paper; we emit
// raw + scaled moving average).
func Fig3Warmup(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	s, err := search.New(cfg)
	if err != nil {
		return Output{}, err
	}
	if err := s.Warmup(); err != nil {
		return Output{}, err
	}
	raw := s.WarmupCurve
	raw.Name = "warmup-acc"
	ma := raw.MovingAverage(maWindow(raw.Len()))
	out := Output{ID: "fig3", Title: "Warm-up phase on i.i.d. CIFAR10S",
		Curves: []metrics.Curve{raw, ma}}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"converges upward: first %.3f -> tail %.3f", firstOf(raw), raw.TailMean(10)))
	return out, nil
}

// Fig4Search reproduces Fig. 4: the searching-phase curve on i.i.d. data.
func Fig4Search(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	s, err := runSearchOnly(cfg)
	if err != nil {
		return Output{}, err
	}
	raw := s.SearchCurve
	raw.Name = "search-acc"
	ma := raw.MovingAverage(maWindow(raw.Len()))
	out := Output{ID: "fig4", Title: "Searching phase on i.i.d. CIFAR10S",
		Curves: []metrics.Curve{raw, ma}}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"warmup tail %.3f -> search tail %.3f", s.WarmupCurve.TailMean(10), raw.TailMean(10)))
	return out, nil
}

// Fig5AlphaOnly reproduces Fig. 5: updating α with θ fixed fails to reach
// the jointly optimized accuracy.
func Fig5AlphaOnly(scale Scale) (Output, error) {
	joint := baseSearchConfig(scale)
	sJoint, err := runSearchOnly(joint)
	if err != nil {
		return Output{}, err
	}
	frozen := baseSearchConfig(scale)
	frozen.AlphaOnly = true
	sFrozen, err := runSearchOnly(frozen)
	if err != nil {
		return Output{}, err
	}
	jc := sJoint.SearchCurve
	jc.Name = "joint(alpha+theta)"
	fc := sFrozen.SearchCurve
	fc.Name = "alpha-only(theta fixed)"
	out := Output{ID: "fig5", Title: "Updating α with θ fixed",
		Curves: []metrics.Curve{jc, fc}}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"joint tail %.3f vs alpha-only tail %.3f (joint must win)",
		jc.TailMean(10), fc.TailMean(10)))
	return out, nil
}

// Fig6NonIID reproduces Fig. 6: the searching phase on non-i.i.d. CIFAR10S
// converges like the i.i.d. run, only slower.
func Fig6NonIID(scale Scale) (Output, error) {
	iid := baseSearchConfig(scale)
	sIID, err := runSearchOnly(iid)
	if err != nil {
		return Output{}, err
	}
	non := baseSearchConfig(scale)
	non.Partition = search.Dirichlet
	sNon, err := runSearchOnly(non)
	if err != nil {
		return Output{}, err
	}
	ic := sIID.SearchCurve
	ic.Name = "iid"
	nc := sNon.SearchCurve
	nc.Name = "non-iid(dir-0.5)"
	out := Output{ID: "fig6", Title: "Searching phase on non-i.i.d. CIFAR10S",
		Curves: []metrics.Curve{ic, nc}}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"iid tail %.3f vs non-iid tail %.3f (non-iid converges, typically slower)",
		ic.TailMean(10), nc.TailMean(10)))
	return out, nil
}

// Fig7AdaptiveLatency reproduces Fig. 7: maximal sub-model transmission
// latency per network environment for adaptive vs uniform vs random
// assignment, over the synthetic 4G/LTE traces.
func Fig7AdaptiveLatency(scale Scale) (Output, error) {
	rounds := 30
	if scale == Full {
		rounds = 120
	}
	rng := rand.New(rand.NewSource(7))
	// Sample representative sub-model sizes from a supernet + controller.
	cfg := baseSearchConfig(scale)
	s, err := search.New(cfg)
	if err != nil {
		return Output{}, err
	}
	k := cfg.K
	table := &metrics.Table{
		Title:   "Fig 7: max transmission latency (seconds, mean over rounds)",
		Headers: []string{"environment", "adaptive", "uniform", "random"},
	}
	out := Output{ID: "fig7", Title: "Adaptive transmission latency"}
	adaptiveWins := 0
	envs := nettrace.StandardEnvironments()
	for _, env := range envs {
		traces, err := env.ParticipantTraces(k, rounds, rng)
		if err != nil {
			return Output{}, err
		}
		sums := map[transmission.Policy]float64{}
		for round := 0; round < rounds; round++ {
			sizes := make([]int64, k)
			for i := 0; i < k; i++ {
				sizes[i] = s.Supernet().SubModelWireBytes(s.Controller().SampleGates(rng), cfg.Wire)
			}
			bw := make([]float64, k)
			for i := 0; i < k; i++ {
				bw[i] = traces[i].At(round)
			}
			for _, pol := range []transmission.Policy{transmission.Adaptive, transmission.Uniform, transmission.Random} {
				a, err := transmission.Assign(pol, sizes, bw, rng)
				if err != nil {
					return Output{}, err
				}
				sums[pol] += a.Max()
			}
		}
		n := float64(rounds)
		ad, un, ra := sums[transmission.Adaptive]/n, sums[transmission.Uniform]/n, sums[transmission.Random]/n
		table.AddRow(env.Name, metrics.F4(ad), metrics.F4(un), metrics.F4(ra))
		if ad <= un && ad <= ra {
			adaptiveWins++
		}
	}
	out.Table = table
	out.Notes = append(out.Notes, fmt.Sprintf(
		"adaptive has the lowest max latency in %d/%d environments", adaptiveWins, len(envs)))
	return out, nil
}

// Fig8Staleness reproduces Fig. 8: searching-phase curves under 70%
// staleness for delay-compensated vs use vs throw, plus the staleness-free
// run; all four share one warmed-up supernet.
func Fig8Staleness(scale Scale) (Output, error) {
	base := baseSearchConfig(scale)
	warm, err := search.New(base)
	if err != nil {
		return Output{}, err
	}
	if err := warm.Warmup(); err != nil {
		return Output{}, err
	}
	theta := warm.SnapshotTheta()

	type variant struct {
		name     string
		schedule staleness.Schedule
		strategy staleness.Strategy
	}
	variants := []variant{
		{"no-staleness", staleness.NoStaleness(), staleness.Hard},
		{"dc(70%)", staleness.Severe(), staleness.DC},
		{"use(70%)", staleness.Severe(), staleness.Use},
		{"throw(70%)", staleness.Severe(), staleness.Throw},
	}
	out := Output{ID: "fig8", Title: "Searching under 70% staleness (shared warm-up)"}
	tails := map[string]float64{}
	for _, v := range variants {
		cfg := base
		cfg.WarmupSteps = 0
		cfg.Staleness = v.schedule
		cfg.Strategy = v.strategy
		s, err := search.New(cfg)
		if err != nil {
			return Output{}, err
		}
		if err := s.RestoreTheta(theta); err != nil {
			return Output{}, err
		}
		if err := s.Run(); err != nil {
			return Output{}, err
		}
		c := s.SearchCurve
		c.Name = v.name
		out.Curves = append(out.Curves, c)
		tails[v.name] = c.TailMean(10)
	}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"tails: none %.3f | dc %.3f | use %.3f | throw %.3f (paper: none >= dc > use > throw)",
		tails["no-staleness"], tails["dc(70%)"], tails["use(70%)"], tails["throw(70%)"]))
	return out, nil
}

// convergenceFig is shared by Figs. 9–11: FedAvg curves of our searched
// model vs the predefined ResNet152-like vs FedNAS's searched model on a
// non-i.i.d. dataset.
func convergenceFig(id, title string, scale Scale, cfg search.Config, transferTo string) (Output, error) {
	// Search our genotype (on cfg's dataset).
	s, err := runSearchOnly(cfg)
	if err != nil {
		return Output{}, err
	}
	ourGeno := s.Derive()

	// FedNAS genotype on the same data.
	fednasGeno, err := fedNASGenotype(cfg, scale)
	if err != nil {
		return Output{}, err
	}

	// Retraining target: same dataset, or the transfer dataset (Fig. 11).
	ds := s.Dataset()
	netCfg := cfg.Net
	if transferTo != "" {
		spec := data.CIFAR100S()
		ds, err = data.Generate(spec)
		if err != nil {
			return Output{}, err
		}
		netCfg.NumClasses = spec.NumClasses
		netCfg.InChannels = spec.Channels
	}

	fcfg := fedConfig(scale)
	out := Output{ID: id, Title: title}

	// Ours.
	_, oursFed, err := search.RetrainFederated(ds, netCfg, ourGeno,
		search.Dirichlet, cfg.DirichletAlpha, cfg.K, fcfg, cfg.Seed+71)
	if err != nil {
		return Output{}, err
	}
	oursTrain := oursFed.TrainAcc
	oursTrain.Name = "ours-train"
	oursVal := oursFed.ValAcc
	oursVal.Name = "ours-val"

	// FedNAS's model.
	_, fnFed, err := search.RetrainFederated(ds, netCfg, fednasGeno,
		search.Dirichlet, cfg.DirichletAlpha, cfg.K, fcfg, cfg.Seed+72)
	if err != nil {
		return Output{}, err
	}
	fnVal := fnFed.ValAcc
	fnVal.Name = "fednas-val"

	// Predefined big model.
	bigFed, err := fedAvgFixedBig(ds, cfg, fcfg)
	if err != nil {
		return Output{}, err
	}
	bigTrain := bigFed.TrainAcc
	bigTrain.Name = "resnet152like-train"
	bigVal := bigFed.ValAcc
	bigVal.Name = "resnet152like-val"

	out.Curves = []metrics.Curve{oursTrain, oursVal, fnVal, bigTrain, bigVal}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"final val: ours %.3f | fednas %.3f | predefined %.3f",
		oursVal.Last(), fnVal.Last(), bigVal.Last()))
	return out, nil
}

// Fig9Convergence reproduces Fig. 9 (non-i.i.d. CIFAR10S).
func Fig9Convergence(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	cfg.Partition = search.Dirichlet
	return convergenceFig("fig9", "Accuracy vs rounds on non-i.i.d. CIFAR10S", scale, cfg, "")
}

// Fig10ConvergenceSVHN reproduces Fig. 10 (non-i.i.d. SVHNS).
func Fig10ConvergenceSVHN(scale Scale) (Output, error) {
	cfg := svhnConfig(scale)
	cfg.Partition = search.Dirichlet
	return convergenceFig("fig10", "Accuracy vs rounds on non-i.i.d. SVHNS", scale, cfg, "")
}

// Fig11TransferCurves reproduces Fig. 11: models searched on CIFAR10S
// transferred to non-i.i.d. CIFAR100S; the predefined model overfits
// (higher train accuracy, lower validation accuracy).
func Fig11TransferCurves(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	cfg.Partition = search.Dirichlet
	return convergenceFig("fig11", "Transfer to non-i.i.d. CIFAR100S", scale, cfg, "cifar100s")
}

// Fig12ParticipantCount reproduces Fig. 12: searching-phase curves for
// 10/20/50 participants (Quick uses 4/8/12 to stay CI-sized).
func Fig12ParticipantCount(scale Scale) (Output, error) {
	ks := []int{4, 8, 12}
	if scale == Full {
		ks = []int{10, 20, 50}
	}
	out := Output{ID: "fig12", Title: "Searching phase vs number of participants"}
	var lastTails []float64
	for _, k := range ks {
		cfg := baseSearchConfig(scale)
		cfg.K = k
		s, err := runSearchOnly(cfg)
		if err != nil {
			return Output{}, err
		}
		c := s.SearchCurve
		c.Name = fmt.Sprintf("K=%d", k)
		out.Curves = append(out.Curves, c)
		lastTails = append(lastTails, c.TailMean(10))
	}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"tail accuracies by K %v: %v (more participants should not hurt)", ks, lastTails))
	return out, nil
}

// fedAvgFixedBig trains the ResNet152-like predefined model with FedAvg on
// ds under cfg's partition settings.
func fedAvgFixedBig(ds *data.Dataset, cfg search.Config, fcfg fed.FedAvgConfig) (fed.FedAvgResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 81))
	model := baselines.NewResNetLike(rng, ds.Spec.Channels, ds.Spec.NumClasses)
	parts, err := participantsFor(ds, cfg.Partition, cfg.DirichletAlpha, cfg.K, cfg.Seed+82)
	if err != nil {
		return fed.FedAvgResult{}, err
	}
	fcfg.NewReplica = func() fed.Model {
		return baselines.NewResNetLike(rand.New(rand.NewSource(1)), ds.Spec.Channels, ds.Spec.NumClasses)
	}
	return fed.FedAvg(model, ds, parts, fcfg)
}

func firstOf(c metrics.Curve) float64 {
	if c.Len() == 0 {
		return 0
	}
	return c.Points[0].Value
}

func maWindow(n int) int {
	w := n / 5
	if w < 2 {
		w = 2
	}
	if w > 50 {
		w = 50 // the paper's window
	}
	return w
}
