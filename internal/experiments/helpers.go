package experiments

import (
	"math/rand"

	"fedrlnas/internal/baselines"
	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/search"
)

// participantsFor builds a participant population over ds matching the
// search config's partition settings.
func participantsFor(ds *data.Dataset, kind search.PartitionKind, alpha float64, k int, seed int64) ([]*fed.Participant, error) {
	rng := rand.New(rand.NewSource(seed))
	var part data.Partition
	var err error
	switch kind {
	case search.Dirichlet:
		part, err = data.DirichletPartition(ds.TrainLabels, k, alpha, rng)
	default:
		part, err = data.IIDPartition(ds.NumTrain(), k, rng)
	}
	if err != nil {
		return nil, err
	}
	return fed.BuildParticipants(ds, part, seed+1)
}

// partitionFor builds the raw partition (for baselines that construct their
// own participants).
func partitionFor(ds *data.Dataset, kind search.PartitionKind, alpha float64, k int, seed int64) (data.Partition, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case search.Dirichlet:
		return data.DirichletPartition(ds.TrainLabels, k, alpha, rng)
	default:
		return data.IIDPartition(ds.NumTrain(), k, rng)
	}
}

// fedNASGenotype runs the FedNAS baseline search on cfg's dataset and
// partition, returning its derived genotype.
func fedNASGenotype(cfg search.Config, scale Scale) (nas.Genotype, error) {
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return nas.Genotype{}, err
	}
	part, err := partitionFor(ds, cfg.Partition, cfg.DirichletAlpha, cfg.K, cfg.Seed+5)
	if err != nil {
		return nas.Genotype{}, err
	}
	fcfg := baselines.DefaultFedNASConfig(cfg.Net, cfg.K)
	fcfg.Workers = Workers
	_, s, _, _ := scale.sizes()
	// FedNAS ships the whole supernet each round; at the same round budget
	// it is far more expensive, so the paper runs it for fewer rounds on
	// the same wall-clock budget. We use half the rounds.
	fcfg.Rounds = s / 2
	if fcfg.Rounds < 5 {
		fcfg.Rounds = 5
	}
	fcfg.BatchSize = cfg.BatchSize
	fcfg.Seed = cfg.Seed + 6
	res, err := baselines.FedNAS(ds, part, fcfg)
	if err != nil {
		return nas.Genotype{}, err
	}
	return res.Genotype, nil
}
