package experiments

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/baselines"
	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/search"
	"fedrlnas/internal/staleness"
)

// centralRow retrains a genotype centrally and renders one table row.
func centralRow(t *metrics.Table, name string, ds *data.Dataset, netCfg nas.Config,
	geno nas.Genotype, rcfg search.RetrainConfig, seed int64, extra ...string) error {
	res, err := search.RetrainCentralized(ds, netCfg, geno, rcfg, seed)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	row := []string{name, metrics.Pct(res.TestErr), fmt.Sprintf("%d", res.ParamCount)}
	row = append(row, extra...)
	t.AddRow(row...)
	return nil
}

// Table2Centralized reproduces Table II: centralized evaluation (P3
// centralized) of models found by DARTS 1st/2nd order, ENAS, and ours —
// plus the delay-compensated section (use/throw/dc at 70% staleness, dc at
// 10%).
func Table2Centralized(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	rcfg := retrainConfig(scale)
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return Output{}, err
	}
	t := &metrics.Table{
		Title:   "Table II: centralized evaluation on i.i.d. CIFAR10S",
		Headers: []string{"method", "error(%)", "params", "strategy", "FL", "NAS"},
	}
	out := Output{ID: "table2", Title: "Centralized evaluation accuracies"}

	_, steps, _, _ := scale.sizes()

	// DARTS first order.
	d1cfg := baselines.DefaultDARTSConfig(cfg.Net)
	d1cfg.Steps = steps
	d1cfg.BatchSize = cfg.BatchSize
	d1, err := baselines.DARTS(ds, d1cfg)
	if err != nil {
		return Output{}, err
	}
	if err := centralRow(t, "darts-1st", ds, cfg.Net, d1.Genotype, rcfg, 31, "grad", "", "x"); err != nil {
		return Output{}, err
	}
	// DARTS second order (fewer steps: each costs ~4 passes).
	d2cfg := d1cfg
	d2cfg.SecondOrder = true
	d2cfg.Steps = steps / 2
	if d2cfg.Steps < 3 {
		d2cfg.Steps = 3
	}
	d2, err := baselines.DARTS(ds, d2cfg)
	if err != nil {
		return Output{}, err
	}
	if err := centralRow(t, "darts-2nd", ds, cfg.Net, d2.Genotype, rcfg, 32, "grad", "", "x"); err != nil {
		return Output{}, err
	}
	// ENAS.
	ecfg := baselines.DefaultENASConfig(cfg.Net)
	ecfg.Steps = steps
	ecfg.BatchSize = cfg.BatchSize
	en, err := baselines.ENAS(ds, ecfg)
	if err != nil {
		return Output{}, err
	}
	if err := centralRow(t, "enas", ds, cfg.Net, en.Genotype, rcfg, 33, "RL", "", "x"); err != nil {
		return Output{}, err
	}
	// Ours (hard sync).
	s, err := runSearchOnly(cfg)
	if err != nil {
		return Output{}, err
	}
	ourGeno := s.Derive()
	if err := centralRow(t, "ours", ds, cfg.Net, ourGeno, rcfg, 34, "RL", "x", "x"); err != nil {
		return Output{}, err
	}

	// Delay-compensated section.
	type row struct {
		name     string
		schedule staleness.Schedule
		strategy staleness.Strategy
	}
	for i, r := range []row{
		{"use(70%)", staleness.Severe(), staleness.Use},
		{"throw(70%)", staleness.Severe(), staleness.Throw},
		{"ours-dc(70%)", staleness.Severe(), staleness.DC},
		{"ours-dc(10%)", staleness.Slight(), staleness.DC},
	} {
		scfg := cfg
		scfg.Staleness = r.schedule
		scfg.Strategy = r.strategy
		scfg.Seed = cfg.Seed + 3 // shared across the section for comparability
		ss, err := runSearchOnly(scfg)
		if err != nil {
			return Output{}, err
		}
		if err := centralRow(t, r.name, ds, cfg.Net, ss.Derive(), rcfg, 40+int64(i), "RL", "x", "x"); err != nil {
			return Output{}, err
		}
	}
	out.Table = t
	out.Notes = append(out.Notes,
		"expected shape: ours competitive with darts/enas; dc beats use beats throw under 70% staleness")
	return out, nil
}

// Table3Federated reproduces Table III: federated evaluation (P3 FL) on
// i.i.d. CIFAR10S — FedAvg with a predefined model, EvoFedNAS big/small,
// ours, and ours at 10% staleness.
func Table3Federated(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	fcfg := fedConfig(scale)
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return Output{}, err
	}
	t := &metrics.Table{
		Title:   "Table III: federated evaluation on i.i.d. CIFAR10S",
		Headers: []string{"method", "error(%)", "params", "strategy"},
	}
	out := Output{ID: "table3", Title: "Federated evaluation accuracies"}

	// FedAvg with a predefined model.
	parts, err := participantsFor(ds, cfg.Partition, cfg.DirichletAlpha, cfg.K, 51)
	if err != nil {
		return Output{}, err
	}
	rng := rand.New(rand.NewSource(52))
	fixed := baselines.NewSmallCNN(rng, ds.Spec.Channels, ds.Spec.NumClasses)
	fixedCfg := fcfg
	fixedCfg.NewReplica = func() fed.Model {
		return baselines.NewSmallCNN(rand.New(rand.NewSource(52)), ds.Spec.Channels, ds.Spec.NumClasses)
	}
	fixedRes, err := fed.FedAvg(fixed, ds, parts, fixedCfg)
	if err != nil {
		return Output{}, err
	}
	t.AddRow("fedavg(predefined)", metrics.Pct(1-fixedRes.FinalAcc),
		fmt.Sprintf("%d", nn.ParamCount(fixed.Params())), "hand")

	// EvoFedNAS big and small.
	for _, variant := range []baselines.EvoVariant{baselines.EvoBig, baselines.EvoSmall} {
		netV := variant.ApplyVariant(cfg.Net)
		part, err := partitionFor(ds, cfg.Partition, cfg.DirichletAlpha, cfg.K, 53)
		if err != nil {
			return Output{}, err
		}
		ecfg := baselines.DefaultEvoConfig(netV, cfg.K)
		ecfg.Workers = Workers
		_, steps, _, _ := scale.sizes()
		ecfg.Rounds = steps
		ecfg.BatchSize = cfg.BatchSize
		evoRes, err := baselines.EvoFedNAS(ds, part, ecfg)
		if err != nil {
			return Output{}, err
		}
		res, _, err := search.RetrainFederated(ds, netV, evoRes.Genotype,
			cfg.Partition, cfg.DirichletAlpha, cfg.K, fcfg, 54)
		if err != nil {
			return Output{}, err
		}
		t.AddRow(variant.String(), metrics.Pct(res.TestErr),
			fmt.Sprintf("%d", res.ParamCount), "evol")
	}

	// Ours + ours at 10% staleness.
	for _, v := range []struct {
		name     string
		schedule staleness.Schedule
		strategy staleness.Strategy
	}{
		{"ours", staleness.NoStaleness(), staleness.Hard},
		{"ours-dc(10%)", staleness.Slight(), staleness.DC},
	} {
		scfg := cfg
		scfg.Staleness = v.schedule
		scfg.Strategy = v.strategy
		s, err := runSearchOnly(scfg)
		if err != nil {
			return Output{}, err
		}
		res, _, err := search.RetrainFederated(ds, cfg.Net, s.Derive(),
			cfg.Partition, cfg.DirichletAlpha, cfg.K, fcfg, 55)
		if err != nil {
			return Output{}, err
		}
		t.AddRow(v.name, metrics.Pct(res.TestErr), fmt.Sprintf("%d", res.ParamCount), "RL")
	}
	out.Table = t
	out.Notes = append(out.Notes,
		"expected shape: predefined model worst; ours ~= evofednas-big with smaller params; evofednas-small worse")
	return out, nil
}

// Table4NonIID reproduces Table IV: federated evaluation on non-i.i.d.
// CIFAR10S (FedAvg ResNet152-like, FedNAS, EvoFedNAS big/small, ours) and
// non-i.i.d. SVHNS (FedAvg, ours).
func Table4NonIID(scale Scale) (Output, error) {
	out := Output{ID: "table4", Title: "Federated evaluation on non-i.i.d. datasets"}
	t := &metrics.Table{
		Title:   "Table IV: non-i.i.d. federated evaluation",
		Headers: []string{"dataset", "method", "error(%)", "params", "strategy"},
	}
	fcfg := fedConfig(scale)

	runDataset := func(label string, cfg search.Config, includeBaselines bool) error {
		cfg.Partition = search.Dirichlet
		ds, err := data.Generate(cfg.Dataset)
		if err != nil {
			return err
		}
		// FedAvg with the ResNet152-like predefined model.
		bigRes, err := fedAvgFixedBig(ds, cfg, fcfg)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(61))
		bigParams := nn.ParamCount(baselines.NewResNetLike(rng, ds.Spec.Channels, ds.Spec.NumClasses).Params())
		t.AddRow(label, "fedavg(resnet152like)", metrics.Pct(1-bigRes.FinalAcc),
			fmt.Sprintf("%d", bigParams), "hand")

		if includeBaselines {
			// FedNAS.
			fng, err := fedNASGenotype(cfg, scale)
			if err != nil {
				return err
			}
			fnRes, _, err := search.RetrainFederated(ds, cfg.Net, fng,
				cfg.Partition, cfg.DirichletAlpha, cfg.K, fcfg, 62)
			if err != nil {
				return err
			}
			t.AddRow(label, "fednas", metrics.Pct(fnRes.TestErr),
				fmt.Sprintf("%d", fnRes.ParamCount), "grad")

			// EvoFedNAS big/small.
			for _, variant := range []baselines.EvoVariant{baselines.EvoBig, baselines.EvoSmall} {
				netV := variant.ApplyVariant(cfg.Net)
				part, err := partitionFor(ds, cfg.Partition, cfg.DirichletAlpha, cfg.K, 63)
				if err != nil {
					return err
				}
				ecfg := baselines.DefaultEvoConfig(netV, cfg.K)
				ecfg.Workers = Workers
				_, steps, _, _ := scale.sizes()
				ecfg.Rounds = steps
				ecfg.BatchSize = cfg.BatchSize
				evoRes, err := baselines.EvoFedNAS(ds, part, ecfg)
				if err != nil {
					return err
				}
				res, _, err := search.RetrainFederated(ds, netV, evoRes.Genotype,
					cfg.Partition, cfg.DirichletAlpha, cfg.K, fcfg, 64)
				if err != nil {
					return err
				}
				t.AddRow(label, variant.String(), metrics.Pct(res.TestErr),
					fmt.Sprintf("%d", res.ParamCount), "evol")
			}
		}

		// Ours.
		s, err := runSearchOnly(cfg)
		if err != nil {
			return err
		}
		res, _, err := search.RetrainFederated(ds, cfg.Net, s.Derive(),
			cfg.Partition, cfg.DirichletAlpha, cfg.K, fcfg, 65)
		if err != nil {
			return err
		}
		t.AddRow(label, "ours", metrics.Pct(res.TestErr),
			fmt.Sprintf("%d", res.ParamCount), "RL")
		return nil
	}

	if err := runDataset("cifar10s", baseSearchConfig(scale), true); err != nil {
		return Output{}, err
	}
	if err := runDataset("svhns", svhnConfig(scale), false); err != nil {
		return Output{}, err
	}
	out.Table = t
	out.Notes = append(out.Notes,
		"expected shape: searched models beat the predefined big model on non-i.i.d. data with far fewer params")
	return out, nil
}

// Table5SearchTime reproduces Table V: virtual search time and shipped
// sub-net size for FedNAS, EvoFedNAS, and ours on fast (1080Ti-class) and
// slow (TX2-class, 4x) devices.
func Table5SearchTime(scale Scale) (Output, error) {
	cfg := baseSearchConfig(scale)
	ds, err := data.Generate(cfg.Dataset)
	if err != nil {
		return Output{}, err
	}
	t := &metrics.Table{
		Title:   "Table V: search time and sub-net size",
		Headers: []string{"method", "search-time(h)", "payload(KB/round)"},
	}
	out := Output{ID: "table5", Title: "Search time"}
	_, steps, _, _ := scale.sizes()

	// FedNAS (ships the supernet).
	part, err := partitionFor(ds, cfg.Partition, cfg.DirichletAlpha, cfg.K, 71)
	if err != nil {
		return Output{}, err
	}
	fncfg := baselines.DefaultFedNASConfig(cfg.Net, cfg.K)
	fncfg.Workers = Workers
	fncfg.Rounds = steps
	fncfg.BatchSize = cfg.BatchSize
	fn, err := baselines.FedNAS(ds, part, fncfg)
	if err != nil {
		return Output{}, err
	}
	t.AddRow("fednas", hours(fn.SearchSeconds), kb(fn.PayloadBytesPerRound))

	// EvoFedNAS (big space; the paper reports 16.1 h, the slowest).
	ecfg := baselines.DefaultEvoConfig(baselines.EvoBig.ApplyVariant(cfg.Net), cfg.K)
	ecfg.Workers = Workers
	ecfg.Rounds = steps * 2 // evolution needs more rounds to converge
	ecfg.BatchSize = cfg.BatchSize
	evo, err := baselines.EvoFedNAS(ds, part, ecfg)
	if err != nil {
		return Output{}, err
	}
	t.AddRow("evofednas", hours(evo.SearchSeconds), kb(evo.PayloadBytesPerRound))

	// Ours on fast and slow devices.
	for _, dev := range []struct {
		name   string
		factor float64
	}{{"ours(1080ti)", 1}, {"ours(tx2)", 4}} {
		s, err := search.New(cfg)
		if err != nil {
			return Output{}, err
		}
		if err := s.SetSpeedFactors(dev.factor); err != nil {
			return Output{}, err
		}
		if err := s.Warmup(); err != nil {
			return Output{}, err
		}
		if err := s.Run(); err != nil {
			return Output{}, err
		}
		t.AddRow(dev.name, hours(s.TotalSeconds()), kb(s.MeanSubModelBytes()))
	}
	out.Table = t
	out.Notes = append(out.Notes,
		"expected shape: evofednas slowest; ours fastest with ~N-times smaller payload than fednas; tx2 ~4x 1080ti")
	return out, nil
}

// Table6Participants reproduces Table VI: best testing accuracy of searched
// models across participant counts.
func Table6Participants(scale Scale) (Output, error) {
	ks := []int{4, 8, 12}
	if scale == Full {
		ks = []int{10, 20, 50}
	}
	t := &metrics.Table{
		Title:   "Table VI: testing accuracy vs number of participants",
		Headers: []string{"K", "error(%)", "params"},
	}
	out := Output{ID: "table6", Title: "Impact of participant count"}
	rcfg := retrainConfig(scale)
	for _, k := range ks {
		cfg := baseSearchConfig(scale)
		cfg.K = k
		s, err := runSearchOnly(cfg)
		if err != nil {
			return Output{}, err
		}
		res, err := search.RetrainCentralized(s.Dataset(), cfg.Net, s.Derive(), rcfg, 80+int64(k))
		if err != nil {
			return Output{}, err
		}
		t.AddRow(fmt.Sprintf("%d", k), metrics.Pct(res.TestErr), fmt.Sprintf("%d", res.ParamCount))
	}
	out.Table = t
	out.Notes = append(out.Notes,
		"expected shape: accuracy roughly flat across K (paper: 'almost the same accuracy')")
	return out, nil
}

// transferTable is shared by Tables VII and VIII: search on CIFAR10S,
// retrain the genotype on CIFAR100S, against a model searched directly on
// CIFAR100S.
func transferTable(id, title string, scale Scale, kind search.PartitionKind) (Output, error) {
	out := Output{ID: id, Title: title}
	t := &metrics.Table{
		Title:   title,
		Headers: []string{"method", "error(%)", "params"},
	}
	rcfg := retrainConfig(scale)

	// Search on CIFAR10S.
	src := baseSearchConfig(scale)
	src.Partition = kind
	s, err := runSearchOnly(src)
	if err != nil {
		return Output{}, err
	}
	geno := s.Derive()

	// Target dataset and net.
	targetSpec := data.CIFAR100S()
	target, err := data.Generate(targetSpec)
	if err != nil {
		return Output{}, err
	}
	netCfg := src.Net
	netCfg.NumClasses = targetSpec.NumClasses

	// Transferred genotype.
	trans, err := search.RetrainCentralized(target, netCfg, geno, rcfg, 91)
	if err != nil {
		return Output{}, err
	}
	t.AddRow("ours(transfer c10->c100)", metrics.Pct(trans.TestErr), fmt.Sprintf("%d", trans.ParamCount))

	// Searched directly on the target.
	direct := baseSearchConfig(scale)
	direct.Partition = kind
	direct.Dataset = targetSpec
	direct.Net.NumClasses = targetSpec.NumClasses
	sd, err := runSearchOnly(direct)
	if err != nil {
		return Output{}, err
	}
	dres, err := search.RetrainCentralized(target, netCfg, sd.Derive(), rcfg, 92)
	if err != nil {
		return Output{}, err
	}
	t.AddRow("ours(searched on c100)", metrics.Pct(dres.TestErr), fmt.Sprintf("%d", dres.ParamCount))

	// Random-architecture control.
	randGeno := randomGenotype(rand.New(rand.NewSource(93)), src.Net)
	rres, err := search.RetrainCentralized(target, netCfg, randGeno, rcfg, 94)
	if err != nil {
		return Output{}, err
	}
	t.AddRow("random-arch", metrics.Pct(rres.TestErr), fmt.Sprintf("%d", rres.ParamCount))

	out.Table = t
	out.Notes = append(out.Notes,
		"expected shape: transferred genotype competitive with direct search (paper: 'satisfying transferability')")
	return out, nil
}

// Table7Transfer reproduces Table VII (i.i.d. transfer).
func Table7Transfer(scale Scale) (Output, error) {
	return transferTable("table7", "Table VII: transfer i.i.d. CIFAR10S -> CIFAR100S", scale, search.IID)
}

// Table8TransferNonIID reproduces Table VIII (non-i.i.d. transfer).
func Table8TransferNonIID(scale Scale) (Output, error) {
	return transferTable("table8", "Table VIII: transfer non-i.i.d. CIFAR10S -> CIFAR100S", scale, search.Dirichlet)
}

func randomGenotype(rng *rand.Rand, net nas.Config) nas.Genotype {
	edges := nas.NumEdges(net.Nodes)
	g := nas.Genotype{Nodes: net.Nodes}
	for i := 0; i < edges; i++ {
		g.Normal = append(g.Normal, net.Candidates[rng.Intn(len(net.Candidates))])
		g.Reduce = append(g.Reduce, net.Candidates[rng.Intn(len(net.Candidates))])
	}
	return g
}

func hours(sec float64) string { return fmt.Sprintf("%.3f", sec/3600) }

func kb(b int64) string { return fmt.Sprintf("%.1f", float64(b)/1024) }
