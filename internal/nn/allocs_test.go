package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedrlnas/internal/tensor"
)

// The conv hot path must not allocate at all once warm: column scratch,
// GEMM workspaces, the output tensor, and the input-gradient tensor are all
// per-layer persistent buffers, reused whenever shapes repeat (the package
// doc's buffer-ownership contract).

func TestConvForwardAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, defeating scratch reuse")
	}
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", rng, 8, 8, 3, ConvOpts{Pad: 1})
	x := tensor.Randn(rng, 1, 4, 8, 6, 6)
	c.Forward(x) // warm the scratch buffers
	allocs := testing.AllocsPerRun(20, func() {
		_ = c.Forward(x)
	})
	if allocs > 0 {
		t.Fatalf("Conv2D.Forward allocates %.0f objects/call, want 0 (buffers not reused?)", allocs)
	}
}

func TestConvBackwardAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, defeating scratch reuse")
	}
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D("c", rng, 8, 8, 3, ConvOpts{Pad: 1})
	x := tensor.Randn(rng, 1, 4, 8, 6, 6)
	out := c.Forward(x)
	grad := tensor.Full(1, out.Shape()...)
	c.Backward(grad) // warm the scratch buffers
	allocs := testing.AllocsPerRun(20, func() {
		_ = c.Backward(grad)
	})
	if allocs > 0 {
		t.Fatalf("Conv2D.Backward allocates %.0f objects/call, want 0 (buffers not reused?)", allocs)
	}
}

func TestConvScratchReuseKeepsResults(t *testing.T) {
	// Reusing scratch across differently-shaped inputs must not leak state:
	// run big, then small, then compare the small result against a fresh
	// layer with identical weights.
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("c", rng, 3, 5, 3, ConvOpts{Pad: 1, Bias: true})
	fresh := NewConv2D("f", rand.New(rand.NewSource(99)), 3, 5, 3, ConvOpts{Pad: 1, Bias: true})
	fresh.weight.Value.CopyFrom(c.weight.Value)
	fresh.bias.Value.CopyFrom(c.bias.Value)

	big := tensor.Randn(rng, 4, 2, 3, 12, 12)
	small := tensor.Randn(rng, 5, 2, 3, 6, 6)
	_ = c.Forward(big) // grows scratch past what small needs
	got := c.Forward(small)
	want := fresh.Forward(small)
	if !got.AllClose(want, 0) {
		t.Fatal("conv output after scratch reuse differs from fresh layer")
	}

	gradBig := tensor.Full(1, c.Forward(big).Shape()...)
	_ = c.Backward(gradBig)
	_ = c.Forward(small)
	ZeroGrads(c.Params())
	gradSmall := tensor.Full(1, got.Shape()...)
	gx := c.Backward(gradSmall)
	_ = fresh.Forward(small)
	ZeroGrads(fresh.Params())
	wx := fresh.Backward(gradSmall)
	if !gx.AllClose(wx, 0) {
		t.Fatal("conv input gradient after scratch reuse differs from fresh layer")
	}
	if !c.weight.Grad.AllClose(fresh.weight.Grad, 0) {
		t.Fatal("conv weight gradient after scratch reuse differs from fresh layer")
	}
}

func TestBatchNormStatCaptureReplayMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := NewBatchNorm2D("seq", 3)
	rep := NewBatchNorm2D("rep", 3)

	batches := make([]*tensor.Tensor, 4)
	for i := range batches {
		batches[i] = tensor.Randn(rng, 1, 2, 3, 4, 4)
	}

	// Sequential reference: plain training forwards update running stats.
	for _, x := range batches {
		_ = seq.Forward(x)
	}

	// Capture + replay: forwards log stats, ApplyStats replays them.
	rep.SetStatCapture(true)
	var outCap []*tensor.Tensor
	for _, x := range batches {
		// Clone: Forward's return is the layer's reused buffer (see the
		// package doc's ownership contract) and the next call overwrites it.
		outCap = append(outCap, rep.Forward(x).Clone())
	}
	stats := rep.DrainCapturedStats()
	if len(stats) != len(batches) {
		t.Fatalf("captured %d stat records, want %d", len(stats), len(batches))
	}
	rep.SetStatCapture(false)
	for _, s := range stats {
		rep.ApplyStats(s)
	}

	for ch := 0; ch < 3; ch++ {
		if seq.runningMean[ch] != rep.runningMean[ch] || seq.runningVar[ch] != rep.runningVar[ch] {
			t.Fatalf("channel %d: replayed running stats (%v,%v) != sequential (%v,%v)",
				ch, rep.runningMean[ch], rep.runningVar[ch], seq.runningMean[ch], seq.runningVar[ch])
		}
	}
	// The capturing forward's output must be identical to a plain training
	// forward (batch stats do not depend on running stats).
	seq2 := NewBatchNorm2D("seq2", 3)
	for i, x := range batches {
		if !seq2.Forward(x).AllClose(outCap[i], 0) {
			t.Fatalf("batch %d: capture-mode forward output differs from plain training forward", i)
		}
	}
}

func TestBatchNormCaptureLeavesRunningStatsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm2D("bn", 2)
	bn.SetStatCapture(true)
	_ = bn.Forward(tensor.Randn(rng, 1, 3, 2, 4, 4))
	for ch := 0; ch < 2; ch++ {
		if bn.runningMean[ch] != 0 || bn.runningVar[ch] != 1 {
			t.Fatalf("capture-mode forward mutated running stats: mean=%v var=%v",
				bn.runningMean, bn.runningVar)
		}
	}
	if n := len(bn.DrainCapturedStats()); n != 1 {
		t.Fatalf("drained %d records, want 1", n)
	}
	if n := len(bn.DrainCapturedStats()); n != 0 {
		t.Fatalf("second drain returned %d records, want 0", n)
	}
}

func TestCopyStatsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewBatchNorm2D("src", 2)
	for i := 0; i < 3; i++ {
		_ = src.Forward(tensor.Randn(rng, 1, 2, 2, 3, 3))
	}
	dst := NewBatchNorm2D("dst", 2)
	dst.CopyStatsFrom(src)
	for ch := 0; ch < 2; ch++ {
		if dst.runningMean[ch] != src.runningMean[ch] || dst.runningVar[ch] != src.runningVar[ch] {
			t.Fatal("CopyStatsFrom did not copy running statistics")
		}
	}
	if math.IsNaN(dst.runningVar[0]) {
		t.Fatal("copied running variance is NaN")
	}
}

func TestCollectBatchNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sep := NewSepConv("sep", rng, 4, 3, 1)       // 1 BN
	block := NewBasicBlock("blk", rng, 4)        // 2 BNs inside a Residual
	pre := NewReLUConvBN("pre", rng, 4, 4, 1, 1) // 1 BN
	bns := CollectBatchNorms(sep, block, pre)
	if len(bns) != 4 {
		t.Fatalf("collected %d batch norms, want 4", len(bns))
	}
	// Deterministic, structure-aligned order: two identical trees must give
	// index-aligned lists.
	bns2 := CollectBatchNorms(NewSepConv("sep", rand.New(rand.NewSource(7)), 4, 3, 1))
	if len(bns2) != 1 || bns2[0].C != bns[0].C {
		t.Fatal("CollectBatchNorms order not structure-aligned")
	}
}
