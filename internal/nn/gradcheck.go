package nn

import (
	"fmt"
	"math"

	"fedrlnas/internal/tensor"
)

// GradCheckResult reports the worst relative error found by CheckGradients.
type GradCheckResult struct {
	MaxRelErr float64
	Where     string
}

// CheckGradients verifies a module's analytic gradients against central
// finite differences of the scalar loss L(out) = sum(out ⊙ seed), where seed
// is a fixed random-like projection. It checks both the input gradient and
// every parameter gradient. eps is the finite-difference step.
//
// Modules with data-dependent branching at the probe point (e.g. max pool
// ties, ReLU at exactly zero) can show spurious error; callers should use
// smooth probe inputs.
func CheckGradients(m Module, x *tensor.Tensor, eps float64) (GradCheckResult, error) {
	seedFor := func(out *tensor.Tensor) *tensor.Tensor {
		s := tensor.New(out.Shape()...)
		d := s.Data()
		for i := range d {
			// Deterministic pseudo-random projection in [-0.5, 0.5).
			d[i] = math.Mod(float64(i)*0.7390851332151607, 1.0) - 0.5
		}
		return s
	}
	loss := func(out *tensor.Tensor, seed *tensor.Tensor) float64 {
		return out.Dot(seed)
	}

	// Analytic pass.
	ZeroGrads(m.Params())
	out := m.Forward(x.Clone())
	seed := seedFor(out)
	gradX := m.Backward(seed.Clone())

	res := GradCheckResult{}
	update := func(analytic, numeric float64, where string) {
		denom := math.Max(1e-6, math.Abs(analytic)+math.Abs(numeric))
		rel := math.Abs(analytic-numeric) / denom
		if math.Abs(analytic-numeric) < 1e-9 {
			rel = 0
		}
		if rel > res.MaxRelErr {
			res.MaxRelErr = rel
			res.Where = where
		}
	}

	// Numeric input gradient.
	xd := x.Data()
	for i := range xd {
		orig := xd[i]
		xd[i] = orig + eps
		up := loss(m.Forward(x.Clone()), seed)
		xd[i] = orig - eps
		down := loss(m.Forward(x.Clone()), seed)
		xd[i] = orig
		update(gradX.Data()[i], (up-down)/(2*eps), fmt.Sprintf("input[%d]", i))
	}

	// Numeric parameter gradients.
	for _, p := range m.Params() {
		pd := p.Value.Data()
		for i := range pd {
			orig := pd[i]
			pd[i] = orig + eps
			up := loss(m.Forward(x.Clone()), seed)
			pd[i] = orig - eps
			down := loss(m.Forward(x.Clone()), seed)
			pd[i] = orig
			update(p.Grad.Data()[i], (up-down)/(2*eps), fmt.Sprintf("%s[%d]", p.Name, i))
		}
	}
	return res, nil
}
