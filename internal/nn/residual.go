package nn

import (
	"math/rand"

	"fedrlnas/internal/tensor"
)

// Residual wraps a body module with an identity skip connection:
// y = body(x) + x. The body must preserve the input shape.
type Residual struct {
	body Module
}

var (
	_ Module       = (*Residual)(nil)
	_ TrainToggler = (*Residual)(nil)
	_ Container    = (*Residual)(nil)
)

// NewResidual constructs a residual block around body.
func NewResidual(body Module) *Residual { return &Residual{body: body} }

// NewBasicBlock builds the ResNet basic block at c channels:
// conv3x3–bn–relu–conv3x3–bn inside an identity skip.
func NewBasicBlock(name string, rng *rand.Rand, c int) *Residual {
	return NewResidual(NewSequential(
		NewConv2D(name+".conv1", rng, c, c, 3, ConvOpts{Pad: 1}),
		NewBatchNorm2D(name+".bn1", c),
		NewReLU(),
		NewConv2D(name+".conv2", rng, c, c, 3, ConvOpts{Pad: 1}),
		NewBatchNorm2D(name+".bn2", c),
	))
}

// Children implements Container.
func (r *Residual) Children() []Module { return []Module{r.body} }

// Params implements Module.
func (r *Residual) Params() []*Param { return r.body.Params() }

// Forward implements Module.
func (r *Residual) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := r.body.Forward(x)
	out.AddInPlace(x)
	return out
}

// Backward implements Module.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gin := r.body.Backward(grad)
	gin.AddInPlace(grad)
	return gin
}

// SetTraining implements TrainToggler.
func (r *Residual) SetTraining(training bool) { SetTraining(training, r.body) }
