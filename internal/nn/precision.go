package nn

import (
	"fmt"
	"sync/atomic"
)

// Compute precision: the GEMM-backed layers (Linear, and Conv2D's im2col
// path) can run their matrix products in float32, halving memory traffic
// and doubling SIMD lanes. Parameters, optimizer state, activations at
// layer boundaries, and the wire layer stay float64 — the fp32 mode shadows
// the GEMM operands in per-layer float32 scratch and widens the product
// back out. Reductions that are cheap and precision-sensitive (bias sums,
// batch-norm statistics) remain float64, as does the grouped/depthwise
// convolution path (memory-bound AXPY loops, nothing to vectorize wider).
//
// FP64 is the default and the precision every bit-identity gate runs
// against; FP32 results are gated on convergence parity instead
// (DESIGN.md §Kernels).

// Precision selects the arithmetic used inside GEMM-backed layers.
type Precision int32

// Supported compute precisions.
const (
	// FP64 computes everything in float64 (the default).
	FP64 Precision = iota
	// FP32 computes GEMM-backed layer products in float32.
	FP32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP64:
		return "fp64"
	case FP32:
		return "fp32"
	default:
		return fmt.Sprintf("precision(%d)", int32(p))
	}
}

// ParsePrecision parses "fp64" or "fp32".
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp64", "":
		return FP64, nil
	case "fp32":
		return FP32, nil
	default:
		return 0, fmt.Errorf("nn: unknown precision %q (want fp64 or fp32)", s)
	}
}

// computePrecision is process-wide: every model replica in a process trains
// with the same arithmetic, which keeps the per-worker replica merges
// comparable. Stored atomically so telemetry can read it concurrently, but
// intended to be set once at startup, before any Forward call.
var computePrecision atomic.Int32

// SetPrecision selects the process-wide compute precision. Call it before
// training starts; switching mid-run is safe (layers re-shadow on the next
// pass) but changes results from that step on.
func SetPrecision(p Precision) { computePrecision.Store(int32(p)) }

// ActivePrecision returns the current process-wide compute precision.
func ActivePrecision() Precision { return Precision(computePrecision.Load()) }
