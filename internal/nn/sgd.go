package nn

import (
	"fedrlnas/internal/tensor"
)

// SGD is stochastic gradient descent with momentum, L2 weight decay and
// global-norm gradient clipping — the optimizer configuration from the
// paper's Table I (lr 0.025, momentum 0.9, weight decay 3e-4, clip 5).
type SGD struct {
	LR           float64
	Momentum     float64
	WeightDecay  float64
	GradClip     float64 // <= 0 disables clipping
	velocity     map[*Param]*tensor.Tensor
	lastGradNorm float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay, gradClip float64) *SGD {
	return &SGD{
		LR:          lr,
		Momentum:    momentum,
		WeightDecay: weightDecay,
		GradClip:    gradClip,
		velocity:    make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one update to ps using their accumulated gradients.
// Gradients are not cleared; call ZeroGrads between steps.
func (s *SGD) Step(ps []*Param) {
	if s.GradClip > 0 {
		grads := make([]*tensor.Tensor, len(ps))
		for i, p := range ps {
			grads[i] = p.Grad
		}
		s.lastGradNorm = tensor.ClipL2(s.GradClip, grads...)
	}
	for _, p := range ps {
		g := p.Grad.Clone()
		if s.WeightDecay > 0 {
			g.AXPY(s.WeightDecay, p.Value)
		}
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			v.ScaleInPlace(s.Momentum)
			v.AddInPlace(g)
			g = v
		}
		p.Value.AXPY(-s.LR, g)
	}
}

// LastGradNorm returns the pre-clip global gradient norm of the last Step.
func (s *SGD) LastGradNorm() float64 { return s.lastGradNorm }

// Reset clears momentum state (used when re-initializing a model at P3).
func (s *SGD) Reset() { s.velocity = make(map[*Param]*tensor.Tensor) }
