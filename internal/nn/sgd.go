package nn

import (
	"fmt"

	"fedrlnas/internal/tensor"
)

// SGD is stochastic gradient descent with momentum, L2 weight decay and
// global-norm gradient clipping — the optimizer configuration from the
// paper's Table I (lr 0.025, momentum 0.9, weight decay 3e-4, clip 5).
type SGD struct {
	LR           float64
	Momentum     float64
	WeightDecay  float64
	GradClip     float64 // <= 0 disables clipping
	velocity     map[*Param]*tensor.Tensor
	clipScratch  []*tensor.Tensor
	lastGradNorm float64
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay, gradClip float64) *SGD {
	return &SGD{
		LR:          lr,
		Momentum:    momentum,
		WeightDecay: weightDecay,
		GradClip:    gradClip,
		velocity:    make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one update to ps using their accumulated gradients.
// Gradients are not cleared; call ZeroGrads between steps.
//
// The update is fused into a single pass per parameter — no gradient clone —
// with the multiplications and additions performed in the same order as the
// textbook g = grad + wd·θ; v = μ·v + g; θ -= lr·v sequence, so the results
// are bit-identical to the unfused form.
func (s *SGD) Step(ps []*Param) {
	if s.GradClip > 0 {
		grads := s.clipScratch[:0]
		for _, p := range ps {
			grads = append(grads, p.Grad)
		}
		s.clipScratch = grads
		s.lastGradNorm = tensor.ClipL2(s.GradClip, grads...)
	}
	for _, p := range ps {
		gd, pd := p.Grad.Data(), p.Value.Data()
		switch {
		case s.Momentum > 0:
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			vd := v.Data()
			if s.WeightDecay > 0 {
				for i, g := range gd {
					vv := s.Momentum*vd[i] + (g + s.WeightDecay*pd[i])
					vd[i] = vv
					pd[i] += -s.LR * vv
				}
			} else {
				for i, g := range gd {
					vv := s.Momentum*vd[i] + g
					vd[i] = vv
					pd[i] += -s.LR * vv
				}
			}
		case s.WeightDecay > 0:
			for i, g := range gd {
				pd[i] += -s.LR * (g + s.WeightDecay*pd[i])
			}
		default:
			for i, g := range gd {
				pd[i] += -s.LR * g
			}
		}
	}
}

// LastGradNorm returns the pre-clip global gradient norm of the last Step.
func (s *SGD) LastGradNorm() float64 { return s.lastGradNorm }

// Velocity returns p's momentum buffer, or nil before the first Step
// touched p. The buffer is live optimizer state; callers must not mutate
// it. Checkpoints persist these buffers because resuming momentum SGD
// from θ alone silently restarts the velocity at zero and diverges from
// the uninterrupted run.
func (s *SGD) Velocity(p *Param) *tensor.Tensor { return s.velocity[p] }

// SetVelocity installs a momentum buffer for p (checkpoint restore). The
// tensor is copied into optimizer-owned storage.
func (s *SGD) SetVelocity(p *Param, v *tensor.Tensor) error {
	if !v.SameShape(p.Value) {
		return fmt.Errorf("nn: velocity shape %v != param shape %v", v.Shape(), p.Value.Shape())
	}
	buf, ok := s.velocity[p]
	if !ok {
		buf = tensor.New(p.Value.Shape()...)
		s.velocity[p] = buf
	}
	buf.CopyFrom(v)
	return nil
}

// Reset clears momentum state (used when re-initializing a model at P3).
func (s *SGD) Reset() { s.velocity = make(map[*Param]*tensor.Tensor) }
