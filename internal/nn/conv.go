package nn

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/tensor"
)

// Conv2D is a 2-D convolution with optional grouping (for depthwise
// convolutions), dilation, stride, and zero padding. Input [N,C,H,W],
// weight [outC, inC/groups, kH, kW], optional bias [outC].
type Conv2D struct {
	InC, OutC        int
	KH, KW           int
	Stride, Pad      int
	Dilation, Groups int

	weight *Param
	bias   *Param // nil when bias is disabled
	params []*Param

	lastX *tensor.Tensor

	// Per-layer im2col scratch and persistent output/gradient buffers,
	// reused across calls (see the package doc's buffer-ownership contract).
	// Safe because a layer belongs to exactly one model replica and each
	// replica is driven by at most one worker at a time (see internal/parallel).
	colBuf     []float64
	colGradBuf []float64
	outColBuf  []float64
	gradColBuf []float64
	outBuf     *tensor.Tensor
	gradXBuf   *tensor.Tensor

	// Float32 shadows for the fp32 compute mode (see precision.go). Only the
	// im2col path uses them; they stay nil under FP64.
	x32       []float32
	w32       []float32
	col32     []float32
	outCol32  []float32
	gradCol32 []float32
	colGrad32 []float32
	gx32      []float32
	dw32      []float32

	// Hoisted in-bounds output ranges for the grouped direct path: for each
	// kernel offset, the inclusive output rows/cols whose sampled input
	// stays inside the image (see convValid).
	oy0s, oy1s []int
	ox0s, ox1s []int
}

var _ Module = (*Conv2D)(nil)

// ConvOpts configures optional Conv2D behaviour.
type ConvOpts struct {
	Stride   int // default 1
	Pad      int // default 0
	Dilation int // default 1
	Groups   int // default 1
	Bias     bool
}

// NewConv2D constructs a convolution with Kaiming-initialized weights.
func NewConv2D(name string, rng *rand.Rand, inC, outC, k int, o ConvOpts) *Conv2D {
	if o.Stride == 0 {
		o.Stride = 1
	}
	if o.Dilation == 0 {
		o.Dilation = 1
	}
	if o.Groups == 0 {
		o.Groups = 1
	}
	if inC%o.Groups != 0 || outC%o.Groups != 0 {
		panic(fmt.Sprintf("nn: conv groups %d must divide inC %d and outC %d", o.Groups, inC, outC))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k,
		Stride: o.Stride, Pad: o.Pad, Dilation: o.Dilation, Groups: o.Groups,
	}
	c.weight = NewParam(name+".weight", tensor.KaimingConv(rng, outC, inC/o.Groups, k, k))
	if o.Bias {
		c.bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Params implements Module. The returned slice is cached (the parameter set
// is fixed at construction) and must not be mutated.
func (c *Conv2D) Params() []*Param {
	if c.params == nil {
		if c.bias != nil {
			c.params = []*Param{c.weight, c.bias}
		} else {
			c.params = []*Param{c.weight}
		}
	}
	return c.params
}

// Forward implements Module.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, inC, h, w := mustDims4(x, "Conv2D")
	if inC != c.InC {
		panic(fmt.Sprintf("nn: Conv2D got %d input channels, want %d", inC, c.InC))
	}
	c.lastX = x
	if c.Groups == 1 {
		return c.forwardIm2col(x)
	}
	oh := convOutDim(h, c.KH, c.Stride, c.Pad, c.Dilation)
	ow := convOutDim(w, c.KW, c.Stride, c.Pad, c.Dilation)
	c.outBuf = reuseBuf(c.outBuf, n, c.OutC, oh, ow)
	out := c.outBuf

	// Shift-and-AXPY formulation: the kernel offsets are the outer loops and
	// each (ky,kx) contributes one branch-free strided row update over the
	// precomputed in-bounds output range. Per output element the additions
	// still arrive in (ic,ky,kx) order, so the result is bit-identical to
	// the per-pixel accumulator this replaced.
	xd, wd, od := x.Data(), c.weight.Value.Data(), out.Data()
	var biasD []float64
	if c.bias != nil {
		biasD = c.bias.Value.Data()
	}
	icg := c.InC / c.Groups // input channels per group
	ocg := c.OutC / c.Groups
	c.hoistRanges(oh, ow, h, w)
	oy0s, oy1s, ox0s, ox1s := c.oy0s, c.oy1s, c.ox0s, c.ox1s
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			plane := od[((b*c.OutC+oc)*oh)*ow : ((b*c.OutC+oc)*oh+oh)*ow]
			bv := 0.0
			if biasD != nil {
				bv = biasD[oc]
			}
			for i := range plane {
				plane[i] = bv
			}
			for ic := 0; ic < icg; ic++ {
				xBase := ((b*c.InC + g*icg + ic) * h) * w
				wBase := ((oc*icg + ic) * c.KH) * c.KW
				for ky := 0; ky < c.KH; ky++ {
					kyOff := ky*c.Dilation - c.Pad
					oy0, oy1 := oy0s[ky], oy1s[ky]
					for kx := 0; kx < c.KW; kx++ {
						wv := wd[wBase+ky*c.KW+kx]
						kxOff := kx*c.Dilation - c.Pad
						ox0, ox1 := ox0s[kx], ox1s[kx]
						if ox0 > ox1 {
							continue
						}
						if c.Stride == 1 {
							// Contiguous AXPY over the in-bounds span;
							// slicing both rows to the same length lets the
							// compiler drop the bounds checks.
							for oy := oy0; oy <= oy1; oy++ {
								orow := plane[oy*ow+ox0 : oy*ow+ox1+1]
								xrow := xd[xBase+(oy+kyOff)*w+ox0+kxOff:][:len(orow)]
								for i, v := range xrow {
									orow[i] += wv * v
								}
							}
							continue
						}
						for oy := oy0; oy <= oy1; oy++ {
							xrow := xd[xBase+(oy*c.Stride+kyOff)*w:]
							orow := plane[oy*ow:]
							ix := ox0*c.Stride + kxOff
							for ox := ox0; ox <= ox1; ox++ {
								orow[ox] += wv * xrow[ix]
								ix += c.Stride
							}
						}
					}
				}
			}
		}
	}
	return out
}

// hoistRanges fills the per-kernel-offset valid output ranges used by the
// grouped direct path, reusing the layer's scratch slices.
func (c *Conv2D) hoistRanges(oh, ow, h, w int) {
	c.oy0s = growInts(c.oy0s, c.KH)
	c.oy1s = growInts(c.oy1s, c.KH)
	c.ox0s = growInts(c.ox0s, c.KW)
	c.ox1s = growInts(c.ox1s, c.KW)
	for ky := 0; ky < c.KH; ky++ {
		c.oy0s[ky], c.oy1s[ky] = convValid(oh, ky*c.Dilation-c.Pad, c.Stride, h)
	}
	for kx := 0; kx < c.KW; kx++ {
		c.ox0s[kx], c.ox1s[kx] = convValid(ow, kx*c.Dilation-c.Pad, c.Stride, w)
	}
}

// growInts returns a length-n int slice backed by buf when it is large
// enough, allocating only on growth.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// convValid returns the inclusive output-index range [lo, hi] whose sampled
// input index o*stride+off stays inside [0, limit); hi < lo when empty.
func convValid(outDim, off, stride, limit int) (lo, hi int) {
	lo = divCeil(-off, stride)
	if lo < 0 {
		lo = 0
	}
	hi = divFloor(limit-1-off, stride)
	if hi > outDim-1 {
		hi = outDim - 1
	}
	return lo, hi
}

func divCeil(a, b int) int {
	if a >= 0 {
		return (a + b - 1) / b
	}
	return -(-a / b)
}

func divFloor(a, b int) int {
	if a >= 0 {
		return a / b
	}
	return -((-a + b - 1) / b)
}

// Backward implements Module.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	if c.Groups == 1 {
		return c.backwardIm2col(grad)
	}
	n, _, h, w := mustDims4(x, "Conv2D")
	_, _, oh, ow := mustDims4(grad, "Conv2D.Backward")

	c.gradXBuf = reuseBufLike(c.gradXBuf, x)
	gradX := c.gradXBuf
	gradX.Zero() // the direct path accumulates into it
	xd, wd := x.Data(), c.weight.Value.Data()
	gd, gxd, gwd := grad.Data(), gradX.Data(), c.weight.Grad.Data()
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	var gbd []float64
	if c.bias != nil {
		gbd = c.bias.Grad.Data()
	}
	// Same shift-and-AXPY structure as the grouped forward: per (ky,kx) one
	// branch-free strided sweep accumulates both the weight gradient (as a
	// register reduction) and the input gradient.
	c.hoistRanges(oh, ow, h, w)
	oy0s, oy1s, ox0s, ox1s := c.oy0s, c.oy1s, c.ox0s, c.ox1s
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			gplane := gd[((b*c.OutC+oc)*oh)*ow : ((b*c.OutC+oc)*oh+oh)*ow]
			if gbd != nil {
				s := 0.0
				for _, v := range gplane {
					s += v
				}
				gbd[oc] += s
			}
			for ic := 0; ic < icg; ic++ {
				xBase := ((b*c.InC + g*icg + ic) * h) * w
				wBase := ((oc*icg + ic) * c.KH) * c.KW
				for ky := 0; ky < c.KH; ky++ {
					kyOff := ky*c.Dilation - c.Pad
					oy0, oy1 := oy0s[ky], oy1s[ky]
					for kx := 0; kx < c.KW; kx++ {
						wv := wd[wBase+ky*c.KW+kx]
						kxOff := kx*c.Dilation - c.Pad
						ox0, ox1 := ox0s[kx], ox1s[kx]
						if ox0 > ox1 {
							continue
						}
						gw := 0.0
						if c.Stride == 1 {
							for oy := oy0; oy <= oy1; oy++ {
								grow := gplane[oy*ow+ox0 : oy*ow+ox1+1]
								rowBase := xBase + (oy+kyOff)*w + ox0 + kxOff
								xrow := xd[rowBase:][:len(grow)]
								gxrow := gxd[rowBase:][:len(grow)]
								for i, gv := range grow {
									gw += gv * xrow[i]
									gxrow[i] += gv * wv
								}
							}
						} else {
							for oy := oy0; oy <= oy1; oy++ {
								rowBase := xBase + (oy*c.Stride+kyOff)*w
								xrow := xd[rowBase:]
								gxrow := gxd[rowBase:]
								grow := gplane[oy*ow:]
								ix := ox0*c.Stride + kxOff
								for ox := ox0; ox <= ox1; ox++ {
									gv := grow[ox]
									gw += gv * xrow[ix]
									gxrow[ix] += gv * wv
									ix += c.Stride
								}
							}
						}
						gwd[wBase+ky*c.KW+kx] += gw
					}
				}
			}
		}
	}
	return gradX
}
