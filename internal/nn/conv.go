package nn

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/tensor"
)

// Conv2D is a 2-D convolution with optional grouping (for depthwise
// convolutions), dilation, stride, and zero padding. Input [N,C,H,W],
// weight [outC, inC/groups, kH, kW], optional bias [outC].
type Conv2D struct {
	InC, OutC        int
	KH, KW           int
	Stride, Pad      int
	Dilation, Groups int

	weight *Param
	bias   *Param // nil when bias is disabled

	lastX *tensor.Tensor

	// Per-layer im2col scratch, reused across calls. Safe because a layer
	// belongs to exactly one model replica and each replica is driven by at
	// most one worker at a time (see package doc and internal/parallel).
	colBuf     []float64
	colGradBuf []float64
}

var _ Module = (*Conv2D)(nil)

// ConvOpts configures optional Conv2D behaviour.
type ConvOpts struct {
	Stride   int // default 1
	Pad      int // default 0
	Dilation int // default 1
	Groups   int // default 1
	Bias     bool
}

// NewConv2D constructs a convolution with Kaiming-initialized weights.
func NewConv2D(name string, rng *rand.Rand, inC, outC, k int, o ConvOpts) *Conv2D {
	if o.Stride == 0 {
		o.Stride = 1
	}
	if o.Dilation == 0 {
		o.Dilation = 1
	}
	if o.Groups == 0 {
		o.Groups = 1
	}
	if inC%o.Groups != 0 || outC%o.Groups != 0 {
		panic(fmt.Sprintf("nn: conv groups %d must divide inC %d and outC %d", o.Groups, inC, outC))
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k,
		Stride: o.Stride, Pad: o.Pad, Dilation: o.Dilation, Groups: o.Groups,
	}
	c.weight = NewParam(name+".weight", tensor.KaimingConv(rng, outC, inC/o.Groups, k, k))
	if o.Bias {
		c.bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Params implements Module.
func (c *Conv2D) Params() []*Param {
	if c.bias != nil {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// Forward implements Module.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, inC, h, w := mustDims4(x, "Conv2D")
	if inC != c.InC {
		panic(fmt.Sprintf("nn: Conv2D got %d input channels, want %d", inC, c.InC))
	}
	c.lastX = x
	if c.Groups == 1 {
		return c.forwardIm2col(x)
	}
	oh := convOutDim(h, c.KH, c.Stride, c.Pad, c.Dilation)
	ow := convOutDim(w, c.KW, c.Stride, c.Pad, c.Dilation)
	out := tensor.New(n, c.OutC, oh, ow)

	xd, wd, od := x.Data(), c.weight.Value.Data(), out.Data()
	icg := c.InC / c.Groups // input channels per group
	ocg := c.OutC / c.Groups
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			var biasV float64
			if c.bias != nil {
				biasV = c.bias.Value.Data()[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := biasV
					for ic := 0; ic < icg; ic++ {
						inCh := g*icg + ic
						xBase := ((b*c.InC + inCh) * h) * w
						wBase := ((oc*icg + ic) * c.KH) * c.KW
						for ky := 0; ky < c.KH; ky++ {
							iy := oy*c.Stride - c.Pad + ky*c.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.KW; kx++ {
								ix := ox*c.Stride - c.Pad + kx*c.Dilation
								if ix < 0 || ix >= w {
									continue
								}
								acc += xd[xBase+iy*w+ix] * wd[wBase+ky*c.KW+kx]
							}
						}
					}
					od[((b*c.OutC+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	if c.Groups == 1 {
		return c.backwardIm2col(grad)
	}
	n, _, h, w := mustDims4(x, "Conv2D")
	_, _, oh, ow := mustDims4(grad, "Conv2D.Backward")

	gradX := tensor.New(x.Shape()...)
	xd, wd := x.Data(), c.weight.Value.Data()
	gd, gxd, gwd := grad.Data(), gradX.Data(), c.weight.Grad.Data()
	icg := c.InC / c.Groups
	ocg := c.OutC / c.Groups
	var gbd []float64
	if c.bias != nil {
		gbd = c.bias.Grad.Data()
	}
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / ocg
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := gd[((b*c.OutC+oc)*oh+oy)*ow+ox]
					if gv == 0 {
						continue
					}
					if gbd != nil {
						gbd[oc] += gv
					}
					for ic := 0; ic < icg; ic++ {
						inCh := g*icg + ic
						xBase := ((b*c.InC + inCh) * h) * w
						wBase := ((oc*icg + ic) * c.KH) * c.KW
						for ky := 0; ky < c.KH; ky++ {
							iy := oy*c.Stride - c.Pad + ky*c.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.KW; kx++ {
								ix := ox*c.Stride - c.Pad + kx*c.Dilation
								if ix < 0 || ix >= w {
									continue
								}
								gwd[wBase+ky*c.KW+kx] += gv * xd[xBase+iy*w+ix]
								gxd[xBase+iy*w+ix] += gv * wd[wBase+ky*c.KW+kx]
							}
						}
					}
				}
			}
		}
	}
	return gradX
}
