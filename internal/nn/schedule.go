package nn

import (
	"fmt"
	"math"
)

// LRSchedule maps a step index to a learning rate.
type LRSchedule interface {
	// LR returns the learning rate for step (0-based).
	LR(step int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR struct {
	Rate float64
}

var _ LRSchedule = ConstantLR{}

// LR implements LRSchedule.
func (c ConstantLR) LR(int) float64 { return c.Rate }

// CosineLR anneals from Max to Min over TotalSteps with the half-cosine
// shape DARTS and the paper's P3 training use, then stays at Min.
type CosineLR struct {
	Max, Min   float64
	TotalSteps int
}

var _ LRSchedule = CosineLR{}

// NewCosineLR constructs a cosine annealing schedule.
func NewCosineLR(maxRate, minRate float64, totalSteps int) (CosineLR, error) {
	if totalSteps <= 0 {
		return CosineLR{}, fmt.Errorf("nn: cosine schedule needs positive steps, got %d", totalSteps)
	}
	if maxRate < minRate {
		return CosineLR{}, fmt.Errorf("nn: cosine max %v < min %v", maxRate, minRate)
	}
	return CosineLR{Max: maxRate, Min: minRate, TotalSteps: totalSteps}, nil
}

// LR implements LRSchedule.
func (c CosineLR) LR(step int) float64 {
	if step < 0 {
		step = 0
	}
	if step >= c.TotalSteps {
		return c.Min
	}
	frac := float64(step) / float64(c.TotalSteps)
	return c.Min + 0.5*(c.Max-c.Min)*(1+math.Cos(math.Pi*frac))
}

// WarmupCosineLR ramps linearly from 0 to Max over WarmupSteps, then
// cosine-anneals to Min — a common large-batch stabilizer.
type WarmupCosineLR struct {
	Cosine      CosineLR
	WarmupSteps int
}

var _ LRSchedule = WarmupCosineLR{}

// LR implements LRSchedule.
func (w WarmupCosineLR) LR(step int) float64 {
	if step < w.WarmupSteps && w.WarmupSteps > 0 {
		return w.Cosine.Max * float64(step+1) / float64(w.WarmupSteps)
	}
	return w.Cosine.LR(step - w.WarmupSteps)
}

// StepWith applies sched's rate for the given step and performs the update
// (convenience for optimizer + schedule pairing).
func (s *SGD) StepWith(sched LRSchedule, step int, ps []*Param) {
	s.LR = sched.LR(step)
	s.Step(ps)
}
