package nn

// Batch-norm statistic capture/replay. BatchNorm2D's training forward has a
// side effect — the EMA update of the running statistics — that makes it the
// one piece of per-participant work that is not naturally order-independent.
// The parallel round engine therefore runs worker replicas in *capture* mode:
// a capturing BatchNorm2D records the batch statistics of every training
// forward instead of folding them into its running stats, and the round loop
// replays the captured statistics onto the primary model's layers in fixed
// participant-index order. Because the batch statistics themselves depend
// only on the input batch and the (restored) parameters — never on the
// running stats — replaying them through ApplyStats reproduces bit-identical
// running statistics to a fully sequential run. See DESIGN.md §Concurrency.

// BNStats is one training forward's batch statistics: per-channel mean and
// (biased) variance.
type BNStats struct {
	Mean []float64
	Var  []float64
}

// SetStatCapture toggles capture mode. While capturing, training forwards
// append their batch statistics to an internal log (read with
// DrainCapturedStats) and leave the running statistics untouched.
func (bn *BatchNorm2D) SetStatCapture(on bool) {
	bn.capture = on
	if !on {
		bn.captured = nil
		bn.statsFree = nil
	}
}

// DrainCapturedStats returns the batch statistics captured since the last
// drain, oldest first, and clears the log. The caller owns the returned
// records.
func (bn *BatchNorm2D) DrainCapturedStats() []BNStats {
	s := bn.captured
	bn.captured = nil
	return s
}

// DrainCapturedStatsInto is the no-alloc drain: it copies the captured
// records into dst[:0] (growing it only when needed), clears the log while
// keeping its backing array for future captures, and returns dst. The caller
// owns the records until it hands them back via RecycleStats.
func (bn *BatchNorm2D) DrainCapturedStatsInto(dst []BNStats) []BNStats {
	dst = append(dst[:0], bn.captured...)
	bn.captured = bn.captured[:0]
	return dst
}

// RecycleStats returns consumed capture records to the layer's freelist so
// later capturing forwards reuse their Mean/Var storage instead of
// allocating. Records with a mismatched channel count are ignored.
func (bn *BatchNorm2D) RecycleStats(recs []BNStats) {
	for _, r := range recs {
		if len(r.Mean) == bn.C && len(r.Var) == bn.C {
			bn.statsFree = append(bn.statsFree, r)
		}
	}
}

// ApplyStats folds one captured forward's batch statistics into the running
// statistics, exactly as a non-capturing training forward would have.
func (bn *BatchNorm2D) ApplyStats(s BNStats) {
	for ch := 0; ch < bn.C; ch++ {
		bn.runningMean[ch] = (1-bn.Momentum)*bn.runningMean[ch] + bn.Momentum*s.Mean[ch]
		bn.runningVar[ch] = (1-bn.Momentum)*bn.runningVar[ch] + bn.Momentum*s.Var[ch]
	}
}

// CopyStatsFrom overwrites bn's running statistics with src's (used to sync
// evaluation replicas with the primary model; parameters are copied
// separately via RestoreParamValues).
func (bn *BatchNorm2D) CopyStatsFrom(src *BatchNorm2D) {
	copy(bn.runningMean, src.runningMean)
	copy(bn.runningVar, src.runningVar)
}

// Container is implemented by modules that contain other modules, so
// generic walkers can enumerate a module tree without knowing its concrete
// layout. Children returns the direct children in deterministic order.
type Container interface {
	Children() []Module
}

// CollectBatchNorms walks the module trees rooted at ms in order and
// returns every BatchNorm2D encountered. Two structurally identical models
// yield index-aligned lists, which is what lets the round engine pair each
// replica layer with its primary counterpart.
func CollectBatchNorms(ms ...Module) []*BatchNorm2D {
	var out []*BatchNorm2D
	for _, m := range ms {
		switch v := m.(type) {
		case *BatchNorm2D:
			out = append(out, v)
		case Container:
			out = append(out, CollectBatchNorms(v.Children()...)...)
		}
	}
	return out
}
