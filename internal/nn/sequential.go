package nn

import (
	"math/rand"

	"fedrlnas/internal/tensor"
)

// Sequential chains modules, feeding each one's output to the next.
type Sequential struct {
	mods   []Module
	params []*Param
}

var (
	_ Module       = (*Sequential)(nil)
	_ TrainToggler = (*Sequential)(nil)
	_ Container    = (*Sequential)(nil)
)

// NewSequential constructs a chain of modules.
func NewSequential(mods ...Module) *Sequential {
	return &Sequential{mods: mods}
}

// Modules returns the contained modules in order.
func (s *Sequential) Modules() []Module { return s.mods }

// Children implements Container.
func (s *Sequential) Children() []Module { return s.mods }

// Params implements Module. The returned slice is cached (module structure
// is fixed at construction) and must not be mutated.
func (s *Sequential) Params() []*Param {
	if s.params == nil {
		for _, m := range s.mods {
			s.params = append(s.params, m.Params()...)
		}
	}
	return s.params
}

// Forward implements Module.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.mods) - 1; i >= 0; i-- {
		grad = s.mods[i].Backward(grad)
	}
	return grad
}

// SetTraining implements TrainToggler, propagating to children.
func (s *Sequential) SetTraining(training bool) {
	SetTraining(training, s.mods...)
}

// NewSepConv builds the DARTS separable convolution block:
// ReLU → depthwise k×k conv → pointwise 1×1 conv → batch norm.
// (The paper's search space applies the DARTS block; we use a single
// depthwise-separable stage instead of DARTS' doubled stage to keep
// participant-side compute tractable on this substrate — see DESIGN.md.)
func NewSepConv(name string, rng *rand.Rand, c, k, stride int) *Sequential {
	pad := k / 2
	return NewSequential(
		NewReLU(),
		NewConv2D(name+".dw", rng, c, c, k, ConvOpts{Stride: stride, Pad: pad, Groups: c}),
		NewConv2D(name+".pw", rng, c, c, 1, ConvOpts{}),
		NewBatchNorm2D(name+".bn", c),
	)
}

// NewDilConv builds the DARTS dilated separable convolution block:
// ReLU → depthwise k×k dilation-2 conv → pointwise 1×1 conv → batch norm.
func NewDilConv(name string, rng *rand.Rand, c, k, stride int) *Sequential {
	dil := 2
	pad := dil * (k - 1) / 2
	return NewSequential(
		NewReLU(),
		NewConv2D(name+".dw", rng, c, c, k, ConvOpts{Stride: stride, Pad: pad, Dilation: dil, Groups: c}),
		NewConv2D(name+".pw", rng, c, c, 1, ConvOpts{}),
		NewBatchNorm2D(name+".bn", c),
	)
}

// NewReLUConvBN builds the DARTS preprocessing block:
// ReLU → k×k conv → batch norm. Used for cell input preprocessing and stems.
func NewReLUConvBN(name string, rng *rand.Rand, inC, outC, k, stride int) *Sequential {
	return NewSequential(
		NewReLU(),
		NewConv2D(name+".conv", rng, inC, outC, k, ConvOpts{Stride: stride, Pad: k / 2}),
		NewBatchNorm2D(name+".bn", outC),
	)
}
