package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedrlnas/internal/tensor"
)

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"fp64", FP64, true}, {"", FP64, true}, {"fp32", FP32, true},
		{"fp16", 0, false}, {"FP64", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePrecision(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if FP64.String() != "fp64" || FP32.String() != "fp32" {
		t.Fatalf("Precision.String mismatch: %q %q", FP64, FP32)
	}
}

// withPrecision runs f under p and restores the previous setting.
func withPrecision(p Precision, f func()) {
	prev := ActivePrecision()
	SetPrecision(p)
	defer SetPrecision(prev)
	f()
}

// runConvPass does a forward + backward over one conv layer and returns
// (output, gradX, gradW) snapshots.
func runConvPass(c *Conv2D, x, gradOut *tensor.Tensor) (out, gx, gw []float64) {
	for _, p := range c.Params() {
		p.Grad.Zero()
	}
	y := c.Forward(x)
	g := c.Backward(gradOut)
	out = append([]float64(nil), y.Data()...)
	gx = append([]float64(nil), g.Data()...)
	gw = append([]float64(nil), c.weight.Grad.Data()...)
	return out, gx, gw
}

// TestConvFP32MatchesFP64WithinTolerance: the fp32 compute path is a
// different arithmetic, so it is gated on closeness, not bit-identity. The
// tolerances are generous relative to float32 epsilon (~1.2e-7) but tight
// enough to catch any indexing or transpose bug, which would produce O(1)
// errors.
func TestConvFP32MatchesFP64WithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConv2D("c", rng, 3, 8, 3, ConvOpts{Pad: 1, Bias: true})
	x := tensor.Randn(rng, 1, 2, 3, 9, 9)
	gradOut := tensor.Randn(rng, 1, 2, 8, 9, 9)

	var o64, gx64, gw64, o32, gx32, gw32 []float64
	withPrecision(FP64, func() { o64, gx64, gw64 = runConvPass(c, x, gradOut) })
	withPrecision(FP32, func() { o32, gx32, gw32 = runConvPass(c, x, gradOut) })

	checkClose(t, "conv output", o64, o32, 1e-5)
	checkClose(t, "conv gradX", gx64, gx32, 1e-4)
	checkClose(t, "conv gradW", gw64, gw32, 1e-3)

	// And the fp32 result must actually differ somewhere — otherwise the
	// dispatch never left the fp64 path and the test is vacuous.
	if bitwiseEqual(o64, o32) {
		t.Fatal("fp32 conv output is bit-identical to fp64; FP32 path not taken")
	}
}

func TestLinearFP32MatchesFP64WithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear("l", rng, 24, 10)
	x := tensor.Randn(rng, 1, 6, 24)
	gradOut := tensor.Randn(rng, 1, 6, 10)

	run := func() (out, gx, gw []float64) {
		for _, p := range l.Params() {
			p.Grad.Zero()
		}
		y := l.Forward(x)
		g := l.Backward(gradOut)
		return append([]float64(nil), y.Data()...),
			append([]float64(nil), g.Data()...),
			append([]float64(nil), l.weight.Grad.Data()...)
	}
	var o64, gx64, gw64, o32, gx32, gw32 []float64
	withPrecision(FP64, func() { o64, gx64, gw64 = run() })
	withPrecision(FP32, func() { o32, gx32, gw32 = run() })

	checkClose(t, "linear output", o64, o32, 1e-5)
	checkClose(t, "linear gradX", gx64, gx32, 1e-4)
	checkClose(t, "linear gradW", gw64, gw32, 1e-3)
	if bitwiseEqual(o64, o32) {
		t.Fatal("fp32 linear output is bit-identical to fp64; FP32 path not taken")
	}
}

// TestFP64DefaultUnaffected pins that the default precision is FP64, so the
// bit-identity gates elsewhere in the repo keep meaning what they meant.
func TestFP64DefaultUnaffected(t *testing.T) {
	if ActivePrecision() != FP64 && testing.Short() {
		t.Skip("another test left precision set; short mode skips")
	}
	p, err := ParsePrecision("")
	if err != nil || p != FP64 {
		t.Fatalf("empty precision must default to fp64, got %v, %v", p, err)
	}
}

func checkClose(t *testing.T, what string, want, got []float64, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(want), len(got))
	}
	var worst float64
	for i := range want {
		d := math.Abs(want[i] - got[i])
		scale := math.Max(1, math.Abs(want[i]))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	if worst > tol {
		t.Fatalf("%s: worst relative error %g exceeds %g", what, worst, tol)
	}
}

func bitwiseEqual(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
