package nn

import (
	"math"
	"testing"

	"fedrlnas/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR{Rate: 0.1}
	if s.LR(0) != 0.1 || s.LR(1000) != 0.1 {
		t.Error("constant schedule must be constant")
	}
}

func TestCosineLRShape(t *testing.T) {
	s, err := NewCosineLR(1.0, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LR(0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("LR(0) = %v, want 1.0", got)
	}
	if got := s.LR(50); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("LR(mid) = %v, want 0.55", got)
	}
	if got := s.LR(100); got != 0.1 {
		t.Errorf("LR(end) = %v, want min", got)
	}
	if got := s.LR(9999); got != 0.1 {
		t.Errorf("LR(past end) = %v, want min", got)
	}
	if got := s.LR(-5); got != 1.0 {
		t.Errorf("LR(negative) = %v, want max", got)
	}
	// Monotone non-increasing over the annealing window.
	prev := s.LR(0)
	for step := 1; step <= 100; step++ {
		cur := s.LR(step)
		if cur > prev+1e-12 {
			t.Fatalf("cosine increased at step %d: %v -> %v", step, prev, cur)
		}
		prev = cur
	}
}

func TestNewCosineLRValidation(t *testing.T) {
	if _, err := NewCosineLR(1, 0, 0); err == nil {
		t.Error("expected error for zero steps")
	}
	if _, err := NewCosineLR(0.1, 0.5, 10); err == nil {
		t.Error("expected error for max < min")
	}
}

func TestWarmupCosineLR(t *testing.T) {
	cos, err := NewCosineLR(1.0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := WarmupCosineLR{Cosine: cos, WarmupSteps: 5}
	if got := s.LR(0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("warmup LR(0) = %v, want 0.2", got)
	}
	if got := s.LR(4); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("warmup LR(4) = %v, want 1.0", got)
	}
	if got := s.LR(5); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("post-warmup LR(5) = %v, want cosine start 1.0", got)
	}
	if got := s.LR(15); got != 0 {
		t.Errorf("post-anneal LR = %v, want 0", got)
	}
}

func TestStepWithUpdatesRate(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{1}, 1))
	p.Grad.Fill(1)
	opt := NewSGD(999, 0, 0, 0)
	sched := ConstantLR{Rate: 0.5}
	opt.StepWith(sched, 0, []*Param{p})
	if got := p.Value.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("StepWith result %v, want 0.5", got)
	}
	if opt.LR != 0.5 {
		t.Errorf("optimizer LR %v not updated by schedule", opt.LR)
	}
}
