package nn

import (
	"math"

	"fedrlnas/internal/tensor"
)

// MaxPool2D is a max pooling layer over [N,C,H,W] inputs.
type MaxPool2D struct {
	K, Stride, Pad int

	lastX   *tensor.Tensor
	argmaxI []int // flat input index of each output's max

	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a k×k max pool.
func NewMaxPool2D(k, stride, pad int) *MaxPool2D {
	return &MaxPool2D{K: k, Stride: stride, Pad: pad}
}

// Params implements Module.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Module.
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "MaxPool2D")
	p.lastX = x
	oh := convOutDim(h, p.K, p.Stride, p.Pad, 1)
	ow := convOutDim(w, p.K, p.Stride, p.Pad, 1)
	p.outBuf = reuseBuf(p.outBuf, n, c, oh, ow)
	out := p.outBuf
	if cap(p.argmaxI) < out.Size() {
		p.argmaxI = make([]int, out.Size())
	}
	p.argmaxI = p.argmaxI[:out.Size()]
	// The window's in-bounds kernel range is clamped once per output row and
	// column, so the scan itself is branch-free (first-max semantics: the
	// strict > keeps the earliest maximum, matching the padded-window scan
	// this replaced).
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*p.Stride - p.Pad
				ky0, ky1 := clampWindow(iy0, p.K, h)
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*p.Stride - p.Pad
					kx0, kx1 := clampWindow(ix0, p.K, w)
					best := math.Inf(-1)
					bestI := -1
					for ky := ky0; ky <= ky1; ky++ {
						row := base + (iy0+ky)*w + ix0
						for kx := kx0; kx <= kx1; kx++ {
							if v := xd[row+kx]; v > best {
								best, bestI = v, row+kx
							}
						}
					}
					oi := ((b*c+ch)*oh+oy)*ow + ox
					if bestI < 0 { // window entirely in padding
						best = 0
					}
					od[oi] = best
					p.argmaxI[oi] = bestI
				}
			}
		}
	}
	return out
}

// clampWindow returns the inclusive kernel-offset range [k0, k1] for which
// i0+k stays inside [0, limit); k1 < k0 when the window misses entirely.
func clampWindow(i0, k, limit int) (k0, k1 int) {
	k0, k1 = 0, k-1
	if i0 < 0 {
		k0 = -i0
	}
	if i0+k1 >= limit {
		k1 = limit - 1 - i0
	}
	return k0, k1
}

// Backward implements Module.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.gradXBuf = reuseBufLike(p.gradXBuf, p.lastX)
	gradX := p.gradXBuf
	gradX.Zero() // the argmax scatter accumulates
	gd, gxd := grad.Data(), gradX.Data()
	for oi, src := range p.argmaxI {
		if src >= 0 {
			gxd[src] += gd[oi]
		}
	}
	return gradX
}

// AvgPool2D is an average pooling layer. The divisor is the full window size
// (count_include_pad semantics, like the paper's PyTorch default).
type AvgPool2D struct {
	K, Stride, Pad int

	lastShape []int

	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*AvgPool2D)(nil)

// NewAvgPool2D constructs a k×k average pool.
func NewAvgPool2D(k, stride, pad int) *AvgPool2D {
	return &AvgPool2D{K: k, Stride: stride, Pad: pad}
}

// Params implements Module.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward implements Module.
func (p *AvgPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "AvgPool2D")
	p.lastShape = x.Shape()
	oh := convOutDim(h, p.K, p.Stride, p.Pad, 1)
	ow := convOutDim(w, p.K, p.Stride, p.Pad, 1)
	p.outBuf = reuseBuf(p.outBuf, n, c, oh, ow)
	out := p.outBuf
	inv := 1.0 / float64(p.K*p.K)
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*p.Stride - p.Pad
				ky0, ky1 := clampWindow(iy0, p.K, h)
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*p.Stride - p.Pad
					kx0, kx1 := clampWindow(ix0, p.K, w)
					acc := 0.0
					for ky := ky0; ky <= ky1; ky++ {
						row := base + (iy0+ky)*w + ix0
						for kx := kx0; kx <= kx1; kx++ {
							acc += xd[row+kx]
						}
					}
					od[((b*c+ch)*oh+oy)*ow+ox] = acc * inv
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, oh, ow := mustDims4(grad, "AvgPool2D.Backward")
	p.gradXBuf = reuseBuf(p.gradXBuf, p.lastShape...)
	gradX := p.gradXBuf
	gradX.Zero() // overlapping windows accumulate
	h, w := p.lastShape[2], p.lastShape[3]
	inv := 1.0 / float64(p.K*p.K)
	gd, gxd := grad.Data(), gradX.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*p.Stride - p.Pad
				ky0, ky1 := clampWindow(iy0, p.K, h)
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*p.Stride - p.Pad
					kx0, kx1 := clampWindow(ix0, p.K, w)
					gv := gd[((b*c+ch)*oh+oy)*ow+ox] * inv
					for ky := ky0; ky <= ky1; ky++ {
						row := base + (iy0+ky)*w + ix0
						for kx := kx0; kx <= kx1; kx++ {
							gxd[row+kx] += gv
						}
					}
				}
			}
		}
	}
	return gradX
}

// GlobalAvgPool averages each channel's spatial map to a single value,
// producing [N, C] output from [N, C, H, W] input.
type GlobalAvgPool struct {
	lastShape []int

	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Params implements Module.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Module.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "GlobalAvgPool")
	p.lastShape = x.Shape()
	p.outBuf = reuseBuf(p.outBuf, n, c)
	out := p.outBuf
	inv := 1.0 / float64(h*w)
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			acc := 0.0
			for i := 0; i < h*w; i++ {
				acc += xd[base+i]
			}
			od[b*c+ch] = acc * inv
		}
	}
	return out
}

// Backward implements Module.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.gradXBuf = reuseBuf(p.gradXBuf, p.lastShape...)
	gradX := p.gradXBuf // fully overwritten below, no zeroing needed
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	inv := 1.0 / float64(h*w)
	gd, gxd := grad.Data(), gradX.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			gv := gd[b*c+ch] * inv
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				gxd[base+i] = gv
			}
		}
	}
	return gradX
}

// SubSample spatially subsamples by taking every stride-th pixel. It is the
// strided form of the identity operation in reduction cells (a simplification
// of DARTS' factorized reduce; see DESIGN.md §2).
type SubSample struct {
	Stride int

	lastShape []int

	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*SubSample)(nil)

// NewSubSample constructs a stride-s spatial subsampler.
func NewSubSample(stride int) *SubSample { return &SubSample{Stride: stride} }

// Params implements Module.
func (s *SubSample) Params() []*Param { return nil }

// Forward implements Module.
func (s *SubSample) Forward(x *tensor.Tensor) *tensor.Tensor {
	if s.Stride == 1 {
		s.lastShape = x.Shape()
		s.outBuf = reuseBuf(s.outBuf, s.lastShape...)
		s.outBuf.CopyFrom(x)
		return s.outBuf
	}
	n, c, h, w := mustDims4(x, "SubSample")
	s.lastShape = x.Shape()
	oh := (h + s.Stride - 1) / s.Stride
	ow := (w + s.Stride - 1) / s.Stride
	s.outBuf = reuseBuf(s.outBuf, n, c, oh, ow)
	out := s.outBuf
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					od[((b*c+ch)*oh+oy)*ow+ox] = xd[base+oy*s.Stride*w+ox*s.Stride]
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (s *SubSample) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.gradXBuf = reuseBuf(s.gradXBuf, s.lastShape...)
	gradX := s.gradXBuf
	if s.Stride == 1 {
		gradX.CopyFrom(grad)
		return gradX
	}
	gradX.Zero() // only the strided positions are written below
	n, c, oh, ow := mustDims4(grad, "SubSample.Backward")
	h, w := s.lastShape[2], s.lastShape[3]
	gd, gxd := grad.Data(), gradX.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gxd[base+oy*s.Stride*w+ox*s.Stride] = gd[((b*c+ch)*oh+oy)*ow+ox]
				}
			}
		}
	}
	return gradX
}
