package nn

import (
	"math"

	"fedrlnas/internal/tensor"
)

// MaxPool2D is a max pooling layer over [N,C,H,W] inputs.
type MaxPool2D struct {
	K, Stride, Pad int

	lastX   *tensor.Tensor
	argmaxI []int // flat input index of each output's max
}

var _ Module = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a k×k max pool.
func NewMaxPool2D(k, stride, pad int) *MaxPool2D {
	return &MaxPool2D{K: k, Stride: stride, Pad: pad}
}

// Params implements Module.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Module.
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "MaxPool2D")
	p.lastX = x
	oh := convOutDim(h, p.K, p.Stride, p.Pad, 1)
	ow := convOutDim(w, p.K, p.Stride, p.Pad, 1)
	out := tensor.New(n, c, oh, ow)
	p.argmaxI = make([]int, out.Size())
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestI := -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							if v := xd[base+iy*w+ix]; v > best {
								best, bestI = v, base+iy*w+ix
							}
						}
					}
					oi := ((b*c+ch)*oh+oy)*ow + ox
					if bestI < 0 { // window entirely in padding
						best = 0
					}
					od[oi] = best
					p.argmaxI[oi] = bestI
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gradX := tensor.New(p.lastX.Shape()...)
	gd, gxd := grad.Data(), gradX.Data()
	for oi, src := range p.argmaxI {
		if src >= 0 {
			gxd[src] += gd[oi]
		}
	}
	return gradX
}

// AvgPool2D is an average pooling layer. The divisor is the full window size
// (count_include_pad semantics, like the paper's PyTorch default).
type AvgPool2D struct {
	K, Stride, Pad int

	lastShape []int
}

var _ Module = (*AvgPool2D)(nil)

// NewAvgPool2D constructs a k×k average pool.
func NewAvgPool2D(k, stride, pad int) *AvgPool2D {
	return &AvgPool2D{K: k, Stride: stride, Pad: pad}
}

// Params implements Module.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward implements Module.
func (p *AvgPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "AvgPool2D")
	p.lastShape = x.Shape()
	oh := convOutDim(h, p.K, p.Stride, p.Pad, 1)
	ow := convOutDim(w, p.K, p.Stride, p.Pad, 1)
	out := tensor.New(n, c, oh, ow)
	inv := 1.0 / float64(p.K*p.K)
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := 0.0
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += xd[base+iy*w+ix]
						}
					}
					od[((b*c+ch)*oh+oy)*ow+ox] = acc * inv
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, oh, ow := mustDims4(grad, "AvgPool2D.Backward")
	gradX := tensor.New(p.lastShape...)
	h, w := p.lastShape[2], p.lastShape[3]
	inv := 1.0 / float64(p.K*p.K)
	gd, gxd := grad.Data(), gradX.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := gd[((b*c+ch)*oh+oy)*ow+ox] * inv
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							gxd[base+iy*w+ix] += gv
						}
					}
				}
			}
		}
	}
	return gradX
}

// GlobalAvgPool averages each channel's spatial map to a single value,
// producing [N, C] output from [N, C, H, W] input.
type GlobalAvgPool struct {
	lastShape []int
}

var _ Module = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Params implements Module.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Module.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "GlobalAvgPool")
	p.lastShape = x.Shape()
	out := tensor.New(n, c)
	inv := 1.0 / float64(h*w)
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			acc := 0.0
			for i := 0; i < h*w; i++ {
				acc += xd[base+i]
			}
			od[b*c+ch] = acc * inv
		}
	}
	return out
}

// Backward implements Module.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gradX := tensor.New(p.lastShape...)
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	inv := 1.0 / float64(h*w)
	gd, gxd := grad.Data(), gradX.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			gv := gd[b*c+ch] * inv
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				gxd[base+i] = gv
			}
		}
	}
	return gradX
}

// SubSample spatially subsamples by taking every stride-th pixel. It is the
// strided form of the identity operation in reduction cells (a simplification
// of DARTS' factorized reduce; see DESIGN.md §2).
type SubSample struct {
	Stride int

	lastShape []int
}

var _ Module = (*SubSample)(nil)

// NewSubSample constructs a stride-s spatial subsampler.
func NewSubSample(stride int) *SubSample { return &SubSample{Stride: stride} }

// Params implements Module.
func (s *SubSample) Params() []*Param { return nil }

// Forward implements Module.
func (s *SubSample) Forward(x *tensor.Tensor) *tensor.Tensor {
	if s.Stride == 1 {
		s.lastShape = x.Shape()
		return x.Clone()
	}
	n, c, h, w := mustDims4(x, "SubSample")
	s.lastShape = x.Shape()
	oh := (h + s.Stride - 1) / s.Stride
	ow := (w + s.Stride - 1) / s.Stride
	out := tensor.New(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					od[((b*c+ch)*oh+oy)*ow+ox] = xd[base+oy*s.Stride*w+ox*s.Stride]
				}
			}
		}
	}
	return out
}

// Backward implements Module.
func (s *SubSample) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.Stride == 1 {
		return grad.Clone()
	}
	gradX := tensor.New(s.lastShape...)
	n, c, oh, ow := mustDims4(grad, "SubSample.Backward")
	h, w := s.lastShape[2], s.lastShape[3]
	gd, gxd := grad.Data(), gradX.Data()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := ((b*c + ch) * h) * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gxd[base+oy*s.Stride*w+ox*s.Stride] = gd[((b*c+ch)*oh+oy)*ow+ox]
				}
			}
		}
	}
	return gradX
}
