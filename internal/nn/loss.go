package nn

import (
	"fmt"
	"math"

	"fedrlnas/internal/tensor"
)

// LossResult bundles the outputs of a loss evaluation.
type LossResult struct {
	Loss       float64        // mean cross-entropy over the batch
	Accuracy   float64        // fraction of correct argmax predictions
	GradLogits *tensor.Tensor // dLoss/dLogits, already divided by batch size
}

// CrossEntropy computes softmax cross-entropy between logits [N, classes]
// and integer labels, along with top-1 accuracy and the logits gradient.
func CrossEntropy(logits *tensor.Tensor, labels []int) (LossResult, error) {
	return CrossEntropyInto(nil, logits, labels)
}

// CrossEntropyInto is CrossEntropy with a caller-provided gradient buffer:
// gradBuf is reused as GradLogits when its shape matches (allocated
// otherwise), letting hot loops evaluate the loss without per-step
// allocations.
func CrossEntropyInto(gradBuf *tensor.Tensor, logits *tensor.Tensor, labels []int) (LossResult, error) {
	if logits.Dims() != 2 {
		return LossResult{}, fmt.Errorf("cross-entropy: logits must be 2-D, got %v", logits.Shape())
	}
	n, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return LossResult{}, fmt.Errorf("cross-entropy: %d labels for batch of %d", len(labels), n)
	}
	grad := gradBuf
	if grad == nil || !grad.ShapeIs(n, classes) {
		grad = tensor.New(n, classes)
	}
	ld, gd := logits.Data(), grad.Data()
	totalLoss := 0.0
	correct := 0
	invN := 1.0 / float64(n)
	for b := 0; b < n; b++ {
		y := labels[b]
		if y < 0 || y >= classes {
			return LossResult{}, fmt.Errorf("cross-entropy: label %d out of range [0,%d)", y, classes)
		}
		row := ld[b*classes : (b+1)*classes]
		// Stable log-softmax.
		m := math.Inf(-1)
		argmax := 0
		for i, v := range row {
			if v > m {
				m, argmax = v, i
			}
		}
		sumExp := 0.0
		for _, v := range row {
			sumExp += math.Exp(v - m)
		}
		logSum := m + math.Log(sumExp)
		totalLoss += logSum - row[y]
		if argmax == y {
			correct++
		}
		grow := gd[b*classes : (b+1)*classes]
		for i, v := range row {
			p := math.Exp(v - logSum)
			grow[i] = p * invN
		}
		grow[y] -= invN
	}
	return LossResult{
		Loss:       totalLoss * invN,
		Accuracy:   float64(correct) * invN,
		GradLogits: grad,
	}, nil
}

// Accuracy computes top-1 accuracy of logits [N, classes] against labels
// without building gradients (evaluation mode).
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, classes := logits.Dim(0), logits.Dim(1)
	ld := logits.Data()
	correct := 0
	for b := 0; b < n && b < len(labels); b++ {
		row := ld[b*classes : (b+1)*classes]
		best, bi := math.Inf(-1), 0
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		if bi == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
