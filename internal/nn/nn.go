// Package nn is a from-scratch deep-learning substrate: layers with explicit
// forward/backward passes, an SGD optimizer, and gradient-check utilities.
//
// It stands in for the PyTorch+GPU stack the paper used (see DESIGN.md §2).
// Every candidate operation in the DARTS search space — separable and dilated
// convolutions, pooling, identity, zero — is implemented here with real
// gradients, so the federated NAS algorithm above it trains genuinely.
//
// Modules are stateful: Forward caches whatever Backward needs, so each
// module supports exactly one in-flight forward/backward pair. That matches
// how the simulator drives training (strictly sequential per model replica)
// and keeps the implementation simple and allocation-light.
//
// Buffer ownership: tensors returned by Forward and Backward are owned by
// the module and remain valid only until that module's next Forward or
// Backward call, which may overwrite them in place. Callers that need a
// result to outlive the next call must Clone it. This is what makes the
// steady-state training loop allocation-free: every layer reuses its
// output and input-gradient buffers as long as shapes repeat.
package nn

import (
	"fmt"

	"fedrlnas/internal/tensor"
)

// Module is a differentiable layer. Input and output layouts are documented
// per implementation; convolutional modules use [N, C, H, W].
type Module interface {
	// Forward computes the layer output for x and caches intermediates.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients into Params().Grad. It must be called after
	// Forward with a gradient matching the last output's shape.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the module's learnable parameters (possibly empty).
	Params() []*Param
}

// TrainToggler is implemented by modules whose behaviour differs between
// training and evaluation (e.g. batch norm).
type TrainToggler interface {
	SetTraining(training bool)
}

// Param is a learnable tensor with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter wrapping value with a zero gradient.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters in ps.
func ParamCount(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Size()
	}
	return n
}

// ParamBytes returns the float32 wire size of ps, the payload a real
// deployment would transmit (used for the paper's MB figures).
func ParamBytes(ps []*Param) int64 {
	var n int64
	for _, p := range ps {
		n += p.Value.Float32WireSize()
	}
	return n
}

// CloneParamValues deep-copies the parameter values (snapshot for staleness
// memory pools and for participant-local model replicas).
func CloneParamValues(ps []*Param) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Value.Clone()
	}
	return out
}

// RestoreParamValues copies snapshot values back into ps.
func RestoreParamValues(ps []*Param, snap []*tensor.Tensor) error {
	if len(ps) != len(snap) {
		return fmt.Errorf("restore: %d params vs %d snapshot tensors", len(ps), len(snap))
	}
	for i, p := range ps {
		if !p.Value.SameShape(snap[i]) {
			return fmt.Errorf("restore: param %q shape %v vs snapshot %v",
				p.Name, p.Value.Shape(), snap[i].Shape())
		}
		p.Value.CopyFrom(snap[i])
	}
	return nil
}

// CloneParamGrads deep-copies the parameter gradients.
func CloneParamGrads(ps []*Param) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Grad.Clone()
	}
	return out
}

// SetTraining walks modules and toggles any that implement TrainToggler.
func SetTraining(training bool, ms ...Module) {
	for _, m := range ms {
		if t, ok := m.(TrainToggler); ok {
			t.SetTraining(training)
		}
	}
}

// reuseBuf returns buf when its shape matches exactly, else a fresh zeroed
// tensor. Reuse never resizes a tensor in place — a caller still holding
// the previously returned tensor must keep seeing its old shape — and does
// NOT clear the data: callers that accumulate (+=) into the buffer must
// Zero it first.
func reuseBuf(buf *tensor.Tensor, shape ...int) *tensor.Tensor {
	if buf != nil && buf.ShapeIs(shape...) {
		return buf
	}
	// Hand tensor.New its own copy so the variadic slice does not escape:
	// steady-state calls must stay allocation-free.
	fresh := make([]int, len(shape))
	copy(fresh, shape)
	return tensor.New(fresh...)
}

// reuseBufLike is reuseBuf matching src's shape, without the Shape() clone.
func reuseBufLike(buf, src *tensor.Tensor) *tensor.Tensor {
	if buf != nil && buf.SameShape(src) {
		return buf
	}
	return tensor.New(src.Shape()...)
}

// conv output size helper shared by conv and pooling layers.
func convOutDim(in, kernel, stride, pad, dilation int) int {
	eff := dilation*(kernel-1) + 1
	return (in+2*pad-eff)/stride + 1
}

func mustDims4(x *tensor.Tensor, who string) (n, c, h, w int) {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: %s expects [N,C,H,W] input, got shape %v", who, x.Shape()))
	}
	return x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
}
