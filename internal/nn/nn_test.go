package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedrlnas/internal/tensor"
)

const gradTol = 1e-5

// smoothInput returns an input with no exact zeros or ties so that
// finite-difference checks of ReLU/max-pool are well defined.
func smoothInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.Randn(rng, 1, shape...)
	d := x.Data()
	for i := range d {
		d[i] += 0.137 * float64(i%7)
		if math.Abs(d[i]) < 0.05 {
			d[i] += 0.1
		}
	}
	return x
}

func checkModuleGrad(t *testing.T, name string, m Module, x *tensor.Tensor) {
	t.Helper()
	res, err := CheckGradients(m, x, 1e-5)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.MaxRelErr > gradTol {
		t.Errorf("%s: max relative gradient error %.3g at %s", name, res.MaxRelErr, res.Where)
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		opts ConvOpts
		inC  int
		outC int
		k    int
	}{
		{"basic3x3", ConvOpts{Pad: 1}, 2, 3, 3},
		{"stride2", ConvOpts{Stride: 2, Pad: 1}, 2, 2, 3},
		{"dilated", ConvOpts{Pad: 2, Dilation: 2}, 2, 2, 3},
		{"depthwise", ConvOpts{Pad: 1, Groups: 2}, 2, 2, 3},
		{"bias1x1", ConvOpts{Bias: true}, 3, 2, 1},
		{"k5", ConvOpts{Pad: 2}, 1, 2, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2D("c", rng, tc.inC, tc.outC, tc.k, tc.opts)
			x := smoothInput(rng, 2, tc.inC, 5, 5)
			checkModuleGrad(t, tc.name, c, x)
		})
	}
}

func TestConv2DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D("c", rng, 3, 8, 3, ConvOpts{Stride: 2, Pad: 1})
	out := c.Forward(tensor.New(4, 3, 8, 8))
	want := []int{4, 8, 4, 4}
	for i, d := range want {
		if out.Dim(i) != d {
			t.Fatalf("output shape %v, want %v", out.Shape(), want)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("c", rng, 1, 1, 1, ConvOpts{})
	c.weight.Value.Set(1, 0, 0, 0, 0)
	x := tensor.Randn(rng, 1, 2, 1, 3, 3)
	if !c.Forward(x).AllClose(x, 1e-12) {
		t.Error("1x1 identity kernel should pass input through")
	}
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewMaxPool2D(3, 1, 1)
	checkModuleGrad(t, "maxpool s1", p, smoothInput(rng, 2, 2, 5, 5))
	p2 := NewMaxPool2D(3, 2, 1)
	checkModuleGrad(t, "maxpool s2", p2, smoothInput(rng, 1, 2, 6, 6))
}

func TestMaxPoolSelectsMax(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 9, 6,
		7, 8, 5,
	}, 1, 1, 3, 3)
	p := NewMaxPool2D(3, 1, 0)
	out := p.Forward(x)
	if out.At(0, 0, 0, 0) != 9 {
		t.Errorf("max = %v, want 9", out.At(0, 0, 0, 0))
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewAvgPool2D(3, 1, 1)
	checkModuleGrad(t, "avgpool s1", p, smoothInput(rng, 2, 2, 5, 5))
	p2 := NewAvgPool2D(3, 2, 1)
	checkModuleGrad(t, "avgpool s2", p2, smoothInput(rng, 1, 2, 6, 6))
}

func TestGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGlobalAvgPool()
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	out := g.Forward(x)
	if out.At(0, 0) != 2.5 {
		t.Errorf("global avg = %v, want 2.5", out.At(0, 0))
	}
	checkModuleGrad(t, "gap", g, smoothInput(rng, 2, 3, 4, 4))
}

func TestSubSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSubSample(2)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := s.Forward(x)
	want := []float64{1, 3, 9, 11}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("subsample = %v, want %v", out.Data(), want)
		}
	}
	checkModuleGrad(t, "subsample", s, smoothInput(rng, 2, 2, 4, 4))
	s1 := NewSubSample(1)
	checkModuleGrad(t, "subsample s1", s1, smoothInput(rng, 1, 2, 3, 3))
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checkModuleGrad(t, "relu", NewReLU(), smoothInput(rng, 2, 2, 3, 3))
}

func TestZeroOp(t *testing.T) {
	z := NewZero(1)
	x := tensor.Full(3, 1, 2, 4, 4)
	out := z.Forward(x)
	if out.Sum() != 0 {
		t.Error("Zero op must output zeros")
	}
	gin := z.Backward(tensor.Full(1, 1, 2, 4, 4))
	if gin.Sum() != 0 {
		t.Error("Zero op must back-propagate zeros")
	}
	z2 := NewZero(2)
	out2 := z2.Forward(x)
	if out2.Dim(2) != 2 || out2.Dim(3) != 2 {
		t.Errorf("strided zero shape %v", out2.Shape())
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLinear("fc", rng, 4, 3)
	checkModuleGrad(t, "linear", l, smoothInput(rng, 3, 4))
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bn := NewBatchNorm2D("bn", 2)
	checkModuleGrad(t, "bn train", bn, smoothInput(rng, 3, 2, 3, 3))

	bn2 := NewBatchNorm2D("bn2", 2)
	bn2.Forward(smoothInput(rng, 3, 2, 3, 3)) // populate running stats
	bn2.SetTraining(false)
	checkModuleGrad(t, "bn eval", bn2, smoothInput(rng, 3, 2, 3, 3))
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bn := NewBatchNorm2D("bn", 3)
	x := tensor.Randn(rng, 5, 4, 3, 6, 6)
	d := x.Data()
	for i := range d {
		d[i] += 10 // big offset that BN should remove
	}
	out := bn.Forward(x)
	if m := out.Mean(); math.Abs(m) > 1e-8 {
		t.Errorf("BN output mean %v, want ~0", m)
	}
}

func TestSepConvAndDilConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sc := NewSepConv("sep", rng, 2, 3, 1)
	checkModuleGrad(t, "sepconv", sc, smoothInput(rng, 2, 2, 5, 5))
	dc := NewDilConv("dil", rng, 2, 3, 1)
	checkModuleGrad(t, "dilconv", dc, smoothInput(rng, 2, 2, 7, 7))
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seq := NewSequential(
		NewConv2D("c1", rng, 1, 2, 3, ConvOpts{Pad: 1}),
		NewReLU(),
		NewConv2D("c2", rng, 2, 1, 1, ConvOpts{}),
	)
	if got := len(seq.Params()); got != 2 {
		t.Fatalf("Sequential.Params len = %d, want 2", got)
	}
	checkModuleGrad(t, "sequential", seq, smoothInput(rng, 2, 1, 4, 4))
}

func TestCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		10, 0, 0,
		0, 10, 0,
	}, 2, 3)
	res, err := CrossEntropy(logits, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1 {
		t.Errorf("accuracy = %v, want 1", res.Accuracy)
	}
	if res.Loss > 0.01 {
		t.Errorf("confident correct loss = %v, want ~0", res.Loss)
	}
	// Uniform logits: loss == ln(classes).
	res2, err := CrossEntropy(tensor.New(2, 3), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Loss-math.Log(3)) > 1e-9 {
		t.Errorf("uniform loss = %v, want ln 3", res2.Loss)
	}
}

func TestCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := tensor.Randn(rng, 1, 3, 4)
	labels := []int{1, 3, 0}
	res, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-6
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + eps
		up, _ := CrossEntropy(logits, labels)
		ld[i] = orig - eps
		down, _ := CrossEntropy(logits, labels)
		ld[i] = orig
		num := (up.Loss - down.Loss) / (2 * eps)
		if math.Abs(num-res.GradLogits.Data()[i]) > 1e-6 {
			t.Fatalf("grad[%d]: analytic %v numeric %v", i, res.GradLogits.Data()[i], num)
		}
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	if _, err := CrossEntropy(tensor.New(2, 3), []int{0}); err == nil {
		t.Error("expected error for label/batch mismatch")
	}
	if _, err := CrossEntropy(tensor.New(2, 3), []int{0, 5}); err == nil {
		t.Error("expected error for out-of-range label")
	}
	if _, err := CrossEntropy(tensor.New(6), []int{0}); err == nil {
		t.Error("expected error for 1-D logits")
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{1, 1}, 2))
	p.Grad.CopyFrom(tensor.FromSlice([]float64{1, -1}, 2))
	opt := NewSGD(0.1, 0, 0, 0)
	opt.Step([]*Param{p})
	if got := p.Value.At(0); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("after step w[0] = %v, want 0.9", got)
	}
	if got := p.Value.At(1); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("after step w[1] = %v, want 1.1", got)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParam("w", tensor.New(1))
	opt := NewSGD(1, 0.5, 0, 0)
	p.Grad.Fill(1)
	opt.Step([]*Param{p}) // v=1, w=-1
	opt.Step([]*Param{p}) // v=1.5, w=-2.5
	if got := p.Value.At(0); math.Abs(got-(-2.5)) > 1e-12 {
		t.Errorf("momentum w = %v, want -2.5", got)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{2}, 1))
	opt := NewSGD(0.5, 0, 0.1, 0)
	opt.Step([]*Param{p}) // g = 0 + 0.1*2 = 0.2 → w = 2 - 0.1 = 1.9
	if got := p.Value.At(0); math.Abs(got-1.9) > 1e-12 {
		t.Errorf("weight decay w = %v, want 1.9", got)
	}
}

func TestSGDGradClip(t *testing.T) {
	p := NewParam("w", tensor.New(2))
	p.Grad.CopyFrom(tensor.FromSlice([]float64{30, 40}, 2)) // norm 50
	opt := NewSGD(1, 0, 0, 5)
	opt.Step([]*Param{p})
	if got := opt.LastGradNorm(); math.Abs(got-50) > 1e-9 {
		t.Errorf("pre-clip norm = %v, want 50", got)
	}
	// After clip to norm 5: grad = (3, 4); w = -(3,4).
	if got := p.Value.At(1); math.Abs(got-(-4)) > 1e-9 {
		t.Errorf("clipped step w[1] = %v, want -4", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := NewLinear("fc", rng, 3, 2)
	snap := CloneParamValues(l.Params())
	l.Params()[0].Value.Fill(0)
	if err := RestoreParamValues(l.Params(), snap); err != nil {
		t.Fatal(err)
	}
	if l.Params()[0].Value.Sum() == 0 {
		t.Error("restore did not bring weights back")
	}
	if err := RestoreParamValues(l.Params(), snap[:1]); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestParamCountAndBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	l := NewLinear("fc", rng, 3, 2)
	if got := ParamCount(l.Params()); got != 3*2+2 {
		t.Errorf("ParamCount = %d, want 8", got)
	}
	if ParamBytes(l.Params()) <= 0 {
		t.Error("ParamBytes must be positive")
	}
}

// Training a tiny model end to end must reduce the loss — the substrate's
// core integration invariant.
func TestEndToEndTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	model := NewSequential(
		NewConv2D("c1", rng, 1, 4, 3, ConvOpts{Pad: 1}),
		NewBatchNorm2D("bn1", 4),
		NewReLU(),
		NewGlobalAvgPool(),
		NewLinear("fc", rng, 4, 2),
	)
	// Two separable classes of 4x4 "images".
	n := 16
	x := tensor.New(n, 1, 4, 4)
	labels := make([]int, n)
	for b := 0; b < n; b++ {
		labels[b] = b % 2
		val := -1.0
		if labels[b] == 1 {
			val = 1.0
		}
		for i := 0; i < 16; i++ {
			x.Set(val+0.3*rng.NormFloat64(), b, 0, i/4, i%4)
		}
	}
	opt := NewSGD(0.1, 0.9, 0, 5)
	var first, last float64
	for step := 0; step < 40; step++ {
		ZeroGrads(model.Params())
		logits := model.Forward(x)
		res, err := CrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		model.Backward(res.GradLogits)
		opt.Step(model.Params())
		if step == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v last %v", first, last)
	}
	if last > 0.3 {
		t.Errorf("final loss %v too high for separable data", last)
	}
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	r := NewBasicBlock("rb", rng, 2)
	checkModuleGrad(t, "residual", r, smoothInput(rng, 2, 2, 4, 4))
}

func TestResidualIdentityPath(t *testing.T) {
	// A residual block whose body outputs zero must be the identity.
	body := NewZero(1)
	r := NewResidual(body)
	rng := rand.New(rand.NewSource(21))
	x := tensor.Randn(rng, 1, 1, 2, 3, 3)
	if !r.Forward(x).AllClose(x, 0) {
		t.Error("zero-body residual must pass input through")
	}
	grad := tensor.Randn(rng, 1, 1, 2, 3, 3)
	if !r.Backward(grad).AllClose(grad, 0) {
		t.Error("zero-body residual must pass gradient through")
	}
}

func TestConvEdgeGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	cases := []struct {
		name           string
		inC, outC, k   int
		opts           ConvOpts
		h, w           int
		wantOH, wantOW int
	}{
		{"1x1 input", 2, 3, 1, ConvOpts{}, 1, 1, 1, 1},
		{"kernel equals input", 1, 1, 3, ConvOpts{}, 3, 3, 1, 1},
		{"stride exceeds kernel", 1, 1, 1, ConvOpts{Stride: 3}, 7, 7, 3, 3},
		{"heavy padding", 1, 1, 3, ConvOpts{Pad: 3}, 2, 2, 6, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2D("c", rng, tc.inC, tc.outC, tc.k, tc.opts)
			x := tensor.Randn(rng, 1, 1, tc.inC, tc.h, tc.w)
			out := c.Forward(x)
			if out.Dim(2) != tc.wantOH || out.Dim(3) != tc.wantOW {
				t.Fatalf("output %v, want spatial %dx%d", out.Shape(), tc.wantOH, tc.wantOW)
			}
			// Backward must produce an input-shaped gradient.
			gin := c.Backward(tensor.Randn(rng, 1, out.Shape()...))
			if !gin.SameShape(x) {
				t.Fatalf("grad shape %v != input %v", gin.Shape(), x.Shape())
			}
		})
	}
}

func TestBatchSizeOneBatchNorm(t *testing.T) {
	// N=1 training-mode BN must not divide by zero (variance over H*W only).
	rng := rand.New(rand.NewSource(31))
	bn := NewBatchNorm2D("bn", 2)
	out := bn.Forward(tensor.Randn(rng, 1, 1, 2, 3, 3))
	if out.HasNaN() {
		t.Fatal("N=1 batch norm produced NaN")
	}
}

func TestMaxPoolAllPaddingWindow(t *testing.T) {
	// A window fully in padding must output 0, not -Inf.
	p := NewMaxPool2D(3, 4, 1) // sparse sampling with padding
	x := tensor.Full(-5, 1, 1, 2, 2)
	out := p.Forward(x)
	if out.HasNaN() {
		t.Fatal("max pool produced NaN/Inf on padded window")
	}
}

func TestCrossEntropyExtremeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0, 0, 1e4, -1e4}, 2, 3)
	res, err := CrossEntropy(logits, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GradLogits.HasNaN() {
		t.Fatal("extreme logits produced NaN gradients")
	}
}
