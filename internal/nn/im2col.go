package nn

import (
	"fedrlnas/internal/tensor"
)

// im2col lowers convolution to matrix multiplication: patches of the input
// become columns of a matrix that is multiplied by the flattened kernels.
// For the group-free case this is usually faster than the direct loops in
// conv.go because the inner product runs over contiguous memory.
//
// Conv2D uses it automatically for Groups == 1; grouped (depthwise)
// convolutions keep the direct path, whose inner loops are already small.

// growScratch returns a length-n slice backed by buf when it is large
// enough, allocating only on growth. Contents are unspecified; callers
// overwrite (im2colBuffer) or zero (the colGrad loop) before reading.
func growScratch(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// im2colBuffer extracts patches from one image [C,H,W] into a
// [C*kH*kW, oH*oW] matrix (column-major over output positions).
func im2colBuffer(xd []float64, c, h, w, kh, kw, stride, pad, dilation, oh, ow int, out []float64) {
	cols := oh * ow
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((ch*kh+ky)*kw + kx) * cols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky*dilation
					dst := rowBase + oy*ow
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							out[dst+ox] = 0
						}
						continue
					}
					srcRow := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx*dilation
						if ix < 0 || ix >= w {
							out[dst+ox] = 0
						} else {
							out[dst+ox] = xd[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// col2imAdd scatters a [C*kH*kW, oH*oW] column matrix back into an image
// gradient [C,H,W], accumulating overlaps (the transpose of im2colBuffer).
func col2imAdd(cols []float64, c, h, w, kh, kw, stride, pad, dilation, oh, ow int, dst []float64) {
	n := oh * ow
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((ch*kh+ky)*kw + kx) * n
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky*dilation
					if iy < 0 || iy >= h {
						continue
					}
					srcRow := rowBase + oy*ow
					dstRow := base + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx*dilation
						if ix < 0 || ix >= w {
							continue
						}
						dst[dstRow+ix] += cols[srcRow+ox]
					}
				}
			}
		}
	}
}

// forwardIm2col computes the convolution via im2col + matmul for Groups==1.
func (c *Conv2D) forwardIm2col(x *tensor.Tensor) *tensor.Tensor {
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := convOutDim(h, c.KH, c.Stride, c.Pad, c.Dilation)
	ow := convOutDim(w, c.KW, c.Stride, c.Pad, c.Dilation)
	out := tensor.New(n, c.OutC, oh, ow)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	c.colBuf = growScratch(c.colBuf, k*cols)
	buf := c.colBuf
	xd, od := x.Data(), out.Data()
	wd := c.weight.Value.Data() // [OutC, k] when flattened
	var biasD []float64
	if c.bias != nil {
		biasD = c.bias.Value.Data()
	}
	imgSize := c.InC * h * w
	for b := 0; b < n; b++ {
		im2colBuffer(xd[b*imgSize:(b+1)*imgSize], c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, buf)
		// out[b] = W (OutC×k) × buf (k×cols)
		for oc := 0; oc < c.OutC; oc++ {
			wrow := wd[oc*k : (oc+1)*k]
			orow := od[(b*c.OutC+oc)*cols : (b*c.OutC+oc+1)*cols]
			if biasD != nil {
				bv := biasD[oc]
				for j := range orow {
					orow[j] = bv
				}
			}
			for p := 0; p < k; p++ {
				wv := wrow[p]
				if wv == 0 {
					continue
				}
				brow := buf[p*cols : (p+1)*cols]
				for j := 0; j < cols; j++ {
					orow[j] += wv * brow[j]
				}
			}
		}
	}
	return out
}

// backwardIm2col computes weight/bias/input gradients via the column
// representation for Groups==1.
func (c *Conv2D) backwardIm2col(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := grad.Dim(2), grad.Dim(3)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	c.colBuf = growScratch(c.colBuf, k*cols)
	c.colGradBuf = growScratch(c.colGradBuf, k*cols)
	buf, colGrad := c.colBuf, c.colGradBuf
	gradX := tensor.New(x.Shape()...)
	xd, gd, gxd := x.Data(), grad.Data(), gradX.Data()
	wd, gwd := c.weight.Value.Data(), c.weight.Grad.Data()
	var gbd []float64
	if c.bias != nil {
		gbd = c.bias.Grad.Data()
	}
	imgSize := c.InC * h * w
	for b := 0; b < n; b++ {
		im2colBuffer(xd[b*imgSize:(b+1)*imgSize], c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, buf)
		for i := range colGrad {
			colGrad[i] = 0
		}
		for oc := 0; oc < c.OutC; oc++ {
			grow := gd[(b*c.OutC+oc)*cols : (b*c.OutC+oc+1)*cols]
			if gbd != nil {
				s := 0.0
				for _, v := range grow {
					s += v
				}
				gbd[oc] += s
			}
			wrow := wd[oc*k : (oc+1)*k]
			gwrow := gwd[oc*k : (oc+1)*k]
			for p := 0; p < k; p++ {
				brow := buf[p*cols : (p+1)*cols]
				cgrow := colGrad[p*cols : (p+1)*cols]
				wv := wrow[p]
				s := 0.0
				for j := 0; j < cols; j++ {
					gv := grow[j]
					s += gv * brow[j]
					cgrow[j] += gv * wv
				}
				gwrow[p] += s
			}
		}
		col2imAdd(colGrad, c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, gxd[b*imgSize:(b+1)*imgSize])
	}
	return gradX
}
