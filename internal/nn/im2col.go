package nn

import (
	"fedrlnas/internal/tensor"
)

// im2col lowers convolution to matrix multiplication: patches of the input
// become columns of a matrix that is multiplied by the flattened kernels.
// The whole batch is lowered at once into a single [C*kH*kW, N*oH*oW]
// column matrix so each pass runs ONE GEMM per layer (wide enough to
// amortize the kernel's packing) instead of a small matmul per image.
//
// Conv2D uses it automatically for Groups == 1; grouped (depthwise)
// convolutions keep the direct path, whose shift-and-AXPY loops are already
// branch-free (see conv.go).

// floatT constrains the lowering helpers to the two precisions the compute
// switch supports (see precision.go); the generic bodies compile to exactly
// the float64 code that was here before.
type floatT interface {
	~float32 | ~float64
}

// growScratch returns a length-n slice backed by buf when it is large
// enough, allocating only on growth. Contents are unspecified; callers
// overwrite before reading.
func growScratch[F floatT](buf []F, n int) []F {
	if cap(buf) < n {
		return make([]F, n)
	}
	return buf[:n]
}

// im2colBuffer extracts patches from one image [C,H,W] into columns
// [colOff, colOff+oH*oW) of a column matrix with row stride ld. With
// ld = oH*oW and colOff = 0 it produces the single-image [C*kH*kW, oH*oW]
// matrix; the batch path lays images side by side with ld = N*oH*oW.
func im2colBuffer[F floatT](xd []F, c, h, w, kh, kw, stride, pad, dilation, oh, ow int, out []F, ld, colOff int) {
	if kh == 1 && kw == 1 && stride == 1 && pad == 0 {
		// Pointwise fast path: row ch of the column matrix is channel ch's
		// plane verbatim.
		for ch := 0; ch < c; ch++ {
			copy(out[ch*ld+colOff:ch*ld+colOff+oh*ow], xd[ch*h*w:ch*h*w+oh*ow])
		}
		return
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			kyOff := ky*dilation - pad
			for kx := 0; kx < kw; kx++ {
				kxOff := kx*dilation - pad
				ox0, ox1 := convValid(ow, kxOff, stride, w)
				rowBase := ((ch*kh+ky)*kw+kx)*ld + colOff
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + kyOff
					dst := out[rowBase+oy*ow : rowBase+(oy+1)*ow]
					if iy < 0 || iy >= h || ox0 > ox1 {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					for i := range dst[:ox0] {
						dst[i] = 0
					}
					for i := range dst[ox1+1:] {
						dst[ox1+1+i] = 0
					}
					srcRow := base + iy*w
					if stride == 1 {
						copy(dst[ox0:ox1+1], xd[srcRow+ox0+kxOff:srcRow+ox1+kxOff+1])
					} else {
						ix := ox0*stride + kxOff
						for ox := ox0; ox <= ox1; ox++ {
							dst[ox] = xd[srcRow+ix]
							ix += stride
						}
					}
				}
			}
		}
	}
}

// col2imAdd scatters columns [colOff, colOff+oH*oW) of a column matrix with
// row stride ld back into an image gradient [C,H,W], accumulating overlaps
// (the transpose of im2colBuffer).
func col2imAdd[F floatT](cols []F, c, h, w, kh, kw, stride, pad, dilation, oh, ow int, dst []F, ld, colOff int) {
	if kh == 1 && kw == 1 && stride == 1 && pad == 0 {
		for ch := 0; ch < c; ch++ {
			src := cols[ch*ld+colOff : ch*ld+colOff+oh*ow]
			d := dst[ch*h*w : ch*h*w+oh*ow]
			for i, v := range src {
				d[i] += v
			}
		}
		return
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			kyOff := ky*dilation - pad
			oy0, oy1 := convValid(oh, kyOff, stride, h)
			for kx := 0; kx < kw; kx++ {
				kxOff := kx*dilation - pad
				ox0, ox1 := convValid(ow, kxOff, stride, w)
				rowBase := ((ch*kh+ky)*kw+kx)*ld + colOff
				for oy := oy0; oy <= oy1; oy++ {
					srcRow := rowBase + oy*ow
					dstRow := base + (oy*stride+kyOff)*w
					ix := ox0*stride + kxOff
					for ox := ox0; ox <= ox1; ox++ {
						dst[dstRow+ix] += cols[srcRow+ox]
						ix += stride
					}
				}
			}
		}
	}
}

// lowerBatch fills colBuf (row stride total = n*cols) with the whole batch.
func (c *Conv2D) lowerBatch(x *tensor.Tensor, n, h, w, oh, ow int) {
	xd := x.Data()
	cols := oh * ow
	total := n * cols
	imgSize := c.InC * h * w
	for b := 0; b < n; b++ {
		im2colBuffer(xd[b*imgSize:(b+1)*imgSize], c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, c.colBuf, total, b*cols)
	}
}

// forwardIm2col computes the convolution via batch im2col + one GEMM for
// Groups==1. The returned tensor is the layer's persistent output buffer.
func (c *Conv2D) forwardIm2col(x *tensor.Tensor) *tensor.Tensor {
	if ActivePrecision() == FP32 {
		return c.forwardIm2colF32(x)
	}
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := convOutDim(h, c.KH, c.Stride, c.Pad, c.Dilation)
	ow := convOutDim(w, c.KW, c.Stride, c.Pad, c.Dilation)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	total := n * cols

	c.outBuf = reuseBuf(c.outBuf, n, c.OutC, oh, ow)
	out := c.outBuf
	c.colBuf = growScratch(c.colBuf, k*total)
	c.outColBuf = growScratch(c.outColBuf, c.OutC*total)
	c.lowerBatch(x, n, h, w, oh, ow)

	// outCol [OutC, total] = W [OutC, k] · colAll [k, total]
	tensor.GemmRaw(false, false, c.OutC, total, k, 1,
		c.weight.Value.Data(), k, c.colBuf, total, 0, c.outColBuf, total)

	// Scatter image-major: outCol[oc, b*cols+j] → out[b, oc, j], plus bias.
	od := out.Data()
	var biasD []float64
	if c.bias != nil {
		biasD = c.bias.Value.Data()
	}
	for oc := 0; oc < c.OutC; oc++ {
		src := c.outColBuf[oc*total : (oc+1)*total]
		for b := 0; b < n; b++ {
			dst := od[(b*c.OutC+oc)*cols : (b*c.OutC+oc+1)*cols]
			s := src[b*cols : (b+1)*cols]
			if biasD == nil {
				copy(dst, s)
			} else {
				bv := biasD[oc]
				for j, v := range s {
					dst[j] = v + bv
				}
			}
		}
	}
	return out
}

// backwardIm2col computes weight/bias/input gradients with two GEMMs over
// the batch-wide column representation for Groups==1.
func (c *Conv2D) backwardIm2col(grad *tensor.Tensor) *tensor.Tensor {
	if ActivePrecision() == FP32 {
		return c.backwardIm2colF32(grad)
	}
	x := c.lastX
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := grad.Dim(2), grad.Dim(3)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	total := n * cols

	c.colBuf = growScratch(c.colBuf, k*total)
	c.colGradBuf = growScratch(c.colGradBuf, k*total)
	c.gradColBuf = growScratch(c.gradColBuf, c.OutC*total)
	c.gradXBuf = reuseBufLike(c.gradXBuf, x)
	gradX := c.gradXBuf
	gradX.Zero() // col2imAdd accumulates into it
	c.lowerBatch(x, n, h, w, oh, ow)

	// Gather the output gradient image-major into gradCol [OutC, total].
	gd := grad.Data()
	for oc := 0; oc < c.OutC; oc++ {
		dst := c.gradColBuf[oc*total : (oc+1)*total]
		for b := 0; b < n; b++ {
			copy(dst[b*cols:(b+1)*cols], gd[(b*c.OutC+oc)*cols:(b*c.OutC+oc+1)*cols])
		}
	}
	if c.bias != nil {
		gbd := c.bias.Grad.Data()
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, v := range c.gradColBuf[oc*total : (oc+1)*total] {
				s += v
			}
			gbd[oc] += s
		}
	}

	// gradW [OutC, k] += gradCol [OutC, total] · colAllᵀ [total, k]
	tensor.GemmRaw(false, true, c.OutC, k, total, 1,
		c.gradColBuf, total, c.colBuf, total, 1, c.weight.Grad.Data(), k)
	// colGrad [k, total] = Wᵀ [k, OutC] · gradCol [OutC, total]
	tensor.GemmRaw(true, false, k, total, c.OutC, 1,
		c.weight.Value.Data(), k, c.gradColBuf, total, 0, c.colGradBuf, total)

	gxd := gradX.Data()
	imgSize := c.InC * h * w
	for b := 0; b < n; b++ {
		col2imAdd(c.colGradBuf, c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, gxd[b*imgSize:(b+1)*imgSize], total, b*cols)
	}
	return gradX
}

// lowerBatchF32 is lowerBatch over the narrowed input shadow.
func (c *Conv2D) lowerBatchF32(n, h, w, oh, ow int) {
	cols := oh * ow
	total := n * cols
	imgSize := c.InC * h * w
	for b := 0; b < n; b++ {
		im2colBuffer(c.x32[b*imgSize:(b+1)*imgSize], c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, c.col32, total, b*cols)
	}
}

// forwardIm2colF32 is the fp32 compute path: the input and weights are
// narrowed into per-layer float32 shadows, lowered and multiplied in
// float32, and the product widened back into the float64 output (bias is
// added in float64). See precision.go for the contract.
func (c *Conv2D) forwardIm2colF32(x *tensor.Tensor) *tensor.Tensor {
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := convOutDim(h, c.KH, c.Stride, c.Pad, c.Dilation)
	ow := convOutDim(w, c.KW, c.Stride, c.Pad, c.Dilation)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	total := n * cols

	c.outBuf = reuseBuf(c.outBuf, n, c.OutC, oh, ow)
	out := c.outBuf
	c.x32 = tensor.Narrow(c.x32, x.Data())
	c.col32 = growScratch(c.col32, k*total)
	c.lowerBatchF32(n, h, w, oh, ow)
	c.w32 = tensor.Narrow(c.w32, c.weight.Value.Data())
	c.outCol32 = growScratch(c.outCol32, c.OutC*total)

	// outCol [OutC, total] = W [OutC, k] · colAll [k, total], in float32.
	tensor.GemmRawF32(false, false, c.OutC, total, k, 1,
		c.w32, k, c.col32, total, 0, c.outCol32, total)

	od := out.Data()
	var biasD []float64
	if c.bias != nil {
		biasD = c.bias.Value.Data()
	}
	for oc := 0; oc < c.OutC; oc++ {
		src := c.outCol32[oc*total : (oc+1)*total]
		for b := 0; b < n; b++ {
			dst := od[(b*c.OutC+oc)*cols : (b*c.OutC+oc+1)*cols]
			s := src[b*cols : (b+1)*cols]
			if biasD == nil {
				for j, v := range s {
					dst[j] = float64(v)
				}
			} else {
				bv := biasD[oc]
				for j, v := range s {
					dst[j] = float64(v) + bv
				}
			}
		}
	}
	return out
}

// backwardIm2colF32 mirrors backwardIm2col in float32. The float64 master
// gradients still accumulate (+=): the fp32 products are computed with
// beta=0 into scratch and widen-added, so gradient accumulation across
// cells keeps float64 carry. Bias gradients sum the narrowed output
// gradient in float64.
func (c *Conv2D) backwardIm2colF32(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := grad.Dim(2), grad.Dim(3)
	k := c.InC * c.KH * c.KW
	cols := oh * ow
	total := n * cols
	imgSize := c.InC * h * w

	c.x32 = tensor.Narrow(c.x32, x.Data())
	c.col32 = growScratch(c.col32, k*total)
	c.lowerBatchF32(n, h, w, oh, ow)

	// Gather the output gradient image-major into gradCol [OutC, total],
	// narrowing on the way.
	c.gradCol32 = growScratch(c.gradCol32, c.OutC*total)
	gd := grad.Data()
	for oc := 0; oc < c.OutC; oc++ {
		dst := c.gradCol32[oc*total : (oc+1)*total]
		for b := 0; b < n; b++ {
			src := gd[(b*c.OutC+oc)*cols : (b*c.OutC+oc+1)*cols]
			d := dst[b*cols : (b+1)*cols]
			for j, v := range src {
				d[j] = float32(v)
			}
		}
	}
	if c.bias != nil {
		gbd := c.bias.Grad.Data()
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			for _, v := range c.gradCol32[oc*total : (oc+1)*total] {
				s += float64(v)
			}
			gbd[oc] += s
		}
	}

	// gradW [OutC, k] += widen(gradCol · colAllᵀ)
	c.dw32 = growScratch(c.dw32, c.OutC*k)
	tensor.GemmRawF32(false, true, c.OutC, k, total, 1,
		c.gradCol32, total, c.col32, total, 0, c.dw32, k)
	tensor.WidenAdd(c.weight.Grad.Data(), c.dw32)

	// colGrad [k, total] = Wᵀ [k, OutC] · gradCol [OutC, total]
	c.colGrad32 = growScratch(c.colGrad32, k*total)
	tensor.GemmRawF32(true, false, k, total, c.OutC, 1,
		c.w32, k, c.gradCol32, total, 0, c.colGrad32, total)

	c.gradXBuf = reuseBufLike(c.gradXBuf, x)
	gradX := c.gradXBuf
	c.gx32 = growScratch(c.gx32, n*imgSize)
	for i := range c.gx32 {
		c.gx32[i] = 0
	}
	for b := 0; b < n; b++ {
		col2imAdd(c.colGrad32, c.InC, h, w, c.KH, c.KW,
			c.Stride, c.Pad, c.Dilation, oh, ow, c.gx32[b*imgSize:(b+1)*imgSize], total, b*cols)
	}
	tensor.Widen(gradX.Data(), c.gx32)
	return gradX
}
