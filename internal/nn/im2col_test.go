package nn

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/tensor"
)

// directForward runs the loop-based convolution path regardless of Groups,
// to verify the im2col fast path against it.
func directForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	saved := c.Groups
	// Temporarily force the direct path by pretending it is grouped; a
	// 1-group conv equals itself, so instead we copy into a clone with the
	// same weights and call the direct code through a grouped twin when
	// possible. Simplest honest approach: replicate the direct algorithm
	// here for groups == 1.
	_ = saved
	n, _, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h+2*c.Pad-(c.Dilation*(c.KH-1)+1))/c.Stride + 1
	ow := (w+2*c.Pad-(c.Dilation*(c.KW-1)+1))/c.Stride + 1
	out := tensor.New(n, c.OutC, oh, ow)
	xd, wd, od := x.Data(), c.weight.Value.Data(), out.Data()
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			var biasV float64
			if c.bias != nil {
				biasV = c.bias.Value.Data()[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := biasV
					for ic := 0; ic < c.InC; ic++ {
						xBase := ((b*c.InC + ic) * h) * w
						wBase := ((oc*c.InC + ic) * c.KH) * c.KW
						for ky := 0; ky < c.KH; ky++ {
							iy := oy*c.Stride - c.Pad + ky*c.Dilation
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.KW; kx++ {
								ix := ox*c.Stride - c.Pad + kx*c.Dilation
								if ix < 0 || ix >= w {
									continue
								}
								acc += xd[xBase+iy*w+ix] * wd[wBase+ky*c.KW+kx]
							}
						}
					}
					od[((b*c.OutC+oc)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

func TestIm2colForwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []ConvOpts{
		{Pad: 1},
		{Stride: 2, Pad: 1},
		{Pad: 2, Dilation: 2},
		{Bias: true},
		{Stride: 2, Pad: 2, Dilation: 2, Bias: true},
	}
	for i, opts := range cases {
		c := NewConv2D("c", rng, 3, 5, 3, opts)
		x := tensor.Randn(rng, 1, 2, 3, 7, 7)
		fast := c.Forward(x)
		slow := directForward(c, x)
		if !fast.AllClose(slow, 1e-10) {
			t.Fatalf("case %d: im2col forward diverges from direct loops", i)
		}
	}
}

// The im2col backward is covered against finite differences by the main
// conv gradient tests (TestConv2DGradients exercises Groups==1 cases); this
// test checks the col2im scatter is the exact adjoint of the im2col gather.
func TestCol2imIsAdjointOfIm2col(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const (
		ch, h, w    = 2, 5, 5
		kh, kw      = 3, 3
		stride, pad = 2, 1
		dilation    = 1
	)
	oh := (h+2*pad-(dilation*(kh-1)+1))/stride + 1
	ow := (w+2*pad-(dilation*(kw-1)+1))/stride + 1
	k := ch * kh * kw
	cols := oh * ow

	x := make([]float64, ch*h*w)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, k*cols)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	// <im2col(x), y> must equal <x, col2im(y)> (adjoint identity).
	ax := make([]float64, k*cols)
	im2colBuffer(x, ch, h, w, kh, kw, stride, pad, dilation, oh, ow, ax, cols, 0)
	lhs := 0.0
	for i := range ax {
		lhs += ax[i] * y[i]
	}
	aty := make([]float64, ch*h*w)
	col2imAdd(y, ch, h, w, kh, kw, stride, pad, dilation, oh, ow, aty, cols, 0)
	rhs := 0.0
	for i := range aty {
		rhs += aty[i] * x[i]
	}
	if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func BenchmarkConvForwardIm2col(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("c", rng, 8, 8, 3, ConvOpts{Pad: 1})
	x := tensor.Randn(rng, 1, 16, 8, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Forward(x)
	}
}
