package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedrlnas/internal/tensor"
)

// ReLU is the rectified-linear activation.
type ReLU struct {
	// mask is 1 where the last input was positive, 0 elsewhere, making the
	// backward pass a branch-free multiply.
	mask []float64

	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*ReLU)(nil)

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Module.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.outBuf = reuseBufLike(r.outBuf, x)
	xd, d := x.Data(), r.outBuf.Data()
	if cap(r.mask) < len(xd) {
		r.mask = make([]float64, len(xd))
	}
	r.mask = r.mask[:len(xd)]
	m := r.mask
	for i, v := range xd {
		if v > 0 {
			d[i], m[i] = v, 1
		} else {
			d[i], m[i] = 0, 0
		}
	}
	return r.outBuf
}

// Backward implements Module.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.gradXBuf = reuseBufLike(r.gradXBuf, grad)
	srcD, gd := grad.Data(), r.gradXBuf.Data()
	m := r.mask[:len(srcD)]
	for i, v := range srcD {
		gd[i] = v * m[i]
	}
	return r.gradXBuf
}

// Identity passes its input through unchanged (the "skip connect" op). It
// returns a copy, not an alias: callers (cell nodes) accumulate into op
// outputs in place, so aliasing the input would corrupt upstream buffers.
type Identity struct {
	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*Identity)(nil)

// NewIdentity constructs an identity module.
func NewIdentity() *Identity { return &Identity{} }

// Params implements Module.
func (id *Identity) Params() []*Param { return nil }

// Forward implements Module.
func (id *Identity) Forward(x *tensor.Tensor) *tensor.Tensor {
	id.outBuf = reuseBufLike(id.outBuf, x)
	id.outBuf.CopyFrom(x)
	return id.outBuf
}

// Backward implements Module.
func (id *Identity) Backward(grad *tensor.Tensor) *tensor.Tensor {
	id.gradXBuf = reuseBufLike(id.gradXBuf, grad)
	id.gradXBuf.CopyFrom(grad)
	return id.gradXBuf
}

// Zero is the "none" op: it outputs zeros (optionally spatially strided),
// cutting the edge from the computation graph.
type Zero struct {
	Stride int

	lastShape []int

	outBuf, gradXBuf *tensor.Tensor
}

var _ Module = (*Zero)(nil)

// NewZero constructs a zero op with the given spatial stride.
func NewZero(stride int) *Zero { return &Zero{Stride: stride} }

// Params implements Module.
func (z *Zero) Params() []*Param { return nil }

// Forward implements Module.
func (z *Zero) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "Zero")
	z.lastShape = x.Shape()
	oh, ow := h, w
	if z.Stride != 1 {
		oh = (h + z.Stride - 1) / z.Stride
		ow = (w + z.Stride - 1) / z.Stride
	}
	z.outBuf = reuseBuf(z.outBuf, n, c, oh, ow)
	z.outBuf.Zero() // callers accumulate into returned buffers in place
	return z.outBuf
}

// Backward implements Module.
func (z *Zero) Backward(grad *tensor.Tensor) *tensor.Tensor {
	z.gradXBuf = reuseBuf(z.gradXBuf, z.lastShape...)
	z.gradXBuf.Zero()
	return z.gradXBuf
}

// Linear is a fully connected layer: y = x Wᵀ + b with x of shape [N, in].
type Linear struct {
	In, Out int

	weight *Param
	bias   *Param
	params []*Param

	lastX *tensor.Tensor

	outBuf, gradXBuf *tensor.Tensor

	// Float32 shadows for the fp32 compute mode (see precision.go).
	x32, w32, g32     []float32
	out32, gx32, dw32 []float32
}

var _ Module = (*Linear)(nil)

// NewLinear constructs a fully connected layer with bias.
func NewLinear(name string, rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		In: in, Out: out,
		weight: NewParam(name+".weight", tensor.KaimingLinear(rng, out, in)),
		bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// Params implements Module. The returned slice is cached and must not be
// mutated.
func (l *Linear) Params() []*Param {
	if l.params == nil {
		l.params = []*Param{l.weight, l.bias}
	}
	return l.params
}

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N,%d], got %v", l.In, x.Shape()))
	}
	l.lastX = x
	n := x.Dim(0)
	l.outBuf = reuseBuf(l.outBuf, n, l.Out)
	out := l.outBuf
	// out [N, Out] = x [N, In] · Wᵀ [In, Out], then broadcast the bias.
	if ActivePrecision() == FP32 {
		l.x32 = tensor.Narrow(l.x32, x.Data())
		l.w32 = tensor.Narrow(l.w32, l.weight.Value.Data())
		l.out32 = growScratch(l.out32, n*l.Out)
		tensor.GemmRawF32(false, true, n, l.Out, l.In, 1,
			l.x32, l.In, l.w32, l.In, 0, l.out32, l.Out)
		tensor.Widen(out.Data(), l.out32)
	} else {
		tensor.GemmRaw(false, true, n, l.Out, l.In, 1,
			x.Data(), l.In, l.weight.Value.Data(), l.In, 0, out.Data(), l.Out)
	}
	bd, od := l.bias.Value.Data(), out.Data()
	for b := 0; b < n; b++ {
		row := od[b*l.Out : (b+1)*l.Out]
		for o, bv := range bd {
			row[o] += bv
		}
	}
	return out
}

// Backward implements Module.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	l.gradXBuf = reuseBuf(l.gradXBuf, n, l.In)
	gradX := l.gradXBuf
	gd, gbd := grad.Data(), l.bias.Grad.Data()
	for b := 0; b < n; b++ {
		row := gd[b*l.Out : (b+1)*l.Out]
		for o, gv := range row {
			gbd[o] += gv
		}
	}
	if ActivePrecision() == FP32 {
		// The float64 master gradient still accumulates (+=): the fp32
		// product goes into scratch with beta=0 and is widen-added so the
		// accumulation across cells keeps float64 carry.
		l.x32 = tensor.Narrow(l.x32, l.lastX.Data())
		l.w32 = tensor.Narrow(l.w32, l.weight.Value.Data())
		l.g32 = tensor.Narrow(l.g32, gd)
		// gradW [Out, In] += widen(gradᵀ [Out, N] · x [N, In])
		l.dw32 = growScratch(l.dw32, l.Out*l.In)
		tensor.GemmRawF32(true, false, l.Out, l.In, n, 1,
			l.g32, l.Out, l.x32, l.In, 0, l.dw32, l.In)
		tensor.WidenAdd(l.weight.Grad.Data(), l.dw32)
		// gradX [N, In] = grad [N, Out] · W [Out, In]
		l.gx32 = growScratch(l.gx32, n*l.In)
		tensor.GemmRawF32(false, false, n, l.In, l.Out, 1,
			l.g32, l.Out, l.w32, l.In, 0, l.gx32, l.In)
		tensor.Widen(gradX.Data(), l.gx32)
		return gradX
	}
	// gradW [Out, In] += gradᵀ [Out, N] · x [N, In]
	tensor.GemmRaw(true, false, l.Out, l.In, n, 1,
		gd, l.Out, l.lastX.Data(), l.In, 1, l.weight.Grad.Data(), l.In)
	// gradX [N, In] = grad [N, Out] · W [Out, In]
	tensor.GemmRaw(false, false, n, l.In, l.Out, 1,
		gd, l.Out, l.weight.Value.Data(), l.In, 0, gradX.Data(), l.In)
	return gradX
}

// BatchNorm2D normalizes each channel over the batch and spatial dimensions,
// with learnable scale (gamma) and shift (beta) and running statistics for
// evaluation mode.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate

	gamma, beta *Param
	params      []*Param

	runningMean []float64
	runningVar  []float64
	training    bool

	// capture mode: training forwards log their batch statistics instead
	// of EMA-updating the running stats (see bnstats.go). statsFree is a
	// freelist of consumed records whose Mean/Var storage capture reuses.
	capture   bool
	captured  []BNStats
	statsFree []BNStats

	// cached for backward
	lastX    *tensor.Tensor
	lastXHat *tensor.Tensor
	lastStd  []float64

	outBuf, gradXBuf *tensor.Tensor
}

var (
	_ Module       = (*BatchNorm2D)(nil)
	_ TrainToggler = (*BatchNorm2D)(nil)
)

// NewBatchNorm2D constructs batch normalization over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		gamma:       NewParam(name+".gamma", tensor.Full(1, c)),
		beta:        NewParam(name+".beta", tensor.New(c)),
		runningMean: make([]float64, c),
		runningVar:  make([]float64, c),
		training:    true,
	}
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// SetTraining implements TrainToggler.
func (bn *BatchNorm2D) SetTraining(training bool) { bn.training = training }

// Training reports whether the layer is in training mode. Batched inference
// paths use this to refuse training-mode forwards, where batch statistics
// couple rows and batching would change results.
func (bn *BatchNorm2D) Training() bool { return bn.training }

// Params implements Module. The returned slice is cached and must not be
// mutated.
func (bn *BatchNorm2D) Params() []*Param {
	if bn.params == nil {
		bn.params = []*Param{bn.gamma, bn.beta}
	}
	return bn.params
}

// Forward implements Module.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "BatchNorm2D")
	if c != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D got %d channels, want %d", c, bn.C))
	}
	bn.lastX = x
	bn.outBuf = reuseBuf(bn.outBuf, n, c, h, w)
	out := bn.outBuf
	bn.lastXHat = reuseBuf(bn.lastXHat, n, c, h, w)
	xhat := bn.lastXHat
	if cap(bn.lastStd) < c {
		bn.lastStd = make([]float64, c)
	}
	bn.lastStd = bn.lastStd[:c]

	m := float64(n * h * w)
	xd, od, xh := x.Data(), out.Data(), xhat.Data()
	gd, bd := bn.gamma.Value.Data(), bn.beta.Value.Data()
	var capStats BNStats
	if bn.training && bn.capture {
		if n := len(bn.statsFree); n > 0 {
			capStats = bn.statsFree[n-1]
			bn.statsFree = bn.statsFree[:n-1]
		} else {
			capStats = BNStats{Mean: make([]float64, c), Var: make([]float64, c)}
		}
	}
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if bn.training {
			sum := 0.0
			for b := 0; b < n; b++ {
				base := ((b*c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					sum += xd[base+i]
				}
			}
			mean = sum / m
			sq := 0.0
			for b := 0; b < n; b++ {
				base := ((b*c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					d := xd[base+i] - mean
					sq += d * d
				}
			}
			variance = sq / m
			if capStats.Mean != nil {
				capStats.Mean[ch], capStats.Var[ch] = mean, variance
			} else {
				bn.runningMean[ch] = (1-bn.Momentum)*bn.runningMean[ch] + bn.Momentum*mean
				bn.runningVar[ch] = (1-bn.Momentum)*bn.runningVar[ch] + bn.Momentum*variance
			}
		} else {
			mean, variance = bn.runningMean[ch], bn.runningVar[ch]
		}
		std := math.Sqrt(variance + bn.Eps)
		bn.lastStd[ch] = std
		inv := 1 / std
		g, bta := gd[ch], bd[ch]
		for b := 0; b < n; b++ {
			base := ((b*c + ch) * h) * w
			xr := xd[base : base+h*w]
			xhr := xh[base : base+h*w]
			or := od[base : base+h*w]
			for i, v := range xr {
				xhv := (v - mean) * inv
				xhr[i] = xhv
				or[i] = g*xhv + bta
			}
		}
	}
	if capStats.Mean != nil {
		bn.captured = append(bn.captured, capStats)
	}
	return out
}

// Backward implements Module. In evaluation mode the statistics are treated
// as constants; in training mode the full batch-statistics gradient is used.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(grad, "BatchNorm2D.Backward")
	bn.gradXBuf = reuseBuf(bn.gradXBuf, n, c, h, w)
	gradX := bn.gradXBuf
	m := float64(n * h * w)
	gd := grad.Data()
	xh := bn.lastXHat.Data()
	gxd := gradX.Data()
	ggd, gbd := bn.gamma.Grad.Data(), bn.beta.Grad.Data()
	gammaD := bn.gamma.Value.Data()
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXHat float64
		for b := 0; b < n; b++ {
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				dy := gd[base+i]
				sumDy += dy
				sumDyXHat += dy * xh[base+i]
			}
		}
		ggd[ch] += sumDyXHat
		gbd[ch] += sumDy
		scale := gammaD[ch] / bn.lastStd[ch]
		if !bn.training {
			for b := 0; b < n; b++ {
				base := ((b*c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					gxd[base+i] = scale * gd[base+i]
				}
			}
			continue
		}
		meanDy := sumDy / m
		meanDyXHat := sumDyXHat / m
		for b := 0; b < n; b++ {
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				gxd[base+i] = scale * (gd[base+i] - meanDy - xh[base+i]*meanDyXHat)
			}
		}
	}
	return gradX
}
