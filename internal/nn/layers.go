package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedrlnas/internal/tensor"
)

// ReLU is the rectified-linear activation.
type ReLU struct {
	lastX *tensor.Tensor
}

var _ Module = (*ReLU)(nil)

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Module.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.lastX = x
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out
}

// Backward implements Module.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx := grad.Clone()
	xd, gd := r.lastX.Data(), gx.Data()
	for i := range gd {
		if xd[i] <= 0 {
			gd[i] = 0
		}
	}
	return gx
}

// Identity passes its input through unchanged (the "skip connect" op).
type Identity struct{}

var _ Module = (*Identity)(nil)

// NewIdentity constructs an identity module.
func NewIdentity() *Identity { return &Identity{} }

// Params implements Module.
func (id *Identity) Params() []*Param { return nil }

// Forward implements Module.
func (id *Identity) Forward(x *tensor.Tensor) *tensor.Tensor { return x.Clone() }

// Backward implements Module.
func (id *Identity) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad.Clone() }

// Zero is the "none" op: it outputs zeros (optionally spatially strided),
// cutting the edge from the computation graph.
type Zero struct {
	Stride int

	lastShape []int
}

var _ Module = (*Zero)(nil)

// NewZero constructs a zero op with the given spatial stride.
func NewZero(stride int) *Zero { return &Zero{Stride: stride} }

// Params implements Module.
func (z *Zero) Params() []*Param { return nil }

// Forward implements Module.
func (z *Zero) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "Zero")
	z.lastShape = x.Shape()
	if z.Stride == 1 {
		return tensor.New(n, c, h, w)
	}
	oh := (h + z.Stride - 1) / z.Stride
	ow := (w + z.Stride - 1) / z.Stride
	return tensor.New(n, c, oh, ow)
}

// Backward implements Module.
func (z *Zero) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.New(z.lastShape...)
}

// Linear is a fully connected layer: y = x Wᵀ + b with x of shape [N, in].
type Linear struct {
	In, Out int

	weight *Param
	bias   *Param

	lastX *tensor.Tensor
}

var _ Module = (*Linear)(nil)

// NewLinear constructs a fully connected layer with bias.
func NewLinear(name string, rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		In: in, Out: out,
		weight: NewParam(name+".weight", tensor.KaimingLinear(rng, out, in)),
		bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects [N,%d], got %v", l.In, x.Shape()))
	}
	l.lastX = x
	n := x.Dim(0)
	out := tensor.New(n, l.Out)
	xd, wd, bd, od := x.Data(), l.weight.Value.Data(), l.bias.Value.Data(), out.Data()
	for b := 0; b < n; b++ {
		for o := 0; o < l.Out; o++ {
			acc := bd[o]
			wrow := wd[o*l.In : (o+1)*l.In]
			xrow := xd[b*l.In : (b+1)*l.In]
			for i := range wrow {
				acc += wrow[i] * xrow[i]
			}
			od[b*l.Out+o] = acc
		}
	}
	return out
}

// Backward implements Module.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	gradX := tensor.New(n, l.In)
	xd, wd := l.lastX.Data(), l.weight.Value.Data()
	gd, gxd := grad.Data(), gradX.Data()
	gwd, gbd := l.weight.Grad.Data(), l.bias.Grad.Data()
	for b := 0; b < n; b++ {
		for o := 0; o < l.Out; o++ {
			gv := gd[b*l.Out+o]
			if gv == 0 {
				continue
			}
			gbd[o] += gv
			wrow := wd[o*l.In : (o+1)*l.In]
			gwrow := gwd[o*l.In : (o+1)*l.In]
			xrow := xd[b*l.In : (b+1)*l.In]
			gxrow := gxd[b*l.In : (b+1)*l.In]
			for i := range wrow {
				gwrow[i] += gv * xrow[i]
				gxrow[i] += gv * wrow[i]
			}
		}
	}
	return gradX
}

// BatchNorm2D normalizes each channel over the batch and spatial dimensions,
// with learnable scale (gamma) and shift (beta) and running statistics for
// evaluation mode.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate

	gamma, beta *Param

	runningMean []float64
	runningVar  []float64
	training    bool

	// capture mode: training forwards log their batch statistics instead
	// of EMA-updating the running stats (see bnstats.go).
	capture  bool
	captured []BNStats

	// cached for backward
	lastX    *tensor.Tensor
	lastXHat *tensor.Tensor
	lastStd  []float64
}

var (
	_ Module       = (*BatchNorm2D)(nil)
	_ TrainToggler = (*BatchNorm2D)(nil)
)

// NewBatchNorm2D constructs batch normalization over c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		gamma:       NewParam(name+".gamma", tensor.Full(1, c)),
		beta:        NewParam(name+".beta", tensor.New(c)),
		runningMean: make([]float64, c),
		runningVar:  make([]float64, c),
		training:    true,
	}
	for i := range bn.runningVar {
		bn.runningVar[i] = 1
	}
	return bn
}

// SetTraining implements TrainToggler.
func (bn *BatchNorm2D) SetTraining(training bool) { bn.training = training }

// Params implements Module.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// Forward implements Module.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(x, "BatchNorm2D")
	if c != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D got %d channels, want %d", c, bn.C))
	}
	bn.lastX = x
	out := tensor.New(n, c, h, w)
	xhat := tensor.New(n, c, h, w)
	bn.lastXHat = xhat
	bn.lastStd = make([]float64, c)

	m := float64(n * h * w)
	xd, od, xh := x.Data(), out.Data(), xhat.Data()
	gd, bd := bn.gamma.Value.Data(), bn.beta.Value.Data()
	var capStats BNStats
	if bn.training && bn.capture {
		capStats = BNStats{Mean: make([]float64, c), Var: make([]float64, c)}
	}
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if bn.training {
			sum := 0.0
			for b := 0; b < n; b++ {
				base := ((b*c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					sum += xd[base+i]
				}
			}
			mean = sum / m
			sq := 0.0
			for b := 0; b < n; b++ {
				base := ((b*c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					d := xd[base+i] - mean
					sq += d * d
				}
			}
			variance = sq / m
			if capStats.Mean != nil {
				capStats.Mean[ch], capStats.Var[ch] = mean, variance
			} else {
				bn.runningMean[ch] = (1-bn.Momentum)*bn.runningMean[ch] + bn.Momentum*mean
				bn.runningVar[ch] = (1-bn.Momentum)*bn.runningVar[ch] + bn.Momentum*variance
			}
		} else {
			mean, variance = bn.runningMean[ch], bn.runningVar[ch]
		}
		std := math.Sqrt(variance + bn.Eps)
		bn.lastStd[ch] = std
		g, bta := gd[ch], bd[ch]
		for b := 0; b < n; b++ {
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				xhv := (xd[base+i] - mean) / std
				xh[base+i] = xhv
				od[base+i] = g*xhv + bta
			}
		}
	}
	if capStats.Mean != nil {
		bn.captured = append(bn.captured, capStats)
	}
	return out
}

// Backward implements Module. In evaluation mode the statistics are treated
// as constants; in training mode the full batch-statistics gradient is used.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := mustDims4(grad, "BatchNorm2D.Backward")
	gradX := tensor.New(n, c, h, w)
	m := float64(n * h * w)
	gd := grad.Data()
	xh := bn.lastXHat.Data()
	gxd := gradX.Data()
	ggd, gbd := bn.gamma.Grad.Data(), bn.beta.Grad.Data()
	gammaD := bn.gamma.Value.Data()
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXHat float64
		for b := 0; b < n; b++ {
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				dy := gd[base+i]
				sumDy += dy
				sumDyXHat += dy * xh[base+i]
			}
		}
		ggd[ch] += sumDyXHat
		gbd[ch] += sumDy
		scale := gammaD[ch] / bn.lastStd[ch]
		if !bn.training {
			for b := 0; b < n; b++ {
				base := ((b*c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					gxd[base+i] = scale * gd[base+i]
				}
			}
			continue
		}
		meanDy := sumDy / m
		meanDyXHat := sumDyXHat / m
		for b := 0; b < n; b++ {
			base := ((b*c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				gxd[base+i] = scale * (gd[base+i] - meanDy - xh[base+i]*meanDyXHat)
			}
		}
	}
	return gradX
}
