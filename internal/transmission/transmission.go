// Package transmission implements the paper's adaptive sub-model assignment
// (Sec. IV "Adaptive transmission", Alg. 1 lines 10–11): sort sub-models by
// size and participants by bandwidth, then ship larger models over faster
// links to cut the round's maximum latency. Baseline assignment policies
// (random, uniform-size) reproduce Fig. 7's comparisons.
package transmission

import (
	"fmt"
	"math/rand"
	"sort"

	"fedrlnas/internal/nettrace"
)

// Policy selects how sub-models are matched to participants.
type Policy int

// Assignment policies.
const (
	// Adaptive sorts models by size and participants by bandwidth
	// (the paper's method).
	Adaptive Policy = iota + 1
	// Random shuffles models across participants.
	Random
	// Uniform sends every participant an average-sized payload (what
	// fixed-sub-model methods like FedNAS/EvoFedNAS effectively do).
	Uniform
	// Greedy is longest-processing-time list scheduling: models are
	// assigned largest-first to the participant with the smallest
	// projected finish time. With per-participant compute costs it can
	// beat rank pairing; on pure communication it matches it closely.
	Greedy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Adaptive:
		return "adaptive"
	case Random:
		return "random"
	case Uniform:
		return "uniform"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Assignment maps sub-model index -> participant index.
type Assignment struct {
	// ModelFor[k] is the index (into the round's model list) of the
	// sub-model shipped to participant k.
	ModelFor []int
	// LatencySeconds[k] is the download latency participant k pays.
	LatencySeconds []float64
}

// Max returns the worst per-participant latency (the round's critical path).
func (a Assignment) Max() float64 {
	m := 0.0
	for _, v := range a.LatencySeconds {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average per-participant latency.
func (a Assignment) Mean() float64 {
	if len(a.LatencySeconds) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range a.LatencySeconds {
		s += v
	}
	return s / float64(len(a.LatencySeconds))
}

// Assign matches len(modelBytes) sub-models to len(bandwidthsMbps)
// participants (the counts must match) under the given policy. rng is used
// only by the Random policy.
//
// modelBytes is whatever the caller would actually transmit: the search
// engine and the RPC server feed *measured* wire-frame sizes under the
// active encoding (nas.SubModelWireBytes / wire.GroupBytes), not raw
// parameter counts, so the ranking tracks real transfer cost.
func Assign(policy Policy, modelBytes []int64, bandwidthsMbps []float64, rng *rand.Rand) (Assignment, error) {
	k := len(bandwidthsMbps)
	if len(modelBytes) != k {
		return Assignment{}, fmt.Errorf("transmission: %d models for %d participants", len(modelBytes), k)
	}
	if k == 0 {
		return Assignment{}, fmt.Errorf("transmission: no participants")
	}
	modelFor := make([]int, k)
	switch policy {
	case Adaptive:
		// Sort models ascending by size and participants ascending by
		// bandwidth; pair rank-for-rank so the largest model rides the
		// fastest link.
		modelOrder := argsortInt64(modelBytes)
		partOrder := argsortFloat(bandwidthsMbps)
		for r := 0; r < k; r++ {
			modelFor[partOrder[r]] = modelOrder[r]
		}
	case Random:
		if rng == nil {
			return Assignment{}, fmt.Errorf("transmission: random policy needs an rng")
		}
		perm := rng.Perm(k)
		for p, m := range perm {
			modelFor[p] = m
		}
	case Greedy:
		// Largest model first, each to the participant whose projected
		// latency for it is smallest among the still-free participants.
		modelOrder := argsortInt64(modelBytes)
		free := make([]bool, k)
		for i := range free {
			free[i] = true
		}
		for i := k - 1; i >= 0; i-- { // descending size
			m := modelOrder[i]
			best, bestLat := -1, 0.0
			for p := 0; p < k; p++ {
				if !free[p] {
					continue
				}
				lat := nettrace.TransferSeconds(modelBytes[m], bandwidthsMbps[p])
				if best < 0 || lat < bestLat {
					best, bestLat = p, lat
				}
			}
			modelFor[best] = m
			free[best] = false
		}
	case Uniform:
		// Everyone receives the average payload; model identity is
		// positional (participant k trains model k).
		var total int64
		for _, b := range modelBytes {
			total += b
		}
		avg := total / int64(k)
		lat := make([]float64, k)
		for p := 0; p < k; p++ {
			modelFor[p] = p
			lat[p] = nettrace.TransferSeconds(avg, bandwidthsMbps[p])
		}
		return Assignment{ModelFor: modelFor, LatencySeconds: lat}, nil
	default:
		return Assignment{}, fmt.Errorf("transmission: unknown policy %d", int(policy))
	}
	lat := make([]float64, k)
	for p := 0; p < k; p++ {
		lat[p] = nettrace.TransferSeconds(modelBytes[modelFor[p]], bandwidthsMbps[p])
	}
	return Assignment{ModelFor: modelFor, LatencySeconds: lat}, nil
}

func argsortInt64(vals []int64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	return idx
}

func argsortFloat(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	return idx
}
