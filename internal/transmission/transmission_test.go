package transmission

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	testModels = []int64{4_000_000, 1_000_000, 2_000_000, 3_000_000}
	testBW     = []float64{10, 40, 20, 30}
)

func TestAdaptivePairsLargestWithFastest(t *testing.T) {
	a, err := Assign(Adaptive, testModels, testBW, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fastest participant (index 1, 40 Mbps) gets the largest model (index 0).
	if a.ModelFor[1] != 0 {
		t.Errorf("fastest participant got model %d, want 0", a.ModelFor[1])
	}
	// Slowest participant (index 0, 10 Mbps) gets the smallest model (index 1).
	if a.ModelFor[0] != 1 {
		t.Errorf("slowest participant got model %d, want 1", a.ModelFor[0])
	}
}

func TestAssignmentIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Policy{Adaptive, Random, Uniform} {
		a, err := Assign(p, testModels, testBW, rng)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		seen := make(map[int]bool)
		for _, m := range a.ModelFor {
			if m < 0 || m >= len(testModels) || seen[m] {
				t.Fatalf("%s: ModelFor %v not a permutation", p, a.ModelFor)
			}
			seen[m] = true
		}
		if len(a.LatencySeconds) != len(testBW) {
			t.Fatalf("%s: %d latencies", p, len(a.LatencySeconds))
		}
	}
}

func TestAdaptiveBeatsRandomOnMax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	adaptive, err := Assign(Adaptive, testModels, testBW, nil)
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		r, err := Assign(Random, testModels, testBW, rng)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Max() > r.Max()+1e-12 {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("adaptive max latency beaten by random in %d/%d trials", worse, trials)
	}
}

// Property: adaptive minimizes max latency over all assignments checked by
// random search (rank pairing is optimal for max of size/bandwidth ratios).
func TestAdaptiveOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(5)
		models := make([]int64, k)
		bw := make([]float64, k)
		for i := 0; i < k; i++ {
			models[i] = int64(100_000 + rng.Intn(5_000_000))
			bw[i] = 1 + rng.Float64()*50
		}
		adaptive, err := Assign(Adaptive, models, bw, nil)
		if err != nil {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			r, err := Assign(Random, models, bw, rng)
			if err != nil {
				return false
			}
			if adaptive.Max() > r.Max()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUniformLatencyUsesAverageSize(t *testing.T) {
	a, err := Assign(Uniform, testModels, testBW, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All participants ship the same payload, so latency ranks mirror
	// inverse bandwidth exactly.
	if !(a.LatencySeconds[0] > a.LatencySeconds[2] &&
		a.LatencySeconds[2] > a.LatencySeconds[3] &&
		a.LatencySeconds[3] > a.LatencySeconds[1]) {
		t.Errorf("uniform latencies %v not ordered by bandwidth", a.LatencySeconds)
	}
}

func TestAssignValidation(t *testing.T) {
	if _, err := Assign(Adaptive, []int64{1}, []float64{1, 2}, nil); err == nil {
		t.Error("expected error for count mismatch")
	}
	if _, err := Assign(Adaptive, nil, nil, nil); err == nil {
		t.Error("expected error for empty inputs")
	}
	if _, err := Assign(Random, testModels, testBW, nil); err == nil {
		t.Error("expected error for random without rng")
	}
	if _, err := Assign(Policy(99), testModels, testBW, nil); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestMaxAndMean(t *testing.T) {
	a := Assignment{LatencySeconds: []float64{1, 3, 2}}
	if a.Max() != 3 {
		t.Errorf("Max = %v", a.Max())
	}
	if a.Mean() != 2 {
		t.Errorf("Mean = %v", a.Mean())
	}
	var empty Assignment
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty assignment stats should be 0")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{Adaptive, Random, Uniform} {
		if s := p.String(); len(s) < 3 || s[:3] == "pol" {
			t.Errorf("policy %d has placeholder string %q", int(p), s)
		}
	}
}

func TestGreedyIsPermutationAndCompetitive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := Assign(Greedy, testModels, testBW, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, m := range g.ModelFor {
		if seen[m] {
			t.Fatalf("greedy assignment not a permutation: %v", g.ModelFor)
		}
		seen[m] = true
	}
	// Greedy must never lose to random on max latency for this instance.
	for trial := 0; trial < 30; trial++ {
		r, err := Assign(Random, testModels, testBW, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.Max() > r.Max()+1e-12 {
			t.Fatalf("greedy max %.4f beaten by random %.4f", g.Max(), r.Max())
		}
	}
	// On pure communication, greedy matches the rank-pairing optimum.
	a, err := Assign(Adaptive, testModels, testBW, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := g.Max() - a.Max(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("greedy max %.6f != adaptive max %.6f on pure comm", g.Max(), a.Max())
	}
	if Greedy.String() != "greedy" {
		t.Error("greedy string wrong")
	}
}
