package transmission_test

import (
	"fmt"

	"fedrlnas/internal/transmission"
)

// Example shows the paper's adaptive assignment: the largest sub-model
// rides the fastest link, minimizing the round's critical path.
func Example() {
	modelBytes := []int64{4_000_000, 1_000_000, 2_000_000}
	bandwidthMbps := []float64{10, 40, 20}

	a, err := transmission.Assign(transmission.Adaptive, modelBytes, bandwidthMbps, nil)
	if err != nil {
		panic(err)
	}
	for participant, model := range a.ModelFor {
		fmt.Printf("participant %d (%.0f Mbps) gets model %d (%d bytes)\n",
			participant, bandwidthMbps[participant], model, modelBytes[model])
	}
	fmt.Printf("max latency: %.3fs\n", a.Max())
	// Output:
	// participant 0 (10 Mbps) gets model 1 (1000000 bytes)
	// participant 1 (40 Mbps) gets model 0 (4000000 bytes)
	// participant 2 (20 Mbps) gets model 2 (2000000 bytes)
	// max latency: 0.805s
}
