// Package chaos injects network faults into net.Conn/net.Listener pairs so
// the federated RPC stack can be soaked against the failure modes the
// paper's soft synchronization exists for (Sec. V): added latency and
// jitter, bandwidth throttling (optionally driven by a nettrace mobility
// regime), partial writes, connection kills, and whole-participant outages.
//
// Every stochastic draw comes from a seeded RNG — the injector's, split
// into one private stream per accepted connection — so a fixed seed yields
// the same fault schedule for the same sequence of connection operations.
// A zero Config injects nothing: the wrappers degrade to transparent
// pass-throughs, which is what keeps no-fault runs bit-identical to runs
// without the chaos layer at all.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

// Kill-site codes carried in a chaos.fault event's value field, so
// cmd/fedtrace can attribute a fault to where in the stack it fired.
const (
	// FaultSiteOutage: SetDown(true) killed the live connections.
	FaultSiteOutage = 0
	// FaultSiteWrite: KillProb closed a connection mid-write.
	FaultSiteWrite = 1
	// FaultSiteAccept: a connection was accepted and dropped while down.
	FaultSiteAccept = 2
)

// Config selects which faults an Injector applies.
type Config struct {
	// Seed drives every stochastic fault decision.
	Seed int64
	// Latency is a fixed delay added to every Write; Jitter adds a
	// uniform extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthMbps throttles both directions by sleeping proportionally
	// to the bytes moved; 0 means unlimited. When Trace is non-empty it
	// takes precedence: the live rate is the trace sample for the current
	// TraceStep-sized time slot, so throughput follows a nettrace
	// mobility regime over the injector's lifetime.
	BandwidthMbps float64
	Trace         nettrace.Trace
	// TraceStep is the wall-clock duration of one trace sample
	// (default 1s).
	TraceStep time.Duration
	// MaxWriteBytes splits writes into chunks of at most this many bytes
	// (partial writes as seen by the peer); 0 disables splitting.
	MaxWriteBytes int
	// KillProb is the per-write probability that the connection is killed
	// (closed mid-stream) instead of completing the write.
	KillProb float64
}

// Validate checks the fault configuration.
func (c Config) Validate() error {
	switch {
	case c.Latency < 0 || c.Jitter < 0:
		return fmt.Errorf("chaos: negative latency/jitter")
	case c.BandwidthMbps < 0:
		return fmt.Errorf("chaos: BandwidthMbps %v must be >= 0", c.BandwidthMbps)
	case c.TraceStep < 0:
		return fmt.Errorf("chaos: TraceStep must be >= 0")
	case c.MaxWriteBytes < 0:
		return fmt.Errorf("chaos: MaxWriteBytes %d must be >= 0", c.MaxWriteBytes)
	case c.KillProb < 0 || c.KillProb > 1:
		return fmt.Errorf("chaos: KillProb %v outside [0,1]", c.KillProb)
	}
	return nil
}

// specKeys lists every key ParseSpec accepts, for error messages.
const specKeys = "latency, jitter, bw, chunk, kill, seed, regime"

// ParseSpec parses a compact comma-separated fault spec, e.g.
//
//	latency=5ms,jitter=2ms,bw=20,chunk=4096,kill=0.001,seed=7,regime=train
//
// Keys: latency/jitter (durations), bw (Mbps), chunk (bytes), kill
// (probability), seed (int), regime (nettrace regime name; samples a
// 1h bandwidth trace at 1s steps from the spec's seed). An empty spec
// yields the zero Config. Parse errors quote the offending token and list
// the valid keys, so a typo'd -chaos flag is diagnosable from the message
// alone.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	regime := ""
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: spec entry %q is not key=value (valid keys: %s)", kv, specKeys)
		}
		var err error
		switch k {
		case "latency":
			cfg.Latency, err = time.ParseDuration(v)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(v)
		case "bw":
			cfg.BandwidthMbps, err = strconv.ParseFloat(v, 64)
		case "chunk":
			cfg.MaxWriteBytes, err = strconv.Atoi(v)
		case "kill":
			cfg.KillProb, err = strconv.ParseFloat(v, 64)
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "regime":
			regime = v
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q in %q (valid keys: %s)", k, kv, specKeys)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: spec value %s=%q: %w", k, v, err)
		}
	}
	if regime != "" {
		r, err := nettrace.ParseRegime(regime)
		if err != nil {
			return cfg, fmt.Errorf("chaos: spec value regime=%q: %w", regime, err)
		}
		tr, err := nettrace.Generate(r, 3600, rand.New(rand.NewSource(cfg.Seed+77)))
		if err != nil {
			return cfg, err
		}
		cfg.Trace = tr
		cfg.TraceStep = time.Second
	}
	return cfg, cfg.Validate()
}

// Injector owns one participant's fault schedule: it wraps that
// participant's listener, tracks the live connections, and can take the
// participant down (killing every connection and refusing new ones) and
// bring it back up — the mid-run churn the lifecycle state machine is
// built to survive.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	start time.Time
	down  bool
	seq   int64
	conns map[*faultConn]struct{}
	met   telemetry.ChaosMetrics

	// tracer + spanOf tag injected faults with the trace context of the
	// round they disrupted (see TraceWith).
	tracer *telemetry.Tracer
	spanOf func() wire.SpanContext
}

// New builds an injector for cfg. Metrics default to unobserved; attach a
// registry with Observe.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.TraceStep <= 0 {
		cfg.TraceStep = time.Second
	}
	return &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		start: time.Now(),
		conns: make(map[*faultConn]struct{}),
		met:   telemetry.NewDisabledChaosMetrics(),
	}, nil
}

// Observe routes the injector's fault counters into reg. Injectors sharing
// one registry share the counters (reg handles are idempotent by name).
func (in *Injector) Observe(reg *telemetry.Registry) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.met = telemetry.NewChaosMetrics(reg)
}

// TraceWith attaches a tracer so every injected fault also emits a
// chaos.fault span event. spanOf (optional) supplies the trace context of
// the round being disrupted — typically ParticipantService.CurrentSpan — so
// the fault lands under that round's span in a stitched timeline; a nil
// spanOf (or a zero context) logs the fault without correlation fields.
func (in *Injector) TraceWith(tracer *telemetry.Tracer, spanOf func() wire.SpanContext) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tracer = tracer
	in.spanOf = spanOf
}

// traceFault emits one chaos.fault event tagged with the active round span.
func (in *Injector) traceFault(site int) {
	in.mu.Lock()
	tracer, spanOf := in.tracer, in.spanOf
	in.mu.Unlock()
	if tracer == nil {
		return
	}
	var ctx wire.SpanContext
	if spanOf != nil {
		ctx = spanOf()
	}
	tracer.ChaosFault(ctx, site)
}

// Metrics returns the injector's current counter handles.
func (in *Injector) Metrics() telemetry.ChaosMetrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.met
}

// counters snapshots the handles under the lock (Observe may swap them
// concurrently with live connections).
func (in *Injector) counters() telemetry.ChaosMetrics {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.met
}

// SetDown switches the participant's availability. Going down kills every
// live connection and makes the listener close new ones on accept; coming
// back up restores normal (fault-injected) service.
func (in *Injector) SetDown(down bool) {
	in.mu.Lock()
	in.down = down
	var victims []*faultConn
	if down {
		for c := range in.conns {
			victims = append(victims, c)
		}
	}
	met := in.met
	in.mu.Unlock()
	for _, c := range victims {
		c.kill()
		met.Kills.Inc()
		met.Faults.Inc()
		in.traceFault(FaultSiteOutage)
	}
}

// Down reports whether the participant is currently down.
func (in *Injector) Down() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down
}

// Listener wraps ln so every accepted connection runs through the fault
// schedule.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

// bandwidthMbps returns the live throttle rate (0 = unlimited).
func (in *Injector) bandwidthMbps() float64 {
	if len(in.cfg.Trace.Mbps) > 0 {
		slot := int(time.Since(in.start) / in.cfg.TraceStep)
		return in.cfg.Trace.At(slot)
	}
	return in.cfg.BandwidthMbps
}

// adopt registers a new connection and hands it a private RNG stream split
// deterministically from the injector seed.
func (in *Injector) adopt(conn net.Conn) *faultConn {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	c := &faultConn{
		Conn: conn,
		in:   in,
		rng:  rand.New(rand.NewSource(in.cfg.Seed + 1000003*in.seq)),
	}
	in.conns[c] = struct{}{}
	return c
}

func (in *Injector) forget(c *faultConn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

type faultListener struct {
	net.Listener
	in *Injector
}

// Accept passes connections through the injector; while the participant is
// down, new connections are accepted and immediately closed (the TCP
// handshake still completes, as with a real crashed process behind a load
// balancer, so the failure surfaces on first I/O).
func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.in.Down() {
			_ = conn.Close()
			met := l.in.counters()
			met.Kills.Inc()
			met.Faults.Inc()
			l.in.traceFault(FaultSiteAccept)
			continue
		}
		return l.in.adopt(conn), nil
	}
}

// faultConn applies the injector's fault schedule to one connection.
// Read and Write run on different goroutines (net/rpc's receive loop vs.
// reply writers), so the RNG and kill state are mutex-guarded.
type faultConn struct {
	net.Conn
	in     *Injector
	mu     sync.Mutex
	rng    *rand.Rand
	killed bool
}

// draw runs fn under the connection lock against the private RNG.
func (c *faultConn) draw(fn func(*rand.Rand)) {
	c.mu.Lock()
	fn(c.rng)
	c.mu.Unlock()
}

// kill closes the connection mid-stream (both peers see a reset/EOF).
func (c *faultConn) kill() {
	c.mu.Lock()
	already := c.killed
	c.killed = true
	c.mu.Unlock()
	if !already {
		_ = c.Conn.Close()
	}
}

// Close unregisters the connection before closing it.
func (c *faultConn) Close() error {
	c.in.forget(c)
	return c.Conn.Close()
}

// throttle sleeps long enough that n bytes respect the live bandwidth.
func (c *faultConn) throttle(n int) {
	if n <= 0 {
		return
	}
	mbps := c.in.bandwidthMbps()
	if mbps <= 0 {
		return
	}
	d := time.Duration(float64(n) * 8 / (mbps * 1e6) * float64(time.Second))
	if d <= 0 {
		return
	}
	met := c.in.counters()
	met.Faults.Inc()
	met.DelayNs.Add(d.Nanoseconds())
	time.Sleep(d)
}

func (c *faultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.throttle(n)
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	cfg := &c.in.cfg
	if cfg.KillProb > 0 {
		var die bool
		c.draw(func(r *rand.Rand) { die = r.Float64() < cfg.KillProb })
		if die {
			c.kill()
			met := c.in.counters()
			met.Kills.Inc()
			met.Faults.Inc()
			c.in.traceFault(FaultSiteWrite)
			return 0, fmt.Errorf("chaos: connection killed")
		}
	}
	if cfg.Latency > 0 || cfg.Jitter > 0 {
		d := cfg.Latency
		if cfg.Jitter > 0 {
			var extra time.Duration
			c.draw(func(r *rand.Rand) { extra = time.Duration(r.Int63n(int64(cfg.Jitter))) })
			d += extra
		}
		met := c.in.counters()
		met.Faults.Inc()
		met.DelayNs.Add(d.Nanoseconds())
		time.Sleep(d)
	}
	// Partial writes: the peer sees the frame dribble in across several
	// smaller segments, exercising every ReadFull/short-read path.
	written := 0
	for written < len(p) {
		chunk := p[written:]
		if cfg.MaxWriteBytes > 0 && len(chunk) > cfg.MaxWriteBytes {
			chunk = chunk[:cfg.MaxWriteBytes]
			c.in.counters().Faults.Inc()
		}
		n, err := c.Conn.Write(chunk)
		written += n
		c.throttle(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
