package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/telemetry"
	"fedrlnas/internal/wire"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Latency: -time.Second},
		{Jitter: -time.Second},
		{BandwidthMbps: -1},
		{TraceStep: -time.Second},
		{MaxWriteBytes: -1},
		{KillProb: -0.1},
		{KillProb: 1.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("latency=5ms,jitter=2ms,bw=20,chunk=4096,kill=0.001,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Latency != 5*time.Millisecond || cfg.Jitter != 2*time.Millisecond {
		t.Errorf("latency/jitter wrong: %+v", cfg)
	}
	if cfg.BandwidthMbps != 20 || cfg.MaxWriteBytes != 4096 ||
		cfg.KillProb != 0.001 || cfg.Seed != 7 {
		t.Errorf("spec fields wrong: %+v", cfg)
	}
	if cfg, err := ParseSpec(""); err != nil ||
		cfg.Latency != 0 || cfg.BandwidthMbps != 0 || cfg.KillProb != 0 || len(cfg.Trace.Mbps) != 0 {
		t.Errorf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"nope=1", "latency", "latency=xyz", "kill=2", "regime=warp"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseSpecRegimeTrace(t *testing.T) {
	cfg, err := ParseSpec("regime=" + nettrace.AllRegimes[0].String() + ",seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Trace.Mbps) == 0 {
		t.Fatal("regime spec produced no trace")
	}
	if cfg.TraceStep != time.Second {
		t.Errorf("TraceStep = %v, want 1s", cfg.TraceStep)
	}
	again, err := ParseSpec("regime=" + nettrace.AllRegimes[0].String() + ",seed=3")
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Trace.Mbps {
		if cfg.Trace.Mbps[i] != again.Trace.Mbps[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

// echoPair starts an echo server behind the injector and returns a dialed
// client connection.
func echoPair(t *testing.T, in *Injector) net.Conn {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(raw)
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(conn, conn); _ = conn.Close() }()
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func roundTrip(t *testing.T, conn net.Conn, payload []byte) []byte {
	t.Helper()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestZeroConfigIsTransparent(t *testing.T) {
	in, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.Observe(reg)
	conn := echoPair(t, in)
	payload := bytes.Repeat([]byte("fedrlnas"), 512)
	if got := roundTrip(t, conn, payload); !bytes.Equal(got, payload) {
		t.Fatal("zero-config injector corrupted the stream")
	}
	if n := in.Metrics().Faults.Value(); n != 0 {
		t.Errorf("faults_injected_total = %d for a zero config, want 0", n)
	}
}

func TestPartialWritesDeliverEverything(t *testing.T) {
	in, err := New(Config{MaxWriteBytes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.Observe(reg)
	conn := echoPair(t, in)
	payload := []byte(strings.Repeat("abcdefgh", 100))
	if got := roundTrip(t, conn, payload); !bytes.Equal(got, payload) {
		t.Fatal("chunked writes corrupted the stream")
	}
	if n := in.Metrics().Faults.Value(); n == 0 {
		t.Error("chunked writes counted no faults")
	}
}

func TestSetDownKillsConnections(t *testing.T) {
	in, err := New(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	conn := echoPair(t, in)
	payload := []byte("ping")
	if got := roundTrip(t, conn, payload); !bytes.Equal(got, payload) {
		t.Fatal("healthy round-trip failed")
	}
	in.SetDown(true)
	if !in.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	// The live server-side connection was killed: the echo stops.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, _ = conn.Write(payload)
	if _, err := io.ReadFull(conn, make([]byte, len(payload))); err == nil {
		t.Fatal("echo survived SetDown(true)")
	}
	if n := in.Metrics().Kills.Value(); n == 0 {
		t.Error("chaos_kills_total = 0 after SetDown kill")
	}
	// New connections complete the TCP handshake but die on first I/O.
	down, err := net.Dial("tcp", conn.RemoteAddr().String())
	if err != nil {
		t.Fatalf("dial while down should succeed at TCP level: %v", err)
	}
	defer down.Close()
	_ = down.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, _ = down.Write(payload)
	if _, err := io.ReadFull(down, make([]byte, len(payload))); err == nil {
		t.Fatal("down participant served a request")
	}
	// Back up: fresh connections work again.
	in.SetDown(false)
	up, err := net.Dial("tcp", conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	if got := roundTrip(t, up, payload); !bytes.Equal(got, payload) {
		t.Fatal("participant did not come back up")
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	in, err := New(Config{Latency: 30 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conn := echoPair(t, in)
	// The injector sits server-side: its delay applies to the echoed copy.
	start := time.Now()
	roundTrip(t, conn, []byte("ping"))
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("round-trip took %v, want >= 30ms of injected latency", elapsed)
	}
	if n := in.Metrics().DelayNs.Value(); n == 0 {
		t.Error("chaos_delay_ns_total = 0 despite injected latency")
	}
}

func TestTraceWithTagsInjectedFaults(t *testing.T) {
	in, err := New(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ctx := wire.SpanContext{TraceID: 0xa1, SpanID: 0xb2, Round: 7, Participant: 3}
	in.TraceWith(telemetry.NewJSONLTracer(&buf), func() wire.SpanContext { return ctx })

	conn := echoPair(t, in)
	defer conn.Close()
	payload := []byte("ping")
	if got := roundTrip(t, conn, payload); !bytes.Equal(got, payload) {
		t.Fatal("healthy round-trip failed")
	}
	in.SetDown(true)

	var faults []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		if m["event"] == telemetry.EventChaosFault {
			faults = append(faults, m)
		}
	}
	if len(faults) == 0 {
		t.Fatal("SetDown(true) emitted no chaos.fault events")
	}
	for _, m := range faults {
		if m["value"].(float64) != FaultSiteOutage {
			t.Errorf("fault site = %v, want %d (outage)", m["value"], FaultSiteOutage)
		}
		if m["round"].(float64) != 7 || m["participant"].(float64) != 3 {
			t.Errorf("fault lost round/participant context: %v", m)
		}
		if m["trace"] != "a1" || m["parent"] != "b2" {
			t.Errorf("fault not correlated to the round span: %v", m)
		}
	}
}

// TestParseSpecErrorText: a typo'd spec must be diagnosable from the error
// alone — it quotes the offending token and lists every valid key.
func TestParseSpecErrorText(t *testing.T) {
	cases := []struct {
		spec string
		want []string
	}{
		{"nope=1", []string{`"nope"`, "latency, jitter, bw, chunk, kill, seed, regime"}},
		{"latency", []string{`"latency"`, "not key=value", "latency, jitter, bw, chunk, kill, seed, regime"}},
		{"latency=xyz", []string{`latency="xyz"`}},
		{"regime=warp", []string{`"warp"`, "foot"}},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("spec %q accepted", tc.spec)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParseSpec(%q) error missing %q:\n%s", tc.spec, want, err)
			}
		}
	}
}
