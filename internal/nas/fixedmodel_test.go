package nas

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

func TestNewFixedModelShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	geno := Genotype{
		Normal: []OpKind{OpSepConv3, OpIdentity, OpMaxPool3, OpDilConv3, OpAvgPool3},
		Reduce: []OpKind{OpMaxPool3, OpSepConv5, OpIdentity, OpZero, OpSepConv3},
		Nodes:  2,
	}
	m, err := NewFixedModel(rng, cfg, geno)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	out := m.Forward(x)
	if out.Dim(0) != 2 || out.Dim(1) != cfg.NumClasses {
		t.Fatalf("logits shape %v", out.Shape())
	}
	m.Backward(tensor.New(2, cfg.NumClasses))
	want, err := DerivedParamCount(cfg, geno)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ParamCount(); got != want {
		t.Errorf("ParamCount %d != DerivedParamCount %d", got, want)
	}
}

func TestNewFixedModelRejectsInvalidGenotype(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bad := Genotype{Normal: []OpKind{OpZero}, Reduce: []OpKind{OpZero}, Nodes: 2}
	if _, err := NewFixedModel(rng, testConfig(), bad); err == nil {
		t.Error("expected error for invalid genotype")
	}
}

// The FixedModel parameter order must match the supernet's SampledParams
// order shape-for-shape: the RPC transport ships weights/gradients by
// position between the two.
func TestFixedModelParamOrderMatchesSampledParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	geno := Genotype{
		Normal: []OpKind{OpSepConv3, OpDilConv5, OpMaxPool3, OpIdentity, OpSepConv5},
		Reduce: []OpKind{OpAvgPool3, OpSepConv3, OpZero, OpDilConv3, OpIdentity},
		Nodes:  2,
	}
	m, err := NewFixedModel(rng, cfg, geno)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gates, err := geno.GatesFor(cfg.Candidates)
	if err != nil {
		t.Fatal(err)
	}
	sub := s.SampledParams(gates)
	fixed := m.Params()
	if len(sub) != len(fixed) {
		t.Fatalf("param counts differ: %d vs %d", len(sub), len(fixed))
	}
	for i := range sub {
		if !sub[i].Value.SameShape(fixed[i].Value) {
			t.Fatalf("param %d shape mismatch: %v (%s) vs %v (%s)",
				i, sub[i].Value.Shape(), sub[i].Name, fixed[i].Value.Shape(), fixed[i].Name)
		}
	}
}

func TestFixedModelTrainToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig()
	m, err := NewFixedModel(rng, cfg, Genotype{
		Normal: []OpKind{OpSepConv3, OpSepConv3, OpSepConv3, OpSepConv3, OpSepConv3},
		Reduce: []OpKind{OpSepConv3, OpSepConv3, OpSepConv3, OpSepConv3, OpSepConv3},
		Nodes:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Train-mode forwards differ from eval-mode forwards (batch-stat BN).
	x := tensor.Randn(rng, 1, 4, 3, 8, 8)
	m.SetTraining(true)
	// Clone: Forward returns a module-owned buffer that the second call
	// overwrites (nn's buffer-ownership contract).
	a := m.Forward(x).Clone()
	m.SetTraining(false)
	b := m.Forward(x)
	if a.AllClose(b, 1e-9) {
		t.Error("train/eval forwards identical — SetTraining not propagating")
	}
}

func TestSupernetSharedParamsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := NewSupernet(rng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := make(map[*nn.Param]bool)
	for _, p := range s.Params() {
		all[p] = true
	}
	shared := s.SharedParams()
	if len(shared) == 0 {
		t.Fatal("no shared params")
	}
	for _, p := range shared {
		if !all[p] {
			t.Fatalf("shared param %s not in supernet", p.Name)
		}
	}
	// Shared params must be included in every sampled sub-model.
	g := uniformGates(s, 0) // all "none" ops: param-free edges
	sampled := make(map[*nn.Param]bool)
	for _, p := range s.SampledParams(g) {
		sampled[p] = true
	}
	for _, p := range shared {
		if !sampled[p] {
			t.Fatalf("shared param %s missing from sub-model", p.Name)
		}
	}
}
