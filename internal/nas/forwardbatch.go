package nas

import (
	"fmt"

	"fedrlnas/internal/tensor"
)

// ForwardBatch runs one batched eval-mode forward over xs — every example
// packed into a single [padTo, C, H, W] tensor and pushed through the GEMM
// path once — and demultiplexes the logits back into per-example rows.
// Row i is bit-identical to m.Forward(xs[i]): in eval mode every layer is
// row-independent (batch norm normalizes with running statistics
// elementwise; convolutions lower to per-row GEMMs whose k-summation order
// does not depend on batch size), so batching changes throughput, never
// values. That independence is exactly what training-mode batch norm
// breaks, so ForwardBatch refuses to run a training-mode model.
//
// padTo rounds the batch up to a fixed dispatch size (padding rows repeat
// example 0, and their outputs are discarded) so the admission queue can
// keep kernel shapes — and therefore packed-panel scratch — stable across
// dispatches. padTo < len(xs) means no padding beyond the batch itself.
//
// Each xs[i] must be a single example shaped [1, C, H, W] or [C, H, W],
// all identically. The returned logits tensors ([1, classes]) are
// per-slot scratch owned by the model: valid until the next ForwardBatch
// call, so callers that retain results must copy them out.
func (m *FixedModel) ForwardBatch(xs []*tensor.Tensor, padTo int) ([]*tensor.Tensor, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("nas: ForwardBatch on empty batch")
	}
	for _, bn := range m.Net.BatchNorms() {
		if bn.Training() {
			return nil, fmt.Errorf("nas: ForwardBatch requires eval mode (SetTraining(false)); training-mode batch norm couples rows")
		}
	}
	if padTo < n {
		padTo = n
	}
	shape := xs[0].Shape()
	if len(shape) == 4 && shape[0] == 1 {
		shape = shape[1:]
	}
	if len(shape) != 3 {
		return nil, fmt.Errorf("nas: ForwardBatch example shape %v, want [1,C,H,W] or [C,H,W]", xs[0].Shape())
	}
	exampleLen := shape[0] * shape[1] * shape[2]
	for i, x := range xs {
		if x.Size() != exampleLen {
			return nil, fmt.Errorf("nas: ForwardBatch example %d has %d elements, example 0 has %d",
				i, x.Size(), exampleLen)
		}
	}
	if m.batchIn == nil || !m.batchIn.ShapeIs(padTo, shape[0], shape[1], shape[2]) {
		m.batchIn = tensor.New(padTo, shape[0], shape[1], shape[2])
	}
	in := m.batchIn.Data()
	for i, x := range xs {
		copy(in[i*exampleLen:(i+1)*exampleLen], x.Data())
	}
	for i := n; i < padTo; i++ {
		copy(in[i*exampleLen:(i+1)*exampleLen], xs[0].Data())
	}

	logits := m.Net.ForwardSampled(m.batchIn, m.G)
	classes := logits.Size() / padTo
	ld := logits.Data()
	if len(m.batchOut) < n {
		m.batchOut = append(m.batchOut, make([]*tensor.Tensor, n-len(m.batchOut))...)
	}
	out := m.batchOut[:n]
	for i := range out {
		if out[i] == nil || !out[i].ShapeIs(1, classes) {
			out[i] = tensor.New(1, classes)
		}
		copy(out[i].Data(), ld[i*classes:(i+1)*classes])
	}
	return out, nil
}
