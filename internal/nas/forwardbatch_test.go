package nas

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/tensor"
)

func batchTestModel(t *testing.T) *FixedModel {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	geno := Genotype{
		Normal: []OpKind{OpSepConv3, OpIdentity, OpMaxPool3, OpDilConv3, OpAvgPool3},
		Reduce: []OpKind{OpMaxPool3, OpSepConv5, OpIdentity, OpZero, OpSepConv3},
		Nodes:  2,
	}
	m, err := NewFixedModel(rng, testConfig(), geno)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTraining(false)
	return m
}

// TestForwardBatchBitIdentity is the batched-serving correctness gate: for
// every batch size and padding remainder, ForwardBatch row i must equal a
// standalone Forward of example i bit for bit. Any divergence means the
// admission queue would change inference results depending on how requests
// happened to coalesce.
func TestForwardBatchBitIdentity(t *testing.T) {
	m := batchTestModel(t)
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ n, padTo int }{
		{1, 1}, {1, 8}, {2, 8}, {3, 4}, {5, 8}, {8, 8}, {7, 32}, {32, 32},
	}
	for _, tc := range cases {
		xs := make([]*tensor.Tensor, tc.n)
		for i := range xs {
			xs[i] = tensor.Randn(rng, 1, 1, 3, 8, 8)
		}
		// Compute singles first: ForwardBatch's outputs are model-owned
		// scratch, so copy them before the next model call.
		singles := make([][]float64, tc.n)
		for i, x := range xs {
			singles[i] = append([]float64(nil), m.Forward(x).Data()...)
		}
		got, err := m.ForwardBatch(xs, tc.padTo)
		if err != nil {
			t.Fatalf("n=%d padTo=%d: %v", tc.n, tc.padTo, err)
		}
		if len(got) != tc.n {
			t.Fatalf("n=%d padTo=%d: %d outputs", tc.n, tc.padTo, len(got))
		}
		for i := range got {
			gd := got[i].Data()
			if len(gd) != len(singles[i]) {
				t.Fatalf("n=%d padTo=%d row %d: %d logits, want %d",
					tc.n, tc.padTo, i, len(gd), len(singles[i]))
			}
			for j := range gd {
				if gd[j] != singles[i][j] {
					t.Fatalf("n=%d padTo=%d row %d logit %d: batched %v != single %v",
						tc.n, tc.padTo, i, j, gd[j], singles[i][j])
				}
			}
		}
	}
}

// TestForwardBatchAcceptsFlatExamples allows [C,H,W] examples (no leading
// batch dim), the shape raw inference payloads decode to.
func TestForwardBatchAcceptsFlatExamples(t *testing.T) {
	m := batchTestModel(t)
	rng := rand.New(rand.NewSource(13))
	flat := tensor.Randn(rng, 1, 3, 8, 8)
	lifted := tensor.New(1, 3, 8, 8)
	copy(lifted.Data(), flat.Data())
	want := append([]float64(nil), m.Forward(lifted).Data()...)
	got, err := m.ForwardBatch([]*tensor.Tensor{flat}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range got[0].Data() {
		if v != want[j] {
			t.Fatalf("logit %d: %v != %v", j, v, want[j])
		}
	}
}

// TestForwardBatchRejectsTrainingMode: batching a training-mode model would
// couple rows through batch statistics, silently changing results.
func TestForwardBatchRejectsTrainingMode(t *testing.T) {
	m := batchTestModel(t)
	m.SetTraining(true)
	rng := rand.New(rand.NewSource(17))
	_, err := m.ForwardBatch([]*tensor.Tensor{tensor.Randn(rng, 1, 1, 3, 8, 8)}, 4)
	if err == nil {
		t.Fatal("expected error for training-mode ForwardBatch")
	}
}

// TestForwardBatchRejectsBadInput covers the error paths.
func TestForwardBatchRejectsBadInput(t *testing.T) {
	m := batchTestModel(t)
	if _, err := m.ForwardBatch(nil, 4); err == nil {
		t.Error("expected error for empty batch")
	}
	rng := rand.New(rand.NewSource(19))
	mixed := []*tensor.Tensor{
		tensor.Randn(rng, 1, 1, 3, 8, 8),
		tensor.Randn(rng, 1, 1, 3, 4, 4),
	}
	if _, err := m.ForwardBatch(mixed, 4); err == nil {
		t.Error("expected error for mismatched example shapes")
	}
	if _, err := m.ForwardBatch([]*tensor.Tensor{tensor.Randn(rng, 1, 8)}, 4); err == nil {
		t.Error("expected error for non-image example")
	}
}
