package nas_test

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/tensor"
)

// Example builds a supernet, samples a sub-model (one op per edge), and
// shows the paper's communication saving: the sub-model payload is a small
// fraction of the supernet.
func Example() {
	rng := rand.New(rand.NewSource(1))
	net, err := nas.NewSupernet(rng, nas.Config{
		InChannels: 3, NumClasses: 10, C: 4, Layers: 3, Nodes: 2,
		Candidates: nas.AllOps,
	})
	if err != nil {
		panic(err)
	}

	// A one-hot gate per edge prunes the supernet to a sub-model.
	nE, rE := net.ArchSpace()
	gates := nas.Gates{Normal: make([]int, nE), Reduce: make([]int, rE)}
	for i := range gates.Normal {
		gates.Normal[i] = 4 // sep_conv_3x3
	}
	for i := range gates.Reduce {
		gates.Reduce[i] = 2 // max_pool_3x3
	}

	x := tensor.New(1, 3, 8, 8)
	logits := net.ForwardSampled(x, gates)
	fmt.Println("logit classes:", logits.Dim(1))
	fmt.Println("sub-model smaller:", net.SubModelBytes(gates) < net.SupernetBytes()/3)
	// Output:
	// logit classes: 10
	// sub-model smaller: true
}

// ExampleGenotype shows the discrete-architecture artifact that searches
// produce and that transfers across datasets.
func ExampleGenotype() {
	g := nas.Genotype{
		Normal: []nas.OpKind{nas.OpSepConv3, nas.OpIdentity},
		Reduce: []nas.OpKind{nas.OpMaxPool3, nas.OpSepConv5},
		Nodes:  1,
	}
	fmt.Println(g)
	// Output: Genotype(normal=[sep_conv_3x3 skip_connect], reduce=[max_pool_3x3 sep_conv_5x5])
}
