// Package nas implements the DARTS-style search space the paper adopts:
// stacked cells, each a DAG whose edges carry one of N=8 candidate
// operations. The full network with all candidates materialized on every
// edge is the supernet; one-hot gates prune it to a sub-model with exactly
// one operation per edge (paper Eq. 3–6).
package nas

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/nn"
)

// OpKind identifies a candidate operation on a cell edge.
type OpKind int

// The paper's N = 8 candidate operations (Fig. 1), matching DARTS.
const (
	OpZero OpKind = iota + 1
	OpIdentity
	OpMaxPool3
	OpAvgPool3
	OpSepConv3
	OpSepConv5
	OpDilConv3
	OpDilConv5
)

// AllOps is the full candidate set in canonical order.
var AllOps = []OpKind{
	OpZero, OpIdentity, OpMaxPool3, OpAvgPool3,
	OpSepConv3, OpSepConv5, OpDilConv3, OpDilConv5,
}

// NumOps is the size of the full candidate set (the paper's N).
const NumOps = 8

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpZero:
		return "none"
	case OpIdentity:
		return "skip_connect"
	case OpMaxPool3:
		return "max_pool_3x3"
	case OpAvgPool3:
		return "avg_pool_3x3"
	case OpSepConv3:
		return "sep_conv_3x3"
	case OpSepConv5:
		return "sep_conv_5x5"
	case OpDilConv3:
		return "dil_conv_3x3"
	case OpDilConv5:
		return "dil_conv_5x5"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// NewOp materializes the candidate operation as a trainable module with c
// channels and the given spatial stride.
func NewOp(kind OpKind, name string, rng *rand.Rand, c, stride int) nn.Module {
	switch kind {
	case OpZero:
		return nn.NewZero(stride)
	case OpIdentity:
		if stride == 1 {
			return nn.NewIdentity()
		}
		return nn.NewSubSample(stride)
	case OpMaxPool3:
		return nn.NewMaxPool2D(3, stride, 1)
	case OpAvgPool3:
		return nn.NewAvgPool2D(3, stride, 1)
	case OpSepConv3:
		return nn.NewSepConv(name, rng, c, 3, stride)
	case OpSepConv5:
		return nn.NewSepConv(name, rng, c, 5, stride)
	case OpDilConv3:
		return nn.NewDilConv(name, rng, c, 3, stride)
	case OpDilConv5:
		return nn.NewDilConv(name, rng, c, 5, stride)
	default:
		panic(fmt.Sprintf("nas: unknown op kind %d", int(kind)))
	}
}

// OpParamCount returns the number of learnable scalars the op contributes
// at c channels (used for sizing sub-models without materializing them).
func OpParamCount(kind OpKind, c int) int {
	switch kind {
	case OpSepConv3:
		return c*3*3 + c*c + 2*c
	case OpSepConv5:
		return c*5*5 + c*c + 2*c
	case OpDilConv3:
		return c*3*3 + c*c + 2*c
	case OpDilConv5:
		return c*5*5 + c*c + 2*c
	default:
		return 0
	}
}
