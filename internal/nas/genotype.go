package nas

import (
	"fmt"
	"strings"
)

// Genotype is a discrete architecture: one op kind per edge for the shared
// normal cell and the shared reduction cell. It is the searchable artifact
// the paper transfers across datasets (Tables VII–VIII).
type Genotype struct {
	Normal []OpKind
	Reduce []OpKind
	Nodes  int
}

// String renders the genotype in a DARTS-like compact notation.
func (g Genotype) String() string {
	var b strings.Builder
	b.WriteString("Genotype(normal=[")
	for i, op := range g.Normal {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(op.String())
	}
	b.WriteString("], reduce=[")
	for i, op := range g.Reduce {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(op.String())
	}
	b.WriteString("])")
	return b.String()
}

// Validate checks the genotype's structural consistency.
func (g Genotype) Validate() error {
	want := NumEdges(g.Nodes)
	if len(g.Normal) != want || len(g.Reduce) != want {
		return fmt.Errorf("genotype: %d nodes needs %d edges per cell, got normal=%d reduce=%d",
			g.Nodes, want, len(g.Normal), len(g.Reduce))
	}
	return nil
}

// GatesFor converts the genotype into gates over a candidate set. Every op
// in the genotype must appear in candidates.
func (g Genotype) GatesFor(candidates []OpKind) (Gates, error) {
	index := make(map[OpKind]int, len(candidates))
	for i, k := range candidates {
		index[k] = i
	}
	conv := func(ops []OpKind) ([]int, error) {
		out := make([]int, len(ops))
		for i, k := range ops {
			ci, ok := index[k]
			if !ok {
				return nil, fmt.Errorf("genotype: op %s not in candidate set", k)
			}
			out[i] = ci
		}
		return out, nil
	}
	normal, err := conv(g.Normal)
	if err != nil {
		return Gates{}, err
	}
	reduce, err := conv(g.Reduce)
	if err != nil {
		return Gates{}, err
	}
	return Gates{Normal: normal, Reduce: reduce}, nil
}

// GenotypeFromGates maps one-hot gates back to op kinds.
func GenotypeFromGates(g Gates, candidates []OpKind, nodes int) Genotype {
	conv := func(gs []int) []OpKind {
		out := make([]OpKind, len(gs))
		for i, k := range gs {
			out[i] = candidates[k]
		}
		return out
	}
	return Genotype{Normal: conv(g.Normal), Reduce: conv(g.Reduce), Nodes: nodes}
}

// DeriveGenotype picks the argmax candidate per edge from architecture
// probability matrices (rows = edges, cols = candidates).
func DeriveGenotype(probsNormal, probsReduce [][]float64, candidates []OpKind, nodes int) Genotype {
	arg := func(rows [][]float64) []OpKind {
		out := make([]OpKind, len(rows))
		for i, row := range rows {
			best, bi := row[0], 0
			for j, v := range row {
				if v > best {
					best, bi = v, j
				}
			}
			out[i] = candidates[bi]
		}
		return out
	}
	return Genotype{Normal: arg(probsNormal), Reduce: arg(probsReduce), Nodes: nodes}
}

// DerivedParamCount estimates the parameter count of the discrete model a
// genotype induces under cfg, without materializing it. It accounts for the
// stem, per-cell preprocessing, gated ops, and classifier head.
func DerivedParamCount(cfg Config, g Genotype) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	total := cfg.InChannels*cfg.C*3*3 + 2*cfg.C // stem conv + bn
	red := cfg.ReductionLayers()
	cPrevPrev, cPrev, cCur := cfg.C, cfg.C, cfg.C
	for l := 0; l < cfg.Layers; l++ {
		if red[l] {
			cCur *= 2
		}
		ops := g.Normal
		if red[l] {
			ops = g.Reduce
		}
		// pre0, pre1: 1x1 conv + bn each.
		total += cPrevPrev*cCur + 2*cCur
		total += cPrev*cCur + 2*cCur
		for _, op := range ops {
			total += OpParamCount(op, cCur)
		}
		cPrevPrev, cPrev = cPrev, cfg.Nodes*cCur
	}
	total += cPrev*cfg.NumClasses + cfg.NumClasses // head
	return total, nil
}

// ParamMB converts a scalar parameter count to float32 megabytes, the unit
// the paper's tables report.
func ParamMB(paramCount int) float64 {
	return float64(paramCount) * 4 / (1024 * 1024)
}

// DeriveGenotypeExcluding picks the argmax candidate per edge while skipping
// the excluded op kinds (DARTS derives final architectures without the
// "none" op, which would otherwise leave dead edges).
func DeriveGenotypeExcluding(probsNormal, probsReduce [][]float64, candidates []OpKind, nodes int, excluded ...OpKind) Genotype {
	skip := make(map[OpKind]bool, len(excluded))
	for _, k := range excluded {
		skip[k] = true
	}
	arg := func(rows [][]float64) []OpKind {
		out := make([]OpKind, len(rows))
		for i, row := range rows {
			best, bi := -1.0, -1
			for j, v := range row {
				if skip[candidates[j]] {
					continue
				}
				if bi < 0 || v > best {
					best, bi = v, j
				}
			}
			if bi < 0 {
				bi = 0 // everything excluded: fall back to the first candidate
			}
			out[i] = candidates[bi]
		}
		return out
	}
	return Genotype{Normal: arg(probsNormal), Reduce: arg(probsReduce), Nodes: nodes}
}
