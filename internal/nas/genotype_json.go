package nas

import (
	"encoding/json"
	"fmt"
	"os"
)

// genotypeJSON is the stable on-disk representation: op names rather than
// enum values, so files survive enum reordering.
type genotypeJSON struct {
	Nodes  int      `json:"nodes"`
	Normal []string `json:"normal"`
	Reduce []string `json:"reduce"`
}

// MarshalJSON implements json.Marshaler.
func (g Genotype) MarshalJSON() ([]byte, error) {
	enc := genotypeJSON{Nodes: g.Nodes}
	for _, op := range g.Normal {
		enc.Normal = append(enc.Normal, op.String())
	}
	for _, op := range g.Reduce {
		enc.Reduce = append(enc.Reduce, op.String())
	}
	return json.Marshal(enc)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Genotype) UnmarshalJSON(data []byte) error {
	var dec genotypeJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	normal, err := opsFromNames(dec.Normal)
	if err != nil {
		return err
	}
	reduce, err := opsFromNames(dec.Reduce)
	if err != nil {
		return err
	}
	g.Nodes = dec.Nodes
	g.Normal = normal
	g.Reduce = reduce
	return g.Validate()
}

// SaveGenotype writes a genotype to a JSON file.
func SaveGenotype(path string, g Genotype) error {
	if err := g.Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("save genotype: %w", err)
	}
	return nil
}

// LoadGenotype reads a genotype from a JSON file.
func LoadGenotype(path string) (Genotype, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Genotype{}, fmt.Errorf("load genotype: %w", err)
	}
	var g Genotype
	if err := json.Unmarshal(buf, &g); err != nil {
		return Genotype{}, fmt.Errorf("load genotype: %w", err)
	}
	return g, nil
}

func opsFromNames(names []string) ([]OpKind, error) {
	out := make([]OpKind, len(names))
	for i, name := range names {
		op, err := opFromName(name)
		if err != nil {
			return nil, err
		}
		out[i] = op
	}
	return out, nil
}

func opFromName(name string) (OpKind, error) {
	for _, k := range AllOps {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("nas: unknown op name %q", name)
}
