package nas

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

func testConfig() Config {
	return Config{
		InChannels: 3,
		NumClasses: 4,
		C:          4,
		Layers:     3,
		Nodes:      2,
		Candidates: AllOps,
	}
}

func uniformGates(s *Supernet, k int) Gates {
	nE, rE := s.ArchSpace()
	g := Gates{Normal: make([]int, nE), Reduce: make([]int, rE)}
	for i := range g.Normal {
		g.Normal[i] = k
	}
	for i := range g.Reduce {
		g.Reduce[i] = k
	}
	return g
}

func TestNumEdges(t *testing.T) {
	cases := []struct{ b, want int }{{1, 2}, {2, 5}, {3, 9}, {4, 14}}
	for _, tc := range cases {
		if got := NumEdges(tc.b); got != tc.want {
			t.Errorf("NumEdges(%d) = %d, want %d", tc.b, got, tc.want)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range AllOps {
		if k.String() == "" || k.String()[0] == 'o' && k.String()[1] == 'p' {
			t.Errorf("op %d has placeholder string %q", int(k), k.String())
		}
	}
	if len(AllOps) != NumOps {
		t.Errorf("AllOps has %d entries, want %d", len(AllOps), NumOps)
	}
}

func TestEveryOpPreservesShapeStride1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 2, 4, 6, 6)
	for _, k := range AllOps {
		op := NewOp(k, "t", rng, 4, 1)
		out := op.Forward(x)
		if out.Dim(0) != 2 || out.Dim(1) != 4 || out.Dim(2) != 6 || out.Dim(3) != 6 {
			t.Errorf("%s stride-1 output shape %v, want [2 4 6 6]", k, out.Shape())
		}
	}
}

func TestEveryOpHalvesShapeStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 1, 4, 6, 6)
	for _, k := range AllOps {
		op := NewOp(k, "t", rng, 4, 2)
		out := op.Forward(x)
		if out.Dim(2) != 3 || out.Dim(3) != 3 {
			t.Errorf("%s stride-2 output shape %v, want spatial 3x3", k, out.Shape())
		}
	}
}

func TestConcatSplitInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.Randn(rng, 1, 2, 3, 4, 4)
	b := tensor.Randn(rng, 1, 2, 3, 4, 4)
	cat := concatChannels([]*tensor.Tensor{a, b})
	if cat.Dim(1) != 6 {
		t.Fatalf("concat channels = %d, want 6", cat.Dim(1))
	}
	parts := splitChannels(cat, 2, 3)
	if !parts[0].AllClose(a, 0) || !parts[1].AllClose(b, 0) {
		t.Error("splitChannels is not the inverse of concatChannels")
	}
}

func TestSupernetForwardSampledShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, err := NewSupernet(rng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := uniformGates(s, 4) // sep_conv_3x3 everywhere
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	out := s.ForwardSampled(x, g)
	if out.Dim(0) != 2 || out.Dim(1) != 4 {
		t.Errorf("logits shape %v, want [2 4]", out.Shape())
	}
}

func TestSupernetMixedMatchesSampledWhenOneHot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := NewSupernet(rng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetTraining(false) // freeze BN running stats for comparability
	g := uniformGates(s, 1)
	nE, rE := s.ArchSpace()
	oneHot := func(edges int) [][]float64 {
		rows := make([][]float64, edges)
		for i := range rows {
			rows[i] = make([]float64, NumOps)
			rows[i][1] = 1
		}
		return rows
	}
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	a := s.ForwardSampled(x, g)
	b := s.ForwardMixed(x, oneHot(nE), oneHot(rE))
	if !a.AllClose(b, 1e-9) {
		t.Error("one-hot mixed forward must equal sampled forward")
	}
}

func TestSupernetSampledGradientsNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig()
	cfg.Layers = 2
	cfg.C = 3
	s, err := NewSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep training mode: batch-stat BN moves activations off exact ReLU
	// kinks (a bias-free conv on dead inputs emits exact zeros, which a
	// fresh eval-mode BN would park right on the kink and break FD).
	g := uniformGates(s, 4)
	x := tensor.Randn(rng, 1, 2, 3, 6, 6)
	labels := []int{0, 3}
	lossAt := func() float64 {
		res, err := nn.CrossEntropy(s.ForwardSampled(x, g), labels)
		if err != nil {
			t.Fatal(err)
		}
		return res.Loss
	}
	params := s.SampledParams(g)
	nn.ZeroGrads(s.Params())
	res, err := nn.CrossEntropy(s.ForwardSampled(x, g), labels)
	if err != nil {
		t.Fatal(err)
	}
	s.BackwardSampled(res.GradLogits)

	const eps = 1e-5
	checked := 0
	for _, p := range params {
		pd := p.Value.Data()
		for i := 0; i < len(pd); i += 37 { // sample indices for speed
			orig := pd[i]
			pd[i] = orig + eps
			up := lossAt()
			pd[i] = orig - eps
			down := lossAt()
			pd[i] = orig
			num := (up - down) / (2 * eps)
			ana := p.Grad.Data()[i]
			if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, ana, num)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestSubModelMuchSmallerThanSupernet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := NewSupernet(rng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := uniformGates(s, 4)
	sub, super := s.SubModelBytes(g), s.SupernetBytes()
	if sub >= super {
		t.Fatalf("sub-model %d B >= supernet %d B", sub, super)
	}
	// The paper claims roughly N× savings on edge params; with shared
	// stem/pre/head the overall factor is smaller but must still be large.
	if ratio := float64(super) / float64(sub); ratio < 2 {
		t.Errorf("supernet/sub-model ratio %.2f too small", ratio)
	}
}

func TestSampledParamsSubsetOfParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s, err := NewSupernet(rng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := make(map[*nn.Param]bool)
	for _, p := range s.Params() {
		all[p] = true
	}
	g := uniformGates(s, 6)
	for _, p := range s.SampledParams(g) {
		if !all[p] {
			t.Fatalf("sampled param %s not in supernet params", p.Name)
		}
	}
}

func TestGenotypeRoundTrip(t *testing.T) {
	g := Genotype{
		Normal: []OpKind{OpIdentity, OpSepConv3, OpZero, OpMaxPool3, OpDilConv5},
		Reduce: []OpKind{OpAvgPool3, OpSepConv5, OpDilConv3, OpIdentity, OpZero},
		Nodes:  2,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	gates, err := g.GatesFor(AllOps)
	if err != nil {
		t.Fatal(err)
	}
	back := GenotypeFromGates(gates, AllOps, 2)
	for i := range g.Normal {
		if back.Normal[i] != g.Normal[i] || back.Reduce[i] != g.Reduce[i] {
			t.Fatalf("round trip mismatch at edge %d", i)
		}
	}
}

func TestGenotypeValidateRejectsWrongLength(t *testing.T) {
	g := Genotype{Normal: []OpKind{OpZero}, Reduce: []OpKind{OpZero}, Nodes: 2}
	if err := g.Validate(); err == nil {
		t.Error("expected validation error")
	}
}

func TestGatesForRejectsUnknownOp(t *testing.T) {
	g := Genotype{
		Normal: []OpKind{OpSepConv5, OpSepConv5},
		Reduce: []OpKind{OpSepConv5, OpSepConv5},
		Nodes:  1,
	}
	if _, err := g.GatesFor([]OpKind{OpZero, OpIdentity}); err == nil {
		t.Error("expected error for op outside candidate set")
	}
}

func TestDeriveGenotypeArgmax(t *testing.T) {
	probs := [][]float64{
		{0.1, 0.9},
		{0.8, 0.2},
	}
	g := DeriveGenotype(probs, probs, []OpKind{OpZero, OpSepConv3}, 1)
	if g.Normal[0] != OpSepConv3 || g.Normal[1] != OpZero {
		t.Errorf("derived %v", g.Normal)
	}
}

func TestDerivedParamCountMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig()
	geno := Genotype{
		Normal: []OpKind{OpSepConv3, OpIdentity, OpSepConv5, OpMaxPool3, OpDilConv3},
		Reduce: []OpKind{OpMaxPool3, OpSepConv3, OpIdentity, OpDilConv5, OpAvgPool3},
		Nodes:  2,
	}
	want, err := DerivedParamCount(cfg, geno)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize a supernet and count only sampled params.
	s, err := NewSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gates, err := geno.GatesFor(AllOps)
	if err != nil {
		t.Fatal(err)
	}
	got := nn.ParamCount(s.SampledParams(gates))
	if got != want {
		t.Errorf("DerivedParamCount = %d, materialized = %d", want, got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{InChannels: 3, NumClasses: 1, C: 4, Layers: 1, Nodes: 1, Candidates: AllOps},
		{InChannels: 3, NumClasses: 2, C: 0, Layers: 1, Nodes: 1, Candidates: AllOps},
		{InChannels: 3, NumClasses: 2, C: 4, Layers: 1, Nodes: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestReductionLayers(t *testing.T) {
	cfg := Config{Layers: 9}
	red := cfg.ReductionLayers()
	if !red[3] || !red[6] || len(red) != 2 {
		t.Errorf("layers=9 reductions %v, want {3,6}", red)
	}
	cfg = Config{Layers: 2}
	if red := cfg.ReductionLayers(); !red[1] {
		t.Errorf("layers=2 reductions %v, want {1}", red)
	}
	cfg = Config{Layers: 1}
	if red := cfg.ReductionLayers(); len(red) != 0 {
		t.Errorf("layers=1 reductions %v, want none", red)
	}
}

// Training a sampled sub-model end to end must reduce the loss.
func TestSampledTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := testConfig()
	cfg.Layers = 2
	s, err := NewSupernet(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := uniformGates(s, 4)
	n := 8
	x := tensor.New(n, 3, 8, 8)
	labels := make([]int, n)
	for b := 0; b < n; b++ {
		labels[b] = b % cfg.NumClasses
		for i := 0; i < 3*8*8; i++ {
			x.Data()[b*3*8*8+i] = float64(labels[b])*0.5 + 0.2*rng.NormFloat64()
		}
	}
	opt := nn.NewSGD(0.05, 0.9, 3e-4, 5)
	var first, last float64
	for step := 0; step < 25; step++ {
		nn.ZeroGrads(s.Params())
		res, err := nn.CrossEntropy(s.ForwardSampled(x, g), labels)
		if err != nil {
			t.Fatal(err)
		}
		s.BackwardSampled(res.GradLogits)
		opt.Step(s.SampledParams(g))
		if step == 0 {
			first = res.Loss
		}
		last = res.Loss
	}
	if last >= first {
		t.Errorf("sampled training did not reduce loss: %v -> %v", first, last)
	}
}

func TestCloneGatesIsDeep(t *testing.T) {
	g := Gates{Normal: []int{1, 2}, Reduce: []int{3}}
	c := CloneGates(g)
	c.Normal[0] = 9
	if g.Normal[0] != 1 {
		t.Error("CloneGates must deep-copy")
	}
}

func TestMixedBackwardProbSensitivity(t *testing.T) {
	// dL/dp_k from BackwardMixed must match finite differences of the blend.
	rng := rand.New(rand.NewSource(11))
	m := newMixedOp("e", rng, []OpKind{OpIdentity, OpSepConv3}, 3, 1)
	nn.SetTraining(false, m.ops...)
	x := tensor.Randn(rng, 1, 1, 3, 5, 5)
	probs := []float64{0.3, 0.7}
	out := m.ForwardMixed(x, probs)
	seed := tensor.Randn(rng, 1, out.Shape()...)
	_, dProbs := m.BackwardMixed(seed)
	const eps = 1e-6
	for k := range probs {
		probs[k] += eps
		up := m.ForwardMixed(x, probs).Dot(seed)
		probs[k] -= 2 * eps
		down := m.ForwardMixed(x, probs).Dot(seed)
		probs[k] += eps
		num := (up - down) / (2 * eps)
		if math.Abs(num-dProbs[k]) > 1e-6*(1+math.Abs(num)) {
			t.Errorf("dProbs[%d]: analytic %v numeric %v", k, dProbs[k], num)
		}
	}
}

func TestGenotypeJSONRoundTrip(t *testing.T) {
	g := Genotype{
		Normal: []OpKind{OpSepConv3, OpIdentity, OpZero, OpMaxPool3, OpDilConv5},
		Reduce: []OpKind{OpAvgPool3, OpSepConv5, OpDilConv3, OpIdentity, OpZero},
		Nodes:  2,
	}
	path := t.TempDir() + "/geno.json"
	if err := SaveGenotype(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGenotype(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != g.String() {
		t.Errorf("round trip mismatch:\n%s\n%s", g, back)
	}
}

func TestSaveGenotypeRejectsInvalid(t *testing.T) {
	bad := Genotype{Normal: []OpKind{OpZero}, Reduce: []OpKind{OpZero}, Nodes: 2}
	if err := SaveGenotype(t.TempDir()+"/x.json", bad); err == nil {
		t.Error("expected error for invalid genotype")
	}
}

func TestLoadGenotypeErrors(t *testing.T) {
	if _, err := LoadGenotype(t.TempDir() + "/missing.json"); err == nil {
		t.Error("expected error for missing file")
	}
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := osWriteFile(bad, []byte(`{"nodes":1,"normal":["warp_drive","none"],"reduce":["none","none"]}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGenotype(bad); err == nil {
		t.Error("expected error for unknown op name")
	}
}

func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestDeriveGenotypeExcluding(t *testing.T) {
	probs := [][]float64{
		{0.9, 0.05, 0.05}, // zero wins raw argmax
		{0.1, 0.6, 0.3},
	}
	cands := []OpKind{OpZero, OpIdentity, OpSepConv3}
	g := DeriveGenotypeExcluding(probs, probs, cands, 1, OpZero)
	if g.Normal[0] != OpIdentity {
		t.Errorf("edge 0 = %v, want skip_connect (zero excluded)", g.Normal[0])
	}
	if g.Normal[1] != OpIdentity {
		t.Errorf("edge 1 = %v, want skip_connect", g.Normal[1])
	}
	// Excluding everything falls back to the first candidate.
	g2 := DeriveGenotypeExcluding(probs, probs, cands, 1, OpZero, OpIdentity, OpSepConv3)
	if g2.Normal[0] != OpZero {
		t.Errorf("all-excluded fallback = %v", g2.Normal[0])
	}
}
