package nas

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// NumEdges returns the number of edges in a cell with b intermediate nodes:
// node i receives an edge from the 2 cell inputs and all earlier
// intermediates, so the total is 2b + b(b-1)/2.
func NumEdges(b int) int { return 2*b + b*(b-1)/2 }

// MixedOp is one cell edge holding every candidate operation. In sampled
// mode exactly one candidate runs (the paper's binary gate, Eq. 5–6); in
// mixed mode all candidates run and are blended by a probability vector
// (the DARTS relaxation, Eq. 3 — used by the DARTS/FedNAS baselines).
type MixedOp struct {
	Candidates []OpKind
	ops        []nn.Module
	params     []*nn.Param

	lastSampled int              // candidate index used in sampled mode
	lastOutputs []*tensor.Tensor // per-candidate outputs in mixed mode
	lastProbs   []float64        // blend weights in mixed mode
}

// newMixedOp materializes the candidates for an edge.
func newMixedOp(name string, rng *rand.Rand, candidates []OpKind, c, stride int) *MixedOp {
	m := &MixedOp{
		Candidates: append([]OpKind(nil), candidates...),
		ops:        make([]nn.Module, len(candidates)),
	}
	for i, k := range candidates {
		m.ops[i] = NewOp(k, fmt.Sprintf("%s.%s", name, k), rng, c, stride)
	}
	return m
}

// Op returns the materialized module for candidate i.
func (m *MixedOp) Op(i int) nn.Module { return m.ops[i] }

// Params returns the parameters of every candidate. The returned slice is
// cached (candidates are fixed at construction) and must not be mutated.
func (m *MixedOp) Params() []*nn.Param {
	if m.params == nil {
		for _, op := range m.ops {
			m.params = append(m.params, op.Params()...)
		}
	}
	return m.params
}

// ForwardSampled runs only candidate k.
func (m *MixedOp) ForwardSampled(x *tensor.Tensor, k int) *tensor.Tensor {
	m.lastSampled = k
	return m.ops[k].Forward(x)
}

// BackwardSampled back-propagates through the candidate used by the last
// ForwardSampled.
func (m *MixedOp) BackwardSampled(grad *tensor.Tensor) *tensor.Tensor {
	return m.ops[m.lastSampled].Backward(grad)
}

// ForwardMixed runs every candidate and blends with probs (Eq. 3).
func (m *MixedOp) ForwardMixed(x *tensor.Tensor, probs []float64) *tensor.Tensor {
	if len(probs) != len(m.ops) {
		panic(fmt.Sprintf("nas: %d probs for %d candidates", len(probs), len(m.ops)))
	}
	m.lastOutputs = make([]*tensor.Tensor, len(m.ops))
	m.lastProbs = append([]float64(nil), probs...)
	var out *tensor.Tensor
	for i, op := range m.ops {
		o := op.Forward(x)
		m.lastOutputs[i] = o
		if out == nil {
			out = o.Scale(probs[i])
		} else {
			out.AXPY(probs[i], o)
		}
	}
	return out
}

// BackwardMixed back-propagates a mixed forward. It returns dL/d(input) and
// dL/d(probs), the per-candidate sensitivity Σ grad⊙opOutput that baselines
// chain through the softmax to get architecture gradients.
func (m *MixedOp) BackwardMixed(grad *tensor.Tensor) (*tensor.Tensor, []float64) {
	dProbs := make([]float64, len(m.ops))
	var gradX *tensor.Tensor
	for i, op := range m.ops {
		dProbs[i] = grad.Dot(m.lastOutputs[i])
		gx := op.Backward(grad.Scale(m.lastProbs[i]))
		if gradX == nil {
			gradX = gx
		} else {
			gradX.AddInPlace(gx)
		}
	}
	return gradX, dProbs
}

// CellSpec describes a cell's position-dependent wiring.
type CellSpec struct {
	Nodes         int  // intermediate nodes (b)
	C             int  // channels per node
	CPrevPrev     int  // channels of input s0
	CPrev         int  // channels of input s1
	Reduction     bool // this cell halves spatial resolution
	PrevReduction bool // the previous cell was a reduction cell
}

// Cell is one DARTS cell: two preprocessed inputs, b intermediate nodes
// connected by MixedOp edges, output = channel-concat of the intermediates.
type Cell struct {
	Spec   CellSpec
	pre0   *nn.Sequential
	pre1   *nn.Sequential
	Edges  []*MixedOp // ordered: node0's edges (from s0, s1), node1's (s0, s1, n0), …
	params []*nn.Param

	// forward caches
	lastStates    []*tensor.Tensor
	lastGates     []int
	lastMixed     bool
	lastEdgeProbs [][]float64

	// persistent hot-path buffers (nn's buffer-ownership contract): the
	// concat output, per-node gradient slices, and the backward scratch.
	concatBuf  *tensor.Tensor
	splitBufs  []*tensor.Tensor
	stateGrads []*tensor.Tensor
}

// NewCell materializes a cell. candidates is the per-edge candidate set
// (identical for all edges); pass a single-op set to build a derived
// (post-search) cell.
func NewCell(name string, rng *rand.Rand, spec CellSpec, candidates []OpKind) *Cell {
	if spec.Nodes < 1 {
		panic("nas: cell needs at least one intermediate node")
	}
	pre0Stride := 1
	if spec.PrevReduction {
		pre0Stride = 2 // s0 comes from two cells back; match s1's resolution
	}
	c := &Cell{
		Spec: spec,
		pre0: nn.NewReLUConvBN(name+".pre0", rng, spec.CPrevPrev, spec.C, 1, pre0Stride),
		pre1: nn.NewReLUConvBN(name+".pre1", rng, spec.CPrev, spec.C, 1, 1),
	}
	edge := 0
	for i := 0; i < spec.Nodes; i++ {
		for j := 0; j < 2+i; j++ {
			stride := 1
			if spec.Reduction && j < 2 {
				stride = 2 // only edges from the cell inputs reduce
			}
			c.Edges = append(c.Edges,
				newMixedOp(fmt.Sprintf("%s.e%d", name, edge), rng, candidates, spec.C, stride))
			edge++
		}
	}
	return c
}

// OutChannels returns the channel count of the cell output.
func (c *Cell) OutChannels() int { return c.Spec.Nodes * c.Spec.C }

// Params returns every parameter in the cell (all candidates). The returned
// slice is cached and must not be mutated.
func (c *Cell) Params() []*nn.Param {
	if c.params == nil {
		c.params = c.appendParams(nil)
	}
	return c.params
}

func (c *Cell) appendParams(ps []*nn.Param) []*nn.Param {
	ps = append(ps, c.pre0.Params()...)
	ps = append(ps, c.pre1.Params()...)
	for _, e := range c.Edges {
		ps = append(ps, e.Params()...)
	}
	return ps
}

// SampledParams returns the preprocessing parameters plus only the
// parameters of the gated candidate on each edge — the sub-model payload.
func (c *Cell) SampledParams(gates []int) []*nn.Param {
	return c.AppendSampledParams(nil, gates)
}

// AppendSampledParams appends the sampled sub-model's parameters to ps and
// returns it — the no-alloc form of SampledParams for callers that own a
// reusable buffer.
func (c *Cell) AppendSampledParams(ps []*nn.Param, gates []int) []*nn.Param {
	ps = append(ps, c.pre0.Params()...)
	ps = append(ps, c.pre1.Params()...)
	for e, g := range gates {
		ps = append(ps, c.Edges[e].Op(g).Params()...)
	}
	return ps
}

// BatchNorms returns the cell's batch-norm layers in structural order
// (pre0, pre1, then each edge's candidates in order).
func (c *Cell) BatchNorms() []*nn.BatchNorm2D {
	bns := nn.CollectBatchNorms(c.pre0, c.pre1)
	for _, e := range c.Edges {
		bns = append(bns, nn.CollectBatchNorms(e.ops...)...)
	}
	return bns
}

// SetTraining toggles train/eval mode on every contained module.
func (c *Cell) SetTraining(training bool) {
	c.pre0.SetTraining(training)
	c.pre1.SetTraining(training)
	for _, e := range c.Edges {
		nn.SetTraining(training, e.ops...)
	}
}

// ForwardSampled runs the cell with one-hot gates (one op per edge).
func (c *Cell) ForwardSampled(s0, s1 *tensor.Tensor, gates []int) *tensor.Tensor {
	if len(gates) != len(c.Edges) {
		panic(fmt.Sprintf("nas: %d gates for %d edges", len(gates), len(c.Edges)))
	}
	c.lastMixed = false
	c.lastGates = append(c.lastGates[:0], gates...)
	states := append(c.lastStates[:0], c.pre0.Forward(s0), c.pre1.Forward(s1))
	edge := 0
	for i := 0; i < c.Spec.Nodes; i++ {
		var node *tensor.Tensor
		for j := 0; j < 2+i; j++ {
			out := c.Edges[edge].ForwardSampled(states[j], gates[edge])
			if node == nil {
				node = out
			} else {
				node.AddInPlace(out)
			}
			edge++
		}
		states = append(states, node)
	}
	c.lastStates = states
	return c.concatStates(states[2:])
}

// ForwardMixed runs the cell with all candidates blended by edgeProbs
// (per-edge probability vectors).
func (c *Cell) ForwardMixed(s0, s1 *tensor.Tensor, edgeProbs [][]float64) *tensor.Tensor {
	if len(edgeProbs) != len(c.Edges) {
		panic(fmt.Sprintf("nas: %d prob rows for %d edges", len(edgeProbs), len(c.Edges)))
	}
	c.lastMixed = true
	c.lastEdgeProbs = edgeProbs
	states := append(c.lastStates[:0], c.pre0.Forward(s0), c.pre1.Forward(s1))
	edge := 0
	for i := 0; i < c.Spec.Nodes; i++ {
		var node *tensor.Tensor
		for j := 0; j < 2+i; j++ {
			out := c.Edges[edge].ForwardMixed(states[j], edgeProbs[edge])
			if node == nil {
				node = out
			} else {
				node.AddInPlace(out)
			}
			edge++
		}
		states = append(states, node)
	}
	c.lastStates = states
	return c.concatStates(states[2:])
}

// Backward back-propagates the cell. It returns gradients for (s0, s1) and,
// after a mixed forward, the per-edge dL/d(probs) rows (nil after sampled).
func (c *Cell) Backward(grad *tensor.Tensor) (gs0, gs1 *tensor.Tensor, dProbs [][]float64) {
	nodeGrads := c.splitGrad(grad)
	// stateGrads[j] accumulates dL/d(states[j]).
	if cap(c.stateGrads) < 2+c.Spec.Nodes {
		c.stateGrads = make([]*tensor.Tensor, 2+c.Spec.Nodes)
	}
	stateGrads := c.stateGrads[:2+c.Spec.Nodes]
	stateGrads[0], stateGrads[1] = nil, nil
	for i := 0; i < c.Spec.Nodes; i++ {
		stateGrads[2+i] = nodeGrads[i]
	}
	if c.lastMixed {
		dProbs = make([][]float64, len(c.Edges))
	}
	// Walk nodes in reverse; edge indices for node i are contiguous.
	edgeEnd := len(c.Edges)
	for i := c.Spec.Nodes - 1; i >= 0; i-- {
		edgeStart := edgeEnd - (2 + i)
		ng := stateGrads[2+i]
		for j := 2 + i - 1; j >= 0; j-- {
			e := edgeStart + j
			var gin *tensor.Tensor
			if c.lastMixed {
				var dp []float64
				gin, dp = c.Edges[e].BackwardMixed(ng)
				dProbs[e] = dp
			} else {
				gin = c.Edges[e].BackwardSampled(ng)
			}
			if stateGrads[j] == nil {
				stateGrads[j] = gin
			} else {
				stateGrads[j].AddInPlace(gin)
			}
		}
		edgeEnd = edgeStart
	}
	if stateGrads[0] == nil {
		stateGrads[0] = tensor.New(c.lastStates[0].Shape()...)
	}
	if stateGrads[1] == nil {
		stateGrads[1] = tensor.New(c.lastStates[1].Shape()...)
	}
	gs0 = c.pre0.Backward(stateGrads[0])
	gs1 = c.pre1.Backward(stateGrads[1])
	return gs0, gs1, dProbs
}

// concatStates concatenates the node outputs into the cell's persistent
// concat buffer (overwritten by the next forward).
func (c *Cell) concatStates(ts []*tensor.Tensor) *tensor.Tensor {
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	totalC := 0
	for _, t := range ts {
		totalC += t.Dim(1)
	}
	if c.concatBuf == nil || !c.concatBuf.ShapeIs(n, totalC, h, w) {
		c.concatBuf = tensor.New(n, totalC, h, w)
	}
	concatChannelsInto(c.concatBuf, ts)
	return c.concatBuf
}

// splitGrad splits the concat gradient into per-node slices held in the
// cell's persistent split buffers (overwritten by the next backward).
func (c *Cell) splitGrad(grad *tensor.Tensor) []*tensor.Tensor {
	if cap(c.splitBufs) < c.Spec.Nodes {
		c.splitBufs = make([]*tensor.Tensor, c.Spec.Nodes)
	}
	c.splitBufs = c.splitBufs[:c.Spec.Nodes]
	n, h, w := grad.Dim(0), grad.Dim(2), grad.Dim(3)
	for p := range c.splitBufs {
		if c.splitBufs[p] == nil || !c.splitBufs[p].ShapeIs(n, c.Spec.C, h, w) {
			c.splitBufs[p] = tensor.New(n, c.Spec.C, h, w)
		}
	}
	splitChannelsInto(c.splitBufs, grad, c.Spec.Nodes, c.Spec.C)
	return c.splitBufs
}

// concatChannels concatenates [N,C,H,W] tensors along the channel axis into
// a new tensor.
func concatChannels(ts []*tensor.Tensor) *tensor.Tensor {
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	totalC := 0
	for _, t := range ts {
		totalC += t.Dim(1)
	}
	out := tensor.New(n, totalC, h, w)
	concatChannelsInto(out, ts)
	return out
}

// concatChannelsInto concatenates ts along the channel axis into out, which
// must already have the combined shape.
func concatChannelsInto(out *tensor.Tensor, ts []*tensor.Tensor) {
	n, h, w := ts[0].Dim(0), ts[0].Dim(2), ts[0].Dim(3)
	totalC := out.Dim(1)
	od := out.Data()
	cOff := 0
	for _, t := range ts {
		c := t.Dim(1)
		td := t.Data()
		for b := 0; b < n; b++ {
			srcBase := b * c * h * w
			dstBase := (b*totalC + cOff) * h * w
			copy(od[dstBase:dstBase+c*h*w], td[srcBase:srcBase+c*h*w])
		}
		cOff += c
	}
}

// splitChannels splits an [N, parts*c, H, W] tensor into parts new tensors
// of c channels each (inverse of concatChannels).
func splitChannels(t *tensor.Tensor, parts, c int) []*tensor.Tensor {
	n, h, w := t.Dim(0), t.Dim(2), t.Dim(3)
	out := make([]*tensor.Tensor, parts)
	for p := range out {
		out[p] = tensor.New(n, c, h, w)
	}
	splitChannelsInto(out, t, parts, c)
	return out
}

// splitChannelsInto splits t into the pre-shaped tensors in out.
func splitChannelsInto(out []*tensor.Tensor, t *tensor.Tensor, parts, c int) {
	n, totalC, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	if totalC != parts*c {
		panic(fmt.Sprintf("nas: cannot split %d channels into %d x %d", totalC, parts, c))
	}
	td := t.Data()
	for p := 0; p < parts; p++ {
		sd := out[p].Data()
		for b := 0; b < n; b++ {
			srcBase := (b*totalC + p*c) * h * w
			dstBase := b * c * h * w
			copy(sd[dstBase:dstBase+c*h*w], td[srcBase:srcBase+c*h*w])
		}
	}
}
