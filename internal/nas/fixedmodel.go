package nas

import (
	"math/rand"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// FixedModel is a supernet frozen to one architecture: the discrete model a
// genotype induces. It is what phase P3 retrains from scratch and what the
// federated substrate's Model interface consumes.
//
// Only the gated candidate is materialized per edge, so the parameter count
// matches nas.DerivedParamCount exactly.
type FixedModel struct {
	Net      *Supernet
	G        Gates
	Genotype Genotype

	// ForwardBatch scratch: the packed input batch and the per-slot logits
	// rows, reused across dispatches so steady-state serving allocates
	// nothing per batch (see forwardbatch.go).
	batchIn  *tensor.Tensor
	batchOut []*tensor.Tensor
}

// NewFixedModel materializes a fresh (re-initialized) discrete model for a
// genotype under cfg. Internally it builds per-edge single-candidate cells.
func NewFixedModel(rng *rand.Rand, cfg Config, g Genotype) (*FixedModel, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Nodes != cfg.Nodes {
		cfg.Nodes = g.Nodes
	}
	// Build a supernet whose candidate set per edge is exactly the genotype
	// op. NewSupernet takes one candidate list for all edges, so we
	// materialize with the full candidate set replaced by a one-op set per
	// edge via a custom constructor path: reuse NewCell directly.
	net, err := newSingleOpNet(rng, cfg, g)
	if err != nil {
		return nil, err
	}
	gates := Gates{
		Normal: make([]int, NumEdges(cfg.Nodes)),
		Reduce: make([]int, NumEdges(cfg.Nodes)),
	}
	return &FixedModel{Net: net, G: gates, Genotype: g}, nil
}

// Forward implements the federated Model contract.
func (m *FixedModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.Net.ForwardSampled(x, m.G)
}

// Backward implements the federated Model contract.
func (m *FixedModel) Backward(grad *tensor.Tensor) { m.Net.BackwardSampled(grad) }

// Params implements the federated Model contract.
func (m *FixedModel) Params() []*nn.Param { return m.Net.Params() }

// SetTraining implements the federated Model contract.
func (m *FixedModel) SetTraining(training bool) { m.Net.SetTraining(training) }

// BatchNorms exposes the model's batch-norm layers in structural order,
// letting the parallel federated engine sync running statistics between
// replicas (see fed package).
func (m *FixedModel) BatchNorms() []*nn.BatchNorm2D { return m.Net.BatchNorms() }

// ParamCount returns the number of scalar parameters.
func (m *FixedModel) ParamCount() int { return nn.ParamCount(m.Net.Params()) }

// newSingleOpNet assembles a supernet whose per-edge candidate list holds only
// the genotype's op, preserving cell wiring and channel bookkeeping.
func newSingleOpNet(rng *rand.Rand, cfg Config, g Genotype) (*Supernet, error) {
	// Validate via a throwaway config carrying a non-empty candidate set.
	probe := cfg
	probe.Candidates = []OpKind{OpIdentity}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	s := &Supernet{Cfg: cfg, gap: nn.NewGlobalAvgPool(), reduction: cfg.ReductionLayers()}
	s.stem = nn.NewSequential(
		nn.NewConv2D("stem.conv", rng, cfg.InChannels, cfg.C, 3, nn.ConvOpts{Pad: 1}),
		nn.NewBatchNorm2D("stem.bn", cfg.C),
	)
	cPrevPrev, cPrev, cCur := cfg.C, cfg.C, cfg.C
	prevReduction := false
	for l := 0; l < cfg.Layers; l++ {
		reduction := s.reduction[l]
		if reduction {
			cCur *= 2
		}
		spec := CellSpec{
			Nodes:         cfg.Nodes,
			C:             cCur,
			CPrevPrev:     cPrevPrev,
			CPrev:         cPrev,
			Reduction:     reduction,
			PrevReduction: prevReduction,
		}
		ops := g.Normal
		if reduction {
			ops = g.Reduce
		}
		cell := newCellPerEdgeOps(l, rng, spec, ops)
		s.cells = append(s.cells, cell)
		cPrevPrev, cPrev = cPrev, cell.OutChannels()
		prevReduction = reduction
	}
	s.head = nn.NewLinear("head", rng, cPrev, cfg.NumClasses)
	return s, nil
}

// newCellPerEdgeOps builds a cell with exactly one candidate per edge.
func newCellPerEdgeOps(layer int, rng *rand.Rand, spec CellSpec, ops []OpKind) *Cell {
	// Reuse NewCell with a dummy candidate then replace each edge's op set.
	c := NewCell(cellName(layer), rng, spec, []OpKind{OpIdentity})
	edge := 0
	for i := 0; i < spec.Nodes; i++ {
		for j := 0; j < 2+i; j++ {
			stride := 1
			if spec.Reduction && j < 2 {
				stride = 2
			}
			c.Edges[edge] = newMixedOp(
				cellName(layer)+edgeName(edge), rng, []OpKind{ops[edge]}, spec.C, stride)
			edge++
		}
	}
	return c
}

func cellName(layer int) string { return "cell" + itoa(layer) }

func edgeName(edge int) string { return ".e" + itoa(edge) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
