package nas

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/wire"
)

// Config sizes a supernet (or a derived model when Candidates is one op per
// edge position).
type Config struct {
	InChannels int // image channels
	NumClasses int
	C          int // initial cell channels
	Layers     int // number of stacked cells
	Nodes      int // intermediate nodes per cell (b)
	Candidates []OpKind
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.InChannels <= 0:
		return fmt.Errorf("nas: InChannels %d must be positive", c.InChannels)
	case c.NumClasses < 2:
		return fmt.Errorf("nas: NumClasses %d must be >= 2", c.NumClasses)
	case c.C <= 0:
		return fmt.Errorf("nas: C %d must be positive", c.C)
	case c.Layers <= 0:
		return fmt.Errorf("nas: Layers %d must be positive", c.Layers)
	case c.Nodes <= 0:
		return fmt.Errorf("nas: Nodes %d must be positive", c.Nodes)
	case len(c.Candidates) == 0:
		return fmt.Errorf("nas: empty candidate set")
	}
	return nil
}

// ReductionLayers returns the cell indices that reduce spatial resolution
// (the DARTS 1/3 and 2/3 positions; for very shallow stacks, the midpoint).
func (c Config) ReductionLayers() map[int]bool {
	red := make(map[int]bool)
	if c.Layers >= 3 {
		red[c.Layers/3] = true
		red[2*c.Layers/3] = true
	} else if c.Layers == 2 {
		red[1] = true
	}
	return red
}

// Gates is a complete one-hot architecture choice: one candidate index per
// edge for the normal-cell α and one for the reduction-cell α. All normal
// cells share Normal; all reduction cells share Reduce (as in DARTS).
type Gates struct {
	Normal []int
	Reduce []int
}

// CloneGates deep-copies g.
func CloneGates(g Gates) Gates {
	return Gates{
		Normal: append([]int(nil), g.Normal...),
		Reduce: append([]int(nil), g.Reduce...),
	}
}

// Supernet is the full search network: a stem, stacked cells, global average
// pooling and a linear classifier.
type Supernet struct {
	Cfg   Config
	stem  *nn.Sequential
	cells []*Cell
	gap   *nn.GlobalAvgPool
	head  *nn.Linear

	reduction map[int]bool

	// Cached enumerations (the structure is fixed at construction) and
	// hot-path scratch. sizeScratch backs SubModelBytes; cellGradBufs /
	// stemGradBuf are the persistent inter-cell gradient accumulators of
	// backwardCells (see the buffer-ownership contract in package nn).
	params       []*nn.Param
	sharedParams []*nn.Param
	sizeScratch  []*nn.Param
	elemScratch  []int
	cellGrads    []*tensor.Tensor
	cellGradBufs []*tensor.Tensor
	stemGradBuf  *tensor.Tensor
}

// NewSupernet materializes the network described by cfg.
func NewSupernet(rng *rand.Rand, cfg Config) (*Supernet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Supernet{Cfg: cfg, gap: nn.NewGlobalAvgPool(), reduction: cfg.ReductionLayers()}
	s.stem = nn.NewSequential(
		nn.NewConv2D("stem.conv", rng, cfg.InChannels, cfg.C, 3, nn.ConvOpts{Pad: 1}),
		nn.NewBatchNorm2D("stem.bn", cfg.C),
	)
	cPrevPrev, cPrev, cCur := cfg.C, cfg.C, cfg.C
	prevReduction := false
	for l := 0; l < cfg.Layers; l++ {
		reduction := s.reduction[l]
		if reduction {
			cCur *= 2
		}
		spec := CellSpec{
			Nodes:         cfg.Nodes,
			C:             cCur,
			CPrevPrev:     cPrevPrev,
			CPrev:         cPrev,
			Reduction:     reduction,
			PrevReduction: prevReduction,
		}
		cell := NewCell(fmt.Sprintf("cell%d", l), rng, spec, cfg.Candidates)
		s.cells = append(s.cells, cell)
		cPrevPrev, cPrev = cPrev, cell.OutChannels()
		prevReduction = reduction
	}
	s.head = nn.NewLinear("head", rng, cPrev, cfg.NumClasses)
	return s, nil
}

// ArchSpace returns (normal-cell edge count, reduction-cell edge count): the
// dimensions of the architecture parameter α.
func (s *Supernet) ArchSpace() (normalEdges, reduceEdges int) {
	n := NumEdges(s.Cfg.Nodes)
	return n, n
}

// NumCandidates returns the per-edge candidate count.
func (s *Supernet) NumCandidates() int { return len(s.Cfg.Candidates) }

// Cells returns the stacked cells in order.
func (s *Supernet) Cells() []*Cell { return s.cells }

// Params returns every learnable parameter (full supernet θ). The returned
// slice is cached (the structure is fixed at construction) and must not be
// mutated.
func (s *Supernet) Params() []*nn.Param {
	if s.params == nil {
		ps := append([]*nn.Param(nil), s.stem.Params()...)
		for _, c := range s.cells {
			ps = append(ps, c.Params()...)
		}
		s.params = append(ps, s.head.Params()...)
	}
	return s.params
}

// HeadParams returns the classifier head's parameters — the trailing
// entries of Params()'s canonical order. Personalized search swaps these
// per client (federated body, local head) and needs both the count and
// the guarantee that they sit at the tail.
func (s *Supernet) HeadParams() []*nn.Param { return s.head.Params() }

// SharedParams returns the parameters every sub-model carries regardless of
// gates: stem, cell preprocessing, classifier head. The returned slice is
// cached and must not be mutated.
func (s *Supernet) SharedParams() []*nn.Param {
	if s.sharedParams == nil {
		ps := append([]*nn.Param(nil), s.stem.Params()...)
		for _, c := range s.cells {
			ps = append(ps, c.pre0.Params()...)
			ps = append(ps, c.pre1.Params()...)
		}
		s.sharedParams = append(ps, s.head.Params()...)
	}
	return s.sharedParams
}

// SampledParams returns the parameter set of the sub-model selected by g:
// shared parameters plus the gated candidate on every edge of every cell.
func (s *Supernet) SampledParams(g Gates) []*nn.Param {
	return s.AppendSampledParams(nil, g)
}

// AppendSampledParams appends the sampled sub-model's parameters to ps and
// returns it — the no-alloc form of SampledParams for callers that own a
// reusable buffer.
func (s *Supernet) AppendSampledParams(ps []*nn.Param, g Gates) []*nn.Param {
	ps = append(ps, s.stem.Params()...)
	for _, c := range s.cells {
		gates := g.Normal
		if c.Spec.Reduction {
			gates = g.Reduce
		}
		ps = c.AppendSampledParams(ps, gates)
	}
	return append(ps, s.head.Params()...)
}

// SubModelBytes returns the float32 wire size of the sub-model selected by
// g — what the server would actually transmit to a participant.
func (s *Supernet) SubModelBytes(g Gates) int64 {
	s.sizeScratch = s.AppendSampledParams(s.sizeScratch[:0], g)
	return nn.ParamBytes(s.sizeScratch)
}

// SupernetBytes returns the float32 wire size of the entire supernet — what
// FedNAS-style methods transmit every round.
func (s *Supernet) SupernetBytes() int64 {
	return nn.ParamBytes(s.Params())
}

// SubModelWireBytes returns the measured encoded size of the sub-model
// selected by g under the given wire mode — the dense frame size the
// rpcfed codec would put on a TCP connection (Sparse is value-dependent,
// so it is sized at its lossless dense-f64 upper bound). This is the
// quantity transmission policies rank by.
func (s *Supernet) SubModelWireBytes(g Gates, m wire.Mode) int64 {
	s.sizeScratch = s.AppendSampledParams(s.sizeScratch[:0], g)
	s.elemScratch = s.elemScratch[:0]
	for _, p := range s.sizeScratch {
		s.elemScratch = append(s.elemScratch, p.Value.Size())
	}
	return wire.DenseGroupBytes(m, s.elemScratch)
}

// SupernetWireBytes returns the measured encoded size of the full
// supernet under the given wire mode (the FedNAS-style full-model
// transmission cost).
func (s *Supernet) SupernetWireBytes(m wire.Mode) int64 {
	params := s.Params()
	counts := make([]int, len(params))
	for i, p := range params {
		counts[i] = p.Value.Size()
	}
	return wire.DenseGroupBytes(m, counts)
}

// BatchNorms returns every batch-norm layer in deterministic structural
// order (stem, then each cell, head has none). Structurally identical
// supernets yield index-aligned lists, which the parallel round engine
// relies on to replay replica batch statistics onto the primary network.
func (s *Supernet) BatchNorms() []*nn.BatchNorm2D {
	bns := nn.CollectBatchNorms(s.stem)
	for _, c := range s.cells {
		bns = append(bns, c.BatchNorms()...)
	}
	return bns
}

// SetTraining toggles train/eval mode across the whole network.
func (s *Supernet) SetTraining(training bool) {
	s.stem.SetTraining(training)
	for _, c := range s.cells {
		c.SetTraining(training)
	}
}

// ForwardSampled runs the network pruned by gates g.
func (s *Supernet) ForwardSampled(x *tensor.Tensor, g Gates) *tensor.Tensor {
	h := s.stem.Forward(x)
	s0, s1 := h, h
	for _, c := range s.cells {
		gates := g.Normal
		if c.Spec.Reduction {
			gates = g.Reduce
		}
		out := c.ForwardSampled(s0, s1, gates)
		s0, s1 = s1, out
	}
	return s.head.Forward(s.gap.Forward(s1))
}

// BackwardSampled back-propagates a sampled forward, accumulating parameter
// gradients for the active sub-model.
func (s *Supernet) BackwardSampled(gradLogits *tensor.Tensor) {
	grad := s.gap.Backward(s.head.Backward(gradLogits))
	s.backwardCells(grad, nil)
}

// ForwardMixed runs the network with probability-blended edges (baselines).
// probsNormal/probsReduce are per-edge rows over candidates.
func (s *Supernet) ForwardMixed(x *tensor.Tensor, probsNormal, probsReduce [][]float64) *tensor.Tensor {
	h := s.stem.Forward(x)
	s0, s1 := h, h
	for _, c := range s.cells {
		probs := probsNormal
		if c.Spec.Reduction {
			probs = probsReduce
		}
		out := c.ForwardMixed(s0, s1, probs)
		s0, s1 = s1, out
	}
	return s.head.Forward(s.gap.Forward(s1))
}

// MixedGrads carries dL/d(probs) accumulated over cells sharing each α.
type MixedGrads struct {
	Normal [][]float64
	Reduce [][]float64
}

// BackwardMixed back-propagates a mixed forward, accumulating θ gradients
// and returning the per-edge probability sensitivities for α updates.
func (s *Supernet) BackwardMixed(gradLogits *tensor.Tensor) MixedGrads {
	grad := s.gap.Backward(s.head.Backward(gradLogits))
	mg := MixedGrads{}
	s.backwardCells(grad, &mg)
	return mg
}

// backwardCells walks the cell stack in reverse, handling the two-input
// skip wiring (cell l receives cell l-1 and cell l-2 outputs). Inter-cell
// gradient accumulation copies into per-slot persistent buffers instead of
// cloning: a cell's backward outputs (gs0/gs1) live in buffers the next
// cell's backward overwrites, so they must be captured, but the capture
// target's shape never changes between passes.
func (s *Supernet) backwardCells(grad *tensor.Tensor, mg *MixedGrads) {
	n := len(s.cells)
	if cap(s.cellGrads) < n {
		s.cellGrads = make([]*tensor.Tensor, n)
	}
	if s.cellGradBufs == nil {
		s.cellGradBufs = make([]*tensor.Tensor, n)
	}
	// gradOut[i] is dL/d(output of cell i); gs0 contributions flow to i-2.
	gradOut := s.cellGrads[:n]
	for i := range gradOut {
		gradOut[i] = nil
	}
	gradOut[n-1] = grad
	addCell := func(slot int, g *tensor.Tensor) {
		if gradOut[slot] != nil {
			gradOut[slot].AddInPlace(g)
			return
		}
		buf := s.cellGradBufs[slot]
		if buf == nil || !buf.ShapeIs(g.Dim(0), g.Dim(1), g.Dim(2), g.Dim(3)) {
			buf = tensor.New(g.Shape()...)
			s.cellGradBufs[slot] = buf
		}
		buf.CopyFrom(g)
		gradOut[slot] = buf
	}
	var gradStem *tensor.Tensor
	addStem := func(g *tensor.Tensor) {
		if gradStem != nil {
			gradStem.AddInPlace(g)
			return
		}
		if s.stemGradBuf == nil || !s.stemGradBuf.ShapeIs(g.Dim(0), g.Dim(1), g.Dim(2), g.Dim(3)) {
			s.stemGradBuf = tensor.New(g.Shape()...)
		}
		s.stemGradBuf.CopyFrom(g)
		gradStem = s.stemGradBuf
	}
	for i := n - 1; i >= 0; i-- {
		if gradOut[i] == nil {
			// Cell output unused downstream (possible only for n==1 handled above).
			continue
		}
		gs0, gs1, dProbs := s.cells[i].Backward(gradOut[i])
		if mg != nil && dProbs != nil {
			if s.cells[i].Spec.Reduction {
				mg.Reduce = addProbRows(mg.Reduce, dProbs)
			} else {
				mg.Normal = addProbRows(mg.Normal, dProbs)
			}
		}
		// s1 input of cell i is output of cell i-1 (or the stem).
		if i-1 >= 0 {
			addCell(i-1, gs1)
		} else {
			addStem(gs1)
		}
		// s0 input of cell i is output of cell i-2 (or the stem).
		if i-2 >= 0 {
			addCell(i-2, gs0)
		} else {
			addStem(gs0)
		}
	}
	s.stem.Backward(gradStem)
}

func addProbRows(acc, rows [][]float64) [][]float64 {
	if acc == nil {
		acc = make([][]float64, len(rows))
		for i := range rows {
			acc[i] = append([]float64(nil), rows[i]...)
		}
		return acc
	}
	for i := range rows {
		for j := range rows[i] {
			acc[i][j] += rows[i][j]
		}
	}
	return acc
}
