package baselines

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/data"
)

// The worker-count determinism contract extends to the federated baselines:
// the same seed must yield identical search curves, genotypes, and virtual
// clocks whether participants run sequentially or across a worker pool.

func assertCurvesEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] { // bit-identical, no tolerance
			t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestFedNASDeterministicAcrossWorkers(t *testing.T) {
	ds := testDataset(t)
	part, err := data.IIDPartition(ds.NumTrain(), 3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFedNASConfig(testNet(), 3)
	cfg.Rounds = 6
	cfg.BatchSize = 8

	cfg.Workers = 1
	seq, err := FedNAS(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := FedNAS(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if seq.Genotype.String() != par.Genotype.String() {
		t.Fatalf("genotype diverges: %s vs %s", seq.Genotype, par.Genotype)
	}
	assertCurvesEqual(t, "search curve", seq.Curve.Values(), par.Curve.Values())
	if seq.SearchSeconds != par.SearchSeconds {
		t.Fatalf("search seconds %v vs %v", seq.SearchSeconds, par.SearchSeconds)
	}
}

func TestEvoFedNASDeterministicAcrossWorkers(t *testing.T) {
	ds := testDataset(t)
	part, err := data.IIDPartition(ds.NumTrain(), 5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// K=5 > Population=4 exercises the same-candidate-twice-per-round EMA
	// ordering that the merge phase must preserve.
	cfg := DefaultEvoConfig(testNet(), 5)
	cfg.Rounds = 8
	cfg.BatchSize = 8
	cfg.Population = 4
	cfg.GenerationEvery = 3

	cfg.Workers = 1
	seq, err := EvoFedNAS(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := EvoFedNAS(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if seq.Genotype.String() != par.Genotype.String() {
		t.Fatalf("genotype diverges: %s vs %s", seq.Genotype, par.Genotype)
	}
	assertCurvesEqual(t, "search curve", seq.Curve.Values(), par.Curve.Values())
	if seq.SearchSeconds != par.SearchSeconds {
		t.Fatalf("search seconds %v vs %v", seq.SearchSeconds, par.SearchSeconds)
	}
	if seq.PayloadBytesPerRound != par.PayloadBytesPerRound {
		t.Fatalf("payload %d vs %d", seq.PayloadBytesPerRound, par.PayloadBytesPerRound)
	}
}
