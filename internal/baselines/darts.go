package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/data"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
)

// NASResult is the common outcome of a search baseline.
type NASResult struct {
	Method   string
	Genotype nas.Genotype
	// Curve is the training-accuracy series over search steps/rounds.
	Curve metrics.Curve
	// SearchSeconds is the virtual time of the whole search.
	SearchSeconds float64
	// PayloadBytesPerRound is the per-participant communication payload
	// (0 for centralized methods).
	PayloadBytesPerRound int64
}

// DARTSConfig configures the centralized DARTS baseline.
type DARTSConfig struct {
	Net       nas.Config
	Steps     int
	BatchSize int

	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	AlphaLR float64
	AlphaWD float64

	// SecondOrder enables the unrolled (2nd-order) architecture gradient.
	SecondOrder bool
	// Xi is the virtual step size of the unrolled gradient (defaults to
	// ThetaLR, as in the DARTS paper).
	Xi float64

	Seed int64
}

// DefaultDARTSConfig mirrors the paper's Table I centralized settings at
// substrate scale.
func DefaultDARTSConfig(net nas.Config) DARTSConfig {
	return DARTSConfig{
		Net: net, Steps: 60, BatchSize: 16,
		ThetaLR: 0.025, ThetaMomentum: 0.9, ThetaWD: 3e-4, ThetaClip: 5,
		AlphaLR: 0.3, AlphaWD: 1e-4,
		Seed: 1,
	}
}

// DARTS runs centralized differentiable architecture search: the supernet's
// mixed (softmax-blended) forward is differentiated w.r.t. both θ (on the
// training half) and α (on the validation half).
func DARTS(ds *data.Dataset, cfg DARTSConfig) (NASResult, error) {
	if cfg.Steps <= 0 || cfg.BatchSize <= 0 {
		return NASResult{}, fmt.Errorf("baselines: invalid DARTS config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Net)
	if err != nil {
		return NASResult{}, err
	}
	net.SetTraining(true)
	nE, rE := net.ArchSpace()
	numCand := net.NumCandidates()
	alphaN := zeroRows(nE, numCand)
	alphaR := zeroRows(rE, numCand)

	trainB, validB, err := splitBatchers(ds, rng)
	if err != nil {
		return NASResult{}, err
	}
	opt := nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip)
	params := net.Params()
	xi := cfg.Xi
	if xi == 0 {
		xi = cfg.ThetaLR
	}
	method := "darts-1st"
	if cfg.SecondOrder {
		method = "darts-2nd"
	}
	res := NASResult{Method: method}
	paramCount := nn.ParamCount(params)

	mixedLoss := func(batcher *data.Batcher) (nn.LossResult, error) {
		batch := batcher.Next(cfg.BatchSize)
		x, y := ds.Gather(batch)
		pn := controller.SoftmaxRows(alphaN)
		pr := controller.SoftmaxRows(alphaR)
		logits := net.ForwardMixed(x, pn, pr)
		return nn.CrossEntropy(logits, y)
	}
	// alphaGradOn computes dL/dα on one batch at the current θ, returning
	// the chained softmax gradient rows. θ gradients are accumulated as a
	// side effect (callers zero/ignore as needed).
	alphaGradOn := func(batcher *data.Batcher) ([][]float64, [][]float64, error) {
		nn.ZeroGrads(params)
		lossRes, err := mixedLoss(batcher)
		if err != nil {
			return nil, nil, err
		}
		mg := net.BackwardMixed(lossRes.GradLogits)
		pn := controller.SoftmaxRows(alphaN)
		pr := controller.SoftmaxRows(alphaR)
		return controller.ChainSoftmax(mg.Normal, pn), controller.ChainSoftmax(mg.Reduce, pr), nil
	}

	for step := 0; step < cfg.Steps; step++ {
		// --- α update ---
		var gN, gR [][]float64
		if !cfg.SecondOrder {
			gN, gR, err = alphaGradOn(validB)
			if err != nil {
				return res, err
			}
		} else {
			gN, gR, err = secondOrderAlphaGrad(net, ds, alphaN, alphaR, trainB, validB, cfg, xi)
			if err != nil {
				return res, err
			}
		}
		applyAlphaStep(alphaN, gN, cfg.AlphaLR, cfg.AlphaWD)
		applyAlphaStep(alphaR, gR, cfg.AlphaLR, cfg.AlphaWD)

		// --- θ update on the training half ---
		nn.ZeroGrads(params)
		lossRes, err := mixedLoss(trainB)
		if err != nil {
			return res, err
		}
		net.BackwardMixed(lossRes.GradLogits)
		opt.Step(params)
		res.Curve.Add(step, lossRes.Accuracy)
		// Centralized virtual time: the whole supernet runs every step.
		res.SearchSeconds += 1e-5 * float64(paramCount) * float64(cfg.BatchSize)
	}
	res.Genotype = nas.DeriveGenotype(
		controller.SoftmaxRows(alphaN), controller.SoftmaxRows(alphaR),
		cfg.Net.Candidates, cfg.Net.Nodes)
	return res, nil
}

// secondOrderAlphaGrad implements DARTS' unrolled gradient with the
// finite-difference Hessian-vector approximation:
//
//	∇α ≈ ∇α L_val(w′) − (ξ/2ε)·(∇α L_train(w⁺) − ∇α L_train(w⁻))
//
// where w′ = w − ξ∇w L_train(w) and w± = w ± ε∇w′ L_val(w′).
func secondOrderAlphaGrad(net *nas.Supernet, ds *data.Dataset,
	alphaN, alphaR [][]float64, trainB, validB *data.Batcher,
	cfg DARTSConfig, xi float64) ([][]float64, [][]float64, error) {

	params := net.Params()
	snapshot := nn.CloneParamValues(params)
	pn := controller.SoftmaxRows(alphaN)
	pr := controller.SoftmaxRows(alphaR)

	run := func(batcher *data.Batcher) (nas.MixedGrads, error) {
		batch := batcher.Next(cfg.BatchSize)
		x, y := ds.Gather(batch)
		nn.ZeroGrads(params)
		lossRes, err := nn.CrossEntropy(net.ForwardMixed(x, pn, pr), y)
		if err != nil {
			return nas.MixedGrads{}, err
		}
		return net.BackwardMixed(lossRes.GradLogits), nil
	}

	// Step 1: ∇w L_train at w, build w′.
	if _, err := run(trainB); err != nil {
		return nil, nil, err
	}
	trainGrads := nn.CloneParamGrads(params)
	for i, p := range params {
		p.Value.AXPY(-xi, trainGrads[i])
	}

	// Step 2: at w′, get ∇α L_val and v = ∇w′ L_val.
	mgVal, err := run(validB)
	if err != nil {
		return nil, nil, err
	}
	v := nn.CloneParamGrads(params)
	gN := controller.ChainSoftmax(mgVal.Normal, pn)
	gR := controller.ChainSoftmax(mgVal.Reduce, pr)

	// Step 3: finite-difference Hessian-vector term at w ± εv.
	vNorm := 0.0
	for _, g := range v {
		n := g.L2Norm()
		vNorm += n * n
	}
	vNorm = math.Sqrt(vNorm)
	if err := nn.RestoreParamValues(params, snapshot); err != nil {
		return nil, nil, err
	}
	if vNorm > 1e-12 {
		eps := 0.01 / vNorm
		shift := func(sign float64) error {
			if err := nn.RestoreParamValues(params, snapshot); err != nil {
				return err
			}
			for i, p := range params {
				p.Value.AXPY(sign*eps, v[i])
			}
			return nil
		}
		if err := shift(+1); err != nil {
			return nil, nil, err
		}
		mgPlus, err := run(trainB)
		if err != nil {
			return nil, nil, err
		}
		if err := shift(-1); err != nil {
			return nil, nil, err
		}
		mgMinus, err := run(trainB)
		if err != nil {
			return nil, nil, err
		}
		gNPlus := controller.ChainSoftmax(mgPlus.Normal, pn)
		gRPlus := controller.ChainSoftmax(mgPlus.Reduce, pr)
		gNMinus := controller.ChainSoftmax(mgMinus.Normal, pn)
		gRMinus := controller.ChainSoftmax(mgMinus.Reduce, pr)
		scale := xi / (2 * eps)
		axpyRows(gN, -scale, subRowsNew(gNPlus, gNMinus))
		axpyRows(gR, -scale, subRowsNew(gRPlus, gRMinus))
		if err := nn.RestoreParamValues(params, snapshot); err != nil {
			return nil, nil, err
		}
	}
	return gN, gR, nil
}

// splitBatchers divides the training set into DARTS' train/valid halves.
func splitBatchers(ds *data.Dataset, rng *rand.Rand) (trainB, validB *data.Batcher, err error) {
	n := ds.NumTrain()
	perm := rng.Perm(n)
	half := n / 2
	trainB, err = data.NewBatcher(perm[:half], rng)
	if err != nil {
		return nil, nil, err
	}
	validB, err = data.NewBatcher(perm[half:], rng)
	if err != nil {
		return nil, nil, err
	}
	return trainB, validB, nil
}

// applyAlphaStep performs gradient DEscent on the loss with weight decay.
func applyAlphaStep(alpha, grad [][]float64, lr, wd float64) {
	for e := range alpha {
		for j := range alpha[e] {
			alpha[e][j] -= lr * (grad[e][j] + wd*alpha[e][j])
		}
	}
}

func zeroRows(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}

func axpyRows(dst [][]float64, a float64, src [][]float64) {
	for i := range dst {
		for j := range dst[i] {
			dst[i][j] += a * src[i][j]
		}
	}
}

func subRowsNew(a, b [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = make([]float64, len(a[i]))
		for j := range a[i] {
			out[i][j] = a[i][j] - b[i][j]
		}
	}
	return out
}
