// Package baselines implements every comparator the paper evaluates
// against, on the same substrate as the main method so the comparisons are
// fair (DESIGN.md §2–3):
//
//   - fixed hand-designed models trained with FedAvg (Tables III–IV's
//     "FedAvg", including the ResNet152-like big CNN)
//   - DARTS, first and second order (Table II, centralized gradient NAS)
//   - an ENAS-style centralized RL search (Table II)
//   - FedNAS: federated gradient NAS shipping the whole supernet (Tables
//     IV–V, Figs. 9–11)
//   - EvoFedNAS: federated evolutionary NAS, big and small variants
//     (Tables III–V)
package baselines

import (
	"math/rand"

	"fedrlnas/internal/fed"
	"fedrlnas/internal/nn"
)

// NewResNetLike builds the hand-designed "pre-defined model" stand-in for
// ResNet152 (Table IV's FedAvg* row): a deep residual CNN whose parameter
// count dwarfs the searched architectures by roughly the paper's ratio
// (58.2 M vs ~4 M there; proportionally scaled here).
func NewResNetLike(rng *rand.Rand, inC, classes int) *fed.SequentialModel {
	const c = 12
	mods := []nn.Module{
		nn.NewConv2D("stem.conv", rng, inC, c, 3, nn.ConvOpts{Pad: 1}),
		nn.NewBatchNorm2D("stem.bn", c),
		nn.NewReLU(),
	}
	for i := 0; i < 4; i++ {
		mods = append(mods, nn.NewBasicBlock("block"+itoa(i), rng, c), nn.NewReLU())
	}
	mods = append(mods,
		nn.NewGlobalAvgPool(),
		nn.NewLinear("head", rng, c, classes),
	)
	return &fed.SequentialModel{Net: nn.NewSequential(mods...)}
}

// NewSmallCNN builds a modest hand-designed CNN (the "pre-defined model"
// row of Table III, where a reasonable fixed model still loses to search).
func NewSmallCNN(rng *rand.Rand, inC, classes int) *fed.SequentialModel {
	const c = 8
	return &fed.SequentialModel{Net: nn.NewSequential(
		nn.NewConv2D("c1", rng, inC, c, 3, nn.ConvOpts{Pad: 1}),
		nn.NewBatchNorm2D("bn1", c),
		nn.NewReLU(),
		nn.NewConv2D("c2", rng, c, c, 3, nn.ConvOpts{Pad: 1, Stride: 2}),
		nn.NewBatchNorm2D("bn2", c),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewLinear("head", rng, c, classes),
	)}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
