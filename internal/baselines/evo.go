package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
	"fedrlnas/internal/tensor"
)

// EvoConfig configures the EvoFedNAS baseline (Zhu & Jin): a population of
// candidate architectures sharing one supernet's weights, trained by the
// participants and evolved on the server.
type EvoConfig struct {
	Net       nas.Config
	K         int
	Rounds    int
	BatchSize int

	// Population is the number of candidate genotypes.
	Population int
	// GenerationEvery is how many rounds pass between evolution steps.
	GenerationEvery int
	// MutationRate is the per-edge probability of resampling an op.
	MutationRate float64
	// FitnessDecay is the EMA factor of per-candidate fitness.
	FitnessDecay float64

	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	// Workers caps how many participants' local steps run concurrently;
	// 0 selects runtime.NumCPU(). Results are bit-identical at every
	// worker count.
	Workers int

	Seed int64
}

// DefaultEvoConfig returns substrate-scale EvoFedNAS settings.
func DefaultEvoConfig(net nas.Config, k int) EvoConfig {
	return EvoConfig{
		Net: net, K: k, Rounds: 60, BatchSize: 16,
		Population: 8, GenerationEvery: 10, MutationRate: 0.2, FitnessDecay: 0.5,
		ThetaLR: 0.025, ThetaMomentum: 0.9, ThetaWD: 3e-4, ThetaClip: 5,
		Seed: 1,
	}
}

// EvoVariant selects the paper's "big" vs "small" EvoFedNAS search spaces.
type EvoVariant int

// Variants.
const (
	// EvoBig searches the full candidate set on a wider supernet.
	EvoBig EvoVariant = iota + 1
	// EvoSmall searches a restricted, convolution-free candidate set —
	// cheap but weak, matching the paper's EvoFedNAS(small) row.
	EvoSmall
)

// ApplyVariant adapts a network config to the variant.
func (v EvoVariant) ApplyVariant(net nas.Config) nas.Config {
	switch v {
	case EvoBig:
		net.C *= 2
		net.Candidates = append([]nas.OpKind(nil), nas.AllOps...)
	case EvoSmall:
		net.Candidates = []nas.OpKind{
			nas.OpZero, nas.OpIdentity, nas.OpMaxPool3, nas.OpAvgPool3,
		}
	}
	return net
}

// String implements fmt.Stringer.
func (v EvoVariant) String() string {
	switch v {
	case EvoBig:
		return "evofednas-big"
	case EvoSmall:
		return "evofednas-small"
	default:
		return fmt.Sprintf("evo(%d)", int(v))
	}
}

type evoCandidate struct {
	gates   nas.Gates
	fitness float64
	seen    bool
}

// EvoFedNAS runs the evolutionary federated search: each round every
// participant trains one population member's sub-model on its shard (shared
// supernet weights, FedAvg-style gradient averaging); fitness is an EMA of
// training accuracy; every GenerationEvery rounds the weakest half of the
// population is replaced by mutated tournament winners.
func EvoFedNAS(ds *data.Dataset, part data.Partition, cfg EvoConfig) (NASResult, error) {
	if cfg.Rounds <= 0 || cfg.BatchSize <= 0 || cfg.Population < 2 {
		return NASResult{}, fmt.Errorf("baselines: invalid Evo config %+v", cfg)
	}
	parts, err := fed.BuildParticipants(ds, part, cfg.Seed+17)
	if err != nil {
		return NASResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Net)
	if err != nil {
		return NASResult{}, err
	}
	net.SetTraining(true)
	params := net.Params()
	opt := nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip)

	// Random initial population.
	nE, rE := net.ArchSpace()
	numCand := net.NumCandidates()
	pop := make([]*evoCandidate, cfg.Population)
	for i := range pop {
		pop[i] = &evoCandidate{gates: randomGates(rng, nE, rE, numCand)}
	}

	res := NASResult{Method: "evofednas"}
	var totalPayload, payloadCount int64

	pool := parallel.New(cfg.Workers)
	var reps []*supReplica
	var primaryBNs []*nn.BatchNorm2D
	if pool.Workers() > 1 {
		if reps, err = newSupReplicas(pool, len(parts), cfg.Seed+1, cfg.Net); err != nil {
			return res, err
		}
		primaryBNs = net.BatchNorms()
	}
	// evoOut is one participant's contribution, merged in index order (the
	// fitness EMA must fold in participant order — with K > Population the
	// same candidate trains twice in a round).
	type evoOut struct {
		grads   []*tensor.Tensor
		acc     float64
		payload int64
		seconds float64
		bn      [][]nn.BNStats
	}

	for round := 0; round < cfg.Rounds; round++ {
		nn.ZeroGrads(params)
		aggTheta := nn.CloneParamGrads(params) // zero-valued accumulators
		roundAcc := 0.0
		roundSeconds := 0.0
		if len(reps) > 0 {
			global := nn.CloneParamValues(params)
			outs := make([]evoOut, len(parts))
			err := pool.Run(len(parts), func(worker, k int) error {
				p := parts[k]
				rep := reps[worker]
				// Tasks only read the candidate's gates; fitness is
				// updated in the ordered merge below.
				cand := pop[(k+round*len(parts))%len(pop)]
				if err := nn.RestoreParamValues(rep.params, global); err != nil {
					return fmt.Errorf("participant %d: %w", p.ID, err)
				}
				batch := p.Batcher.Next(cfg.BatchSize)
				x, y := ds.Gather(batch)
				nn.ZeroGrads(rep.params)
				lossRes, err := nn.CrossEntropy(rep.net.ForwardSampled(x, cand.gates), y)
				if err != nil {
					return fmt.Errorf("participant %d: %w", p.ID, err)
				}
				rep.net.BackwardSampled(lossRes.GradLogits)
				sub := rep.net.SampledParams(cand.gates)
				payload := nn.ParamBytes(sub)
				comm := 2 * nettrace.TransferSeconds(payload, 100)
				comp := p.ComputeSeconds(nn.ParamCount(sub), cfg.BatchSize)
				outs[k] = evoOut{
					grads:   nn.CloneParamGrads(rep.params),
					acc:     lossRes.Accuracy,
					payload: payload,
					seconds: comm + comp,
					bn:      rep.drainBN(),
				}
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("round %d: %w", round, err)
			}
			for k := range outs {
				cand := pop[(k+round*len(parts))%len(pop)]
				for i := range params {
					aggTheta[i].AddInPlace(outs[k].grads[i])
				}
				if cand.seen {
					cand.fitness = cfg.FitnessDecay*outs[k].acc + (1-cfg.FitnessDecay)*cand.fitness
				} else {
					cand.fitness = outs[k].acc
					cand.seen = true
				}
				roundAcc += outs[k].acc
				replayBN(primaryBNs, outs[k].bn)
				totalPayload += outs[k].payload
				payloadCount++
				if outs[k].seconds > roundSeconds {
					roundSeconds = outs[k].seconds
				}
			}
		} else {
			for k, p := range parts {
				cand := pop[(k+round*len(parts))%len(pop)]
				batch := p.Batcher.Next(cfg.BatchSize)
				x, y := ds.Gather(batch)
				nn.ZeroGrads(params)
				lossRes, err := nn.CrossEntropy(net.ForwardSampled(x, cand.gates), y)
				if err != nil {
					return res, err
				}
				net.BackwardSampled(lossRes.GradLogits)
				for i, pr := range params {
					aggTheta[i].AddInPlace(pr.Grad)
				}
				if cand.seen {
					cand.fitness = cfg.FitnessDecay*lossRes.Accuracy + (1-cfg.FitnessDecay)*cand.fitness
				} else {
					cand.fitness = lossRes.Accuracy
					cand.seen = true
				}
				roundAcc += lossRes.Accuracy

				sub := net.SampledParams(cand.gates)
				payload := nn.ParamBytes(sub)
				totalPayload += payload
				payloadCount++
				comm := 2 * nettrace.TransferSeconds(payload, 100)
				comp := p.ComputeSeconds(nn.ParamCount(sub), cfg.BatchSize)
				if t := comm + comp; t > roundSeconds {
					roundSeconds = t
				}
			}
		}
		inv := 1.0 / float64(len(parts))
		for i, p := range params {
			p.Grad.Zero()
			p.Grad.AXPY(inv, aggTheta[i])
		}
		opt.Step(params)
		res.Curve.Add(round, roundAcc*inv)
		res.SearchSeconds += roundSeconds

		if (round+1)%cfg.GenerationEvery == 0 {
			evolve(pop, rng, cfg.MutationRate, numCand)
		}
	}
	best := pop[0]
	for _, c := range pop[1:] {
		if c.fitness > best.fitness {
			best = c
		}
	}
	res.Genotype = nas.GenotypeFromGates(best.gates, cfg.Net.Candidates, cfg.Net.Nodes)
	if payloadCount > 0 {
		res.PayloadBytesPerRound = totalPayload / payloadCount
	}
	return res, nil
}

// evolve replaces the weakest half of the population with mutated copies of
// binary-tournament winners.
func evolve(pop []*evoCandidate, rng *rand.Rand, mutationRate float64, numCand int) {
	sort.Slice(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
	half := len(pop) / 2
	for i := half; i < len(pop); i++ {
		a, b := pop[rng.Intn(half)], pop[rng.Intn(half)]
		parent := a
		if b.fitness > a.fitness {
			parent = b
		}
		child := nas.CloneGates(parent.gates)
		mutate(child.Normal, rng, mutationRate, numCand)
		mutate(child.Reduce, rng, mutationRate, numCand)
		pop[i] = &evoCandidate{gates: child, fitness: parent.fitness * 0.9}
	}
}

func mutate(gates []int, rng *rand.Rand, rate float64, numCand int) {
	for e := range gates {
		if rng.Float64() < rate {
			gates[e] = rng.Intn(numCand)
		}
	}
}

func randomGates(rng *rand.Rand, nE, rE, numCand int) nas.Gates {
	g := nas.Gates{Normal: make([]int, nE), Reduce: make([]int, rE)}
	for i := range g.Normal {
		g.Normal[i] = rng.Intn(numCand)
	}
	for i := range g.Reduce {
		g.Reduce[i] = rng.Intn(numCand)
	}
	return g
}
