package baselines

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nettrace"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
	"fedrlnas/internal/tensor"
)

// FedNASConfig configures the FedNAS baseline (He et al.): federated
// gradient-based NAS where every round each participant downloads the
// ENTIRE supernet, computes first-order DARTS gradients for θ and α on its
// local batch, and the server averages both.
type FedNASConfig struct {
	Net       nas.Config
	K         int
	Rounds    int
	BatchSize int

	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	AlphaLR float64
	AlphaWD float64

	// Workers caps how many participants' local steps run concurrently;
	// 0 selects runtime.NumCPU(). Results are bit-identical at every
	// worker count.
	Workers int

	Seed int64
}

// DefaultFedNASConfig returns substrate-scale FedNAS settings.
func DefaultFedNASConfig(net nas.Config, k int) FedNASConfig {
	return FedNASConfig{
		Net: net, K: k, Rounds: 60, BatchSize: 16,
		ThetaLR: 0.025, ThetaMomentum: 0.9, ThetaWD: 3e-4, ThetaClip: 5,
		AlphaLR: 0.3, AlphaWD: 1e-4,
		Seed: 1,
	}
}

// FedNAS runs the federated gradient-NAS baseline over participants built
// from the given partition of ds. The returned NASResult's
// PayloadBytesPerRound is the full supernet size — the communication cost
// the paper's efficiency comparison targets (Table V).
func FedNAS(ds *data.Dataset, part data.Partition, cfg FedNASConfig) (NASResult, error) {
	if cfg.Rounds <= 0 || cfg.BatchSize <= 0 || cfg.K <= 0 {
		return NASResult{}, fmt.Errorf("baselines: invalid FedNAS config %+v", cfg)
	}
	parts, err := fed.BuildParticipants(ds, part, cfg.Seed+11)
	if err != nil {
		return NASResult{}, err
	}
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Net)
	if err != nil {
		return NASResult{}, err
	}
	net.SetTraining(true)
	nE, rE := net.ArchSpace()
	numCand := net.NumCandidates()
	alphaN := zeroRows(nE, numCand)
	alphaR := zeroRows(rE, numCand)
	opt := nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip)
	params := net.Params()
	paramCount := nn.ParamCount(params)
	payload := net.SupernetBytes()
	res := NASResult{Method: "fednas", PayloadBytesPerRound: payload}

	pool := parallel.New(cfg.Workers)
	var reps []*supReplica
	var primaryBNs []*nn.BatchNorm2D
	if pool.Workers() > 1 {
		if reps, err = newSupReplicas(pool, len(parts), cfg.Seed+1, cfg.Net); err != nil {
			return res, err
		}
		primaryBNs = net.BatchNorms()
	}
	// fednasOut is one participant's contribution, merged in index order.
	type fednasOut struct {
		grads   []*tensor.Tensor
		gN, gR  [][]float64
		acc     float64
		seconds float64
		bn      [][]nn.BNStats
	}

	for round := 0; round < cfg.Rounds; round++ {
		nn.ZeroGrads(params)
		aggTheta := nn.CloneParamGrads(params) // zero-valued accumulators
		aggN := zeroRows(nE, numCand)
		aggR := zeroRows(rE, numCand)
		roundAcc := 0.0
		roundSeconds := 0.0

		pn := controller.SoftmaxRows(alphaN)
		pr := controller.SoftmaxRows(alphaR)
		if len(reps) > 0 {
			// The global weights are constant within a round, so every
			// replica restores the same snapshot; all order-sensitive
			// accumulation happens in the merge below.
			global := nn.CloneParamValues(params)
			outs := make([]fednasOut, len(parts))
			err := pool.Run(len(parts), func(worker, k int) error {
				part := parts[k]
				rep := reps[worker]
				if err := nn.RestoreParamValues(rep.params, global); err != nil {
					return fmt.Errorf("participant %d: %w", part.ID, err)
				}
				batch := part.Batcher.Next(cfg.BatchSize)
				x, y := ds.Gather(batch)
				nn.ZeroGrads(rep.params)
				lossRes, err := nn.CrossEntropy(rep.net.ForwardMixed(x, pn, pr), y)
				if err != nil {
					return fmt.Errorf("participant %d: %w", part.ID, err)
				}
				mg := rep.net.BackwardMixed(lossRes.GradLogits)
				comm := 2 * nettrace.TransferSeconds(payload, 100)
				comp := part.ComputeSeconds(paramCount, cfg.BatchSize)
				outs[k] = fednasOut{
					grads:   nn.CloneParamGrads(rep.params),
					gN:      controller.ChainSoftmax(mg.Normal, pn),
					gR:      controller.ChainSoftmax(mg.Reduce, pr),
					acc:     lossRes.Accuracy,
					seconds: comm + comp,
					bn:      rep.drainBN(),
				}
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("round %d: %w", round, err)
			}
			for k := range outs {
				for i := range params {
					aggTheta[i].AddInPlace(outs[k].grads[i])
				}
				axpyRows(aggN, 1, outs[k].gN)
				axpyRows(aggR, 1, outs[k].gR)
				roundAcc += outs[k].acc
				replayBN(primaryBNs, outs[k].bn)
				if outs[k].seconds > roundSeconds {
					roundSeconds = outs[k].seconds
				}
			}
		} else {
			for _, part := range parts {
				batch := part.Batcher.Next(cfg.BatchSize)
				x, y := ds.Gather(batch)
				nn.ZeroGrads(params)
				lossRes, err := nn.CrossEntropy(net.ForwardMixed(x, pn, pr), y)
				if err != nil {
					return res, err
				}
				mg := net.BackwardMixed(lossRes.GradLogits)
				for i, p := range params {
					aggTheta[i].AddInPlace(p.Grad)
				}
				axpyRows(aggN, 1, controller.ChainSoftmax(mg.Normal, pn))
				axpyRows(aggR, 1, controller.ChainSoftmax(mg.Reduce, pr))
				roundAcc += lossRes.Accuracy

				// Every participant pays for the whole supernet: download +
				// full mixed-compute + upload.
				comm := 2 * nettrace.TransferSeconds(payload, 100)
				comp := part.ComputeSeconds(paramCount, cfg.BatchSize)
				if t := comm + comp; t > roundSeconds {
					roundSeconds = t
				}
			}
		}
		inv := 1.0 / float64(len(parts))
		for i, p := range params {
			p.Grad.Zero()
			p.Grad.AXPY(inv, aggTheta[i])
		}
		opt.Step(params)
		scaleRows(aggN, inv)
		scaleRows(aggR, inv)
		applyAlphaStep(alphaN, aggN, cfg.AlphaLR, cfg.AlphaWD)
		applyAlphaStep(alphaR, aggR, cfg.AlphaLR, cfg.AlphaWD)

		res.Curve.Add(round, roundAcc*inv)
		res.SearchSeconds += roundSeconds
	}
	res.Genotype = nas.DeriveGenotype(
		controller.SoftmaxRows(alphaN), controller.SoftmaxRows(alphaR),
		cfg.Net.Candidates, cfg.Net.Nodes)
	return res, nil
}

func scaleRows(rows [][]float64, a float64) {
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] *= a
		}
	}
}
