package baselines

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/parallel"
)

// supReplica is one worker slot's private supernet copy for the parallel
// baseline trainers (FedNAS, EvoFedNAS). Replicas are restored from the
// round's global weight snapshot before every local step and run their
// batch norms in stat-capture mode, so all order-sensitive state lands in
// the trainers' sequential merge — the same bit-determinism recipe as the
// main search engine (DESIGN.md §Concurrency).
type supReplica struct {
	net    *nas.Supernet
	params []*nn.Param
	bns    []*nn.BatchNorm2D
}

// newSupReplicas builds min(pool workers, maxTasks) supernet replicas.
// Structure is all that matters — weights are overwritten each round — so
// the primary network's init seed is reused.
func newSupReplicas(pool *parallel.Pool, maxTasks int, seed int64, cfg nas.Config) ([]*supReplica, error) {
	n := pool.Workers()
	if n > maxTasks {
		n = maxTasks
	}
	reps := make([]*supReplica, n)
	for i := range reps {
		net, err := nas.NewSupernet(rand.New(rand.NewSource(seed)), cfg)
		if err != nil {
			return nil, fmt.Errorf("baselines: worker replica %d: %w", i, err)
		}
		net.SetTraining(true)
		bns := net.BatchNorms()
		for _, bn := range bns {
			bn.SetStatCapture(true)
		}
		reps[i] = &supReplica{net: net, params: net.Params(), bns: bns}
	}
	return reps, nil
}

// drainBN collects the replica's captured batch statistics for ordered
// replay onto the primary network.
func (r *supReplica) drainBN() [][]nn.BNStats {
	out := make([][]nn.BNStats, len(r.bns))
	for i, bn := range r.bns {
		out[i] = bn.DrainCapturedStats()
	}
	return out
}

// replayBN folds one participant's captured statistics into the primary
// network's batch norms in layer order.
func replayBN(primary []*nn.BatchNorm2D, stats [][]nn.BNStats) {
	for layer, recs := range stats {
		for _, rec := range recs {
			primary[layer].ApplyStats(rec)
		}
	}
}
