package baselines

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
)

// ENASConfig configures the centralized RL search baseline (ENAS-style:
// parameter-shared supernet, REINFORCE controller, validation reward).
type ENASConfig struct {
	Net       nas.Config
	Steps     int
	BatchSize int

	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	Alpha controller.Config

	Seed int64
}

// DefaultENASConfig returns substrate-scale ENAS settings.
func DefaultENASConfig(net nas.Config) ENASConfig {
	alpha := controller.DefaultConfig()
	alpha.LR = 0.3
	return ENASConfig{
		Net: net, Steps: 60, BatchSize: 16,
		ThetaLR: 0.025, ThetaMomentum: 0.9, ThetaWD: 3e-4, ThetaClip: 5,
		Alpha: alpha,
		Seed:  1,
	}
}

// ENAS runs the centralized RL search: each step samples one sub-model,
// trains its shared weights on a training batch, measures reward on a
// validation batch, and updates the policy with baselined REINFORCE.
func ENAS(ds *data.Dataset, cfg ENASConfig) (NASResult, error) {
	if cfg.Steps <= 0 || cfg.BatchSize <= 0 {
		return NASResult{}, fmt.Errorf("baselines: invalid ENAS config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := nas.NewSupernet(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Net)
	if err != nil {
		return NASResult{}, err
	}
	net.SetTraining(true)
	nE, rE := net.ArchSpace()
	ctrl, err := controller.New(nE, rE, net.NumCandidates(), cfg.Alpha)
	if err != nil {
		return NASResult{}, err
	}
	trainB, validB, err := splitBatchers(ds, rng)
	if err != nil {
		return NASResult{}, err
	}
	opt := nn.NewSGD(cfg.ThetaLR, cfg.ThetaMomentum, cfg.ThetaWD, cfg.ThetaClip)
	params := net.Params()
	res := NASResult{Method: "enas"}

	for step := 0; step < cfg.Steps; step++ {
		g := ctrl.SampleGates(rng)

		// Shared-weight training step on the sampled sub-model.
		batch := trainB.Next(cfg.BatchSize)
		x, y := ds.Gather(batch)
		nn.ZeroGrads(params)
		lossRes, err := nn.CrossEntropy(net.ForwardSampled(x, g), y)
		if err != nil {
			return res, err
		}
		net.BackwardSampled(lossRes.GradLogits)
		sub := net.SampledParams(g)
		opt.Step(sub)

		// Reward on a validation batch.
		vb := validB.Next(cfg.BatchSize)
		vx, vy := ds.Gather(vb)
		valAcc := nn.Accuracy(net.ForwardSampled(vx, g), vy)

		grad := ctrl.LogProbGrad(g)
		grad.Scale(ctrl.Reward(valAcc))
		ctrl.Apply(grad)
		ctrl.UpdateBaseline(valAcc)

		res.Curve.Add(step, lossRes.Accuracy)
		res.SearchSeconds += 1e-5 * float64(nn.ParamCount(sub)) * float64(cfg.BatchSize)
	}
	res.Genotype = ctrl.Derive(cfg.Net.Candidates, cfg.Net.Nodes)
	return res, nil
}
