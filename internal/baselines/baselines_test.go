package baselines

import (
	"math/rand"
	"testing"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
)

func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	spec := data.Spec{
		Name: "blt", NumClasses: 4, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 30, TestPerClass: 8, Noise: 1.0, Confusion: 0.3, Seed: 55,
	}
	ds, err := data.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testNet() nas.Config {
	return nas.Config{
		InChannels: 2, NumClasses: 4, C: 3, Layers: 2, Nodes: 1,
		Candidates: nas.AllOps,
	}
}

func TestResNetLikeMuchBiggerThanSmallCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	big := NewResNetLike(rng, 2, 4)
	small := NewSmallCNN(rng, 2, 4)
	bigN := nn.ParamCount(big.Params())
	smallN := nn.ParamCount(small.Params())
	if bigN < 8*smallN {
		t.Errorf("ResNetLike %d params vs SmallCNN %d: ratio too small", bigN, smallN)
	}
}

func TestFixedModelsTrain(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(2))
	part, err := data.IIDPartition(ds.NumTrain(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fed.BuildParticipants(ds, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := NewSmallCNN(rng, 2, 4)
	cfg := fed.DefaultFedAvgConfig()
	cfg.Rounds = 8
	cfg.BatchSize = 8
	res, err := fed.FedAvg(m, ds, parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 0.25 {
		t.Errorf("SmallCNN FedAvg accuracy %.3f no better than chance", res.FinalAcc)
	}
}

func TestDARTSFirstOrder(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultDARTSConfig(testNet())
	cfg.Steps = 15
	cfg.BatchSize = 8
	res, err := DARTS(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "darts-1st" {
		t.Errorf("method %q", res.Method)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() != 15 || res.SearchSeconds <= 0 {
		t.Error("curve/timing not recorded")
	}
	if res.PayloadBytesPerRound != 0 {
		t.Error("centralized method must have zero payload")
	}
}

func TestDARTSSecondOrder(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultDARTSConfig(testNet())
	cfg.Steps = 6
	cfg.BatchSize = 8
	cfg.SecondOrder = true
	res, err := DARTS(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "darts-2nd" {
		t.Errorf("method %q", res.Method)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDARTSLearns(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultDARTSConfig(testNet())
	cfg.Steps = 50
	cfg.BatchSize = 8
	res, err := DARTS(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	head := res.Curve.MovingAverage(5).Points[4].Value
	tail := res.Curve.TailMean(10)
	if tail <= head {
		t.Errorf("DARTS training acc did not improve: %.3f -> %.3f", head, tail)
	}
}

func TestDARTSValidation(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultDARTSConfig(testNet())
	cfg.Steps = 0
	if _, err := DARTS(ds, cfg); err == nil {
		t.Error("expected error for zero steps")
	}
}

func TestENASRunsAndDerives(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultENASConfig(testNet())
	cfg.Steps = 30
	cfg.BatchSize = 8
	res, err := ENAS(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "enas" {
		t.Errorf("method %q", res.Method)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() != 30 || res.SearchSeconds <= 0 {
		t.Error("curve/timing not recorded")
	}
	cfg.Steps = 0
	if _, err := ENAS(ds, cfg); err == nil {
		t.Error("expected error for zero steps")
	}
}

func TestFedNASRunsAndShipsSupernet(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(4))
	part, err := data.IIDPartition(ds.NumTrain(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFedNASConfig(testNet(), 3)
	cfg.Rounds = 10
	cfg.BatchSize = 8
	res, err := FedNAS(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.PayloadBytesPerRound <= 0 {
		t.Fatal("FedNAS payload missing")
	}
	// The defining inefficiency: FedNAS ships the entire supernet.
	net, err := nas.NewSupernet(rng, cfg.Net)
	if err != nil {
		t.Fatal(err)
	}
	if res.PayloadBytesPerRound != net.SupernetBytes() {
		t.Errorf("payload %d != supernet %d", res.PayloadBytesPerRound, net.SupernetBytes())
	}
	if res.Curve.Len() != 10 || res.SearchSeconds <= 0 {
		t.Error("curve/timing not recorded")
	}
}

func TestEvoFedNASRunsAndEvolves(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(5))
	part, err := data.IIDPartition(ds.NumTrain(), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEvoConfig(testNet(), 3)
	cfg.Rounds = 20
	cfg.BatchSize = 8
	cfg.GenerationEvery = 5
	res, err := EvoFedNAS(ds, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Genotype.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() != 20 || res.SearchSeconds <= 0 || res.PayloadBytesPerRound <= 0 {
		t.Error("curve/timing/payload not recorded")
	}
	cfg.Population = 1
	if _, err := EvoFedNAS(ds, part, cfg); err == nil {
		t.Error("expected error for population < 2")
	}
}

func TestEvoVariants(t *testing.T) {
	base := testNet()
	big := EvoBig.ApplyVariant(base)
	if big.C != 2*base.C {
		t.Errorf("big variant C = %d", big.C)
	}
	small := EvoSmall.ApplyVariant(base)
	if len(small.Candidates) >= len(nas.AllOps) {
		t.Error("small variant candidate set not restricted")
	}
	for _, k := range small.Candidates {
		if k == nas.OpSepConv3 || k == nas.OpSepConv5 {
			t.Error("small variant must exclude convolutions")
		}
	}
	if EvoBig.String() == EvoSmall.String() {
		t.Error("variant strings must differ")
	}
}

func TestEvolveKeepsElite(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pop := []*evoCandidate{
		{gates: randomGates(rng, 2, 2, 8), fitness: 0.9},
		{gates: randomGates(rng, 2, 2, 8), fitness: 0.1},
		{gates: randomGates(rng, 2, 2, 8), fitness: 0.8},
		{gates: randomGates(rng, 2, 2, 8), fitness: 0.2},
	}
	best := pop[0]
	evolve(pop, rng, 0.5, 8)
	found := false
	for _, c := range pop {
		if c == best {
			found = true
		}
	}
	if !found {
		t.Error("elite candidate evicted by evolution")
	}
}

func TestMutateRespectsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gates := make([]int, 50)
	mutate(gates, rng, 1.0, 4)
	changed := 0
	for _, g := range gates {
		if g < 0 || g >= 4 {
			t.Fatalf("mutated gate %d out of range", g)
		}
		if g != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("rate-1 mutation changed nothing")
	}
	before := append([]int(nil), gates...)
	mutate(gates, rng, 0, 4)
	for i := range gates {
		if gates[i] != before[i] {
			t.Fatal("rate-0 mutation changed gates")
		}
	}
}

// Cross-method shape check for Table V: our method's payload must be far
// below FedNAS's supernet payload on the same network config.
func TestPayloadOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := nas.NewSupernet(rng, testNet())
	if err != nil {
		t.Fatal(err)
	}
	// A representative one-op-per-edge sub-model.
	g := nas.Gates{Normal: []int{4, 4}, Reduce: []int{4, 4}}
	sub := net.SubModelBytes(g)
	super := net.SupernetBytes()
	if !(sub < super/2) {
		t.Errorf("sub-model %d not far below supernet %d", sub, super)
	}
}
