package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCurveBasics(t *testing.T) {
	var c Curve
	if c.Last() != 0 {
		t.Error("empty curve Last should be 0")
	}
	c.Add(1, 0.5)
	c.Add(2, 0.8)
	c.Add(3, 0.7)
	if c.Len() != 3 || c.Last() != 0.7 || c.Max() != 0.8 {
		t.Errorf("Len/Last/Max = %d/%v/%v", c.Len(), c.Last(), c.Max())
	}
	vals := c.Values()
	if len(vals) != 3 || vals[1] != 0.8 {
		t.Errorf("Values = %v", vals)
	}
}

func TestMovingAverage(t *testing.T) {
	var c Curve
	for i, v := range []float64{1, 2, 3, 4} {
		c.Add(i, v)
	}
	ma := c.MovingAverage(2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i, p := range ma.Points {
		if math.Abs(p.Value-want[i]) > 1e-12 {
			t.Errorf("ma[%d] = %v, want %v", i, p.Value, want[i])
		}
	}
	// window 1 is identity
	id := c.MovingAverage(1)
	for i, p := range id.Points {
		if p.Value != c.Points[i].Value {
			t.Error("window-1 moving average must be identity")
		}
	}
}

func TestTailMeanAndStepsToReach(t *testing.T) {
	var c Curve
	for i, v := range []float64{0.1, 0.2, 0.9, 0.8} {
		c.Add(i*10, v)
	}
	if got := c.TailMean(2); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("TailMean(2) = %v", got)
	}
	if got := c.TailMean(100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TailMean(all) = %v", got)
	}
	if got := c.StepsToReach(0.85); got != 20 {
		t.Errorf("StepsToReach = %d, want 20", got)
	}
	if got := c.StepsToReach(2); got != -1 {
		t.Errorf("unreachable threshold = %d, want -1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("N/Mean = %d/%v", s.N, s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.P50-4.5) > 1e-12 { // true median of even N: (4+5)/2
		t.Errorf("P50 = %v, want 4.5", s.P50)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
}

// TestSummarizeMedianSmallN pins P50, Min and Max for N = 0..4, in
// particular the even-N true-median and the empty-input early return
// (which must not leak ±Inf Min/Max).
func TestSummarizeMedianSmallN(t *testing.T) {
	cases := []struct {
		name          string
		vals          []float64
		p50, min, max float64
	}{
		{"n0", nil, 0, 0, 0},
		{"n0 empty slice", []float64{}, 0, 0, 0},
		{"n1", []float64{3}, 3, 3, 3},
		{"n2", []float64{1, 2}, 1.5, 1, 2},
		{"n3", []float64{5, 1, 3}, 3, 1, 5},
		{"n4", []float64{4, 1, 3, 2}, 2.5, 1, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.vals)
			if s.N != len(tc.vals) {
				t.Errorf("N = %d, want %d", s.N, len(tc.vals))
			}
			if math.Abs(s.P50-tc.p50) > 1e-12 {
				t.Errorf("P50 = %v, want %v", s.P50, tc.p50)
			}
			if s.Min != tc.min || s.Max != tc.max {
				t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min, s.Max, tc.min, tc.max)
			}
			if math.IsInf(s.Min, 0) || math.IsInf(s.Max, 0) {
				t.Error("empty input leaked ±Inf into Min/Max")
			}
			// Summarize must not reorder the caller's slice.
			if tc.name == "n3" && (tc.vals[0] != 5 || tc.vals[2] != 3) {
				t.Error("Summarize mutated its input")
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"Method", "Err"}}
	tb.AddRow("ours", "2.62")
	tb.AddRow("darts-long-name", "3.00")
	s := tb.String()
	if !strings.Contains(s, "Method") || !strings.Contains(s, "darts-long-name") {
		t.Errorf("table render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4+0 { // title + header + sep + 2 rows = 5? title separate
		// title, header, separator, two rows
		if len(lines) != 5 {
			t.Errorf("table has %d lines:\n%s", len(lines), s)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", `q"u`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"q""u"`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" {
		t.Errorf("F = %s", F(1.234))
	}
	if F4(1.23456) != "1.2346" {
		t.Errorf("F4 = %s", F4(1.23456))
	}
	if Pct(0.0262) != "2.62" {
		t.Errorf("Pct = %s", Pct(0.0262))
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Percentile(50)) || !math.IsNaN(h.Mean()) {
		t.Error("empty histogram should yield NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := h.Percentile(95); got != 95 {
		t.Errorf("p95 = %v, want 95", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-12 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty histogram render missing marker")
	}
	for i := 0; i < 50; i++ {
		h.Observe(float64(i % 10))
	}
	out := h.Render(5, 10)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("render has %d lines, want 5", lines)
	}
	// Constant-value histogram must not divide by zero.
	var c Histogram
	c.Observe(3)
	c.Observe(3)
	if out := c.String(); !strings.Contains(out, "#") {
		t.Errorf("constant histogram render:\n%s", out)
	}
}
