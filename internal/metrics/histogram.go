package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram with percentile readout, used for
// latency-tail analysis of the transmission policies.
type Histogram struct {
	values []float64
	sorted bool
}

// Observe records a value.
func (h *Histogram) Observe(v float64) {
	h.values = append(h.values, v)
	h.sorted = false
}

// N returns the number of observations.
func (h *Histogram) N() int { return len(h.values) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.values) == 0 {
		return math.NaN()
	}
	h.ensureSorted()
	if p <= 0 {
		return h.values[0]
	}
	if p >= 100 {
		return h.values[len(h.values)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.values[rank]
}

// Mean returns the average of the observations.
func (h *Histogram) Mean() float64 {
	if len(h.values) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range h.values {
		s += v
	}
	return s / float64(len(h.values))
}

// String renders a compact ASCII histogram with `bins` equal-width bins.
func (h *Histogram) String() string {
	return h.Render(8, 30)
}

// Render draws the histogram with the given bin count and bar width.
func (h *Histogram) Render(bins, width int) string {
	if len(h.values) == 0 {
		return "(empty histogram)\n"
	}
	if bins < 1 {
		bins = 1
	}
	h.ensureSorted()
	lo, hi := h.values[0], h.values[len(h.values)-1]
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range h.values {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for b, c := range counts {
		binLo := lo + float64(b)*(hi-lo)/float64(bins)
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		sb.WriteString(fmt.Sprintf("%10.4f | %-*s %d\n", binLo, width, strings.Repeat("#", bar), c))
	}
	return sb.String()
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.values)
		h.sorted = true
	}
}
