// Package metrics provides curve recording, moving averages, summary
// statistics, and text/CSV table rendering for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (step, value) observation.
type Point struct {
	Step  int
	Value float64
}

// Curve is an ordered series of observations (e.g. accuracy per round).
type Curve struct {
	Name   string
	Points []Point
}

// Add appends an observation.
func (c *Curve) Add(step int, value float64) {
	c.Points = append(c.Points, Point{Step: step, Value: value})
}

// Len returns the number of observations.
func (c *Curve) Len() int { return len(c.Points) }

// Last returns the final value (0 if empty).
func (c *Curve) Last() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].Value
}

// Max returns the maximum value (−Inf if empty).
func (c *Curve) Max() float64 {
	m := math.Inf(-1)
	for _, p := range c.Points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Values returns the raw values in order.
func (c *Curve) Values() []float64 {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = p.Value
	}
	return out
}

// MovingAverage returns a new curve smoothed with a trailing window (the
// paper's figures use a 50-step window).
func (c *Curve) MovingAverage(window int) Curve {
	if window < 1 {
		window = 1
	}
	out := Curve{Name: c.Name + fmt.Sprintf("(ma%d)", window)}
	sum := 0.0
	for i, p := range c.Points {
		sum += p.Value
		if i >= window {
			sum -= c.Points[i-window].Value
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out.Add(p.Step, sum/float64(n))
	}
	return out
}

// TailMean returns the mean of the last n values — a stable "converged
// accuracy" readout for noisy curves.
func (c *Curve) TailMean(n int) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	if n > len(c.Points) {
		n = len(c.Points)
	}
	sum := 0.0
	for _, p := range c.Points[len(c.Points)-n:] {
		sum += p.Value
	}
	return sum / float64(n)
}

// StepsToReach returns the first step at which the moving value reaches the
// threshold, or -1 if it never does. Used for convergence-speed comparisons
// (Figs. 9–11).
func (c *Curve) StepsToReach(threshold float64) int {
	for _, p := range c.Points {
		if p.Value >= threshold {
			return p.Step
		}
	}
	return -1
}

// Summary holds basic distribution statistics.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50       float64
}

// Summarize computes summary statistics for vals. P50 is the true median:
// for even N it averages the two middle order statistics.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(vals))
	for _, v := range vals {
		d := v - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(vals)))
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if n := len(sorted); n%2 == 1 {
		s.P50 = sorted[n/2]
	} else {
		s.P50 = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// Table is a simple aligned text table with optional CSV export.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified as given).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float for table cells with sensible precision.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F4 formats a float with 4 decimal places.
func F4(v float64) string { return fmt.Sprintf("%.4f", v) }

// Pct formats a fraction as a percentage with 2 decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }
