package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Grammar is the -scenario flag syntax, for usage strings.
const Grammar = `NAME | PCT%NAME[+PCT%NAME...] | @FILE.json | '{...}' inline JSON`

// Parse turns a -scenario argument into a Spec. Four forms:
//
//	phone-urban                      one catalog profile, whole population
//	70%phone-urban+30%iot-rural      a mixed population
//	@scenario.json                   a Spec from a JSON file
//	{"population":[...]}             a Spec inline
//
// The result is validated; errors report every problem at once.
func Parse(arg string) (*Spec, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return nil, nil
	}
	var spec Spec
	switch {
	case strings.HasPrefix(arg, "{"):
		if err := json.Unmarshal([]byte(arg), &spec); err != nil {
			return nil, fmt.Errorf("scenario: inline JSON: %w", err)
		}
	case strings.HasPrefix(arg, "@"):
		raw, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return nil, fmt.Errorf("scenario: file %s: %w", arg[1:], err)
		}
	default:
		mix, err := parseMix(arg)
		if err != nil {
			return nil, err
		}
		spec = Spec{Name: arg, Population: mix}
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &spec, nil
}

// parseMix parses the compact population grammar: "+"-separated terms,
// each "NAME" or "PCT%NAME". Either every term carries a percentage or
// none does (Validate enforces the rest).
func parseMix(arg string) ([]Share, error) {
	terms := strings.Split(arg, "+")
	out := make([]Share, 0, len(terms))
	for _, term := range terms {
		term = strings.TrimSpace(term)
		if term == "" {
			return nil, fmt.Errorf("scenario: empty term in %q (grammar: %s)", arg, Grammar)
		}
		share := Share{Profile: term}
		if pct, name, ok := strings.Cut(term, "%"); ok {
			f, err := strconv.ParseFloat(pct, 64)
			if err != nil {
				return nil, fmt.Errorf("scenario: bad percentage %q in term %q (grammar: %s)", pct, term, Grammar)
			}
			share = Share{Profile: strings.TrimSpace(name), Fraction: f / 100}
		}
		out = append(out, share)
	}
	return out, nil
}
