package scenario

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestParseGrammar covers the four -scenario forms.
func TestParseGrammar(t *testing.T) {
	// Bare catalog name.
	spec, err := Parse("phone-urban")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Population) != 1 || spec.Population[0].Profile != "phone-urban" {
		t.Fatalf("bare name parsed to %+v", spec.Population)
	}

	// Percentage mix.
	spec, err = Parse("70%phone-urban+30%iot-rural")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Population) != 2 {
		t.Fatalf("mix has %d shares", len(spec.Population))
	}
	if spec.Population[0].Fraction != 0.7 || spec.Population[1].Fraction != 0.3 {
		t.Fatalf("mix fractions %+v", spec.Population)
	}
	if spec.Population[1].Profile != "iot-rural" {
		t.Fatalf("second share is %q", spec.Population[1].Profile)
	}

	// Inline JSON.
	spec, err = Parse(`{"population":[{"profile":"edge-dc"}],"personalize":true}`)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Personalize || spec.Population[0].Profile != "edge-dc" {
		t.Fatalf("inline JSON parsed to %+v", spec)
	}

	// @file.
	path := filepath.Join(t.TempDir(), "scen.json")
	if err := os.WriteFile(path, []byte(`{"skew":{"kind":"dirichlet","alpha":0.2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err = Parse("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Skew == nil || spec.Skew.Alpha != 0.2 {
		t.Fatalf("file spec parsed to %+v", spec)
	}

	// Empty arg means no scenario.
	if spec, err := Parse("  "); err != nil || spec != nil {
		t.Fatalf("empty arg = %v, %v; want nil, nil", spec, err)
	}

	for _, bad := range []string{"flying-car", "7x%phone-urban", "phone-urban++", "{not json", "@/does/not/exist"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestSpecRoundTrip: parse → JSON → parse must be lossless for every form.
func TestSpecRoundTrip(t *testing.T) {
	for _, arg := range []string{
		"phone-urban",
		"70%phone-urban+30%iot-rural",
		`{"name":"custom","population":[{"custom":{"name":"x","speed":2,"network":[{"regime":"foot","rounds":3},{"regime":"train"}],"churn":0.1,"skew_alpha":0.3,"chaos":"latency=5ms"}}],"skew":{"kind":"dirichlet","alpha":0.5},"personalize":true,"head_lr":0.1}`,
	} {
		spec, err := Parse(arg)
		if err != nil {
			t.Fatalf("Parse(%q): %v", arg, err)
		}
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(string(raw))
		if err != nil {
			t.Fatalf("re-Parse(%s): %v", raw, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("round trip of %q:\n  first  %+v\n  second %+v", arg, spec, back)
		}
	}
}

// TestValidateReportsAllProblems: one Validate call must surface every
// mistake, not just the first.
func TestValidateReportsAllProblems(t *testing.T) {
	spec := &Spec{
		Population: []Share{
			{Profile: "no-such-profile", Fraction: 0.5},
			{Custom: &Profile{Name: "bad", Speed: -1, Churn: 2, Network: []Phase{{Regime: "submarine"}, {Regime: "foot"}}}},
		},
		Skew:   &Skew{Kind: "zipf"},
		HeadLR: -0.5,
	}
	err := spec.Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		"no-such-profile", "speed -1", "churn 2", "submarine", "zipf", "head_lr -0.5",
		"only valid on the final phase",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error missing %q:\n%s", want, msg)
		}
	}
}

// TestAssignDeterministicAndProportional: assignment is a pure function of
// (fractions, k, seed) with largest-remainder counts.
func TestAssignDeterministic(t *testing.T) {
	fracs := []float64{0.7, 0.3}
	a := Assign(fracs, 10, 42)
	b := Assign(fracs, 10, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("assignment not deterministic: %v vs %v", a, b)
	}
	counts := map[int]int{}
	for _, g := range a {
		counts[g]++
	}
	if counts[0] != 7 || counts[1] != 3 {
		t.Fatalf("70/30 of 10 assigned %v", counts)
	}
	if reflect.DeepEqual(a, Assign(fracs, 10, 43)) {
		t.Error("different seeds produced identical placements")
	}
	// Growing the population keeps proportions (largest remainder).
	counts = map[int]int{}
	for _, g := range Assign(fracs, 9, 42) {
		counts[g]++
	}
	if counts[0]+counts[1] != 9 || counts[0] < 6 || counts[0] > 7 {
		t.Fatalf("70/30 of 9 assigned %v", counts)
	}
}

// TestCatalogProfilesValid: every built-in profile must pass its own
// validation and produce a usable trace and chaos config.
func TestCatalogProfilesValid(t *testing.T) {
	for _, p := range Catalog() {
		if err := p.validate(); err != nil {
			t.Errorf("catalog profile %q invalid: %v", p.Name, err)
		}
		tr, err := p.Trace(20, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Errorf("profile %q trace: %v", p.Name, err)
		}
		if p.FixedMbps > 0 && tr.Mbps[5] != p.FixedMbps {
			t.Errorf("profile %q fixed trace at %v, want %v", p.Name, tr.Mbps[5], p.FixedMbps)
		}
		if _, err := p.ChaosConfig(7); err != nil {
			t.Errorf("profile %q chaos config: %v", p.Name, err)
		}
	}
	if _, err := Lookup("laptop-wifi"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("mainframe"); err == nil || !strings.Contains(err.Error(), "edge-dc") {
		t.Errorf("unknown profile error should list the catalog, got %v", err)
	}
}

// TestParticipantTraceOrderIndependent: a participant's trace depends only
// on (seed, pid), never on when it is drawn.
func TestParticipantTraceOrderIndependent(t *testing.T) {
	p, err := Lookup("phone-urban")
	if err != nil {
		t.Fatal(err)
	}
	tr3, err := p.ParticipantTrace(16, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Draw others "first" — must not perturb participant 3.
	for _, pid := range []int{7, 0, 5} {
		if _, err := p.ParticipantTrace(16, 9, pid); err != nil {
			t.Fatal(err)
		}
	}
	again, err := p.ParticipantTrace(16, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr3.Mbps, again.Mbps) {
		t.Fatal("participant trace depends on draw order")
	}
	other, _ := p.ParticipantTrace(16, 9, 4)
	if reflect.DeepEqual(tr3.Mbps, other.Mbps) {
		t.Fatal("distinct participants share a trace")
	}
}

// TestPartitionFor: every participant gets a non-empty shard, shards are
// disjoint, the split is deterministic, and a profile's Dirichlet alpha
// skews its group while an IID profile's group stays balanced.
func TestPartitionFor(t *testing.T) {
	const k, classes, perClass = 8, 4, 50
	labels := make([]int, classes*perClass)
	for i := range labels {
		labels[i] = i % classes
	}
	profiles := []Profile{
		{Name: "skewed", SkewAlpha: 0.1},
		{Name: "flat"},
	}
	assignment := Assign([]float64{0.5, 0.5}, k, 11)
	part, err := PartitionFor(labels, k, assignment, profiles, nil, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for pid, idxs := range part.Indices {
		if len(idxs) == 0 {
			t.Fatalf("participant %d has an empty shard", pid)
		}
		for _, idx := range idxs {
			if seen[idx] {
				t.Fatalf("index %d appears in two shards", idx)
			}
			seen[idx] = true
		}
	}
	part2, err := PartitionFor(labels, k, assignment, profiles, nil, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(part.Indices, part2.Indices) {
		t.Fatal("partition not deterministic")
	}
	// The Spec-level override replaces per-profile alphas.
	forced, err := PartitionFor(labels, k, assignment, profiles,
		&Skew{Kind: SkewIID}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for pid, idxs := range forced.Indices {
		counts := make([]int, classes)
		for _, idx := range idxs {
			counts[labels[idx]]++
		}
		for c, n := range counts {
			if n == 0 {
				t.Fatalf("iid override: participant %d missing class %d", pid, c)
			}
		}
	}
}

// TestPersonalTestIndices: the per-client test set follows the client's
// label distribution and is deterministic.
func TestPersonalTestIndices(t *testing.T) {
	testLabels := make([]int, 40)
	for i := range testLabels {
		testLabels[i] = i % 4
	}
	idx := PersonalTestIndices([]float64{1, 0, 0, 0}, testLabels, 8)
	if len(idx) == 0 {
		t.Fatal("empty personal test set")
	}
	for _, i := range idx {
		if testLabels[i] != 0 {
			t.Fatalf("single-class dist pulled class %d", testLabels[i])
		}
	}
	mixed := PersonalTestIndices([]float64{0.5, 0.5, 0, 0}, testLabels, 8)
	classes := map[int]bool{}
	for _, i := range mixed {
		classes[testLabels[i]] = true
	}
	if !classes[0] || !classes[1] || classes[2] || classes[3] {
		t.Fatalf("mixed dist pulled classes %v", classes)
	}
}

// TestIsZero: zero specs lower to nothing; anything substantive does not.
func TestIsZero(t *testing.T) {
	if !(*Spec)(nil).IsZero() || !(&Spec{}).IsZero() || !(&Spec{Name: "label-only"}).IsZero() {
		t.Error("zero specs not recognized")
	}
	if (&Spec{Personalize: true}).IsZero() || (&Spec{Skew: &Skew{Kind: SkewIID}}).IsZero() {
		t.Error("substantive specs reported zero")
	}
}
