package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// catalog holds the built-in device profiles. Each bundles the four axes a
// scenario varies — compute, network, availability, data — so a whole
// device class is one name on the command line.
var catalog = map[string]Profile{
	"phone-urban": {
		Name:  "phone-urban",
		Speed: 1.0,
		// An urban phone walks, then rides a bus: a mid-run regime shift.
		Network:   []Phase{{Regime: "foot", Rounds: 8}, {Regime: "bus"}},
		Churn:     0.05,
		SkewAlpha: 0.5,
	},
	"phone-commuter": {
		Name:      "phone-commuter",
		Speed:     1.2,
		Network:   []Phase{{Regime: "bus", Rounds: 6}, {Regime: "train", Rounds: 6}, {Regime: "foot"}},
		Churn:     0.10,
		SkewAlpha: 0.5,
	},
	"iot-rural": {
		Name:  "iot-rural",
		Speed: 4.0, // a microcontroller-class device, 4x the reference step time
		// Rural coverage behaves like the burstiest measured regime.
		Network:   []Phase{{Regime: "train"}},
		Churn:     0.15,
		SkewAlpha: 0.2, // a sensor sees a narrow slice of the label space
	},
	"edge-dc": {
		Name:      "edge-dc",
		Speed:     0.25, // server-class accelerator
		FixedMbps: 200,  // wired link: no mobility regime
		Churn:     0,
		SkewAlpha: 0, // IID replica of the corpus
	},
	"laptop-wifi": {
		Name:      "laptop-wifi",
		Speed:     0.6,
		Network:   []Phase{{Regime: "foot"}},
		Churn:     0.02,
		SkewAlpha: 1.0,
	},
}

// Lookup resolves a built-in profile by name.
func Lookup(name string) (Profile, error) {
	p, ok := catalog[name]
	if !ok {
		return Profile{}, fmt.Errorf("unknown profile %q (valid: %s)", name, CatalogNames())
	}
	return p, nil
}

// CatalogNames returns every built-in profile name, sorted and
// comma-separated, for error text and usage strings.
func CatalogNames() string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Catalog returns the built-in profiles in name order (for docs and the
// benchprofiles matrix).
func Catalog() []Profile {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Profile, len(names))
	for i, n := range names {
		out[i] = catalog[n]
	}
	return out
}
