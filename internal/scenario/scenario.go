// Package scenario is the engine behind "as many scenarios as you can
// imagine": a typed, composable description of WHO participates in a
// federated run and under WHAT conditions. A Spec bundles a device-profile
// population mix (compute speed, time-varying network regime, availability/
// churn, data skew — each profile a named catalog entry or an inline
// definition), an optional population-wide skew override, and the
// personalization mode (shared supernet body, per-client classifier head).
//
// Specs replace the scattered -chaos/-nettrace/-partition flag strings:
// they parse from a compact grammar or JSON (see Parse), marshal back to
// JSON losslessly, validate with every problem reported at once, and lower
// deterministically onto the existing substrate — profile assignment is a
// pure function of (spec, K, seed), so a population is carved up
// identically on every process, at every worker count, on both sides of an
// RPC deployment. An empty Spec lowers to nothing at all: runs stay
// bit-identical to builds without the scenario layer.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"fedrlnas/internal/chaos"
	"fedrlnas/internal/data"
	"fedrlnas/internal/nettrace"
)

// Skew kinds.
const (
	SkewIID       = "iid"
	SkewDirichlet = "dirichlet"
)

// Skew selects how training data is split across a set of participants.
type Skew struct {
	// Kind is "iid" or "dirichlet".
	Kind string `json:"kind"`
	// Alpha is the Dirichlet concentration (smaller = more skew); ignored
	// for iid.
	Alpha float64 `json:"alpha,omitempty"`
}

func (s Skew) validate() error {
	switch s.Kind {
	case SkewIID:
		return nil
	case SkewDirichlet:
		if s.Alpha <= 0 {
			return fmt.Errorf("dirichlet skew alpha %v must be positive", s.Alpha)
		}
		return nil
	default:
		return fmt.Errorf("unknown skew kind %q (valid: %s, %s)", s.Kind, SkewIID, SkewDirichlet)
	}
}

// Phase is one segment of a profile's time-varying network: Rounds rounds
// of the named nettrace regime. Rounds 0 on the final phase means "the
// rest of the run".
type Phase struct {
	Regime string `json:"regime"`
	Rounds int    `json:"rounds,omitempty"`
}

// Profile describes one device class. The zero value of every field is a
// benign default (reference speed, flat default bandwidth, no churn, IID
// data), so inline profiles only state what makes the class special.
type Profile struct {
	Name string `json:"name"`
	// Speed multiplies virtual compute time (1 = reference device; 4 = a
	// 4x-slower microcontroller; 0 is treated as 1).
	Speed float64 `json:"speed,omitempty"`
	// Network is the device's bandwidth regime sequence; regime shifts
	// mid-run model environment changes (commuter boards a train). Empty
	// plus FixedMbps 0 leaves the default bandwidth in place.
	Network []Phase `json:"network,omitempty"`
	// FixedMbps pins a constant bandwidth instead of a mobility regime (a
	// wired edge node). Mutually exclusive with Network.
	FixedMbps float64 `json:"fixed_mbps,omitempty"`
	// Churn is the per-round probability the device is offline entirely —
	// the availability schedule feeding the engine's churn draw and, over
	// RPC, the lifecycle state machine via injected faults.
	Churn float64 `json:"churn,omitempty"`
	// SkewAlpha is the Dirichlet concentration of the profile's data shard
	// group (0 = IID within the group). A Spec-level Skew overrides it.
	SkewAlpha float64 `json:"skew_alpha,omitempty"`
	// Chaos is an optional chaos.ParseSpec fragment applied to the
	// device's transport in RPC deployments (latency, jitter, kills).
	Chaos string `json:"chaos,omitempty"`
}

func (p Profile) validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("profile %q: "+format, append([]any{p.Name}, args...)...))
	}
	if p.Name == "" {
		errs = append(errs, errors.New("profile has no name"))
	}
	if p.Speed < 0 {
		fail("speed %v must be >= 0", p.Speed)
	}
	if p.FixedMbps < 0 {
		fail("fixed_mbps %v must be >= 0", p.FixedMbps)
	}
	if p.FixedMbps > 0 && len(p.Network) > 0 {
		fail("fixed_mbps and network phases are mutually exclusive")
	}
	if p.Churn < 0 || p.Churn >= 1 {
		fail("churn %v outside [0,1)", p.Churn)
	}
	if p.SkewAlpha < 0 {
		fail("skew_alpha %v must be >= 0", p.SkewAlpha)
	}
	for i, ph := range p.Network {
		if _, err := nettrace.ParseRegime(ph.Regime); err != nil {
			fail("network phase %d: %v", i, err)
		}
		if ph.Rounds < 0 {
			fail("network phase %d: rounds %d must be >= 0", i, ph.Rounds)
		} else if ph.Rounds == 0 && i != len(p.Network)-1 {
			fail("network phase %d: rounds 0 (rest of run) is only valid on the final phase", i)
		}
	}
	if p.Chaos != "" {
		if _, err := chaos.ParseSpec(p.Chaos); err != nil {
			fail("%v", err)
		}
	}
	return errors.Join(errs...)
}

// Share is one slice of a population mix: a fraction of the enrolled
// participants running as the named catalog profile or an inline Custom
// definition.
type Share struct {
	// Profile names a catalog entry; ignored when Custom is set.
	Profile string `json:"profile,omitempty"`
	// Fraction of the population in this share. All-zero fractions split
	// the population evenly.
	Fraction float64 `json:"fraction,omitempty"`
	// Custom inlines a profile definition instead of a catalog name.
	Custom *Profile `json:"custom,omitempty"`
}

// Spec is the unified scenario description — the one typed object every
// entry point (fedsearch, fedrpc, fedserve jobs, benchprofiles) consumes.
type Spec struct {
	// Name labels the scenario in reports; optional.
	Name string `json:"name,omitempty"`
	// Population is the device-profile mix. Empty means "no profiles":
	// every participant keeps the substrate defaults.
	Population []Share `json:"population,omitempty"`
	// Skew, when set, overrides every profile's SkewAlpha with one
	// population-wide partition spec.
	Skew *Skew `json:"skew,omitempty"`
	// Personalize switches the search to federated-body/local-head mode:
	// the supernet body is shared and aggregated as usual while each
	// client trains a private classifier head that never leaves the device.
	Personalize bool `json:"personalize,omitempty"`
	// HeadLR is the local head's SGD learning rate (0 = the run's ThetaLR).
	HeadLR float64 `json:"head_lr,omitempty"`
}

// IsZero reports whether the spec requests nothing beyond the defaults (a
// zero Spec must lower to a no-op).
func (s *Spec) IsZero() bool {
	return s == nil || (len(s.Population) == 0 && s.Skew == nil && !s.Personalize && s.HeadLR == 0)
}

// Validate checks the whole spec and reports every problem found — not
// just the first — joined into one error, so a hand-written scenario file
// is fixable in a single pass.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	var errs []error
	sum := 0.0
	zeros := 0
	for i, sh := range s.Population {
		switch {
		case sh.Custom != nil:
			if err := sh.Custom.validate(); err != nil {
				errs = append(errs, fmt.Errorf("population[%d]: %w", i, err))
			}
		case sh.Profile == "":
			errs = append(errs, fmt.Errorf("population[%d]: no profile name and no custom definition", i))
		default:
			if _, err := Lookup(sh.Profile); err != nil {
				errs = append(errs, fmt.Errorf("population[%d]: %w", i, err))
			}
		}
		if sh.Fraction < 0 {
			errs = append(errs, fmt.Errorf("population[%d]: fraction %v must be >= 0", i, sh.Fraction))
		}
		if sh.Fraction == 0 {
			zeros++
		}
		sum += sh.Fraction
	}
	if len(s.Population) > 0 && sum == 0 && zeros != len(s.Population) {
		// unreachable with non-negative fractions, but keep the invariant obvious
		errs = append(errs, errors.New("population fractions sum to zero"))
	}
	if len(s.Population) > 0 && zeros > 0 && zeros != len(s.Population) {
		errs = append(errs, fmt.Errorf("population mixes zero and non-zero fractions (%d of %d are zero): state every fraction or none", zeros, len(s.Population)))
	}
	if s.Skew != nil {
		if err := s.Skew.validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if s.HeadLR < 0 {
		errs = append(errs, fmt.Errorf("head_lr %v must be >= 0", s.HeadLR))
	}
	if s.HeadLR > 0 && !s.Personalize {
		errs = append(errs, errors.New("head_lr set without personalize"))
	}
	return errors.Join(errs...)
}

// Resolve materializes the population's concrete profiles and normalized
// fractions (catalog names looked up, even split applied when no fractions
// were stated). The spec must have validated.
func (s *Spec) Resolve() ([]Profile, []float64, error) {
	if s == nil || len(s.Population) == 0 {
		return nil, nil, nil
	}
	profiles := make([]Profile, len(s.Population))
	fracs := make([]float64, len(s.Population))
	sum := 0.0
	for i, sh := range s.Population {
		if sh.Custom != nil {
			profiles[i] = *sh.Custom
		} else {
			p, err := Lookup(sh.Profile)
			if err != nil {
				return nil, nil, err
			}
			profiles[i] = p
		}
		fracs[i] = sh.Fraction
		sum += sh.Fraction
	}
	if sum == 0 {
		for i := range fracs {
			fracs[i] = 1
		}
		sum = float64(len(fracs))
	}
	for i := range fracs {
		fracs[i] /= sum
	}
	return profiles, fracs, nil
}

// splitmix64 is the same avalanche mixer the cohort sampler uses: every
// bit of the input affects every bit of the output, so adjacent seeds give
// unrelated assignments.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Assign deterministically maps each of k enrolled participants to a
// profile index. Counts come from largest-remainder rounding of the
// normalized fractions (so a 70/30 mix of 10 is exactly 7 and 3), and the
// placement is a seeded shuffle — a pure function of (fracs, k, seed),
// independent of materialization order, worker count, and process.
func Assign(fracs []float64, k int, seed int64) []int {
	if len(fracs) == 0 || k <= 0 {
		return nil
	}
	counts := countsFor(fracs, k)
	out := make([]int, 0, k)
	for p, c := range counts {
		for i := 0; i < c; i++ {
			out = append(out, p)
		}
	}
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ 0xa5ce11a71e5))))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// countsFor converts fractions into integer counts summing to k
// (largest-remainder rounding, ties to the lower profile index).
func countsFor(fracs []float64, k int) []int {
	counts := make([]int, len(fracs))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(fracs))
	total := 0
	for i, f := range fracs {
		exact := f * float64(k)
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		total += counts[i]
	}
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for i := 0; total < k; i++ {
		counts[rems[i%len(rems)].idx]++
		total++
	}
	return counts
}

// Trace samples the profile's bandwidth series for a run of the given
// length. Profiles with neither phases nor a fixed rate return a zero
// trace (the substrate's default bandwidth applies).
func (p Profile) Trace(rounds int, rng *rand.Rand) (nettrace.Trace, error) {
	if p.FixedMbps > 0 {
		return nettrace.Flat(p.FixedMbps, rounds), nil
	}
	if len(p.Network) == 0 {
		return nettrace.Trace{}, nil
	}
	phases := make([]nettrace.PhaseSpec, len(p.Network))
	for i, ph := range p.Network {
		r, err := nettrace.ParseRegime(ph.Regime)
		if err != nil {
			return nettrace.Trace{}, err
		}
		phases[i] = nettrace.PhaseSpec{Regime: r, Rounds: ph.Rounds}
	}
	return nettrace.GeneratePhases(phases, rounds, rng)
}

// ParticipantTrace samples participant pid's bandwidth series for a
// rounds-long run, seeded purely by (seed, pid) — never by materialization
// order — so a lazily built population draws the same trace as an eager
// one, on every process, at every worker count.
func (p Profile) ParticipantTrace(rounds int, seed int64, pid int) (nettrace.Trace, error) {
	mix := splitmix64(splitmix64(uint64(seed)) ^ uint64(pid)*0x9e3779b97f4a7c15)
	return p.Trace(rounds, rand.New(rand.NewSource(int64(mix))))
}

// Speed returns the effective compute multiplier (0 means the reference 1).
func (p Profile) SpeedFactor() float64 {
	if p.Speed <= 0 {
		return 1
	}
	return p.Speed
}

// ChaosConfig lowers the profile onto a fault-injection config for an RPC
// worker: the profile's chaos fragment (if any) plus a bandwidth trace
// from its network regime, all seeded from the deployment seed so every
// process derives the same schedule.
func (p Profile) ChaosConfig(seed int64) (chaos.Config, error) {
	cfg, err := chaos.ParseSpec(p.Chaos)
	if err != nil {
		return chaos.Config{}, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = seed
	}
	if len(cfg.Trace.Mbps) == 0 {
		// An hour of 1s samples, like the chaos regime= key.
		tr, err := p.Trace(3600, rand.New(rand.NewSource(cfg.Seed+77)))
		if err != nil {
			return chaos.Config{}, err
		}
		if len(tr.Mbps) > 0 {
			cfg.Trace = tr
		}
	}
	return cfg, cfg.Validate()
}

// PartitionFor splits the training samples across k participants honoring
// the per-profile skew: each profile's member group receives a
// proportional, IID slice of the data and then partitions it internally
// with the profile's Dirichlet alpha (0 = IID within the group). override
// (the Spec-level Skew) replaces every profile's alpha. The result is a
// deterministic function of the rng stream; with no profiles the caller
// should use the plain data partitioners instead.
func PartitionFor(labels []int, k int, assignment []int, profiles []Profile, override *Skew, rng *rand.Rand) (data.Partition, error) {
	if len(assignment) != k {
		return data.Partition{}, fmt.Errorf("scenario: %d assignments for %d participants", len(assignment), k)
	}
	if len(labels) < k {
		return data.Partition{}, fmt.Errorf("scenario: cannot split %d samples across %d participants", len(labels), k)
	}
	// Group members by profile, ascending id within each group.
	members := make([][]int, len(profiles))
	for pid, g := range assignment {
		if g < 0 || g >= len(profiles) {
			return data.Partition{}, fmt.Errorf("scenario: assignment[%d]=%d outside %d profiles", pid, g, len(profiles))
		}
		members[g] = append(members[g], pid)
	}
	// Deal every training index to a group, proportionally by member
	// count, from one global shuffle.
	perm := rng.Perm(len(labels))
	counts := make([]float64, len(profiles))
	for g := range profiles {
		counts[g] = float64(len(members[g])) / float64(k)
	}
	groupSizes := countsFor(counts, len(labels))
	out := make([][]int, k)
	start := 0
	for g := range profiles {
		idxs := perm[start : start+groupSizes[g]]
		start += groupSizes[g]
		if len(members[g]) == 0 {
			continue
		}
		alpha := profiles[g].SkewAlpha
		if override != nil {
			if override.Kind == SkewIID {
				alpha = 0
			} else {
				alpha = override.Alpha
			}
		}
		if len(idxs) < len(members[g]) {
			return data.Partition{}, fmt.Errorf("scenario: profile %q group has %d samples for %d participants",
				profiles[g].Name, len(idxs), len(members[g]))
		}
		if alpha <= 0 {
			// IID within the group: deal the (already shuffled) slice.
			for i, idx := range idxs {
				pid := members[g][i%len(members[g])]
				out[pid] = append(out[pid], idx)
			}
			continue
		}
		groupLabels := make([]int, len(idxs))
		for i, idx := range idxs {
			groupLabels[i] = labels[idx]
		}
		sub, err := data.DirichletPartition(groupLabels, len(members[g]), alpha, rng)
		if err != nil {
			return data.Partition{}, fmt.Errorf("scenario: profile %q: %w", profiles[g].Name, err)
		}
		for j, local := range sub.Indices {
			pid := members[g][j]
			for _, li := range local {
				out[pid] = append(out[pid], idxs[li])
			}
		}
	}
	return data.Partition{Indices: out}, nil
}

// PersonalTestIndices builds a per-client test set matching the client's
// label distribution: for each class, the first ceil(dist[c]*n) test
// indices of that class, in dataset order — deterministic, no RNG. This is
// the evaluation a personalized head is for: accuracy on the distribution
// the device actually sees.
func PersonalTestIndices(dist []float64, testLabels []int, n int) []int {
	byClass := make([][]int, len(dist))
	for i, y := range testLabels {
		if y >= 0 && y < len(byClass) {
			byClass[y] = append(byClass[y], i)
		}
	}
	var out []int
	for c, frac := range dist {
		if frac <= 0 {
			continue
		}
		want := int(frac*float64(n) + 0.999999)
		if want > len(byClass[c]) {
			want = len(byClass[c])
		}
		out = append(out, byClass[c][:want]...)
	}
	sort.Ints(out)
	return out
}
