// Package data provides the synthetic image-classification datasets that
// stand in for CIFAR10 / SVHN / CIFAR100 (see DESIGN.md §2), the Dirichlet
// non-i.i.d. partitioner from FedNAS that the paper uses, batching, and the
// paper's augmentation pipeline (random crop, horizontal flip, cutout).
//
// Each synthetic class is a smooth random prototype field; samples are
// scaled, shifted, noised copies, with a controllable confusion term that
// blends in a neighbouring class's prototype so that classes overlap and
// architecture choice actually matters.
package data

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/tensor"
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name          string
	NumClasses    int
	Channels      int
	Height, Width int
	TrainPerClass int
	TestPerClass  int
	// Noise is the per-pixel Gaussian noise scale.
	Noise float64
	// Confusion in [0,1) blends each sample with the next class's
	// prototype, controlling class overlap (task difficulty).
	Confusion float64
	Seed      int64
}

// CIFAR10S is the CIFAR10 stand-in: 10 classes, moderate difficulty.
func CIFAR10S() Spec {
	return Spec{
		Name: "cifar10s", NumClasses: 10, Channels: 3, Height: 8, Width: 8,
		TrainPerClass: 64, TestPerClass: 16, Noise: 1.1, Confusion: 0.35, Seed: 1001,
	}
}

// SVHNS is the SVHN stand-in: 10 classes, easier than CIFAR10S (the paper's
// SVHN search converges in fewer steps).
func SVHNS() Spec {
	return Spec{
		Name: "svhns", NumClasses: 10, Channels: 3, Height: 8, Width: 8,
		TrainPerClass: 64, TestPerClass: 16, Noise: 0.8, Confusion: 0.2, Seed: 2002,
	}
}

// CIFAR100S is the CIFAR100 stand-in used by the transfer experiments:
// more classes, fewer examples per class, harder.
func CIFAR100S() Spec {
	return Spec{
		Name: "cifar100s", NumClasses: 20, Channels: 3, Height: 8, Width: 8,
		TrainPerClass: 32, TestPerClass: 8, Noise: 1.3, Confusion: 0.45, Seed: 3003,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch {
	case s.NumClasses < 2:
		return fmt.Errorf("data: NumClasses %d < 2", s.NumClasses)
	case s.Channels <= 0 || s.Height <= 0 || s.Width <= 0:
		return fmt.Errorf("data: bad image dims %dx%dx%d", s.Channels, s.Height, s.Width)
	case s.TrainPerClass <= 0 || s.TestPerClass <= 0:
		return fmt.Errorf("data: per-class counts must be positive")
	case s.Confusion < 0 || s.Confusion >= 1:
		return fmt.Errorf("data: Confusion %v outside [0,1)", s.Confusion)
	}
	return nil
}

// Dataset is a generated train/test split.
type Dataset struct {
	Spec        Spec
	TrainImages *tensor.Tensor // [Ntrain, C, H, W]
	TrainLabels []int
	TestImages  *tensor.Tensor // [Ntest, C, H, W]
	TestLabels  []int

	prototypes []*tensor.Tensor // per-class [C,H,W]
}

// Generate builds the dataset deterministically from spec.Seed.
func Generate(spec Spec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Dataset{Spec: spec}
	d.prototypes = make([]*tensor.Tensor, spec.NumClasses)
	for c := range d.prototypes {
		d.prototypes[c] = smoothField(rng, spec.Channels, spec.Height, spec.Width)
	}
	var err error
	d.TrainImages, d.TrainLabels, err = d.sampleSplit(rng, spec.TrainPerClass)
	if err != nil {
		return nil, err
	}
	d.TestImages, d.TestLabels, err = d.sampleSplit(rng, spec.TestPerClass)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// NumTrain returns the number of training samples.
func (d *Dataset) NumTrain() int { return len(d.TrainLabels) }

// NumTest returns the number of test samples.
func (d *Dataset) NumTest() int { return len(d.TestLabels) }

// Image returns a copy of training sample i as a [1,C,H,W] tensor.
func (d *Dataset) Image(i int) *tensor.Tensor {
	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	img := tensor.New(1, c, h, w)
	size := c * h * w
	copy(img.Data(), d.TrainImages.Data()[i*size:(i+1)*size])
	return img
}

// Gather builds a batch tensor and label slice from training indices.
func (d *Dataset) Gather(indices []int) (*tensor.Tensor, []int) {
	return gather(d.TrainImages, d.TrainLabels, indices, d.Spec)
}

// GatherInto is Gather with caller-provided buffers: dst is reused when its
// shape matches the batch and labelBuf's backing array is reused when large
// enough. It returns the (possibly newly allocated) batch and labels.
func (d *Dataset) GatherInto(dst *tensor.Tensor, labelBuf []int, indices []int) (*tensor.Tensor, []int) {
	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	size := c * h * w
	if dst == nil || !dst.ShapeIs(len(indices), c, h, w) {
		dst = tensor.New(len(indices), c, h, w)
	}
	if cap(labelBuf) < len(indices) {
		labelBuf = make([]int, len(indices))
	}
	labelBuf = labelBuf[:len(indices)]
	od, id := dst.Data(), d.TrainImages.Data()
	for bi, idx := range indices {
		copy(od[bi*size:(bi+1)*size], id[idx*size:(idx+1)*size])
		labelBuf[bi] = d.TrainLabels[idx]
	}
	return dst, labelBuf
}

// GatherTest builds a batch tensor and label slice from test indices.
func (d *Dataset) GatherTest(indices []int) (*tensor.Tensor, []int) {
	return gather(d.TestImages, d.TestLabels, indices, d.Spec)
}

func gather(images *tensor.Tensor, labels []int, indices []int, spec Spec) (*tensor.Tensor, []int) {
	c, h, w := spec.Channels, spec.Height, spec.Width
	size := c * h * w
	out := tensor.New(len(indices), c, h, w)
	outLabels := make([]int, len(indices))
	od, id := out.Data(), images.Data()
	for bi, idx := range indices {
		copy(od[bi*size:(bi+1)*size], id[idx*size:(idx+1)*size])
		outLabels[bi] = labels[idx]
	}
	return out, outLabels
}

func (d *Dataset) sampleSplit(rng *rand.Rand, perClass int) (*tensor.Tensor, []int, error) {
	spec := d.Spec
	n := spec.NumClasses * perClass
	c, h, w := spec.Channels, spec.Height, spec.Width
	images := tensor.New(n, c, h, w)
	labels := make([]int, n)
	size := c * h * w
	// Interleave classes so any prefix is class-balanced.
	for i := 0; i < n; i++ {
		class := i % spec.NumClasses
		labels[i] = class
		proto := d.prototypes[class].Data()
		confuse := d.prototypes[(class+1)%spec.NumClasses].Data()
		scale := 0.8 + 0.4*rng.Float64()
		mix := spec.Confusion * rng.Float64()
		dst := images.Data()[i*size : (i+1)*size]
		for j := 0; j < size; j++ {
			dst[j] = scale*((1-mix)*proto[j]+mix*confuse[j]) + spec.Noise*rng.NormFloat64()
		}
	}
	return images, labels, nil
}

// smoothField builds a [C,H,W] prototype by bilinearly upsampling a coarse
// random grid, producing spatial structure a convolution can exploit.
func smoothField(rng *rand.Rand, c, h, w int) *tensor.Tensor {
	const coarse = 3
	out := tensor.New(c, h, w)
	od := out.Data()
	for ch := 0; ch < c; ch++ {
		grid := make([]float64, coarse*coarse)
		for i := range grid {
			grid[i] = rng.NormFloat64()
		}
		for y := 0; y < h; y++ {
			fy := float64(y) / float64(h-1) * float64(coarse-1)
			y0 := int(fy)
			if y0 >= coarse-1 {
				y0 = coarse - 2
			}
			ty := fy - float64(y0)
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(w-1) * float64(coarse-1)
				x0 := int(fx)
				if x0 >= coarse-1 {
					x0 = coarse - 2
				}
				tx := fx - float64(x0)
				v := (1-ty)*((1-tx)*grid[y0*coarse+x0]+tx*grid[y0*coarse+x0+1]) +
					ty*((1-tx)*grid[(y0+1)*coarse+x0]+tx*grid[(y0+1)*coarse+x0+1])
				od[(ch*h+y)*w+x] = v
			}
		}
	}
	return out
}
