package data

import (
	"fmt"
	"math/rand"
)

// Batcher draws mini-batches without replacement from a fixed index pool,
// reshuffling at each epoch boundary (the participant-side "split local
// dataset into batches" of Alg. 1 line 38).
type Batcher struct {
	pool []int
	pos  int
	rng  *rand.Rand
}

// NewBatcher builds a batcher over a participant's index pool. The pool is
// copied.
func NewBatcher(pool []int, rng *rand.Rand) (*Batcher, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("data: empty batch pool")
	}
	b := &Batcher{pool: append([]int(nil), pool...), rng: rng}
	b.shuffle()
	return b, nil
}

// Next returns the next batch of up to size indices; it wraps to a new
// shuffled epoch when the pool is exhausted. Batches never exceed the pool.
func (b *Batcher) Next(size int) []int {
	if size > len(b.pool) {
		size = len(b.pool)
	}
	if b.pos+size > len(b.pool) {
		b.shuffle()
		b.pos = 0
	}
	out := append([]int(nil), b.pool[b.pos:b.pos+size]...)
	b.pos += size
	return out
}

// PoolSize returns the number of indices the batcher cycles through.
func (b *Batcher) PoolSize() int { return len(b.pool) }

// State returns the batcher's resumable state: a copy of the current
// (shuffled) pool order and the position within the epoch. Together with
// the RNG stream position this is everything a checkpoint needs to
// continue the batch sequence exactly where it stopped.
func (b *Batcher) State() (pool []int, pos int) {
	return append([]int(nil), b.pool...), b.pos
}

// RestoreState installs a pool order and cursor captured by State. The
// incoming pool must be a permutation of the batcher's own — the shard
// membership is construction state, only its order is resumable.
func (b *Batcher) RestoreState(pool []int, pos int) error {
	if len(pool) != len(b.pool) {
		return fmt.Errorf("data: restore pool size %d != %d", len(pool), len(b.pool))
	}
	if pos < 0 || pos > len(pool) {
		return fmt.Errorf("data: restore position %d outside pool of %d", pos, len(pool))
	}
	counts := make(map[int]int, len(b.pool))
	for _, v := range b.pool {
		counts[v]++
	}
	for _, v := range pool {
		counts[v]--
		if counts[v] < 0 {
			return fmt.Errorf("data: restore pool is not a permutation (unexpected index %d)", v)
		}
	}
	copy(b.pool, pool)
	b.pos = pos
	return nil
}

func (b *Batcher) shuffle() {
	b.rng.Shuffle(len(b.pool), func(i, j int) {
		b.pool[i], b.pool[j] = b.pool[j], b.pool[i]
	})
}
