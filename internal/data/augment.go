package data

import (
	"math/rand"

	"fedrlnas/internal/tensor"
)

// AugmentConfig mirrors the paper's Table I augmentation hyperparameters.
type AugmentConfig struct {
	// RandomClip is the maximum absolute shift (pixels) of the random crop
	// ("random clip 4" in Table I, scaled down for 8×8 images).
	RandomClip int
	// FlipProb is the horizontal-flip probability ("0.5" in Table I).
	FlipProb float64
	// Cutout is the side length of the zeroed square ("cutout 16", scaled
	// down); 0 disables cutout.
	Cutout int
}

// DefaultAugment returns the Table I augmentation scaled to 8×8 images.
func DefaultAugment() AugmentConfig {
	return AugmentConfig{RandomClip: 1, FlipProb: 0.5, Cutout: 3}
}

// Apply augments a batch [N,C,H,W] in place-free fashion, returning a new
// tensor. A zero-valued config is the identity.
func (a AugmentConfig) Apply(batch *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
	return a.ApplyInto(nil, batch, rng)
}

// ApplyInto is Apply with a caller-provided output buffer, reused when its
// shape matches the batch (allocated otherwise). The input batch is left
// untouched, and the RNG draw sequence is identical to Apply's.
func (a AugmentConfig) ApplyInto(dst, batch *tensor.Tensor, rng *rand.Rand) *tensor.Tensor {
	n, c, h, w := batch.Dim(0), batch.Dim(1), batch.Dim(2), batch.Dim(3)
	if dst == nil || !dst.ShapeIs(n, c, h, w) {
		dst = tensor.New(n, c, h, w)
	}
	sd, dd := batch.Data(), dst.Data()
	size := c * h * w
	for b := 0; b < n; b++ {
		src := sd[b*size : (b+1)*size]
		img := dd[b*size : (b+1)*size]
		if a.RandomClip > 0 {
			dy := rng.Intn(2*a.RandomClip+1) - a.RandomClip
			dx := rng.Intn(2*a.RandomClip+1) - a.RandomClip
			shiftInto(img, src, c, h, w, dy, dx)
		} else {
			copy(img, src)
		}
		if a.FlipProb > 0 && rng.Float64() < a.FlipProb {
			flipH(img, c, h, w)
		}
		if a.Cutout > 0 {
			cy := rng.Intn(h)
			cx := rng.Intn(w)
			cutout(img, c, h, w, cy, cx, a.Cutout)
		}
	}
	return dst
}

// shiftInto writes src translated by (dy, dx) into dst, zero-filling exposed
// pixels. Reading from the untouched source image makes the shift a pure
// scatter — no temporary copy is needed.
func shiftInto(dst, src []float64, c, h, w, dy, dx int) {
	if dy == 0 && dx == 0 {
		copy(dst, src)
		return
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := y - dy
			for x := 0; x < w; x++ {
				sx := x - dx
				if sy < 0 || sy >= h || sx < 0 || sx >= w {
					dst[base+y*w+x] = 0
				} else {
					dst[base+y*w+x] = src[base+sy*w+sx]
				}
			}
		}
	}
}

// flipH mirrors every channel horizontally.
func flipH(img []float64, c, h, w int) {
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			row := img[base+y*w : base+(y+1)*w]
			for x := 0; x < w/2; x++ {
				row[x], row[w-1-x] = row[w-1-x], row[x]
			}
		}
	}
}

// cutout zeroes a size×size square centred at (cy, cx) in every channel.
func cutout(img []float64, c, h, w, cy, cx, size int) {
	half := size / 2
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := cy - half; y <= cy+half; y++ {
			if y < 0 || y >= h {
				continue
			}
			for x := cx - half; x <= cx+half; x++ {
				if x < 0 || x >= w {
					continue
				}
				img[base+y*w+x] = 0
			}
		}
	}
}
