package data_test

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/data"
)

// Example generates the CIFAR10 stand-in and splits it non-i.i.d. across
// ten participants with the paper's Dirichlet(0.5) construction.
func Example() {
	ds, err := data.Generate(data.CIFAR10S())
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(7))
	part, err := data.DirichletPartition(ds.TrainLabels, 10, 0.5, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println("participants:", part.NumParticipants())
	fmt.Println("all samples covered:", sum(part.Sizes()) == ds.NumTrain())
	fmt.Println("heterogeneous:", data.Heterogeneity(part, ds.TrainLabels, ds.Spec.NumClasses) > 0.2)
	// Output:
	// participants: 10
	// all samples covered: true
	// heterogeneous: true
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
