package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedrlnas/internal/tensor"
)

func smallSpec() Spec {
	return Spec{
		Name: "tiny", NumClasses: 4, Channels: 2, Height: 6, Width: 6,
		TrainPerClass: 20, TestPerClass: 5, Noise: 1.2, Confusion: 0.3, Seed: 42,
	}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTrain() != 80 || d.NumTest() != 20 {
		t.Fatalf("sizes %d/%d, want 80/20", d.NumTrain(), d.NumTest())
	}
	if d.TrainImages.Dim(0) != 80 || d.TrainImages.Dim(1) != 2 {
		t.Fatalf("train image shape %v", d.TrainImages.Shape())
	}
	counts := make([]int, 4)
	for _, y := range d.TrainLabels {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Errorf("class %d has %d train samples, want 20", c, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !a.TrainImages.AllClose(b.TrainImages, 0) {
		t.Error("same seed must produce identical data")
	}
	spec := smallSpec()
	spec.Seed = 43
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrainImages.AllClose(c.TrainImages, 1e-9) {
		t.Error("different seeds must differ")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := smallSpec()
	bad.NumClasses = 1
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for one class")
	}
	bad = smallSpec()
	bad.Confusion = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("expected error for confusion >= 1")
	}
}

// Classes must be statistically distinguishable: a nearest-prototype
// classifier on the noisy samples should beat chance by a wide margin.
func TestClassesAreLearnable(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	size := 2 * 6 * 6
	for i := 0; i < d.NumTrain(); i++ {
		img := d.TrainImages.Data()[i*size : (i+1)*size]
		best, bestC := math.Inf(1), -1
		for c, proto := range d.prototypes {
			pd := proto.Data()
			dist := 0.0
			for j := range pd {
				diff := img[j] - pd[j]
				dist += diff * diff
			}
			if dist < best {
				best, bestC = dist, c
			}
		}
		if bestC == d.TrainLabels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(d.NumTrain())
	if acc < 0.5 {
		t.Errorf("nearest-prototype accuracy %.2f; classes not learnable", acc)
	}
	if acc > 0.999 {
		t.Errorf("nearest-prototype accuracy %.3f; task trivially easy", acc)
	}
}

func TestGatherAlignment(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	x, y := d.Gather([]int{3, 7})
	if x.Dim(0) != 2 || len(y) != 2 {
		t.Fatalf("gather shapes %v / %d", x.Shape(), len(y))
	}
	if y[0] != d.TrainLabels[3] || y[1] != d.TrainLabels[7] {
		t.Error("gather labels misaligned")
	}
	img := d.Image(3)
	size := 2 * 6 * 6
	for j := 0; j < size; j++ {
		if x.Data()[j] != img.Data()[j] {
			t.Fatal("gather images misaligned")
		}
	}
}

func TestIIDPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := IIDPartition(100, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	total := 0
	for _, idx := range p.Indices {
		if len(idx) < 100/7 {
			t.Errorf("shard too small: %d", len(idx))
		}
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != 100 {
		t.Errorf("assigned %d indices, want 100", total)
	}
	if _, err := IIDPartition(3, 5, rng); err == nil {
		t.Error("expected error when n < k")
	}
}

func TestDirichletPartitionCoversAllSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := make([]int, 200)
	for i := range labels {
		labels[i] = i % 5
	}
	p, err := DirichletPartition(labels, 8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for k, idx := range p.Indices {
		if len(idx) == 0 {
			t.Errorf("participant %d empty", k)
		}
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 200 {
		t.Errorf("covered %d samples, want 200", len(seen))
	}
}

func TestDirichletMoreSkewedThanIID(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := make([]int, 400)
	for i := range labels {
		labels[i] = i % 10
	}
	iid, err := IIDPartition(len(labels), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DirichletPartition(labels, 10, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	hIID := Heterogeneity(iid, labels, 10)
	hDir := Heterogeneity(dir, labels, 10)
	if hDir <= hIID {
		t.Errorf("Dirichlet heterogeneity %.3f <= IID %.3f", hDir, hIID)
	}
	// Lower alpha must be more skewed (statistically; fixed seed).
	dirLow, err := DirichletPartition(labels, 10, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h := Heterogeneity(dirLow, labels, 10); h <= hDir {
		t.Errorf("alpha=0.05 heterogeneity %.3f <= alpha=0.5 %.3f", h, hDir)
	}
}

func TestDirichletValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := DirichletPartition([]int{0, 1}, 5, 0.5, rng); err == nil {
		t.Error("expected error when samples < participants")
	}
	if _, err := DirichletPartition([]int{0, 1, 2}, 2, -1, rng); err == nil {
		t.Error("expected error for non-positive alpha")
	}
}

func TestLabelDistributionRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := make([]int, 60)
	for i := range labels {
		labels[i] = i % 3
	}
	p, err := DirichletPartition(labels, 4, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range LabelDistribution(p, labels, 3) {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("participant %d distribution sums to %v", k, sum)
		}
	}
}

// Property: Dirichlet proportions are a valid distribution for any alpha>0.
func TestDirichletSamplerProperty(t *testing.T) {
	f := func(seed int64, rawAlpha float64) bool {
		alpha := math.Abs(math.Mod(rawAlpha, 5)) + 0.01
		rng := rand.New(rand.NewSource(seed))
		p := dirichlet(rng, alpha, 6)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGammaSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range []float64{0.5, 1, 2.5} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) sample mean %.3f, want ~%v", shape, mean, shape)
		}
	}
}

func TestProportionsToCutsExact(t *testing.T) {
	cases := []struct {
		props []float64
		n     int
	}{
		{[]float64{0.5, 0.5}, 7},
		{[]float64{0.333, 0.333, 0.334}, 10},
		{[]float64{1, 0, 0}, 5},
		{[]float64{0.1, 0.2, 0.3, 0.4}, 1},
	}
	for _, tc := range cases {
		cuts := proportionsToCuts(tc.props, tc.n)
		total := 0
		for _, c := range cuts {
			if c < 0 {
				t.Fatalf("negative cut in %v", cuts)
			}
			total += c
		}
		if total != tc.n {
			t.Errorf("cuts %v sum to %d, want %d", cuts, total, tc.n)
		}
	}
}

func TestBatcherEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b, err := NewBatcher([]int{10, 11, 12, 13, 14}, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	// Two epochs' worth of batches of 2 (batch never exceeds pool).
	for i := 0; i < 5; i++ {
		for _, idx := range b.Next(2) {
			seen[idx]++
		}
	}
	for idx, count := range seen {
		if idx < 10 || idx > 14 {
			t.Fatalf("unknown index %d", idx)
		}
		if count == 0 {
			t.Errorf("index %d never drawn", idx)
		}
	}
	// Oversized requests are clamped to the pool.
	if got := len(b.Next(100)); got != 5 {
		t.Errorf("oversized batch len %d, want 5", got)
	}
	if _, err := NewBatcher(nil, rng); err == nil {
		t.Error("expected error for empty pool")
	}
}

func TestAugmentPreservesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	batch := tensor.Randn(rng, 1, 4, 3, 8, 8)
	out := DefaultAugment().Apply(batch, rng)
	if !out.SameShape(batch) {
		t.Fatalf("augment changed shape %v -> %v", batch.Shape(), out.Shape())
	}
	// Input must be untouched.
	batch2 := batch.Clone()
	DefaultAugment().Apply(batch, rng)
	if !batch.AllClose(batch2, 0) {
		t.Error("augment mutated its input")
	}
}

func TestAugmentZeroConfigIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	batch := tensor.Randn(rng, 1, 2, 3, 6, 6)
	out := AugmentConfig{}.Apply(batch, rng)
	if !out.AllClose(batch, 0) {
		t.Error("zero config must be identity")
	}
}

func TestFlipIsInvolution(t *testing.T) {
	img := []float64{1, 2, 3, 4, 5, 6}
	orig := append([]float64(nil), img...)
	flipH(img, 1, 2, 3)
	if img[0] != 3 || img[2] != 1 {
		t.Errorf("flip result %v", img)
	}
	flipH(img, 1, 2, 3)
	for i := range img {
		if img[i] != orig[i] {
			t.Fatal("double flip must restore")
		}
	}
}

func TestShiftZeroFills(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	img := make([]float64, len(src))
	shiftInto(img, src, 1, 2, 2, 1, 0) // shift down by 1
	if img[0] != 0 || img[1] != 0 || img[2] != 1 || img[3] != 2 {
		t.Errorf("shift result %v", img)
	}
}

func TestCutoutZeroesSquare(t *testing.T) {
	img := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	cutout(img, 1, 3, 3, 1, 1, 3)
	for i, v := range img {
		if v != 0 {
			t.Fatalf("pixel %d = %v after full cutout", i, v)
		}
	}
}

func TestStandardSpecsValid(t *testing.T) {
	for _, spec := range []Spec{CIFAR10S(), SVHNS(), CIFAR100S()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if CIFAR100S().NumClasses <= CIFAR10S().NumClasses {
		t.Error("CIFAR100S must have more classes than CIFAR10S")
	}
	if SVHNS().Confusion >= CIFAR10S().Confusion {
		t.Error("SVHNS should be easier than CIFAR10S")
	}
}
