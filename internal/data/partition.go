package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Partition assigns training-sample indices to participants.
type Partition struct {
	// Indices[k] lists the training indices owned by participant k.
	Indices [][]int
}

// NumParticipants returns the participant count.
func (p Partition) NumParticipants() int { return len(p.Indices) }

// Sizes returns the per-participant sample counts.
func (p Partition) Sizes() []int {
	out := make([]int, len(p.Indices))
	for i, idx := range p.Indices {
		out[i] = len(idx)
	}
	return out
}

// IIDPartition shuffles n indices and deals them evenly to k participants.
func IIDPartition(n, k int, rng *rand.Rand) (Partition, error) {
	if k <= 0 || n < k {
		return Partition{}, fmt.Errorf("data: cannot split %d samples across %d participants", n, k)
	}
	perm := rng.Perm(n)
	out := make([][]int, k)
	for i, idx := range perm {
		out[i%k] = append(out[i%k], idx)
	}
	return Partition{Indices: out}, nil
}

// DirichletPartition splits samples across k participants with per-class
// proportions drawn from Dir(alpha), the non-i.i.d. construction of FedNAS
// that the paper adopts (alpha = 0.5). Smaller alpha means more skew.
// Every participant is guaranteed at least one sample.
func DirichletPartition(labels []int, k int, alpha float64, rng *rand.Rand) (Partition, error) {
	if k <= 0 || len(labels) < k {
		return Partition{}, fmt.Errorf("data: cannot split %d samples across %d participants", len(labels), k)
	}
	if alpha <= 0 {
		return Partition{}, fmt.Errorf("data: Dirichlet alpha %v must be positive", alpha)
	}
	byClass := make(map[int][]int)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	classes := make([]int, 0, len(byClass))
	for y := range byClass {
		classes = append(classes, y)
	}
	sort.Ints(classes) // deterministic iteration: map order would leak into shards
	out := make([][]int, k)
	for _, y := range classes {
		indices := byClass[y]
		// Shuffle within the class, then carve by Dirichlet proportions.
		rng.Shuffle(len(indices), func(i, j int) {
			indices[i], indices[j] = indices[j], indices[i]
		})
		props := dirichlet(rng, alpha, k)
		cuts := proportionsToCuts(props, len(indices))
		start := 0
		for p := 0; p < k; p++ {
			end := start + cuts[p]
			out[p] = append(out[p], indices[start:end]...)
			start = end
		}
	}
	// Guarantee non-empty shards: steal from the largest.
	for p := 0; p < k; p++ {
		if len(out[p]) > 0 {
			continue
		}
		biggest := 0
		for q := range out {
			if len(out[q]) > len(out[biggest]) {
				biggest = q
			}
		}
		if len(out[biggest]) < 2 {
			return Partition{}, fmt.Errorf("data: not enough samples to cover %d participants", k)
		}
		last := len(out[biggest]) - 1
		out[p] = append(out[p], out[biggest][last])
		out[biggest] = out[biggest][:last]
	}
	return Partition{Indices: out}, nil
}

// LabelDistribution returns, per participant, the fraction of its samples in
// each class — the heterogeneity fingerprint of a partition.
func LabelDistribution(p Partition, labels []int, numClasses int) [][]float64 {
	out := make([][]float64, len(p.Indices))
	for k, idx := range p.Indices {
		row := make([]float64, numClasses)
		for _, i := range idx {
			row[labels[i]]++
		}
		if len(idx) > 0 {
			for c := range row {
				row[c] /= float64(len(idx))
			}
		}
		out[k] = row
	}
	return out
}

// Heterogeneity quantifies non-i.i.d.-ness as the mean total-variation
// distance between each participant's label distribution and the global
// one. 0 means perfectly i.i.d.; it approaches 1 under extreme skew.
func Heterogeneity(p Partition, labels []int, numClasses int) float64 {
	global := make([]float64, numClasses)
	for _, y := range labels {
		global[y]++
	}
	for c := range global {
		global[c] /= float64(len(labels))
	}
	dists := LabelDistribution(p, labels, numClasses)
	total := 0.0
	for _, row := range dists {
		tv := 0.0
		for c := range row {
			tv += math.Abs(row[c] - global[c])
		}
		total += tv / 2
	}
	return total / float64(len(dists))
}

// dirichlet samples a probability vector from Dir(alpha, …, alpha) via
// normalized Gamma draws.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1.0 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// proportionsToCuts converts fractional proportions into integer counts that
// sum exactly to n (largest-remainder rounding).
func proportionsToCuts(props []float64, n int) []int {
	cuts := make([]int, len(props))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(props))
	total := 0
	for i, p := range props {
		exact := p * float64(n)
		cuts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(cuts[i])}
		total += cuts[i]
	}
	// Distribute the remainder to the largest fractional parts.
	for total < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		cuts[rems[best].idx]++
		rems[best].frac = -1
		total++
	}
	return cuts
}
