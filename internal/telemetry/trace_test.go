package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock makes trace output deterministic.
func fixedClock(t *Tracer) {
	t.now = func() time.Time { return time.Unix(12, 345) }
}

func TestTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	fixedClock(tr)

	tr.RoundStart(0)
	tr.SubModelSample(0, 3, 4096)
	tr.TxAssign(0, 3, 2048, 0.25)
	tr.ReplyFresh(0, 3)
	tr.ReplyLate(1, 2, 1)
	tr.ReplyDropped(2, 1, 5)
	tr.ReplyOffline(2, 0)
	tr.AlphaUpdate(2, 1.38)
	tr.RoundTimeout(3, 0.5)
	tr.RoundEnd(3, 1.5, 0.75)
	if tr.Events() != 10 {
		t.Fatalf("Events() = %d, want 10", tr.Events())
	}

	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		line := sc.Text()
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		for _, key := range []string{"ts", "event", "round", "bytes", "staleness", "seconds", "value"} {
			if _, ok := m[key]; !ok {
				t.Errorf("line %q missing %q", line, key)
			}
		}
		names = append(names, m["event"].(string))
	}
	want := []string{
		EventRoundStart, EventSubModelSample, EventTxAssign, EventReplyFresh,
		EventReplyLate, EventReplyDropped, EventReplyOffline, EventAlphaUpdate,
		EventRoundTimeout, EventRoundEnd,
	}
	if len(names) != len(want) {
		t.Fatalf("%d lines, want %d", len(names), len(want))
	}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("line %d event %q, want %q", i, n, want[i])
		}
	}
}

func TestTracerFieldValues(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	fixedClock(tr)
	tr.Emit(Event{Name: "x", Round: 7, Participant: 4, Bytes: 99, Staleness: 2, Seconds: 0.5, Value: 0.25})
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"round": 7, "participant": 4, "bytes": 99, "staleness": 2,
		"seconds": 0.5, "value": 0.25,
	}
	for k, want := range checks {
		if got := m[k].(float64); got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}

	// Round-scoped events omit the participant field entirely.
	buf.Reset()
	tr.RoundStart(1)
	if strings.Contains(buf.String(), "participant") {
		t.Errorf("round.start should omit participant: %s", buf.String())
	}

	// NaN/Inf must not produce invalid JSON.
	buf.Reset()
	tr.Emit(Event{Name: "x", Participant: -1, Seconds: math.Inf(1), Value: math.NaN()})
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("NaN value broke JSON: %v (%s)", err, buf.String())
	}
}

func TestNilTracerIsNoOpAndAllocFree(t *testing.T) {
	var tr *Tracer
	// Must not panic, must report zero state.
	tr.RoundStart(1)
	tr.RoundEnd(1, 0, 0)
	if tr.Events() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Error("nil tracer should be inert")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.RoundStart(3)
		tr.SubModelSample(3, 1, 512)
		tr.TxAssign(3, 1, 512, 0.1)
		tr.ReplyFresh(3, 1)
		tr.ReplyLate(3, 2, 1)
		tr.ReplyDropped(3, 0, 4)
		tr.ReplyOffline(3, 0)
		tr.AlphaUpdate(3, 0.5)
		tr.RoundEnd(3, 0.2, 0.9)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per round", allocs)
	}
}

func TestEnabledTracerSteadyStateAllocFree(t *testing.T) {
	// After the reusable buffer warms up, the hand-rolled encoder should
	// not allocate per event either (io.Discard has a zero-cost Write).
	tr := NewJSONLTracer(discard{})
	fixedClock(tr)
	tr.RoundStart(0) // warm the buffer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ReplyFresh(1, 2)
	})
	if allocs != 0 {
		t.Errorf("enabled tracer allocated %.1f times per event", allocs)
	}
}

// discard is io.Discard without the interface-conversion allocation noise.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestOpenJSONLWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.RoundStart(0)
	tr.RoundEnd(0, 0.1, 0.5)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("file has %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid line %q: %v", line, err)
		}
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestTracerRecordsFirstWriteError(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{n: 1})
	fixedClock(tr)
	tr.RoundStart(0)
	tr.RoundStart(1) // fails
	tr.RoundStart(2) // silently skipped
	if tr.Events() != 1 {
		t.Errorf("Events() = %d, want 1", tr.Events())
	}
	if tr.Err() == nil || tr.Close() == nil {
		t.Error("write error not surfaced")
	}
}

// slowWriter widens the torn-write window: each Write yields the scheduler
// partway through, so an unsynchronized tracer would interleave lines.
type slowWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *slowWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	half := len(p) / 2
	w.buf.Write(p[:half])
	runtime.Gosched()
	w.buf.Write(p[half:])
	return len(p), nil
}

// TestTracerConcurrentEmitsAreLineAtomic drives Emit from many goroutines —
// the shape of the parallel round engine, where every in-flight participant
// task emits its own reply span — and asserts that every output line is a
// complete, valid JSON object carrying the participant ID that emitted it.
func TestTracerConcurrentEmitsAreLineAtomic(t *testing.T) {
	const participants = 8
	const perParticipant = 50
	w := &slowWriter{}
	tr := NewJSONLTracer(w)
	fixedClock(tr)

	var wg sync.WaitGroup
	for k := 0; k < participants; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < perParticipant; i++ {
				switch i % 3 {
				case 0:
					tr.ReplyFresh(i, k)
				case 1:
					tr.ReplyLate(i, k, 2)
				default:
					tr.ReplyDropped(i, k, 5)
				}
			}
		}(k)
	}
	wg.Wait()

	if got := tr.Events(); got != participants*perParticipant {
		t.Fatalf("Events() = %d, want %d", got, participants*perParticipant)
	}
	counts := make(map[int]int)
	sc := bufio.NewScanner(bytes.NewReader(w.buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn or invalid line %q: %v", sc.Text(), err)
		}
		p, ok := m["participant"].(float64)
		if !ok {
			t.Fatalf("line missing participant: %q", sc.Text())
		}
		counts[int(p)]++
	}
	if lines != participants*perParticipant {
		t.Fatalf("%d lines, want %d", lines, participants*perParticipant)
	}
	for k := 0; k < participants; k++ {
		if counts[k] != perParticipant {
			t.Errorf("participant %d has %d events, want %d", k, counts[k], perParticipant)
		}
	}
}
