package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fedrlnas/internal/wire"
)

// fixedClock makes trace output deterministic.
func fixedClock(t *Tracer) {
	t.now = func() time.Time { return time.Unix(12, 345) }
}

func TestTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	fixedClock(tr)

	tr.RoundStart(0)
	tr.SubModelSample(0, 3, 4096)
	tr.TxAssign(0, 3, 2048, 0.25)
	tr.ReplyFresh(0, 3)
	tr.ReplyLate(1, 2, 1)
	tr.ReplyDropped(2, 1, 5)
	tr.ReplyOffline(2, 0)
	tr.AlphaUpdate(2, 1.38)
	tr.RoundTimeout(3, 0.5)
	tr.RoundEnd(3, 1.5, 0.75)
	if tr.Events() != 10 {
		t.Fatalf("Events() = %d, want 10", tr.Events())
	}

	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		line := sc.Text()
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		for _, key := range []string{"ts", "event", "round", "bytes", "staleness", "seconds", "value"} {
			if _, ok := m[key]; !ok {
				t.Errorf("line %q missing %q", line, key)
			}
		}
		names = append(names, m["event"].(string))
	}
	want := []string{
		EventRoundStart, EventSubModelSample, EventTxAssign, EventReplyFresh,
		EventReplyLate, EventReplyDropped, EventReplyOffline, EventAlphaUpdate,
		EventRoundTimeout, EventRoundEnd,
	}
	if len(names) != len(want) {
		t.Fatalf("%d lines, want %d", len(names), len(want))
	}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("line %d event %q, want %q", i, n, want[i])
		}
	}
}

func TestTracerFieldValues(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	fixedClock(tr)
	tr.Emit(Event{Name: "x", Round: 7, Participant: 4, Bytes: 99, Staleness: 2, Seconds: 0.5, Value: 0.25})
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"round": 7, "participant": 4, "bytes": 99, "staleness": 2,
		"seconds": 0.5, "value": 0.25,
	}
	for k, want := range checks {
		if got := m[k].(float64); got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}

	// Round-scoped events omit the participant field entirely.
	buf.Reset()
	tr.RoundStart(1)
	if strings.Contains(buf.String(), "participant") {
		t.Errorf("round.start should omit participant: %s", buf.String())
	}

	// NaN/Inf must not produce invalid JSON.
	buf.Reset()
	tr.Emit(Event{Name: "x", Participant: -1, Seconds: math.Inf(1), Value: math.NaN()})
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("NaN value broke JSON: %v (%s)", err, buf.String())
	}
}

func TestNilTracerIsNoOpAndAllocFree(t *testing.T) {
	var tr *Tracer
	// Must not panic, must report zero state.
	tr.RoundStart(1)
	tr.RoundEnd(1, 0, 0)
	if tr.Events() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Error("nil tracer should be inert")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.RoundStart(3)
		tr.SubModelSample(3, 1, 512)
		tr.TxAssign(3, 1, 512, 0.1)
		tr.ReplyFresh(3, 1)
		tr.ReplyLate(3, 2, 1)
		tr.ReplyDropped(3, 0, 4)
		tr.ReplyOffline(3, 0)
		tr.AlphaUpdate(3, 0.5)
		tr.RoundEnd(3, 0.2, 0.9)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f times per round", allocs)
	}
}

func TestEnabledTracerSteadyStateAllocFree(t *testing.T) {
	// After the reusable buffer warms up, the hand-rolled encoder should
	// not allocate per event either (io.Discard has a zero-cost Write).
	tr := NewJSONLTracer(discard{})
	fixedClock(tr)
	tr.RoundStart(0) // warm the buffer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ReplyFresh(1, 2)
	})
	if allocs != 0 {
		t.Errorf("enabled tracer allocated %.1f times per event", allocs)
	}
}

// discard is io.Discard without the interface-conversion allocation noise.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestOpenJSONLWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.RoundStart(0)
	tr.RoundEnd(0, 0.1, 0.5)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("file has %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid line %q: %v", line, err)
		}
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestTracerRecordsFirstWriteError(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{n: 1})
	fixedClock(tr)
	tr.RoundStart(0)
	tr.RoundStart(1) // fails
	tr.RoundStart(2) // silently skipped
	if tr.Events() != 1 {
		t.Errorf("Events() = %d, want 1", tr.Events())
	}
	if tr.Err() == nil || tr.Close() == nil {
		t.Error("write error not surfaced")
	}
}

// slowWriter widens the torn-write window: each Write yields the scheduler
// partway through, so an unsynchronized tracer would interleave lines.
type slowWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *slowWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	half := len(p) / 2
	w.buf.Write(p[:half])
	runtime.Gosched()
	w.buf.Write(p[half:])
	return len(p), nil
}

// TestTracerConcurrentEmitsAreLineAtomic drives Emit from many goroutines —
// the shape of the parallel round engine, where every in-flight participant
// task emits its own reply span — and asserts that every output line is a
// complete, valid JSON object carrying the participant ID that emitted it.
func TestTracerConcurrentEmitsAreLineAtomic(t *testing.T) {
	const participants = 8
	const perParticipant = 50
	w := &slowWriter{}
	tr := NewJSONLTracer(w)
	fixedClock(tr)

	var wg sync.WaitGroup
	for k := 0; k < participants; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < perParticipant; i++ {
				switch i % 3 {
				case 0:
					tr.ReplyFresh(i, k)
				case 1:
					tr.ReplyLate(i, k, 2)
				default:
					tr.ReplyDropped(i, k, 5)
				}
			}
		}(k)
	}
	wg.Wait()

	if got := tr.Events(); got != participants*perParticipant {
		t.Fatalf("Events() = %d, want %d", got, participants*perParticipant)
	}
	counts := make(map[int]int)
	sc := bufio.NewScanner(bytes.NewReader(w.buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("torn or invalid line %q: %v", sc.Text(), err)
		}
		p, ok := m["participant"].(float64)
		if !ok {
			t.Fatalf("line missing participant: %q", sc.Text())
		}
		counts[int(p)]++
	}
	if lines != participants*perParticipant {
		t.Fatalf("%d lines, want %d", lines, participants*perParticipant)
	}
	for k := 0; k < participants; k++ {
		if counts[k] != perParticipant {
			t.Errorf("participant %d has %d events, want %d", k, counts[k], perParticipant)
		}
	}
}

// parseLines decodes every JSONL line in buf.
func parseLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerSpanStamping(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	fixedClock(tr)

	// Untraced: no correlation fields at all.
	tr.RoundStart(0)
	tr.ReplyFresh(0, 1)
	for _, m := range parseLines(t, &buf) {
		for _, k := range []string{"trace", "span", "parent"} {
			if _, ok := m[k]; ok {
				t.Errorf("untraced event has %q: %v", k, m)
			}
		}
	}

	buf.Reset()
	tr.SetTraceID(0xabc)
	tr.RoundStart(1)
	tr.ReplyFresh(1, 2)
	tr.RoundDispatch(1, 100, 0.5)
	lines := parseLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	start := lines[0]
	if start["trace"] != "abc" {
		t.Errorf("round.start trace = %v, want abc", start["trace"])
	}
	span, ok := start["span"].(string)
	if !ok || span == "" {
		t.Fatalf("round.start missing span: %v", start)
	}
	if _, hasParent := start["parent"]; hasParent {
		t.Errorf("round.start must be a root span: %v", start)
	}
	for _, m := range lines[1:] {
		if m["trace"] != "abc" {
			t.Errorf("%v trace = %v, want abc", m["event"], m["trace"])
		}
		if m["parent"] != span {
			t.Errorf("%v parent = %v, want round span %s", m["event"], m["parent"], span)
		}
	}

	// A new round opens a new span; children follow it.
	buf.Reset()
	tr.RoundStart(2)
	tr.ReplyFresh(2, 0)
	lines = parseLines(t, &buf)
	span2 := lines[0]["span"].(string)
	if span2 == span {
		t.Error("round span not rotated between rounds")
	}
	if lines[1]["parent"] != span2 {
		t.Errorf("event parents under stale round span: %v", lines[1])
	}
}

func TestWorkerSpanParenting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf) // worker tracer: no local trace ID
	fixedClock(tr)
	ctx := wire.SpanContext{TraceID: 0xf00d, SpanID: 0xbeef, Round: 3, Participant: 1}
	tr.WorkerSpan(EventWorkerTrain, ctx, 512, 0.25)
	tr.WorkerSpan(EventWorkerDecode, wire.SpanContext{Round: 3, Participant: 1}, 0, 0.1)
	lines := parseLines(t, &buf)
	if lines[0]["trace"] != "f00d" || lines[0]["parent"] != "beef" {
		t.Errorf("worker span not parented from wire context: %v", lines[0])
	}
	if lines[0]["round"].(float64) != 3 || lines[0]["participant"].(float64) != 1 {
		t.Errorf("worker span lost round/participant: %v", lines[0])
	}
	// An untraced wire context degrades to a plain event.
	if _, ok := lines[1]["trace"]; ok {
		t.Errorf("invalid context must not invent a trace: %v", lines[1])
	}
}

func TestTracerCountsDrops(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{n: 1})
	fixedClock(tr)
	reg := NewRegistry()
	c := reg.Counter("trace_dropped_total", "")
	tr.SetDropCounter(c)
	tr.RoundStart(0)
	tr.RoundStart(1) // write fails: dropped
	tr.RoundStart(2) // short-circuited: dropped
	if tr.Events() != 1 {
		t.Errorf("Events() = %d, want 1", tr.Events())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", tr.Dropped())
	}
	if c.Value() != 2 {
		t.Errorf("trace_dropped_total = %d, want 2", c.Value())
	}
	// Without a counter wired, drops are still tracked locally.
	tr2 := NewJSONLTracer(&failWriter{n: 0})
	fixedClock(tr2)
	tr2.RoundStart(0)
	if tr2.Dropped() != 1 {
		t.Errorf("uncounted Dropped() = %d, want 1", tr2.Dropped())
	}
}

func TestEnsureTraceIDAndRoundContext(t *testing.T) {
	var nilTr *Tracer
	if nilTr.EnsureTraceID() != 0 {
		t.Error("nil tracer must report trace ID 0")
	}
	if ctx := nilTr.RoundContext(5); ctx.Valid() {
		t.Error("nil tracer must yield an invalid context")
	}

	tr := NewJSONLTracer(discard{})
	fixedClock(tr)
	if ctx := tr.RoundContext(0); ctx.Valid() {
		t.Error("untraced tracer must yield an invalid context")
	}
	id := tr.EnsureTraceID()
	if id == 0 {
		t.Fatal("EnsureTraceID returned 0")
	}
	if tr.EnsureTraceID() != id {
		t.Error("EnsureTraceID not idempotent")
	}
	tr.RoundStart(7)
	ctx := tr.RoundContext(7)
	if !ctx.Valid() || ctx.TraceID != id || ctx.SpanID == 0 {
		t.Errorf("round context = %+v, want trace %#x with open span", ctx, id)
	}
	if ctx.Round != 7 || ctx.Participant != -1 {
		t.Errorf("round context round/participant = %d/%d", ctx.Round, ctx.Participant)
	}
}

func TestNewSpanIDsAreUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("NewSpanID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %#x after %d draws", id, i)
		}
		seen[id] = true
	}
}

// TestTracedTracerSteadyStateAllocFree extends the alloc-free guarantee to
// traced runs: hex correlation fields reuse the line buffer.
func TestTracedTracerSteadyStateAllocFree(t *testing.T) {
	tr := NewJSONLTracer(discard{})
	fixedClock(tr)
	tr.SetTraceID(NewTraceID())
	tr.RoundStart(0) // warm the buffer, open a span
	ctx := tr.RoundContext(0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ReplyFresh(1, 2)
		tr.RPCCall(ctx, 1, 2, 4096, 0.01, true)
		tr.WorkerSpan(EventWorkerTrain, ctx, 512, 0.02)
	})
	if allocs != 0 {
		t.Errorf("traced tracer allocated %.1f times per event", allocs)
	}
}
