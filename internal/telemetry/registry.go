package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter is a no-op,
// so handles can be carried unconditionally. All methods are lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a process-wide metric namespace. Handles are created (or
// fetched, idempotently) by name; WritePrometheus renders every metric in
// the Prometheus text exposition format with deterministic ordering.
// A nil *Registry hands out nil (no-op) handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.init()
	return r
}

// init lazily allocates the name maps so a zero Registry value works too.
// Callers must hold r.mu.
func (r *Registry) init() {
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
		r.gauges = make(map[string]*Gauge)
		r.hists = make(map[string]*Histogram)
		r.help = make(map[string]string)
	}
}

// validName enforces the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register records name/help, panicking on an invalid name or a name
// already registered as a different kind (programmer errors).
func (r *Registry) register(name, help, kind string, taken ...map[string]bool) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, m := range taken {
		if m[name] {
			panic(fmt.Sprintf("telemetry: metric %q already registered as a different kind (want %s)", name, kind))
		}
	}
	if help != "" {
		r.help[name] = help
	}
}

func keys[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, "counter", keys(r.gauges), keys(r.hists))
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, "gauge", keys(r.counters), keys(r.hists))
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, help, "histogram", keys(r.counters), keys(r.gauges))
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (histograms with cumulative _bucket/_sum/_count series), sorted by
// name for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot under the registry lock; individual metrics have their own
	// synchronization, so reads below are race-free.
	counters, gauges, hists, help := r.counters, r.gauges, r.hists, r.help
	r.mu.Unlock()

	for _, n := range names {
		if h := help[n]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h); err != nil {
				return err
			}
		}
		switch {
		case counters[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n].Value()); err != nil {
				return err
			}
		case gauges[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, gauges[n].Value()); err != nil {
				return err
			}
		case hists[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			if err := hists[n].writePrometheus(w, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// RoundMetrics bundles the typed handles every federated round loop — the
// in-process search and the RPC deployment alike — records into. The
// metric-name inventory is documented in README.md §Observability.
type RoundMetrics struct {
	// Rounds counts completed communication rounds (rounds_total).
	Rounds *Counter
	// RepliesFresh/RepliesLate/RepliesDropped count reply handling per
	// Alg. 1 (replies_*_total).
	RepliesFresh   *Counter
	RepliesLate    *Counter
	RepliesDropped *Counter
	// Offline counts participants skipped by churn
	// (participants_offline_total).
	Offline *Counter
	// Timeouts counts rounds closed by the deadline below quorum
	// (round_timeouts_total, RPC deployment only).
	Timeouts *Counter
	// RoundSeconds and SubModelBytes are latency/size distributions.
	RoundSeconds  *Histogram
	SubModelBytes *Histogram
	// Accuracy/Entropy/Baseline track the latest round's mean training
	// accuracy and the controller state.
	Accuracy *Gauge
	Entropy  *Gauge
	Baseline *Gauge
}

// NewRoundMetrics registers the standard round-loop metrics on reg (a nil
// reg yields all-no-op handles).
func NewRoundMetrics(reg *Registry) RoundMetrics {
	return RoundMetrics{
		Rounds:         reg.Counter("rounds_total", "communication rounds completed"),
		RepliesFresh:   reg.Counter("replies_fresh_total", "participant updates computed against the current round"),
		RepliesLate:    reg.Counter("replies_late_total", "stale-but-applied participant updates"),
		RepliesDropped: reg.Counter("replies_dropped_total", "participant updates discarded (staleness threshold, Throw strategy, or transport failure)"),
		Offline:        reg.Counter("participants_offline_total", "participants skipped by churn"),
		Timeouts:       reg.Counter("round_timeouts_total", "rounds closed by RoundTimeout below quorum"),
		RoundSeconds:   reg.Histogram("round_seconds", "per-round duration in seconds"),
		SubModelBytes:  reg.Histogram("submodel_bytes", "shipped sub-model payload in bytes"),
		Accuracy:       reg.Gauge("round_accuracy", "latest round mean training accuracy"),
		Entropy:        reg.Gauge("alpha_entropy", "controller policy entropy"),
		Baseline:       reg.Gauge("alpha_baseline", "controller reward baseline"),
	}
}

// WireMetrics bundles the typed handles the RPC wire codecs record into:
// raw transport bytes both ways, pure serialization time (network I/O
// excluded), and the per-message count. All handles are counters, so the
// enabled and disabled paths are equally alloc-free.
type WireMetrics struct {
	// BytesSent / BytesReceived count raw bytes on the connection,
	// including frame headers (wire_bytes_sent_total / _received_total).
	BytesSent     *Counter
	BytesReceived *Counter
	// EncodeNs / DecodeNs accumulate time spent inside the codec
	// serializing and parsing frames (wire_encode_ns_total / decode).
	EncodeNs *Counter
	DecodeNs *Counter
	// MessagesSent / MessagesReceived count RPC messages either way
	// (wire_messages_sent_total / _received_total).
	MessagesSent     *Counter
	MessagesReceived *Counter
	// EncodeSeconds / DecodeSeconds are per-message serialization latency
	// distributions (wire_encode_seconds / wire_decode_seconds) — the
	// counters above keep the cumulative totals, the histograms expose the
	// shape (a single slow frame vs. uniformly slow codec).
	EncodeSeconds *Histogram
	DecodeSeconds *Histogram
	// FrameBytes is the per-frame size distribution in bytes, both
	// directions (wire_frame_bytes). Binary-framed connections only: the
	// gob baseline has no frame boundary to measure.
	FrameBytes *Histogram
}

// NewWireMetrics registers the wire-codec metrics on reg (a nil reg yields
// all-no-op handles).
func NewWireMetrics(reg *Registry) WireMetrics {
	return WireMetrics{
		BytesSent:        reg.Counter("wire_bytes_sent_total", "raw bytes written to RPC connections"),
		BytesReceived:    reg.Counter("wire_bytes_received_total", "raw bytes read from RPC connections"),
		EncodeNs:         reg.Counter("wire_encode_ns_total", "nanoseconds spent encoding RPC frames"),
		DecodeNs:         reg.Counter("wire_decode_ns_total", "nanoseconds spent decoding RPC frames"),
		MessagesSent:     reg.Counter("wire_messages_sent_total", "RPC messages written"),
		MessagesReceived: reg.Counter("wire_messages_received_total", "RPC messages read"),
		EncodeSeconds:    reg.Histogram("wire_encode_seconds", "per-message RPC frame serialization time in seconds"),
		DecodeSeconds:    reg.Histogram("wire_decode_seconds", "per-message RPC frame parse time in seconds"),
		FrameBytes:       reg.Histogram("wire_frame_bytes", "per-frame wire size in bytes, both directions (binary framing only)"),
	}
}

// NewDisabledWireMetrics returns real (atomic, alloc-free) counters not
// attached to any registry, for runs nobody is scraping.
func NewDisabledWireMetrics() WireMetrics {
	return NewWireMetrics(NewRegistry())
}

// PerParticipantGaugeLimit is the enrollment size up to which the
// lifecycle metrics export one state/latency gauge pair per participant
// (participant_state_<id>, participant_round_seconds_<id>), the shape
// small-fleet dashboards were built on. Above it, per-ID series would blow
// up scrape cardinality — 10,000 enrolled means 20,000 series — so the
// registry switches to aggregate state-count gauges, one shared log2
// latency histogram, and a fixed set of top-N straggler gauges.
const PerParticipantGaugeLimit = 32

// stragglerRanks is how many of the slowest recently observed participants
// keep dedicated gauges in aggregate mode.
const stragglerRanks = 3

// LifecycleMetrics bundles the participant-lifecycle handles the RPC server
// records into: mid-run reconnects, per-call deadline expiries, and the
// per-participant state/latency view. Record through SetState and
// ObserveRoundSeconds — they pick the per-ID or aggregate representation
// by enrollment size.
type LifecycleMetrics struct {
	// Redials counts successful mid-run reconnects to a dead participant
	// (redials_total).
	Redials *Counter
	// RedialAttempts counts every dial try made by the redial loops,
	// including failed ones (redial_attempts_total).
	RedialAttempts *Counter
	// DeadlineExceeded counts RPC calls abandoned at the per-call deadline
	// (call_deadline_exceeded_total).
	DeadlineExceeded *Counter
	// CallSeconds is the per-RPC latency distribution measured from
	// dispatch to reply or failure (rpc_call_seconds) — the straggler view
	// the flat round counters cannot give.
	CallSeconds *Histogram
	// States holds one gauge per participant (participant_state_<id>,
	// 0 alive / 1 suspect / 2 dead). Populated only when the enrollment is
	// at most PerParticipantGaugeLimit; nil in aggregate mode.
	States []*Gauge
	// RoundSeconds holds one gauge per participant with the wall-clock of
	// its latest completed call (participant_round_seconds_<id>), so a
	// scrape shows which peer is dragging the current round. Nil in
	// aggregate mode.
	RoundSeconds []*Gauge

	// agg carries the fixed-cardinality representation for enrollments
	// above the per-participant limit.
	agg *lifecycleAgg
}

// lifecycleAgg is the fixed-cardinality lifecycle view: however many
// participants are enrolled, it exports 3 state-count gauges, one log2
// histogram, and 2×stragglerRanks straggler gauges.
type lifecycleAgg struct {
	alive, suspect, dead *Gauge
	// roundSeconds replaces the per-ID latest-call gauges with one shared
	// log2 distribution (participant_round_seconds).
	roundSeconds *Histogram
	// stragglerID[r] / stragglerSeconds[r] name and time the r-th slowest
	// recently observed participant (straggler_<r>_participant_id is -1
	// until rank r has been filled).
	stragglerID      [stragglerRanks]*Gauge
	stragglerSeconds [stragglerRanks]*Gauge

	mu sync.Mutex
	// states caches each participant's last published state so transitions
	// can adjust the three count gauges.
	states []int8
	counts [3]int
	top    []stragglerEntry // sorted slowest-first, at most stragglerRanks
}

type stragglerEntry struct {
	id      int
	seconds float64
}

// NewLifecycleMetrics registers the lifecycle metrics for k participants on
// reg (a nil reg yields all-no-op handles). Enrollments larger than
// PerParticipantGaugeLimit get the aggregate representation.
func NewLifecycleMetrics(reg *Registry, k int) LifecycleMetrics {
	m := LifecycleMetrics{
		Redials:          reg.Counter("redials_total", "successful mid-run reconnects to dead participants"),
		RedialAttempts:   reg.Counter("redial_attempts_total", "dial attempts made by participant redial loops"),
		DeadlineExceeded: reg.Counter("call_deadline_exceeded_total", "RPC calls abandoned at the per-call deadline"),
		CallSeconds:      reg.Histogram("rpc_call_seconds", "per-RPC wall-clock from dispatch to reply or failure"),
	}
	if k <= PerParticipantGaugeLimit {
		m.States = make([]*Gauge, k)
		m.RoundSeconds = make([]*Gauge, k)
		for i := range m.States {
			m.States[i] = reg.Gauge(fmt.Sprintf("participant_state_%d", i),
				"participant lifecycle state (0 alive, 1 suspect, 2 dead)")
			m.RoundSeconds[i] = reg.Gauge(fmt.Sprintf("participant_round_seconds_%d", i),
				"wall-clock of this participant's latest completed call")
		}
		return m
	}
	agg := &lifecycleAgg{
		alive:   reg.Gauge("participants_alive", "participants currently in the alive lifecycle state"),
		suspect: reg.Gauge("participants_suspect", "participants currently in the suspect lifecycle state"),
		dead:    reg.Gauge("participants_dead", "participants currently in the dead lifecycle state"),
		roundSeconds: reg.Histogram("participant_round_seconds",
			"wall-clock of participants' completed calls (aggregate form of the per-ID gauges)"),
		states: make([]int8, k),
	}
	for r := 0; r < stragglerRanks; r++ {
		agg.stragglerID[r] = reg.Gauge(fmt.Sprintf("straggler_%d_participant_id", r),
			"participant id of the rank-th slowest recently observed call (-1 = unfilled)")
		agg.stragglerSeconds[r] = reg.Gauge(fmt.Sprintf("straggler_%d_round_seconds", r),
			"latest call wall-clock of the rank-th slowest recently observed participant")
		agg.stragglerID[r].Set(-1)
	}
	// Every participant starts alive.
	agg.counts[0] = k
	agg.alive.Set(float64(k))
	m.agg = agg
	return m
}

// SetState mirrors a lifecycle transition into the metrics: the per-ID
// gauge at small enrollments, the alive/suspect/dead count gauges above
// the cardinality limit. state is the numeric lifecycle state (0 alive,
// 1 suspect, 2 dead); out-of-range ids and states are ignored.
func (m LifecycleMetrics) SetState(id, state int) {
	if m.agg == nil {
		if id >= 0 && id < len(m.States) {
			m.States[id].Set(float64(state))
		}
		return
	}
	a := m.agg
	if id < 0 || id >= len(a.states) || state < 0 || state >= len(a.counts) {
		return
	}
	a.mu.Lock()
	old := int(a.states[id])
	a.states[id] = int8(state)
	a.counts[old]--
	a.counts[state]++
	alive, suspect, dead := a.counts[0], a.counts[1], a.counts[2]
	a.mu.Unlock()
	a.alive.Set(float64(alive))
	a.suspect.Set(float64(suspect))
	a.dead.Set(float64(dead))
}

// ObserveRoundSeconds records the wall-clock of a participant's latest
// completed call: a per-ID gauge at small enrollments; above the limit,
// one shared log2 histogram plus the top-N straggler gauges (an
// approximate latest-call leaderboard — an id already on the board has its
// time updated in place, otherwise it must beat the current slowest-N to
// enter).
func (m LifecycleMetrics) ObserveRoundSeconds(id int, seconds float64) {
	if m.agg == nil {
		if id >= 0 && id < len(m.RoundSeconds) {
			m.RoundSeconds[id].Set(seconds)
		}
		return
	}
	a := m.agg
	a.roundSeconds.Observe(seconds)

	a.mu.Lock()
	found := false
	for i := range a.top {
		if a.top[i].id == id {
			a.top[i].seconds = seconds
			found = true
			break
		}
	}
	if !found {
		if len(a.top) < stragglerRanks {
			a.top = append(a.top, stragglerEntry{id: id, seconds: seconds})
		} else if last := &a.top[len(a.top)-1]; seconds > last.seconds {
			*last = stragglerEntry{id: id, seconds: seconds}
		}
	}
	sort.Slice(a.top, func(i, j int) bool { return a.top[i].seconds > a.top[j].seconds })
	board := append([]stragglerEntry(nil), a.top...)
	a.mu.Unlock()

	for r, e := range board {
		a.stragglerID[r].Set(float64(e.id))
		a.stragglerSeconds[r].Set(e.seconds)
	}
}

// NewDisabledLifecycleMetrics returns real handles not attached to any
// registry, for runs nobody is scraping.
func NewDisabledLifecycleMetrics(k int) LifecycleMetrics {
	return NewLifecycleMetrics(NewRegistry(), k)
}

// ChaosMetrics bundles the handles the fault injector records into.
type ChaosMetrics struct {
	// Faults counts every injected fault — latency sleeps, throttle
	// stalls, partial-write splits, and kills (faults_injected_total).
	Faults *Counter
	// Kills counts injected connection kills (chaos_kills_total).
	Kills *Counter
	// DelayNs accumulates artificial delay injected into connections
	// (chaos_delay_ns_total).
	DelayNs *Counter
}

// NewChaosMetrics registers the fault-injection metrics on reg (a nil reg
// yields all-no-op handles).
func NewChaosMetrics(reg *Registry) ChaosMetrics {
	return ChaosMetrics{
		Faults:  reg.Counter("faults_injected_total", "network faults injected by the chaos layer"),
		Kills:   reg.Counter("chaos_kills_total", "connections killed by the chaos layer"),
		DelayNs: reg.Counter("chaos_delay_ns_total", "artificial connection delay injected, in nanoseconds"),
	}
}

// NewDisabledChaosMetrics returns real handles not attached to any registry.
func NewDisabledChaosMetrics() ChaosMetrics {
	return NewChaosMetrics(NewRegistry())
}

// NewDisabledRoundMetrics returns the handle set for an unobserved run:
// counters and gauges are real (atomic, alloc-free, and needed for
// cumulative-stats façades) but the histograms are nil no-ops — nobody
// reads a distribution in an unscraped run, and nil handles keep the
// disabled path observably inert for the zero-overhead regression tests.
func NewDisabledRoundMetrics() RoundMetrics {
	met := NewRoundMetrics(NewRegistry())
	met.RoundSeconds = nil
	met.SubModelBytes = nil
	return met
}
