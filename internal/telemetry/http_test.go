package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugMuxServesMetricsHealthzExpvarPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rounds_total", "rounds").Add(3)
	ts := httptest.NewServer(NewDebugMux(reg))
	defer ts.Close()

	if code, body := get(t, ts.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "rounds_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"status": "ok"`) ||
		!strings.Contains(body, `"kernel_f64"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d (memstats missing)", code)
	}
	if code, body := get(t, ts.URL+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestDebugMuxNilRegistry(t *testing.T) {
	ts := httptest.NewServer(NewDebugMux(nil))
	defer ts.Close()
	if code, body := get(t, ts.URL+"/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics on nil registry = %d %q", code, body)
	}
}

func TestStartDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("round_accuracy", "").Set(0.9)
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Addr() == "" {
		t.Fatal("no bound address")
	}
	if code, body := get(t, "http://"+ds.Addr()+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "round_accuracy 0.9") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	var nilDS *DebugServer
	if nilDS.Addr() != "" || nilDS.Close() != nil {
		t.Error("nil DebugServer should be inert")
	}
	if _, err := StartDebugServer("256.0.0.1:99999", reg); err == nil {
		t.Error("bad address accepted")
	}
}
