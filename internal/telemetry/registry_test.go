package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rounds_total", "rounds")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := reg.Counter("rounds_total", ""); again != c {
		t.Error("Counter not idempotent by name")
	}

	g := reg.Gauge("round_accuracy", "acc")
	if g.Value() != 0 {
		t.Error("unset gauge should read 0")
	}
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Errorf("gauge = %v", g.Value())
	}

	h := reg.Histogram("round_seconds", "seconds")
	if !math.IsNaN(h.Percentile(50)) {
		t.Error("empty histogram percentile should be NaN")
	}
	for i := 1; i <= 4; i++ {
		h.Observe(float64(i))
	}
	if h.N() != 4 || h.Sum() != 10 {
		t.Errorf("N/Sum = %d/%v", h.N(), h.Sum())
	}
	if p := h.Percentile(100); p != 4 {
		t.Errorf("p100 = %v", p)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z", "")
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Sum() != 0 {
		t.Error("nil handles must be inert")
	}
	if !math.IsNaN(h.Percentile(50)) {
		t.Error("nil histogram percentile should be NaN")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestCounterHandlesAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
	})
	if allocs != 0 {
		t.Errorf("metric updates allocated %.1f times", allocs)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind collision accepted")
			}
		}()
		reg.Counter("dual", "")
		reg.Gauge("dual", "")
	}()
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("replies_dropped_total", "dropped replies").Add(7)
	reg.Gauge("alpha_entropy", "entropy").Set(1.5)
	h := reg.Histogram("round_seconds", "round wall-clock")
	h.Observe(0.5)
	h.Observe(1.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP replies_dropped_total dropped replies",
		"# TYPE replies_dropped_total counter",
		"replies_dropped_total 7",
		"# TYPE alpha_entropy gauge",
		"alpha_entropy 1.5",
		"# TYPE round_seconds histogram",
		`round_seconds_bucket{le="0.5"} 1`,
		`round_seconds_bucket{le="1"} 1`,
		`round_seconds_bucket{le="2"} 2`,
		`round_seconds_bucket{le="+Inf"} 2`,
		"round_seconds_sum 2",
		"round_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: two renders must match.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus output not deterministic")
	}
	// Empty histograms render the +Inf bucket, sum and count only.
	reg2 := NewRegistry()
	reg2.Histogram("empty_h", "")
	var b3 strings.Builder
	if err := reg2.WritePrometheus(&b3); err != nil {
		t.Fatal(err)
	}
	got := b3.String()
	if !strings.Contains(got, `empty_h_bucket{le="+Inf"} 0`) || !strings.Contains(got, "empty_h_count 0") ||
		strings.Contains(got, `le="1"`) {
		t.Errorf("empty histogram rendering wrong:\n%s", got)
	}
}

// TestHistogramBuckets pins the log2 bucketing: a value lands in the
// smallest bucket whose upper bound contains it, exact powers of two sit on
// their own bound, and out-of-range values fall into the edge buckets.
func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{-3, 0, 1e-12, 0.5, 0.75, 1, 3, 4, 1e12} {
		h.Observe(v)
	}
	if h.N() != 9 {
		t.Fatalf("N = %d, want 9", h.N())
	}
	var b strings.Builder
	if err := h.writePrometheus(&b, "h"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="0.5"} 4`,  // -3, 0, 1e-12 (bucket 0 via cum) + 0.5
		`h_bucket{le="1"} 6`,    // + 0.75, 1
		`h_bucket{le="4"} 8`,    // + 3, 4 (le="2" covers nothing extra)
		`h_bucket{le="+Inf"} 9`, // + 1e12 overflow
		"h_count 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if p := h.Percentile(100); !math.IsInf(p, 1) {
		t.Errorf("p100 with overflow = %v, want +Inf", p)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run under -race by make race) and asserts no observation is
// lost and the CAS-accumulated sum is exact.
func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "")
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7) + 0.25)
			}
		}(w)
	}
	// Concurrent readers must never see torn state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
			}
			h.Percentile(99)
		}
	}()
	wg.Wait()
	if h.N() != workers*per {
		t.Errorf("N = %d, want %d (lost observations)", h.N(), workers*per)
	}
	wantSum := 0.0
	for i := 0; i < per; i++ {
		wantSum += float64(i%7) + 0.25
	}
	wantSum *= workers
	if h.Sum() != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramObserveAllocFree pins the hot-path property that lets
// histograms replace counters on the round and codec paths.
func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewRegistry().Histogram("h", "")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.0375)
		h.Observe(123456)
	})
	if allocs != 0 {
		t.Errorf("Observe allocated %.1f times", allocs)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	met := NewRoundMetrics(reg)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				met.Rounds.Inc()
				met.RoundSeconds.Observe(float64(j))
				met.Accuracy.Set(float64(j))
				reg.Counter("rounds_total", "").Value()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	if met.Rounds.Value() != 8*500 {
		t.Errorf("rounds = %d, want %d", met.Rounds.Value(), 8*500)
	}
}

func TestNewDisabledRoundMetrics(t *testing.T) {
	met := NewDisabledRoundMetrics()
	met.Rounds.Inc()
	met.RepliesFresh.Inc()
	met.Accuracy.Set(0.5)
	if met.Rounds.Value() != 1 || met.RepliesFresh.Value() != 1 || met.Accuracy.Value() != 0.5 {
		t.Error("disabled metrics must still count (cumulative-stats façade)")
	}
	// Histograms are nil no-ops: observing must neither panic nor store.
	met.RoundSeconds.Observe(1)
	met.SubModelBytes.Observe(1)
	if met.RoundSeconds.N() != 0 || met.SubModelBytes.N() != 0 {
		t.Error("disabled histograms must be inert")
	}
}

func TestNewRoundMetricsNilRegistry(t *testing.T) {
	met := NewRoundMetrics(nil)
	met.Rounds.Inc()
	met.RoundSeconds.Observe(1)
	met.Accuracy.Set(0.5)
	if met.Rounds.Value() != 0 {
		t.Error("nil-registry handles must be inert")
	}
}
