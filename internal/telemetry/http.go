package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"fedrlnas/internal/tensor"
)

// Endpoint is an extra handler mounted on the debug mux, e.g. a
// deployment-specific status page such as the RPC server's per-participant
// lifecycle view.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// JSONEndpoint mounts fn's return value as a JSON document at path. fn is
// invoked per request, so it should snapshot live state cheaply.
func JSONEndpoint(path string, fn func() any) Endpoint {
	return Endpoint{Path: path, Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fn())
	})}
}

// NewDebugMux builds the debug HTTP handler tree:
//
//	/metrics       Prometheus text exposition of reg (empty body if nil)
//	/healthz       liveness probe: {"status":"ok","kernel":{…}} with the
//	               detected CPU features and selected GEMM kernel variants,
//	               so a fleet's hosts can be compared at a glance
//	/debug/vars    expvar (memstats, cmdline, …)
//	/debug/pprof/  net/http/pprof profiles
//
// plus any extra endpoints (e.g. JSONEndpoint views of live state).
func NewDebugMux(reg *Registry, extras ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Status string                `json:"status"`
			Kernel tensor.KernelFeatures `json:"kernel"`
		}{Status: "ok", Kernel: tensor.KernelInfo()})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extras {
		mux.Handle(e.Path, e.Handler)
	}
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebugServer listens on addr (e.g. "127.0.0.1:6060", port 0 picks a
// free port) and serves the debug mux in the background until Close.
func StartDebugServer(addr string, reg *Registry, extras ...Endpoint) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg, extras...)}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with port 0).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the server down immediately.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
