package telemetry

import (
	"strings"
	"testing"
)

// TestLifecycleMetricsPerIDMode pins the small-enrollment behavior: one
// state/latency gauge pair per participant under the legacy names, driven
// through the SetState/ObserveRoundSeconds façade.
func TestLifecycleMetricsPerIDMode(t *testing.T) {
	reg := NewRegistry()
	m := NewLifecycleMetrics(reg, 3)
	if len(m.States) != 3 || len(m.RoundSeconds) != 3 {
		t.Fatalf("per-ID slices sized %d/%d, want 3/3", len(m.States), len(m.RoundSeconds))
	}
	if m.agg != nil {
		t.Fatal("aggregate mode active at K=3")
	}
	m.SetState(1, 2)
	m.ObserveRoundSeconds(2, 0.25)
	if got := m.States[1].Value(); got != 2 {
		t.Fatalf("participant_state_1 = %v, want 2", got)
	}
	if got := m.RoundSeconds[2].Value(); got != 0.25 {
		t.Fatalf("participant_round_seconds_2 = %v, want 0.25", got)
	}
	// Out-of-range ids must be ignored, not panic.
	m.SetState(7, 1)
	m.ObserveRoundSeconds(-1, 1)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"participant_state_0", "participant_round_seconds_2"} {
		if !strings.Contains(b.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestLifecycleMetricsAggregateMode pins the cardinality fix: past the
// per-participant limit the registry must expose fixed-cardinality
// state-count gauges, a shared log2 histogram, and the straggler
// leaderboard — and no per-ID series at all.
func TestLifecycleMetricsAggregateMode(t *testing.T) {
	const k = PerParticipantGaugeLimit + 68 // 100 enrolled
	reg := NewRegistry()
	m := NewLifecycleMetrics(reg, k)
	if m.States != nil || m.RoundSeconds != nil {
		t.Fatal("per-ID gauges allocated above the cardinality limit")
	}
	if m.agg == nil {
		t.Fatal("aggregate mode not active")
	}
	if got := m.agg.alive.Value(); got != k {
		t.Fatalf("participants_alive starts at %v, want %d", got, k)
	}

	// Transitions move the counts: 40 suspect, one of those on to dead.
	m.SetState(40, 1)
	m.SetState(40, 2)
	m.SetState(41, 1)
	if a, s, d := m.agg.alive.Value(), m.agg.suspect.Value(), m.agg.dead.Value(); a != k-2 || s != 1 || d != 1 {
		t.Fatalf("counts = %v/%v/%v, want %d/1/1", a, s, d, k-2)
	}
	// Recovery returns the suspect to alive.
	m.SetState(41, 0)
	if a, s := m.agg.alive.Value(), m.agg.suspect.Value(); a != k-1 || s != 0 {
		t.Fatalf("after recovery: %v alive %v suspect, want %d/0", a, s, k-1)
	}

	// The straggler board keeps the slowest latest calls, slowest first.
	m.ObserveRoundSeconds(5, 0.1)
	m.ObserveRoundSeconds(6, 0.9)
	m.ObserveRoundSeconds(7, 0.5)
	m.ObserveRoundSeconds(8, 0.05) // too fast to enter a full board
	if id := m.agg.stragglerID[0].Value(); id != 6 {
		t.Fatalf("top straggler id = %v, want 6", id)
	}
	if sec := m.agg.stragglerSeconds[0].Value(); sec != 0.9 {
		t.Fatalf("top straggler seconds = %v, want 0.9", sec)
	}
	if id := m.agg.stragglerID[2].Value(); id != 5 {
		t.Fatalf("rank-2 straggler id = %v, want 5", id)
	}
	// A board member's later (slower) call updates it in place.
	m.ObserveRoundSeconds(7, 2.0)
	if id := m.agg.stragglerID[0].Value(); id != 7 {
		t.Fatalf("after update: top straggler id = %v, want 7", id)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"participants_alive", "participants_suspect", "participants_dead",
		"participant_round_seconds_bucket", "straggler_0_participant_id",
		"straggler_2_round_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if strings.Contains(out, "participant_state_0") ||
		strings.Contains(out, "participant_round_seconds_0") {
		t.Error("aggregate mode still exports per-ID series")
	}
}
