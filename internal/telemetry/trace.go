// Package telemetry is the runtime observability substrate for the
// federated search stack: a span-style JSONL tracer for per-round events,
// a process-wide metric registry (counters, gauges, latency histograms),
// and an opt-in debug HTTP server exposing Prometheus-format metrics,
// health, expvar, and pprof.
//
// Everything in this package is safe to leave wired in on hot paths: a nil
// *Tracer is a zero-allocation no-op, and nil metric handles are no-ops
// too, so instrumented code never needs to branch on "telemetry enabled".
package telemetry

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
)

// Event names emitted by the instrumented round loops. The JSONL schema is
// documented in README.md §Observability; field names are stable.
const (
	EventRoundStart     = "round.start"
	EventRoundEnd       = "round.end"
	EventRoundTimeout   = "round.timeout"
	EventSubModelSample = "submodel.sample"
	EventTxAssign       = "tx.assign"
	EventReplyFresh     = "reply.fresh"
	EventReplyLate      = "reply.late"
	EventReplyDropped   = "reply.dropped"
	EventReplyOffline   = "reply.offline"
	EventAlphaUpdate    = "alpha.update"
	EventPeerState      = "participant.state"
	EventPeerRedial     = "participant.redial"
)

// Event is one trace record. A zero field is emitted as its zero value so
// the schema stays fixed; Participant is omitted when negative (events
// that concern the whole round rather than one participant).
type Event struct {
	// Name identifies the event (see the Event* constants).
	Name string
	// Round is the communication round the event belongs to.
	Round int
	// Participant is the participant id, or -1 when not applicable.
	Participant int
	// Bytes is the payload size associated with the event (sub-model
	// wire size for submodel.sample / tx.assign), 0 otherwise.
	Bytes int64
	// Staleness is the reply delay in rounds (0 = fresh).
	Staleness int
	// Seconds is the wall-clock (or virtual) duration of the event.
	Seconds float64
	// Value is an event-specific scalar: mean accuracy for round.end,
	// entropy for alpha.update, assignment latency for tx.assign.
	Value float64
}

// Tracer writes Events as JSON lines. A nil *Tracer discards every event
// without allocating, so call sites never guard emissions. Methods are
// safe for concurrent use.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	buf []byte
	n   int64
	err error

	// now stamps events; replaced in tests for determinism.
	now func() time.Time
}

// NewJSONLTracer returns a tracer writing one JSON object per line to w.
func NewJSONLTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, buf: make([]byte, 0, 256), now: time.Now}
}

// OpenJSONL creates (truncating) path and returns a tracer writing to it.
// Close flushes and closes the file.
func OpenJSONL(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open trace: %w", err)
	}
	t := NewJSONLTracer(f)
	t.c = f
	return t, nil
}

// Close closes the underlying writer if it is closable and reports the
// first write error encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// Err reports the first write error encountered (nil if none).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Events reports how many events have been written.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Emit writes one event. On a nil tracer this is a no-op that performs no
// allocation, so it can sit on the hottest loop unconditionally.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, t.now().UnixNano(), 10)
	b = append(b, `,"event":"`...)
	b = append(b, e.Name...)
	b = append(b, `","round":`...)
	b = strconv.AppendInt(b, int64(e.Round), 10)
	if e.Participant >= 0 {
		b = append(b, `,"participant":`...)
		b = strconv.AppendInt(b, int64(e.Participant), 10)
	}
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, e.Bytes, 10)
	b = append(b, `,"staleness":`...)
	b = strconv.AppendInt(b, int64(e.Staleness), 10)
	b = append(b, `,"seconds":`...)
	b = appendJSONFloat(b, e.Seconds)
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, e.Value)
	b = append(b, "}\n"...)
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.n++
}

// appendJSONFloat renders v as a JSON number (NaN/Inf, which JSON cannot
// represent, degrade to 0).
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// RoundStart marks the beginning of a communication round.
func (t *Tracer) RoundStart(round int) {
	t.Emit(Event{Name: EventRoundStart, Round: round, Participant: -1})
}

// RoundEnd marks the end of a round with its duration and mean accuracy.
func (t *Tracer) RoundEnd(round int, seconds, meanAccuracy float64) {
	t.Emit(Event{Name: EventRoundEnd, Round: round, Participant: -1,
		Seconds: seconds, Value: meanAccuracy})
}

// RoundTimeout records a round closed by the deadline below quorum.
func (t *Tracer) RoundTimeout(round int, waitedSeconds float64) {
	t.Emit(Event{Name: EventRoundTimeout, Round: round, Participant: -1,
		Seconds: waitedSeconds})
}

// SubModelSample records the sub-model sampled for a participant.
func (t *Tracer) SubModelSample(round, participant int, bytes int64) {
	t.Emit(Event{Name: EventSubModelSample, Round: round,
		Participant: participant, Bytes: bytes})
}

// TxAssign records the sub-model actually assigned for transmission, with
// its wire size and modeled link latency.
func (t *Tracer) TxAssign(round, participant int, bytes int64, latencySeconds float64) {
	t.Emit(Event{Name: EventTxAssign, Round: round, Participant: participant,
		Bytes: bytes, Value: latencySeconds})
}

// ReplyFresh records an update computed against the current round's state.
func (t *Tracer) ReplyFresh(round, participant int) {
	t.Emit(Event{Name: EventReplyFresh, Round: round, Participant: participant})
}

// ReplyLate records a stale-but-applied update with its delay in rounds.
func (t *Tracer) ReplyLate(round, participant, staleness int) {
	t.Emit(Event{Name: EventReplyLate, Round: round, Participant: participant,
		Staleness: staleness})
}

// ReplyDropped records an update discarded for staleness (or transport
// failure, staleness 0).
func (t *Tracer) ReplyDropped(round, participant, staleness int) {
	t.Emit(Event{Name: EventReplyDropped, Round: round, Participant: participant,
		Staleness: staleness})
}

// ReplyOffline records a participant skipped by churn this round.
func (t *Tracer) ReplyOffline(round, participant int) {
	t.Emit(Event{Name: EventReplyOffline, Round: round, Participant: participant})
}

// AlphaUpdate records a policy update with the controller's entropy after
// the step (the baseline is exposed via the alpha_baseline gauge).
func (t *Tracer) AlphaUpdate(round int, entropy float64) {
	t.Emit(Event{Name: EventAlphaUpdate, Round: round, Participant: -1,
		Value: entropy})
}

// PeerState records a participant lifecycle transition; the state code
// (0 alive, 1 suspect, 2 dead) rides in Value. Round is the round the
// server was driving when the transition happened.
func (t *Tracer) PeerState(round, participant int, state int) {
	t.Emit(Event{Name: EventPeerState, Round: round, Participant: participant,
		Value: float64(state)})
}

// PeerRedial records a successful mid-run reconnect, with the number of
// dial attempts it took in Value.
func (t *Tracer) PeerRedial(round, participant, attempts int) {
	t.Emit(Event{Name: EventPeerRedial, Round: round, Participant: participant,
		Value: float64(attempts)})
}
