// Package telemetry is the runtime observability substrate for the
// federated search stack: a span-style JSONL tracer for per-round events,
// a process-wide metric registry (counters, gauges, latency histograms),
// and an opt-in debug HTTP server exposing Prometheus-format metrics,
// health, expvar, and pprof.
//
// Everything in this package is safe to leave wired in on hot paths: a nil
// *Tracer is a zero-allocation no-op, and nil metric handles are no-ops
// too, so instrumented code never needs to branch on "telemetry enabled".
package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fedrlnas/internal/wire"
)

// Event names emitted by the instrumented round loops. The JSONL schema is
// documented in README.md §Observability; field names are stable.
const (
	EventRoundStart     = "round.start"
	EventRoundEnd       = "round.end"
	EventRoundTimeout   = "round.timeout"
	EventSubModelSample = "submodel.sample"
	EventTxAssign       = "tx.assign"
	EventReplyFresh     = "reply.fresh"
	EventReplyLate      = "reply.late"
	EventReplyDropped   = "reply.dropped"
	EventReplyOffline   = "reply.offline"
	EventAlphaUpdate    = "alpha.update"
	EventPeerState      = "participant.state"
	EventPeerRedial     = "participant.redial"
)

// Observability-v2 event names: server-side round phases, per-call RPC
// spans, worker-side spans parented across the process boundary by the
// wire-propagated span context, and trace-tagged chaos faults. cmd/fedtrace
// stitches these into per-round critical paths.
const (
	EventRoundDispatch = "round.dispatch"
	EventRoundMerge    = "round.merge"
	EventCtrlUpdate    = "controller.update"
	EventRPCCall       = "rpc.call"
	EventWorkerTrain   = "worker.train"
	EventWorkerDecode  = "worker.decode"
	EventWorkerEncode  = "worker.encode"
	EventChaosFault    = "chaos.fault"
)

// Event is one trace record. A zero field is emitted as its zero value so
// the schema stays fixed; Participant is omitted when negative (events
// that concern the whole round rather than one participant).
type Event struct {
	// Name identifies the event (see the Event* constants).
	Name string
	// Round is the communication round the event belongs to.
	Round int
	// Participant is the participant id, or -1 when not applicable.
	Participant int
	// Bytes is the payload size associated with the event (sub-model
	// wire size for submodel.sample / tx.assign), 0 otherwise.
	Bytes int64
	// Staleness is the reply delay in rounds (0 = fresh).
	Staleness int
	// Seconds is the wall-clock (or virtual) duration of the event.
	Seconds float64
	// Value is an event-specific scalar: mean accuracy for round.end,
	// entropy for alpha.update, assignment latency for tx.assign.
	Value float64
	// TraceID, SpanID and ParentID carry distributed-trace correlation
	// (zero = absent, field omitted from the JSONL line). TraceID groups
	// every event of one run, SpanID names the span an event opens
	// (round.start), ParentID links an event under its parent span. On a
	// tracer with a trace ID set, Emit stamps TraceID — and, for events
	// that neither open a span nor set an explicit parent, ParentID (the
	// current round span) — automatically.
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
}

// Tracer writes Events as JSON lines. A nil *Tracer discards every event
// without allocating, so call sites never guard emissions. Methods are
// safe for concurrent use.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	buf []byte
	n   int64
	err error

	// traceID, when nonzero, is stamped on every event; roundSpan is the
	// span ID of the most recent round.start and becomes the default
	// parent of events emitted inside the round.
	traceID   uint64
	roundSpan uint64

	// drops counts events lost to write errors; dropCounter optionally
	// mirrors them into a registry counter (trace_dropped_total), and
	// warned gates the single best-effort stderr notice per tracer.
	drops       int64
	dropCounter *Counter
	warned      bool

	// now stamps events; replaced in tests for determinism.
	now func() time.Time
}

// NewJSONLTracer returns a tracer writing one JSON object per line to w.
func NewJSONLTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, buf: make([]byte, 0, 256), now: time.Now}
}

// OpenJSONL creates (truncating) path and returns a tracer writing to it.
// Close flushes and closes the file.
func OpenJSONL(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open trace: %w", err)
	}
	t := NewJSONLTracer(f)
	t.c = f
	return t, nil
}

// Close closes the underlying writer if it is closable and reports the
// first write error encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	return t.err
}

// Err reports the first write error encountered (nil if none).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Events reports how many events have been written.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped reports how many events were lost to write errors.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// SetDropCounter mirrors dropped-event counts into c (typically the
// trace_dropped_total registry counter) so a wedged trace file shows up on
// /metrics rather than failing silently.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropCounter = c
}

// SetTraceID sets the run-wide trace ID stamped on every subsequent event.
func (t *Tracer) SetTraceID(id uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traceID = id
}

// EnsureTraceID sets a fresh random trace ID if none is set yet and returns
// the tracer's trace ID (0 only on a nil tracer).
func (t *Tracer) EnsureTraceID() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traceID == 0 {
		t.traceID = NewTraceID()
	}
	return t.traceID
}

// RoundContext returns the span context to propagate to participants for
// the current round: the run's trace ID plus the open round span as the
// remote parent. Participant is -1; the dispatcher stamps the real id per
// peer. Zero-valued (and therefore not propagated) when tracing is off.
func (t *Tracer) RoundContext(round int) wire.SpanContext {
	if t == nil {
		return wire.SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traceID == 0 {
		return wire.SpanContext{}
	}
	return wire.SpanContext{TraceID: t.traceID, SpanID: t.roundSpan,
		Round: int32(round), Participant: -1}
}

// Emit writes one event. On a nil tracer this is a no-op that performs no
// allocation, so it can sit on the hottest loop unconditionally.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		t.drop()
		return
	}
	if t.traceID != 0 {
		if e.TraceID == 0 {
			e.TraceID = t.traceID
		}
		// Events that neither open a span nor carry an explicit parent
		// nest under the current round span. round.start itself arrives
		// with its SpanID set, so it stays a root span.
		if e.SpanID == 0 && e.ParentID == 0 {
			e.ParentID = t.roundSpan
		}
	}
	b := t.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, t.now().UnixNano(), 10)
	b = append(b, `,"event":"`...)
	b = append(b, e.Name...)
	b = append(b, `","round":`...)
	b = strconv.AppendInt(b, int64(e.Round), 10)
	if e.Participant >= 0 {
		b = append(b, `,"participant":`...)
		b = strconv.AppendInt(b, int64(e.Participant), 10)
	}
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, e.Bytes, 10)
	b = append(b, `,"staleness":`...)
	b = strconv.AppendInt(b, int64(e.Staleness), 10)
	b = append(b, `,"seconds":`...)
	b = appendJSONFloat(b, e.Seconds)
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, e.Value)
	if e.TraceID != 0 {
		b = append(b, `,"trace":"`...)
		b = strconv.AppendUint(b, e.TraceID, 16)
		b = append(b, '"')
	}
	if e.SpanID != 0 {
		b = append(b, `,"span":"`...)
		b = strconv.AppendUint(b, e.SpanID, 16)
		b = append(b, '"')
	}
	if e.ParentID != 0 {
		b = append(b, `,"parent":"`...)
		b = strconv.AppendUint(b, e.ParentID, 16)
		b = append(b, '"')
	}
	b = append(b, "}\n"...)
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		t.drop()
		return
	}
	t.n++
}

// drop accounts one lost event (t.mu held) and warns on stderr once per
// tracer so a broken trace sink is visible without spamming the console.
func (t *Tracer) drop() {
	t.drops++
	t.dropCounter.Inc()
	if !t.warned {
		t.warned = true
		fmt.Fprintf(os.Stderr, "telemetry: trace write failed, dropping events: %v\n", t.err)
	}
}

// appendJSONFloat renders v as a JSON number (NaN/Inf, which JSON cannot
// represent, degrade to 0).
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// RoundStart marks the beginning of a communication round. On a traced run
// it opens the round span every subsequent event (local and remote) parents
// under, until the next RoundStart.
func (t *Tracer) RoundStart(round int) {
	if t == nil {
		return
	}
	var span uint64
	t.mu.Lock()
	if t.traceID != 0 {
		span = NewSpanID()
		t.roundSpan = span
	}
	t.mu.Unlock()
	t.Emit(Event{Name: EventRoundStart, Round: round, Participant: -1, SpanID: span})
}

// RoundEnd marks the end of a round with its duration and mean accuracy.
func (t *Tracer) RoundEnd(round int, seconds, meanAccuracy float64) {
	t.Emit(Event{Name: EventRoundEnd, Round: round, Participant: -1,
		Seconds: seconds, Value: meanAccuracy})
}

// RoundTimeout records a round closed by the deadline below quorum.
func (t *Tracer) RoundTimeout(round int, waitedSeconds float64) {
	t.Emit(Event{Name: EventRoundTimeout, Round: round, Participant: -1,
		Seconds: waitedSeconds})
}

// SubModelSample records the sub-model sampled for a participant.
func (t *Tracer) SubModelSample(round, participant int, bytes int64) {
	t.Emit(Event{Name: EventSubModelSample, Round: round,
		Participant: participant, Bytes: bytes})
}

// TxAssign records the sub-model actually assigned for transmission, with
// its wire size and modeled link latency.
func (t *Tracer) TxAssign(round, participant int, bytes int64, latencySeconds float64) {
	t.Emit(Event{Name: EventTxAssign, Round: round, Participant: participant,
		Bytes: bytes, Value: latencySeconds})
}

// ReplyFresh records an update computed against the current round's state.
func (t *Tracer) ReplyFresh(round, participant int) {
	t.Emit(Event{Name: EventReplyFresh, Round: round, Participant: participant})
}

// ReplyLate records a stale-but-applied update with its delay in rounds.
func (t *Tracer) ReplyLate(round, participant, staleness int) {
	t.Emit(Event{Name: EventReplyLate, Round: round, Participant: participant,
		Staleness: staleness})
}

// ReplyDropped records an update discarded for staleness (or transport
// failure, staleness 0).
func (t *Tracer) ReplyDropped(round, participant, staleness int) {
	t.Emit(Event{Name: EventReplyDropped, Round: round, Participant: participant,
		Staleness: staleness})
}

// ReplyOffline records a participant skipped by churn this round.
func (t *Tracer) ReplyOffline(round, participant int) {
	t.Emit(Event{Name: EventReplyOffline, Round: round, Participant: participant})
}

// AlphaUpdate records a policy update with the controller's entropy after
// the step (the baseline is exposed via the alpha_baseline gauge).
func (t *Tracer) AlphaUpdate(round int, entropy float64) {
	t.Emit(Event{Name: EventAlphaUpdate, Round: round, Participant: -1,
		Value: entropy})
}

// PeerState records a participant lifecycle transition; the state code
// (0 alive, 1 suspect, 2 dead) rides in Value. Round is the round the
// server was driving when the transition happened.
func (t *Tracer) PeerState(round, participant int, state int) {
	t.Emit(Event{Name: EventPeerState, Round: round, Participant: participant,
		Value: float64(state)})
}

// PeerRedial records a successful mid-run reconnect, with the number of
// dial attempts it took in Value.
func (t *Tracer) PeerRedial(round, participant, attempts int) {
	t.Emit(Event{Name: EventPeerRedial, Round: round, Participant: participant,
		Value: float64(attempts)})
}

// RoundDispatch records the server-side dispatch phase: serializing and
// launching all participant calls, with the total payload bytes shipped.
func (t *Tracer) RoundDispatch(round int, bytes int64, seconds float64) {
	t.Emit(Event{Name: EventRoundDispatch, Round: round, Participant: -1,
		Bytes: bytes, Seconds: seconds})
}

// RoundMerge records the deterministic merge of accepted replies, with the
// contributor count in Value.
func (t *Tracer) RoundMerge(round, contributors int, seconds float64) {
	t.Emit(Event{Name: EventRoundMerge, Round: round, Participant: -1,
		Seconds: seconds, Value: float64(contributors)})
}

// ControllerUpdate records the optimizer/controller step closing a round.
func (t *Tracer) ControllerUpdate(round int, seconds float64) {
	t.Emit(Event{Name: EventCtrlUpdate, Round: round, Participant: -1,
		Seconds: seconds})
}

// RPCCall records one participant RPC from issue to reply (or failure:
// Value 1 = ok, 0 = failed), with the reply payload size. It parents under
// the span carried in ctx — the round that issued the call — rather than
// whichever round is open when the (possibly late) reply lands.
func (t *Tracer) RPCCall(ctx wire.SpanContext, round, participant int, bytes int64, seconds float64, ok bool) {
	v := 0.0
	if ok {
		v = 1
	}
	t.Emit(Event{Name: EventRPCCall, Round: round, Participant: participant,
		Bytes: bytes, Seconds: seconds, Value: v,
		TraceID: ctx.TraceID, ParentID: ctx.SpanID})
}

// WorkerSpan emits a worker-side span (worker.train, worker.decode,
// worker.encode) parented under the server's round span carried across the
// wire in ctx. With an invalid ctx (untraced run) the event is still logged,
// just without correlation fields.
func (t *Tracer) WorkerSpan(name string, ctx wire.SpanContext, bytes int64, seconds float64) {
	t.Emit(Event{Name: name, Round: int(ctx.Round), Participant: int(ctx.Participant),
		Bytes: bytes, Seconds: seconds, TraceID: ctx.TraceID, ParentID: ctx.SpanID})
}

// ChaosFault records an injected fault under the round span active when it
// fired; the kill-site code rides in Value (0 victim loop, 1 conn write,
// 2 accept while down).
func (t *Tracer) ChaosFault(ctx wire.SpanContext, site int) {
	t.Emit(Event{Name: EventChaosFault, Round: int(ctx.Round),
		Participant: int(ctx.Participant), Value: float64(site),
		TraceID: ctx.TraceID, ParentID: ctx.SpanID})
}

// idState is the process-wide span/trace ID generator: a splitmix64 stream
// over an atomic counter seeded once from crypto/rand, so IDs are unique
// within a process and collide across processes with negligible probability
// — without taking a lock or allocating on the round hot path.
var (
	idSeedOnce sync.Once
	idCounter  atomic.Uint64
)

func newID() uint64 {
	idSeedOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			idCounter.Store(binary.LittleEndian.Uint64(b[:]))
		} else {
			idCounter.Store(uint64(time.Now().UnixNano()))
		}
	})
	for {
		x := idCounter.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewTraceID returns a fresh nonzero run-wide trace ID.
func NewTraceID() uint64 { return newID() }

// NewSpanID returns a fresh nonzero span ID.
func NewSpanID() uint64 { return newID() }
