package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a lock-free fixed-bucket latency/size distribution with
// logarithmic (power-of-two) bucket bounds and Prometheus histogram
// rendering (_bucket/_sum/_count). Observe is wait-free on the bucket
// counter and lock-free on the float sum (one CAS loop), allocates
// nothing, and never blocks readers — so it can sit on the round hot path,
// the per-RPC call path, and inside the wire codecs.
//
// Buckets: 64 finite buckets with upper bounds 2^-30 … 2^33 (≈ 1 ns … 2.3 h
// for seconds, ≈ 1 B … 8.6 GB for bytes), plus an implicit +Inf bucket.
// A value v lands in the smallest bucket with v ≤ bound; v ≤ 0 lands in
// bucket 0. The relative quantile error of log2 buckets is at most 2×,
// which is plenty for "where did this round's 37 ms go" attribution.
//
// A nil *Histogram is a no-op, like every other metric handle.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	// over counts observations above the largest finite bound (they are in
	// the +Inf bucket only).
	over atomic.Uint64
	// sumBits accumulates the float64 sum via CAS.
	sumBits atomic.Uint64
}

const (
	// histBuckets is the number of finite buckets.
	histBuckets = 64
	// histExpOffset shifts bucket index i to exponent i-histExpOffset, so
	// bounds run 2^-30 … 2^33.
	histExpOffset = 30
)

// histBound returns the upper bound of finite bucket i.
func histBound(i int) float64 {
	return math.Ldexp(1, i-histExpOffset)
}

// histIndex maps a value to its finite bucket, or -1 for the +Inf bucket.
func histIndex(v float64) int {
	if v <= histBound(0) || math.IsNaN(v) {
		return 0
	}
	if v > histBound(histBuckets-1) {
		return -1
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if frac == 0.5 {
		exp--
	}
	// Now 2^(exp-1) < v <= 2^exp.
	return exp + histExpOffset
}

// Observe records a value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := histIndex(v); i >= 0 {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot copies the bucket counters once, so a render sees one coherent
// view even while observers keep running.
func (h *Histogram) snapshot() (counts [histBuckets]uint64, over, total uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	over = h.over.Load()
	total += over
	return
}

// N returns the number of observations.
func (h *Histogram) N() int {
	if h == nil {
		return 0
	}
	_, _, total := h.snapshot()
	return int(total)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Percentile estimates the p-th percentile (0 ≤ p ≤ 100) by nearest rank,
// reporting the upper bound of the bucket the rank falls in (within 2× of
// the true value by construction). It returns NaN when empty and +Inf when
// the rank lands above the largest finite bound.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts, _, total := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return histBound(i)
		}
	}
	return math.Inf(1)
}

// writePrometheus renders the histogram in the Prometheus text exposition
// format under name: cumulative _bucket lines (only the occupied bound
// range, to keep /metrics readable), the +Inf bucket, _sum and _count.
func (h *Histogram) writePrometheus(w io.Writer, name string) error {
	counts, _, total := h.snapshot()
	first, last := -1, -1
	for i, c := range counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	var cum uint64
	if first >= 0 {
		for i := 0; i < first; i++ {
			cum += counts[i]
		}
		for i := first; i <= last; i++ {
			cum += counts[i]
			le := strconv.FormatFloat(histBound(i), 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, total, name, h.Sum(), name, total)
	return err
}
