package tensor

// float64↔float32 bridge helpers for the fp32 compute mode: nn layers keep
// float64 master storage (optimizer state, wire framing, determinism gates
// all speak float64) and shadow the GEMM operands in float32 scratch.

// Narrow converts src into float32, reusing dst's backing array when large
// enough, and returns the converted slice.
func Narrow(dst []float32, src []float64) []float32 {
	dst = growFloats32(dst, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// Widen overwrites dst with src widened to float64 (exact — every float32
// is representable). len(src) must not exceed len(dst).
func Widen(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// WidenAdd accumulates src into dst: dst[i] += float64(src[i]). Used for
// gradient accumulation where the float64 master gradient collects
// contributions from an fp32 backward pass.
func WidenAdd(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] += float64(v)
	}
}
