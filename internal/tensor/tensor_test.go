package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	x.Set(9, 1, 0)
	if got := x.At(1, 0); got != 9 {
		t.Errorf("At(1,0) after Set = %v, want 9", got)
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []float64{1, 2}
	x := FromSlice(src, 2)
	src[0] = 99
	if x.At(0) != 1 {
		t.Error("FromSlice must copy its input")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(7, 0)
	if x.At(0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	if y.Dims() != 1 || y.Dim(0) != 4 {
		t.Fatalf("Reshape shape = %v", y.Shape())
	}
	if y.At(3) != 4 {
		t.Errorf("Reshape lost data: %v", y.Data())
	}
}

func TestPanicOnBadShape(t *testing.T) {
	cases := []func(){
		func() { New() },
		func() { New(0, 3) },
		func() { New(-1) },
		func() { FromSlice([]float64{1}, 2) },
		func() { FromSlice([]float64{1, 2}, 2).At(2) },
		func() { FromSlice([]float64{1, 2}, 2).At(0, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	c := a.Clone()
	c.AXPY(2, b)
	if c.At(0) != 9 {
		t.Errorf("AXPY = %v", c.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, 3}, 4)
	if x.Sum() != 8 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2 {
		t.Errorf("Mean = %v", x.Mean())
	}
	if x.Max() != 4 {
		t.Errorf("Max = %v", x.Max())
	}
	if x.ArgMax() != 1 {
		t.Errorf("ArgMax = %v", x.ArgMax())
	}
	if got := x.L2Norm(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("L2Norm = %v", got)
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 4)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !MatMul(a, eye).AllClose(a, 1e-12) {
		t.Error("A @ I != A")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
	// Numerical stability with huge logits.
	p = Softmax([]float64{1000, 1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("softmax unstable: %v", p)
	}
}

func TestClipL2(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2) // norm 5
	pre := ClipL2(1, a)
	if math.Abs(pre-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", pre)
	}
	if got := a.L2Norm(); math.Abs(got-1) > 1e-12 {
		t.Errorf("post-clip norm = %v", got)
	}
	// Below threshold: untouched.
	b := FromSlice([]float64{0.1}, 1)
	ClipL2(10, b)
	if b.At(0) != 0.1 {
		t.Error("ClipL2 modified tensor below threshold")
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice([]float64{1, math.NaN()}, 2)
	if !x.HasNaN() {
		t.Error("HasNaN missed NaN")
	}
	y := FromSlice([]float64{1, math.Inf(1)}, 2)
	if !y.HasNaN() {
		t.Error("HasNaN missed Inf")
	}
	z := FromSlice([]float64{1, 2}, 2)
	if z.HasNaN() {
		t.Error("HasNaN false positive")
	}
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := Randn(rng, 2, 3, 4, 2)
	var buf bytes.Buffer
	n, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != x.WireSize() {
		t.Errorf("wrote %d bytes, WireSize says %d", n, x.WireSize())
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !x.AllClose(y, 0) {
		t.Error("round trip lost data")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	// Rank too large.
	if _, err := ReadFrom(bytes.NewReader([]byte{200, 0, 0, 0})); err == nil {
		t.Error("expected error for huge rank")
	}
	// Truncated stream.
	x := FromSlice([]float64{1, 2, 3}, 3)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated stream")
	}
}

// Property: Add is commutative and Sub(Add(a,b), b) == a.
func TestAddProperties(t *testing.T) {
	f := func(vals [6]float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip non-finite inputs
			}
		}
		a := FromSlice(vals[:3], 3)
		b := FromSlice(vals[3:], 3)
		if !a.Add(b).AllClose(b.Add(a), 1e-9) {
			return false
		}
		return a.Add(b).Sub(b).AllClose(a, 1e-6*(1+a.L2Norm()+b.L2Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		if !left.AllClose(right, 1e-9) {
			t.Fatalf("trial %d: distribution violated", trial)
		}
	}
}

// Property: softmax output is a probability vector for arbitrary finite logits.
func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(raw [5]float64) bool {
		logits := make([]float64, 5)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			logits[i] = math.Mod(v, 50)
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(5)), 1, 10)
	b := Randn(rand.New(rand.NewSource(5)), 1, 10)
	if !a.AllClose(b, 0) {
		t.Error("Randn not deterministic for equal seeds")
	}
}
