//go:build amd64 && !noasm

package tensor

// AVX2 kernel selection. Detection is hand-rolled CPUID/XGETBV (the repo is
// dependency-free, so no golang.org/x/sys/cpu): AVX2 requires the CPU to
// advertise it (leaf 7 EBX bit 5), the AVX foundation (leaf 1 ECX bit 28),
// and the OS to have enabled XMM+YMM state saving (OSXSAVE + XCR0 bits 1-2).
//
// FMA (leaf 1 ECX bit 12) is detected for reporting only. The kernels never
// fuse: a fused multiply-add performs one rounding where the pure-Go
// reference performs two, so using it would break the bit-identity contract
// between the asm and fallback kernels (DESIGN.md §Kernels).

const asmKernels = true

func init() {
	cpuHasAVX2, cpuHasFMA = detectAVX2()
	if cpuHasAVX2 {
		gemmActiveF64 = &gemmAVX2F64
		gemmShortF64 = &gemmAVX2F64x4
		gemmActiveF32 = &gemmAVX2F32
	}
}

// gemmAVX2F64 widens the register block to 8×8: the asm kernel computes two
// 4×8 halves, each holding 8 ymm accumulators across the whole k loop.
var gemmAVX2F64 = gemmKernelF64{name: "avx2-8x8", mr: 8, nr: 8, micro: microAVX2F64}

// gemmAVX2F64x4 is the short-m variant: problems with m ≤ 4 rows pack one
// 4-row strip instead of padding half an 8-row tile with zeros.
var gemmAVX2F64x4 = gemmKernelF64{name: "avx2-4x8", mr: 4, nr: 8, micro: microAVX2F64x4}

// gemmAVX2F32 holds a full 8×8 float32 tile in 8 ymm accumulators.
var gemmAVX2F32 = gemmKernelF32{name: "avx2-8x8", mr: 8, nr: 8, micro: microAVX2F32}

func microAVX2F64(k int, pa, pb []float64, acc *[gemmMaxMR * gemmMaxNR]float64) {
	gemmMicroAVX2F64(k, &pa[0], &pb[0], acc)
}

func microAVX2F64x4(k int, pa, pb []float64, acc *[gemmMaxMR * gemmMaxNR]float64) {
	gemmMicroAVX2F64x4(k, &pa[0], &pb[0], acc)
}

func microAVX2F32(k int, pa, pb []float32, acc *[gemmMaxMR * gemmMaxNR]float32) {
	gemmMicroAVX2F32(k, &pa[0], &pb[0], acc)
}

// detectAVX2 reports (avx2, fma) usable in this process.
func detectAVX2() (avx2, fma bool) {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false, false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set by the OS before ymm
	// registers are safe to touch.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false, false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0, ecx1&fmaBit != 0
}

// Implemented in gemm_amd64.s.

//go:noescape
func gemmMicroAVX2F64(k int, pa, pb *float64, acc *[gemmMaxMR * gemmMaxNR]float64)

//go:noescape
func gemmMicroAVX2F64x4(k int, pa, pb *float64, acc *[gemmMaxMR * gemmMaxNR]float64)

//go:noescape
func gemmMicroAVX2F32(k int, pa, pb *float32, acc *[gemmMaxMR * gemmMaxNR]float32)

func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)
