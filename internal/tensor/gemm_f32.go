package tensor

import (
	"sync"
	"time"
	"unsafe"
)

// float32 GEMM: the same packed, never-split-k design as the float64 kernel
// (see gemm.go), instantiated for float32. It backs the fp32 compute mode in
// internal/nn — half the memory traffic per operand and twice the SIMD
// lanes. The fp32 pipeline is gated on convergence parity, not bit-identity
// against fp64, but the same determinism invariant holds within the
// precision: every kernel variant, block size, and worker count produces
// bit-identical float32 output, because each output element is one
// ascending-k accumulator with a separate multiply and add per step.

type gemmKernelF32 struct {
	name   string
	mr, nr int
	micro  func(k int, pa, pb []float32, acc *[gemmMaxMR * gemmMaxNR]float32)
}

var gemmGo4x4F32 = gemmKernelF32{name: "go-4x4", mr: 4, nr: 4, micro: gemmMicro4x4F32}

// gemmActiveF32 is written once at init (gemm_amd64.go) and read-only after.
var gemmActiveF32 = &gemmGo4x4F32

type gemmScratchF32 struct {
	packA []float32
	packB []float32
}

var gemmPoolF32 = sync.Pool{New: func() any { return new(gemmScratchF32) }}

var gemmAccPoolF32 = sync.Pool{New: func() any { return new([gemmMaxMR * gemmMaxNR]float32) }}

// GemmRawF32 is the float32 twin of GemmRaw: C = alpha·op(A)·op(B) + beta·C.
func GemmRawF32(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	gemmRawF32With(gemmActiveF32, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

func gemmRawF32With(kv *gemmKernelF32, transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if gemmTrivialF32(m, n, k, beta, c, ldc) {
		return
	}
	start := time.Now()
	ws := gemmPoolF32.Get().(*gemmScratchF32)
	ms, ns := ws.pack(kv.mr, kv.nr, transA, transB, m, n, k, a, lda, b, ldb)
	mr, nr := kv.mr, kv.nr
	acc := gemmAccPoolF32.Get().(*[gemmMaxMR * gemmMaxNR]float32)
	for sb := 0; sb < ms; sb += gemmMC {
		sEnd := sb + gemmMC
		if sEnd > ms {
			sEnd = ms
		}
		for t := 0; t < ns; t++ {
			pb := ws.packB[t*nr*k : (t+1)*nr*k]
			for s := sb; s < sEnd; s++ {
				pa := ws.packA[s*mr*k : (s+1)*mr*k]
				kv.micro(k, pa, pb, acc)
				gemmStoreF32(acc, nr, s*mr, t*nr, mr, m, n, alpha, beta, c, ldc)
			}
		}
	}
	gemmAccPoolF32.Put(acc)
	hint := uintptr(unsafe.Pointer(ws))
	gemmPoolF32.Put(ws)
	gemmAddStats(2*int64(m)*int64(n)*int64(k), time.Since(start).Nanoseconds(), hint)
}

func gemmTrivialF32(m, n, k int, beta float32, c []float32, ldc int) bool {
	if m <= 0 || n <= 0 {
		return true
	}
	if k > 0 {
		return false
	}
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
	return true
}

func (ws *gemmScratchF32) pack(mr, nr int, transA, transB bool, m, n, k int, a []float32, lda int, b []float32, ldb int) (ms, ns int) {
	ms = (m + mr - 1) / mr
	ns = (n + nr - 1) / nr
	ws.packA = growFloats32(ws.packA, ms*mr*k)
	ws.packB = growFloats32(ws.packB, ns*nr*k)

	pa := ws.packA
	for s := 0; s < ms; s++ {
		base := s * mr * k
		rlim := m - s*mr
		if rlim > mr {
			rlim = mr
		}
		if transA {
			for p := 0; p < k; p++ {
				src := a[p*lda+s*mr : p*lda+s*mr+rlim]
				dst := pa[base+p*mr : base+p*mr+mr]
				copy(dst, src)
				for r := rlim; r < mr; r++ {
					dst[r] = 0
				}
			}
		} else {
			for r := 0; r < rlim; r++ {
				row := a[(s*mr+r)*lda : (s*mr+r)*lda+k]
				for p, v := range row {
					pa[base+p*mr+r] = v
				}
			}
			for r := rlim; r < mr; r++ {
				for p := 0; p < k; p++ {
					pa[base+p*mr+r] = 0
				}
			}
		}
	}

	pb := ws.packB
	for t := 0; t < ns; t++ {
		base := t * nr * k
		clim := n - t*nr
		if clim > nr {
			clim = nr
		}
		if transB {
			for col := 0; col < clim; col++ {
				row := b[(t*nr+col)*ldb : (t*nr+col)*ldb+k]
				for p, v := range row {
					pb[base+p*nr+col] = v
				}
			}
			for col := clim; col < nr; col++ {
				for p := 0; p < k; p++ {
					pb[base+p*nr+col] = 0
				}
			}
		} else {
			for p := 0; p < k; p++ {
				src := b[p*ldb+t*nr : p*ldb+t*nr+clim]
				dst := pb[base+p*nr : base+p*nr+nr]
				copy(dst, src)
				for col := clim; col < nr; col++ {
					dst[col] = 0
				}
			}
		}
	}
	return ms, ns
}

func gemmMicro4x4F32(k int, pa, pb []float32, acc *[gemmMaxMR * gemmMaxNR]float32) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	idx := 0
	for p := 0; p < k; p++ {
		a0, a1, a2, a3 := pa[idx], pa[idx+1], pa[idx+2], pa[idx+3]
		b0, b1, b2, b3 := pb[idx], pb[idx+1], pb[idx+2], pb[idx+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		idx += 4
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

func gemmStoreF32(acc *[gemmMaxMR * gemmMaxNR]float32, nr, i0, j0, mr, m, n int, alpha, beta float32, c []float32, ldc int) {
	rows := m - i0
	if rows > mr {
		rows = mr
	}
	cols := n - j0
	if cols > nr {
		cols = nr
	}
	for r := 0; r < rows; r++ {
		crow := c[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+cols]
		arow := acc[r*nr : r*nr+cols]
		if beta == 0 {
			for j, v := range arow {
				crow[j] = alpha * v
			}
		} else {
			for j, v := range arow {
				crow[j] = alpha*v + beta*crow[j]
			}
		}
	}
}

// growFloats32 is growFloats for float32 scratch.
func growFloats32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}
