package tensor

import (
	"math/rand"
	"testing"
)

// naiveGemm is the reference implementation: the plain three-loop matmul
// with one ascending-k accumulator per output element. The packed kernel
// promises bit-identical results (==, not tolerance) to this order.
func naiveGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for p := 0; p < k; p++ {
				var av, bv float64
				if transA {
					av = a[p*lda+i]
				} else {
					av = a[i*lda+p]
				}
				if transB {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				acc += av * bv
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * acc
			} else {
				c[i*ldc+j] = alpha*acc + beta*c[i*ldc+j]
			}
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// gemmCase runs the packed kernel and the naive reference on the same
// random operands and requires exact equality.
func gemmCase(t *testing.T, rng *rand.Rand, transA, transB bool, m, n, k int, alpha, beta float64) {
	t.Helper()
	lda := k
	if transA {
		lda = m
	}
	ldb := n
	if transB {
		ldb = k
	}
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	cInit := randSlice(rng, m*n)
	got := append([]float64(nil), cInit...)
	want := append([]float64(nil), cInit...)
	GemmRaw(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, got, n)
	naiveGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Gemm(tA=%v tB=%v m=%d n=%d k=%d α=%v β=%v): c[%d]=%g, want %g (must be bit-identical)",
				transA, transB, m, n, k, alpha, beta, i, got[i], want[i])
		}
	}
}

func TestGemmMatchesNaiveExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, n, k int }{
		{1, 1, 1},
		{1, 17, 5},  // 1×N
		{17, 1, 5},  // N×1
		{3, 3, 3},   // all below the 4×4 block
		{4, 4, 4},   // exactly one block
		{5, 6, 7},   // one block plus ragged edges
		{8, 12, 16}, // whole blocks only
		{13, 9, 11}, // odd everything
		{130, 3, 2}, // spans the gemmMC row tile
		{2, 130, 9},
		{33, 33, 1}, // k=1 degenerate reduction
	}
	params := []struct{ alpha, beta float64 }{
		{1, 0}, {1, 1}, {2.5, 0}, {-1, 0.5}, {0, 1}, {0, 0},
	}
	for _, s := range shapes {
		for _, p := range params {
			for _, tA := range []bool{false, true} {
				for _, tB := range []bool{false, true} {
					gemmCase(t, rng, tA, tB, s.m, s.n, s.k, p.alpha, p.beta)
				}
			}
		}
	}
}

func TestGemmFuzzVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		alpha := rng.NormFloat64()
		beta := 0.0
		if rng.Intn(2) == 1 {
			beta = rng.NormFloat64()
		}
		gemmCase(t, rng, rng.Intn(2) == 1, rng.Intn(2) == 1, m, n, k, alpha, beta)
	}
}

func TestGemmEmptyProblems(t *testing.T) {
	// k=0: C degenerates to beta-scaling; m or n = 0: no-op on c.
	c := []float64{1, 2, 3, 4}
	GemmRaw(false, false, 2, 2, 0, 1, nil, 0, nil, 0, 0.5, c, 2)
	for i, want := range []float64{0.5, 1, 1.5, 2} {
		if c[i] != want {
			t.Fatalf("k=0 beta-scale: c[%d]=%g, want %g", i, c[i], want)
		}
	}
	GemmRaw(false, false, 2, 2, 0, 1, nil, 0, nil, 0, 0, c, 2)
	for i := range c {
		if c[i] != 0 {
			t.Fatalf("k=0 beta=0: c[%d]=%g, want 0", i, c[i])
		}
	}
	GemmRaw(false, false, 0, 3, 5, 1, nil, 5, make([]float64, 15), 3, 0, nil, 3)
	GemmRaw(false, false, 3, 0, 5, 1, make([]float64, 15), 5, nil, 0, 0, nil, 0)
}

func TestGemmTensorAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 5, 7)
	b := Randn(rng, 1, 7, 6)
	dst := New(5, 6)
	GemmInto(dst, a, b)
	want := make([]float64, 5*6)
	naiveGemm(false, false, 5, 6, 7, 1, a.Data(), 7, b.Data(), 6, 0, want, 6)
	for i, v := range dst.Data() {
		if v != want[i] {
			t.Fatalf("GemmInto: dst[%d]=%g, want %g", i, v, want[i])
		}
	}

	// Accumulating trans variant: dst += aᵀ·bᵀ.
	at := Randn(rng, 1, 7, 5) // op(at) is 5×7
	bt := Randn(rng, 1, 6, 7) // op(bt) is 7×6
	acc := dst.Clone()
	Gemm(acc, 1, at, true, bt, true, 1)
	want2 := append([]float64(nil), dst.Data()...)
	naiveGemm(true, true, 5, 6, 7, 1, at.Data(), 5, bt.Data(), 7, 1, want2, 6)
	for i, v := range acc.Data() {
		if v != want2[i] {
			t.Fatalf("Gemm trans/accumulate: dst[%d]=%g, want %g", i, v, want2[i])
		}
	}
}

func TestGemmShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := New(2, 3)
	b := New(3, 4)
	expectPanic("inner mismatch", func() { GemmInto(New(2, 4), a, New(4, 4)) })
	expectPanic("dst mismatch", func() { GemmInto(New(3, 4), a, b) })
	expectPanic("non-2D", func() { GemmInto(New(2, 4), New(2, 3, 1), b) })
}

// stubRunner is an in-package Runner that actually runs tasks on goroutines,
// mimicking the parallel.Pool contract without importing it.
type stubRunner struct{ workers int }

func (s stubRunner) Workers() int { return s.workers }

func (s stubRunner) Run(n int, fn func(worker, task int) error) error {
	done := make(chan struct{})
	next := make(chan int)
	for w := 0; w < s.workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for task := range next {
				_ = fn(w, task)
			}
		}(w)
	}
	for task := 0; task < n; task++ {
		next <- task
	}
	close(next)
	for w := 0; w < s.workers; w++ {
		<-done
	}
	return nil
}

func TestGemmParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Big enough to clear gemmParMinWork and to give every worker several
	// row blocks.
	m, n, k := 96, 80, 64
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	serial := New(m, n)
	Gemm(serial, 1, a, false, b, false, 0)
	for _, workers := range []int{1, 2, 3, 5, 8} {
		got := New(m, n)
		GemmParallel(stubRunner{workers: workers}, got, 1, a, false, b, false, 0)
		for i, v := range got.Data() {
			if v != serial.Data()[i] {
				t.Fatalf("workers=%d: c[%d]=%g differs from serial %g", workers, i, v, serial.Data()[i])
			}
		}
	}
	// Nil runner degrades to serial.
	got := New(m, n)
	GemmParallel(nil, got, 1, a, false, b, false, 0)
	for i, v := range got.Data() {
		if v != serial.Data()[i] {
			t.Fatalf("nil runner: c[%d] differs", i)
		}
	}
}

func TestGemmSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, defeating scratch reuse")
	}
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 8, 27)
	b := Randn(rng, 1, 27, 64)
	dst := New(8, 64)
	Gemm(dst, 1, a, false, b, false, 0) // warm the workspace pool
	allocs := testing.AllocsPerRun(50, func() {
		Gemm(dst, 1, a, false, b, false, 0)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Gemm allocated %.1f times per call, want 0", allocs)
	}
}

func TestGemmFLOPCounter(t *testing.T) {
	before := GemmFLOPs()
	rng := rand.New(rand.NewSource(9))
	a := Randn(rng, 1, 3, 4)
	b := Randn(rng, 1, 4, 5)
	GemmInto(New(3, 5), a, b)
	if got, want := GemmFLOPs()-before, int64(2*3*4*5); got != want {
		t.Fatalf("GemmFLOPs delta = %d, want %d", got, want)
	}
}

// DARTS cell shapes actually hit per round on the CIFAR10S workload
// (BatchSize=16, 8×8 images → 1024 lowered columns): the stem conv, a
// pointwise mixed-op conv, the gradW reduction, and the classifier head.
var benchShapes = []struct {
	name           string
	m, n, k        int
	transA, transB bool
}{
	{"stem_4x1024x27", 4, 1024, 27, false, false},
	{"pointwise_8x1024x8", 8, 1024, 8, false, false},
	{"gradW_8x72_k4096", 8, 72, 4096, false, true},
	{"linear_16x10x16", 16, 10, 16, false, true},
}

func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rows, cols := s.m, s.k
			if s.transA {
				rows, cols = cols, rows
			}
			a := randSlice(rng, rows*cols)
			lda := cols
			rows, cols = s.k, s.n
			if s.transB {
				rows, cols = cols, rows
			}
			bm := randSlice(rng, rows*cols)
			ldb := cols
			c := make([]float64, s.m*s.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				GemmRaw(s.transA, s.transB, s.m, s.n, s.k, 1, a, lda, bm, ldb, 0, c, s.n)
			}
			b.StopTimer()
			flops := float64(2*s.m*s.n*s.k) * float64(b.N)
			b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkGemmNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := benchShapes[0]
	a := randSlice(rng, s.m*s.k)
	bm := randSlice(rng, s.k*s.n)
	c := make([]float64, s.m*s.n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveGemm(false, false, s.m, s.n, s.k, 1, a, s.k, bm, s.n, 0, c, s.n)
	}
}
