package tensor

import (
	"runtime"
	"sync/atomic"
)

// The FLOP counter used to be a single atomic.Int64, a cacheline every
// worker goroutine bounced on on every GEMM call (including tiny inline
// products). It is now striped across padded shards: each call hashes to a
// shard from the address of its pooled scratch object — concurrent GEMMs
// necessarily hold distinct scratch objects, so concurrent workers land on
// distinct cachelines with high probability — and readers sum the stripe.

// gemmStatShards is a power of two so the shard index is a mask, sized past
// any plausible worker count on one host.
const gemmStatShards = 32

// gemmStatShard pads each counter pair out to its own 64-byte cacheline so
// neighbouring shards never false-share.
type gemmStatShard struct {
	flops atomic.Int64
	nanos atomic.Int64
	_     [48]byte
}

var gemmStats [gemmStatShards]gemmStatShard

// gemmAddStats records one kernel invocation: flops is 2·m·n·k, nanos the
// wall time spent packing and multiplying (the packed panels are part of
// the kernel's cost, so they are on the clock). hint selects the shard;
// callers pass their scratch object's address.
func gemmAddStats(flops, nanos int64, hint uintptr) {
	// Heap objects are at least 16-byte aligned; shift those dead bits out
	// and fold in higher bits so neighbouring pool objects spread.
	shard := (hint >> 4) ^ (hint >> 9)
	s := &gemmStats[shard%gemmStatShards]
	s.flops.Add(flops)
	s.nanos.Add(nanos)
}

// GemmFLOPs returns the cumulative floating-point operation count of every
// Gemm call in this process (float64 and float32 kernels both count).
// Benchmarks read it before and after a timed region to report achieved
// GFLOP/s.
func GemmFLOPs() int64 {
	var total int64
	for i := range gemmStats {
		total += gemmStats[i].flops.Load()
	}
	return total
}

// GemmKernelNanos returns the cumulative wall-clock nanoseconds spent inside
// GEMM kernel calls (packing included). GemmFLOPs()/GemmKernelNanos() is the
// kernel-achieved FLOP rate, as opposed to FLOPs over total elapsed time
// which dilutes the kernel with everything around it.
func GemmKernelNanos() int64 {
	var total int64
	for i := range gemmStats {
		total += gemmStats[i].nanos.Load()
	}
	return total
}

// KernelFeatures reports the CPU capabilities detected at init and the GEMM
// kernel variants selected for this process, so BENCH_*.json artifacts are
// comparable across hosts.
type KernelFeatures struct {
	Arch string `json:"arch"`
	// AVX2 and FMA are the detected CPU capabilities. FMA is reported but
	// deliberately unused by the kernels: a fused multiply-add rounds once
	// where the pure-Go reference rounds twice, which would break the
	// bit-identity contract between kernel variants.
	AVX2 bool `json:"avx2"`
	FMA  bool `json:"fma"`
	// KernelF64 and KernelF32 name the selected micro-kernel variants
	// (e.g. "avx2-8x8", "go-4x4").
	KernelF64 string `json:"kernel_f64"`
	KernelF32 string `json:"kernel_f32"`
}

// KernelInfo returns the kernel selection made at package init.
func KernelInfo() KernelFeatures {
	return KernelFeatures{
		Arch:      runtime.GOARCH,
		AVX2:      cpuHasAVX2,
		FMA:       cpuHasFMA,
		KernelF64: gemmActiveF64.name,
		KernelF32: gemmActiveF32.name,
	}
}

// cpuHasAVX2/cpuHasFMA are set by the amd64 init (gemm_amd64.go) and stay
// false on other architectures or under -tags noasm.
var cpuHasAVX2, cpuHasFMA bool
