// GEMM kernel layer: one fast matmul under everything dense.
//
// The kernel follows the classic packed design (pack the operands into
// panel-contiguous scratch, then drive a register-blocked micro-kernel over
// the panels) with one deliberate deviation: the reduction dimension k is
// never split. Each output element is produced by a single accumulator that
// walks k in ascending order, so
//
//	C[i,j] = beta*C[i,j] + alpha * Σ_{p=0..k-1} op(A)[i,p]·op(B)[p,j]
//
// with exactly one rounding for the alpha/beta combination at the end. That
// fixed "canonical summation order" makes the blocked kernel bit-identical
// to the naive three-loop reference, to itself at every block size, and to
// the row-sharded parallel path at every worker count — the repo-wide
// determinism invariant (DESIGN.md §Kernels) falls out for free.
//
// Not splitting k costs workspace proportional to (m+n)·k floats instead of
// a fixed cache block. At this repository's scale (im2col matrices of a few
// thousand columns) the packed panels are a few MB at most, pooled and
// reused across calls, so steady-state GEMM performs zero heap allocations.
package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// gemmMR×gemmNR is the register block: the micro-kernel holds this many
	// accumulators live across the whole k loop.
	gemmMR = 4
	gemmNR = 4
	// gemmMC caps how many A strips (gemmMR rows each) are walked per B
	// strip before moving on — the cache tile over output rows.
	gemmMC = 32
	// gemmParMinWork is the m·n·k below which the parallel path runs inline:
	// smaller products finish faster than a pool dispatch.
	gemmParMinWork = 64 * 1024
)

// gemmScratch holds the packed panels. Checked out of gemmPool per call so
// concurrent GEMMs (one per round-engine worker) never share panels.
type gemmScratch struct {
	packA []float64
	packB []float64
}

var gemmPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// gemmFlops counts floating-point operations (2·m·n·k per call) issued
// through the kernel, for achieved-GFLOP/s reporting (cmd/benchrounds).
var gemmFlops atomic.Int64

// GemmFLOPs returns the cumulative floating-point operation count of every
// Gemm call in this process. Benchmarks read it before and after a timed
// region to report achieved GFLOP/s.
func GemmFLOPs() int64 { return gemmFlops.Load() }

// Runner abstracts the worker pool the parallel path shards over. It is
// satisfied by *parallel.Pool (and by a nil-free serial stub in tests); the
// tensor package stays dependency-free by naming only the shape.
type Runner interface {
	Workers() int
	Run(n int, fn func(worker, task int) error) error
}

// Gemm computes dst = alpha·op(a)·op(b) + beta·dst for 2-D tensors, where
// op(x) is x or its transpose. The transposed operand is read in place —
// backward passes never materialize a transposed copy. dst must not alias a
// or b.
func Gemm(dst *Tensor, alpha float64, a *Tensor, transA bool, b *Tensor, transB bool, beta float64) {
	m, n, k := gemmDims(dst, a, transA, b, transB)
	GemmRaw(transA, transB, m, n, k, alpha, a.data, a.shape[1], b.data, b.shape[1], beta, dst.data, n)
}

// GemmInto computes dst = a·b (the plain matmul special case).
func GemmInto(dst, a, b *Tensor) { Gemm(dst, 1, a, false, b, false, 0) }

// GemmParallel is Gemm with output rows sharded over r. Results are
// bit-identical to Gemm at every worker count (each output element is still
// one ascending-k accumulator, owned by exactly one task). A nil Runner or
// a single-worker pool runs inline.
func GemmParallel(r Runner, dst *Tensor, alpha float64, a *Tensor, transA bool, b *Tensor, transB bool, beta float64) {
	m, n, k := gemmDims(dst, a, transA, b, transB)
	GemmRawParallel(r, transA, transB, m, n, k, alpha, a.data, a.shape[1], b.data, b.shape[1], beta, dst.data, n)
}

// gemmDims validates the tensor-level operand shapes and returns (m, n, k).
func gemmDims(dst, a *Tensor, transA bool, b *Tensor, transB bool) (m, n, k int) {
	if dst.Dims() != 2 || a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: Gemm requires 2-D operands")
	}
	m, k = a.shape[0], a.shape[1]
	if transA {
		m, k = k, m
	}
	kb, n := b.shape[0], b.shape[1]
	if transB {
		kb, n = n, kb
	}
	if k != kb {
		panic(fmt.Sprintf("tensor: Gemm inner dims %d vs %d", k, kb))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: Gemm dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	return m, n, k
}

// GemmRaw is the slice-level kernel: C = alpha·op(A)·op(B) + beta·C with C
// of shape [m,n] at row stride ldc. lda/ldb are the row strides of A and B
// as stored (so for a transposed operand they stride the pre-transpose
// layout, exactly like BLAS). Empty problems (m, n or k zero) degenerate to
// scaling C by beta.
func GemmRaw(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if gemmTrivial(m, n, k, beta, c, ldc) {
		return
	}
	ws := gemmPool.Get().(*gemmScratch)
	ms, ns := ws.pack(transA, transB, m, n, k, a, lda, b, ldb)
	gemmKernel(ws.packA, ws.packB, 0, ms, ns, m, n, k, alpha, beta, c, ldc)
	gemmPool.Put(ws)
	gemmFlops.Add(2 * int64(m) * int64(n) * int64(k))
}

// GemmRawParallel is GemmRaw with contiguous row-strip blocks fanned out
// over r. Packing happens once on the calling goroutine; tasks write
// disjoint row ranges of C, so no synchronization is needed and the result
// is bit-identical to the serial kernel.
func GemmRawParallel(r Runner, transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	workers := 1
	if r != nil {
		workers = r.Workers()
	}
	if workers <= 1 || m*n*k < gemmParMinWork {
		GemmRaw(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	if gemmTrivial(m, n, k, beta, c, ldc) {
		return
	}
	ws := gemmPool.Get().(*gemmScratch)
	ms, ns := ws.pack(transA, transB, m, n, k, a, lda, b, ldb)
	// One block of strips per task; a few tasks per worker so a straggling
	// block cannot serialize the tail.
	tasks := workers * 4
	if tasks > ms {
		tasks = ms
	}
	per := (ms + tasks - 1) / tasks
	_ = r.Run(tasks, func(_, task int) error {
		lo := task * per
		hi := lo + per
		if hi > ms {
			hi = ms
		}
		if lo < hi {
			gemmKernel(ws.packA, ws.packB, lo, hi, ns, m, n, k, alpha, beta, c, ldc)
		}
		return nil
	})
	gemmPool.Put(ws)
	gemmFlops.Add(2 * int64(m) * int64(n) * int64(k))
}

// gemmTrivial handles empty problems; it reports whether the call is done.
func gemmTrivial(m, n, k int, beta float64, c []float64, ldc int) bool {
	if m <= 0 || n <= 0 {
		return true
	}
	if k > 0 {
		return false
	}
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
	return true
}

// pack fills the scratch panels and returns the strip counts (ms strips of
// gemmMR rows, ns strips of gemmNR columns). Rows and columns beyond m and
// n are zero-padded so the micro-kernel never branches on the edge; padding
// never touches the k axis, keeping every real accumulator's operation
// sequence identical to the naive loop.
func (ws *gemmScratch) pack(transA, transB bool, m, n, k int, a []float64, lda int, b []float64, ldb int) (ms, ns int) {
	ms = (m + gemmMR - 1) / gemmMR
	ns = (n + gemmNR - 1) / gemmNR
	ws.packA = growFloats(ws.packA, ms*gemmMR*k)
	ws.packB = growFloats(ws.packB, ns*gemmNR*k)

	pa := ws.packA
	for s := 0; s < ms; s++ {
		base := s * gemmMR * k
		for r := 0; r < gemmMR; r++ {
			i := s*gemmMR + r
			if i >= m {
				for p := 0; p < k; p++ {
					pa[base+p*gemmMR+r] = 0
				}
				continue
			}
			if transA {
				for p := 0; p < k; p++ {
					pa[base+p*gemmMR+r] = a[p*lda+i]
				}
			} else {
				row := a[i*lda : i*lda+k]
				for p, v := range row {
					pa[base+p*gemmMR+r] = v
				}
			}
		}
	}

	pb := ws.packB
	for t := 0; t < ns; t++ {
		base := t * gemmNR * k
		for col := 0; col < gemmNR; col++ {
			j := t*gemmNR + col
			if j >= n {
				for p := 0; p < k; p++ {
					pb[base+p*gemmNR+col] = 0
				}
				continue
			}
			if transB {
				row := b[j*ldb : j*ldb+k]
				for p, v := range row {
					pb[base+p*gemmNR+col] = v
				}
			} else {
				for p := 0; p < k; p++ {
					pb[base+p*gemmNR+col] = b[p*ldb+j]
				}
			}
		}
	}
	return ms, ns
}

// gemmKernel runs the macro-kernel over A strips [s0,s1) against every B
// strip: cache-tiled over gemmMC strips of rows so a B strip stays hot
// while the A strips of one tile stream past it.
func gemmKernel(packA, packB []float64, s0, s1, ns, m, n, k int, alpha, beta float64, c []float64, ldc int) {
	for sb := s0; sb < s1; sb += gemmMC {
		sEnd := sb + gemmMC
		if sEnd > s1 {
			sEnd = s1
		}
		for t := 0; t < ns; t++ {
			pb := packB[t*gemmNR*k : (t+1)*gemmNR*k]
			for s := sb; s < sEnd; s++ {
				pa := packA[s*gemmMR*k : (s+1)*gemmMR*k]
				var acc [gemmMR * gemmNR]float64
				gemmMicro(k, pa, pb, &acc)
				gemmStore(&acc, s*gemmMR, t*gemmNR, m, n, alpha, beta, c, ldc)
			}
		}
	}
}

// gemmMicro is the register-blocked 4×4 micro-kernel: 16 accumulators held
// across the whole (unsplit) k loop, reading one packed column of A and one
// packed row of B per step — every loaded element feeds four FMAs.
func gemmMicro(k int, pa, pb []float64, acc *[gemmMR * gemmNR]float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	idx := 0
	for p := 0; p < k; p++ {
		a0, a1, a2, a3 := pa[idx], pa[idx+1], pa[idx+2], pa[idx+3]
		b0, b1, b2, b3 := pb[idx], pb[idx+1], pb[idx+2], pb[idx+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		idx += 4
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// gemmStore writes one micro-tile back with the alpha/beta combination,
// masking the zero-padded edge rows/columns.
func gemmStore(acc *[gemmMR * gemmNR]float64, i0, j0, m, n int, alpha, beta float64, c []float64, ldc int) {
	rows := m - i0
	if rows > gemmMR {
		rows = gemmMR
	}
	cols := n - j0
	if cols > gemmNR {
		cols = gemmNR
	}
	for r := 0; r < rows; r++ {
		crow := c[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+cols]
		arow := acc[r*gemmNR : r*gemmNR+cols]
		if beta == 0 {
			for j, v := range arow {
				crow[j] = alpha * v
			}
		} else {
			for j, v := range arow {
				crow[j] = alpha*v + beta*crow[j]
			}
		}
	}
}

// growFloats returns a length-n slice backed by buf when it is large enough,
// allocating only on growth. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
