// GEMM kernel layer: one fast matmul under everything dense.
//
// The kernel follows the classic packed design (pack the operands into
// panel-contiguous scratch, then drive a register-blocked micro-kernel over
// the panels) with one deliberate deviation: the reduction dimension k is
// never split. Each output element is produced by a single accumulator that
// walks k in ascending order, so
//
//	C[i,j] = beta*C[i,j] + alpha * Σ_{p=0..k-1} op(A)[i,p]·op(B)[p,j]
//
// with exactly one rounding for the alpha/beta combination at the end. That
// fixed "canonical summation order" makes the blocked kernel bit-identical
// to the naive three-loop reference, to itself at every block size, and to
// the row-sharded parallel path at every worker count — the repo-wide
// determinism invariant (DESIGN.md §Kernels) falls out for free.
//
// The micro-kernel itself is pluggable: gemmActiveF64 names the variant the
// package dispatches to, selected once at init. On amd64 with AVX2 an
// assembly 8×8 kernel (gemm_amd64.s) replaces the pure-Go 4×4 one; both
// vectorize only across independent output elements and keep a separate
// multiply and add per k step (never a fused multiply-add), so every
// variant produces bit-identical output. The pure-Go kernel remains the
// always-compiled reference (`-tags noasm` or any non-amd64 GOARCH).
//
// Not splitting k costs workspace proportional to (m+n)·k floats instead of
// a fixed cache block. At this repository's scale (im2col matrices of a few
// thousand columns) the packed panels are a few MB at most, pooled and
// reused across calls, so steady-state GEMM performs zero heap allocations.
package tensor

import (
	"fmt"
	"sync"
	"time"
	"unsafe"
)

const (
	// gemmMaxMR×gemmMaxNR bounds the register block across every kernel
	// variant: micro-kernels write their tile into a fixed [64]-element
	// accumulator so variants can be swapped without resizing scratch.
	gemmMaxMR = 8
	gemmMaxNR = 8
	// gemmMC caps how many A strips (mr rows each) are walked per B strip
	// before moving on — the cache tile over output rows.
	gemmMC = 32
	// gemmParMinWork is the m·n·k below which the parallel path runs inline:
	// smaller products finish faster than a pool dispatch.
	gemmParMinWork = 64 * 1024
)

// gemmKernelF64 is one register-blocked micro-kernel variant: mr×nr
// accumulators held across the whole (unsplit) k loop. micro reads mr·k
// packed A values and nr·k packed B values and writes the tile into
// acc[r*nr+c].
type gemmKernelF64 struct {
	name   string
	mr, nr int
	micro  func(k int, pa, pb []float64, acc *[gemmMaxMR * gemmMaxNR]float64)
}

// gemmGo4x4 is the portable reference kernel — always compiled, on every
// architecture, and the fallback when no SIMD variant is selected.
var gemmGo4x4 = gemmKernelF64{name: "go-4x4", mr: 4, nr: 4, micro: gemmMicro4x4}

// gemmActiveF64 is the kernel every float64 Gemm call dispatches to. It is
// written exactly once, by init (gemm_amd64.go swaps in the AVX2 variant
// when the CPU supports it), and read-only afterwards.
var gemmActiveF64 = &gemmGo4x4

// gemmShortF64, when non-nil, handles problems of at most 4 output rows
// (where a wide tile would spend half its arithmetic on zero padding).
// Kernel choice never changes results — padding rows never contribute to a
// stored element — so this is purely a throughput dispatch.
var gemmShortF64 *gemmKernelF64

// gemmKernelFor picks the variant for an m-row problem.
func gemmKernelFor(m int) *gemmKernelF64 {
	if gemmShortF64 != nil && m <= 4 {
		return gemmShortF64
	}
	return gemmActiveF64
}

// gemmScratch holds the packed panels. Checked out of gemmPool per call so
// concurrent GEMMs (one per round-engine worker) never share panels.
type gemmScratch struct {
	packA []float64
	packB []float64
}

var gemmPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// gemmAccPool recycles micro-tile accumulators. The micro-kernel is reached
// through a function value, so a stack-declared tile would be forced to
// escape (one heap allocation per tile); pooling keeps the steady state
// allocation-free.
var gemmAccPool = sync.Pool{New: func() any { return new([gemmMaxMR * gemmMaxNR]float64) }}

// Runner abstracts the worker pool the parallel path shards over. It is
// satisfied by *parallel.Pool (and by a nil-free serial stub in tests); the
// tensor package stays dependency-free by naming only the shape.
type Runner interface {
	Workers() int
	Run(n int, fn func(worker, task int) error) error
}

// Gemm computes dst = alpha·op(a)·op(b) + beta·dst for 2-D tensors, where
// op(x) is x or its transpose. The transposed operand is read in place —
// backward passes never materialize a transposed copy. dst must not alias a
// or b.
func Gemm(dst *Tensor, alpha float64, a *Tensor, transA bool, b *Tensor, transB bool, beta float64) {
	m, n, k := gemmDims(dst, a, transA, b, transB)
	GemmRaw(transA, transB, m, n, k, alpha, a.data, a.shape[1], b.data, b.shape[1], beta, dst.data, n)
}

// GemmInto computes dst = a·b (the plain matmul special case).
func GemmInto(dst, a, b *Tensor) { Gemm(dst, 1, a, false, b, false, 0) }

// GemmParallel is Gemm with output rows sharded over r. Results are
// bit-identical to Gemm at every worker count (each output element is still
// one ascending-k accumulator, owned by exactly one task). A nil Runner or
// a single-worker pool runs inline.
func GemmParallel(r Runner, dst *Tensor, alpha float64, a *Tensor, transA bool, b *Tensor, transB bool, beta float64) {
	m, n, k := gemmDims(dst, a, transA, b, transB)
	GemmRawParallel(r, transA, transB, m, n, k, alpha, a.data, a.shape[1], b.data, b.shape[1], beta, dst.data, n)
}

// gemmDims validates the tensor-level operand shapes and returns (m, n, k).
func gemmDims(dst, a *Tensor, transA bool, b *Tensor, transB bool) (m, n, k int) {
	if dst.Dims() != 2 || a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: Gemm requires 2-D operands")
	}
	m, k = a.shape[0], a.shape[1]
	if transA {
		m, k = k, m
	}
	kb, n := b.shape[0], b.shape[1]
	if transB {
		kb, n = n, kb
	}
	if k != kb {
		panic(fmt.Sprintf("tensor: Gemm inner dims %d vs %d", k, kb))
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: Gemm dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	return m, n, k
}

// GemmRaw is the slice-level kernel: C = alpha·op(A)·op(B) + beta·C with C
// of shape [m,n] at row stride ldc. lda/ldb are the row strides of A and B
// as stored (so for a transposed operand they stride the pre-transpose
// layout, exactly like BLAS). Empty problems (m, n or k zero) degenerate to
// scaling C by beta.
func GemmRaw(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	gemmRawWith(gemmKernelFor(m), transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// gemmRawWith is GemmRaw pinned to one kernel variant (the seam the
// asm-vs-fallback parity tests drive).
func gemmRawWith(kv *gemmKernelF64, transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if gemmTrivial(m, n, k, beta, c, ldc) {
		return
	}
	start := time.Now()
	ws := gemmPool.Get().(*gemmScratch)
	ms, ns := ws.pack(kv.mr, kv.nr, transA, transB, m, n, k, a, lda, b, ldb)
	gemmMacro(kv, ws.packA, ws.packB, 0, ms, ns, m, n, k, alpha, beta, c, ldc)
	hint := uintptr(unsafe.Pointer(ws))
	gemmPool.Put(ws)
	gemmAddStats(2*int64(m)*int64(n)*int64(k), time.Since(start).Nanoseconds(), hint)
}

// GemmRawParallel is GemmRaw with contiguous row-strip blocks fanned out
// over r. Packing happens once on the calling goroutine; tasks write
// disjoint row ranges of C, so no synchronization is needed and the result
// is bit-identical to the serial kernel.
func GemmRawParallel(r Runner, transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	workers := 1
	if r != nil {
		workers = r.Workers()
	}
	if workers <= 1 || m*n*k < gemmParMinWork {
		GemmRaw(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	if gemmTrivial(m, n, k, beta, c, ldc) {
		return
	}
	kv := gemmKernelFor(m)
	start := time.Now()
	ws := gemmPool.Get().(*gemmScratch)
	ms, ns := ws.pack(kv.mr, kv.nr, transA, transB, m, n, k, a, lda, b, ldb)
	// One block of strips per task; a few tasks per worker so a straggling
	// block cannot serialize the tail.
	tasks := workers * 4
	if tasks > ms {
		tasks = ms
	}
	per := (ms + tasks - 1) / tasks
	_ = r.Run(tasks, func(_, task int) error {
		lo := task * per
		hi := lo + per
		if hi > ms {
			hi = ms
		}
		if lo < hi {
			gemmMacro(kv, ws.packA, ws.packB, lo, hi, ns, m, n, k, alpha, beta, c, ldc)
		}
		return nil
	})
	hint := uintptr(unsafe.Pointer(ws))
	gemmPool.Put(ws)
	gemmAddStats(2*int64(m)*int64(n)*int64(k), time.Since(start).Nanoseconds(), hint)
}

// gemmTrivial handles empty problems; it reports whether the call is done.
func gemmTrivial(m, n, k int, beta float64, c []float64, ldc int) bool {
	if m <= 0 || n <= 0 {
		return true
	}
	if k > 0 {
		return false
	}
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
	return true
}

// pack fills the scratch panels and returns the strip counts (ms strips of
// mr rows, ns strips of nr columns). Rows and columns beyond m and n are
// zero-padded so the micro-kernel never branches on the edge; padding never
// touches the k axis, keeping every real accumulator's operation sequence
// identical to the naive loop at any mr/nr.
func (ws *gemmScratch) pack(mr, nr int, transA, transB bool, m, n, k int, a []float64, lda int, b []float64, ldb int) (ms, ns int) {
	ms = (m + mr - 1) / mr
	ns = (n + nr - 1) / nr
	ws.packA = growFloats(ws.packA, ms*mr*k)
	ws.packB = growFloats(ws.packB, ns*nr*k)

	// Loop order per case is chosen so the strided direction walks the
	// source contiguously: transposed A and plain B are gathered row-by-row
	// (contiguous reads, contiguous mr/nr-element writes) instead of
	// column-by-column (one cacheline touch per element).
	pa := ws.packA
	for s := 0; s < ms; s++ {
		base := s * mr * k
		rlim := m - s*mr
		if rlim > mr {
			rlim = mr
		}
		if transA && rlim == 8 && mr == 8 {
			// Unrolled 8-element moves: a variable-length copy() of 64
			// bytes is mostly memmove call overhead at this size.
			for p := 0; p < k; p++ {
				src := a[p*lda+s*mr : p*lda+s*mr+8]
				dst := pa[base+p*8 : base+p*8+8]
				dst[0], dst[1], dst[2], dst[3] = src[0], src[1], src[2], src[3]
				dst[4], dst[5], dst[6], dst[7] = src[4], src[5], src[6], src[7]
			}
		} else if transA {
			for p := 0; p < k; p++ {
				src := a[p*lda+s*mr : p*lda+s*mr+rlim]
				dst := pa[base+p*mr : base+p*mr+mr]
				copy(dst, src)
				for r := rlim; r < mr; r++ {
					dst[r] = 0
				}
			}
		} else if rlim == 8 && mr == 8 {
			// Full 8-row strip: walk all rows in one pass so every packed
			// write fills a contiguous 8-element (one cacheline) block,
			// instead of revisiting each destination cacheline per row.
			r0 := a[(s*mr+0)*lda:]
			r1 := a[(s*mr+1)*lda:]
			r2 := a[(s*mr+2)*lda:]
			r3 := a[(s*mr+3)*lda:]
			r4 := a[(s*mr+4)*lda:]
			r5 := a[(s*mr+5)*lda:]
			r6 := a[(s*mr+6)*lda:]
			r7 := a[(s*mr+7)*lda:]
			for p := 0; p < k; p++ {
				d := pa[base+p*8 : base+p*8+8]
				d[0], d[1], d[2], d[3] = r0[p], r1[p], r2[p], r3[p]
				d[4], d[5], d[6], d[7] = r4[p], r5[p], r6[p], r7[p]
			}
		} else {
			// Partial (or 4-wide) strip: same single-pass layout, with the
			// zero-padding folded into the contiguous write.
			var rows [gemmMaxMR][]float64
			for r := 0; r < rlim; r++ {
				rows[r] = a[(s*mr+r)*lda:]
			}
			for p := 0; p < k; p++ {
				d := pa[base+p*mr : base+p*mr+mr]
				for r := 0; r < rlim; r++ {
					d[r] = rows[r][p]
				}
				for r := rlim; r < mr; r++ {
					d[r] = 0
				}
			}
		}
	}

	pb := ws.packB
	for t := 0; t < ns; t++ {
		base := t * nr * k
		clim := n - t*nr
		if clim > nr {
			clim = nr
		}
		if transB && clim == 8 && nr == 8 {
			// Same single-pass transpose as the full A strip above.
			r0 := b[(t*nr+0)*ldb:]
			r1 := b[(t*nr+1)*ldb:]
			r2 := b[(t*nr+2)*ldb:]
			r3 := b[(t*nr+3)*ldb:]
			r4 := b[(t*nr+4)*ldb:]
			r5 := b[(t*nr+5)*ldb:]
			r6 := b[(t*nr+6)*ldb:]
			r7 := b[(t*nr+7)*ldb:]
			for p := 0; p < k; p++ {
				d := pb[base+p*8 : base+p*8+8]
				d[0], d[1], d[2], d[3] = r0[p], r1[p], r2[p], r3[p]
				d[4], d[5], d[6], d[7] = r4[p], r5[p], r6[p], r7[p]
			}
		} else if transB {
			var rows [gemmMaxNR][]float64
			for col := 0; col < clim; col++ {
				rows[col] = b[(t*nr+col)*ldb:]
			}
			for p := 0; p < k; p++ {
				d := pb[base+p*nr : base+p*nr+nr]
				for col := 0; col < clim; col++ {
					d[col] = rows[col][p]
				}
				for col := clim; col < nr; col++ {
					d[col] = 0
				}
			}
		} else if clim == 8 && nr == 8 {
			// Unrolled like the full transA strip above.
			for p := 0; p < k; p++ {
				src := b[p*ldb+t*8 : p*ldb+t*8+8]
				dst := pb[base+p*8 : base+p*8+8]
				dst[0], dst[1], dst[2], dst[3] = src[0], src[1], src[2], src[3]
				dst[4], dst[5], dst[6], dst[7] = src[4], src[5], src[6], src[7]
			}
		} else {
			for p := 0; p < k; p++ {
				src := b[p*ldb+t*nr : p*ldb+t*nr+clim]
				dst := pb[base+p*nr : base+p*nr+nr]
				copy(dst, src)
				for col := clim; col < nr; col++ {
					dst[col] = 0
				}
			}
		}
	}
	return ms, ns
}

// gemmMacro runs the macro-kernel over A strips [s0,s1) against every B
// strip: cache-tiled over gemmMC strips of rows so a B strip stays hot
// while the A strips of one tile stream past it.
func gemmMacro(kv *gemmKernelF64, packA, packB []float64, s0, s1, ns, m, n, k int, alpha, beta float64, c []float64, ldc int) {
	mr, nr := kv.mr, kv.nr
	acc := gemmAccPool.Get().(*[gemmMaxMR * gemmMaxNR]float64)
	for sb := s0; sb < s1; sb += gemmMC {
		sEnd := sb + gemmMC
		if sEnd > s1 {
			sEnd = s1
		}
		for t := 0; t < ns; t++ {
			pb := packB[t*nr*k : (t+1)*nr*k]
			for s := sb; s < sEnd; s++ {
				pa := packA[s*mr*k : (s+1)*mr*k]
				kv.micro(k, pa, pb, acc)
				gemmStore(acc, nr, s*mr, t*nr, mr, m, n, alpha, beta, c, ldc)
			}
		}
	}
	gemmAccPool.Put(acc)
}

// gemmMicro4x4 is the portable register-blocked 4×4 micro-kernel: 16
// accumulators held across the whole (unsplit) k loop, reading one packed
// column of A and one packed row of B per step. Each step is a separate
// multiply then add (two roundings), the exact sequence the naive reference
// and the SIMD variants reproduce.
func gemmMicro4x4(k int, pa, pb []float64, acc *[gemmMaxMR * gemmMaxNR]float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	idx := 0
	for p := 0; p < k; p++ {
		a0, a1, a2, a3 := pa[idx], pa[idx+1], pa[idx+2], pa[idx+3]
		b0, b1, b2, b3 := pb[idx], pb[idx+1], pb[idx+2], pb[idx+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		idx += 4
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// gemmStore writes one micro-tile back with the alpha/beta combination,
// masking the zero-padded edge rows/columns. nr is the tile's row stride in
// acc; mr bounds the row count.
func gemmStore(acc *[gemmMaxMR * gemmMaxNR]float64, nr, i0, j0, mr, m, n int, alpha, beta float64, c []float64, ldc int) {
	rows := m - i0
	if rows > mr {
		rows = mr
	}
	cols := n - j0
	if cols > nr {
		cols = nr
	}
	// alpha==1 specializations skip arithmetic that rounds identically
	// anyway (1·v and 1·x are exact), turning the hot forward store
	// (beta==0) into a memmove and the gradient-accumulate store (beta==1)
	// into a plain add. The generic path below computes the same values.
	if alpha == 1 {
		for r := 0; r < rows; r++ {
			crow := c[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+cols]
			arow := acc[r*nr : r*nr+cols]
			switch {
			case beta == 0 && cols == 8:
				crow[0], crow[1], crow[2], crow[3] = arow[0], arow[1], arow[2], arow[3]
				crow[4], crow[5], crow[6], crow[7] = arow[4], arow[5], arow[6], arow[7]
			case beta == 0:
				copy(crow, arow)
			case beta == 1 && cols == 8:
				crow[0] += arow[0]
				crow[1] += arow[1]
				crow[2] += arow[2]
				crow[3] += arow[3]
				crow[4] += arow[4]
				crow[5] += arow[5]
				crow[6] += arow[6]
				crow[7] += arow[7]
			case beta == 1:
				for j, v := range arow {
					crow[j] += v
				}
			default:
				for j, v := range arow {
					crow[j] = v + beta*crow[j]
				}
			}
		}
		return
	}
	for r := 0; r < rows; r++ {
		crow := c[(i0+r)*ldc+j0 : (i0+r)*ldc+j0+cols]
		arow := acc[r*nr : r*nr+cols]
		if beta == 0 {
			for j, v := range arow {
				crow[j] = alpha * v
			}
		} else {
			for j, v := range arow {
				crow[j] = alpha*v + beta*crow[j]
			}
		}
	}
}

// growFloats returns a length-n slice backed by buf when it is large enough,
// allocating only on growth. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
