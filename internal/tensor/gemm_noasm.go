//go:build !amd64 || noasm

package tensor

// Fallback build (non-amd64 architectures, or -tags noasm): the pure-Go
// 4×4 kernels declared in gemm.go/gemm_f32.go stay selected and no CPU
// feature detection runs. check.sh builds and tests this path on every run
// so it cannot rot.

const asmKernels = false
