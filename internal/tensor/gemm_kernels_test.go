package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// kernelVariantsF64 returns every float64 kernel variant compiled into this
// binary: the portable reference plus, on asm builds, the SIMD variants.
func kernelVariantsF64() []*gemmKernelF64 {
	variants := []*gemmKernelF64{&gemmGo4x4}
	if gemmActiveF64 != &gemmGo4x4 {
		variants = append(variants, gemmActiveF64)
	}
	if gemmShortF64 != nil {
		variants = append(variants, gemmShortF64)
	}
	return variants
}

// TestKernelVariantsBitIdentical pins the contract that lets the dispatcher
// pick kernels freely: every compiled variant produces bit-identical output
// to the pure-Go reference at every shape, including ragged edges where the
// wider tiles are mostly padding. `make bench` runs this before timing, so
// a GFLOPS number can never come from a kernel that changed the answer.
func TestKernelVariantsBitIdentical(t *testing.T) {
	if !asmKernels {
		t.Log("no asm kernels in this build; verifying the reference against itself")
	}
	rng := rand.New(rand.NewSource(23))
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 2}, {4, 8, 27}, {5, 9, 7}, {8, 8, 8},
		{8, 1024, 8}, {9, 17, 33}, {16, 10, 16}, {64, 48, 31},
	}
	for _, s := range shapes {
		for _, tA := range []bool{false, true} {
			for _, tB := range []bool{false, true} {
				lda := s.k
				if tA {
					lda = s.m
				}
				ldb := s.n
				if tB {
					ldb = s.k
				}
				a := randSlice(rng, s.m*s.k)
				b := randSlice(rng, s.k*s.n)
				cInit := randSlice(rng, s.m*s.n)
				want := append([]float64(nil), cInit...)
				gemmRawWith(&gemmGo4x4, tA, tB, s.m, s.n, s.k, 1.25, a, lda, b, ldb, 0.5, want, s.n)
				for _, kv := range kernelVariantsF64() {
					got := append([]float64(nil), cInit...)
					gemmRawWith(kv, tA, tB, s.m, s.n, s.k, 1.25, a, lda, b, ldb, 0.5, got, s.n)
					for i := range want {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("kernel %s (tA=%v tB=%v m=%d n=%d k=%d): c[%d]=%g, reference %g",
								kv.name, tA, tB, s.m, s.n, s.k, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// naiveGemmF32 mirrors naiveGemm in float32: one ascending-k accumulator,
// separate multiply and add per step.
func naiveGemmF32(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				var av, bv float32
				if transA {
					av = a[p*lda+i]
				} else {
					av = a[i*lda+p]
				}
				if transB {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				acc += av * bv
			}
			if beta == 0 {
				c[i*ldc+j] = alpha * acc
			} else {
				c[i*ldc+j] = alpha*acc + beta*c[i*ldc+j]
			}
		}
	}
}

func randSliceF32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestGemmF32MatchesNaiveExactly: the float32 kernel holds the same
// canonical-summation invariant within its own precision.
func TestGemmF32MatchesNaiveExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 3, 3}, {4, 4, 4}, {5, 6, 7}, {8, 8, 8},
		{8, 12, 16}, {13, 9, 11}, {2, 130, 9}, {33, 33, 1},
	}
	params := []struct{ alpha, beta float32 }{{1, 0}, {1, 1}, {2.5, 0}, {-1, 0.5}}
	for _, s := range shapes {
		for _, p := range params {
			for _, tA := range []bool{false, true} {
				for _, tB := range []bool{false, true} {
					lda := s.k
					if tA {
						lda = s.m
					}
					ldb := s.n
					if tB {
						ldb = s.k
					}
					a := randSliceF32(rng, s.m*s.k)
					b := randSliceF32(rng, s.k*s.n)
					cInit := randSliceF32(rng, s.m*s.n)
					got := append([]float32(nil), cInit...)
					want := append([]float32(nil), cInit...)
					GemmRawF32(tA, tB, s.m, s.n, s.k, p.alpha, a, lda, b, ldb, p.beta, got, s.n)
					naiveGemmF32(tA, tB, s.m, s.n, s.k, p.alpha, a, lda, b, ldb, p.beta, want, s.n)
					for i := range want {
						if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
							t.Fatalf("GemmRawF32(tA=%v tB=%v m=%d n=%d k=%d α=%v β=%v): c[%d]=%g, want %g",
								tA, tB, s.m, s.n, s.k, p.alpha, p.beta, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestGemmF32EmptyProblems(t *testing.T) {
	c := []float32{1, 2, 3, 4}
	GemmRawF32(false, false, 2, 2, 0, 1, nil, 0, nil, 0, 0.5, c, 2)
	for i, want := range []float32{0.5, 1, 1.5, 2} {
		if c[i] != want {
			t.Fatalf("k=0 beta-scale: c[%d]=%g, want %g", i, c[i], want)
		}
	}
	GemmRawF32(false, false, 0, 3, 5, 1, nil, 5, make([]float32, 15), 3, 0, nil, 3)
}

// TestGemmFLOPCounterConcurrentTotal: the sharded counter loses nothing —
// the summed total equals the exact FLOP count of a known concurrent
// workload — and the fast path stays allocation-free.
func TestGemmFLOPCounterConcurrentTotal(t *testing.T) {
	const (
		goroutines = 8
		callsEach  = 50
		m, n, k    = 6, 7, 8
	)
	rng := rand.New(rand.NewSource(17))
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	before := GemmFLOPs()
	nanosBefore := GemmKernelNanos()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float64, m*n)
			for i := 0; i < callsEach; i++ {
				GemmRaw(false, false, m, n, k, 1, a, k, b, n, 0, c, n)
			}
		}()
	}
	wg.Wait()
	want := int64(goroutines * callsEach * 2 * m * n * k)
	if got := GemmFLOPs() - before; got != want {
		t.Fatalf("sharded FLOP total = %d, want %d", got, want)
	}
	if GemmKernelNanos() == nanosBefore {
		t.Fatal("GemmKernelNanos did not advance across kernel calls")
	}
}

func TestGemmStatsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, defeating scratch reuse")
	}
	allocs := testing.AllocsPerRun(100, func() {
		gemmAddStats(1, 1, 0xdeadbeef)
		_ = GemmFLOPs()
	})
	if allocs > 0 {
		t.Fatalf("stats path allocated %.1f times per op, want 0", allocs)
	}
}

// TestGemmF32SteadyStateAllocs mirrors the float64 zero-alloc pin.
func TestGemmF32SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts at random, defeating scratch reuse")
	}
	rng := rand.New(rand.NewSource(5))
	a := randSliceF32(rng, 8*27)
	b := randSliceF32(rng, 27*64)
	c := make([]float32, 8*64)
	GemmRawF32(false, false, 8, 64, 27, 1, a, 27, b, 64, 0, c, 64)
	allocs := testing.AllocsPerRun(50, func() {
		GemmRawF32(false, false, 8, 64, 27, 1, a, 27, b, 64, 0, c, 64)
	})
	if allocs > 0 {
		t.Fatalf("steady-state GemmRawF32 allocated %.1f times per call, want 0", allocs)
	}
}

// TestKernelInfo sanity-checks the reported selection against the build.
func TestKernelInfo(t *testing.T) {
	info := KernelInfo()
	if info.Arch != runtime.GOARCH {
		t.Fatalf("KernelInfo arch %q, want %q", info.Arch, runtime.GOARCH)
	}
	if info.KernelF64 == "" || info.KernelF32 == "" {
		t.Fatalf("KernelInfo names empty: %+v", info)
	}
	if !asmKernels && (info.AVX2 || info.KernelF64 != "go-4x4") {
		t.Fatalf("noasm build must select the go kernel: %+v", info)
	}
	if asmKernels && info.AVX2 && info.KernelF64 != "avx2-8x8" {
		t.Fatalf("AVX2 host should select avx2-8x8, got %+v", info)
	}
}

// TestNarrowWiden covers the fp32 bridge helpers.
func TestNarrowWiden(t *testing.T) {
	src := []float64{1.5, -2.25, 1e-40, math.Pi}
	f32 := Narrow(nil, src)
	for i, v := range src {
		if f32[i] != float32(v) {
			t.Fatalf("Narrow[%d] = %v, want %v", i, f32[i], float32(v))
		}
	}
	dst := make([]float64, len(src))
	Widen(dst, f32)
	for i := range dst {
		if dst[i] != float64(f32[i]) {
			t.Fatalf("Widen[%d] = %v, want %v", i, dst[i], float64(f32[i]))
		}
	}
	WidenAdd(dst, f32)
	for i := range dst {
		if dst[i] != 2*float64(f32[i]) {
			t.Fatalf("WidenAdd[%d] = %v, want %v", i, dst[i], 2*float64(f32[i]))
		}
	}
	// Reuse: a large-enough dst must not reallocate.
	back := f32[:0]
	out := Narrow(back, src[:2])
	if &out[0] != &f32[0] {
		t.Fatal("Narrow reallocated despite sufficient capacity")
	}
}
