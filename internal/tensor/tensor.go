// Package tensor provides a small dense float64 tensor used as the numeric
// substrate for the from-scratch deep-learning stack in this repository.
//
// Shapes are row-major. The package is deliberately minimal: only the
// operations the NAS substrate needs are implemented, and all of them are
// written for clarity and determinism rather than raw throughput.
//
// Shape mismatches are programmer errors: functions in this package panic on
// malformed shapes (like indexing a slice out of range would) instead of
// returning errors. All data-dependent failure modes return errors.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: cloneInts(shape), data: make([]float64, n)}
}

// FromSlice wraps data (copied) into a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(data) {
		panic(fmt.Sprintf("tensor: FromSlice data length %d != shape size %d", len(data), n))
	}
	t := &Tensor{shape: cloneInts(shape), data: make([]float64, n)}
	copy(t.data, data)
	return t
}

// Full returns a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor with entries drawn from N(0, std^2).
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform returns a tensor with entries drawn uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// KaimingConv initializes a conv weight tensor of shape
// [outC, inC, kH, kW] with Kaiming-style fan-in scaling.
func KaimingConv(rng *rand.Rand, outC, inC, kH, kW int) *Tensor {
	fanIn := inC * kH * kW
	std := math.Sqrt(2.0 / float64(fanIn))
	return Randn(rng, std, outC, inC, kH, kW)
}

// KaimingLinear initializes a linear weight tensor of shape [out, in].
func KaimingLinear(rng *rand.Rand, out, in int) *Tensor {
	std := math.Sqrt(2.0 / float64(in))
	return Randn(rng, std, out, in)
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor; this
// is intentional — hot loops in the nn package index it directly.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: cloneInts(t.shape), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Sizes must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view-copy with a new shape of the same total size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape size %d != %d", n, len(t.data)))
	}
	c := t.Clone()
	c.shape = cloneInts(shape)
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// ShapeIs reports whether t's shape equals the given dims. Layers use it to
// decide whether a persistent output buffer can be reused for this call.
func (t *Tensor) ShapeIs(shape ...int) bool {
	if len(t.shape) != len(shape) {
		return false
	}
	for i := range shape {
		if t.shape[i] != shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description (shape plus a few leading values).
func (t *Tensor) String() string {
	k := len(t.data)
	if k > 6 {
		k = 6
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:k])
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

func cloneInts(s []int) []int {
	c := make([]int, len(s))
	copy(c, s)
	return c
}
