//go:build race

package tensor

// Under the race detector sync.Pool randomly drops Puts, so pool-backed
// GEMM scratch occasionally re-allocates; alloc-pinning tests skip there.
const raceEnabled = true
