package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format: uint32 rank, rank×uint32 dims, size×float64 values,
// all little-endian. Used by the federated transport simulation to measure
// realistic payload sizes and by snapshot persistence.

const maxWireDim = 1 << 24 // sanity bound when decoding untrusted streams

// WriteTo serializes the tensor to w and returns the bytes written.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	if err := binary.Write(w, binary.LittleEndian, uint32(len(t.shape))); err != nil {
		return n, fmt.Errorf("write rank: %w", err)
	}
	n += 4
	for _, d := range t.shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return n, fmt.Errorf("write dim: %w", err)
		}
		n += 4
	}
	buf := make([]byte, 8)
	for _, v := range t.data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			return n, fmt.Errorf("write data: %w", err)
		}
		n += 8
	}
	return n, nil
}

// ReadFrom deserializes a tensor previously written with WriteTo.
func ReadFrom(r io.Reader) (*Tensor, error) {
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, fmt.Errorf("read rank: %w", err)
	}
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("tensor wire rank %d out of range", rank)
	}
	shape := make([]int, rank)
	size := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("read dim: %w", err)
		}
		if d == 0 || d > maxWireDim {
			return nil, fmt.Errorf("tensor wire dim %d out of range", d)
		}
		shape[i] = int(d)
		size *= int(d)
		if size > maxWireDim {
			return nil, fmt.Errorf("tensor wire size %d too large", size)
		}
	}
	t := New(shape...)
	buf := make([]byte, 8)
	for i := range t.data {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("read data: %w", err)
		}
		t.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return t, nil
}

// WireSize returns the number of bytes WriteTo would produce.
func (t *Tensor) WireSize() int64 {
	return int64(4 + 4*len(t.shape) + 8*len(t.data))
}

// Float32WireSize returns the payload size if weights were shipped as
// float32, which is what a real deployment (and the paper's MB figures)
// would use. The transmission simulator uses this for latency modeling.
func (t *Tensor) Float32WireSize() int64 {
	return int64(4 + 4*len(t.shape) + 4*len(t.data))
}
