//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 micro-kernels. Both keep the package's determinism contract: every
// output element is one accumulator walking k in ascending order, and every
// step is a separate multiply then add (VMULP*/VADDP*, never VFMADD — a
// fused multiply-add rounds once where the pure-Go reference rounds twice).
// Vectorization is only across independent output columns, which does not
// reorder any element's operation sequence, so the results are bit-identical
// to the go-4x4 fallback kernel at every shape.

// func gemmMicroAVX2F64(k int, pa, pb *float64, acc *[64]float64)
//
// 8×8 float64 register tile computed as two 4×8 halves. Packed layout:
// pa[p*8+r] (column of A per k step), pb[p*8+c] (row of B per k step).
// Each half holds 8 ymm accumulators: rows r=0..3 (or 4..7), with
// Y(2r) = cols 0..3 and Y(2r+1) = cols 4..7.
TEXT ·gemmMicroAVX2F64(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ pa+8(FP), AX
	MOVQ pb+16(FP), BX
	MOVQ acc+24(FP), DI

	// ---- rows 0..3 ----
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ AX, R8
	MOVQ BX, R9
	MOVQ CX, DX

f64lo:
	VMOVUPD (R9), Y8        // b[0:4]
	VMOVUPD 32(R9), Y9      // b[4:8]

	VBROADCASTSD (R8), Y10  // a[row0]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1

	VBROADCASTSD 8(R8), Y10 // a[row1]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3

	VBROADCASTSD 16(R8), Y10 // a[row2]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y5, Y5

	VBROADCASTSD 24(R8), Y10 // a[row3]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y7, Y7

	ADDQ $64, R8
	ADDQ $64, R9
	DECQ DX
	JNZ  f64lo

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)

	// ---- rows 4..7 (pa offset +32 bytes within each packed column) ----
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	LEAQ 32(AX), R8
	MOVQ BX, R9
	MOVQ CX, DX

f64hi:
	VMOVUPD (R9), Y8
	VMOVUPD 32(R9), Y9

	VBROADCASTSD (R8), Y10  // a[row4]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1

	VBROADCASTSD 8(R8), Y10 // a[row5]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3

	VBROADCASTSD 16(R8), Y10 // a[row6]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y5, Y5

	VBROADCASTSD 24(R8), Y10 // a[row7]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y7, Y7

	ADDQ $64, R8
	ADDQ $64, R9
	DECQ DX
	JNZ  f64hi

	VMOVUPD Y0, 256(DI)
	VMOVUPD Y1, 288(DI)
	VMOVUPD Y2, 320(DI)
	VMOVUPD Y3, 352(DI)
	VMOVUPD Y4, 384(DI)
	VMOVUPD Y5, 416(DI)
	VMOVUPD Y6, 448(DI)
	VMOVUPD Y7, 480(DI)

	VZEROUPPER
	RET

// func gemmMicroAVX2F64x4(k int, pa, pb *float64, acc *[64]float64)
//
// 4×8 float64 register tile — the short-m variant (one strip of a stem or
// linear layer is often 4 rows or fewer, where an 8-row tile would waste
// half its work on padding). Packed layout: pa[p*4+r], pb[p*8+c]; the same
// acc layout as the 8×8 kernel's first half.
TEXT ·gemmMicroAVX2F64x4(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ pa+8(FP), AX
	MOVQ pb+16(FP), BX
	MOVQ acc+24(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

f64x4:
	VMOVUPD (BX), Y8        // b[0:4]
	VMOVUPD 32(BX), Y9      // b[4:8]

	VBROADCASTSD (AX), Y10  // a[row0]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1

	VBROADCASTSD 8(AX), Y10 // a[row1]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3

	VBROADCASTSD 16(AX), Y10 // a[row2]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y5, Y5

	VBROADCASTSD 24(AX), Y10 // a[row3]
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y7, Y7

	ADDQ $32, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  f64x4

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VMOVUPD Y4, 128(DI)
	VMOVUPD Y5, 160(DI)
	VMOVUPD Y6, 192(DI)
	VMOVUPD Y7, 224(DI)

	VZEROUPPER
	RET

// func gemmMicroAVX2F32(k int, pa, pb *float32, acc *[64]float32)
//
// 8×8 float32 register tile in one pass: row r is one ymm of 8 floats.
// Packed layout: pa[p*8+r], pb[p*8+c].
TEXT ·gemmMicroAVX2F32(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ pa+8(FP), AX
	MOVQ pb+16(FP), BX
	MOVQ acc+24(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

f32loop:
	VMOVUPS (BX), Y8        // b[0:8]

	VBROADCASTSS (AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y0, Y0

	VBROADCASTSS 4(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y1, Y1

	VBROADCASTSS 8(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y2, Y2

	VBROADCASTSS 12(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y3, Y3

	VBROADCASTSS 16(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y4, Y4

	VBROADCASTSS 20(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y5, Y5

	VBROADCASTSS 24(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y6, Y6

	VBROADCASTSS 28(AX), Y9
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y7, Y7

	ADDQ $32, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  f32loop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VMOVUPS Y4, 128(DI)
	VMOVUPS Y5, 160(DI)
	VMOVUPS Y6, 192(DI)
	VMOVUPS Y7, 224(DI)

	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
//
// Reads XCR0. Only called after CPUID has confirmed OSXSAVE, so the
// instruction cannot fault.
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
