package tensor

import (
	"fmt"
	"math"
)

// Add returns t + o elementwise as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameShape(o, "Add")
	r := t.Clone()
	for i := range r.data {
		r.data[i] += o.data[i]
	}
	return r
}

// AddInPlace adds o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.mustSameShape(o, "AddInPlace")
	for i := range t.data {
		t.data[i] += o.data[i]
	}
}

// Sub returns t - o elementwise as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameShape(o, "Sub")
	r := t.Clone()
	for i := range r.data {
		r.data[i] -= o.data[i]
	}
	return r
}

// Mul returns the elementwise (Hadamard) product as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameShape(o, "Mul")
	r := t.Clone()
	for i := range r.data {
		r.data[i] *= o.data[i]
	}
	return r
}

// MulInPlace multiplies o into t elementwise.
func (t *Tensor) MulInPlace(o *Tensor) {
	t.mustSameShape(o, "MulInPlace")
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
}

// Scale returns c * t as a new tensor.
func (t *Tensor) Scale(c float64) *Tensor {
	r := t.Clone()
	for i := range r.data {
		r.data[i] *= c
	}
	return r
}

// ScaleInPlace multiplies every element by c.
func (t *Tensor) ScaleInPlace(c float64) {
	for i := range t.data {
		t.data[i] *= c
	}
}

// AXPY performs t += a*x (like BLAS axpy).
func (t *Tensor) AXPY(a float64, x *Tensor) {
	t.mustSameShape(x, "AXPY")
	for i := range t.data {
		t.data[i] += a * x.data[i]
	}
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameShape(o, "Dot")
	s := 0.0
	for i := range t.data {
		s += t.data[i] * o.data[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Max returns the maximum element.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns a new tensor with f applied elementwise.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := t.Clone()
	for i := range r.data {
		r.data[i] = f(r.data[i])
	}
	return r
}

// ApplyInPlace applies f to every element of t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
}

// MatMul multiplies two 2-D tensors: [m,k] x [k,n] -> [m,n]. It allocates
// the result; hot paths should hold a persistent destination and call
// GemmInto (or Gemm for trans/accumulate forms) instead.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	out := New(a.shape[0], b.shape[1])
	GemmInto(out, a, b)
	return out
}

// AllClose reports whether every element of t is within tol of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Softmax returns the softmax over a 1-D tensor (numerically stabilized).
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	SoftmaxInto(out, logits)
	return out
}

// SoftmaxInto writes the numerically stabilized softmax of logits into dst.
// dst and logits may alias; per-step paths use this to avoid allocating.
func SoftmaxInto(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic(fmt.Sprintf("tensor: SoftmaxInto length mismatch %d vs %d", len(dst), len(logits)))
	}
	m := math.Inf(-1)
	for _, v := range logits {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// ClipL2 scales the set of tensors in place so their joint L2 norm does not
// exceed maxNorm, and returns the pre-clip norm.
func ClipL2(maxNorm float64, ts ...*Tensor) float64 {
	s := 0.0
	for _, t := range ts {
		for _, v := range t.data {
			s += v * v
		}
	}
	norm := math.Sqrt(s)
	if norm > maxNorm && norm > 0 {
		c := maxNorm / norm
		for _, t := range ts {
			t.ScaleInPlace(c)
		}
	}
	return norm
}

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}
