// Package nettrace generates synthetic 4G/LTE bandwidth traces per mobility
// regime, standing in for the van der Hooft et al. bandwidth logs the paper
// uses for its adaptive-transmission experiment (Fig. 7; see DESIGN.md §2).
//
// Each regime is an AR(1) log-normal process whose mean and volatility are
// calibrated to the published per-regime statistics of the real logs:
// walking and cycling see high, fairly stable throughput; buses and trams
// are mid-range; cars are fast but volatile; trains are slow and bursty.
package nettrace

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Regime is a mobility environment from the 4G/LTE measurement campaign.
type Regime int

// The six regimes of the 4G/LTE logs.
const (
	Foot Regime = iota + 1
	Bicycle
	Bus
	Car
	Train
	Tram
)

// AllRegimes lists every regime in canonical order.
var AllRegimes = []Regime{Foot, Bicycle, Bus, Car, Train, Tram}

// ParseRegime resolves a regime by its canonical name ("foot", "bus", …).
func ParseRegime(name string) (Regime, error) {
	for _, r := range AllRegimes {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("nettrace: unknown regime %q (valid: %s)", name, RegimeNames())
}

// RegimeNames returns every regime name, comma-separated, for error text
// and usage strings.
func RegimeNames() string {
	names := make([]string, len(AllRegimes))
	for i, r := range AllRegimes {
		names[i] = r.String()
	}
	return strings.Join(names, ", ")
}

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case Foot:
		return "foot"
	case Bicycle:
		return "bicycle"
	case Bus:
		return "bus"
	case Car:
		return "car"
	case Train:
		return "train"
	case Tram:
		return "tram"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// params returns (mean Mbps, log-volatility, AR(1) persistence) per regime.
func (r Regime) params() (meanMbps, vol, persist float64) {
	switch r {
	case Foot:
		return 28, 0.25, 0.90
	case Bicycle:
		return 31, 0.30, 0.88
	case Bus:
		return 20, 0.45, 0.85
	case Car:
		return 30, 0.60, 0.80
	case Train:
		return 12, 0.70, 0.78
	case Tram:
		return 23, 0.40, 0.85
	default:
		return 20, 0.5, 0.85
	}
}

// Trace is a sampled bandwidth series for one participant.
type Trace struct {
	Regime Regime
	// Mbps[t] is the link bandwidth at round t in megabits per second.
	Mbps []float64
}

// Generate samples a trace of length rounds.
func Generate(r Regime, rounds int, rng *rand.Rand) (Trace, error) {
	if rounds <= 0 {
		return Trace{}, fmt.Errorf("nettrace: rounds %d must be positive", rounds)
	}
	mean, vol, persist := r.params()
	mu := math.Log(mean)
	series := make([]float64, rounds)
	// Stationary start.
	x := rng.NormFloat64() * vol / math.Sqrt(1-persist*persist)
	for t := 0; t < rounds; t++ {
		x = persist*x + vol*math.Sqrt(1-persist*persist)*rng.NormFloat64()
		bw := math.Exp(mu + x - vol*vol/2)
		// Floor at a realistic LTE cell-edge rate.
		if bw < 0.5 {
			bw = 0.5
		}
		series[t] = bw
	}
	return Trace{Regime: r, Mbps: series}, nil
}

// PhaseSpec is one segment of a time-varying trace: Rounds samples of the
// given regime. Rounds <= 0 means "the rest of the run" (only meaningful
// for the final phase).
type PhaseSpec struct {
	Regime Regime
	Rounds int
}

// GeneratePhases samples a trace whose regime shifts mid-run — the
// feddrl-style urban/suburban/rural environment change. Each phase runs its
// own AR(1) stream (a regime shift is a discontinuity, as when a device
// moves from a street to a train), drawn in order from the one rng so the
// whole composite is a deterministic function of (phases, rounds, seed).
// The trace's Regime field records the first phase's regime.
func GeneratePhases(phases []PhaseSpec, rounds int, rng *rand.Rand) (Trace, error) {
	if len(phases) == 0 {
		return Trace{}, fmt.Errorf("nettrace: no phases")
	}
	if rounds <= 0 {
		return Trace{}, fmt.Errorf("nettrace: rounds %d must be positive", rounds)
	}
	out := Trace{Regime: phases[0].Regime, Mbps: make([]float64, 0, rounds)}
	remaining := rounds
	for i, ph := range phases {
		n := ph.Rounds
		if n <= 0 && i != len(phases)-1 {
			// "Rest of the run" is only meaningful on the final phase; a
			// non-final open-ended phase would silently swallow every later
			// one, so fail loudly instead.
			return Trace{}, fmt.Errorf("nettrace: phase %d has rounds %d but is not the final phase", i, ph.Rounds)
		}
		if n <= 0 || i == len(phases)-1 || n > remaining {
			n = remaining
		}
		if n == 0 {
			break
		}
		seg, err := Generate(ph.Regime, n, rng)
		if err != nil {
			return Trace{}, err
		}
		out.Mbps = append(out.Mbps, seg.Mbps...)
		remaining -= n
		if remaining == 0 {
			break
		}
	}
	// Phases shorter than the run: the final regime persists (At clamps,
	// but an explicit fill keeps Mean and CSV honest).
	for remaining > 0 {
		seg, err := Generate(phases[len(phases)-1].Regime, remaining, rng)
		if err != nil {
			return Trace{}, err
		}
		out.Mbps = append(out.Mbps, seg.Mbps...)
		remaining = 0
	}
	return out, nil
}

// Flat returns a constant-bandwidth trace (a wired datacenter link has no
// mobility regime).
func Flat(mbps float64, rounds int) Trace {
	if rounds <= 0 {
		rounds = 1
	}
	tr := Trace{Mbps: make([]float64, rounds)}
	for i := range tr.Mbps {
		tr.Mbps[i] = mbps
	}
	return tr
}

// At returns the bandwidth at round t, clamping past the end (a stalled
// device keeps its last observed rate).
func (tr Trace) At(t int) float64 {
	if len(tr.Mbps) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	if t >= len(tr.Mbps) {
		t = len(tr.Mbps) - 1
	}
	return tr.Mbps[t]
}

// Mean returns the average bandwidth of the trace.
func (tr Trace) Mean() float64 {
	if len(tr.Mbps) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range tr.Mbps {
		s += v
	}
	return s / float64(len(tr.Mbps))
}

// TransferSeconds returns the time to ship payloadBytes at bandwidth
// mbps, with a fixed per-transfer RTT overhead.
func TransferSeconds(payloadBytes int64, mbps float64) float64 {
	const rttOverhead = 0.005 // seconds: connection + signalling overhead
	if mbps <= 0 {
		return math.Inf(1)
	}
	bits := float64(payloadBytes) * 8
	return bits/(mbps*1e6) + rttOverhead
}

// Environment describes the mix of regimes across participants ("Bus+Car"
// in Fig. 7 means half the participants ride buses, half ride cars).
type Environment struct {
	Name    string
	Regimes []Regime
}

// StandardEnvironments reproduces the x-axis of Fig. 7: each single regime
// plus the mixed environments.
func StandardEnvironments() []Environment {
	envs := make([]Environment, 0, len(AllRegimes)+2)
	for _, r := range AllRegimes {
		envs = append(envs, Environment{Name: r.String(), Regimes: []Regime{r}})
	}
	envs = append(envs,
		Environment{Name: "bus+car", Regimes: []Regime{Bus, Car}},
		Environment{Name: "foot+train", Regimes: []Regime{Foot, Train}},
	)
	return envs
}

// ParticipantTraces samples one trace per participant, cycling through the
// environment's regimes (so a two-regime mix splits participants evenly).
func (e Environment) ParticipantTraces(k, rounds int, rng *rand.Rand) ([]Trace, error) {
	if k <= 0 {
		return nil, fmt.Errorf("nettrace: participant count %d must be positive", k)
	}
	if len(e.Regimes) == 0 {
		return nil, fmt.Errorf("nettrace: environment %q has no regimes", e.Name)
	}
	out := make([]Trace, k)
	for i := 0; i < k; i++ {
		tr, err := Generate(e.Regimes[i%len(e.Regimes)], rounds, rng)
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// CSV renders the trace as two-column CSV (round, mbps) for external
// plotting or replay.
func (tr Trace) CSV() string {
	var b strings.Builder
	b.WriteString("round,mbps\n")
	for t, v := range tr.Mbps {
		b.WriteString(strconv.Itoa(t))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(v, 'f', 4, 64))
		b.WriteByte('\n')
	}
	return b.String()
}
