package nettrace

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateLengthAndPositivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := Generate(Car, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Mbps) != 200 {
		t.Fatalf("trace length %d", len(tr.Mbps))
	}
	for i, v := range tr.Mbps {
		if v < 0.5 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bandwidth[%d] = %v invalid", i, v)
		}
	}
	if _, err := Generate(Car, 0, rng); err == nil {
		t.Error("expected error for zero rounds")
	}
}

func TestGeneratePhasesRejectsNonFinalOpenEnded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Rounds 0 means "rest of run" and is only meaningful on the final
	// phase; anywhere else it would silently swallow the later phases.
	phases := []PhaseSpec{{Regime: Foot}, {Regime: Car, Rounds: 5}}
	if _, err := GeneratePhases(phases, 20, rng); err == nil {
		t.Error("expected error for open-ended non-final phase")
	}
	// Final-phase 0 stays valid and fills the remainder.
	ok := []PhaseSpec{{Regime: Car, Rounds: 5}, {Regime: Foot}}
	tr, err := GeneratePhases(ok, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Mbps) != 20 {
		t.Fatalf("trace length %d, want 20", len(tr.Mbps))
	}
}

func TestRegimeMeansRoughlyCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	means := make(map[Regime]float64)
	for _, r := range AllRegimes {
		total := 0.0
		const reps = 30
		for rep := 0; rep < reps; rep++ {
			tr, err := Generate(r, 200, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += tr.Mean()
		}
		means[r] = total / reps
	}
	// Orderings that must hold: train is the slowest, bicycle/foot/car fast.
	if means[Train] >= means[Bus] {
		t.Errorf("train %.1f >= bus %.1f", means[Train], means[Bus])
	}
	if means[Train] >= means[Foot] {
		t.Errorf("train %.1f >= foot %.1f", means[Train], means[Foot])
	}
	for r, m := range means {
		want, _, _ := r.params()
		if math.Abs(m-want) > 0.35*want {
			t.Errorf("%s mean %.1f too far from calibration %.1f", r, m, want)
		}
	}
}

func TestCarMoreVolatileThanFoot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cv := func(r Regime) float64 {
		tr, err := Generate(r, 2000, rng)
		if err != nil {
			t.Fatal(err)
		}
		mean := tr.Mean()
		s := 0.0
		for _, v := range tr.Mbps {
			d := v - mean
			s += d * d
		}
		return math.Sqrt(s/float64(len(tr.Mbps))) / mean
	}
	if cv(Car) <= cv(Foot) {
		t.Error("car volatility should exceed foot volatility")
	}
}

func TestAtClamps(t *testing.T) {
	tr := Trace{Regime: Foot, Mbps: []float64{1, 2, 3}}
	if tr.At(-5) != 1 || tr.At(0) != 1 || tr.At(2) != 3 || tr.At(99) != 3 {
		t.Error("At must clamp to trace bounds")
	}
	var empty Trace
	if empty.At(0) != 0 {
		t.Error("empty trace At should be 0")
	}
}

func TestTransferSeconds(t *testing.T) {
	// 1 MB at 8 Mbps = 1 second + 0.005 overhead.
	got := TransferSeconds(1_000_000, 8)
	if math.Abs(got-1.005) > 1e-9 {
		t.Errorf("TransferSeconds = %v, want 1.005", got)
	}
	if !math.IsInf(TransferSeconds(100, 0), 1) {
		t.Error("zero bandwidth must be infinite latency")
	}
	// Monotonic in payload, antitonic in bandwidth.
	if TransferSeconds(2_000_000, 8) <= got {
		t.Error("larger payload must take longer")
	}
	if TransferSeconds(1_000_000, 16) >= got {
		t.Error("faster link must be quicker")
	}
}

func TestStandardEnvironments(t *testing.T) {
	envs := StandardEnvironments()
	if len(envs) != len(AllRegimes)+2 {
		t.Fatalf("got %d environments", len(envs))
	}
	names := make(map[string]bool)
	for _, e := range envs {
		names[e.Name] = true
	}
	if !names["bus+car"] || !names["foot+train"] {
		t.Error("missing mixed environments")
	}
}

func TestParticipantTracesMixesRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	env := Environment{Name: "mix", Regimes: []Regime{Bus, Car}}
	traces, err := env.ParticipantTraces(10, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	bus, car := 0, 0
	for _, tr := range traces {
		switch tr.Regime {
		case Bus:
			bus++
		case Car:
			car++
		}
	}
	if bus != 5 || car != 5 {
		t.Errorf("mix split %d/%d, want 5/5", bus, car)
	}
	if _, err := env.ParticipantTraces(0, 50, rng); err == nil {
		t.Error("expected error for zero participants")
	}
	bad := Environment{Name: "empty"}
	if _, err := bad.ParticipantTraces(3, 50, rng); err == nil {
		t.Error("expected error for empty environment")
	}
}

func TestRegimeStrings(t *testing.T) {
	for _, r := range AllRegimes {
		if s := r.String(); s == "" || s[0] == 'r' && s[1] == 'e' && s[2] == 'g' {
			t.Errorf("regime %d has placeholder name %q", int(r), s)
		}
	}
}

func TestTraceCSV(t *testing.T) {
	tr := Trace{Regime: Foot, Mbps: []float64{1.5, 2.25}}
	csv := tr.CSV()
	want := "round,mbps\n0,1.5000\n1,2.2500\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
