// Package detrand provides a checkpointable math/rand stream. A Source
// wraps the stdlib source seeded with a fixed seed and counts how many
// values have been drawn, so a stream's exact position can be persisted as
// a single integer and restored by re-deriving the stream from its seed
// and discarding that many draws.
//
// The wrapper is value-transparent: it implements rand.Source64 by
// forwarding to the stdlib source, so a rand.Rand built over it produces
// bit-for-bit the same sequence as rand.New(rand.NewSource(seed)) — every
// pinned determinism hash in this repository survives the swap. Counting
// at the source level (rather than the rand.Rand level) is what makes
// Restore exact: every top-level draw — Float64, Intn, Shuffle, rejection
// loops included — bottoms out in some number of single-advance Int63 or
// Uint64 source calls, and the stdlib source advances its state exactly
// once per call for both.
package detrand

import "math/rand"

// Source is a counting, restorable rand.Source64.
type Source struct {
	seed int64
	n    uint64
	src  rand.Source64
}

// NewSource builds a counting source over rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{seed: seed, src: newStdSource(seed)}
}

// New builds a rand.Rand over a fresh counting source and returns both.
// The Rand's value stream is identical to rand.New(rand.NewSource(seed)).
func New(seed int64) (*rand.Rand, *Source) {
	s := NewSource(seed)
	return rand.New(s), s
}

// newStdSource asserts the stdlib source to Source64 (it has implemented
// it since Go 1.8).
func newStdSource(seed int64) rand.Source64 {
	return rand.NewSource(seed).(rand.Source64)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source, restarting the stream (and the counter)
// from a new seed.
func (s *Source) Seed(seed int64) {
	s.seed, s.n = seed, 0
	s.src.Seed(seed)
}

// Pos returns the number of values drawn since the stream began — the
// checkpointable stream position.
func (s *Source) Pos() uint64 { return s.n }

// Restore rewinds or fast-forwards the stream to an absolute position:
// the source is re-derived from its original seed and pos draws are
// discarded. Both Int63 and Uint64 advance the underlying state exactly
// once, so a position recorded under any mix of draw kinds replays
// correctly with Uint64 alone.
func (s *Source) Restore(pos uint64) {
	s.src = newStdSource(s.seed)
	for i := uint64(0); i < pos; i++ {
		s.src.Uint64()
	}
	s.n = pos
}
