package detrand

import (
	"math/rand"
	"testing"
)

// The wrapper must be invisible: the same value stream as the bare stdlib
// source, for every draw kind rand.Rand exposes.
func TestStreamMatchesStdlib(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	got, _ := New(42)
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if a, b := ref.Float64(), got.Float64(); a != b {
				t.Fatalf("Float64 diverged at draw %d: %v != %v", i, a, b)
			}
		case 1:
			if a, b := ref.Int63(), got.Int63(); a != b {
				t.Fatalf("Int63 diverged at draw %d", i)
			}
		case 2:
			if a, b := ref.Uint64(), got.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at draw %d", i)
			}
		case 3:
			if a, b := ref.Intn(97), got.Intn(97); a != b {
				t.Fatalf("Intn diverged at draw %d", i)
			}
		case 4:
			if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at draw %d", i)
			}
		}
	}
}

func TestRestoreResumesExactly(t *testing.T) {
	rng, src := New(7)
	var want []float64
	for i := 0; i < 500; i++ {
		rng.Float64()
	}
	pos := src.Pos()
	for i := 0; i < 100; i++ {
		want = append(want, rng.Float64())
	}

	// A fresh stream restored to pos must continue with the same values.
	rng2, src2 := New(7)
	_ = rng2
	src2.Restore(pos)
	rng2 = rand.New(src2)
	for i, w := range want {
		if g := rng2.Float64(); g != w {
			t.Fatalf("restored stream diverged at draw %d: %v != %v", i, g, w)
		}
	}
	if src2.Pos() != pos+100 {
		t.Fatalf("restored position %d, want %d", src2.Pos(), pos+100)
	}
}

// Shuffle and mixed draw kinds must leave a position that replays exactly
// (Shuffle uses rejection sampling internally, so its draw count is value-
// dependent — exactly what source-level counting handles).
func TestRestoreAfterShuffle(t *testing.T) {
	rng, src := New(11)
	pool := make([]int, 33)
	for i := range pool {
		pool[i] = i
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	rng.Intn(3)
	pos := src.Pos()
	want := rng.Uint64()

	_, src2 := New(11)
	src2.Restore(pos)
	if got := rand.New(src2).Uint64(); got != want {
		t.Fatalf("post-shuffle restore diverged: %d != %d", got, want)
	}
}
