package search

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/tensor"
)

// Checkpoint format: a small binary header, the α matrices, then every
// supernet parameter tensor in canonical order (tensor wire format).
// Checkpoints let long search phases resume across process restarts — the
// paper's search runs for hours even on GPUs.

const (
	checkpointMagic   = uint32(0xfed51a5e)
	checkpointVersion = uint32(1)
)

// SaveCheckpoint writes the current search state (θ, α, round counter and
// the controller baseline) to path atomically (write + rename).
func (s *Search) SaveCheckpoint(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	err = s.writeCheckpoint(w)
	if err2 := w.Flush(); err == nil {
		err = err2
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores θ, α, the round counter and the baseline from a
// checkpoint written by SaveCheckpoint. The search must have been built
// with an identical Config.
func (s *Search) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := s.readCheckpoint(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

func (s *Search) writeCheckpoint(w io.Writer) error {
	for _, v := range []uint32{checkpointMagic, checkpointVersion, uint32(s.round)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, s.ctrl.Baseline()); err != nil {
		return err
	}
	snap := s.ctrl.Snapshot()
	if err := writeRows(w, snap.Normal); err != nil {
		return err
	}
	if err := writeRows(w, snap.Reduce); err != nil {
		return err
	}
	params := s.net.Params()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if _, err := p.Value.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Search) readCheckpoint(r io.Reader) error {
	var magic, version, round uint32
	for _, dst := range []*uint32{&magic, &version, &round} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return err
		}
	}
	if magic != checkpointMagic {
		return fmt.Errorf("bad magic %#x", magic)
	}
	if version != checkpointVersion {
		return fmt.Errorf("unsupported version %d", version)
	}
	var baseline float64
	if err := binary.Read(r, binary.LittleEndian, &baseline); err != nil {
		return err
	}
	normal, err := readRows(r)
	if err != nil {
		return err
	}
	reduce, err := readRows(r)
	if err != nil {
		return err
	}
	if err := s.ctrl.Restore(controller.AlphaSnapshot{Normal: normal, Reduce: reduce}); err != nil {
		return err
	}
	s.ctrl.UpdateBaseline(baseline) // re-seed the moving average
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	params := s.net.Params()
	if int(n) != len(params) {
		return fmt.Errorf("checkpoint has %d tensors, supernet has %d", n, len(params))
	}
	for _, p := range params {
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return err
		}
		if !t.SameShape(p.Value) {
			return fmt.Errorf("checkpoint tensor shape %v != param %q shape %v",
				t.Shape(), p.Name, p.Value.Shape())
		}
		p.Value.CopyFrom(t)
	}
	s.round = int(round)
	return nil
}

func writeRows(w io.Writer, rows [][]float64) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(row))); err != nil {
			return err
		}
		for _, v := range row {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func readRows(r io.Reader) ([][]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("row count %d too large", n)
	}
	rows := make([][]float64, n)
	for i := range rows {
		var m uint32
		if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
			return nil, err
		}
		if m > 1<<16 {
			return nil, fmt.Errorf("row length %d too large", m)
		}
		rows[i] = make([]float64, m)
		for j := range rows[i] {
			if err := binary.Read(r, binary.LittleEndian, &rows[i][j]); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// Round returns the number of completed communication rounds.
func (s *Search) Round() int { return s.round }

// RunWithCheckpoints executes the search phase like Run, writing a
// checkpoint to path every `every` rounds (and once at the end) so long
// searches survive process restarts. every <= 0 checkpoints only at the end.
func (s *Search) RunWithCheckpoints(path string, every int) error {
	for i := 0; i < s.cfg.SearchSteps; i++ {
		acc, err := s.runRound(true, !s.cfg.AlphaOnly)
		if err != nil {
			return fmt.Errorf("search round %d: %w", i, err)
		}
		s.SearchCurve.Add(s.round-1, acc)
		s.EntropyCurve.Add(s.round-1, s.ctrl.Entropy())
		s.BaselineCurve.Add(s.round-1, s.ctrl.Baseline())
		if every > 0 && (i+1)%every == 0 {
			if err := s.SaveCheckpoint(path); err != nil {
				return err
			}
		}
	}
	return s.SaveCheckpoint(path)
}
