package search

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/tensor"
)

// Checkpoint format: a small binary header, the α matrices, every supernet
// parameter tensor in canonical order (tensor wire format), and — since
// version 2 — the optimizer and stream state a bit-exact resume needs: the
// θ momentum buffers, the search RNG position, and each materialized
// participant's RNG position and batcher order. Checkpoints let long
// search phases resume across process restarts — the paper's search runs
// for hours even on GPUs — and back the resident server's job lifecycle
// (pause/resume/drain in internal/serve).
//
// Resume contract: under hard synchronization (the default) a restored
// run reproduces the uninterrupted run's θ and α bit for bit — pinned by
// TestResumeReproducesUninterruptedRun. Under soft synchronization the
// staleness pools' history (snapshots of rounds before the restart) is
// not persisted, so in-flight stale replies that straddle the restart are
// skipped rather than applied; the run re-converges but is not bit-exact
// for the first StalenessThreshold rounds.
const (
	checkpointMagic   = uint32(0xfed51a5e)
	checkpointVersion = uint32(2)
	// checkpointVersionV1 files (θ+α only) are still readable; they
	// restore state but not streams, matching the old behavior.
	checkpointVersionV1 = uint32(1)
	// checkpointVersionV3 appends the personalized per-client heads after
	// the v2 sections. Only personalized runs write it, so every
	// non-personalized checkpoint stays byte-identical to v2 readers.
	checkpointVersionV3 = uint32(3)
)

// SaveCheckpoint writes the current search state to path crash-safely: the
// bytes go to a uniquely named temp file in the same directory, are fsynced,
// and the temp file is atomically renamed over path (with a directory sync
// so the rename itself survives a crash). A crash at any instant leaves
// either the previous complete checkpoint or the new one — never a torn
// file — which is what lets a kill -9 mid-write resume cleanly.
func (s *Search) SaveCheckpoint(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	w := bufio.NewWriter(f)
	err = s.writeCheckpoint(w)
	if err2 := w.Flush(); err == nil {
		err = err2
	}
	// Sync before rename: without it the rename can land on disk before
	// the data, and a crash in between yields a complete-looking file of
	// garbage at the final path.
	if err2 := f.Sync(); err == nil {
		err = err2
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadCheckpoint restores the search state from a checkpoint written by
// SaveCheckpoint. The search must have been built with an identical Config.
func (s *Search) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := s.readCheckpoint(bufio.NewReader(f)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

func (s *Search) writeCheckpoint(w io.Writer) error {
	version := checkpointVersion
	if s.personalize {
		version = checkpointVersionV3
	}
	for _, v := range []uint32{checkpointMagic, version, uint32(s.round)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, s.ctrl.Baseline()); err != nil {
		return err
	}
	snap := s.ctrl.Snapshot()
	if err := writeRows(w, snap.Normal); err != nil {
		return err
	}
	if err := writeRows(w, snap.Reduce); err != nil {
		return err
	}
	params := s.net.Params()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if _, err := p.Value.WriteTo(w); err != nil {
			return err
		}
	}
	// v2: θ momentum, one presence-tagged tensor per canonical parameter.
	for _, p := range params {
		v := s.thetaOpt.Velocity(p)
		if v == nil {
			if _, err := w.Write([]byte{0}); err != nil {
				return err
			}
			continue
		}
		if _, err := w.Write([]byte{1}); err != nil {
			return err
		}
		if _, err := v.WriteTo(w); err != nil {
			return err
		}
	}
	// v2: stream positions — the search RNG, then every materialized
	// participant's RNG and batcher order.
	if err := binary.Write(w, binary.LittleEndian, s.rngSrc.Pos()); err != nil {
		return err
	}
	states := s.pop.States()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(states))); err != nil {
		return err
	}
	for _, st := range states {
		header := []uint32{uint32(st.ID), uint32(len(st.Pool)), uint32(st.Pos)}
		for _, v := range header {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, st.RNGPos); err != nil {
			return err
		}
		for _, idx := range st.Pool {
			if err := binary.Write(w, binary.LittleEndian, uint32(idx)); err != nil {
				return err
			}
		}
	}
	// v3: personalized heads, in ascending participant-id order so the
	// bytes are independent of map iteration (and of sampling history
	// beyond which clients were ever drawn).
	if s.personalize {
		ids := make([]int, 0, len(s.heads))
		for id := range s.heads {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
			return err
		}
		for _, id := range ids {
			if err := binary.Write(w, binary.LittleEndian, uint32(id)); err != nil {
				return err
			}
			for _, t := range s.heads[id] {
				if _, err := t.WriteTo(w); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (s *Search) readCheckpoint(r io.Reader) error {
	var magic, version, round uint32
	for _, dst := range []*uint32{&magic, &version, &round} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return err
		}
	}
	if magic != checkpointMagic {
		return fmt.Errorf("bad magic %#x", magic)
	}
	if version != checkpointVersion && version != checkpointVersionV1 && version != checkpointVersionV3 {
		return fmt.Errorf("unsupported version %d", version)
	}
	var baseline float64
	if err := binary.Read(r, binary.LittleEndian, &baseline); err != nil {
		return err
	}
	normal, err := readRows(r)
	if err != nil {
		return err
	}
	reduce, err := readRows(r)
	if err != nil {
		return err
	}
	if err := s.ctrl.Restore(controller.AlphaSnapshot{Normal: normal, Reduce: reduce}); err != nil {
		return err
	}
	// Re-seed the moving average — but only when the saved run had set it
	// (one search round completed). A checkpoint from the warmup phase has
	// baseline 0 with the bootstrap still pending; seeding 0 here would make
	// the first resumed search round subtract a baseline the uninterrupted
	// run never had.
	if int(round) > s.cfg.WarmupSteps {
		s.ctrl.UpdateBaseline(baseline)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	params := s.net.Params()
	if int(n) != len(params) {
		return fmt.Errorf("checkpoint has %d tensors, supernet has %d", n, len(params))
	}
	for _, p := range params {
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return err
		}
		if !t.SameShape(p.Value) {
			return fmt.Errorf("checkpoint tensor shape %v != param %q shape %v",
				t.Shape(), p.Name, p.Value.Shape())
		}
		p.Value.CopyFrom(t)
	}
	if version >= checkpointVersion {
		if err := s.readResumeState(r, params); err != nil {
			return err
		}
	}
	if version >= checkpointVersionV3 {
		if err := s.readHeads(r); err != nil {
			return err
		}
	}
	s.round = int(round)
	return nil
}

// readHeads restores the v3 personalized-head section, materializing each
// listed client's head and overwriting it with the saved values.
func (s *Search) readHeads(r io.Reader) error {
	var nHeads uint32
	if err := binary.Read(r, binary.LittleEndian, &nHeads); err != nil {
		return err
	}
	if nHeads == 0 {
		return nil
	}
	if !s.personalize {
		return fmt.Errorf("checkpoint has %d personalized heads but the config does not set Scenario.Personalize", nHeads)
	}
	if int(nHeads) > s.pop.Len() {
		return fmt.Errorf("checkpoint has %d heads for population of %d", nHeads, s.pop.Len())
	}
	for i := 0; i < int(nHeads); i++ {
		var id uint32
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return err
		}
		if int(id) >= s.pop.Len() {
			return fmt.Errorf("head for participant %d outside population of %d", id, s.pop.Len())
		}
		s.ensureHead(int(id))
		for j, dst := range s.heads[int(id)] {
			t, err := tensor.ReadFrom(r)
			if err != nil {
				return err
			}
			if !t.SameShape(dst) {
				return fmt.Errorf("participant %d head tensor %d shape %v != %v", id, j, t.Shape(), dst.Shape())
			}
			dst.CopyFrom(t)
		}
	}
	return nil
}

// readResumeState restores the v2 sections: momentum, search RNG position,
// participant streams.
func (s *Search) readResumeState(r io.Reader, params []*nn.Param) error {
	var tag [1]byte
	for _, p := range params {
		if _, err := io.ReadFull(r, tag[:]); err != nil {
			return err
		}
		if tag[0] == 0 {
			continue
		}
		v, err := tensor.ReadFrom(r)
		if err != nil {
			return err
		}
		if err := s.thetaOpt.SetVelocity(p, v); err != nil {
			return fmt.Errorf("param %q: %w", p.Name, err)
		}
	}
	var rngPos uint64
	if err := binary.Read(r, binary.LittleEndian, &rngPos); err != nil {
		return err
	}
	s.rngSrc.Restore(rngPos)
	var nStates uint32
	if err := binary.Read(r, binary.LittleEndian, &nStates); err != nil {
		return err
	}
	if int(nStates) > s.pop.Len() {
		return fmt.Errorf("checkpoint has %d participant states for population of %d",
			nStates, s.pop.Len())
	}
	states := make([]fed.ParticipantState, nStates)
	for i := range states {
		var id, poolLen, pos uint32
		for _, dst := range []*uint32{&id, &poolLen, &pos} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return err
			}
		}
		if poolLen > 1<<24 {
			return fmt.Errorf("participant %d pool length %d too large", id, poolLen)
		}
		var rngPos uint64
		if err := binary.Read(r, binary.LittleEndian, &rngPos); err != nil {
			return err
		}
		pool := make([]int, poolLen)
		for j := range pool {
			var v uint32
			if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
				return err
			}
			pool[j] = int(v)
		}
		states[i] = fed.ParticipantState{ID: int(id), RNGPos: rngPos, Pool: pool, Pos: int(pos)}
	}
	return s.pop.RestoreStates(states)
}

func writeRows(w io.Writer, rows [][]float64) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(rows))); err != nil {
		return err
	}
	for _, row := range rows {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(row))); err != nil {
			return err
		}
		for _, v := range row {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func readRows(r io.Reader) ([][]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("row count %d too large", n)
	}
	rows := make([][]float64, n)
	for i := range rows {
		var m uint32
		if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
			return nil, err
		}
		if m > 1<<16 {
			return nil, fmt.Errorf("row length %d too large", m)
		}
		rows[i] = make([]float64, m)
		for j := range rows[i] {
			if err := binary.Read(r, binary.LittleEndian, &rows[i][j]); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// Round returns the number of completed communication rounds.
func (s *Search) Round() int { return s.round }

// TotalRounds returns the configured schedule length (P1 warm-up plus P2
// search rounds).
func (s *Search) TotalRounds() int { return s.cfg.WarmupSteps + s.cfg.SearchSteps }

// Phase names reported by StepRound.
const (
	PhaseWarmup = "warmup"
	PhaseSearch = "search"
)

// StepInfo summarizes one StepRound call.
type StepInfo struct {
	// Round is the 0-based index of the round that just ran.
	Round int
	// Phase is PhaseWarmup or PhaseSearch.
	Phase string
	// Accuracy is the round's mean participant training accuracy.
	Accuracy float64
	// Done reports that the schedule (warm-up + search) is complete.
	Done bool
}

// StepRound runs exactly one round of the warm-up → search schedule from
// the current round counter: a warm-up round while Round() < WarmupSteps,
// a search round after. It is the unit of the resident server's job loop —
// pause, cancel and checkpoint decisions happen between StepRound calls —
// and of checkpoint resume: a search restored at round r continues with
// round r's phase. Calling it on a completed schedule is a no-op that
// reports Done.
func (s *Search) StepRound() (StepInfo, error) {
	total := s.TotalRounds()
	if s.round >= total {
		return StepInfo{Round: s.round, Done: true}, nil
	}
	if s.round < s.cfg.WarmupSteps {
		acc, err := s.runRound(false, true)
		if err != nil {
			return StepInfo{}, fmt.Errorf("warmup round %d: %w", s.round, err)
		}
		s.WarmupCurve.Add(s.round-1, acc)
		return StepInfo{Round: s.round - 1, Phase: PhaseWarmup, Accuracy: acc, Done: s.round >= total}, nil
	}
	acc, err := s.runRound(true, !s.cfg.AlphaOnly)
	if err != nil {
		return StepInfo{}, fmt.Errorf("search round %d: %w", s.round, err)
	}
	s.SearchCurve.Add(s.round-1, acc)
	s.EntropyCurve.Add(s.round-1, s.ctrl.Entropy())
	s.BaselineCurve.Add(s.round-1, s.ctrl.Baseline())
	return StepInfo{Round: s.round - 1, Phase: PhaseSearch, Accuracy: acc, Done: s.round >= total}, nil
}

// RunContext steps the remaining schedule to completion, checkpointing to
// path every `every` completed rounds and once at the end (path "" disables
// checkpointing; every <= 0 checkpoints only at the end). On cancellation
// it writes a final checkpoint and returns ctx.Err(), so a drained process
// can be restarted with LoadCheckpoint and lose nothing.
func (s *Search) RunContext(ctx context.Context, path string, every int) error {
	for {
		if err := ctx.Err(); err != nil {
			if path != "" {
				if cerr := s.SaveCheckpoint(path); cerr != nil {
					return cerr
				}
			}
			return err
		}
		info, err := s.StepRound()
		if err != nil {
			return err
		}
		if info.Done {
			if path != "" {
				return s.SaveCheckpoint(path)
			}
			return nil
		}
		if path != "" && every > 0 && (info.Round+1)%every == 0 {
			if err := s.SaveCheckpoint(path); err != nil {
				return err
			}
		}
	}
}

// RunWithCheckpoints executes the search phase like Run, writing a
// checkpoint to path every `every` rounds (and once at the end) so long
// searches survive process restarts. every <= 0 checkpoints only at the end.
func (s *Search) RunWithCheckpoints(path string, every int) error {
	for i := 0; i < s.cfg.SearchSteps; i++ {
		acc, err := s.runRound(true, !s.cfg.AlphaOnly)
		if err != nil {
			return fmt.Errorf("search round %d: %w", i, err)
		}
		s.SearchCurve.Add(s.round-1, acc)
		s.EntropyCurve.Add(s.round-1, s.ctrl.Entropy())
		s.BaselineCurve.Add(s.round-1, s.ctrl.Baseline())
		if every > 0 && (i+1)%every == 0 {
			if err := s.SaveCheckpoint(path); err != nil {
				return err
			}
		}
	}
	return s.SaveCheckpoint(path)
}
