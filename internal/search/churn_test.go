package search

import (
	"testing"
)

func TestChurnValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.ChurnProb = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for negative churn")
	}
	cfg.ChurnProb = 1
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for churn = 1")
	}
	cfg.ChurnProb = 0.3
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid churn rejected: %v", err)
	}
}

func TestSearchSurvivesChurn(t *testing.T) {
	cfg := tinyConfig()
	cfg.ChurnProb = 0.4
	cfg.WarmupSteps = 10
	cfg.SearchSteps = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SearchCurve.Len() != 20 {
		t.Errorf("curve has %d points", s.SearchCurve.Len())
	}
	if err := s.Derive().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Even extreme churn (most participants offline most rounds) must not
// crash or corrupt state — Alg. 1's aggregation divides by the actual
// contributor count.
func TestSearchSurvivesExtremeChurn(t *testing.T) {
	cfg := tinyConfig()
	cfg.ChurnProb = 0.9
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 15
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range s.SearchCurve.Values() {
		if v < 0 || v > 1 {
			t.Fatalf("round %d accuracy %v out of range", i, v)
		}
	}
}
