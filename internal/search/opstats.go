package search

import (
	"fmt"
	"sort"
	"strings"

	"fedrlnas/internal/nas"
)

// OpPreference summarizes where the policy's probability mass sits per
// candidate operation, aggregated over edges — the "what did the search
// learn to like" readout behind the paper's genotype tables.
type OpPreference struct {
	Op nas.OpKind
	// NormalMass and ReduceMass are the mean softmax probability of the op
	// across the normal-cell and reduction-cell edges.
	NormalMass float64
	ReduceMass float64
}

// OpPreferences returns per-op mean probability mass, sorted descending by
// combined mass.
func (s *Search) OpPreferences() []OpPreference {
	pn, pr := s.ctrl.Probs()
	cands := s.cfg.Net.Candidates
	out := make([]OpPreference, len(cands))
	for i, op := range cands {
		out[i].Op = op
		for _, row := range pn {
			out[i].NormalMass += row[i]
		}
		for _, row := range pr {
			out[i].ReduceMass += row[i]
		}
		out[i].NormalMass /= float64(len(pn))
		out[i].ReduceMass /= float64(len(pr))
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].NormalMass+out[a].ReduceMass > out[b].NormalMass+out[b].ReduceMass
	})
	return out
}

// FormatOpPreferences renders the preferences as an aligned text block.
func FormatOpPreferences(prefs []OpPreference) string {
	var b strings.Builder
	b.WriteString("op              normal  reduce\n")
	for _, p := range prefs {
		b.WriteString(fmt.Sprintf("%-14s  %.4f  %.4f\n", p.Op, p.NormalMass, p.ReduceMass))
	}
	return b.String()
}
