package search

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 3
	cfg.SearchSteps = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	// A fresh search restored from the checkpoint must match θ, α, round.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if s2.Round() != s.Round() {
		t.Errorf("round %d, want %d", s2.Round(), s.Round())
	}
	a, b := s.SnapshotTheta(), s2.SnapshotTheta()
	for i := range a {
		if !a[i].AllClose(b[i], 0) {
			t.Fatalf("theta tensor %d differs after restore", i)
		}
	}
	if s.Controller().Snapshot().Diff(s2.Controller().Snapshot()).L2Norm() != 0 {
		t.Error("alpha differs after restore")
	}
	// Derived genotypes must agree.
	if s.Derive().String() != s2.Derive().String() {
		t.Error("genotypes differ after restore")
	}
}

func TestCheckpointResumeContinues(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 2
	cfg.SearchSteps = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if s2.SearchCurve.Len() != 3 {
		t.Errorf("resumed search recorded %d rounds", s2.SearchCurve.Len())
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadCheckpoint(bad); err == nil {
		t.Error("expected error for garbage checkpoint")
	}
	if err := s.LoadCheckpoint(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadCheckpointRejectsMismatchedConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 1
	cfg.SearchSteps = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	other := tinyConfig()
	other.Net.C = 6 // different supernet
	s2, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadCheckpoint(path); err == nil {
		t.Error("expected error loading checkpoint into mismatched supernet")
	}
}

func TestRunWithCheckpoints(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupSteps = 0
	cfg.SearchSteps = 6
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	if err := s.RunWithCheckpoints(path, 2); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if s2.Round() != 6 {
		t.Errorf("checkpoint at round %d, want 6", s2.Round())
	}
}
