package search

import (
	"context"
	"fmt"

	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/telemetry"
)

// PipelineResult bundles the full P1→P4 run.
type PipelineResult struct {
	Genotype nas.Genotype

	WarmupCurve  metrics.Curve
	SearchCurve  metrics.Curve
	EntropyCurve metrics.Curve

	// SearchSeconds is the virtual time of P1+P2 (Table V's search time).
	SearchSeconds float64
	// MeanSubModelMB and SupernetMB reproduce Table V's size columns.
	MeanSubModelMB float64
	SupernetMB     float64

	Centralized RetrainResult
	Federated   RetrainResult
	FedCurves   fed.FedAvgResult
}

// PipelineOptions selects which P3 variants to run and how the live
// search phases are observed.
type PipelineOptions struct {
	// Centralized runs P3 centrally with this config (nil skips it).
	Centralized *RetrainConfig
	// Federated runs P3 with FedAvg (nil skips it).
	Federated *fed.FedAvgConfig
	// Tracer receives per-round span events from P1/P2 (nil disables
	// tracing at zero cost).
	Tracer *telemetry.Tracer
	// Registry backs the live search counters and gauges, e.g. for a
	// debug HTTP /metrics endpoint (nil keeps a private registry).
	Registry *telemetry.Registry
	// Resume loads this checkpoint into the freshly built search before
	// any round runs, so P1/P2 continue from the saved round with the
	// saved optimizer and RNG streams (bit-exact under hard sync).
	Resume string
	// CheckpointPath streams crash-safe checkpoints to this file during
	// P1/P2 and writes a final one when the schedule completes (""
	// disables). CheckpointEvery is the cadence in completed rounds
	// (<= 0: final checkpoint only).
	CheckpointPath  string
	CheckpointEvery int
}

// RunPipeline executes warm-up, search, derivation and the requested P3/P4
// variants end to end.
func RunPipeline(cfg Config, opts PipelineOptions) (PipelineResult, error) {
	s, err := New(cfg)
	if err != nil {
		return PipelineResult{}, err
	}
	s.SetTelemetry(opts.Tracer, opts.Registry)
	if opts.Resume != "" {
		if err := s.LoadCheckpoint(opts.Resume); err != nil {
			return PipelineResult{}, err
		}
	}
	// RunContext steps the whole remaining P1+P2 schedule; on a fresh
	// search it is bit-identical to the legacy Warmup()+Run() sequence
	// (pinned by TestStepRoundMatchesWarmupRun).
	if err := s.RunContext(context.Background(), opts.CheckpointPath, opts.CheckpointEvery); err != nil {
		return PipelineResult{}, err
	}
	res := PipelineResult{
		Genotype:       s.Derive(),
		WarmupCurve:    s.WarmupCurve,
		SearchCurve:    s.SearchCurve,
		EntropyCurve:   s.EntropyCurve,
		SearchSeconds:  s.TotalSeconds(),
		MeanSubModelMB: float64(s.MeanSubModelBytes()) / (1024 * 1024),
		SupernetMB:     float64(s.Supernet().SupernetWireBytes(cfg.Wire)) / (1024 * 1024),
	}
	if opts.Centralized != nil {
		res.Centralized, err = RetrainCentralized(s.Dataset(), cfg.Net, res.Genotype, *opts.Centralized, cfg.Seed+33)
		if err != nil {
			return res, fmt.Errorf("pipeline centralized retrain: %w", err)
		}
	}
	if opts.Federated != nil {
		var fedRes fed.FedAvgResult
		res.Federated, fedRes, err = RetrainFederated(
			s.Dataset(), cfg.Net, res.Genotype,
			cfg.Partition, cfg.DirichletAlpha, cfg.K, *opts.Federated, cfg.Seed+44)
		if err != nil {
			return res, fmt.Errorf("pipeline federated retrain: %w", err)
		}
		res.FedCurves = fedRes
	}
	return res, nil
}
