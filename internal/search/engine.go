package search

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/transmission"
)

// The parallel round engine. One communication round of Alg. 1 fans the K
// participants' local steps out across the worker pool; every worker owns a
// private supernet replica, so no mutable tensor is ever shared between
// in-flight participants. Determinism holds because
//
//   - every stochastic draw a participant makes (churn, staleness, batch
//     selection, augmentation) comes from that participant's own RNG, so the
//     per-participant draw sequence is independent of scheduling;
//   - the local step itself is pure floating-point arithmetic on a restored
//     θ snapshot, identical on any replica;
//   - all order-sensitive mutation — gradient aggregation, α accumulation,
//     batch-norm running-stat updates — is deferred to a sequential merge
//     over results in fixed participant-index order.
//
// The merged state is therefore bit-identical at every worker count, and to
// the fully sequential engine this replaced. See DESIGN.md §Concurrency.

// workerReplica is the per-worker-slot mutable state: a structurally
// identical copy of the supernet whose parameters are restored from the
// round's θ snapshot before each local step.
type workerReplica struct {
	net    *nas.Supernet
	params []*nn.Param
	// index maps a replica parameter to its canonical position in the
	// primary supernet's Params() ordering (identical structural order).
	index map[*nn.Param]int
	// bns are the replica's batch-norm layers, index-aligned with the
	// primary network's, running in stat-capture mode.
	bns []*nn.BatchNorm2D
}

// newWorkerReplicas builds one supernet replica per worker slot (capped at
// the participant count — more replicas could never be in flight at once).
func newWorkerReplicas(n int, seed int64, cfg nas.Config) ([]*workerReplica, error) {
	reps := make([]*workerReplica, n)
	for i := range reps {
		// Structure is all that matters (weights are overwritten every
		// round), so reuse the primary network's init seed.
		net, err := nas.NewSupernet(rand.New(rand.NewSource(seed)), cfg)
		if err != nil {
			return nil, fmt.Errorf("search: worker replica %d: %w", i, err)
		}
		net.SetTraining(true)
		bns := net.BatchNorms()
		for _, bn := range bns {
			bn.SetStatCapture(true)
		}
		params := net.Params()
		index := make(map[*nn.Param]int, len(params))
		for j, p := range params {
			index[p] = j
		}
		reps[i] = &workerReplica{net: net, params: params, index: index, bns: bns}
	}
	return reps, nil
}

// partStatus records how a participant's round attempt ended.
type partStatus int

const (
	// partSkipped: required snapshot already evicted; silently skipped
	// (matches the sequential engine's bare continue).
	partSkipped partStatus = iota
	partOffline
	partDropped
	partContributed
)

// partResult carries everything a participant's local step produced, for
// the ordered merge. Tensors are task-private; nothing aliases the primary
// network or the snapshots.
type partResult struct {
	status partStatus
	delay  int
	acc    float64
	// grads[i] is the θ gradient for canonical parameter subIdx[i].
	subIdx []int
	grads  []*tensor.Tensor
	// reward-weighted REINFORCE direction for the α merge.
	reward  float64
	logGrad controller.AlphaGrad
	// bnStats[layer] holds the batch statistics the replica's layer
	// captured during the local forward, for replay onto the primary.
	bnStats [][]nn.BNStats
	// rt is the fresh participant's wall-clock contribution (download,
	// compute, upload) to the round's soft-synchronization clock.
	rt float64
}

// roundCtx is the read-only round state shared by all in-flight tasks.
type roundCtx struct {
	t        int
	thetaNow []*tensor.Tensor
	alphaNow controller.AlphaSnapshot
	assigned []nas.Gates
	assign   transmission.Assignment
}

// runParticipant executes participant k's side of the round (Alg. 1 lines
// 37–42 plus the server-side staleness bookkeeping for its reply) on the
// given worker replica, writing the outcome into res. It only reads shared
// state that is immutable for the duration of the round: the snapshots, the
// staleness pools (Put/Evict happen outside the parallel phase), the
// controller baseline, and the participant's private RNG/batcher.
func (s *Search) runParticipant(rep *workerReplica, k int, in *roundCtx, res *partResult) error {
	part := s.parts[k]
	if s.cfg.ChurnProb > 0 && part.RNG.Float64() < s.cfg.ChurnProb {
		res.status = partOffline
		s.met.Offline.Inc()
		s.tracer.ReplyOffline(in.t, k)
		return nil
	}
	delay, dropped := 0, false
	if s.cfg.Strategy != staleness.Hard {
		delay, dropped = s.cfg.Staleness.Sample(part.RNG)
	}
	if dropped {
		res.status = partDropped
		s.met.RepliesDropped.Inc()
		s.tracer.ReplyDropped(in.t, k, delay)
		return nil
	}
	tPrime := in.t - delay
	if tPrime < 0 {
		tPrime, delay = in.t, 0 // nothing older exists in the first rounds
	}
	if delay > 0 && s.cfg.Strategy == staleness.Throw {
		res.status = partDropped
		s.met.RepliesDropped.Inc()
		s.tracer.ReplyDropped(in.t, k, delay)
		return nil
	}

	gk := in.assigned[k]
	thetaAt := in.thetaNow
	alphaAt := in.alphaNow
	if delay > 0 {
		var ok bool
		if thetaAt, ok = s.thetaPool.Get(tPrime); !ok {
			return nil
		}
		if alphaAt, ok = s.alphaPool.Get(tPrime); !ok {
			return nil
		}
		oldGates, ok := s.gatesPool.Get(tPrime)
		if !ok {
			return nil
		}
		gk = oldGates[k]
	}

	// Local step against θ at round t', on this worker's replica.
	if err := nn.RestoreParamValues(rep.params, thetaAt); err != nil {
		return err
	}
	batch := part.Batcher.Next(s.cfg.BatchSize)
	x, y := s.ds.Gather(batch)
	x = s.cfg.Augment.Apply(x, part.RNG)
	nn.ZeroGrads(rep.params)
	lossRes, err := nn.CrossEntropy(rep.net.ForwardSampled(x, gk), y)
	if err != nil {
		return err
	}
	rep.net.BackwardSampled(lossRes.GradLogits)
	res.acc = lossRes.Accuracy

	subParams := rep.net.SampledParams(gk)
	grads := nn.CloneParamGrads(subParams)
	res.subIdx = make([]int, len(subParams))
	for i, p := range subParams {
		res.subIdx[i] = rep.index[p]
	}

	// θ-gradient delay compensation (lines 18–27).
	if delay > 0 && s.cfg.Strategy == staleness.DC {
		freshVals := make([]*tensor.Tensor, len(subParams))
		staleVals := make([]*tensor.Tensor, len(subParams))
		for i, idx := range res.subIdx {
			freshVals[i] = in.thetaNow[idx]
			staleVals[i] = thetaAt[idx]
		}
		grads, err = staleness.CompensateTheta(grads, freshVals, staleVals, s.cfg.Lambda)
		if err != nil {
			return err
		}
	}
	res.grads = grads

	// α-gradient handling (lines 20, 28). Reward reads the controller
	// baseline, which is only updated after the merge, so it is stable for
	// the whole parallel phase.
	res.reward = s.ctrl.Reward(res.acc)
	res.logGrad = controller.LogProbGradAt(alphaAt, gk)
	if delay > 0 && s.cfg.Strategy == staleness.DC {
		drift := alphaAt.Diff(in.alphaNow) // α_t − α_{t'}
		corrected := res.logGrad.Clone()
		corrected.MulAdd3(s.cfg.Lambda, res.logGrad, drift)
		res.logGrad = corrected
	}

	// Hand the captured batch-norm statistics to the merge phase.
	res.bnStats = make([][]nn.BNStats, len(rep.bns))
	for i, bn := range rep.bns {
		res.bnStats[i] = bn.DrainCapturedStats()
	}

	res.delay = delay
	res.status = partContributed
	if delay == 0 {
		s.met.RepliesFresh.Inc()
		s.tracer.ReplyFresh(in.t, k)
		// Soft synchronization: only fresh participants gate the round's
		// wall clock; stragglers' time was paid in earlier rounds.
		res.rt = 2*in.assign.LatencySeconds[k] +
			part.ComputeSeconds(nn.ParamCount(subParams), s.cfg.BatchSize)
	} else {
		s.met.RepliesLate.Inc()
		s.tracer.ReplyLate(in.t, k, delay)
	}
	return nil
}
