package search

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/cohort"
	"fedrlnas/internal/controller"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/tensor"
	"fedrlnas/internal/transmission"
)

// The parallel round engine. One communication round of Alg. 1 fans the K
// participants' local steps out across the worker pool; every worker owns a
// private supernet replica, so no mutable tensor is ever shared between
// in-flight participants. Determinism holds because
//
//   - every stochastic draw a participant makes (churn, staleness, batch
//     selection, augmentation) comes from that participant's own RNG, so the
//     per-participant draw sequence is independent of scheduling;
//   - the local step itself is pure floating-point arithmetic on a restored
//     θ snapshot, identical on any replica;
//   - all order-sensitive mutation — gradient aggregation, α accumulation,
//     batch-norm running-stat updates — is deferred to a sequential merge
//     over results in fixed participant-index order.
//
// The merged state is therefore bit-identical at every worker count, and to
// the fully sequential engine this replaced. See DESIGN.md §Concurrency.

// workerReplica is the per-worker-slot mutable state: a structurally
// identical copy of the supernet whose parameters are restored from the
// round's θ snapshot before each local step.
type workerReplica struct {
	net    *nas.Supernet
	params []*nn.Param
	// index maps a replica parameter to its canonical position in the
	// primary supernet's Params() ordering (identical structural order).
	index map[*nn.Param]int
	// bns are the replica's batch-norm layers, index-aligned with the
	// primary network's, running in stat-capture mode.
	bns []*nn.BatchNorm2D
	// subScratch backs the sampled-params enumeration of whichever
	// participant currently runs on this replica (one at a time).
	subScratch []*nn.Param
}

// newWorkerReplicas builds one supernet replica per worker slot (capped at
// the participant count — more replicas could never be in flight at once).
func newWorkerReplicas(n int, seed int64, cfg Config) ([]*workerReplica, error) {
	reps := make([]*workerReplica, n)
	for i := range reps {
		// Structure is all that matters (weights are overwritten every
		// round), so reuse the primary network's init seed.
		net, err := nas.NewSupernet(rand.New(rand.NewSource(seed)), cfg.Net)
		if err != nil {
			return nil, fmt.Errorf("search: worker replica %d: %w", i, err)
		}
		net.SetTraining(true)
		bns := net.BatchNorms()
		for _, bn := range bns {
			bn.SetStatCapture(true)
		}
		params := net.Params()
		index := make(map[*nn.Param]int, len(params))
		for j, p := range params {
			index[p] = j
		}
		reps[i] = &workerReplica{net: net, params: params, index: index, bns: bns}
		if err := reps[i].prewarm(cfg); err != nil {
			return nil, fmt.Errorf("search: worker replica %d: %w", i, err)
		}
	}
	return reps, nil
}

// prewarm runs one forward/backward pass per candidate operation through the
// replica so every lazily sized op buffer exists before the first real round.
// Without this, workers>1 runs keep allocating far into the search: a
// (replica, edge, candidate) combination first-touches its buffers only when
// some round's random gates land that candidate on that edge while the
// participant happens to be scheduled on that replica — a coupon-collector
// process whose long tail showed up as a steady-state alloc regression at
// workers=4. Results of the warm passes are discarded: parameters are
// restored from the θ snapshot before every real local step, captured BN
// records are drained into the layer's freelist, and gradients are zeroed.
func (rep *workerReplica) prewarm(cfg Config) error {
	nE, rE := rep.net.ArchSpace()
	g := nas.Gates{Normal: make([]int, nE), Reduce: make([]int, rE)}
	x := tensor.New(cfg.BatchSize, cfg.Dataset.Channels, cfg.Dataset.Height, cfg.Dataset.Width)
	for c := 0; c < rep.net.NumCandidates(); c++ {
		for e := range g.Normal {
			g.Normal[e] = c
		}
		for e := range g.Reduce {
			g.Reduce[e] = c
		}
		logits := rep.net.ForwardSampled(x, g)
		rep.net.BackwardSampled(tensor.New(logits.Shape()...))
	}
	for _, bn := range rep.bns {
		bn.RecycleStats(bn.DrainCapturedStatsInto(nil))
	}
	nn.ZeroGrads(rep.params)
	return nil
}

// partStatus records how a participant's round attempt ended.
type partStatus int

const (
	// partSkipped: required snapshot already evicted; silently skipped
	// (matches the sequential engine's bare continue).
	partSkipped partStatus = iota
	partOffline
	partDropped
	partContributed
)

// partScratch is participant-scoped storage that survives across rounds so
// a steady-state round's merge payload needs no fresh allocations.
// gradBufs is indexed by canonical parameter position; a buffer is allocated
// the first time its parameter appears in the participant's sampled
// sub-model and reused for every later round (the shape at a canonical index
// never changes). The buffers stay valid through the ordered merge because
// participant k only overwrites them during its own next local step, which
// cannot begin before this round's merge has completed.
type partScratch struct {
	gradBufs []*tensor.Tensor
	subIdx   []int
	grads    []*tensor.Tensor
	bnStats  [][]nn.BNStats
	logGrad  controller.AlphaGrad
	// Local-step buffers: the gathered batch, its labels, the augmented
	// batch, and the loss gradient.
	xBuf      *tensor.Tensor
	labels    []int
	augBuf    *tensor.Tensor
	gradLogit *tensor.Tensor
}

// partResult carries everything a participant's local step produced, for
// the ordered merge. Tensors are task-private; nothing aliases the primary
// network or the snapshots.
type partResult struct {
	status partStatus
	delay  int
	acc    float64
	// grads[i] is the θ gradient for canonical parameter subIdx[i].
	subIdx []int
	grads  []*tensor.Tensor
	// reward-weighted REINFORCE direction for the α merge.
	reward  float64
	logGrad controller.AlphaGrad
	// bnStats[layer] holds the batch statistics the replica's layer
	// captured during the local forward, for replay onto the primary.
	bnStats [][]nn.BNStats
	// rt is the fresh participant's wall-clock contribution (download,
	// compute, upload) to the round's soft-synchronization clock.
	rt float64
}

// roundCtx is the read-only round state shared by all in-flight tasks.
type roundCtx struct {
	t        int
	thetaNow []*tensor.Tensor
	alphaNow controller.AlphaSnapshot
	assigned []nas.Gates
	assign   transmission.Assignment
}

// runParticipant executes one cohort member's side of the round (Alg. 1
// lines 37–42 plus the server-side staleness bookkeeping for its reply) on
// the given worker replica, writing the outcome into res. pos is the
// member's cohort position (which keys all round-scoped buffers) and pid
// its stable participant id (which keys its data shard and RNG; pos == pid
// when cohort sampling is off). It only reads shared state that is
// immutable for the duration of the round: the snapshots, the staleness
// pools (Put/Evict happen outside the parallel phase), the controller
// baseline, and the participant's private RNG/batcher — the participant
// itself was materialized before the parallel phase began.
func (s *Search) runParticipant(rep *workerReplica, pos, pid int, in *roundCtx, res *partResult) error {
	res.status = partSkipped // res is reused across rounds; clear last round's outcome
	part, err := s.pop.Get(pid)
	if err != nil {
		return err
	}
	// The scenario profile's availability schedule overrides the run-wide
	// churn; a participant with neither makes no draw, so pre-scenario
	// streams are untouched.
	churn := s.cfg.ChurnProb
	if part.ChurnProb > 0 {
		churn = part.ChurnProb
	}
	if churn > 0 && part.RNG.Float64() < churn {
		res.status = partOffline
		s.met.Offline.Inc()
		s.tracer.ReplyOffline(in.t, pid)
		return nil
	}
	delay, dropped := 0, false
	if s.cfg.Strategy != staleness.Hard {
		delay, dropped = s.cfg.Staleness.Sample(part.RNG)
	}
	if dropped {
		res.status = partDropped
		s.met.RepliesDropped.Inc()
		s.tracer.ReplyDropped(in.t, pid, delay)
		return nil
	}
	tPrime := in.t - delay
	if tPrime < 0 {
		tPrime, delay = in.t, 0 // nothing older exists in the first rounds
	}
	if delay > 0 && s.cfg.Strategy == staleness.Throw {
		res.status = partDropped
		s.met.RepliesDropped.Inc()
		s.tracer.ReplyDropped(in.t, pid, delay)
		return nil
	}

	gk := in.assigned[pos]
	thetaAt := in.thetaNow
	alphaAt := in.alphaNow
	if delay > 0 {
		var ok bool
		if thetaAt, ok = s.thetaPool.Get(tPrime); !ok {
			return nil
		}
		if alphaAt, ok = s.alphaPool.Get(tPrime); !ok {
			return nil
		}
		oldGates, ok := s.gatesPool.Get(tPrime)
		if !ok {
			return nil
		}
		if s.sampler.Full() {
			gk = oldGates[pid]
		} else {
			// A straggler's delayed reply only exists if it was sampled at
			// t′; a participant outside that round's cohort has no stale
			// sub-model to have trained, so it trains fresh instead (the
			// staleness draw above still consumed the same RNG values, so
			// the schedule stays fault- and cohort-independent).
			oldCohort, ok := s.cohortPool.Get(tPrime)
			if !ok {
				return nil
			}
			if oldPos, member := cohort.Position(oldCohort, pid); member {
				gk = oldGates[oldPos]
			} else {
				delay = 0
				thetaAt, alphaAt = in.thetaNow, in.alphaNow
				gk = in.assigned[pos]
			}
		}
	}

	// Local step against θ at round t', on this worker's replica. All
	// round-to-round buffers come from this cohort position's scratch, so
	// a steady-state local step allocates nothing.
	sc := &s.scratch[pos]
	if err := nn.RestoreParamValues(rep.params, thetaAt); err != nil {
		return err
	}
	if s.personalize {
		// Federated body, local head: overwrite the replica's (snapshot)
		// head with this client's private one. heads[pid] exists — it was
		// materialized before the parallel phase — and is only ever touched
		// by pid's own task, so the read and the write-back below are
		// race-free.
		for i, t := range s.heads[pid] {
			rep.params[s.headStart+i].Value.CopyFrom(t)
		}
	}
	batch := part.Batcher.Next(s.cfg.BatchSize)
	x, y := s.ds.GatherInto(sc.xBuf, sc.labels, batch)
	sc.xBuf, sc.labels = x, y
	x = s.cfg.Augment.ApplyInto(sc.augBuf, x, part.RNG)
	sc.augBuf = x
	nn.ZeroGrads(rep.params)
	lossRes, err := nn.CrossEntropyInto(sc.gradLogit, rep.net.ForwardSampled(x, gk), y)
	if err != nil {
		return err
	}
	sc.gradLogit = lossRes.GradLogits
	rep.net.BackwardSampled(lossRes.GradLogits)
	res.acc = lossRes.Accuracy

	// Copy the sub-model's gradients out of the (shared) replica into this
	// participant's persistent merge buffers.
	subParams := rep.net.AppendSampledParams(rep.subScratch[:0], gk)
	rep.subScratch = subParams
	res.subIdx = sc.subIdx[:0]
	res.grads = sc.grads[:0]
	for _, p := range subParams {
		idx := rep.index[p]
		if s.personalize && idx >= s.headStart {
			// Head gradients stay on the device: the local step below
			// consumes them, the federated merge never sees them.
			continue
		}
		buf := sc.gradBufs[idx]
		if buf == nil {
			buf = tensor.New(p.Grad.Shape()...)
			sc.gradBufs[idx] = buf
		}
		buf.CopyFrom(p.Grad)
		res.subIdx = append(res.subIdx, idx)
		res.grads = append(res.grads, buf)
	}
	sc.subIdx, sc.grads = res.subIdx, res.grads
	grads := res.grads

	// Local personalization step: plain SGD on the private head (no
	// momentum or weight decay — the head is a small linear probe and its
	// state must stay exactly "values", keeping checkpoints simple).
	if s.personalize {
		for i, t := range s.heads[pid] {
			t.AXPY(-s.headLR, rep.params[s.headStart+i].Grad)
		}
	}

	// θ-gradient delay compensation (lines 18–27).
	if delay > 0 && s.cfg.Strategy == staleness.DC {
		freshVals := make([]*tensor.Tensor, len(res.subIdx))
		staleVals := make([]*tensor.Tensor, len(res.subIdx))
		for i, idx := range res.subIdx {
			freshVals[i] = in.thetaNow[idx]
			staleVals[i] = thetaAt[idx]
		}
		grads, err = staleness.CompensateTheta(grads, freshVals, staleVals, s.cfg.Lambda)
		if err != nil {
			return err
		}
	}
	res.grads = grads

	// α-gradient handling (lines 20, 28). Reward reads the controller
	// baseline, which is only updated after the merge, so it is stable for
	// the whole parallel phase.
	res.reward = s.ctrl.Reward(res.acc)
	controller.LogProbGradAtInto(&sc.logGrad, alphaAt, gk)
	res.logGrad = sc.logGrad
	if delay > 0 && s.cfg.Strategy == staleness.DC {
		drift := alphaAt.Diff(in.alphaNow) // α_t − α_{t'}
		corrected := res.logGrad.Clone()
		corrected.MulAdd3(s.cfg.Lambda, res.logGrad, drift)
		res.logGrad = corrected
	}

	// Hand the captured batch-norm statistics to the merge phase. The
	// records this scratch still holds were replayed by an earlier round's
	// merge, so their storage is recycled into the replica layer's freelist
	// (layer index i has the same channel count on every replica).
	if cap(sc.bnStats) < len(rep.bns) {
		sc.bnStats = make([][]nn.BNStats, len(rep.bns))
	}
	res.bnStats = sc.bnStats[:len(rep.bns)]
	for i, bn := range rep.bns {
		bn.RecycleStats(res.bnStats[i])
		res.bnStats[i] = bn.DrainCapturedStatsInto(res.bnStats[i][:0])
	}
	sc.bnStats = res.bnStats

	res.delay = delay
	res.status = partContributed
	if delay == 0 {
		s.met.RepliesFresh.Inc()
		s.tracer.ReplyFresh(in.t, pid)
		// Soft synchronization: only fresh participants gate the round's
		// wall clock; stragglers' time was paid in earlier rounds.
		res.rt = 2*in.assign.LatencySeconds[pos] +
			part.ComputeSeconds(nn.ParamCount(subParams), s.cfg.BatchSize)
	} else {
		s.met.RepliesLate.Inc()
		s.tracer.ReplyLate(in.t, pid, delay)
	}
	return nil
}
