package search

import (
	"reflect"
	"testing"

	"fedrlnas/internal/staleness"
)

// cohortConfig is tinyConfig with per-round cohort sampling on: 8 enrolled,
// 3 sampled per round.
func cohortConfig() Config {
	cfg := tinyConfig()
	cfg.K = 8
	cfg.CohortSize = 3
	cfg.WarmupSteps = 4
	cfg.SearchSteps = 8
	return cfg
}

// Sharded-merge bit-identity at the full population: shard counts
// {1,2,4,8} (and the default 0) must all produce identical fingerprints,
// because sharding is by destination parameter index and each accumulator
// keeps its canonical addition order.
func TestShardedMergeBitIdenticalFullPopulation(t *testing.T) {
	base := tinyConfig()
	base.WarmupSteps = 4
	base.SearchSteps = 8
	base.Seed = 11
	base.Workers = 4

	ref := fingerprint(t, base) // Shards = 0, the single-range legacy merge
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		fp := fingerprint(t, cfg)
		if fp.genotype != ref.genotype {
			t.Fatalf("shards=%d: genotype %s vs %s", shards, fp.genotype, ref.genotype)
		}
		if fp.thetaSum != ref.thetaSum {
			t.Fatalf("shards=%d: θ checksum %v vs %v", shards, fp.thetaSum, ref.thetaSum)
		}
		assertIdentical(t, "search curve", fp.search, ref.search)
	}
}

// The same sweep with cohort sampling on, across worker counts: the
// combination of position-keyed scratch, lazy materialization, and the
// sharded tree must preserve the bit-identity contract.
func TestCohortShardBitIdentity(t *testing.T) {
	base := cohortConfig()
	base.Seed = 23

	var ref searchFingerprint
	first := true
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Shards = shards
			cfg.Workers = workers
			fp := fingerprint(t, cfg)
			if first {
				ref, first = fp, false
				continue
			}
			if fp.genotype != ref.genotype {
				t.Fatalf("shards=%d workers=%d: genotype diverges", shards, workers)
			}
			if fp.thetaSum != ref.thetaSum {
				t.Fatalf("shards=%d workers=%d: θ checksum %v vs %v",
					shards, workers, fp.thetaSum, ref.thetaSum)
			}
			assertIdentical(t, "search curve", fp.search, ref.search)
			assertIdentical(t, "round seconds", fp.seconds, ref.seconds)
			if fp.stats != ref.stats {
				t.Fatalf("shards=%d workers=%d: stats %+v vs %+v", shards, workers, fp.stats, ref.stats)
			}
		}
	}
}

// Same seed → identical cohort schedule and identical results across runs.
func TestCohortDeterministicAcrossRuns(t *testing.T) {
	cfg := cohortConfig()
	cfg.Seed = 31
	a := fingerprint(t, cfg)
	b := fingerprint(t, cfg)
	if a.genotype != b.genotype || a.thetaSum != b.thetaSum {
		t.Fatalf("same-seed cohort runs diverge: %s/%v vs %s/%v",
			a.genotype, a.thetaSum, b.genotype, b.thetaSum)
	}
	assertIdentical(t, "search curve", a.search, b.search)
}

// The cohort schedule must be independent of injected faults: a run with
// heavy churn and one with none see the same per-round cohorts (the
// search-engine mirror of PR 5's RNG-stream-is-fault-independent
// invariant — churn draws come from participant RNGs, never the sampler).
func TestCohortScheduleChaosIndependent(t *testing.T) {
	calm := cohortConfig()
	calm.Seed = 47
	stormy := calm
	stormy.ChurnProb = 0.5
	stormy.Staleness = staleness.Severe()
	stormy.Strategy = staleness.DC

	sCalm, err := New(calm)
	if err != nil {
		t.Fatal(err)
	}
	sStormy, err := New(stormy)
	if err != nil {
		t.Fatal(err)
	}
	if err := sStormy.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := sStormy.Run(); err != nil {
		t.Fatal(err)
	}
	// Compare schedules after the stormy run actually consumed its rounds;
	// the calm search never ran at all, which is the point: the schedule
	// is a pure function of the seed.
	for round := 0; round < calm.WarmupSteps+calm.SearchSteps; round++ {
		if !reflect.DeepEqual(sCalm.CohortFor(round), sStormy.CohortFor(round)) {
			t.Fatalf("round %d: cohort schedule changed under faults: %v vs %v",
				round, sCalm.CohortFor(round), sStormy.CohortFor(round))
		}
	}
}

// Cohort mode under the adversarial staleness/churn mix must stay
// deterministic across worker counts — this exercises the
// straggler-outside-old-cohort fallback path concurrently.
func TestCohortDeterministicUnderStalenessAndChurn(t *testing.T) {
	base := cohortConfig()
	base.Seed = 53
	base.SearchSteps = 12
	base.Staleness = staleness.Severe()
	base.Strategy = staleness.DC
	base.ChurnProb = 0.2

	cfg1 := base
	cfg1.Workers = 1
	cfgN := base
	cfgN.Workers = 4

	fp1 := fingerprint(t, cfg1)
	fpN := fingerprint(t, cfgN)
	if fp1.genotype != fpN.genotype || fp1.thetaSum != fpN.thetaSum {
		t.Fatalf("cohort+staleness diverges across workers: %v vs %v", fp1.thetaSum, fpN.thetaSum)
	}
	assertIdentical(t, "search curve", fp1.search, fpN.search)
	if fp1.stats != fpN.stats {
		t.Fatalf("stats diverge: %+v vs %+v", fp1.stats, fpN.stats)
	}
}

// The memory model: enrolled participants cost nothing until sampled, so
// after a short run only cohort-touched clients are materialized.
func TestCohortLazyMaterializationBounded(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 100
	cfg.CohortSize = 4
	cfg.WarmupSteps = 3
	cfg.SearchSteps = 3
	cfg.Seed = 61

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Population().Materialized(); got != 0 {
		t.Fatalf("materialized %d before any round", got)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rounds := cfg.WarmupSteps + cfg.SearchSteps
	got := s.Population().Materialized()
	if got == 0 || got > cfg.CohortSize*rounds {
		t.Fatalf("materialized %d participants, want in (0, %d]", got, cfg.CohortSize*rounds)
	}
	if got >= cfg.K {
		t.Fatalf("materialized the whole population (%d of %d): lazy path broken", got, cfg.K)
	}
	if s.CohortSize() != cfg.CohortSize {
		t.Fatalf("CohortSize %d, want %d", s.CohortSize(), cfg.CohortSize)
	}
}

// CohortSize larger than K clamps to the full population and behaves
// exactly like cohort-off.
func TestCohortOversizedClampsToFull(t *testing.T) {
	base := tinyConfig()
	base.WarmupSteps = 3
	base.SearchSteps = 5
	base.Seed = 67

	over := base
	over.CohortSize = base.K + 10

	fpOff := fingerprint(t, base)
	fpOver := fingerprint(t, over)
	if fpOff.thetaSum != fpOver.thetaSum || fpOff.genotype != fpOver.genotype {
		t.Fatalf("oversized cohort diverges from full population: %v vs %v",
			fpOff.thetaSum, fpOver.thetaSum)
	}
	assertIdentical(t, "search curve", fpOff.search, fpOver.search)
}
