package search

import (
	"fmt"
	"math/rand"

	"fedrlnas/internal/data"
	"fedrlnas/internal/fed"
	"fedrlnas/internal/metrics"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
)

// RetrainConfig configures phase P3 centralized retraining (Table I:
// lr 0.025, momentum 0.9, weight decay 3e-4, clip 5).
type RetrainConfig struct {
	Steps     int
	BatchSize int

	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64

	// CosineAnneal enables cosine learning-rate annealing from LR down to
	// MinLR over Steps (the paper's P3 training schedule).
	CosineAnneal bool
	MinLR        float64

	Augment data.AugmentConfig
}

// DefaultRetrainConfig returns the paper's centralized P3 settings.
func DefaultRetrainConfig() RetrainConfig {
	return RetrainConfig{
		Steps: 120, BatchSize: 32,
		LR: 0.025, Momentum: 0.9, WeightDecay: 3e-4, GradClip: 5,
		Augment: data.DefaultAugment(),
	}
}

// Validate checks the configuration.
func (c RetrainConfig) Validate() error {
	if c.Steps <= 0 || c.BatchSize <= 0 || c.LR <= 0 {
		return fmt.Errorf("search: invalid retrain config %+v", c)
	}
	return nil
}

// RetrainResult is the outcome of a P3+P4 retrain/evaluate pass.
type RetrainResult struct {
	Model      *nas.FixedModel
	TrainCurve metrics.Curve
	// TestAcc is the P4 test accuracy; TestErr is 1−TestAcc (the paper's
	// "Error(%)" column divided by 100).
	TestAcc float64
	TestErr float64
	// ParamCount is the discrete model's size; ParamMB its float32 MB
	// (the paper's "Param(M)" analog on this substrate).
	ParamCount int
	ParamMB    float64
}

// RetrainCentralized re-initializes the genotype's discrete model and trains
// it centrally on ds's full training split (phase P3 "centralized"), then
// evaluates on the test split (P4).
func RetrainCentralized(ds *data.Dataset, netCfg nas.Config, geno nas.Genotype, cfg RetrainConfig, seed int64) (RetrainResult, error) {
	if err := cfg.Validate(); err != nil {
		return RetrainResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	model, err := nas.NewFixedModel(rng, netCfg, geno)
	if err != nil {
		return RetrainResult{}, fmt.Errorf("retrain: %w", err)
	}
	pool := make([]int, ds.NumTrain())
	for i := range pool {
		pool[i] = i
	}
	batcher, err := data.NewBatcher(pool, rng)
	if err != nil {
		return RetrainResult{}, err
	}
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay, cfg.GradClip)
	var sched nn.LRSchedule = nn.ConstantLR{Rate: cfg.LR}
	if cfg.CosineAnneal {
		cos, err := nn.NewCosineLR(cfg.LR, cfg.MinLR, cfg.Steps)
		if err != nil {
			return RetrainResult{}, err
		}
		sched = cos
	}
	model.SetTraining(true)
	res := RetrainResult{Model: model}
	for step := 0; step < cfg.Steps; step++ {
		batch := batcher.Next(cfg.BatchSize)
		x, y := ds.Gather(batch)
		x = cfg.Augment.Apply(x, rng)
		nn.ZeroGrads(model.Params())
		lossRes, err := nn.CrossEntropy(model.Forward(x), y)
		if err != nil {
			return res, err
		}
		model.Backward(lossRes.GradLogits)
		opt.StepWith(sched, step, model.Params())
		res.TrainCurve.Add(step, lossRes.Accuracy)
	}
	res.TestAcc = fed.Evaluate(model, ds, 32)
	res.TestErr = 1 - res.TestAcc
	res.ParamCount = model.ParamCount()
	res.ParamMB = nas.ParamMB(res.ParamCount)
	return res, nil
}

// RetrainFederated re-initializes the genotype's discrete model and trains
// it with FedAvg over a fresh participant population (phase P3 "FL"), then
// evaluates on the test split (P4).
func RetrainFederated(ds *data.Dataset, netCfg nas.Config, geno nas.Genotype,
	kind PartitionKind, alpha float64, k int,
	cfg fed.FedAvgConfig, seed int64) (RetrainResult, fed.FedAvgResult, error) {

	rng := rand.New(rand.NewSource(seed))
	var part data.Partition
	var err error
	switch kind {
	case IID:
		part, err = data.IIDPartition(ds.NumTrain(), k, rng)
	case Dirichlet:
		part, err = data.DirichletPartition(ds.TrainLabels, k, alpha, rng)
	default:
		return RetrainResult{}, fed.FedAvgResult{}, fmt.Errorf("retrain: unknown partition %d", int(kind))
	}
	if err != nil {
		return RetrainResult{}, fed.FedAvgResult{}, err
	}
	parts, err := fed.BuildParticipants(ds, part, seed+11)
	if err != nil {
		return RetrainResult{}, fed.FedAvgResult{}, err
	}
	model, err := nas.NewFixedModel(rng, netCfg, geno)
	if err != nil {
		return RetrainResult{}, fed.FedAvgResult{}, err
	}
	if cfg.NewReplica == nil {
		// Worker replicas only need the model's structure; their weights are
		// restored from the global snapshot before every local update.
		cfg.NewReplica = func() fed.Model {
			m, err := nas.NewFixedModel(rand.New(rand.NewSource(seed)), netCfg, geno)
			if err != nil {
				return nil // falls back to the sequential path
			}
			return m
		}
	}
	fedRes, err := fed.FedAvg(model, ds, parts, cfg)
	if err != nil {
		return RetrainResult{}, fed.FedAvgResult{}, err
	}
	res := RetrainResult{
		Model:      model,
		TrainCurve: fedRes.TrainAcc,
		TestAcc:    fedRes.FinalAcc,
		TestErr:    1 - fedRes.FinalAcc,
		ParamCount: model.ParamCount(),
	}
	res.ParamMB = nas.ParamMB(res.ParamCount)
	return res, fedRes, nil
}
