// Package search is the paper's primary contribution: reinforcement-
// learning-based federated model search (Sec. IV) with adaptive sub-model
// transmission and delay-compensated soft synchronization (Sec. V, Alg. 1).
//
// The pipeline has four phases (Sec. VI-A):
//
//	P1 warm-up   — train supernet weights θ with α frozen (uniform sampling)
//	P2 search    — Alg. 1: jointly optimize θ (FedAvg-on-gradients) and α
//	               (REINFORCE with baseline) over the federated participants
//	P3 retrain   — re-initialize the derived architecture and train from
//	               scratch, centralized or federated
//	P4 evaluate  — test-set accuracy of the retrained model
package search

import (
	"fmt"

	"fedrlnas/internal/controller"
	"fedrlnas/internal/data"
	"fedrlnas/internal/nas"
	"fedrlnas/internal/nn"
	"fedrlnas/internal/scenario"
	"fedrlnas/internal/staleness"
	"fedrlnas/internal/transmission"
	"fedrlnas/internal/wire"
)

// PartitionKind selects how training data is split across participants.
type PartitionKind int

// Partition kinds.
const (
	// IID deals samples uniformly at random.
	IID PartitionKind = iota + 1
	// Dirichlet splits per-class mass by Dir(alpha) draws (non-i.i.d.).
	Dirichlet
)

// String implements fmt.Stringer.
func (p PartitionKind) String() string {
	switch p {
	case IID:
		return "iid"
	case Dirichlet:
		return "dirichlet"
	default:
		return fmt.Sprintf("partition(%d)", int(p))
	}
}

// Config assembles every knob of the search pipeline. Defaults mirror the
// paper's Table I, rescaled to this substrate (see DESIGN.md §2).
type Config struct {
	// Dataset is the synthetic dataset specification.
	Dataset data.Spec
	// Partition selects IID or Dirichlet; DirichletAlpha is the paper's 0.5.
	Partition      PartitionKind
	DirichletAlpha float64
	// K is the number of participants (paper default 10).
	K int

	// Net sizes the supernet.
	Net nas.Config

	// WarmupSteps and SearchSteps are communication-round counts for P1/P2.
	WarmupSteps int
	SearchSteps int
	// BatchSize is the participant batch size per round.
	BatchSize int

	// θ optimizer (Table I: lr 0.025, momentum 0.9, wd 3e-4, clip 5; the
	// default LR is rescaled upward for this substrate's far shorter runs,
	// like the α LR — see defaultAlpha).
	ThetaLR       float64
	ThetaMomentum float64
	ThetaWD       float64
	ThetaClip     float64

	// Alpha configures the RL controller (Table I α block).
	Alpha controller.Config

	// Staleness is the delay distribution driving simulated reply delays.
	Staleness staleness.Schedule

	// SyncConfig carries the soft-synchronization knobs shared with the
	// RPC server (Quorum, StalenessThreshold, Lambda, Strategy); the
	// fields are promoted, so cfg.Strategy etc. read as before. The
	// in-process engine derives delays from Staleness rather than real
	// arrival times, so Quorum only participates in validation here, and
	// the retention pools are sized by the larger of StalenessThreshold
	// and the schedule's maximum delay.
	staleness.SyncConfig

	// Transmission selects the sub-model assignment policy.
	Transmission transmission.Policy

	// Wire selects the payload encoding whose measured frame size ranks
	// sub-models for transmission (and feeds the submodel_bytes
	// telemetry); the zero value wire.Gob is sized like FP64. The
	// in-process engine never serializes, so Wire changes reported sizes
	// and ranking, not results of a fixed assignment.
	Wire wire.Mode

	// Precision selects the arithmetic inside GEMM-backed layers
	// (nn.FP64, the default, or nn.FP32). The setting is process-wide —
	// Search applies it via nn.SetPrecision at construction — because every
	// replica in a process must train with the same arithmetic for merges
	// to be comparable. FP64 runs are covered by the bit-identity gates;
	// FP32 runs are gated on convergence parity (DESIGN.md §Kernels).
	Precision nn.Precision

	// AlphaOnly freezes θ during search (the Fig. 5 ablation).
	AlphaOnly bool

	// ChurnProb is the per-round probability that a participant is
	// offline entirely (connection loss, the failure mode motivating
	// Sec. V); its sub-model is skipped for that round. 0 disables churn.
	ChurnProb float64

	// Scenario, when set, describes the device population: profile mix
	// (speed, network regime, churn, per-profile skew), an optional
	// population-wide skew override, and the personalization mode. A
	// non-nil Scenario's population supersedes Partition/DirichletAlpha
	// and the churn/speed/trace defaults; a nil (or zero) Scenario leaves
	// every stream bit-identical to pre-scenario builds. Scenario is
	// deliberately excluded from checkpoint state: like the rest of
	// Config, the resuming process must supply it.
	Scenario *scenario.Spec `json:"Scenario,omitempty"`

	// Augment is the participant-side augmentation.
	Augment data.AugmentConfig

	// Workers caps the number of participants whose local steps run
	// concurrently within a round; 0 selects runtime.NumCPU(). Results are
	// bit-identical at every worker count (see DESIGN.md §Concurrency).
	Workers int

	// Seed drives every stochastic component.
	Seed int64
}

// defaultAlpha rescales the controller's Table I learning rate to this
// substrate: the paper searches for 6000–10000 steps at lr 0.003, while our
// laptop-scale runs take a few hundred rounds, so the per-round step is
// proportionally larger to cover the same policy distance.
func defaultAlpha() controller.Config {
	cfg := controller.DefaultConfig()
	cfg.LR = 0.3
	return cfg
}

// DefaultConfig returns a laptop-scale configuration faithful to Table I.
func DefaultConfig() Config {
	return Config{
		Dataset:        data.CIFAR10S(),
		Partition:      IID,
		DirichletAlpha: 0.5,
		K:              10,
		Net: nas.Config{
			InChannels: 3, NumClasses: 10, C: 4, Layers: 3, Nodes: 2,
			Candidates: nas.AllOps,
		},
		WarmupSteps:   30,
		SearchSteps:   60,
		BatchSize:     16,
		ThetaLR:       0.2,
		ThetaMomentum: 0.9,
		ThetaWD:       3e-4,
		ThetaClip:     5,
		Alpha:         defaultAlpha(),
		Staleness:     staleness.NoStaleness(),
		SyncConfig: staleness.SyncConfig{
			Quorum: 1, StalenessThreshold: 0, Lambda: 1, Strategy: staleness.Hard,
		},
		Transmission: transmission.Adaptive,
		Wire:         wire.FP64,
		Augment:      data.DefaultAugment(),
		Seed:         1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Dataset.Validate(); err != nil {
		return fmt.Errorf("search: dataset: %w", err)
	}
	if err := c.Net.Validate(); err != nil {
		return fmt.Errorf("search: net: %w", err)
	}
	if err := c.Staleness.Validate(); err != nil {
		return fmt.Errorf("search: staleness: %w", err)
	}
	if err := c.SyncConfig.Validate(); err != nil {
		return fmt.Errorf("search: %w", err)
	}
	if err := c.Scenario.Validate(); err != nil {
		return fmt.Errorf("search: scenario: %w", err)
	}
	switch {
	case c.K <= 0:
		return fmt.Errorf("search: K %d must be positive", c.K)
	case c.WarmupSteps < 0 || c.SearchSteps < 0:
		return fmt.Errorf("search: negative phase length")
	case c.BatchSize <= 0:
		return fmt.Errorf("search: BatchSize %d must be positive", c.BatchSize)
	case c.ThetaLR <= 0:
		return fmt.Errorf("search: ThetaLR %v must be positive", c.ThetaLR)
	case c.Partition != IID && c.Partition != Dirichlet:
		return fmt.Errorf("search: unknown partition %d", int(c.Partition))
	case c.Partition == Dirichlet && c.DirichletAlpha <= 0:
		return fmt.Errorf("search: DirichletAlpha %v must be positive", c.DirichletAlpha)
	case c.ChurnProb < 0 || c.ChurnProb >= 1:
		return fmt.Errorf("search: ChurnProb %v outside [0,1)", c.ChurnProb)
	case c.Workers < 0:
		return fmt.Errorf("search: Workers %d must be >= 0", c.Workers)
	case !c.Wire.Valid():
		return fmt.Errorf("search: invalid wire mode %d", c.Wire)
	case c.Precision != nn.FP64 && c.Precision != nn.FP32:
		return fmt.Errorf("search: invalid precision %d", int32(c.Precision))
	case c.Net.NumClasses != c.Dataset.NumClasses:
		return fmt.Errorf("search: net classes %d != dataset classes %d",
			c.Net.NumClasses, c.Dataset.NumClasses)
	case c.Net.InChannels != c.Dataset.Channels:
		return fmt.Errorf("search: net channels %d != dataset channels %d",
			c.Net.InChannels, c.Dataset.Channels)
	}
	return nil
}
