package search

import (
	"math"
	"runtime"
	"testing"

	"fedrlnas/internal/staleness"
)

// searchFingerprint captures everything the determinism contract promises:
// the derived genotype, the full reward/accuracy curves, and a checksum of
// the final supernet weights.
type searchFingerprint struct {
	genotype string
	warmup   []float64
	search   []float64
	entropy  []float64
	baseline []float64
	seconds  []float64
	thetaSum float64
	stats    RoundStats
}

func fingerprint(t *testing.T, cfg Config) searchFingerprint {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, snap := range s.SnapshotTheta() {
		for i, v := range snap.Data() {
			sum += v * float64(i%7+1) // position-sensitive checksum
		}
	}
	return searchFingerprint{
		genotype: s.Derive().String(),
		warmup:   s.WarmupCurve.Values(),
		search:   s.SearchCurve.Values(),
		entropy:  s.EntropyCurve.Values(),
		baseline: s.BaselineCurve.Values(),
		seconds:  append([]float64(nil), s.RoundSeconds...),
		thetaSum: sum,
		stats:    s.Stats,
	}
}

func assertIdentical(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] { // bit-identical, no tolerance
			t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestSearchDeterministicAcrossWorkerCounts is the headline regression test
// for the parallel round engine: a short P1+P2 search run at workers=1 and
// workers=max(4, NumCPU) with the same seed must produce a bit-identical
// derived genotype, reward curve, and final θ checksum.
func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	base := tinyConfig()
	base.WarmupSteps = 6
	base.SearchSteps = 10
	base.Seed = 42

	cfg1 := base
	cfg1.Workers = 1
	cfgN := base
	cfgN.Workers = 4
	if n := runtime.NumCPU(); n > cfgN.Workers {
		cfgN.Workers = n
	}

	fp1 := fingerprint(t, cfg1)
	fpN := fingerprint(t, cfgN)

	if fp1.genotype != fpN.genotype {
		t.Fatalf("derived genotype diverges: workers=1 %s vs workers=%d %s",
			fp1.genotype, cfgN.Workers, fpN.genotype)
	}
	assertIdentical(t, "warmup curve", fp1.warmup, fpN.warmup)
	assertIdentical(t, "search (reward) curve", fp1.search, fpN.search)
	assertIdentical(t, "entropy curve", fp1.entropy, fpN.entropy)
	assertIdentical(t, "baseline curve", fp1.baseline, fpN.baseline)
	assertIdentical(t, "round seconds", fp1.seconds, fpN.seconds)
	if fp1.thetaSum != fpN.thetaSum {
		t.Fatalf("final θ checksum diverges: %v vs %v", fp1.thetaSum, fpN.thetaSum)
	}
	if math.IsNaN(fp1.thetaSum) {
		t.Fatal("θ checksum is NaN")
	}
	if fp1.stats != fpN.stats {
		t.Fatalf("round stats diverge: %+v vs %+v", fp1.stats, fpN.stats)
	}
}

// TestSearchDeterministicUnderStalenessAndChurn repeats the check on the
// adversarial configuration — severe staleness with delay compensation plus
// participant churn — where every stochastic code path (per-participant
// staleness draws, snapshot lookups, DC correction, drop/offline metrics)
// is exercised concurrently.
func TestSearchDeterministicUnderStalenessAndChurn(t *testing.T) {
	base := tinyConfig()
	base.WarmupSteps = 4
	base.SearchSteps = 12
	base.Seed = 7
	base.Staleness = staleness.Severe()
	base.Strategy = staleness.DC
	base.ChurnProb = 0.2

	cfg1 := base
	cfg1.Workers = 1
	cfgN := base
	cfgN.Workers = 4

	fp1 := fingerprint(t, cfg1)
	fpN := fingerprint(t, cfgN)

	if fp1.genotype != fpN.genotype {
		t.Fatalf("derived genotype diverges: %s vs %s", fp1.genotype, fpN.genotype)
	}
	assertIdentical(t, "search curve", fp1.search, fpN.search)
	assertIdentical(t, "baseline curve", fp1.baseline, fpN.baseline)
	if fp1.thetaSum != fpN.thetaSum {
		t.Fatalf("final θ checksum diverges: %v vs %v", fp1.thetaSum, fpN.thetaSum)
	}
	if fp1.stats != fpN.stats {
		t.Fatalf("round stats diverge: %+v vs %+v", fp1.stats, fpN.stats)
	}
}
