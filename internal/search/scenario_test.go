package search

import (
	"path/filepath"
	"sort"
	"testing"

	"fedrlnas/internal/scenario"
	"fedrlnas/internal/staleness"
)

// scenarioTinyConfig is tinyConfig under a mixed device population with
// personalization on — the full scenario surface in one config.
func scenarioTinyConfig() Config {
	cfg := tinyConfig()
	cfg.WarmupSteps = 5
	cfg.SearchSteps = 8
	cfg.Seed = 23
	cfg.Scenario = &scenario.Spec{
		Population: []scenario.Share{
			{Profile: "phone-urban", Fraction: 0.7},
			{Profile: "iot-rural", Fraction: 0.3},
		},
		Personalize: true,
	}
	return cfg
}

// TestScenarioDeterministicAcrossWorkerCounts extends the headline
// determinism contract to the scenario layer: a mixed-profile population
// with per-profile churn, traces and Dirichlet skew plus personalized heads
// must stay bit-identical at any worker count.
func TestScenarioDeterministicAcrossWorkerCounts(t *testing.T) {
	base := scenarioTinyConfig()

	cfg1 := base
	cfg1.Workers = 1
	cfgN := base
	cfgN.Workers = 4

	fp1 := fingerprint(t, cfg1)
	fpN := fingerprint(t, cfgN)

	if fp1.genotype != fpN.genotype {
		t.Fatalf("derived genotype diverges: %s vs %s", fp1.genotype, fpN.genotype)
	}
	assertIdentical(t, "warmup curve", fp1.warmup, fpN.warmup)
	assertIdentical(t, "search curve", fp1.search, fpN.search)
	assertIdentical(t, "round seconds", fp1.seconds, fpN.seconds)
	if fp1.thetaSum != fpN.thetaSum {
		t.Fatalf("final θ checksum diverges: %v vs %v", fp1.thetaSum, fpN.thetaSum)
	}
	if fp1.stats != fpN.stats {
		t.Fatalf("round stats diverge: %+v vs %+v", fp1.stats, fpN.stats)
	}
}

// TestEmptyScenarioIsNoOp: a zero Spec must lower to nothing — runs with
// Scenario == nil and Scenario == &Spec{} are bit-identical. This is the
// invariant behind the fault-free pin: pre-scenario checkpoints and hashes
// stay valid.
func TestEmptyScenarioIsNoOp(t *testing.T) {
	base := tinyConfig()
	base.WarmupSteps = 4
	base.SearchSteps = 6
	base.Seed = 31

	withNil := base
	withNil.Scenario = nil
	withEmpty := base
	withEmpty.Scenario = &scenario.Spec{}

	fpNil := fingerprint(t, withNil)
	fpEmpty := fingerprint(t, withEmpty)

	if fpNil.genotype != fpEmpty.genotype {
		t.Fatalf("empty scenario changed the genotype: %s vs %s", fpNil.genotype, fpEmpty.genotype)
	}
	assertIdentical(t, "search curve", fpNil.search, fpEmpty.search)
	if fpNil.thetaSum != fpEmpty.thetaSum {
		t.Fatalf("empty scenario changed θ: %v vs %v", fpNil.thetaSum, fpEmpty.thetaSum)
	}
}

// TestLegacyPartitionFlagsLowerBitIdentically: the deprecated
// -partition/-dirichlet-alpha path and its scenario-Skew lowering must
// produce the same run, so flag aliasing cannot silently change results.
func TestLegacyPartitionFlagsLowerBitIdentically(t *testing.T) {
	base := tinyConfig()
	base.WarmupSteps = 4
	base.SearchSteps = 6
	base.Seed = 17

	legacy := base
	legacy.Partition = Dirichlet
	legacy.DirichletAlpha = 0.5
	legacy.Scenario = nil

	lowered := base
	lowered.Partition = Dirichlet
	lowered.DirichletAlpha = 0.5
	lowered.Scenario = &scenario.Spec{Skew: &scenario.Skew{Kind: scenario.SkewDirichlet, Alpha: 0.5}}

	fpLegacy := fingerprint(t, legacy)
	fpLowered := fingerprint(t, lowered)

	if fpLegacy.genotype != fpLowered.genotype {
		t.Fatalf("lowered flags changed the genotype: %s vs %s", fpLegacy.genotype, fpLowered.genotype)
	}
	assertIdentical(t, "search curve", fpLegacy.search, fpLowered.search)
	if fpLegacy.thetaSum != fpLowered.thetaSum {
		t.Fatalf("lowered flags changed θ: %v vs %v", fpLegacy.thetaSum, fpLowered.thetaSum)
	}
}

// TestPersonalizedCheckpointResume: pausing a personalized run and resuming
// from the checkpoint must land on the exact bits of the uninterrupted run —
// the v3 checkpoint section carries every client head.
func TestPersonalizedCheckpointResume(t *testing.T) {
	cfg := scenarioTinyConfig()
	cfg.Workers = 2

	// Reference: straight through.
	ref := fingerprint(t, cfg)

	// Interrupted: warm up, checkpoint, reload into a fresh Search, finish.
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Personalized() {
		t.Fatal("scenario with personalize=true did not enable personalization")
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "personal.ckpt")
	if err := s.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}

	if got := s2.Derive().String(); got != ref.genotype {
		t.Fatalf("resumed genotype %s, want %s", got, ref.genotype)
	}
	assertIdentical(t, "resumed search curve", s2.SearchCurve.Values(), ref.search)
	sum := 0.0
	for _, snap := range s2.SnapshotTheta() {
		for i, v := range snap.Data() {
			sum += v * float64(i%7+1)
		}
	}
	if sum != ref.thetaSum {
		t.Fatalf("resumed θ checksum %v, want %v", sum, ref.thetaSum)
	}

	// The heads themselves must survive the round trip: checksum them on
	// both sides of a save/load pair.
	// Sum in sorted-pid order: float addition is not associative, and map
	// iteration order would otherwise flip the checksum's last ulp between
	// calls even for bit-identical heads.
	headSum := func(s *Search) float64 {
		pids := make([]int, 0, len(s.heads))
		for pid := range s.heads {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		total := 0.0
		for _, pid := range pids {
			for _, tens := range s.heads[pid] {
				for i, v := range tens.Data() {
					total += v * float64((pid+1)*(i%5+1))
				}
			}
		}
		return total
	}
	before := headSum(s2)
	if before == 0 {
		t.Fatal("personalized run trained no heads")
	}
	path2 := filepath.Join(t.TempDir(), "final.ckpt")
	if err := s2.SaveCheckpoint(path2); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.LoadCheckpoint(path2); err != nil {
		t.Fatal(err)
	}
	if after := headSum(s3); after != before {
		t.Fatalf("head checksum %v after reload, want %v", after, before)
	}
}

// TestPersonalizedDCStaleReplies: delay compensation must accept stale
// replies from personalized participants. Head gradients stay on the
// device, so a personalized reply carries fewer gradients than the sampled
// sub-model has parameters — the DC buffers must be sized to the reply, not
// the sub-model, or CompensateTheta rejects the first stale reply and the
// run aborts.
func TestPersonalizedDCStaleReplies(t *testing.T) {
	cfg := scenarioTinyConfig()
	cfg.Staleness = staleness.Severe()
	cfg.Strategy = staleness.DC

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Personalized() {
		t.Fatal("scenario with personalize=true did not enable personalization")
	}
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SearchCurve.Len() != cfg.SearchSteps {
		t.Errorf("curve has %d points, want %d", s.SearchCurve.Len(), cfg.SearchSteps)
	}
	// The regression only bites on a stale reply; make sure the schedule
	// actually produced some, or the test is vacuous.
	if s.Stats.Late == 0 {
		t.Fatal("severe staleness produced no late replies; DC-under-personalization path not exercised")
	}
}

// TestScenarioProfileAssignmentStable: the profile carve-up the engine
// actually used matches the pure scenario.Assign function — nothing in
// materialization order perturbs it.
func TestScenarioProfileAssignmentStable(t *testing.T) {
	cfg := scenarioTinyConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles, assignment := s.Profiles()
	if len(profiles) != 2 {
		t.Fatalf("resolved %d profiles, want 2", len(profiles))
	}
	_, fracs, err := cfg.Scenario.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.Assign(fracs, cfg.K, cfg.Seed)
	if len(assignment) != len(want) {
		t.Fatalf("assignment length %d, want %d", len(assignment), len(want))
	}
	for i := range want {
		if assignment[i] != want[i] {
			t.Fatalf("assignment[%d] = %d, want %d", i, assignment[i], want[i])
		}
	}
}
